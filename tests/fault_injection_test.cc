// Failure-path tests: injected faults must surface as clean IoError
// statuses at every layer (the library is exception-free; nothing may
// crash, corrupt counters, or wedge after a fault clears). Storage goes
// through the DiskManager's shared FaultInjector; the runtime executor
// has its own "executor.task" site.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>

#include "db/database.h"
#include "db/sql.h"
#include "runtime/driver.h"
#include "storage/bptree.h"
#include "storage/heap_table.h"
#include "storage/table_queue.h"
#include "util/fault_injector.h"
#include "util/random.h"

namespace tman {
namespace {

TEST(FaultInjectionTest, DiskFailsAfterCountdown) {
  DiskManager disk;
  PageId p = disk.AllocatePage();
  Page page;
  disk.InjectFaultAfter(1);
  EXPECT_TRUE(disk.ReadPage(p, &page).ok());   // 1 access allowed
  EXPECT_FALSE(disk.ReadPage(p, &page).ok());  // then trips
  EXPECT_FALSE(disk.WritePage(p, page).ok());
  disk.ClearFaults();
  EXPECT_TRUE(disk.ReadPage(p, &page).ok());
}

TEST(FaultInjectionTest, BufferPoolSurfacesReadFault) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageGuard g;
  ASSERT_TRUE(pool.NewPage(&g).ok());
  PageId id = g.page_id();
  g.Release();
  // Evict it by filling the pool.
  PageGuard g2, g3;
  ASSERT_TRUE(pool.NewPage(&g2).ok());
  ASSERT_TRUE(pool.NewPage(&g3).ok());
  g2.Release();
  g3.Release();
  disk.InjectFaultAfter(0);
  PageGuard back;
  Status s = pool.FetchPage(id, &back);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  disk.ClearFaults();
  EXPECT_TRUE(pool.FetchPage(id, &back).ok());  // recovers
}

TEST(FaultInjectionTest, HeapTablePropagatesFault) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  auto first = HeapTable::Create(&pool);
  ASSERT_TRUE(first.ok());
  HeapTable table(&pool, *first);
  // Fill several pages so operations need real I/O.
  std::string record(1000, 'x');
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.Insert(record).ok());
  }
  disk.InjectFaultAfter(0);
  EXPECT_FALSE(table.Insert(record).ok());
  EXPECT_FALSE(table.Scan([](const Rid&, std::string_view) {
                     return true;
                   }).ok());
  disk.ClearFaults();
  EXPECT_TRUE(table.Insert(record).ok());
}

TEST(FaultInjectionTest, BPTreePropagatesFault) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  auto meta = BPTree::Create(&pool);
  ASSERT_TRUE(meta.ok());
  BPTree tree(&pool, *meta);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert({Value::Int(i)}, Rid{0, 0}).ok());
  }
  disk.InjectFaultAfter(0);
  auto r = tree.SearchEqual({Value::Int(500)});
  EXPECT_FALSE(r.ok());
  disk.ClearFaults();
  EXPECT_TRUE(tree.SearchEqual({Value::Int(500)}).ok());
}

TEST(FaultInjectionTest, TableQueueFailsCleanly) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  auto meta = TableQueue::Create(&pool);
  ASSERT_TRUE(meta.ok());
  TableQueue queue(&pool, *meta);
  std::string record(1500, 'q');
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.Enqueue(record).ok());
  }
  disk.InjectFaultAfter(0);
  EXPECT_FALSE(queue.Enqueue(record).ok());
  disk.ClearFaults();
  // Queue contents survive the failed attempt.
  EXPECT_EQ(*queue.Size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(queue.Dequeue().ok()) << i;
  }
}

TEST(FaultInjectionTest, SqlStatementsReportIoErrors) {
  DatabaseOptions opts;
  opts.buffer_pool_frames = 2;  // everything goes through the disk
  Database db(opts);
  ASSERT_TRUE(ExecuteSql(&db, "create table t (a int, b varchar)").ok());
  // Wide rows: the table spans many pages, so a 2-frame pool must hit the
  // disk during the scan.
  std::string payload(500, 'w');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ExecuteSql(&db, "insert into t values (" +
                                    std::to_string(i) + ", '" + payload +
                                    "')")
                    .ok());
  }
  db.disk()->InjectFaultAfter(0);
  auto r = ExecuteSql(&db, "select * from t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  db.disk()->ClearFaults();
  auto again = ExecuteSql(&db, "select * from t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows.size(), 50u);
}

// --- FaultInjector modes -----------------------------------------------------

TEST(FaultInjectionTest, InjectorEveryNthMode) {
  FaultInjector fi;
  fi.ArmEveryNth("disk.read", 3);
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(fi.Check("disk.read").ok());
    EXPECT_TRUE(fi.Check("disk.read").ok());
    EXPECT_FALSE(fi.Check("disk.read").ok());  // every 3rd trips
    EXPECT_TRUE(fi.Check("disk.write").ok());  // other sites untouched
  }
  EXPECT_EQ(fi.site_stats("disk.read").faults, 4u);
  EXPECT_EQ(fi.site_stats("disk.read").checks, 12u);
}

TEST(FaultInjectionTest, InjectorProbabilityReplaysBySeed) {
  auto fault_pattern = [](uint64_t seed) {
    FaultInjector fi;
    fi.ArmProbability("disk.*", 0.3, seed);
    std::string bits;
    for (int i = 0; i < 200; ++i) {
      bits.push_back(fi.Check("disk.read").ok() ? '.' : 'X');
    }
    return bits;
  };
  EXPECT_EQ(fault_pattern(7), fault_pattern(7));  // same seed, same storm
  EXPECT_NE(fault_pattern(7), fault_pattern(8));
  std::string bits = fault_pattern(7);
  size_t faults = std::count(bits.begin(), bits.end(), 'X');
  EXPECT_GT(faults, 20u);  // p=0.3 over 200 draws
  EXPECT_LT(faults, 120u);
}

TEST(FaultInjectionTest, InjectorPatternsAndClear) {
  FaultInjector fi;
  EXPECT_FALSE(fi.armed());
  fi.ArmCountdown("table_queue.*", 0);
  fi.ArmCountdown("disk.write", 0);
  EXPECT_TRUE(fi.armed());
  EXPECT_FALSE(fi.Check("table_queue.push").ok());
  EXPECT_FALSE(fi.Check("table_queue.pop.meta").ok());
  EXPECT_FALSE(fi.Check("disk.write").ok());
  EXPECT_TRUE(fi.Check("disk.read").ok());  // exact pattern ≠ sibling site
  fi.Clear("table_queue.*");
  EXPECT_TRUE(fi.Check("table_queue.push").ok());
  EXPECT_FALSE(fi.Check("disk.write").ok());
  EXPECT_EQ(fi.total_faults(), 4u);
  fi.ClearAll();
  EXPECT_FALSE(fi.armed());
  EXPECT_TRUE(fi.Check("disk.write").ok());
}

// --- executor faults ---------------------------------------------------------

TEST(FaultInjectionTest, ExecutorTaskFaultsCountedWithoutWedging) {
  FaultInjector fi;
  fi.ArmEveryNth("executor.task", 3);  // every 3rd task dies pre-dispatch
  TaskQueue queue;
  int executed = 0;
  for (int i = 0; i < 12; ++i) {
    Task t;
    t.kind = TaskKind::kProcessToken;
    t.work = [&executed] {
      ++executed;
      return Status::OK();
    };
    queue.Push(std::move(t));
  }
  ExecutorStats stats;
  auto result = TmanTest(&queue, std::chrono::hours(1), &stats,
                         Clock::Real(), &fi);
  // The queue still drains: a killed task is consumed and counted as an
  // error, never left in flight.
  EXPECT_EQ(result, TmanTestResult::kTaskQueueEmpty);
  EXPECT_EQ(stats.tasks_executed, 12u);
  EXPECT_EQ(stats.task_errors, 4u);
  EXPECT_EQ(executed, 8);
  EXPECT_EQ(queue.in_flight(), 0u);
  EXPECT_EQ(fi.site_stats("executor.task").faults, 4u);
}

// --- TableQueue mid-operation faults ----------------------------------------

TEST(FaultInjectionTest, TableQueueMidPushLeavesQueueRecoverable) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  auto meta = TableQueue::Create(&pool);
  ASSERT_TRUE(meta.ok());
  TableQueue queue(&pool, *meta);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Enqueue("pre" + std::to_string(i)).ok());
  }
  // Fail the final meta write: the record is already placed in the data
  // page, so this is the worst crash point of Enqueue.
  disk.fault_injector()->ArmCountdown("table_queue.push.meta", 0);
  EXPECT_FALSE(queue.Enqueue("ghost").ok());
  EXPECT_FALSE(queue.Enqueue("ghost2").ok());
  disk.fault_injector()->ClearAll();
  // The failed pushes never happened: count, order and contents intact,
  // and the queue accepts new records.
  ASSERT_TRUE(queue.Size().ok());
  EXPECT_EQ(*queue.Size(), 5u);
  ASSERT_TRUE(queue.Enqueue("post").ok());
  for (int i = 0; i < 5; ++i) {
    auto r = queue.Dequeue();
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, "pre" + std::to_string(i));
  }
  auto last = queue.Dequeue();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, "post");
  EXPECT_TRUE(queue.Empty());
}

TEST(FaultInjectionTest, TableQueueMidPopLeavesQueueRecoverable) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  auto meta = TableQueue::Create(&pool);
  ASSERT_TRUE(meta.ok());
  TableQueue queue(&pool, *meta);
  // Records sized so the head page drains mid-test (page deallocation is
  // deferred until the meta write lands — exercise that path too).
  std::string big(1500, 'a');
  ASSERT_TRUE(queue.Enqueue(big + "0").ok());
  ASSERT_TRUE(queue.Enqueue(big + "1").ok());
  ASSERT_TRUE(queue.Enqueue(big + "2").ok());
  disk.fault_injector()->ArmCountdown("table_queue.pop.meta", 0);
  EXPECT_FALSE(queue.Dequeue().ok());
  disk.fault_injector()->ClearAll();
  // The failed pop did not consume the record: each comes out exactly once.
  EXPECT_EQ(*queue.Size(), 3u);
  for (int i = 0; i < 3; ++i) {
    auto r = queue.Dequeue();
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, big + std::to_string(i));
  }
  EXPECT_TRUE(queue.Empty());
  EXPECT_FALSE(queue.Dequeue().ok());  // NotFound, not a stale record
}

TEST(FaultInjectionTest, TableQueueSurvivesSeededFaultStormAndReopen) {
  // Random operations under a seeded probability storm on every
  // table_queue site. Invariant (the persistent update-queue safety the
  // paper claims): an operation that returned an error did not happen, so
  // the queue must always equal the reference deque of successful ops —
  // including after a flush and reopen of the whole storage stack.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    DiskManager disk;
    auto pool = std::make_unique<BufferPool>(&disk, 4);
    auto meta = TableQueue::Create(pool.get());
    ASSERT_TRUE(meta.ok());
    auto queue = std::make_unique<TableQueue>(pool.get(), *meta);
    Random rng(seed);
    std::deque<std::string> reference;
    int next_record = 0;
    disk.fault_injector()->ArmProbability("table_queue.*", 0.35, seed ^ 0xfa);
    for (int op = 0; op < 120; ++op) {
      if (rng.Bernoulli(0.6)) {
        std::string rec(rng.UniformRange(1, 1200), 'r');
        rec += std::to_string(next_record++);
        if (queue->Enqueue(rec).ok()) reference.push_back(rec);
      } else {
        auto r = queue->Dequeue();
        if (r.ok()) {
          ASSERT_FALSE(reference.empty())
              << "dequeued from empty queue; reproducing seed: " << seed;
          EXPECT_EQ(*r, reference.front()) << "reproducing seed: " << seed;
          reference.pop_front();
        }
      }
    }
    disk.fault_injector()->ClearAll();
    // Reopen: flush every dirty frame, then rebuild the pool and queue
    // over the same disk, as after a process restart.
    ASSERT_TRUE(pool->FlushAll().ok());
    queue.reset();
    pool = std::make_unique<BufferPool>(&disk, 4);
    queue = std::make_unique<TableQueue>(pool.get(), *meta);
    ASSERT_TRUE(queue->Size().ok()) << "reproducing seed: " << seed;
    EXPECT_EQ(*queue->Size(), reference.size())
        << "reproducing seed: " << seed;
    while (!reference.empty()) {
      auto r = queue->Dequeue();
      ASSERT_TRUE(r.ok()) << "lost record; reproducing seed: " << seed;
      EXPECT_EQ(*r, reference.front()) << "reproducing seed: " << seed;
      reference.pop_front();
    }
    EXPECT_TRUE(queue->Empty()) << "duplicate records; reproducing seed: "
                                << seed;
  }
}

}  // namespace
}  // namespace tman
