// Failure-path tests: injected disk faults must surface as clean IoError
// statuses at every layer (the library is exception-free; nothing may
// crash, corrupt counters, or wedge after a fault clears).

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/sql.h"
#include "storage/bptree.h"
#include "storage/heap_table.h"
#include "storage/table_queue.h"

namespace tman {
namespace {

TEST(FaultInjectionTest, DiskFailsAfterCountdown) {
  DiskManager disk;
  PageId p = disk.AllocatePage();
  Page page;
  disk.InjectFaultAfter(1);
  EXPECT_TRUE(disk.ReadPage(p, &page).ok());   // 1 access allowed
  EXPECT_FALSE(disk.ReadPage(p, &page).ok());  // then trips
  EXPECT_FALSE(disk.WritePage(p, page).ok());
  disk.ClearFaults();
  EXPECT_TRUE(disk.ReadPage(p, &page).ok());
}

TEST(FaultInjectionTest, BufferPoolSurfacesReadFault) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageGuard g;
  ASSERT_TRUE(pool.NewPage(&g).ok());
  PageId id = g.page_id();
  g.Release();
  // Evict it by filling the pool.
  PageGuard g2, g3;
  ASSERT_TRUE(pool.NewPage(&g2).ok());
  ASSERT_TRUE(pool.NewPage(&g3).ok());
  g2.Release();
  g3.Release();
  disk.InjectFaultAfter(0);
  PageGuard back;
  Status s = pool.FetchPage(id, &back);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  disk.ClearFaults();
  EXPECT_TRUE(pool.FetchPage(id, &back).ok());  // recovers
}

TEST(FaultInjectionTest, HeapTablePropagatesFault) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  auto first = HeapTable::Create(&pool);
  ASSERT_TRUE(first.ok());
  HeapTable table(&pool, *first);
  // Fill several pages so operations need real I/O.
  std::string record(1000, 'x');
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.Insert(record).ok());
  }
  disk.InjectFaultAfter(0);
  EXPECT_FALSE(table.Insert(record).ok());
  EXPECT_FALSE(table.Scan([](const Rid&, std::string_view) {
                     return true;
                   }).ok());
  disk.ClearFaults();
  EXPECT_TRUE(table.Insert(record).ok());
}

TEST(FaultInjectionTest, BPTreePropagatesFault) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  auto meta = BPTree::Create(&pool);
  ASSERT_TRUE(meta.ok());
  BPTree tree(&pool, *meta);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert({Value::Int(i)}, Rid{0, 0}).ok());
  }
  disk.InjectFaultAfter(0);
  auto r = tree.SearchEqual({Value::Int(500)});
  EXPECT_FALSE(r.ok());
  disk.ClearFaults();
  EXPECT_TRUE(tree.SearchEqual({Value::Int(500)}).ok());
}

TEST(FaultInjectionTest, TableQueueFailsCleanly) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  auto meta = TableQueue::Create(&pool);
  ASSERT_TRUE(meta.ok());
  TableQueue queue(&pool, *meta);
  std::string record(1500, 'q');
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.Enqueue(record).ok());
  }
  disk.InjectFaultAfter(0);
  EXPECT_FALSE(queue.Enqueue(record).ok());
  disk.ClearFaults();
  // Queue contents survive the failed attempt.
  EXPECT_EQ(*queue.Size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(queue.Dequeue().ok()) << i;
  }
}

TEST(FaultInjectionTest, SqlStatementsReportIoErrors) {
  DatabaseOptions opts;
  opts.buffer_pool_frames = 2;  // everything goes through the disk
  Database db(opts);
  ASSERT_TRUE(ExecuteSql(&db, "create table t (a int, b varchar)").ok());
  // Wide rows: the table spans many pages, so a 2-frame pool must hit the
  // disk during the scan.
  std::string payload(500, 'w');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ExecuteSql(&db, "insert into t values (" +
                                    std::to_string(i) + ", '" + payload +
                                    "')")
                    .ok());
  }
  db.disk()->InjectFaultAfter(0);
  auto r = ExecuteSql(&db, "select * from t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  db.disk()->ClearFaults();
  auto again = ExecuteSql(&db, "select * from t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows.size(), 50u);
}

}  // namespace
}  // namespace tman
