#include <gtest/gtest.h>

#include <random>

#include "core/aggregates.h"
#include "db/sql.h"
#include "expr/cnf.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "network/gator.h"
#include "parser/parser.h"
#include "predindex/predicate_index.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class CompiledEvalTest : public ::testing::Test {
 protected:
  CompiledEvalTest()
      : schema_({{"name", DataType::kVarchar},
                 {"salary", DataType::kFloat},
                 {"dept", DataType::kInt}}),
        tuple_({Value::String("Bob"), Value::Float(85000), Value::Int(3)}) {
    layout_.Add("emp", &schema_);
  }

  Result<Value> Compiled(const std::string& text) {
    ExprPtr e = Parse(text);
    auto compiled = CompiledPredicate::Compile(e, layout_);
    if (!compiled.ok()) return compiled.status();
    const Tuple* tuples[] = {&tuple_};
    return compiled->EvalValue(tuples, 1);
  }

  Result<Value> Interpreted(const std::string& text) {
    Bindings b;
    b.Bind("emp", &schema_, &tuple_);
    return EvalExpr(Parse(text), b);
  }

  void ExpectSame(const std::string& text) {
    Result<Value> c = Compiled(text);
    Result<Value> i = Interpreted(text);
    ASSERT_EQ(c.ok(), i.ok()) << text << "\ncompiled: " << c.status().ToString()
                              << "\ninterpreted: " << i.status().ToString();
    if (c.ok()) {
      EXPECT_EQ(c->is_null(), i->is_null()) << text;
      EXPECT_EQ(c->ToString(), i->ToString()) << text;
    } else {
      EXPECT_EQ(c.status().code(), i.status().code()) << text;
      EXPECT_EQ(c.status().message(), i.status().message()) << text;
    }
  }

  Schema schema_;
  Tuple tuple_;
  BindingLayout layout_;
};

TEST_F(CompiledEvalTest, LiteralsAndColumnRefs) {
  EXPECT_EQ(Compiled("42")->as_int(), 42);
  EXPECT_DOUBLE_EQ(Compiled("2.5")->as_float(), 2.5);
  EXPECT_EQ(Compiled("'hi'")->as_string(), "hi");
  EXPECT_TRUE(Compiled("null")->is_null());
  EXPECT_EQ(Compiled("emp.name")->as_string(), "Bob");
  EXPECT_EQ(Compiled("dept")->as_int(), 3);  // unqualified, unambiguous
  EXPECT_EQ(Compiled("EMP.DEPT")->as_int(), 3);  // case-insensitive var
}

TEST_F(CompiledEvalTest, NullExpressionIsTrue) {
  auto compiled = CompiledPredicate::Compile(nullptr, layout_);
  ASSERT_TRUE(compiled.ok());
  const Tuple* tuples[] = {&tuple_};
  EXPECT_TRUE(*compiled->EvalBool(tuples, 1));
}

TEST_F(CompiledEvalTest, ComparisonsMatchInterpreter) {
  for (const char* text :
       {"emp.salary > 80000", "emp.salary > 90000", "emp.name = 'Bob'",
        "emp.name <> 'Alice'", "emp.dept <= 3", "emp.dept >= 4",
        "emp.name > 5",            // type error
        "emp.dept = 3.0",          // int vs float
        "null = 3", "emp.name < 'Z'", "2 < 3", "2.5 >= 2.5"}) {
    ExpectSame(text);
  }
}

TEST_F(CompiledEvalTest, ArithmeticMatchesInterpreter) {
  for (const char* text :
       {"1 + 2 * 3", "(1 + 2) * 3", "7 / 2", "7.0 / 2", "-5 + 2", "1 / 0",
        "1.0 / 0", "'a' * 2", "'foo' + 'bar'", "emp.salary * 2 + 1",
        "emp.dept - null", "-emp.name", "-emp.salary"}) {
    ExpectSame(text);
  }
}

TEST_F(CompiledEvalTest, ThreeValuedLogicMatchesInterpreter) {
  for (const char* text :
       {"null and 1", "null and 0", "1 and null", "0 and null",
        "null or 1", "null or 0", "1 or null", "0 or null",
        "not null", "not 0", "not 3", "not 'x'", "not ''",
        "null and null", "null or null",
        "emp.dept = 3 and emp.salary > 1000",
        "emp.dept = 4 or emp.salary > 1000"}) {
    ExpectSame(text);
  }
}

TEST_F(CompiledEvalTest, ShortCircuitSkipsErrors) {
  // The right side divides by zero; a decided left side must skip it,
  // exactly like the interpreter.
  EXPECT_EQ(Compiled("emp.dept = 4 and 1 / 0")->as_int(), 0);
  EXPECT_EQ(Compiled("emp.dept = 3 or 1 / 0")->as_int(), 1);
  EXPECT_FALSE(Compiled("emp.dept = 3 and 1 / 0").ok());
  EXPECT_FALSE(Compiled("emp.dept = 4 or 1 / 0").ok());
}

TEST_F(CompiledEvalTest, FunctionsMatchInterpreter) {
  for (const char* text :
       {"abs(-3)", "abs(-2.5)", "abs('x')", "abs(null)", "length('abcd')",
        "length(5)", "upper(emp.name)", "lower('ABC')", "upper(3)",
        "round(2.6)", "round(emp.dept)", "round('x')", "mod(7, 3)",
        "mod(7, 0)", "mod(7.5, 2)", "mod(null, 3)"}) {
    ExpectSame(text);
  }
}

TEST_F(CompiledEvalTest, CompileRefusals) {
  // Unknown function, ambiguous/unknown columns, placeholders: the
  // compiler refuses and callers fall back to the interpreter.
  EXPECT_FALSE(CompiledPredicate::Compile(Parse("zorp(1)"), layout_).ok());
  EXPECT_FALSE(CompiledPredicate::Compile(Parse("abs(1, 2)"), layout_).ok());
  EXPECT_FALSE(CompiledPredicate::Compile(Parse("emp.bogus = 1"), layout_).ok());
  EXPECT_FALSE(CompiledPredicate::Compile(Parse("zorp.name = 'x'"), layout_).ok());
  EXPECT_FALSE(
      CompiledPredicate::Compile(MakePlaceholder(1), layout_).ok());
  EXPECT_EQ(TryCompilePredicate(Parse("zorp(1)"), layout_), nullptr);
  EXPECT_NE(TryCompilePredicate(Parse("dept = 1"), layout_), nullptr);

  BindingLayout two;
  Schema other({{"dept", DataType::kInt}});
  two.Add("emp", &schema_);
  two.Add("other", &other);
  // "dept" now lives in both schemas: ambiguous when unqualified.
  EXPECT_FALSE(CompiledPredicate::Compile(Parse("dept = 1"), two).ok());
  EXPECT_TRUE(CompiledPredicate::Compile(Parse("emp.dept = 1"), two).ok());
}

TEST_F(CompiledEvalTest, ParamsReplacePlaceholders) {
  // HAVING-style: placeholders become parameter loads.
  ExprPtr e = MakeBinary(BinOp::kGt, MakePlaceholder(1),
                         MakeLiteral(Value::Int(10)));
  CompileOptions opts;
  opts.allow_params = true;
  auto compiled = CompiledPredicate::Compile(e, layout_, opts);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const Tuple* tuples[] = {&tuple_};
  Value params[] = {Value::Int(42)};
  EXPECT_TRUE(*compiled->EvalBool(tuples, 1, params, 1));
  params[0] = Value::Int(3);
  EXPECT_FALSE(*compiled->EvalBool(tuples, 1, params, 1));
  params[0] = Value::Null();
  EXPECT_FALSE(*compiled->EvalBool(tuples, 1, params, 1));
}

TEST_F(CompiledEvalTest, MultiSlotJoinLayout) {
  Schema emp({{"dept", DataType::kInt}, {"salary", DataType::kFloat}});
  Schema dep({{"id", DataType::kInt}, {"budget", DataType::kFloat}});
  BindingLayout layout;
  layout.Add("e", &emp);
  layout.Add("d", &dep);
  ExprPtr join = Parse("e.dept = d.id and e.salary < d.budget");
  auto compiled = CompiledPredicate::Compile(join, layout);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  Tuple t_e({Value::Int(3), Value::Float(100)});
  Tuple t_d({Value::Int(3), Value::Float(500)});
  const Tuple* tuples[] = {&t_e, &t_d};
  EXPECT_TRUE(*compiled->EvalBool(tuples, 2));
  Tuple t_d2({Value::Int(4), Value::Float(500)});
  tuples[1] = &t_d2;
  EXPECT_FALSE(*compiled->EvalBool(tuples, 2));
}

TEST_F(CompiledEvalTest, ConstantsAreInterned) {
  ExprPtr e = Parse("dept = 7 or dept = 7 or dept = 7");
  auto compiled = CompiledPredicate::Compile(e, layout_);
  ASSERT_TRUE(compiled.ok());
  // The listing mentions one pooled constant, referenced three times.
  std::string disasm = compiled->Disassemble();
  EXPECT_NE(disasm.find("consts=1"), std::string::npos) << disasm;
}

TEST_F(CompiledEvalTest, ShortTupleIsAnErrorNotUB) {
  ExprPtr e = Parse("emp.dept = 3");
  auto compiled = CompiledPredicate::Compile(e, layout_);
  ASSERT_TRUE(compiled.ok());
  Tuple narrow({Value::Int(1)});  // schema says 3 fields, tuple has 1
  const Tuple* tuples[] = {&narrow};
  EXPECT_FALSE(compiled->EvalBool(tuples, 1).ok());
  EXPECT_FALSE(compiled->EvalBool(tuples, 0).ok());  // missing binding
}

// ---------------------------------------------------------------------------
// Differential fuzz: random expression trees evaluated both ways must agree
// value-for-value (and error-for-error, message included).
// ---------------------------------------------------------------------------

class ExprFuzzer {
 public:
  ExprFuzzer(uint32_t seed, const Schema* s0, const Schema* s1)
      : rng_(seed), s0_(s0), s1_(s1) {}

  ExprPtr Random(int depth) { return Gen(depth); }

  Value RandomValueOfType(DataType t) {
    if (Chance(20)) return Value::Null();
    switch (t) {
      case DataType::kInt:
        return Value::Int(Int(-4, 4));
      case DataType::kFloat:
        return Value::Float(static_cast<double>(Int(-4, 4)) / 2.0);
      default:
        return Value::String(RandomShortString());
    }
  }

  Tuple RandomTuple(const Schema& s) {
    std::vector<Value> vals;
    vals.reserve(s.num_fields());
    for (const Field& f : s.fields()) {
      vals.push_back(RandomValueOfType(f.type));
    }
    return Tuple(std::move(vals));
  }

 private:
  bool Chance(int percent) { return Int(0, 99) < percent; }
  int64_t Int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng_);
  }
  std::string RandomShortString() {
    static const char* kStrings[] = {"", "a", "b", "ab", "xyz", "A"};
    return kStrings[Int(0, 5)];
  }

  ExprPtr GenLeaf() {
    switch (Int(0, 5)) {
      case 0:
        return MakeLiteral(Value::Int(Int(-4, 4)));
      case 1:
        return MakeLiteral(Value::Float(static_cast<double>(Int(-4, 4)) / 2));
      case 2:
        return MakeLiteral(Value::String(RandomShortString()));
      case 3:
        return MakeLiteral(Value::Null());
      default: {
        const Schema* s = Chance(50) ? s0_ : s1_;
        const char* var = s == s0_ ? "t0" : "t1";
        size_t f = static_cast<size_t>(Int(0, s->num_fields() - 1));
        // Field names are unique across the two schemas, so unqualified
        // references stay unambiguous; exercise both forms.
        if (Chance(25)) return MakeColumnRef("", s->field(f).name);
        return MakeColumnRef(var, s->field(f).name);
      }
    }
  }

  ExprPtr Gen(int depth) {
    if (depth <= 0 || Chance(25)) return GenLeaf();
    switch (Int(0, 9)) {
      case 0:
        return MakeBinary(BinOp::kAnd, Gen(depth - 1), Gen(depth - 1));
      case 1:
        return MakeBinary(BinOp::kOr, Gen(depth - 1), Gen(depth - 1));
      case 2: {
        static const BinOp kCmps[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt,
                                      BinOp::kLe, BinOp::kGt, BinOp::kGe};
        return MakeBinary(kCmps[Int(0, 5)], Gen(depth - 1), Gen(depth - 1));
      }
      case 3: {
        static const BinOp kArith[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul,
                                       BinOp::kDiv};
        return MakeBinary(kArith[Int(0, 3)], Gen(depth - 1), Gen(depth - 1));
      }
      case 4:
        return MakeUnary(UnOp::kNot, Gen(depth - 1));
      case 5:
        return MakeUnary(UnOp::kNeg, Gen(depth - 1));
      case 6: {
        static const char* kUnaryFns[] = {"abs", "length", "upper", "lower",
                                          "round"};
        return MakeFunctionCall(kUnaryFns[Int(0, 4)], {Gen(depth - 1)});
      }
      case 7:
        return MakeFunctionCall("mod", {Gen(depth - 1), Gen(depth - 1)});
      default:
        return MakeBinary(BinOp::kAnd, Gen(depth - 1), Gen(depth - 1));
    }
  }

  std::mt19937 rng_;
  const Schema* s0_;
  const Schema* s1_;
};

TEST(CompiledEvalFuzzTest, DifferentialAgainstInterpreter) {
  Schema s0({{"a", DataType::kInt},
             {"b", DataType::kFloat},
             {"s", DataType::kVarchar}});
  Schema s1({{"x", DataType::kInt},
             {"y", DataType::kFloat},
             {"z", DataType::kChar}});
  BindingLayout layout;
  layout.Add("t0", &s0);
  layout.Add("t1", &s1);

  ExprFuzzer fuzz(20260806, &s0, &s1);
  int compiled_count = 0;
  for (int iter = 0; iter < 1500; ++iter) {
    ExprPtr e = fuzz.Random(4);
    auto compiled = CompiledPredicate::Compile(e, layout);
    ASSERT_TRUE(compiled.ok())
        << ExprToString(e) << ": " << compiled.status().ToString();
    ++compiled_count;

    // Several random tuple pairs per expression.
    for (int round = 0; round < 3; ++round) {
      Tuple t0 = fuzz.RandomTuple(s0);
      Tuple t1 = fuzz.RandomTuple(s1);
      const Tuple* tuples[] = {&t0, &t1};
      Bindings b;
      b.Bind("t0", &s0, &t0);
      b.Bind("t1", &s1, &t1);

      Result<Value> cv = compiled->EvalValue(tuples, 2);
      Result<Value> iv = EvalExpr(e, b);
      ASSERT_EQ(cv.ok(), iv.ok())
          << ExprToString(e) << "\nt0=" << t0.ToString()
          << " t1=" << t1.ToString()
          << "\ncompiled: " << cv.status().ToString()
          << "\ninterpreted: " << iv.status().ToString()
          << "\n" << compiled->Disassemble();
      if (cv.ok()) {
        bool same_null = cv->is_null() == iv->is_null();
        ASSERT_TRUE(same_null && cv->ToString() == iv->ToString())
            << ExprToString(e) << "\nt0=" << t0.ToString()
            << " t1=" << t1.ToString() << "\ncompiled=" << cv->ToString()
            << " interpreted=" << iv->ToString() << "\n"
            << compiled->Disassemble();
      } else {
        ASSERT_EQ(cv.status().code(), iv.status().code()) << ExprToString(e);
        ASSERT_EQ(cv.status().message(), iv.status().message())
            << ExprToString(e);
      }
    }
  }
  EXPECT_EQ(compiled_count, 1500);
}

// --- Hot-path coverage -------------------------------------------------------

// End-to-end proof that the per-token paths run on compiled programs: a
// predicate-index match with a rest predicate, Gator join + catch-all
// propagation, an execSQL scan filter, and a group-by having clause are
// all driven while the interpreter call counter stands still. The
// interpreter stays reachable only through the documented fallbacks.
TEST(CompiledHotPathTest, HotPathsDoNotTouchInterpreter) {
  // Predicate index: equality signature plus a non-indexable rest.
  Database db;
  PredicateIndex pindex(&db, OrgPolicy());
  Schema emp({{"name", DataType::kVarchar},
              {"salary", DataType::kFloat},
              {"dept", DataType::kInt}});
  ASSERT_TRUE(pindex.RegisterDataSource(1, emp).ok());
  PredicateSpec spec;
  spec.data_source = 1;
  spec.op = OpCode::kInsert;
  spec.predicate = Parse("emp.dept = 3 and emp.salary > 50000");
  spec.trigger_id = 100;
  spec.next_node = 0;
  ASSERT_TRUE(pindex.AddPredicate(spec).ok());

  // Gator network with an extra non-equijoin conjunct and a catch-all.
  std::vector<TupleVarInfo> vars = {
      {"o", "orders", 11, OpCode::kInsertOrUpdate},
      {"s", "shipments", 12, OpCode::kInsertOrUpdate},
  };
  std::vector<Schema> schemas = {
      Schema({{"oid", DataType::kInt}, {"cust", DataType::kInt}}),
      Schema({{"oid", DataType::kInt}, {"qty", DataType::kInt}}),
  };
  auto cnf = ToCnf(Parse("o.oid = s.oid and o.cust < s.qty"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(vars, *cnf);
  ASSERT_TRUE(graph.ok());
  auto gator = GatorNetwork::Build(*graph, schemas);
  ASSERT_TRUE(gator.ok());

  // MiniDB table for the scan-filter leg (no index: forces the scan route).
  Database sqldb;
  ASSERT_TRUE(
      ExecuteSql(&sqldb, "create table emp (name varchar, salary float, "
                         "dept int)")
          .ok());
  for (int i = 0; i < 8; ++i) {
    std::string stmt = "insert into emp values ('e" + std::to_string(i) +
                       "', " + std::to_string(40000 + i * 5000) + ", " +
                       std::to_string(i % 3) + ")";
    ASSERT_TRUE(ExecuteSql(&sqldb, stmt).ok()) << stmt;
  }

  // Group-by evaluator with a parameterized having clause.
  auto group = Parse("e.dept");
  auto having = Parse("count(e.dept) >= 2 and sum(e.salary) > 100");
  auto ev = GroupByEvaluator::Create("e", emp, {group}, having, {});
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();

  const uint64_t before = InterpreterEvalCalls();

  // 1. Predicate-index matches (signature hit + compiled rest, and a
  //    rest rejection).
  for (int i = 0; i < 10; ++i) {
    std::vector<PredicateMatch> out;
    UpdateDescriptor token = UpdateDescriptor::Insert(
        1, Tuple({Value::String("x"), Value::Float(40000.0 + i * 5000),
                  Value::Int(3)}));
    ASSERT_TRUE(pindex.Match(token, &out).ok());
  }

  // 2. Gator propagation: equijoin probe + compiled residual conjunct.
  int firings = 0;
  auto count = [&firings](const std::vector<Tuple>&) { ++firings; };
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*gator)
                    ->AddTuple(0, Tuple({Value::Int(i), Value::Int(1)}),
                               count)
                    .ok());
    ASSERT_TRUE((*gator)
                    ->AddTuple(1, Tuple({Value::Int(i), Value::Int(10)}),
                               count)
                    .ok());
  }
  EXPECT_EQ(firings, 5);

  // 3. execSQL scan filters.
  auto rows = ExecuteSql(&sqldb,
                         "select name from emp where salary > 50000 and "
                         "dept = 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(rows->rows.size(), 0u);

  // 4. Group-by/having evaluation.
  for (int i = 0; i < 6; ++i) {
    auto fired = ev->get()->ApplyDelta(
        Tuple({Value::String("x"), Value::Float(60000), Value::Int(i % 2)}),
        /*add=*/true);
    ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  }

  EXPECT_EQ(InterpreterEvalCalls() - before, 0u)
      << "a hot path fell back to the tree-walking interpreter";
}

}  // namespace
}  // namespace tman
