// In-process cluster tests under the deterministic scheduler: a
// ClusterRouter and N ClusterNode-wrapped TriggerManagers wired with
// bounded pollable loopback pipes, every component advanced one bounded
// step at a time by seeded interleaving. Same seed, same failover
// schedule — a failing kill/rejoin/repartition scenario replays exactly.
//
// The oracle mirrors crash_recovery_test, lifted cluster-wide:
//   * every token the router acked to the client fires at least once,
//     on some node, eventually (failover re-routes unacked work; WAL
//     replay after rejoin recovers acked-but-unfired work);
//   * no token fires twice, EXCEPT tokens a killed node fired right
//     before its death (the documented lost-processed-marker ambiguity:
//     they may replay once after rejoin), which may fire at most twice;
//   * a muted (silent, not destroyed) node is detected by heartbeat
//     misses and failed over with STRICT exactly-once: rejoin fences
//     stop its staged-but-unfired tokens from firing a second copy;
//   * after the dust settles the partition map converges: every alive
//     node holds the router's epoch and owner vector.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/frame_conn.h"
#include "cluster/hash_ring.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "core/trigger_manager.h"
#include "db/database.h"
#include "ipc/loopback.h"
#include "runtime/deterministic.h"
#include "util/fault_injector.h"
#include "util/random.h"

namespace tman {
namespace {

TriggerManagerOptions DurableOptions() {
  TriggerManagerOptions opts;
  opts.durable_wal = true;
  opts.persistent_queue = true;
  opts.wal_checkpoint_bytes = 1024;
  return opts;
}

MembershipOptions TestMembership() {
  MembershipOptions m;
  m.heartbeat_interval_ms = 10;  // logical ms; the router actor ticks 1/step
  m.miss_threshold = 3;
  m.max_probe_interval_ms = 80;
  return m;
}

// One member slot. The Database is the durable host and outlives kills;
// a kill destroys the ClusterNode and TriggerManager with no clean
// shutdown (their destructors do no I/O), a reboot recovers from WAL.
struct NodeSlot {
  std::string name;
  std::unique_ptr<Database> db;
  std::unique_ptr<TriggerManager> tman;
  std::unique_ptr<ClusterNode> node;
  std::map<int64_t, int> cur_fired;  // fired by the current incarnation
  bool alive = false;
  bool muted = false;  // silent: no pumping, no task popping (not dead)
  int boots = 0;
};

class Cluster {
 public:
  explicit Cluster(size_t n) {
    config_.num_partitions = 16;
    config_.virtual_nodes = 16;
    for (size_t i = 0; i < n; ++i) {
      auto slot = std::make_unique<NodeSlot>();
      slot->name = "n" + std::to_string(i);
      slot->db = std::make_unique<Database>();
      slots_.push_back(std::move(slot));
    }
  }

  void BootAll() {
    for (size_t i = 0; i < slots_.size(); ++i) BootNode(i);
  }

  void BootNode(size_t i) {
    NodeSlot& s = *slots_[i];
    ASSERT_FALSE(s.alive);
    s.tman = std::make_unique<TriggerManager>(s.db.get(), DurableOptions());
    Status open = s.tman->Open();
    ASSERT_TRUE(open.ok()) << s.name << ": " << open.ToString();
    if (s.boots == 0) {
      Schema feed({{"id", DataType::kInt}});
      auto src = s.tman->DefineStreamSource("feed", feed);
      ASSERT_TRUE(src.ok()) << s.name;
      if (i == 0) {
        ds_ = *src;
        // Hot-source equivalence-class routing: spread feed's stream by
        // the id column so every node owns a share of it.
        config_.ec_key_columns[ds_] = 0;
      } else {
        ASSERT_EQ(*src, ds_) << "source ids must agree across members";
      }
      auto cmd = s.tman->ExecuteCommand(
          "create trigger watch from feed when feed.id >= 0 "
          "do raise event Seen(feed.id)");
      ASSERT_TRUE(cmd.ok()) << s.name << ": " << cmd.status().ToString();
    }
    // Catalog (source + trigger) persists in the Database across reboots;
    // event consumers are per-incarnation.
    NodeSlot* sp = &s;
    s.tman->events().Register("Seen", [sp](const Event& e) {
      sp->cur_fired[e.args[0].as_int()]++;
    });
    ClusterNodeOptions node_opts;
    node_opts.name = s.name;
    node_opts.config = config_;
    node_opts.router_lease_ms = router_lease_ms_;
    s.node = std::make_unique<ClusterNode>(s.tman.get(), node_opts);
    s.alive = true;
    s.muted = false;
    ++s.boots;
  }

  // Kill: merge this incarnation's firings into the totals and mark them
  // ambiguous (their processed markers may not have been committed; a
  // rejoin may replay them once). Destructor order matters: the node
  // wraps the tman.
  void KillNode(size_t i) {
    NodeSlot& s = *slots_[i];
    for (const auto& [id, n] : s.cur_fired) {
      fired_total_[id] += n;
      ambiguous_.insert(id);
    }
    s.cur_fired.clear();
    s.node.reset();
    s.tman.reset();
    s.alive = false;
  }

  // A mute is not a kill: the incarnation lives on, but anything it fired
  // before going silent may have an ack stuck in its outbox — the router
  // declares it dead and re-routes those tokens, so they carry the same
  // lost-ack <=2 ambiguity as a kill. Tokens it had NOT fired stay strict:
  // rejoin fences stop their staged copies.
  void MarkFiredAmbiguous(size_t i) {
    for (const auto& [id, n] : slots_[i]->cur_fired) ambiguous_.insert(id);
  }

  // Merge every still-running incarnation (end of scenario; no ambiguity).
  void FinishFirings() {
    for (auto& slot : slots_) {
      for (const auto& [id, n] : slot->cur_fired) fired_total_[id] += n;
      slot->cur_fired.clear();
    }
  }

  ClusterRouter::NodeConnector ConnectorFor(size_t i) {
    return [this, i]() -> Result<std::unique_ptr<PollableTransport>> {
      NodeSlot& s = *slots_[i];
      if (!s.alive || s.node == nullptr) {
        return Status::Unavailable(s.name + " is down");
      }
      auto pair = CreatePollableLoopbackPair(1 << 18);
      s.node->AddConnection(std::move(pair.second));
      return std::move(pair.first);
    };
  }

  void RegisterNodes(ClusterRouter* router) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      router->AddNode(slots_[i]->name, ConnectorFor(i));
    }
  }

  // One bounded deterministic step of node i: pump connections, then run
  // at most one task (recovered tokens wait out the fencing hold). A
  // non-zero `now_ms` feeds the node's router-liveness lease clock.
  bool StepNode(size_t i, uint64_t now_ms = 0) {
    NodeSlot& s = *slots_[i];
    if (!s.alive || s.muted) return false;
    bool progress = s.node->Pump(now_ms);
    if (!s.node->processing_held()) {
      Task task;
      if (s.tman->task_queue().TryPop(&task)) {
        (void)task.work();
        s.tman->task_queue().MarkDone();
        progress = true;
      }
    }
    return progress;
  }

  bool QueuesDrained() const {
    for (const auto& s : slots_) {
      if (!s->alive || s->muted) continue;
      if (s->node->processing_held()) return false;
      if (!s->tman->task_queue().empty() ||
          s->tman->task_queue().in_flight() != 0) {
        return false;
      }
    }
    return true;
  }

  bool MapsConverged(const ClusterRouter& router) const {
    PartitionMap map = router.partition_map();
    for (const auto& s : slots_) {
      if (!s->alive || s->muted) continue;
      if (s->node->epoch() != map.epoch) return false;
    }
    return true;
  }

  UpdateDescriptor Token(int64_t id) const {
    return UpdateDescriptor::Insert(ds_, Tuple({Value::Int(id)}));
  }

  // The cluster-wide differential check. `acked` ids must fire exactly
  // once — twice only if `strict` is off and the id is ambiguous (fired
  // on a killed incarnation pre-kill).
  void CheckExactlyOnce(const std::set<int64_t>& submitted,
                        const std::set<int64_t>& acked, bool strict,
                        const std::string& context) {
    for (int64_t id : submitted) {
      auto it = fired_total_.find(id);
      int total = it == fired_total_.end() ? 0 : it->second;
      if (acked.count(id)) {
        EXPECT_GE(total, 1) << context << ": acked token " << id << " lost";
        if (strict || !ambiguous_.count(id)) {
          EXPECT_EQ(total, 1)
              << context << ": token " << id << " fired " << total << "x";
        } else {
          EXPECT_LE(total, 2)
              << context << ": token " << id << " fired " << total << "x";
        }
      } else {
        EXPECT_LE(total, 1) << context << ": unacked token " << id;
      }
    }
    for (const auto& [id, n] : fired_total_) {
      EXPECT_TRUE(submitted.count(id))
          << context << ": phantom firing " << id << " x" << n;
    }
  }

  // Opt-in for nodes booted after this call: self-hold when no router
  // frame arrives within `ms` of logical clock (0 disables, the default).
  void set_router_lease_ms(uint64_t ms) { router_lease_ms_ = ms; }

  const ClusterConfig& config() const { return config_; }
  DataSourceId ds() const { return ds_; }
  size_t size() const { return slots_.size(); }
  NodeSlot& slot(size_t i) { return *slots_[i]; }
  const std::map<int64_t, int>& fired_total() const { return fired_total_; }
  const std::set<int64_t>& ambiguous() const { return ambiguous_; }

 private:
  ClusterConfig config_;
  uint64_t router_lease_ms_ = 0;
  DataSourceId ds_ = 0;
  std::vector<std::unique_ptr<NodeSlot>> slots_;
  std::map<int64_t, int> fired_total_;
  std::set<int64_t> ambiguous_;
};

struct ScenarioResult {
  std::set<int64_t> submitted;
  std::set<int64_t> acked;
  uint64_t steps = 0;
  bool completed = false;
};

// Generic scenario driver: N tokens through the router; optionally kill
// one node after `kill_after` tokens were submitted, optionally reboot it
// `rejoin_delay` router pumps later. Runs until every token is acked,
// every queue drained and the maps converge (or the step budget runs out).
ScenarioResult RunScenario(Cluster* cluster, ClusterRouter* router,
                           uint64_t seed, int total_tokens, int kill_after,
                           int victim, int rejoin_delay, bool mute_instead,
                           const std::string& session = "client",
                           int64_t base_id = 1000) {
  ScenarioResult result;
  DeterministicScheduler sched(seed);
  bool done = false;
  uint64_t now_ms = 0;
  int submitted = 0;
  bool killed = false;
  bool rejoined = false;
  int pumps_since_kill = 0;
  std::vector<int64_t> id_by_seq;  // seq - 1 -> token id

  for (size_t i = 0; i < cluster->size(); ++i) {
    sched.AddActor(cluster->slot(i).name, [cluster, i, &done] {
      cluster->StepNode(i);
      return !done;
    });
  }

  sched.AddActor("router", [&] {
    now_ms += 1;
    router->PumpOnce(now_ms);
    if (killed && !rejoined) ++pumps_since_kill;
    if (killed && !rejoined && rejoin_delay >= 0 &&
        pumps_since_kill >= rejoin_delay) {
      if (mute_instead) {
        cluster->slot(victim).muted = false;
      } else {
        cluster->BootNode(victim);
      }
      rejoined = true;
    }
    // Completion: everything acked, processed, and the map settled.
    if (submitted == total_tokens &&
        router->AckedSeq(session) == static_cast<uint64_t>(total_tokens) &&
        router->Idle() && cluster->QueuesDrained() &&
        (!killed || rejoined || rejoin_delay < 0) &&
        cluster->MapsConverged(*router)) {
      done = true;
    }
    return !done;
  });

  sched.AddActor("client", [&] {
    if (submitted < total_tokens) {
      int64_t id = base_id + submitted;
      result.submitted.insert(id);
      id_by_seq.push_back(id);
      router->Submit(session, cluster->Token(id));
      ++submitted;
      if (!killed && kill_after >= 0 && submitted >= kill_after) {
        if (mute_instead) {
          cluster->slot(victim).muted = true;
          cluster->MarkFiredAmbiguous(victim);
        } else {
          cluster->KillNode(victim);
        }
        killed = true;
      }
    }
    return !done;
  });

  result.steps = sched.Run(400000);
  result.completed = done;
  uint64_t acked_seq = router->AckedSeq(session);
  for (uint64_t seq = 1; seq <= acked_seq && seq <= id_by_seq.size(); ++seq) {
    result.acked.insert(id_by_seq[seq - 1]);
  }
  cluster->FinishFirings();
  return result;
}

// --- basic routing -----------------------------------------------------

TEST(ClusterTest, ThreeNodeRoutingSpreadsAndFiresExactlyOnce) {
  Cluster cluster(3);
  cluster.BootAll();
  ClusterRouterOptions opts;
  opts.config = cluster.config();
  opts.membership = TestMembership();
  ClusterRouter router(opts);
  cluster.RegisterNodes(&router);

  ScenarioResult r = RunScenario(&cluster, &router, /*seed=*/7, 200,
                                 /*kill_after=*/-1, -1, -1, false);
  ASSERT_TRUE(r.completed) << "cluster did not settle";
  EXPECT_EQ(r.acked.size(), 200u);
  cluster.CheckExactlyOnce(r.submitted, r.acked, /*strict=*/true, "basic");

  // The EC-key spread puts work on every member.
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_GT(cluster.slot(i).node->stats().tokens_applied, 0u)
        << "node " << i << " never saw a token";
  }
  ClusterRouterStats stats = router.stats();
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.tokens_acked, 200u);
  // Bootstrap joins each bump the epoch; no further repartitions.
  EXPECT_EQ(router.partition_map().epoch, 3u);
}

// --- kill + failover (no rejoin): unacked work re-routes ---------------

TEST(ClusterTest, KillOneNodeFailsOverUnackedWork) {
  Cluster cluster(3);
  cluster.BootAll();
  ClusterRouterOptions opts;
  opts.config = cluster.config();
  opts.membership = TestMembership();
  ClusterRouter router(opts);
  cluster.RegisterNodes(&router);

  ScenarioResult r = RunScenario(&cluster, &router, /*seed=*/11, 150,
                                 /*kill_after=*/60, /*victim=*/1,
                                 /*rejoin_delay=*/-1, false);
  ASSERT_TRUE(r.completed) << "cluster did not settle after failover";
  // Every submitted token is eventually acked: work routed at the dead
  // node re-routes to the survivors.
  EXPECT_EQ(r.acked.size(), 150u);
  ClusterRouterStats stats = router.stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_GE(stats.repartitions, 4u);  // 3 joins + the failover
  // Without a rejoin, tokens the dead node acked but had not fired are
  // not recoverable (single-copy WAL; see DESIGN §12) — so here we only
  // assert the no-double-fire half of the contract plus convergence.
  for (const auto& [id, n] : cluster.fired_total()) {
    EXPECT_LE(n, 1) << "token " << id << " fired twice";
    EXPECT_TRUE(r.submitted.count(id)) << "phantom " << id;
  }
  PartitionMap map = router.partition_map();
  for (const std::string& owner : map.owners) {
    EXPECT_NE(owner, "n1") << "dead node still owns a partition";
  }
}

// --- kill + rejoin: WAL replay + fences, partitions reclaimed ----------

TEST(ClusterTest, KillAndRejoinReplaysWalAndReclaimsPartitions) {
  Cluster cluster(3);
  cluster.BootAll();
  ClusterRouterOptions opts;
  opts.config = cluster.config();
  opts.membership = TestMembership();
  ClusterRouter router(opts);
  cluster.RegisterNodes(&router);

  ScenarioResult r = RunScenario(&cluster, &router, /*seed=*/13, 150,
                                 /*kill_after=*/70, /*victim=*/2,
                                 /*rejoin_delay=*/60, false);
  ASSERT_TRUE(r.completed) << "cluster did not settle after rejoin";
  EXPECT_EQ(r.acked.size(), 150u);
  cluster.CheckExactlyOnce(r.submitted, r.acked, /*strict=*/false, "rejoin");

  ClusterRouterStats stats = router.stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.rejoins, 1u);
  // The rejoined node reclaimed partitions.
  PartitionMap map = router.partition_map();
  size_t reclaimed = 0;
  for (const std::string& owner : map.owners) {
    if (owner == "n2") ++reclaimed;
  }
  EXPECT_GT(reclaimed, 0u) << "rejoined node owns nothing";
  EXPECT_EQ(cluster.slot(2).node->epoch(), map.epoch);
}

// --- silent node: heartbeat-miss death, STRICT exactly-once ------------

TEST(ClusterTest, MutedNodeDiesByHeartbeatAndFencesPreventDoubleFire) {
  Cluster cluster(3);
  cluster.BootAll();
  ClusterRouterOptions opts;
  opts.config = cluster.config();
  opts.membership = TestMembership();
  ClusterRouter router(opts);
  cluster.RegisterNodes(&router);

  ScenarioResult r = RunScenario(&cluster, &router, /*seed=*/17, 120,
                                 /*kill_after=*/50, /*victim=*/0,
                                 /*rejoin_delay=*/150, /*mute=*/true);
  ASSERT_TRUE(r.completed) << "cluster did not settle after mute/unmute";
  EXPECT_EQ(r.acked.size(), 120u);
  // A muted node fires nothing while silent, so exactly-once is strict for
  // every token it had accepted but NOT fired: those were re-routed on its
  // death and their staged copies fenced on reconnect. Only tokens it
  // fired BEFORE going silent (ack possibly stuck in its outbox) carry
  // the usual lost-ack <=2 ambiguity.
  cluster.CheckExactlyOnce(r.submitted, r.acked, /*strict=*/false, "mute");

  ClusterRouterStats stats = router.stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.rejoins, 1u);
  std::map<std::string, PeerHealth> peers = router.peers();
  EXPECT_GE(peers.at("n0").total_misses, TestMembership().miss_threshold);
  EXPECT_EQ(peers.at("n0").deaths, 1u);
  uint64_t fenced = cluster.slot(0).node->stats().tokens_fenced;
  EXPECT_GE(fenced, 0u);  // fences applied on reconnect (may be zero if
                          // nothing was in flight at the death verdict)
}

// --- deterministic seed sweep ------------------------------------------

TEST(ClusterTest, SeedSweepKillRejoinNeverLosesOrDuplicates) {
  const int kSeeds = 1000;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Random rng(0x5eed0000 + seed);
    Cluster cluster(3);
    cluster.BootAll();
    ClusterRouterOptions opts;
    opts.config = cluster.config();
    opts.membership = TestMembership();
    ClusterRouter router(opts);
    cluster.RegisterNodes(&router);

    const int tokens = 24;
    int victim = static_cast<int>(rng.Uniform(3));
    int kill_after = 1 + static_cast<int>(rng.Uniform(tokens));
    int rejoin_delay = 20 + static_cast<int>(rng.Uniform(120));
    bool mute = rng.Bernoulli(0.25);

    ScenarioResult r =
        RunScenario(&cluster, &router, 0xc0ffee + seed, tokens, kill_after,
                    victim, rejoin_delay, mute);
    ASSERT_TRUE(r.completed)
        << "seed " << seed << " (victim n" << victim << ", kill@"
        << kill_after << ", rejoin+" << rejoin_delay << ", mute=" << mute
        << ") did not settle in " << r.steps << " steps";
    ASSERT_EQ(r.acked.size(), static_cast<size_t>(tokens)) << "seed " << seed;
    cluster.CheckExactlyOnce(r.submitted, r.acked, /*strict=*/false,
                             "seed " + std::to_string(seed));
    ASSERT_TRUE(cluster.MapsConverged(router)) << "seed " << seed;
    if (testing::Test::HasFailure()) {
      FAIL() << "first failing seed: " << seed;
    }
  }
}

// --- fault injection at every cluster.* site ---------------------------

TEST(ClusterTest, RouterRegistersClusterFaultSites) {
  FaultInjector faults;
  ClusterRouterOptions opts;
  opts.faults = &faults;
  ClusterRouter router(opts);
  std::vector<std::string> sites = faults.RegisteredSites();
  std::set<std::string> have(sites.begin(), sites.end());
  for (const char* site : {"cluster.route", "cluster.connect",
                           "cluster.heartbeat", "cluster.map.send"}) {
    EXPECT_TRUE(have.count(site)) << "site not registered: " << site;
  }
}

TEST(ClusterTest, FaultInjectionAtEveryClusterSiteStillConverges) {
  // Each cluster.* fault site, injected periodically, must only delay
  // progress, never lose or duplicate an acked token. Heartbeat drops can
  // falsely kill a healthy node, whose already-staged tokens may race the
  // fence install — the documented <=2 ambiguity — so the check is
  // non-strict here.
  for (const char* site : {"cluster.route", "cluster.connect",
                           "cluster.heartbeat", "cluster.map.send"}) {
    FaultInjector faults;
    Cluster cluster(3);
    cluster.BootAll();
    ClusterRouterOptions opts;
    opts.config = cluster.config();
    opts.membership = TestMembership();
    opts.faults = &faults;
    ClusterRouter router(opts);
    cluster.RegisterNodes(&router);
    faults.ArmEveryNth(site, 5, StatusCode::kUnavailable);

    ScenarioResult r = RunScenario(&cluster, &router, /*seed=*/23, 60,
                                   /*kill_after=*/25, /*victim=*/1,
                                   /*rejoin_delay=*/80, false);
    uint64_t injected = faults.site_stats(site).faults;
    faults.ClearAll();
    ASSERT_TRUE(r.completed) << site << ": cluster did not settle";
    EXPECT_EQ(r.acked.size(), 60u) << site;
    for (int64_t id : r.acked) {
      auto it = cluster.fired_total().find(id);
      int total = it == cluster.fired_total().end() ? 0 : it->second;
      EXPECT_GE(total, 1) << site << ": acked token " << id << " lost";
      EXPECT_LE(total, 2) << site << ": token " << id << " fired " << total
                          << "x";
    }
    EXPECT_GT(injected, 0u) << site << " was never exercised";
  }
}

// --- the wire-protocol front end ---------------------------------------

TEST(ClusterTest, WireClientSpeaksFramedProtocolThroughRouter) {
  Cluster cluster(2);
  cluster.BootAll();
  ClusterRouterOptions opts;
  opts.config = cluster.config();
  opts.membership = TestMembership();
  ClusterRouter router(opts);
  cluster.RegisterNodes(&router);

  auto pair = CreatePollableLoopbackPair(1 << 18);
  router.AddClientConn(std::move(pair.second));
  FrameConn client(std::move(pair.first));

  HelloFrame hello;
  hello.client_name = "wire-client";
  client.SendPayload(FrameType::kHello, hello);

  DeterministicScheduler sched(31);
  bool done = false;
  uint64_t now_ms = 0;
  enum Phase { kAwaitHello, kStreaming, kAwaitAcks, kAwaitCommand, kDone };
  Phase phase = kAwaitHello;
  const int kTokens = 20;
  int sent = 0;
  uint64_t acked = 0;
  std::string cluster_reply;
  std::string broadcast_reply;
  uint8_t broadcast_status = 0;
  bool saw_cluster_reply = false;
  bool saw_broadcast_reply = false;

  for (size_t i = 0; i < cluster.size(); ++i) {
    sched.AddActor(cluster.slot(i).name, [&cluster, i, &done] {
      cluster.StepNode(i);
      return !done;
    });
  }
  sched.AddActor("router", [&] {
    now_ms += 1;
    router.PumpOnce(now_ms);
    return !done;
  });
  sched.AddActor("wire-client", [&] {
    client.Pump();
    Frame frame;
    while (client.NextFrame(&frame)) {
      switch (frame.type) {
        case FrameType::kHelloReply: {
          auto reply = HelloReplyFrame::Decode(frame.payload);
          EXPECT_TRUE(reply.ok());
          if (!reply.ok()) break;
          EXPECT_EQ(reply->status_code, 0);
          EXPECT_GT(reply->initial_credits, 0u);
          phase = kStreaming;
          break;
        }
        case FrameType::kUpdateAck: {
          auto ack = UpdateAckFrame::Decode(frame.payload);
          EXPECT_TRUE(ack.ok());
          if (!ack.ok()) break;
          EXPECT_EQ(ack->status_code, 0);
          acked = std::max(acked, ack->ack_seq);
          break;
        }
        case FrameType::kCommandReply: {
          auto reply = CommandReplyFrame::Decode(frame.payload);
          EXPECT_TRUE(reply.ok());
          if (!reply.ok()) break;
          if (reply->request_id == 1) {
            cluster_reply = reply->result;
            saw_cluster_reply = true;
          } else if (reply->request_id == 2) {
            broadcast_reply = reply->result;
            broadcast_status = reply->status_code;
            saw_broadcast_reply = true;
          }
          break;
        }
        case FrameType::kCreditGrant:
          break;  // window replenish; the test keeps batches small
        default:
          ADD_FAILURE() << "unexpected frame "
                        << FrameTypeName(frame.type);
      }
    }
    if (phase == kStreaming) {
      if (sent < kTokens) {
        UpdateBatchFrame batch;
        batch.first_seq = static_cast<uint64_t>(sent) + 1;
        for (int k = 0; k < 5 && sent < kTokens; ++k, ++sent) {
          batch.updates.push_back(cluster.Token(5000 + sent));
        }
        client.SendPayload(FrameType::kUpdateBatch, batch);
      } else {
        phase = kAwaitAcks;
      }
    } else if (phase == kAwaitAcks &&
               acked == static_cast<uint64_t>(kTokens)) {
      CommandFrame cmd;
      cmd.request_id = 1;
      cmd.text = "cluster";  // intercepted by the router
      client.SendPayload(FrameType::kCommand, cmd);
      CommandFrame broadcast;
      broadcast.request_id = 2;
      broadcast.text = "enable trigger watch";  // fanned out to all nodes
      client.SendPayload(FrameType::kCommand, broadcast);
      phase = kAwaitCommand;
    } else if (phase == kAwaitCommand && saw_cluster_reply &&
               saw_broadcast_reply && cluster.QueuesDrained()) {
      phase = kDone;
      done = true;
    }
    return !done;
  });

  sched.Run(200000);
  ASSERT_TRUE(done) << "wire scenario did not finish";
  EXPECT_EQ(acked, static_cast<uint64_t>(kTokens));
  // The router's own console stats answer.
  EXPECT_NE(cluster_reply.find("epoch="), std::string::npos) << cluster_reply;
  EXPECT_NE(cluster_reply.find("node n0"), std::string::npos);
  // The broadcast aggregated one reply per member.
  EXPECT_EQ(broadcast_status, 0) << broadcast_reply;
  EXPECT_NE(broadcast_reply.find("[n0]"), std::string::npos);
  EXPECT_NE(broadcast_reply.find("[n1]"), std::string::npos);

  cluster.FinishFirings();
  int fired = 0;
  for (const auto& [id, n] : cluster.fired_total()) {
    EXPECT_EQ(n, 1) << "token " << id;
    ++fired;
  }
  EXPECT_EQ(fired, kTokens);
}

// --- router restart: epoch adoption ------------------------------------

TEST(ClusterTest, RouterRestartAdoptsDurableNodeEpochs) {
  Cluster cluster(3);
  cluster.BootAll();
  ScenarioResult r1;
  uint64_t old_epoch = 0;
  {
    ClusterRouterOptions opts;
    opts.config = cluster.config();
    opts.membership = TestMembership();
    ClusterRouter router(opts);
    cluster.RegisterNodes(&router);
    r1 = RunScenario(&cluster, &router, /*seed=*/41, 60, -1, -1, -1, false);
    ASSERT_TRUE(r1.completed);
    old_epoch = router.partition_map().epoch;
    EXPECT_EQ(old_epoch, 3u);
  }  // the router dies; nothing was persisted

  // Every member durably remembers epoch 3. A replacement router starts
  // at 0 and its first installs are refused; instead of spinning on the
  // refusal forever it must adopt the highest epoch the members report
  // and re-install above it.
  ClusterRouterOptions opts2;
  opts2.config = cluster.config();
  opts2.membership = TestMembership();
  ClusterRouter router2(opts2);
  cluster.RegisterNodes(&router2);
  ScenarioResult r2 = RunScenario(&cluster, &router2, /*seed=*/43, 60, -1, -1,
                                  -1, false, "client2", /*base_id=*/2000);
  ASSERT_TRUE(r2.completed) << "replacement router never converged past the "
                               "members' durable epochs";
  EXPECT_GE(router2.stats().epoch_adoptions, 1u);
  EXPECT_GT(router2.partition_map().epoch, old_epoch);
  ASSERT_TRUE(cluster.MapsConverged(router2));

  std::set<int64_t> submitted = r1.submitted;
  submitted.insert(r2.submitted.begin(), r2.submitted.end());
  std::set<int64_t> acked = r1.acked;
  acked.insert(r2.acked.begin(), r2.acked.end());
  cluster.CheckExactlyOnce(submitted, acked, /*strict=*/true,
                           "router-restart");
}

// --- router restart: persisted fences survive --------------------------

TEST(ClusterTest, RouterRestartRestoresFencesFromPersistedState) {
  // Phase 1: the victim goes MUTE (alive but silent), the router
  // declares it dead, persists the fence, and re-routes its unacked
  // work to the survivors. Then the router itself dies. Phase 2: a
  // replacement router boots from the persisted snapshot and the victim
  // comes back. The victim still holds the re-routed tokens — buffered
  // sends from the dead channel that it stages the moment it wakes up —
  // and ONLY the restored fence stops it from firing second copies.
  // Whether any such token exists is interleaving-dependent, so sweep a
  // few seeds: every one must keep exactly-once, and at least one must
  // show a nonzero fenced count.
  uint64_t fences_exercised = 0;
  for (uint64_t seed : {47u, 101u, 211u, 307u, 401u, 503u}) {
    Cluster cluster(3);
    cluster.BootAll();
    RouterDurableState saved;
    ScenarioResult r1;
    {
      ClusterRouterOptions opts;
      opts.config = cluster.config();
      opts.membership = TestMembership();
      opts.persist_state = [&saved](const RouterDurableState& s) {
        saved = s;
      };
      ClusterRouter router(opts);
      cluster.RegisterNodes(&router);
      r1 = RunScenario(&cluster, &router, seed, 120, /*kill_after=*/50,
                       /*victim=*/1, /*rejoin_delay=*/-1,
                       /*mute_instead=*/true);
      ASSERT_TRUE(r1.completed) << "seed " << seed;
      EXPECT_EQ(router.stats().failovers, 1u) << "seed " << seed;
    }  // router killed AFTER the failover, BEFORE the victim rejoined

    // The fence for the dead node's channel is in the snapshot: it was
    // persisted before any orphan was re-routed to a survivor.
    ASSERT_GT(saved.epoch, 0u) << "seed " << seed;
    ASSERT_EQ(saved.fences.count("router->n1"), 1u) << "seed " << seed;

    ClusterRouterOptions opts2;
    opts2.config = cluster.config();
    opts2.membership = TestMembership();
    opts2.initial_state = saved;
    ClusterRouter router2(opts2);
    cluster.RegisterNodes(&router2);
    cluster.slot(1).muted = false;  // the silent node wakes up
    ScenarioResult r2 =
        RunScenario(&cluster, &router2, seed + 1, 40, -1, -1, -1, false,
                    "client2", /*base_id=*/3000);
    ASSERT_TRUE(r2.completed)
        << "seed " << seed << ": cluster did not settle after restart";
    EXPECT_GE(router2.partition_map().epoch, saved.epoch);
    fences_exercised += cluster.slot(1).node->stats().tokens_fenced;

    std::set<int64_t> submitted = r1.submitted;
    submitted.insert(r2.submitted.begin(), r2.submitted.end());
    std::set<int64_t> acked = r1.acked;
    acked.insert(r2.acked.begin(), r2.acked.end());
    cluster.CheckExactlyOnce(submitted, acked, /*strict=*/false,
                             "fence-restore seed " + std::to_string(seed));
  }
  EXPECT_GT(fences_exercised, 0u)
      << "no seed left re-routed work staged on the victim; the restored "
         "fence was never exercised";
}

// --- node-side lease: self-hold when the router goes mute --------------

TEST(ClusterTest, NodeLeaseSelfHoldsWhenRouterGoesMute) {
  Cluster cluster(2);
  // Mirror the production wiring: lease = heartbeat interval x threshold,
  // the same window after which the router would declare US dead.
  cluster.set_router_lease_ms(TestMembership().heartbeat_interval_ms *
                              TestMembership().miss_threshold);
  cluster.BootAll();
  ClusterRouterOptions opts;
  opts.config = cluster.config();
  opts.membership = TestMembership();
  ClusterRouter router(opts);
  cluster.RegisterNodes(&router);

  uint64_t now_ms = 0;
  auto step_all = [&](bool with_router) {
    ++now_ms;
    if (with_router) router.PumpOnce(now_ms);
    for (size_t i = 0; i < cluster.size(); ++i) cluster.StepNode(i, now_ms);
  };
  for (int i = 0; i < 2000 && !(router.partition_map().epoch >= 2 &&
                                cluster.MapsConverged(router));
       ++i) {
    step_all(true);
  }
  ASSERT_TRUE(cluster.MapsConverged(router)) << "bootstrap never converged";
  for (size_t i = 0; i < cluster.size(); ++i) {
    ASSERT_FALSE(cluster.slot(i).node->processing_held()) << "n" << i;
  }

  // The router partition goes MUTE: no frames, no observable close. Once
  // the lease window passes with no router traffic, every member must
  // stop processing on its own — the router is by now re-routing their
  // partitions to peers, and a member that kept firing would double-fire.
  for (int i = 0; i < 60; ++i) step_all(false);
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.slot(i).node->processing_held()) << "n" << i;
    EXPECT_TRUE(cluster.slot(i).tman->processing_paused()) << "n" << i;
    EXPECT_GE(cluster.slot(i).node->stats().lease_holds, 1u) << "n" << i;
  }

  // Router traffic alone renews the lease and releases the self-hold —
  // no new map install needed (the router never declared anyone dead).
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.slot(i).node->NoteRouterTraffic(now_ms);
    EXPECT_FALSE(cluster.slot(i).node->processing_held()) << "n" << i;
    EXPECT_FALSE(cluster.slot(i).tman->processing_paused()) << "n" << i;
  }
}

// --- retry budget: persistent node error surfaces to the client --------

TEST(ClusterTest, RetryBudgetFailsTokensAndSurfacesErrorToClient) {
  Cluster cluster(2);
  cluster.BootAll();
  ClusterRouterOptions opts;
  opts.config = cluster.config();
  opts.membership = TestMembership();
  ClusterRouter router(opts);
  cluster.RegisterNodes(&router);

  // Converge and warm the channels first, then break n1's WAL for good:
  // every batch it stages now fails with a real error (not Unavailable),
  // so its acks reject. The router must retry each token a bounded
  // number of times, then fail it to the client instead of re-routing
  // the same batch forever.
  ScenarioResult warm =
      RunScenario(&cluster, &router, /*seed=*/59, 10, -1, -1, -1, false);
  ASSERT_TRUE(warm.completed);
  cluster.slot(1).db->disk()->fault_injector()->ArmEveryNth(
      "wal.append", 1, StatusCode::kIoError);

  const int kTokens = 40;
  DeterministicScheduler sched(61);
  bool done = false;
  uint64_t now_ms = 1000;
  int submitted = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    sched.AddActor(cluster.slot(i).name, [&cluster, i, &done] {
      cluster.StepNode(i);
      return !done;
    });
  }
  sched.AddActor("router", [&] {
    now_ms += 1;
    router.PumpOnce(now_ms);
    if (submitted == kTokens &&
        router.AckedSeq("client2") == static_cast<uint64_t>(kTokens) &&
        router.Idle()) {
      done = true;
    }
    return !done;
  });
  sched.AddActor("client", [&] {
    if (submitted < kTokens) {
      router.Submit("client2", cluster.Token(4000 + submitted));
      ++submitted;
    }
    return !done;
  });
  sched.Run(400000);
  ASSERT_TRUE(done) << "acks never completed: a failing token must not "
                       "stall the session forever";

  cluster.slot(1).db->disk()->fault_injector()->ClearAll();
  ClusterRouterStats stats = router.stats();
  EXPECT_GT(stats.tokens_failed, 0u) << "n1 owns partitions; some tokens "
                                        "must have exhausted the budget";
  EXPECT_NE(router.SessionErrorCode("client2"), 0);
  // Tokens owned by the healthy node fired exactly once; failed ones not
  // at all — never twice.
  cluster.FinishFirings();
  for (const auto& [id, n] : cluster.fired_total()) {
    EXPECT_LE(n, 1) << "token " << id;
  }
  EXPECT_GT(stats.tokens_acked, 10u);  // warm phase + n0-owned tokens
}

// --- determinism of the harness itself ---------------------------------

TEST(ClusterTest, SameSeedSameFailoverSchedule) {
  auto run = [](uint64_t seed) {
    Cluster cluster(3);
    cluster.BootAll();
    ClusterRouterOptions opts;
    opts.config = cluster.config();
    opts.membership = TestMembership();
    ClusterRouter router(opts);
    cluster.RegisterNodes(&router);
    ScenarioResult r = RunScenario(&cluster, &router, seed, 80,
                                   /*kill_after=*/30, /*victim=*/1,
                                   /*rejoin_delay=*/50, false);
    ClusterRouterStats s = router.stats();
    return std::tuple<bool, uint64_t, uint64_t, uint64_t, uint64_t>(
        r.completed, r.steps, s.batches_sent, s.repartitions,
        s.misrouted_retries);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<1>(run(42)), 0u);
}

}  // namespace
}  // namespace tman
