#include <gtest/gtest.h>

#include "core/trigger_manager.h"
#include "db/sql.h"
#include "parser/parser.h"

namespace tman {
namespace {

// --- GroupByEvaluator unit tests --------------------------------------------

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : schema_({{"dept", DataType::kInt},
                 {"salary", DataType::kFloat},
                 {"name", DataType::kVarchar}}) {}

  std::unique_ptr<GroupByEvaluator> Make(const std::string& having,
                                         std::vector<ExprPtr> args = {}) {
    ExprPtr having_expr;
    if (!having.empty()) {
      auto parsed = ParseExpressionString(having);
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
      having_expr = *parsed;
    }
    auto group = ParseExpressionString("e.dept");
    EXPECT_TRUE(group.ok());
    auto ev = GroupByEvaluator::Create("e", schema_, {*group}, having_expr,
                                       args);
    EXPECT_TRUE(ev.ok()) << ev.status().ToString();
    return std::move(*ev);
  }

  UpdateDescriptor Ins(int64_t dept, double salary) {
    return UpdateDescriptor::Insert(
        1, Tuple({Value::Int(dept), Value::Float(salary),
                  Value::String("x")}));
  }
  UpdateDescriptor Del(int64_t dept, double salary) {
    return UpdateDescriptor::Delete(
        1, Tuple({Value::Int(dept), Value::Float(salary),
                  Value::String("x")}));
  }

  Schema schema_;
};

TEST_F(EvaluatorTest, CountThresholdFiresOnceAtEdge) {
  auto ev = Make("count(e.dept) >= 3");
  EXPECT_TRUE(ev->Apply(Ins(1, 10))->empty());
  EXPECT_TRUE(ev->Apply(Ins(1, 20))->empty());
  auto f = ev->Apply(Ins(1, 30));
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 1u);
  EXPECT_EQ((*f)[0].group_key[0].as_int(), 1);
  // Already true: no re-firing while it stays true.
  EXPECT_TRUE(ev->Apply(Ins(1, 40))->empty());
  // Other group independent.
  EXPECT_TRUE(ev->Apply(Ins(2, 5))->empty());
}

TEST_F(EvaluatorTest, DeleteRearmsTheEdge) {
  auto ev = Make("count(e.dept) >= 2");
  EXPECT_TRUE(ev->Apply(Ins(1, 10))->empty());
  EXPECT_EQ(ev->Apply(Ins(1, 20))->size(), 1u);
  EXPECT_TRUE(ev->Apply(Del(1, 20))->empty());   // drops to 1: goes false
  EXPECT_EQ(ev->Apply(Ins(1, 30))->size(), 1u);  // true again: re-fires
}

TEST_F(EvaluatorTest, SumAvgMinMax) {
  auto ev = Make("sum(e.salary) > 100 and avg(e.salary) >= 40 and "
                 "min(e.salary) > 5 and max(e.salary) < 100");
  EXPECT_TRUE(ev->Apply(Ins(1, 50))->empty());   // sum 50
  EXPECT_TRUE(ev->Apply(Ins(1, 30))->empty());   // sum 80
  auto f = ev->Apply(Ins(1, 40));                // sum 120, avg 40, min 30
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), 1u);
  // A 200-salary insert breaks max < 100 -> false again.
  EXPECT_TRUE(ev->Apply(Ins(1, 200))->empty());
  // Removing it restores the condition -> fires again.
  EXPECT_EQ(ev->Apply(Del(1, 200))->size(), 1u);
}

TEST_F(EvaluatorTest, UpdateMovesBetweenGroups) {
  auto ev = Make("count(e.dept) >= 2");
  EXPECT_TRUE(ev->Apply(Ins(1, 10))->empty());
  EXPECT_TRUE(ev->Apply(Ins(2, 20))->empty());
  // Update moves the dept-2 row into dept 1: group 1 reaches 2.
  auto upd = UpdateDescriptor::Update(
      1, Tuple({Value::Int(2), Value::Float(20), Value::String("x")}),
      Tuple({Value::Int(1), Value::Float(20), Value::String("x")}));
  auto f = ev->Apply(upd);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 1u);
  EXPECT_EQ((*f)[0].group_key[0].as_int(), 1);
  EXPECT_EQ(ev->num_groups(), 1u);  // group 2 emptied and erased
}

TEST_F(EvaluatorTest, AggregatesSkipNulls) {
  auto ev = Make("count(e.salary) >= 1");
  auto null_salary = UpdateDescriptor::Insert(
      1, Tuple({Value::Int(1), Value::Null(), Value::String("x")}));
  EXPECT_TRUE(ev->Apply(null_salary)->empty());  // NULL not counted
  EXPECT_EQ(ev->Apply(Ins(1, 10))->size(), 1u);
}

TEST_F(EvaluatorTest, ActionArgInstantiation) {
  auto arg = ParseExpressionString("count(e.dept) * 10");
  ASSERT_TRUE(arg.ok());
  auto ev = Make("count(e.dept) >= 2", {*arg});
  (void)ev->Apply(Ins(1, 10));
  auto f = ev->Apply(Ins(1, 20));
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 1u);
  auto inst = ev->InstantiateActionArg(0, (*f)[0]);
  ASSERT_TRUE(inst.ok());
  // The aggregate placeholder bound to 2: expression is (2 * 10).
  Bindings b;
  Tuple t({Value::Int(1), Value::Float(20), Value::String("x")});
  b.Bind("e", &schema_, &t);
  EXPECT_EQ(EvalExpr(*inst, b)->as_int(), 20);
}

TEST_F(EvaluatorTest, DedupesEqualAggregateCalls) {
  auto ev = Make("count(e.dept) >= 2 and count(e.dept) <= 10");
  EXPECT_EQ(ev->num_aggregates(), 1u);
}

// --- end-to-end aggregate triggers -------------------------------------------

class AggregateTriggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("orders",
                                 Schema({{"cust", DataType::kInt},
                                         {"amount", DataType::kFloat},
                                         {"region", DataType::kVarchar}}))
                    .ok());
    tman_ = std::make_unique<TriggerManager>(db_.get());
    ASSERT_TRUE(tman_->Open().ok());
    ASSERT_TRUE(tman_->DefineLocalTableSource("orders").ok());
  }

  void Order(int64_t cust, double amount, const std::string& region) {
    ASSERT_TRUE(db_->Insert("orders", Tuple({Value::Int(cust),
                                             Value::Float(amount),
                                             Value::String(region)}))
                    .ok());
    ASSERT_TRUE(tman_->ProcessPending().ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerManager> tman_;
};

TEST_F(AggregateTriggerTest, BigSpenderAlert) {
  auto r = tman_->ExecuteCommand(
      "create trigger bigSpender from orders o "
      "group by o.cust having sum(o.amount) > 1000 "
      "do raise event BigSpender(o.cust, sum(o.amount))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  Order(1, 400, "east");
  Order(2, 900, "west");
  Order(1, 500, "east");
  EXPECT_EQ(tman_->events().num_raised(), 0u);
  Order(1, 200, "east");  // cust 1 crosses 1000
  ASSERT_EQ(tman_->events().num_raised(), 1u);
  Event e = tman_->events().History()[0];
  EXPECT_EQ(e.name, "BigSpender");
  EXPECT_EQ(e.args[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(e.args[1].as_float(), 1100);
  // Still above threshold: no refire.
  Order(1, 10, "east");
  EXPECT_EQ(tman_->events().num_raised(), 1u);
  // Cust 2 crosses independently.
  Order(2, 200, "west");
  EXPECT_EQ(tman_->events().num_raised(), 2u);
}

TEST_F(AggregateTriggerTest, SelectionFiltersBeforeGrouping) {
  // Only east-region orders count toward the group.
  auto r = tman_->ExecuteCommand(
      "create trigger eastVolume from orders o "
      "when o.region = 'east' "
      "group by o.cust having count(o.cust) >= 2 "
      "do raise event EastRegular(o.cust)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Order(5, 10, "east");
  Order(5, 10, "west");  // filtered by selection
  EXPECT_EQ(tman_->events().num_raised(), 0u);
  Order(5, 10, "east");
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(AggregateTriggerTest, DropRemovesAggregateState) {
  ASSERT_TRUE(tman_->ExecuteCommand(
                       "create trigger agg from orders o group by o.cust "
                       "having count(o.cust) >= 2 do raise event E(o.cust)")
                  .ok());
  Order(1, 10, "east");
  ASSERT_TRUE(tman_->DropTrigger("agg").ok());
  Order(1, 10, "east");
  EXPECT_EQ(tman_->events().num_raised(), 0u);
}

TEST_F(AggregateTriggerTest, DeleteLowersAggregates) {
  ASSERT_TRUE(tman_->ExecuteCommand(
                       "create trigger agg from orders o group by o.cust "
                       "having count(o.cust) >= 2 do raise event E(o.cust)")
                  .ok());
  Order(1, 10, "east");
  Order(1, 20, "east");
  EXPECT_EQ(tman_->events().num_raised(), 1u);
  ASSERT_TRUE(
      ExecuteSql(db_.get(), "delete from orders where amount = 20").ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  // Dropped below threshold; re-crossing fires again.
  Order(1, 30, "east");
  EXPECT_EQ(tman_->events().num_raised(), 2u);
}

}  // namespace
}  // namespace tman
