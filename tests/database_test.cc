#include <gtest/gtest.h>

#include "db/database.h"

namespace tman {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("emp", Schema({{"name", DataType::kVarchar},
                                                {"salary", DataType::kFloat},
                                                {"dept", DataType::kInt}}))
                    .ok());
  }

  Tuple Emp(const std::string& name, double salary, int64_t dept) {
    return Tuple(
        {Value::String(name), Value::Float(salary), Value::Int(dept)});
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateTableDuplicateFails) {
  EXPECT_FALSE(db_->CreateTable("emp", Schema()).ok());
  EXPECT_TRUE(db_->HasTable("EMP"));  // case-insensitive
  EXPECT_FALSE(db_->HasTable("nope"));
}

TEST_F(DatabaseTest, InsertGetScan) {
  auto rid = db_->Insert("emp", Emp("Bob", 85000, 3));
  ASSERT_TRUE(rid.ok());
  auto t = db_->Get("emp", *rid);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0).as_string(), "Bob");

  ASSERT_TRUE(db_->Insert("emp", Emp("Alice", 95000, 3)).ok());
  int count = 0;
  ASSERT_TRUE(db_->Scan("emp", [&](const Rid&, const Tuple&) {
                  ++count;
                  return true;
                }).ok());
  EXPECT_EQ(count, 2);
  EXPECT_EQ(*db_->NumRows("emp"), 2u);
}

TEST_F(DatabaseTest, SchemaCoercionOnInsert) {
  // salary arrives as int, is coerced to float per schema.
  auto rid = db_->Insert(
      "emp", Tuple({Value::String("X"), Value::Int(100), Value::Int(1)}));
  ASSERT_TRUE(rid.ok());
  EXPECT_TRUE(db_->Get("emp", *rid)->at(1).is_float());
  // Wrong arity fails.
  EXPECT_FALSE(db_->Insert("emp", Tuple({Value::Int(1)})).ok());
}

TEST_F(DatabaseTest, IndexMaintainedAcrossDml) {
  ASSERT_TRUE(db_->CreateIndex("idx_dept", "emp", {"dept"}).ok());
  auto r1 = db_->Insert("emp", Emp("A", 1, 10));
  auto r2 = db_->Insert("emp", Emp("B", 2, 10));
  auto r3 = db_->Insert("emp", Emp("C", 3, 20));
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());

  auto hits = db_->IndexLookup("idx_dept", {Value::Int(10)});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);

  // Update moves C from dept 20 to 10.
  ASSERT_TRUE(db_->Update("emp", *r3, Emp("C", 3, 10)).ok());
  EXPECT_EQ(db_->IndexLookup("idx_dept", {Value::Int(10)})->size(), 3u);
  EXPECT_TRUE(db_->IndexLookup("idx_dept", {Value::Int(20)})->empty());

  // Delete removes from the index.
  ASSERT_TRUE(db_->Delete("emp", *r1).ok());
  EXPECT_EQ(db_->IndexLookup("idx_dept", {Value::Int(10)})->size(), 2u);
}

TEST_F(DatabaseTest, IndexBackfillsExistingRows) {
  ASSERT_TRUE(db_->Insert("emp", Emp("A", 1, 7)).ok());
  ASSERT_TRUE(db_->Insert("emp", Emp("B", 2, 7)).ok());
  ASSERT_TRUE(db_->CreateIndex("idx_dept", "emp", {"dept"}).ok());
  EXPECT_EQ(db_->IndexLookup("idx_dept", {Value::Int(7)})->size(), 2u);
}

TEST_F(DatabaseTest, CompositeIndexAndFindIndexOn) {
  ASSERT_TRUE(db_->CreateIndex("idx_nd", "emp", {"name", "dept"}).ok());
  auto found = db_->FindIndexOn("emp", {"name", "dept"});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, "idx_nd");
  EXPECT_FALSE(db_->FindIndexOn("emp", {"dept", "name"}).ok());
  EXPECT_FALSE(db_->FindIndexOn("emp", {"name"}).ok());
}

TEST_F(DatabaseTest, IndexRangeScan) {
  ASSERT_TRUE(db_->CreateIndex("idx_dept", "emp", {"dept"}).ok());
  for (int64_t d = 0; d < 10; ++d) {
    ASSERT_TRUE(db_->Insert("emp", Emp("e", 1, d)).ok());
  }
  int count = 0;
  ASSERT_TRUE(db_->IndexRange("idx_dept", {{Value::Int(3)}}, true,
                              {{Value::Int(6)}}, false,
                              [&](const std::vector<Value>&, const Rid&) {
                                ++count;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(count, 3);  // 3, 4, 5
}

TEST_F(DatabaseTest, UpdateHookObservesAllOps) {
  std::vector<UpdateDescriptor> captured;
  ASSERT_TRUE(db_->SetUpdateHook("emp", [&](const UpdateDescriptor& u) {
                  captured.push_back(u);
                }).ok());
  auto rid = db_->Insert("emp", Emp("Bob", 1, 1));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(db_->Update("emp", *rid, Emp("Bob", 2, 1)).ok());
  ASSERT_TRUE(db_->Delete("emp", *rid).ok());

  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].op, OpCode::kInsert);
  EXPECT_EQ(captured[1].op, OpCode::kUpdate);
  EXPECT_DOUBLE_EQ(captured[1].old_tuple->at(1).as_float(), 1.0);
  EXPECT_DOUBLE_EQ(captured[1].new_tuple->at(1).as_float(), 2.0);
  EXPECT_EQ(captured[2].op, OpCode::kDelete);

  ASSERT_TRUE(db_->ClearUpdateHook("emp").ok());
  ASSERT_TRUE(db_->Insert("emp", Emp("Eve", 1, 1)).ok());
  EXPECT_EQ(captured.size(), 3u);  // hook removed
}

TEST_F(DatabaseTest, DropTableAndIndex) {
  ASSERT_TRUE(db_->CreateIndex("idx_dept", "emp", {"dept"}).ok());
  ASSERT_TRUE(db_->DropIndex("idx_dept").ok());
  EXPECT_FALSE(db_->IndexLookup("idx_dept", {Value::Int(1)}).ok());
  ASSERT_TRUE(db_->DropTable("emp").ok());
  EXPECT_FALSE(db_->HasTable("emp"));
  EXPECT_FALSE(db_->Insert("emp", Emp("x", 1, 1)).ok());
}

TEST_F(DatabaseTest, TableIdsStable) {
  auto id = db_->TableIdOf("emp");
  ASSERT_TRUE(id.ok());
  auto name = db_->TableNameOf(*id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "emp");
  EXPECT_FALSE(db_->TableNameOf(9999).ok());
}

TEST_F(DatabaseTest, ManyRowsSpillAndSurvive) {
  DatabaseOptions opts;
  opts.buffer_pool_frames = 16;  // tiny pool forces eviction traffic
  Database small(opts);
  ASSERT_TRUE(small.CreateTable("t", Schema({{"k", DataType::kInt},
                                             {"v", DataType::kVarchar}}))
                  .ok());
  ASSERT_TRUE(small.CreateIndex("idx_k", "t", {"k"}).ok());
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(small.Insert("t", Tuple({Value::Int(i),
                                         Value::String("v" +
                                                       std::to_string(i))}))
                    .ok());
  }
  EXPECT_EQ(*small.NumRows("t"), 2000u);
  auto hits = small.IndexLookup("idx_k", {Value::Int(1234)});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(small.Get("t", (*hits)[0])->at(1).as_string(), "v1234");
  EXPECT_GT(small.buffer_pool()->stats().evictions, 0u);
}

}  // namespace
}  // namespace tman
