#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "core/trigger_manager.h"
#include "expr/cnf.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/token_batch.h"
#include "network/gator.h"
#include "parser/parser.h"
#include "predindex/predicate_index.h"
#include "runtime/task_queue.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

// ---------------------------------------------------------------------------
// TokenBatch container
// ---------------------------------------------------------------------------

TEST(TokenBatchTest, AppendAndAccess) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::Int(2)});
  TokenBatch batch(2);
  EXPECT_TRUE(batch.empty());
  batch.Append(&a, &b);
  batch.Append(&b, &a);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.num_slots(), 2u);
  EXPECT_EQ(batch.at(0, 0), &a);
  EXPECT_EQ(batch.at(1, 0), &b);
  EXPECT_EQ(batch.at(0, 1), &b);
  EXPECT_EQ(batch.at(1, 1), &a);
  // Columns are contiguous per slot.
  EXPECT_EQ(batch.slot(0)[0], &a);
  EXPECT_EQ(batch.slot(0)[1], &b);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.num_slots(), 2u);
  batch.Reset(1);
  batch.Append(&a);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.at(0, 0), &a);
}

// ---------------------------------------------------------------------------
// Batched VM: differential against scalar-compiled and interpreter
// ---------------------------------------------------------------------------

class BatchVmTest : public ::testing::Test {
 protected:
  BatchVmTest()
      : schema_({{"name", DataType::kVarchar},
                 {"salary", DataType::kFloat},
                 {"dept", DataType::kInt}}) {
    layout_.Add("emp", &schema_);
  }

  Schema schema_;
  BindingLayout layout_;
};

TEST_F(BatchVmTest, BatchMatchesScalarPerLane) {
  ExprPtr e = Parse("emp.dept = 3 and emp.salary > 50000");
  auto compiled = CompiledPredicate::Compile(e, layout_);
  ASSERT_TRUE(compiled.ok());

  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) {
    tuples.push_back(Tuple({Value::String("e"), Value::Float(1000.0 * i),
                            Value::Int(i % 5)}));
  }
  TokenBatch batch(1);
  for (const Tuple& t : tuples) batch.Append(&t);

  BatchResult result;
  ASSERT_TRUE(compiled->EvalBatch(batch, &result).ok());
  ASSERT_EQ(result.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    const Tuple* slot[] = {&tuples[i]};
    auto scalar = compiled->EvalValue(slot, 1);
    ASSERT_TRUE(scalar.ok());
    ASSERT_TRUE(result.ok(i));
    EXPECT_EQ(result.value(i).ToString(), scalar->ToString()) << i;
  }
}

TEST_F(BatchVmTest, ErrorLanesAreIsolated) {
  // Lane-local division by zero: the failing lanes carry the scalar
  // error, the rest of the batch still evaluates.
  ExprPtr e = Parse("100 / emp.dept > 10");
  auto compiled = CompiledPredicate::Compile(e, layout_);
  ASSERT_TRUE(compiled.ok());

  std::vector<Tuple> tuples;
  for (int i = 0; i < 8; ++i) {
    tuples.push_back(
        Tuple({Value::String("e"), Value::Float(1), Value::Int(i % 2)}));
  }
  TokenBatch batch(1);
  for (const Tuple& t : tuples) batch.Append(&t);
  BatchResult result;
  ASSERT_TRUE(compiled->EvalBatch(batch, &result).ok());
  EXPECT_EQ(result.num_errors(), 4u);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i % 2 == 0) {
      ASSERT_FALSE(result.ok(i));
      EXPECT_EQ(result.status(i).message(), "integer division by zero");
    } else {
      ASSERT_TRUE(result.ok(i));
      EXPECT_EQ(result.value(i).as_int(), 1);
    }
  }

  std::vector<uint32_t> selection;
  ASSERT_TRUE(compiled->EvalBoolBatch(batch, &result, &selection).ok());
  ASSERT_EQ(selection.size(), 4u);
  for (uint32_t lane : selection) EXPECT_EQ(lane % 2, 1u);
}

TEST_F(BatchVmTest, MissingBindingsAndParams) {
  ExprPtr e = Parse("emp.dept = 1");
  auto compiled = CompiledPredicate::Compile(e, layout_);
  ASSERT_TRUE(compiled.ok());
  TokenBatch empty_slots(1);  // zero lanes: fine
  BatchResult result;
  EXPECT_TRUE(compiled->EvalBatch(empty_slots, &result).ok());
  EXPECT_EQ(result.size(), 0u);

  CompileOptions opts;
  opts.allow_params = true;
  ExprPtr p = MakeBinary(BinOp::kGt, MakePlaceholder(1),
                         MakeLiteral(Value::Int(10)));
  auto with_params = CompiledPredicate::Compile(p, layout_, opts);
  ASSERT_TRUE(with_params.ok());
  Tuple t({Value::String("x"), Value::Float(0), Value::Int(0)});
  TokenBatch batch(1);
  batch.Append(&t);
  // Missing parameters is a whole-batch (structural) error.
  EXPECT_FALSE(with_params->EvalBatch(batch, &result).ok());
  Value params[] = {Value::Int(42)};
  ASSERT_TRUE(with_params->EvalBatch(batch, &result, params, 1).ok());
  ASSERT_TRUE(result.ok(0));
  EXPECT_EQ(result.value(0).as_int(), 1);
}

// Port of the compiled-eval fuzzer, extended to batches: every random
// expression is evaluated over a randomized batch (NULL-heavy, mixed
// int/float/string columns) and each lane must agree with BOTH oracles —
// the scalar compiled program and the tree interpreter — value-for-value
// and error-for-error, message included.
class ExprFuzzer {
 public:
  ExprFuzzer(uint32_t seed, const Schema* s0, const Schema* s1)
      : rng_(seed), s0_(s0), s1_(s1) {}

  ExprPtr Random(int depth) { return Gen(depth); }

  Value RandomValueOfType(DataType t) {
    if (Chance(20)) return Value::Null();
    switch (t) {
      case DataType::kInt:
        return Value::Int(Int(-4, 4));
      case DataType::kFloat:
        return Value::Float(static_cast<double>(Int(-4, 4)) / 2.0);
      default:
        return Value::String(RandomShortString());
    }
  }

  Tuple RandomTuple(const Schema& s) {
    std::vector<Value> vals;
    vals.reserve(s.num_fields());
    for (const Field& f : s.fields()) {
      vals.push_back(RandomValueOfType(f.type));
    }
    return Tuple(std::move(vals));
  }

  int64_t Int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng_);
  }

 private:
  bool Chance(int percent) { return Int(0, 99) < percent; }
  std::string RandomShortString() {
    static const char* kStrings[] = {"", "a", "b", "ab", "xyz", "A"};
    return kStrings[Int(0, 5)];
  }

  ExprPtr GenLeaf() {
    switch (Int(0, 5)) {
      case 0:
        return MakeLiteral(Value::Int(Int(-4, 4)));
      case 1:
        return MakeLiteral(Value::Float(static_cast<double>(Int(-4, 4)) / 2));
      case 2:
        return MakeLiteral(Value::String(RandomShortString()));
      case 3:
        return MakeLiteral(Value::Null());
      default: {
        const Schema* s = Chance(50) ? s0_ : s1_;
        const char* var = s == s0_ ? "t0" : "t1";
        size_t f = static_cast<size_t>(Int(0, s->num_fields() - 1));
        if (Chance(25)) return MakeColumnRef("", s->field(f).name);
        return MakeColumnRef(var, s->field(f).name);
      }
    }
  }

  ExprPtr Gen(int depth) {
    if (depth <= 0 || Chance(25)) return GenLeaf();
    switch (Int(0, 9)) {
      case 0:
        return MakeBinary(BinOp::kAnd, Gen(depth - 1), Gen(depth - 1));
      case 1:
        return MakeBinary(BinOp::kOr, Gen(depth - 1), Gen(depth - 1));
      case 2: {
        static const BinOp kCmps[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt,
                                      BinOp::kLe, BinOp::kGt, BinOp::kGe};
        return MakeBinary(kCmps[Int(0, 5)], Gen(depth - 1), Gen(depth - 1));
      }
      case 3: {
        static const BinOp kArith[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul,
                                       BinOp::kDiv};
        return MakeBinary(kArith[Int(0, 3)], Gen(depth - 1), Gen(depth - 1));
      }
      case 4:
        return MakeUnary(UnOp::kNot, Gen(depth - 1));
      case 5:
        return MakeUnary(UnOp::kNeg, Gen(depth - 1));
      case 6: {
        static const char* kUnaryFns[] = {"abs", "length", "upper", "lower",
                                          "round"};
        return MakeFunctionCall(kUnaryFns[Int(0, 4)], {Gen(depth - 1)});
      }
      case 7:
        return MakeFunctionCall("mod", {Gen(depth - 1), Gen(depth - 1)});
      default:
        return MakeBinary(BinOp::kAnd, Gen(depth - 1), Gen(depth - 1));
    }
  }

  std::mt19937 rng_;
  const Schema* s0_;
  const Schema* s1_;
};

TEST(BatchVmFuzzTest, DifferentialAgainstScalarAndInterpreter) {
  Schema s0({{"a", DataType::kInt},
             {"b", DataType::kFloat},
             {"s", DataType::kVarchar}});
  Schema s1({{"x", DataType::kInt},
             {"y", DataType::kFloat},
             {"z", DataType::kChar}});
  BindingLayout layout;
  layout.Add("t0", &s0);
  layout.Add("t1", &s1);

  ExprFuzzer fuzz(20260808, &s0, &s1);
  static const size_t kBatchSizes[] = {1, 3, 8, 64, 100};
  for (int iter = 0; iter < 600; ++iter) {
    ExprPtr e = fuzz.Random(4);
    auto compiled = CompiledPredicate::Compile(e, layout);
    ASSERT_TRUE(compiled.ok())
        << ExprToString(e) << ": " << compiled.status().ToString();

    const size_t lanes = kBatchSizes[iter % 5];
    std::vector<Tuple> t0s, t1s;
    for (size_t i = 0; i < lanes; ++i) {
      t0s.push_back(fuzz.RandomTuple(s0));
      t1s.push_back(fuzz.RandomTuple(s1));
    }
    TokenBatch batch(2);
    for (size_t i = 0; i < lanes; ++i) batch.Append(&t0s[i], &t1s[i]);

    BatchResult result;
    ASSERT_TRUE(compiled->EvalBatch(batch, &result).ok()) << ExprToString(e);
    ASSERT_EQ(result.size(), lanes);

    for (size_t i = 0; i < lanes; ++i) {
      const Tuple* slots[] = {&t0s[i], &t1s[i]};
      Result<Value> sv = compiled->EvalValue(slots, 2);
      Bindings b;
      b.Bind("t0", &s0, &t0s[i]);
      b.Bind("t1", &s1, &t1s[i]);
      Result<Value> iv = EvalExpr(e, b);

      ASSERT_EQ(result.ok(i), sv.ok())
          << ExprToString(e) << "\nlane " << i << " t0=" << t0s[i].ToString()
          << " t1=" << t1s[i].ToString()
          << "\nbatched: " << result.status(i).ToString()
          << "\nscalar: " << sv.status().ToString() << "\n"
          << compiled->Disassemble();
      ASSERT_EQ(result.ok(i), iv.ok()) << ExprToString(e) << " lane " << i;
      if (result.ok(i)) {
        const Value& bv = result.value(i);
        ASSERT_EQ(bv.is_null(), sv->is_null()) << ExprToString(e);
        ASSERT_EQ(bv.ToString(), sv->ToString())
            << ExprToString(e) << "\nlane " << i << " t0=" << t0s[i].ToString()
            << " t1=" << t1s[i].ToString() << "\nbatched=" << bv.ToString()
            << " scalar=" << sv->ToString() << "\n"
            << compiled->Disassemble();
        ASSERT_EQ(bv.ToString(), iv->ToString()) << ExprToString(e);
      } else {
        ASSERT_EQ(result.status(i).code(), sv.status().code())
            << ExprToString(e);
        ASSERT_EQ(result.status(i).message(), sv.status().message())
            << ExprToString(e) << "\nlane " << i << " t0=" << t0s[i].ToString()
            << " t1=" << t1s[i].ToString() << "\n"
            << compiled->Disassemble();
        ASSERT_EQ(result.status(i).message(), iv.status().message())
            << ExprToString(e);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TaskQueue::PopBatch
// ---------------------------------------------------------------------------

Task Noop() {
  Task t;
  t.work = []() { return Status::OK(); };
  return t;
}

TEST(PopBatchTest, DrainsHomeShardUnderOneLock) {
  TaskQueue q(4);
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back(Noop());
  q.PushBatchToShard(1, std::move(tasks));

  std::vector<Task> out;
  EXPECT_EQ(q.PopBatchFromShard(1, &out, 6), 6u);
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(q.PopBatchFromShard(1, &out, 100), 4u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(q.PopBatchFromShard(1, &out, 4), 0u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.in_flight(), 10u);
  for (size_t i = 0; i < out.size(); ++i) q.MarkDone();

  auto st = q.stats();
  EXPECT_EQ(st.batch_pops, 2u);
  EXPECT_EQ(st.batch_pop_tasks, 10u);
  auto shards = q.shard_stats();
  EXPECT_EQ(shards[1].batch_pops, 2u);
  EXPECT_EQ(shards[1].batch_pop_tasks, 10u);
  EXPECT_EQ(shards[1].steals, 0u);
}

TEST(PopBatchTest, StealTakesAtMostHalf) {
  TaskQueue q(4);
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(Noop());
  q.PushBatchToShard(2, std::move(tasks));

  // Homed on shard 0 (empty): the batch pop steals from shard 2 but may
  // take at most half of its queue even when asked for more.
  std::vector<Task> out;
  EXPECT_EQ(q.PopBatchFromShard(0, &out, 100), 4u);
  auto shards = q.shard_stats();
  EXPECT_EQ(shards[2].steals, 4u);
  EXPECT_EQ(shards[2].depth, 4u);
  // A single remaining task is still stealable (min 1).
  out.clear();
  EXPECT_EQ(q.PopBatchFromShard(0, &out, 3), 2u);
  EXPECT_EQ(q.PopBatchFromShard(0, &out, 100), 1u);
  EXPECT_EQ(q.PopBatchFromShard(0, &out, 100), 1u);
  for (int i = 0; i < 8; ++i) q.MarkDone();
  EXPECT_EQ(q.size(), 0u);
}

TEST(PopBatchTest, RespectsPauseAndZero) {
  TaskQueue q(2);
  q.Push(Noop());
  std::vector<Task> out;
  EXPECT_EQ(q.PopBatch(&out, 0), 0u);
  q.Pause();
  EXPECT_EQ(q.PopBatch(&out, 8), 0u);
  q.Resume();
  EXPECT_EQ(q.PopBatch(&out, 8), 1u);
  q.MarkDone();
}

TEST(PopBatchTest, ConcurrentPoppersSeeEveryTaskOnce) {
  TaskQueue q(4);
  constexpr int kTasks = 4000;
  std::atomic<int> executed{0};
  std::vector<Task> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    Task t;
    t.work = [&executed]() {
      executed.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    };
    tasks.push_back(std::move(t));
  }
  for (int i = 0; i < kTasks; i += 100) {
    std::vector<Task> chunk(std::make_move_iterator(tasks.begin() + i),
                            std::make_move_iterator(tasks.begin() + i + 100));
    q.PushBatchToShard(static_cast<uint32_t>(i / 100) % 4, std::move(chunk));
  }
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&q, w]() {
      std::vector<Task> out;
      for (;;) {
        out.clear();
        if (q.PopBatchFromShard(static_cast<uint32_t>(w), &out, 16) == 0) {
          break;
        }
        for (Task& t : out) {
          (void)t.work();
          q.MarkDone();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.in_flight(), 0u);
  auto st = q.stats();
  EXPECT_EQ(st.popped, static_cast<uint64_t>(kTasks));
  EXPECT_EQ(st.batch_pop_tasks, static_cast<uint64_t>(kTasks));
}

// ---------------------------------------------------------------------------
// PredicateIndex::MatchBatch parity
// ---------------------------------------------------------------------------

TEST(MatchBatchTest, AgreesWithScalarMatch) {
  Database db;
  PredicateIndex pindex(&db, OrgPolicy());
  Schema emp({{"name", DataType::kVarchar},
              {"salary", DataType::kFloat},
              {"dept", DataType::kInt}});
  Schema item({{"sku", DataType::kInt}, {"price", DataType::kFloat}});
  ASSERT_TRUE(pindex.RegisterDataSource(1, emp).ok());
  ASSERT_TRUE(pindex.RegisterDataSource(2, item).ok());

  auto add = [&](DataSourceId ds, OpCode op, const std::string& pred,
                 TriggerId tid) {
    PredicateSpec spec;
    spec.data_source = ds;
    spec.op = op;
    spec.predicate = pred.empty() ? nullptr : Parse(pred);
    spec.trigger_id = tid;
    ASSERT_TRUE(pindex.AddPredicate(spec).ok()) << pred;
  };
  add(1, OpCode::kInsert, "emp.dept = 3 and emp.salary > 1000", 100);
  add(1, OpCode::kInsert, "emp.dept = 3 and length(emp.name) > 2", 101);
  add(1, OpCode::kInsertOrUpdate, "emp.salary > 5000", 102);
  add(1, OpCode::kInsert, "", 103);  // unconditional
  add(2, OpCode::kInsert, "item.price < 10.0", 200);

  std::mt19937 rng(7);
  std::vector<UpdateDescriptor> tokens;
  for (int i = 0; i < 200; ++i) {
    if (rng() % 3 == 0) {
      tokens.push_back(UpdateDescriptor::Insert(
          2, Tuple({Value::Int(static_cast<int64_t>(rng() % 50)),
                    Value::Float(static_cast<double>(rng() % 20))})));
    } else {
      tokens.push_back(UpdateDescriptor::Insert(
          1, Tuple({Value::String(std::string(rng() % 5, 'x')),
                    Value::Float(static_cast<double>(rng() % 10000)),
                    Value::Int(static_cast<int64_t>(rng() % 5))})));
    }
  }

  // Scalar oracle.
  std::vector<std::vector<std::pair<TriggerId, ExprId>>> scalar(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::vector<PredicateMatch> out;
    ASSERT_TRUE(pindex.Match(tokens[i], &out).ok());
    for (const PredicateMatch& m : out) {
      scalar[i].push_back({m.trigger_id, m.expr_id});
    }
  }

  std::vector<std::vector<std::pair<TriggerId, ExprId>>> batched(
      tokens.size());
  std::vector<Status> per_token;
  ASSERT_TRUE(pindex
                  .MatchBatch(tokens, 0, 1,
                              [&](size_t lane, const PredicateMatch& m) {
                                batched[lane].push_back(
                                    {m.trigger_id, m.expr_id});
                              },
                              &per_token)
                  .ok());
  ASSERT_EQ(per_token.size(), tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_TRUE(per_token[i].ok()) << i;
    EXPECT_EQ(batched[i], scalar[i]) << "token " << i;
  }
}

TEST(MatchBatchTest, LaneErrorStopsOnlyThatToken) {
  Database db;
  PredicateIndex pindex(&db, OrgPolicy());
  Schema emp({{"name", DataType::kVarchar}, {"dept", DataType::kInt}});
  ASSERT_TRUE(pindex.RegisterDataSource(1, emp).ok());
  PredicateSpec spec;
  spec.data_source = 1;
  spec.op = OpCode::kInsert;
  // dept = 0 lanes divide by zero inside the rest-of-predicate.
  spec.predicate = Parse("emp.dept = emp.dept and 10 / emp.dept >= 0");
  spec.trigger_id = 7;
  ASSERT_TRUE(pindex.AddPredicate(spec).ok());

  std::vector<UpdateDescriptor> tokens;
  for (int i = 0; i < 6; ++i) {
    tokens.push_back(UpdateDescriptor::Insert(
        1, Tuple({Value::String("x"), Value::Int(i % 3)})));
  }
  std::vector<int> match_count(tokens.size(), 0);
  std::vector<Status> per_token;
  Status first = pindex.MatchBatch(
      tokens, 0, 1,
      [&](size_t lane, const PredicateMatch&) { ++match_count[lane]; },
      &per_token);
  EXPECT_FALSE(first.ok());
  for (size_t i = 0; i < tokens.size(); ++i) {
    // Scalar oracle per token.
    std::vector<PredicateMatch> out;
    Status s = pindex.Match(tokens[i], &out);
    EXPECT_EQ(per_token[i].ok(), s.ok()) << i;
    if (!s.ok()) {
      EXPECT_EQ(per_token[i].message(), s.message()) << i;
    }
    EXPECT_EQ(match_count[i], static_cast<int>(out.size())) << i;
  }
}

// ---------------------------------------------------------------------------
// Gator batch probes
// ---------------------------------------------------------------------------

TEST(GatorBatchTest, AddTupleBatchMatchesSequentialAddTuple) {
  std::vector<TupleVarInfo> vars = {
      {"o", "orders", 11, OpCode::kInsertOrUpdate},
      {"s", "shipments", 12, OpCode::kInsertOrUpdate},
      {"c", "checks", 13, OpCode::kInsertOrUpdate},
  };
  std::vector<Schema> schemas = {
      Schema({{"oid", DataType::kInt}, {"cust", DataType::kInt}}),
      Schema({{"oid", DataType::kInt}, {"qty", DataType::kInt}}),
      Schema({{"oid", DataType::kInt}, {"lim", DataType::kInt}}),
  };
  auto cnf = ToCnf(Parse(
      "o.oid = s.oid and s.oid = c.oid and o.cust < s.qty and c.lim > 0"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(vars, *cnf);
  ASSERT_TRUE(graph.ok());

  auto make_tuples = [](int n, int mod, int second) {
    std::vector<Tuple> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(Tuple({Value::Int(i % mod), Value::Int(second)}));
    }
    return out;
  };
  std::vector<Tuple> orders = make_tuples(24, 6, 1);
  std::vector<Tuple> ships = make_tuples(24, 6, 10);
  std::vector<Tuple> checks = make_tuples(12, 6, 5);

  // Oracle: scalar AddTuple sequence.
  auto scalar_net = GatorNetwork::Build(*graph, schemas);
  ASSERT_TRUE(scalar_net.ok());
  uint64_t scalar_firings = 0;
  auto count = [&scalar_firings](const std::vector<Tuple>&) {
    ++scalar_firings;
  };
  for (const Tuple& t : orders) {
    ASSERT_TRUE((*scalar_net)->AddTuple(0, t, count).ok());
  }
  for (const Tuple& t : ships) {
    ASSERT_TRUE((*scalar_net)->AddTuple(1, t, count).ok());
  }
  for (const Tuple& t : checks) {
    ASSERT_TRUE((*scalar_net)->AddTuple(2, t, count).ok());
  }

  auto batch_net = GatorNetwork::Build(*graph, schemas);
  ASSERT_TRUE(batch_net.ok());
  uint64_t batch_firings = 0;
  std::vector<size_t> lanes_seen;
  auto batch_count = [&](size_t lane, const std::vector<Tuple>&) {
    ++batch_firings;
    lanes_seen.push_back(lane);
  };
  ASSERT_TRUE((*batch_net)->AddTupleBatch(0, orders, batch_count).ok());
  ASSERT_TRUE((*batch_net)->AddTupleBatch(1, ships, batch_count).ok());
  ASSERT_TRUE((*batch_net)->AddTupleBatch(2, checks, batch_count).ok());

  EXPECT_GT(scalar_firings, 0u);
  EXPECT_EQ(batch_firings, scalar_firings);
  for (size_t lane : lanes_seen) EXPECT_LT(lane, 24u);
  for (size_t level = 1; level < schemas.size(); ++level) {
    EXPECT_EQ((*batch_net)->beta_size(level), (*scalar_net)->beta_size(level))
        << level;
  }
  EXPECT_EQ((*batch_net)->total_beta_rows(), (*scalar_net)->total_beta_rows());
}

TEST(GatorBatchTest, JoinErrorSurfacesFromBatch) {
  std::vector<TupleVarInfo> vars = {
      {"a", "as", 21, OpCode::kInsertOrUpdate},
      {"b", "bs", 22, OpCode::kInsertOrUpdate},
  };
  std::vector<Schema> schemas = {
      Schema({{"k", DataType::kInt}}),
      Schema({{"k", DataType::kInt}, {"d", DataType::kInt}}),
  };
  // The second conjunct references BOTH variables, so it stays a join
  // conjunct (a single-variable conjunct would be pushed down into the
  // node's selection predicate, which Gator assumes pre-applied).
  auto cnf = ToCnf(Parse("a.k = b.k and 10 / (b.d - a.k) > 0"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(vars, *cnf);
  ASSERT_TRUE(graph.ok());
  auto net = GatorNetwork::Build(*graph, schemas);
  ASSERT_TRUE(net.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*net)->AddTuple(0, Tuple({Value::Int(1)}), nullptr).ok());
  }
  // One arrival joining 4 prefixes, all dividing by zero (b.d - a.k = 0):
  // the batched filter must surface the scalar error.
  Status s = (*net)->AddTupleBatch(
      1, {Tuple({Value::Int(1), Value::Int(1)})}, nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "integer division by zero");
}

// ---------------------------------------------------------------------------
// Hot path proof: the batched pipeline never re-enters the interpreter
// ---------------------------------------------------------------------------

TEST(BatchHotPathTest, BatchedPathsDoNotTouchInterpreter) {
  // Compiled batch eval.
  Schema emp({{"name", DataType::kVarchar},
              {"salary", DataType::kFloat},
              {"dept", DataType::kInt}});
  BindingLayout layout;
  layout.Add("emp", &emp);
  ExprPtr e = Parse("emp.dept = 3 and emp.salary > 50000");
  auto compiled = CompiledPredicate::Compile(e, layout);
  ASSERT_TRUE(compiled.ok());

  // Predicate index with a compiled rest-of-predicate.
  Database db;
  PredicateIndex pindex(&db, OrgPolicy());
  ASSERT_TRUE(pindex.RegisterDataSource(1, emp).ok());
  PredicateSpec spec;
  spec.data_source = 1;
  spec.op = OpCode::kInsert;
  spec.predicate = Parse("emp.dept = 3 and emp.salary > 50000");
  spec.trigger_id = 100;
  ASSERT_TRUE(pindex.AddPredicate(spec).ok());

  // Gator network whose join conjuncts all compile.
  std::vector<TupleVarInfo> vars = {
      {"o", "orders", 11, OpCode::kInsertOrUpdate},
      {"s", "shipments", 12, OpCode::kInsertOrUpdate},
  };
  std::vector<Schema> schemas = {
      Schema({{"oid", DataType::kInt}, {"cust", DataType::kInt}}),
      Schema({{"oid", DataType::kInt}, {"qty", DataType::kInt}}),
  };
  auto cnf = ToCnf(Parse("o.oid = s.oid and o.cust < s.qty"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(vars, *cnf);
  ASSERT_TRUE(graph.ok());
  auto gator = GatorNetwork::Build(*graph, schemas);
  ASSERT_TRUE(gator.ok());

  const uint64_t before = InterpreterEvalCalls();

  // 1. Batched VM over 64 lanes.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 64; ++i) {
    tuples.push_back(Tuple({Value::String("e"), Value::Float(1000.0 * i),
                            Value::Int(i % 5)}));
  }
  TokenBatch batch(1);
  for (const Tuple& t : tuples) batch.Append(&t);
  BatchResult result;
  std::vector<uint32_t> selection;
  ASSERT_TRUE(compiled->EvalBoolBatch(batch, &result, &selection).ok());

  // 2. Batched predicate-index probe.
  std::vector<UpdateDescriptor> tokens;
  for (int i = 0; i < 64; ++i) {
    tokens.push_back(UpdateDescriptor::Insert(
        1, Tuple({Value::String("x"), Value::Float(40000.0 + i * 1000),
                  Value::Int(3)})));
  }
  ASSERT_TRUE(pindex
                  .MatchBatch(tokens, 0, 1,
                              [](size_t, const PredicateMatch&) {}, nullptr)
                  .ok());

  // 3. Batched Gator arrival (multi-candidate joins).
  std::vector<Tuple> orders, ships;
  for (int i = 0; i < 16; ++i) {
    orders.push_back(Tuple({Value::Int(i % 4), Value::Int(1)}));
    ships.push_back(Tuple({Value::Int(i % 4), Value::Int(10)}));
  }
  ASSERT_TRUE((*gator)->AddTupleBatch(0, orders, nullptr).ok());
  ASSERT_TRUE((*gator)->AddTupleBatch(1, ships, nullptr).ok());

  EXPECT_EQ(InterpreterEvalCalls() - before, 0u)
      << "a batched path fell back to the tree-walking interpreter";
}

// ---------------------------------------------------------------------------
// TriggerManager end-to-end: batched pipeline ≡ scalar pipeline
// ---------------------------------------------------------------------------

class BatchPipelineTest : public ::testing::Test {
 protected:
  void Reset(uint32_t batch_size) {
    tman_.reset();
    db_ = std::make_unique<Database>();
    TriggerManagerOptions options;
    options.persistent_queue = false;  // memory mode: the batched path
    options.batch_size = batch_size;
    tman_ = std::make_unique<TriggerManager>(db_.get(), options);
    ASSERT_TRUE(tman_->Open().ok());
    Schema quotes({{"sym", DataType::kVarchar},
                   {"price", DataType::kFloat},
                   {"size", DataType::kInt}});
    auto ds = tman_->DefineStreamSource("quotes", quotes);
    ASSERT_TRUE(ds.ok());
    source_ = *ds;
    auto r = tman_->ExecuteCommand(
        "create trigger bigTrade from quotes on insert "
        "when quotes.price > 50.0 and quotes.size >= 10 "
        "do raise event BigTrade(quotes.sym)");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::vector<UpdateDescriptor> MakeTokens(int n) {
    std::vector<UpdateDescriptor> tokens;
    std::mt19937 rng(99);
    for (int i = 0; i < n; ++i) {
      tokens.push_back(UpdateDescriptor::Insert(
          source_,
          Tuple({Value::String("s" + std::to_string(i % 7)),
                 Value::Float(static_cast<double>(rng() % 100)),
                 Value::Int(static_cast<int64_t>(rng() % 20))})));
    }
    return tokens;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerManager> tman_;
  DataSourceId source_ = 0;
};

TEST_F(BatchPipelineTest, BatchedFiringsMatchScalar) {
  const int kTokens = 500;

  Reset(/*batch_size=*/1);  // scalar oracle
  {
    auto tokens = MakeTokens(kTokens);
    ASSERT_TRUE(tman_->SubmitUpdateBatch(tokens).ok());
    ASSERT_TRUE(tman_->ProcessPending().ok());
  }
  const uint64_t scalar_firings = tman_->stats().rule_firings;
  const uint64_t scalar_tokens = tman_->stats().tokens_processed;
  EXPECT_GT(scalar_firings, 0u);
  EXPECT_EQ(scalar_tokens, static_cast<uint64_t>(kTokens));

  Reset(/*batch_size=*/64);
  {
    auto tokens = MakeTokens(kTokens);
    ASSERT_TRUE(tman_->SubmitUpdateBatch(tokens).ok());
    ASSERT_TRUE(tman_->ProcessPending().ok());
  }
  EXPECT_EQ(tman_->stats().rule_firings, scalar_firings);
  EXPECT_EQ(tman_->stats().tokens_processed,
            static_cast<uint64_t>(kTokens));
  // The batched path drains through PopBatch: the queue's batch counters
  // must show multi-task drains.
  auto qs = tman_->task_queue().stats();
  EXPECT_GT(qs.batch_pops, 0u);
  EXPECT_EQ(qs.batch_pop_tasks, qs.popped);
}

TEST_F(BatchPipelineTest, BatchedPipelineRunsDriversToo) {
  Reset(/*batch_size=*/64);
  auto tokens = MakeTokens(300);
  ASSERT_TRUE(tman_->Start().ok());
  ASSERT_TRUE(tman_->SubmitUpdateBatch(tokens).ok());
  tman_->Drain();
  tman_->Stop();
  EXPECT_EQ(tman_->stats().tokens_processed, 300u);
}

}  // namespace
}  // namespace tman
