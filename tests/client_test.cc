#include <gtest/gtest.h>

#include "core/client.h"

namespace tman {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("emp", Schema({{"name", DataType::kVarchar},
                                                {"dept", DataType::kInt}}))
                    .ok());
    tman_ = std::make_unique<TriggerManager>(db_.get());
    ASSERT_TRUE(tman_->Open().ok());
    ASSERT_TRUE(tman_->DefineLocalTableSource("emp").ok());
  }

  void Insert(const std::string& name, int64_t dept) {
    ASSERT_TRUE(
        db_->Insert("emp", Tuple({Value::String(name), Value::Int(dept)}))
            .ok());
    ASSERT_TRUE(tman_->ProcessPending().ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerManager> tman_;
};

TEST_F(ClientTest, CommandsAndNotifications) {
  ClientConnection web(tman_.get(), "web-ui");
  std::vector<std::string> seen;
  web.RegisterForEvent("Hired", [&](const Event& e) {
    seen.push_back(e.args[0].as_string());
  });
  auto msg = web.Command(
      "create trigger hires from emp on insert do raise event "
      "Hired(emp.name)");
  ASSERT_TRUE(msg.ok()) << msg.status().ToString();
  EXPECT_EQ(web.created_triggers().size(), 1u);

  Insert("ann", 1);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "ann");
}

TEST_F(ClientTest, CloseStopsNotifications) {
  ClientConnection web(tman_.get(), "web-ui");
  int hits = 0;
  web.RegisterForEvent("*", [&](const Event&) { ++hits; });
  ASSERT_TRUE(web.Command("create trigger t from emp on insert "
                          "do raise event E()")
                  .ok());
  Insert("a", 1);
  EXPECT_EQ(hits, 1);
  web.Close();
  Insert("b", 1);
  EXPECT_EQ(hits, 1);  // no longer registered
  EXPECT_FALSE(web.Command("drop trigger t").ok());  // closed connection
}

TEST_F(ClientTest, DropMyTriggersCleansUpOnlyOwnTriggers) {
  ClientConnection alice(tman_.get(), "alice");
  ClientConnection bob(tman_.get(), "bob");
  ASSERT_TRUE(alice
                  .Command("create trigger a1 from emp on insert "
                           "do raise event A()")
                  .ok());
  ASSERT_TRUE(alice
                  .Command("create trigger a2 from emp on insert "
                           "do raise event A()")
                  .ok());
  ASSERT_TRUE(bob.Command("create trigger b1 from emp on insert "
                          "do raise event B()")
                  .ok());
  ASSERT_TRUE(alice.DropMyTriggers().ok());
  EXPECT_TRUE(alice.created_triggers().empty());

  // Bob's trigger still fires; Alice's are gone.
  Insert("x", 1);
  EXPECT_EQ(tman_->events().num_raised(), 1u);
  EXPECT_EQ(tman_->events().History()[0].name, "B");
}

TEST_F(ClientTest, DroppingViaCommandUntracksTrigger) {
  ClientConnection c(tman_.get(), "c");
  ASSERT_TRUE(c.Command("create trigger t from emp on insert "
                        "do raise event E()")
                  .ok());
  ASSERT_TRUE(c.Command("drop trigger t").ok());
  EXPECT_TRUE(c.created_triggers().empty());
  EXPECT_TRUE(c.DropMyTriggers().ok());  // nothing left, no error
}

TEST_F(ClientTest, StreamSubmissionThroughConnection) {
  Schema q({{"v", DataType::kInt}});
  auto ds = tman_->DefineStreamSource("feed", q);
  ASSERT_TRUE(ds.ok());
  ClientConnection src(tman_.get(), "feed-program");
  ASSERT_TRUE(src.Command("create trigger big from feed when v > 10 "
                          "do raise event Big(v)")
                  .ok());
  ASSERT_TRUE(
      src.SubmitUpdate(UpdateDescriptor::Insert(*ds,
                                                Tuple({Value::Int(50)})))
          .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(ClientTest, UnregisterSingleConsumer) {
  ClientConnection c(tman_.get(), "c");
  int a_hits = 0, b_hits = 0;
  uint64_t a = c.RegisterForEvent("*", [&](const Event&) { ++a_hits; });
  c.RegisterForEvent("*", [&](const Event&) { ++b_hits; });
  ASSERT_TRUE(c.Command("create trigger t from emp on insert "
                        "do raise event E()")
                  .ok());
  Insert("x", 1);
  c.Unregister(a);
  Insert("y", 1);
  EXPECT_EQ(a_hits, 1);
  EXPECT_EQ(b_hits, 2);
}

}  // namespace
}  // namespace tman
