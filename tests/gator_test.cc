#include <gtest/gtest.h>

#include <map>

#include "network/atreat.h"
#include "network/gator.h"
#include "parser/parser.h"
#include "util/random.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// Orders(oid, cust) ⋈ Shipments(oid, status) ⋈ Invoices(oid, total)
struct JoinFixture {
  std::vector<TupleVarInfo> vars = {
      {"o", "orders", 11, OpCode::kInsertOrUpdate},
      {"s", "shipments", 12, OpCode::kInsertOrUpdate},
      {"i", "invoices", 13, OpCode::kInsertOrUpdate},
  };
  std::vector<Schema> schemas = {
      Schema({{"oid", DataType::kInt}, {"cust", DataType::kInt}}),
      Schema({{"oid", DataType::kInt}, {"status", DataType::kVarchar}}),
      Schema({{"oid", DataType::kInt}, {"total", DataType::kFloat}}),
  };

  Result<ConditionGraph> Graph(const std::string& extra = "") {
    std::string cond = "o.oid = s.oid and s.oid = i.oid";
    if (!extra.empty()) cond += " and " + extra;
    auto cnf = ToCnf(Parse(cond));
    if (!cnf.ok()) return cnf.status();
    return ConditionGraph::Build(vars, *cnf);
  }
};

TEST(GatorTest, IncrementalJoinFires) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  auto net = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(net.ok());

  int firings = 0;
  auto count = [&firings](const std::vector<Tuple>&) { ++firings; };

  Tuple order({Value::Int(1), Value::Int(42)});
  Tuple shipment({Value::Int(1), Value::String("shipped")});
  Tuple invoice({Value::Int(1), Value::Float(99)});

  ASSERT_TRUE((*net)->AddTuple(0, order, count).ok());
  EXPECT_EQ(firings, 0);
  ASSERT_TRUE((*net)->AddTuple(1, shipment, count).ok());
  EXPECT_EQ(firings, 0);
  ASSERT_TRUE((*net)->AddTuple(2, invoice, count).ok());
  EXPECT_EQ(firings, 1);  // the chain completed

  // Beta memories materialized the prefix joins.
  EXPECT_EQ((*net)->beta_size(1), 1u);  // o ⋈ s
  EXPECT_EQ((*net)->beta_size(2), 1u);  // complete
  EXPECT_EQ((*net)->total_beta_rows(), 2u);

  // A second shipment for the same order joins the existing prefix and
  // the existing invoice: fires immediately.
  ASSERT_TRUE((*net)
                  ->AddTuple(1, Tuple({Value::Int(1), Value::String("dup")}),
                             count)
                  .ok());
  EXPECT_EQ(firings, 2);
}

TEST(GatorTest, RemoveDropsMaterializedRows) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  auto net = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(net.ok());
  auto ignore = [](const std::vector<Tuple>&) {};

  Tuple order({Value::Int(1), Value::Int(42)});
  Tuple shipment({Value::Int(1), Value::String("x")});
  Tuple invoice({Value::Int(1), Value::Float(9)});
  ASSERT_TRUE((*net)->AddTuple(0, order, ignore).ok());
  ASSERT_TRUE((*net)->AddTuple(1, shipment, ignore).ok());
  ASSERT_TRUE((*net)->AddTuple(2, invoice, ignore).ok());
  EXPECT_EQ((*net)->total_beta_rows(), 2u);

  ASSERT_TRUE((*net)->RemoveTuple(0, order).ok());
  EXPECT_EQ((*net)->total_beta_rows(), 0u);
  EXPECT_EQ((*net)->alpha_size(0), 0u);

  // Re-adding the order re-fires through the still-present suffix.
  int firings = 0;
  ASSERT_TRUE((*net)
                  ->AddTuple(0, order,
                             [&firings](const std::vector<Tuple>&) {
                               ++firings;
                             })
                  .ok());
  EXPECT_EQ(firings, 1);
}

TEST(GatorTest, DuplicateTuplesKeepCounts) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  auto net = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(net.ok());
  auto ignore = [](const std::vector<Tuple>&) {};

  Tuple order({Value::Int(1), Value::Int(42)});
  ASSERT_TRUE((*net)->AddTuple(0, order, ignore).ok());
  ASSERT_TRUE((*net)->AddTuple(0, order, ignore).ok());  // duplicate
  ASSERT_TRUE(
      (*net)->AddTuple(1, Tuple({Value::Int(1), Value::String("s")}), ignore)
          .ok());
  EXPECT_EQ((*net)->beta_size(1), 2u);  // one row per duplicate
  ASSERT_TRUE((*net)->RemoveTuple(0, order).ok());
  EXPECT_EQ((*net)->beta_size(1), 1u);  // one instance's rows survive
  ASSERT_TRUE((*net)->RemoveTuple(0, order).ok());
  EXPECT_EQ((*net)->beta_size(1), 0u);
}

TEST(GatorTest, CatchAllFiltersFirings) {
  JoinFixture fx;
  auto graph = fx.Graph("o.cust + s.oid > i.total");  // hyper-join conjunct
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->catch_all().size(), 1u);
  auto net = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(net.ok());
  int firings = 0;
  auto count = [&firings](const std::vector<Tuple>&) { ++firings; };
  ASSERT_TRUE(
      (*net)->AddTuple(0, Tuple({Value::Int(1), Value::Int(42)}), count)
          .ok());
  ASSERT_TRUE(
      (*net)
          ->AddTuple(1, Tuple({Value::Int(1), Value::String("s")}), count)
          .ok());
  // 42 + 1 > 100 fails: no firing.
  ASSERT_TRUE(
      (*net)->AddTuple(2, Tuple({Value::Int(1), Value::Float(100)}), count)
          .ok());
  EXPECT_EQ(firings, 0);
  // 42 + 1 > 10 holds.
  ASSERT_TRUE(
      (*net)->AddTuple(2, Tuple({Value::Int(1), Value::Float(10)}), count)
          .ok());
  EXPECT_EQ(firings, 1);
}

// The decisive property: Gator fires exactly the same matches as an
// A-TREAT network with stored memories, on a random token stream.
TEST(GatorTest, EquivalentToATreatOnRandomStream) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  auto gator = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(gator.ok());
  ATreatOptions opts;
  opts.prefer_virtual = false;  // stored memories (stream sources)
  auto atreat = ATreatNetwork::Build(*graph, nullptr, opts, fx.schemas);
  ASSERT_TRUE(atreat.ok());

  auto encode = [](const std::vector<Tuple>& bindings) {
    std::string out;
    for (const Tuple& t : bindings) t.Serialize(&out);
    return out;
  };

  Random rng(404);
  std::vector<std::vector<Tuple>> live(3);
  // Keep the join sparse (join keys ≫ tuples per variable) so beta
  // materialization stays small; density is the bench's job, not the
  // equivalence test's.
  for (int step = 0; step < 600; ++step) {
    size_t var = rng.Uniform(3);
    bool add = live[var].empty() || rng.Bernoulli(0.6);
    if (add) {
      int64_t oid = rng.UniformRange(0, 40);
      Tuple t;
      if (var == 0) {
        t = Tuple({Value::Int(oid), Value::Int(rng.UniformRange(0, 3))});
      } else if (var == 1) {
        t = Tuple({Value::Int(oid),
                   Value::String("s" + std::to_string(rng.Uniform(2)))});
      } else {
        t = Tuple({Value::Int(oid),
                   Value::Float(static_cast<double>(rng.Uniform(50)))});
      }
      live[var].push_back(t);
      // A-TREAT order: maintain memory, then match joins for the firing.
      std::multiset<std::string> atreat_firings;
      ASSERT_TRUE((*atreat)
                      ->AddTuple(static_cast<NetworkNodeId>(var), t)
                      .ok());
      ASSERT_TRUE((*atreat)
                      ->MatchJoins(static_cast<NetworkNodeId>(var), t,
                                   [&](const std::vector<Tuple>& b) {
                                     atreat_firings.insert(encode(b));
                                   })
                      .ok());
      std::multiset<std::string> gator_firings;
      ASSERT_TRUE((*gator)
                      ->AddTuple(static_cast<NetworkNodeId>(var), t,
                                 [&](const std::vector<Tuple>& b) {
                                   gator_firings.insert(encode(b));
                                 })
                      .ok());
      ASSERT_EQ(gator_firings, atreat_firings) << "step " << step;
    } else {
      size_t pick = rng.Uniform(live[var].size());
      Tuple t = live[var][pick];
      live[var].erase(live[var].begin() + static_cast<long>(pick));
      ASSERT_TRUE(
          (*atreat)->RemoveTuple(static_cast<NetworkNodeId>(var), t).ok());
      ASSERT_TRUE(
          (*gator)->RemoveTuple(static_cast<NetworkNodeId>(var), t).ok());
    }
  }
  // Memories agree at the end.
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_EQ((*gator)->alpha_size(static_cast<NetworkNodeId>(v)),
              live[v].size());
  }
}

TEST(GatorTest, SingleVariableChain) {
  std::vector<TupleVarInfo> vars = {{"x", "xs", 1, OpCode::kInsert}};
  auto graph = ConditionGraph::Build(vars, {});
  ASSERT_TRUE(graph.ok());
  auto net = GatorNetwork::Build(
      *graph, {Schema({{"a", DataType::kInt}})});
  ASSERT_TRUE(net.ok());
  int firings = 0;
  ASSERT_TRUE((*net)
                  ->AddTuple(0, Tuple({Value::Int(1)}),
                             [&firings](const std::vector<Tuple>&) {
                               ++firings;
                             })
                  .ok());
  EXPECT_EQ(firings, 1);
}

TEST(GatorTest, SchemaMismatchRejected) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(GatorNetwork::Build(*graph, {fx.schemas[0]}).ok());
}

}  // namespace
}  // namespace tman
