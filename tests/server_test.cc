// End-to-end remote ingestion tests: TmanServer + RemoteClient over the
// in-memory loopback transport (deterministic) and real TCP sockets (the
// acceptance workload). Covers command round-trips, event pushes,
// exactly-once ordered delivery across N clients, mid-stream disconnect
// with reconnect + resend, credit backpressure bounding the task-queue
// depth, and malformed-frame handling.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/trigger_manager.h"
#include "ipc/loopback.h"
#include "ipc/remote_client.h"
#include "ipc/server.h"
#include "ipc/socket_transport.h"
#include "util/fault_injector.h"

namespace tman {
namespace {

/// Shared setup: a TriggerManager with `num_sources` stream sources
/// (src0, src1, ...), one trigger per source raising Ei(v), and a "*"
/// event consumer recording every delivered value per source.
class ServerTestBase : public ::testing::Test {
 protected:
  void StartManager(uint32_t num_sources, uint32_t drivers,
                    bool start_drivers = true) {
    db_ = std::make_unique<Database>();
    TriggerManagerOptions tmo;
    tmo.persistent_queue = false;  // one task per update descriptor
    tmo.driver_config.num_cpus = drivers == 0 ? 1 : drivers;
    tman_ = std::make_unique<TriggerManager>(db_.get(), tmo);
    ASSERT_TRUE(tman_->Open().ok());
    received_.assign(num_sources, {});
    for (uint32_t i = 0; i < num_sources; ++i) {
      std::string idx = std::to_string(i);
      auto ds = tman_->DefineStreamSource("src" + idx,
                                          Schema({{"v", DataType::kInt}}));
      ASSERT_TRUE(ds.ok()) << ds.status().ToString();
      sources_.push_back(*ds);
      auto r = tman_->ExecuteCommand("create trigger t" + idx + " from src" +
                                     idx + " on insert do raise event E" +
                                     idx + "(v)");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    tman_->events().Register("*", [this](const Event& e) {
      if (e.name.size() < 2 || e.name[0] != 'E') return;
      size_t idx = static_cast<size_t>(std::stoul(e.name.substr(1)));
      std::lock_guard<std::mutex> lock(mutex_);
      if (idx < received_.size()) {
        received_[idx].push_back(e.args[0].as_int());
      }
    });
    if (start_drivers) {
      ASSERT_TRUE(tman_->Start().ok());
    }
  }

  void StartLoopbackServer(TmanServerOptions options = {}) {
    auto listener = std::make_unique<LoopbackListener>();
    listener_ = listener.get();
    server_ = std::make_unique<TmanServer>(tman_.get(), std::move(listener),
                                           options);
    ASSERT_TRUE(server_->Start().ok());
  }

  RemoteClientOptions LoopbackClientOptions(const std::string& name) {
    RemoteClientOptions options;
    options.client_name = name;
    options.connector = [this] { return listener_->Connect(); };
    return options;
  }

  std::vector<int64_t> Received(size_t source_idx) {
    std::lock_guard<std::mutex> lock(mutex_);
    return received_[source_idx];
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (tman_ != nullptr) tman_->Stop();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerManager> tman_;
  std::vector<DataSourceId> sources_;
  LoopbackListener* listener_ = nullptr;
  std::unique_ptr<TmanServer> server_;
  std::mutex mutex_;
  std::vector<std::vector<int64_t>> received_;
};

using ServerTest = ServerTestBase;

TEST_F(ServerTest, CommandsPingAndErrorsRoundTrip) {
  StartManager(/*num_sources=*/1, /*drivers=*/1);
  StartLoopbackServer();
  RemoteClient client(LoopbackClientOptions("console"));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());

  auto r = client.Command(
      "create trigger remote_t from src0 when v > 5 do raise event Big(v)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // A failing command comes back as a clean error, not a dropped link.
  auto bad = client.Command("create trigger remote_t from src0 do nonsense");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(client.connected());
  ASSERT_TRUE(client.Ping().ok());

  auto drop = client.Command("drop trigger remote_t");
  ASSERT_TRUE(drop.ok()) << drop.status().ToString();
  client.Close();
}

TEST_F(ServerTest, EventsArePushedToRemoteConsumers) {
  StartManager(/*num_sources=*/1, /*drivers=*/1);
  StartLoopbackServer();
  // Declared before the clients: the consumer runs on a client reader
  // thread, so on an ASSERT early-return these must outlive the clients'
  // destructors (locals die in reverse order).
  std::mutex mu;
  std::vector<int64_t> seen;
  RemoteClient client(LoopbackClientOptions("watcher"));
  ASSERT_TRUE(client.Connect().ok());

  auto handle = client.RegisterForEvent("E0", [&](const Event& e) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(e.args[0].as_int());
  });
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  RemoteClient feeder(LoopbackClientOptions("feeder"));
  ASSERT_TRUE(feeder.Connect().ok());
  RemoteDataSource src(&feeder, sources_[0]);
  for (int64_t v = 1; v <= 20; ++v) {
    ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
  }
  Status drained = feeder.Drain();
  ASSERT_TRUE(drained.ok())
      << drained.ToString() << "; credits=" << feeder.credits()
      << " sent=" << feeder.stats().updates_sent
      << " acked=" << feeder.stats().updates_acked
      << " stalls=" << feeder.stats().credit_stalls
      << " reconnects=" << feeder.stats().reconnects
      << "; server granted=" << server_->stats().credits_granted
      << " applied=" << server_->stats().updates_applied
      << " proto_errors=" << server_->stats().protocol_errors;
  tman_->Drain();

  // Pushes ride the server->client stream asynchronously; poll (generous
  // bound: sanitizer builds are slow).
  for (int i = 0; i < 2000; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (seen.size() >= 20) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(seen.size(), 20u);
    for (int64_t v = 1; v <= 20; ++v) EXPECT_EQ(seen[v - 1], v);
  }

  ASSERT_TRUE(client.Unregister(*handle).ok());
  feeder.Close();
  client.Close();
  EXPECT_GE(server_->stats().events_pushed, 20u);
}

TEST_F(ServerTest, ExactlyOnceInOrderAcrossConcurrentLoopbackClients) {
  // One driver thread => tokens are processed in task-queue order, so
  // per-source arrival order is trigger-visible order.
  constexpr int kClients = 4;
  constexpr int64_t kUpdates = 500;
  StartManager(/*num_sources=*/kClients, /*drivers=*/1);
  StartLoopbackServer();

  std::vector<std::thread> writers;
  for (int c = 0; c < kClients; ++c) {
    writers.emplace_back([this, c] {
      auto options = LoopbackClientOptions("src-" + std::to_string(c));
      options.batch_max_updates = 32;
      RemoteClient client(options);
      ASSERT_TRUE(client.Connect().ok());
      RemoteDataSource src(&client, sources_[c]);
      for (int64_t v = 1; v <= kUpdates; ++v) {
        ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
      }
      ASSERT_TRUE(client.Drain().ok());
      client.Close();
    });
  }
  for (auto& t : writers) t.join();
  tman_->Drain();

  for (int c = 0; c < kClients; ++c) {
    auto got = Received(c);
    ASSERT_EQ(got.size(), static_cast<size_t>(kUpdates)) << "source " << c;
    for (int64_t v = 1; v <= kUpdates; ++v) {
      ASSERT_EQ(got[v - 1], v) << "source " << c << " position " << v - 1;
    }
  }
  EXPECT_EQ(server_->stats().updates_applied,
            static_cast<uint64_t>(kClients) * kUpdates);
}

TEST_F(ServerTest, MidStreamDisconnectReconnectsAndResendsExactlyOnce) {
  constexpr int64_t kUpdates = 400;
  StartManager(/*num_sources=*/1, /*drivers=*/1);
  StartLoopbackServer();

  FaultInjector faults;
  auto options = LoopbackClientOptions("flaky-feed");
  options.batch_max_updates = 16;
  options.fault_injector = &faults;
  RemoteClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  RemoteDataSource src(&client, sources_[0]);

  // A repair thread disarms the fault as soon as it fires once, so the
  // reconnect handshake (which goes through the same fault site) works.
  std::thread repair([&faults] {
    while (faults.total_faults() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    faults.ClearAll();
  });
  for (int64_t v = 1; v <= kUpdates; ++v) {
    if (v == kUpdates / 2) {
      // The next frame write sends half a frame and drops the
      // connection mid-stream: the client must reconnect and resend,
      // and the server's sequence dedup must keep delivery exactly-once.
      faults.ArmCountdown("ipc.write.drop", 0, StatusCode::kIoError);
    }
    ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
  }
  ASSERT_TRUE(client.Flush().ok());
  repair.join();
  ASSERT_TRUE(client.Drain().ok());
  tman_->Drain();

  EXPECT_GE(client.stats().reconnects, 1u);
  auto got = Received(0);
  ASSERT_EQ(got.size(), static_cast<size_t>(kUpdates));
  for (int64_t v = 1; v <= kUpdates; ++v) ASSERT_EQ(got[v - 1], v);
  EXPECT_EQ(server_->stats().updates_applied,
            static_cast<uint64_t>(kUpdates));
}

TEST_F(ServerTest, BackpressureBoundsTaskQueueDepth) {
  constexpr uint32_t kCap = 8;
  constexpr int64_t kUpdates = 200;
  // Drivers start *later*: the queue would grow without bound if credits
  // did not stop the writer.
  StartManager(/*num_sources=*/1, /*drivers=*/1, /*start_drivers=*/false);
  TmanServerOptions so;
  so.max_queue_depth = kCap;
  StartLoopbackServer(so);

  auto options = LoopbackClientOptions("pressured");
  options.batch_max_updates = 4;
  options.send_timeout = std::chrono::milliseconds(20000);
  RemoteClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  RemoteDataSource src(&client, sources_[0]);

  std::thread writer([&] {
    for (int64_t v = 1; v <= kUpdates; ++v) {
      ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
    }
  });
  // With no driver consuming, the writer must stall at the credit cap.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_LE(tman_->task_queue().size(), kCap);
  EXPECT_LT(client.stats().updates_sent, static_cast<uint64_t>(kUpdates));

  ASSERT_TRUE(tman_->Start().ok());
  writer.join();
  ASSERT_TRUE(client.Drain().ok());
  tman_->Drain();

  EXPECT_LE(tman_->task_queue().stats().max_size, kCap);
  auto got = Received(0);
  ASSERT_EQ(got.size(), static_cast<size_t>(kUpdates));
  EXPECT_GE(client.stats().credit_stalls, 1u);
}

TEST_F(ServerTest, ShedPolicyDropsInsteadOfBlocking) {
  StartManager(/*num_sources=*/1, /*drivers=*/1, /*start_drivers=*/false);
  TmanServerOptions so;
  so.max_queue_depth = 4;
  StartLoopbackServer(so);

  auto options = LoopbackClientOptions("shedder");
  options.batch_max_updates = 4;
  options.backpressure = BackpressurePolicy::kShed;
  RemoteClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  RemoteDataSource src(&client, sources_[0]);

  // Only 4 credits exist and nothing drains; later batches are shed
  // without ever blocking the writer.
  for (int64_t v = 1; v <= 40; ++v) {
    ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
  }
  ASSERT_TRUE(client.Flush().ok());
  auto stats = client.stats();
  EXPECT_GE(stats.updates_shed, 1u);
  EXPECT_LE(tman_->task_queue().size(), 4u);

  ASSERT_TRUE(tman_->Start().ok());
  tman_->Drain();
  client.Close();
}

TEST_F(ServerTest, MalformedFramesGetCleanErrorsNotCrashes) {
  StartManager(/*num_sources=*/1, /*drivers=*/1);
  StartLoopbackServer();

  {
    // Raw garbage instead of a frame: the server answers with a goodbye
    // (carrying a Status string) and closes; it keeps serving others.
    auto t = listener_->Connect();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Write("this is not a TMAN frame at all........").ok());
    auto reply = ReadFrame(t->get(), {});
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, FrameType::kGoodbye);
  }
  {
    // Valid header, corrupted payload: CRC mismatch.
    auto t = listener_->Connect();
    ASSERT_TRUE(t.ok());
    HelloFrame hello;
    hello.client_name = "x";
    std::string payload;
    hello.Encode(&payload);
    std::string frame;
    EncodeFrame(FrameType::kHello, payload, &frame);
    frame.back() ^= 0x01;
    ASSERT_TRUE((*t)->Write(frame).ok());
    auto reply = ReadFrame(t->get(), {});
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, FrameType::kGoodbye);
  }
  {
    // Protocol frames before hello are rejected.
    auto t = listener_->Connect();
    ASSERT_TRUE(t.ok());
    PingFrame ping;
    ping.nonce = 1;
    ASSERT_TRUE(WriteFramePayload(t->get(), FrameType::kPing, ping, {}).ok());
    auto reply = ReadFrame(t->get(), {});
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, FrameType::kGoodbye);
  }
  {
    // Hello with a future protocol version is refused in the reply.
    auto t = listener_->Connect();
    ASSERT_TRUE(t.ok());
    HelloFrame hello;
    hello.client_name = "future";
    hello.protocol_version = kWireVersion + 1;
    ASSERT_TRUE(
        WriteFramePayload(t->get(), FrameType::kHello, hello, {}).ok());
    auto reply = ReadFrame(t->get(), {});
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, FrameType::kHelloReply);
    auto decoded = HelloReplyFrame::Decode(reply->payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status_code,
              static_cast<uint8_t>(StatusCode::kNotSupported));
  }
  {
    // Sending more updates than the granted credit window is credit
    // abuse: the connection is closed with a goodbye.
    auto t = listener_->Connect();
    ASSERT_TRUE(t.ok());
    HelloFrame hello;
    hello.client_name = "abuser";
    ASSERT_TRUE(
        WriteFramePayload(t->get(), FrameType::kHello, hello, {}).ok());
    auto reply = ReadFrame(t->get(), {});
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, FrameType::kHelloReply);
    auto decoded = HelloReplyFrame::Decode(reply->payload);
    ASSERT_TRUE(decoded.ok());
    UpdateBatchFrame batch;
    batch.first_seq = 1;
    for (uint32_t i = 0; i <= decoded->initial_credits; ++i) {
      batch.updates.push_back(
          UpdateDescriptor::Insert(sources_[0], Tuple({Value::Int(1)})));
    }
    ASSERT_TRUE(
        WriteFramePayload(t->get(), FrameType::kUpdateBatch, batch, {}).ok());
    while (true) {
      auto frame = ReadFrame(t->get(), {});
      if (!frame.ok()) break;  // closed on us — also acceptable
      if (frame->type == FrameType::kGoodbye) break;
    }
  }

  EXPECT_GE(server_->stats().protocol_errors, 4u);
  // The server survived all of it: a well-formed client still works.
  RemoteClient client(LoopbackClientOptions("healthy"));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());
  client.Close();
}

TEST_F(ServerTest, SubmissionErrorsSurfaceInAcks) {
  StartManager(/*num_sources=*/1, /*drivers=*/1);
  StartLoopbackServer();
  RemoteClient client(LoopbackClientOptions("wrong-source"));
  ASSERT_TRUE(client.Connect().ok());
  // An unknown data source is a deterministic rejection: it must come
  // back through Drain, not hang or resend forever.
  ASSERT_TRUE(client
                  .SubmitUpdate(UpdateDescriptor::Insert(
                      9999, Tuple({Value::Int(1)})))
                  .ok());
  Status s = client.Drain();
  EXPECT_FALSE(s.ok());
  // The link stays up; good updates still flow.
  RemoteDataSource src(&client, sources_[0]);
  ASSERT_TRUE(src.Insert(Tuple({Value::Int(5)})).ok());
  ASSERT_TRUE(client.Drain().ok());
  client.Close();
}

// --- kill-and-recover: durable ingestion across a server restart ------------

TEST_F(ServerTest, KillAndRecoverServerDeliversExactlyOnce) {
  constexpr int64_t kFirst = 60;
  constexpr int64_t kTotal = 120;

  // A durable manager with NO drivers: every acked update is logged to
  // the WAL but still unprocessed when the server dies.
  db_ = std::make_unique<Database>();
  TriggerManagerOptions tmo;
  tmo.durable_wal = true;
  tmo.persistent_queue = false;
  tmo.driver_config.num_cpus = 1;
  tman_ = std::make_unique<TriggerManager>(db_.get(), tmo);
  ASSERT_TRUE(tman_->Open().ok());
  auto ds = tman_->DefineStreamSource("src0", Schema({{"v", DataType::kInt}}));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  sources_.push_back(*ds);
  auto r = tman_->ExecuteCommand(
      "create trigger t0 from src0 on insert do raise event E0(v)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  received_.assign(1, {});
  auto register_consumer = [this](TriggerManager* tman) {
    tman->events().Register("E0", [this](const Event& e) {
      std::lock_guard<std::mutex> lock(mutex_);
      received_[0].push_back(e.args[0].as_int());
    });
  };
  StartLoopbackServer();

  // The connector chases listener_ (re-pointed at the recovered server's
  // listener) and reports the restart gap as a clean failure so the
  // client's backoff loop keeps retrying instead of touching a dead
  // listener. Declared before the client: the reader thread uses it.
  std::atomic<bool> server_up{true};
  RemoteClientOptions options;
  options.client_name = "phoenix";
  options.batch_max_updates = 8;
  options.max_reconnect_attempts = 1000;
  options.reconnect_backoff = std::chrono::milliseconds(20);
  options.connector =
      [this, &server_up]() -> Result<std::unique_ptr<Transport>> {
    if (!server_up.load()) return Status::IoError("server restarting");
    return listener_->Connect();
  };
  RemoteClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  RemoteDataSource src(&client, sources_[0]);

  for (int64_t v = 1; v <= kFirst; ++v) {
    ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
  }
  // Drain: every first-half update is acked, and an ack means the WAL
  // committed it — so the kill below deterministically strands exactly
  // kFirst durable-but-unprocessed tokens for recovery to replay.
  ASSERT_TRUE(client.Drain().ok());

  // KILL: stop the server and destroy the manager with everything
  // unprocessed. The Database (disk + buffer pool) survives; the
  // manager's task queue, WAL tail and session map die with it.
  server_up.store(false);
  server_->Stop();
  tman_.reset();

  // RECOVER: a fresh manager replays the WAL, a fresh server seeds the
  // client's session from the recovered high-water mark.
  tman_ = std::make_unique<TriggerManager>(db_.get(), tmo);
  ASSERT_TRUE(tman_->Open().ok());
  EXPECT_GE(tman_->last_recovery().tokens_replayed,
            static_cast<uint64_t>(kFirst));
  register_consumer(tman_.get());
  ASSERT_TRUE(tman_->Start().ok());
  StartLoopbackServer();

  // Before letting the real client back in, prove the dedup state
  // survived the restart at the wire level: a raw connection under the
  // same session name sees the recovered high-water mark in its hello
  // reply, and a full resend of already-applied sequences is filtered
  // to a no-op instead of double-delivering.
  {
    auto t = listener_->Connect();
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    HelloFrame hello;
    hello.client_name = "phoenix";
    ASSERT_TRUE(
        WriteFramePayload(t->get(), FrameType::kHello, hello, {}).ok());
    auto frame = ReadFrame(t->get(), {});
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, FrameType::kHelloReply);
    auto reply = HelloReplyFrame::Decode(frame->payload);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status_code, 0);
    EXPECT_GE(reply->last_applied_seq, static_cast<uint64_t>(kFirst));

    UpdateBatchFrame dup;
    dup.first_seq = 1;  // sequences 1..8: all below the high-water mark
    for (int64_t v = 1; v <= 8; ++v) {
      dup.updates.push_back(
          UpdateDescriptor::Insert(sources_[0], Tuple({Value::Int(v)})));
    }
    ASSERT_TRUE(
        WriteFramePayload(t->get(), FrameType::kUpdateBatch, dup, {}).ok());
    frame = ReadFrame(t->get(), {});
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, FrameType::kUpdateAck);
    auto ack = UpdateAckFrame::Decode(frame->payload);
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->status_code, 0);
    // Nothing applied: the mark did not move. The exactly-once scan at
    // the end is the second witness — no duplicates of 1..8.
    EXPECT_GE(ack->ack_seq, static_cast<uint64_t>(kFirst));
  }

  server_up.store(true);

  // The same client continues: reconnect, idempotent resend of anything
  // unacked, then the second half.
  for (int64_t v = kFirst + 1; v <= kTotal; ++v) {
    ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
  }
  Status drained = client.Drain();
  ASSERT_TRUE(drained.ok())
      << drained.ToString() << "; reconnects=" << client.stats().reconnects;
  tman_->Drain();

  EXPECT_GE(client.stats().reconnects, 1u);
  // Exactly once across the restart: acked-but-unprocessed values came
  // back through WAL replay, resent values were deduplicated by the
  // recovered session sequence, and nothing was lost.
  auto got = Received(0);
  ASSERT_EQ(got.size(), static_cast<size_t>(kTotal));
  std::vector<bool> seen(kTotal + 1, false);
  for (int64_t v : got) {
    ASSERT_GE(v, 1);
    ASSERT_LE(v, kTotal);
    ASSERT_FALSE(seen[static_cast<size_t>(v)]) << "duplicate value " << v;
    seen[static_cast<size_t>(v)] = true;
  }
  // The durable session advanced through both halves under its wire name.
  EXPECT_GE(tman_->RecoveredSessionSeq("phoenix"),
            static_cast<uint64_t>(kFirst));
  client.Close();
}

// --- the acceptance workload over real sockets ------------------------------

TEST_F(ServerTest, SocketEightClientsTimesTenThousandExactlyOnce) {
  constexpr int kClients = 8;
  constexpr int64_t kUpdates = 10000;
  constexpr uint32_t kCap = 4096;
  StartManager(/*num_sources=*/kClients, /*drivers=*/2);

  auto listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  uint16_t port = (*listener)->port();
  TmanServerOptions so;
  so.max_queue_depth = kCap;
  server_ = std::make_unique<TmanServer>(tman_.get(), std::move(*listener),
                                         so);
  ASSERT_TRUE(server_->Start().ok());

  std::vector<std::thread> writers;
  for (int c = 0; c < kClients; ++c) {
    writers.emplace_back([this, c, port] {
      RemoteClientOptions options;
      options.client_name = "sock-src-" + std::to_string(c);
      options.batch_max_updates = 256;
      options.connector = [port] { return TcpConnect("127.0.0.1", port); };
      RemoteClient client(options);
      ASSERT_TRUE(client.Connect().ok());
      RemoteDataSource src(&client, sources_[c]);
      for (int64_t v = 0; v < kUpdates; ++v) {
        ASSERT_TRUE(src.Insert(Tuple({Value::Int(v)})).ok());
      }
      ASSERT_TRUE(client.Drain().ok());
      client.Close();
    });
  }
  for (auto& t : writers) t.join();
  tman_->Drain();

  // Exactly once per source: every value seen, no duplicates. (With two
  // driver threads inter-batch order is not deterministic, so this test
  // checks the exactly-once set; the loopback test checks order.)
  for (int c = 0; c < kClients; ++c) {
    auto got = Received(c);
    ASSERT_EQ(got.size(), static_cast<size_t>(kUpdates)) << "source " << c;
    std::vector<bool> seen(kUpdates, false);
    for (int64_t v : got) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kUpdates);
      ASSERT_FALSE(seen[static_cast<size_t>(v)])
          << "duplicate value " << v << " for source " << c;
      seen[static_cast<size_t>(v)] = true;
    }
  }
  EXPECT_EQ(server_->stats().updates_applied,
            static_cast<uint64_t>(kClients) * kUpdates);
  // Backpressure held the line: the queue's high-water mark respects the
  // configured bound.
  EXPECT_LE(tman_->task_queue().stats().max_size, kCap);
}

}  // namespace
}  // namespace tman
