// Wire protocol tests: round-trips for every frame type, the frame
// header validator, the adversarial decoder suite (truncation, oversize,
// CRC damage, version skew, random bytes — every outcome must be a clean
// Status, never a crash or over-read), and frame I/O over the loopback
// transport including the ipc.* fault sites.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ipc/loopback.h"
#include "ipc/remote_client.h"
#include "util/backoff.h"
#include "ipc/socket_transport.h"
#include "ipc/transport.h"
#include "ipc/wire_format.h"
#include "util/crc32.h"
#include "util/random.h"

namespace tman {
namespace {

// --- CRC-32 ----------------------------------------------------------------

TEST(Crc32Test, KnownAnswers) {
  // The standard check value for CRC-32 (zlib polynomial).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32(data.data(), data.size());
  uint32_t part = Crc32(data.data(), 10);
  part = Crc32(data.data() + 10, data.size() - 10, part);
  EXPECT_EQ(part, whole);
}

// --- frame header ----------------------------------------------------------

TEST(WireFormatTest, FrameHeaderRoundTrip) {
  std::string frame;
  EncodeFrame(FrameType::kCommand, "hello world", &frame);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 11);
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize), kDefaultMaxPayload);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, FrameType::kCommand);
  EXPECT_EQ(header->payload_len, 11u);
  EXPECT_TRUE(
      VerifyFramePayload(*header, std::string_view(frame).substr(
                                      kFrameHeaderSize))
          .ok());
}

TEST(WireFormatTest, HeaderRejectsBadMagic) {
  std::string frame;
  EncodeFrame(FrameType::kPing, "", &frame);
  frame[0] = 'X';
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize), kDefaultMaxPayload);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
}

TEST(WireFormatTest, HeaderRejectsBadVersion) {
  std::string frame;
  EncodeFrame(FrameType::kPing, "", &frame);
  frame[4] = static_cast<char>(kWireVersion + 1);
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize), kDefaultMaxPayload);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kNotSupported);
}

TEST(WireFormatTest, HeaderRejectsUnknownType) {
  std::string frame;
  EncodeFrame(FrameType::kPing, "", &frame);
  frame[5] = static_cast<char>(200);
  EXPECT_FALSE(DecodeFrameHeader(
                   std::string_view(frame).substr(0, kFrameHeaderSize),
                   kDefaultMaxPayload)
                   .ok());
}

TEST(WireFormatTest, HeaderRejectsNonzeroReserved) {
  std::string frame;
  EncodeFrame(FrameType::kPing, "", &frame);
  frame[6] = 1;
  EXPECT_FALSE(DecodeFrameHeader(
                   std::string_view(frame).substr(0, kFrameHeaderSize),
                   kDefaultMaxPayload)
                   .ok());
}

TEST(WireFormatTest, HeaderRejectsOversizedPayloadBeforeAllocation) {
  // Announce a 4 GB payload: the header decoder must reject it from the
  // length field alone.
  std::string frame;
  EncodeFrame(FrameType::kPing, "x", &frame);
  frame[8] = static_cast<char>(0xFF);
  frame[9] = static_cast<char>(0xFF);
  frame[10] = static_cast<char>(0xFF);
  frame[11] = static_cast<char>(0xFF);
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize), 1 << 20);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kResourceExhausted);
}

TEST(WireFormatTest, VerifyDetectsCorruptPayload) {
  std::string frame;
  EncodeFrame(FrameType::kCommand, "payload bytes", &frame);
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize), kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  std::string payload(frame.substr(kFrameHeaderSize));
  payload[3] ^= 0x40;
  Status s = VerifyFramePayload(*header, payload);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

// --- payload round-trips ----------------------------------------------------

UpdateDescriptor SampleInsert(uint32_t source, int64_t v) {
  return UpdateDescriptor::Insert(source,
                                  Tuple({Value::Int(v), Value::String("s")}));
}

TEST(WireFormatTest, HelloRoundTrip) {
  HelloFrame in;
  in.client_name = "feed-7";
  in.protocol_version = kWireVersion;
  std::string payload;
  in.Encode(&payload);
  auto out = HelloFrame::Decode(payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->client_name, "feed-7");
  EXPECT_EQ(out->protocol_version, kWireVersion);
}

TEST(WireFormatTest, HelloReplyRoundTrip) {
  HelloReplyFrame in;
  in.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
  in.message = "nope";
  in.initial_credits = 512;
  in.last_applied_seq = 99887766554433ULL;
  std::string payload;
  in.Encode(&payload);
  auto out = HelloReplyFrame::Decode(payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->status_code, in.status_code);
  EXPECT_EQ(out->message, "nope");
  EXPECT_EQ(out->initial_credits, 512u);
  EXPECT_EQ(out->last_applied_seq, 99887766554433ULL);
}

TEST(WireFormatTest, CommandRoundTrip) {
  CommandFrame in;
  in.request_id = 42;
  in.text = "create trigger t from emp on insert do raise event E()";
  std::string payload;
  in.Encode(&payload);
  auto out = CommandFrame::Decode(payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->request_id, 42u);
  EXPECT_EQ(out->text, in.text);
}

TEST(WireFormatTest, CommandReplyRoundTrip) {
  CommandReplyFrame in;
  in.request_id = 7;
  in.status_code = static_cast<uint8_t>(StatusCode::kParseError);
  in.message = "bad syntax";
  in.result = "";
  std::string payload;
  in.Encode(&payload);
  auto out = CommandReplyFrame::Decode(payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->request_id, 7u);
  EXPECT_EQ(out->status_code, in.status_code);
  EXPECT_EQ(out->message, "bad syntax");
  EXPECT_EQ(out->result, "");
}

TEST(WireFormatTest, UpdateBatchRoundTrip) {
  UpdateBatchFrame in;
  in.first_seq = 1000;
  in.updates.push_back(SampleInsert(3, 1));
  in.updates.push_back(UpdateDescriptor::Delete(
      4, Tuple({Value::Int(2), Value::String("x")})));
  in.updates.push_back(UpdateDescriptor::Update(
      5, Tuple({Value::Int(3), Value::String("a")}),
      Tuple({Value::Int(4), Value::String("b")})));
  std::string payload;
  in.Encode(&payload);
  auto out = UpdateBatchFrame::Decode(payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->first_seq, 1000u);
  ASSERT_EQ(out->updates.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out->updates[i].ToString(), in.updates[i].ToString()) << i;
  }
}

TEST(WireFormatTest, UpdateAckRoundTrip) {
  UpdateAckFrame in;
  in.ack_seq = 12345;
  in.status_code = static_cast<uint8_t>(StatusCode::kNotFound);
  in.message = "unknown data source";
  in.credits = 64;
  std::string payload;
  in.Encode(&payload);
  auto out = UpdateAckFrame::Decode(payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->ack_seq, 12345u);
  EXPECT_EQ(out->status_code, in.status_code);
  EXPECT_EQ(out->message, "unknown data source");
  EXPECT_EQ(out->credits, 64u);
}

TEST(WireFormatTest, EventFramesRoundTrip) {
  EventRegisterFrame reg;
  reg.request_id = 9;
  reg.event_name = "*";
  std::string payload;
  reg.Encode(&payload);
  auto reg_out = EventRegisterFrame::Decode(payload);
  ASSERT_TRUE(reg_out.ok());
  EXPECT_EQ(reg_out->request_id, 9u);
  EXPECT_EQ(reg_out->event_name, "*");

  EventUnregisterFrame unreg;
  unreg.registration_id = 77;
  payload.clear();
  unreg.Encode(&payload);
  auto unreg_out = EventUnregisterFrame::Decode(payload);
  ASSERT_TRUE(unreg_out.ok());
  EXPECT_EQ(unreg_out->registration_id, 77u);

  EventPushFrame push;
  push.registration_id = 5;
  push.event_name = "Hired";
  push.args = {Value::String("ann"), Value::Int(3), Value::Float(1.5)};
  payload.clear();
  push.Encode(&payload);
  auto push_out = EventPushFrame::Decode(payload);
  ASSERT_TRUE(push_out.ok()) << push_out.status().ToString();
  EXPECT_EQ(push_out->registration_id, 5u);
  EXPECT_EQ(push_out->event_name, "Hired");
  ASSERT_EQ(push_out->args.size(), 3u);
  EXPECT_EQ(push_out->args[0].as_string(), "ann");
  EXPECT_EQ(push_out->args[1].as_int(), 3);
}

TEST(WireFormatTest, SmallFramesRoundTrip) {
  CreditGrantFrame grant;
  grant.credits = 4096;
  std::string payload;
  grant.Encode(&payload);
  auto grant_out = CreditGrantFrame::Decode(payload);
  ASSERT_TRUE(grant_out.ok());
  EXPECT_EQ(grant_out->credits, 4096u);

  PingFrame ping;
  ping.nonce = 0xDEADBEEFCAFEF00DULL;
  payload.clear();
  ping.Encode(&payload);
  auto ping_out = PingFrame::Decode(payload);
  ASSERT_TRUE(ping_out.ok());
  EXPECT_EQ(ping_out->nonce, ping.nonce);

  GoodbyeFrame bye;
  bye.reason = "done";
  payload.clear();
  bye.Encode(&payload);
  auto bye_out = GoodbyeFrame::Decode(payload);
  ASSERT_TRUE(bye_out.ok());
  EXPECT_EQ(bye_out->reason, "done");
}

// --- adversarial decoding ---------------------------------------------------

// Every strict decoder must reject every proper prefix of a valid payload
// and any payload with trailing bytes — cleanly, without reading out of
// bounds (ASan-checked).
template <typename Payload>
void CheckTruncationAndTrailing(const Payload& sample) {
  std::string payload;
  sample.Encode(&payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto out = Payload::Decode(std::string_view(payload.data(), len));
    EXPECT_FALSE(out.ok()) << "prefix of length " << len << " accepted";
  }
  std::string trailing = payload + "\x01";
  EXPECT_FALSE(Payload::Decode(trailing).ok()) << "trailing byte accepted";
}

TEST(WireFormatAdversarialTest, TruncatedAndTrailingPayloads) {
  {
    HelloFrame f;
    f.client_name = "abc";
    CheckTruncationAndTrailing(f);
  }
  {
    HelloReplyFrame f;
    f.message = "m";
    f.initial_credits = 1;
    CheckTruncationAndTrailing(f);
  }
  {
    CommandFrame f;
    f.request_id = 1;
    f.text = "stats";
    CheckTruncationAndTrailing(f);
  }
  {
    CommandReplyFrame f;
    f.request_id = 1;
    f.result = "ok";
    CheckTruncationAndTrailing(f);
  }
  {
    UpdateBatchFrame f;
    f.first_seq = 1;
    f.updates.push_back(SampleInsert(1, 7));
    CheckTruncationAndTrailing(f);
  }
  {
    UpdateAckFrame f;
    f.ack_seq = 1;
    f.message = "e";
    CheckTruncationAndTrailing(f);
  }
  {
    EventRegisterFrame f;
    f.event_name = "E";
    CheckTruncationAndTrailing(f);
  }
  {
    EventUnregisterFrame f;
    CheckTruncationAndTrailing(f);
  }
  {
    EventPushFrame f;
    f.event_name = "E";
    f.args = {Value::Int(1)};
    CheckTruncationAndTrailing(f);
  }
  {
    CreditGrantFrame f;
    CheckTruncationAndTrailing(f);
  }
  {
    PingFrame f;
    CheckTruncationAndTrailing(f);
  }
  {
    GoodbyeFrame f;
    f.reason = "r";
    CheckTruncationAndTrailing(f);
  }
}

TEST(WireFormatAdversarialTest, RandomBytesNeverCrashDecoders) {
  Random rng(20260806);
  for (int round = 0; round < 2000; ++round) {
    size_t len = rng.Uniform(64);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Uniform(256));
    // Each decoder must return a Status (ok or not) without crashing.
    (void)HelloFrame::Decode(bytes);
    (void)HelloReplyFrame::Decode(bytes);
    (void)CommandFrame::Decode(bytes);
    (void)CommandReplyFrame::Decode(bytes);
    (void)UpdateBatchFrame::Decode(bytes);
    (void)UpdateAckFrame::Decode(bytes);
    (void)EventRegisterFrame::Decode(bytes);
    (void)EventUnregisterFrame::Decode(bytes);
    (void)EventPushFrame::Decode(bytes);
    (void)CreditGrantFrame::Decode(bytes);
    (void)PingFrame::Decode(bytes);
    (void)GoodbyeFrame::Decode(bytes);
    if (len >= kFrameHeaderSize) {
      (void)DecodeFrameHeader(
          std::string_view(bytes).substr(0, kFrameHeaderSize), 1 << 16);
    }
  }
}

TEST(WireFormatAdversarialTest, MutatedValidFramesNeverCrash) {
  // Start from a valid encoded batch frame and flip bytes: the reader
  // pipeline (header check, CRC, payload decode) must always produce a
  // clean Status.
  UpdateBatchFrame batch;
  batch.first_seq = 5;
  for (int i = 0; i < 4; ++i) batch.updates.push_back(SampleInsert(2, i));
  std::string payload;
  batch.Encode(&payload);
  std::string frame;
  EncodeFrame(FrameType::kUpdateBatch, payload, &frame);

  Random rng(99);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = frame;
    size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1u << rng.Uniform(8));
    }
    auto header = DecodeFrameHeader(
        std::string_view(mutated).substr(0, kFrameHeaderSize),
        kDefaultMaxPayload);
    if (!header.ok()) continue;
    std::string_view body = std::string_view(mutated).substr(kFrameHeaderSize);
    if (body.size() != header->payload_len) continue;
    if (!VerifyFramePayload(*header, body).ok()) continue;
    (void)UpdateBatchFrame::Decode(body);
  }
}

// --- frame I/O over loopback ------------------------------------------------

TEST(FrameIoTest, WriteReadAcrossLoopback) {
  auto [client, server] = CreateLoopbackPair();
  CommandFrame cmd;
  cmd.request_id = 3;
  cmd.text = "stats";
  ASSERT_TRUE(
      WriteFramePayload(client.get(), FrameType::kCommand, cmd, {}).ok());
  auto frame = ReadFrame(server.get(), {});
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kCommand);
  auto decoded = CommandFrame::Decode(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->text, "stats");
}

TEST(FrameIoTest, ReassemblesShortReads) {
  auto [client, server] = CreateLoopbackPair();
  FaultInjector faults;
  // Clamp every transport read to one byte: the reader must reassemble.
  faults.ArmEveryNth("ipc.read.short", 1, StatusCode::kIoError);
  FrameIoOptions read_io;
  read_io.faults = &faults;

  CommandFrame cmd;
  cmd.request_id = 1;
  cmd.text = "a somewhat longer command text to fragment";
  ASSERT_TRUE(
      WriteFramePayload(client.get(), FrameType::kCommand, cmd, {}).ok());
  auto frame = ReadFrame(server.get(), read_io);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto decoded = CommandFrame::Decode(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->text, cmd.text);
}

TEST(FrameIoTest, CorruptFaultIsDetectedByReader) {
  auto [client, server] = CreateLoopbackPair();
  FaultInjector faults;
  faults.ArmEveryNth("ipc.corrupt", 1, StatusCode::kCorruption);
  FrameIoOptions write_io;
  write_io.faults = &faults;

  CommandFrame cmd;
  cmd.request_id = 1;
  cmd.text = "stats";
  ASSERT_TRUE(
      WriteFramePayload(client.get(), FrameType::kCommand, cmd, write_io)
          .ok());
  auto frame = ReadFrame(server.get(), {});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameIoTest, DroppedWriteLeavesTruncatedFrame) {
  auto [client, server] = CreateLoopbackPair();
  FaultInjector faults;
  faults.ArmCountdown("ipc.write.drop", 0, StatusCode::kIoError);
  FrameIoOptions write_io;
  write_io.faults = &faults;

  CommandFrame cmd;
  cmd.request_id = 1;
  cmd.text = "this frame is cut in half mid-flight";
  Status s = WriteFramePayload(client.get(), FrameType::kCommand, cmd,
                               write_io);
  EXPECT_FALSE(s.ok());
  // The reader sees a partial frame then EOF: corruption, not clean EOF.
  auto frame = ReadFrame(server.get(), {});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameIoTest, CleanCloseIsAbortedAtFrameBoundary) {
  auto [client, server] = CreateLoopbackPair();
  client->Close();
  auto frame = ReadFrame(server.get(), {});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kAborted);
}

TEST(FrameIoTest, OversizedFrameRejectedWithoutReadingPayload) {
  auto [client, server] = CreateLoopbackPair();
  std::string big(1024, 'x');
  std::string frame;
  EncodeFrame(FrameType::kCommand, big, &frame);
  ASSERT_TRUE(client->Write(frame).ok());
  FrameIoOptions small_io;
  small_io.max_payload = 128;
  auto got = ReadFrame(server.get(), small_io);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
}

// --- host:port parsing -------------------------------------------------------

TEST(ParseHostPortTest, Forms) {
  auto hp = ParseHostPort("127.0.0.1:7447");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->first, "127.0.0.1");
  EXPECT_EQ(hp->second, 7447);

  hp = ParseHostPort(":9");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->first, "127.0.0.1");
  EXPECT_EQ(hp->second, 9);

  hp = ParseHostPort("[::1]:80");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->first, "::1");
  EXPECT_EQ(hp->second, 80);

  EXPECT_FALSE(ParseHostPort("nohost").ok());
  EXPECT_FALSE(ParseHostPort("h:notaport").ok());
  EXPECT_FALSE(ParseHostPort("h:70000").ok());
}

// --- loopback transport semantics -------------------------------------------

TEST(LoopbackTest, BoundedBufferBlocksWriterUntilReaderDrains) {
  auto [client, server] = CreateLoopbackPair(/*capacity=*/64);
  std::string chunk(48, 'a');
  ASSERT_TRUE(client->Write(chunk).ok());
  // Second write exceeds capacity; it must block until the reader drains.
  std::thread writer([&] { ASSERT_TRUE(client->Write(chunk).ok()); });
  char buf[256];
  size_t total = 0;
  while (total < 96) {
    auto n = server->ReadSome(buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    total += *n;
  }
  writer.join();
  EXPECT_EQ(total, 96u);
}

TEST(LoopbackTest, CloseUnblocksBlockedReader) {
  auto [client, server] = CreateLoopbackPair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    client->Close();
  });
  char buf[16];
  auto n = server->ReadSome(buf, sizeof buf);
  closer.join();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // EOF
}

// --- reconnect backoff --------------------------------------------------

TEST(BackoffTest, ExponentialGrowthClampedAtCap) {
  using std::chrono::milliseconds;
  // jitter 0 => pure deterministic schedule: 10, 20, 40, 80, 100, 100, ...
  int64_t expected[] = {10, 20, 40, 80, 100, 100};
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    milliseconds d = BackoffDelay(attempt, milliseconds(10), milliseconds(100),
                                  2.0, 0.0, nullptr);
    EXPECT_EQ(d.count(), expected[attempt - 1]) << "attempt " << attempt;
  }
  // attempt 0 is coerced to 1.
  EXPECT_EQ(BackoffDelay(0, milliseconds(10), milliseconds(100), 2.0, 0.0,
                         nullptr)
                .count(),
            10);
}

TEST(BackoffTest, JitterStaysWithinBoundsAndIsSeedDeterministic) {
  using std::chrono::milliseconds;
  const double kJitter = 0.5;
  Random rng_a(4242), rng_b(4242);
  bool any_jittered = false;
  for (uint32_t attempt = 1; attempt <= 10; ++attempt) {
    milliseconds base = BackoffDelay(attempt, milliseconds(16),
                                     milliseconds(512), 2.0, 0.0, nullptr);
    milliseconds a = BackoffDelay(attempt, milliseconds(16), milliseconds(512),
                                  2.0, kJitter, &rng_a);
    milliseconds b = BackoffDelay(attempt, milliseconds(16), milliseconds(512),
                                  2.0, kJitter, &rng_b);
    EXPECT_EQ(a.count(), b.count()) << "same seed, same schedule";
    double lo = base.count() * (1.0 - kJitter);
    double hi = std::min(512.0, base.count() * (1.0 + kJitter));
    EXPECT_GE(a.count(), static_cast<int64_t>(lo) - 1) << "attempt " << attempt;
    EXPECT_LE(a.count(), static_cast<int64_t>(hi) + 1) << "attempt " << attempt;
    if (a != base) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered);
}

// The RemoteClient reconnect path follows the configured backoff schedule
// exactly, asserted against a virtual clock (the reconnect_sleep seam
// records delays instead of sleeping).
TEST(BackoffTest, RemoteClientReconnectFollowsBackoffSchedule) {
  auto [client_end, server_end] = CreateLoopbackPair();

  // Service the initial handshake by hand, then drop the connection.
  std::thread server([transport = std::move(server_end)]() mutable {
    auto hello = ReadFrame(transport.get());
    ASSERT_TRUE(hello.ok());
    ASSERT_EQ(hello->type, FrameType::kHello);
    HelloReplyFrame reply;
    reply.initial_credits = 16;
    ASSERT_TRUE(
        WriteFramePayload(transport.get(), FrameType::kHelloReply, reply)
            .ok());
    transport->Close();
  });

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int64_t> delays;

  RemoteClientOptions options;
  options.client_name = "backoff-probe";
  options.auto_reconnect = true;
  options.max_reconnect_attempts = 6;
  options.reconnect_backoff = std::chrono::milliseconds(10);
  options.reconnect_backoff_max = std::chrono::milliseconds(80);
  options.reconnect_backoff_multiplier = 2.0;
  options.reconnect_jitter = 0.25;
  options.reconnect_seed = 1234;
  options.reconnect_sleep = [&](std::chrono::milliseconds d) {
    std::lock_guard<std::mutex> lock(mutex);
    delays.push_back(d.count());
    cv.notify_all();
  };
  options.connector = []() -> Result<std::unique_ptr<Transport>> {
    return Status::Unavailable("endpoint down");
  };

  RemoteClient client(options);
  ASSERT_TRUE(client.Connect(std::move(client_end)).ok());
  server.join();

  {
    // The server hangup triggers reconnects; every dial fails, so exactly
    // max_reconnect_attempts sleeps are recorded, then the client goes
    // terminal.
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return delays.size() >= 6; }));
    EXPECT_EQ(delays.size(), 6u);
  }
  client.Close();

  // Replay the exact schedule: same seed, same jittered delays.
  Random replay_rng(1234);
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    std::chrono::milliseconds expected = BackoffDelay(
        attempt, options.reconnect_backoff, options.reconnect_backoff_max,
        options.reconnect_backoff_multiplier, options.reconnect_jitter,
        &replay_rng);
    EXPECT_EQ(delays[attempt - 1], expected.count()) << "attempt " << attempt;
    EXPECT_LE(delays[attempt - 1], 80 + 80 / 4) << "cap + jitter ceiling";
  }
}

}  // namespace
}  // namespace tman
