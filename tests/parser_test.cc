#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace tman {
namespace {

TEST(LexerTest, TokenKinds) {
  Lexer lex("create 42 3.14 'str' ( ) , . ; = <> != < <= > >= + - * / :");
  ASSERT_TRUE(lex.init_status().ok());
  std::vector<TokenKind> kinds;
  while (!lex.AtEnd()) {
    kinds.push_back(lex.Peek().kind);
    ASSERT_TRUE(lex.Next().ok());
  }
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kIntLiteral,
                TokenKind::kFloatLiteral, TokenKind::kStringLiteral,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                TokenKind::kDot, TokenKind::kSemicolon, TokenKind::kEq,
                TokenKind::kNe, TokenKind::kNe, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kColon}));
}

TEST(LexerTest, StringEscaping) {
  Lexer lex("'it''s'");
  EXPECT_EQ(lex.Peek().text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  Lexer lex("'oops");
  EXPECT_FALSE(lex.init_status().ok());
}

TEST(LexerTest, CommentsSkipped) {
  Lexer lex("a -- comment here\n b");
  EXPECT_EQ(lex.Peek().text, "a");
  ASSERT_TRUE(lex.Next().ok());
  EXPECT_EQ(lex.Peek().text, "b");
}

TEST(LexerTest, NumbersAndExponents) {
  Lexer lex("10 2.5 1e3 7.5e-2");
  EXPECT_EQ(lex.Peek().int_value, 10);
  ASSERT_TRUE(lex.Next().ok());
  EXPECT_DOUBLE_EQ(lex.Peek().float_value, 2.5);
  ASSERT_TRUE(lex.Next().ok());
  EXPECT_DOUBLE_EQ(lex.Peek().float_value, 1000.0);
  ASSERT_TRUE(lex.Next().ok());
  EXPECT_DOUBLE_EQ(lex.Peek().float_value, 0.075);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  Lexer lex("CREATE Trigger");
  EXPECT_TRUE(lex.Peek().IsKeyword("create"));
  ASSERT_TRUE(lex.Next().ok());
  EXPECT_TRUE(lex.Peek().IsKeyword("TRIGGER"));
}

// --- command parsing -------------------------------------------------------

CreateTriggerCmd ParseCreate(const std::string& text) {
  auto cmd = ParseCommand(text);
  EXPECT_TRUE(cmd.ok()) << cmd.status().ToString();
  auto* create = std::get_if<CreateTriggerCmd>(&*cmd);
  EXPECT_NE(create, nullptr);
  return *create;
}

TEST(ParserTest, PaperExampleUpdateFred) {
  auto cmd = ParseCreate(
      "create trigger updateFred from emp on update(emp.salary) "
      "when emp.name = 'Bob' "
      "do execSQL 'update emp set salary=:NEW.emp.salary where "
      "emp.name=''Fred'''");
  EXPECT_EQ(cmd.name, "updateFred");
  ASSERT_EQ(cmd.from.size(), 1u);
  EXPECT_EQ(cmd.from[0].source, "emp");
  EXPECT_EQ(cmd.from[0].var, "emp");
  ASSERT_TRUE(cmd.on.has_value());
  EXPECT_EQ(cmd.on->op, OpCode::kUpdate);
  EXPECT_EQ(cmd.on->target, "emp");
  ASSERT_EQ(cmd.on->columns.size(), 1u);
  EXPECT_EQ(cmd.on->columns[0], "emp.salary");
  ASSERT_NE(cmd.when, nullptr);
  EXPECT_EQ(cmd.action.kind, ActionKind::kExecSql);
  EXPECT_NE(cmd.action.sql.find(":NEW.emp.salary"), std::string::npos);
  EXPECT_NE(cmd.action.sql.find("'Fred'"), std::string::npos);
}

TEST(ParserTest, PaperExampleIrisHouseAlert) {
  auto cmd = ParseCreate(
      "create trigger IrisHouseAlert on insert to house "
      "from salesperson s, house h, represents r "
      "when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno "
      "do raise event NewHouseInIrisNeighborhood(h.hno, h.address)");
  EXPECT_EQ(cmd.name, "IrisHouseAlert");
  ASSERT_EQ(cmd.from.size(), 3u);
  EXPECT_EQ(cmd.from[0].var, "s");
  EXPECT_EQ(cmd.from[1].var, "h");
  EXPECT_EQ(cmd.from[2].var, "r");
  ASSERT_TRUE(cmd.on.has_value());
  EXPECT_EQ(cmd.on->op, OpCode::kInsert);
  EXPECT_EQ(cmd.on->target, "house");
  EXPECT_EQ(cmd.action.kind, ActionKind::kRaiseEvent);
  EXPECT_EQ(cmd.action.event_name, "NewHouseInIrisNeighborhood");
  EXPECT_EQ(cmd.action.event_args.size(), 2u);
}

TEST(ParserTest, TriggerInSet) {
  auto cmd = ParseCreate(
      "create trigger t1 in monitoring from emp when salary > 1 "
      "do raise event E()");
  EXPECT_EQ(cmd.set_name, "monitoring");
}

TEST(ParserTest, GroupByHavingParsed) {
  auto cmd = ParseCreate(
      "create trigger t2 from sales group by region having count(x) > 10 "
      "do raise event TooMany()");
  EXPECT_EQ(cmd.group_by.size(), 1u);
  EXPECT_NE(cmd.having, nullptr);
}

TEST(ParserTest, MissingFromRejected) {
  EXPECT_FALSE(ParseCommand("create trigger t do raise event E()").ok());
}

TEST(ParserTest, MissingDoRejected) {
  EXPECT_FALSE(ParseCommand("create trigger t from emp").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(
      ParseCommand("create trigger t from emp do raise event E() zzz").ok());
}

TEST(ParserTest, DropTrigger) {
  auto cmd = ParseCommand("drop trigger updateFred");
  ASSERT_TRUE(cmd.ok());
  auto* drop = std::get_if<DropTriggerCmd>(&*cmd);
  ASSERT_NE(drop, nullptr);
  EXPECT_EQ(drop->name, "updateFred");
}

TEST(ParserTest, CreateTriggerSet) {
  auto cmd = ParseCommand("create trigger set alerts 'web user alerts'");
  ASSERT_TRUE(cmd.ok());
  auto* set = std::get_if<CreateTriggerSetCmd>(&*cmd);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->name, "alerts");
  EXPECT_EQ(set->comments, "web user alerts");
}

TEST(ParserTest, EnableDisable) {
  auto cmd = ParseCommand("disable trigger set alerts");
  ASSERT_TRUE(cmd.ok());
  auto* en = std::get_if<EnableCmd>(&*cmd);
  ASSERT_NE(en, nullptr);
  EXPECT_FALSE(en->enable);
  EXPECT_TRUE(en->is_set);
  EXPECT_EQ(en->name, "alerts");

  auto cmd2 = ParseCommand("enable trigger t1");
  auto* en2 = std::get_if<EnableCmd>(&*cmd2);
  ASSERT_NE(en2, nullptr);
  EXPECT_TRUE(en2->enable);
  EXPECT_FALSE(en2->is_set);
}

TEST(ParserTest, DefineDataSource) {
  auto cmd = ParseCommand(
      "define data source house (hno int, address varchar(64), price float, "
      "nno int, spno int)");
  ASSERT_TRUE(cmd.ok());
  auto* def = std::get_if<DefineDataSourceCmd>(&*cmd);
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->name, "house");
  ASSERT_EQ(def->schema.num_fields(), 5u);
  EXPECT_EQ(def->schema.field(1).width, 64u);
  EXPECT_EQ(def->schema.field(2).type, DataType::kFloat);
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto cmds = ParseScript(
      "define data source s (a int); "
      "create trigger t from s when a > 1 do raise event E(a);");
  ASSERT_TRUE(cmds.ok());
  EXPECT_EQ(cmds->size(), 2u);
}

TEST(ParserTest, UnknownCommandRejected) {
  EXPECT_FALSE(ParseCommand("explode trigger t").ok());
}

TEST(ParserTest, EventSpecDeleteFrom) {
  auto cmd = ParseCreate(
      "create trigger t from emp on delete from emp do raise event Gone()");
  ASSERT_TRUE(cmd.on.has_value());
  EXPECT_EQ(cmd.on->op, OpCode::kDelete);
  EXPECT_EQ(cmd.on->target, "emp");
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpressionString("a.x = 1 or a.y = 2 and a.z = 3");
  ASSERT_TRUE(e.ok());
  // AND binds tighter than OR.
  EXPECT_EQ(ExprToString(*e),
            "((a.x = 1) or ((a.y = 2) and (a.z = 3)))");
}

TEST(ParserTest, NegativeNumberFolded) {
  auto e = ParseExpressionString("a.x > -5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ExprToString(*e), "(a.x > -5)");
}

TEST(ParserTest, FunctionCallsInExpressions) {
  auto e = ParseExpressionString("abs(a.x - 3) < length('abc')");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ExprToString(*e), "(abs((a.x - 3)) < length('abc'))");
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto r = ParseCommand("create trigger t from emp when do x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace tman
