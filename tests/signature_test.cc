#include <gtest/gtest.h>

#include "expr/signature.h"
#include "parser/parser.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

GeneralizedPredicate Gen(const std::string& text,
                         OpCode op = OpCode::kInsert, DataSourceId ds = 1) {
  auto r = GeneralizePredicate(ds, op, Parse(text));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(SignatureTest, ConstantsExtractedLeftToRight) {
  auto g = Gen("emp.salary > 80000");
  ASSERT_EQ(g.constants.size(), 1u);
  EXPECT_EQ(g.constants[0].as_int(), 80000);
  EXPECT_EQ(ExprToString(g.signature.generalized),
            "(t.salary > CONSTANT_1)");
}

TEST(SignatureTest, PaperExampleSameSignatureDifferentConstant) {
  // The paper's Figure 2 example: salary > 80000 and salary > 50000 have
  // the same signature.
  auto a = Gen("emp.salary > 80000");
  auto b = Gen("emp.salary > 50000");
  EXPECT_TRUE(a.signature.Equals(b.signature));
  EXPECT_EQ(a.signature.Hash(), b.signature.Hash());
  EXPECT_NE(a.constants[0], b.constants[0]);
}

TEST(SignatureTest, DifferentStructureDifferentSignature) {
  auto a = Gen("emp.salary > 80000");
  auto b = Gen("emp.salary >= 80000");
  auto c = Gen("emp.age > 80000");
  EXPECT_FALSE(a.signature.Equals(b.signature));
  EXPECT_FALSE(a.signature.Equals(c.signature));
}

TEST(SignatureTest, DifferentOpCodeDifferentSignature) {
  auto a = Gen("e.x = 1", OpCode::kInsert);
  auto b = Gen("e.x = 1", OpCode::kDelete);
  EXPECT_FALSE(a.signature.Equals(b.signature));
}

TEST(SignatureTest, DifferentDataSourceDifferentSignature) {
  auto a = Gen("e.x = 1", OpCode::kInsert, 1);
  auto b = Gen("e.x = 1", OpCode::kInsert, 2);
  EXPECT_FALSE(a.signature.Equals(b.signature));
}

TEST(SignatureTest, TupleVariableNameDoesNotMatter) {
  auto a = Gen("emp.salary > 100");
  auto b = Gen("e.salary > 100");
  EXPECT_TRUE(a.signature.Equals(b.signature));
}

TEST(SignatureTest, ConstantOnLeftCanonicalized) {
  auto a = Gen("50000 < emp.salary");
  auto b = Gen("emp.salary > 50000");
  EXPECT_TRUE(a.signature.Equals(b.signature));
}

TEST(SignatureTest, MultipleConstantsNumbered) {
  auto g = Gen("e.city = 'austin' and e.price < 250000 and e.beds >= 3");
  ASSERT_EQ(g.constants.size(), 3u);
  EXPECT_EQ(g.constants[0].as_string(), "austin");
  EXPECT_EQ(g.constants[1].as_int(), 250000);
  EXPECT_EQ(g.constants[2].as_int(), 3);
  EXPECT_EQ(g.signature.num_constants, 3);
}

TEST(SignatureTest, UpdateColumnsPartOfIdentity) {
  auto a = Gen("e.x = 1", OpCode::kUpdate);
  auto b = Gen("e.x = 1", OpCode::kUpdate);
  b.signature.update_columns = {"salary"};
  EXPECT_FALSE(a.signature.Equals(b.signature));
  EXPECT_NE(a.signature.Hash(), b.signature.Hash());
}

TEST(SignatureTest, JoinPredicateRejected) {
  auto r = GeneralizePredicate(1, OpCode::kInsert, Parse("a.x = b.y"));
  EXPECT_FALSE(r.ok());
}

TEST(SignatureTest, DescriptionMentionsStructure) {
  auto g = Gen("e.salary > 80000");
  std::string desc = g.signature.Description();
  EXPECT_NE(desc.find("CONSTANT_1"), std::string::npos);
  EXPECT_NE(desc.find("insert"), std::string::npos);
}

// --- indexable split -------------------------------------------------------

IndexableSplit Split(const std::string& text) {
  auto g = Gen(text);
  return SplitIndexable(g.signature.generalized);
}

TEST(SplitTest, SingleEqualityFullyIndexable) {
  auto s = Split("e.dept = 7");
  ASSERT_EQ(s.eq.size(), 1u);
  EXPECT_EQ(s.eq[0].attribute, "dept");
  EXPECT_EQ(s.eq[0].placeholder, 1);
  EXPECT_FALSE(s.has_range);
  EXPECT_EQ(s.rest, nullptr);
}

TEST(SplitTest, CompositeEqualityKey) {
  auto s = Split("e.city = 'x' and e.beds = 3");
  ASSERT_EQ(s.eq.size(), 2u);
  EXPECT_EQ(s.eq[0].attribute, "city");
  EXPECT_EQ(s.eq[1].attribute, "beds");
  EXPECT_EQ(s.rest, nullptr);
}

TEST(SplitTest, EqualityWinsOverRange) {
  auto s = Split("e.dept = 7 and e.salary > 100");
  ASSERT_EQ(s.eq.size(), 1u);
  EXPECT_FALSE(s.has_range);
  ASSERT_NE(s.rest, nullptr);
  EXPECT_NE(ExprToString(s.rest).find("salary"), std::string::npos);
}

TEST(SplitTest, SingleRangeIndexable) {
  auto s = Split("e.salary > 100");
  EXPECT_TRUE(s.eq.empty());
  ASSERT_TRUE(s.has_range);
  EXPECT_EQ(s.range.attribute, "salary");
  EXPECT_TRUE(s.range.has_lo);
  EXPECT_FALSE(s.range.lo_inclusive);
  EXPECT_FALSE(s.range.has_hi);
  EXPECT_EQ(s.rest, nullptr);
}

TEST(SplitTest, TwoSidedRangeBecomesInterval) {
  auto s = Split("e.price >= 100 and e.price <= 200");
  ASSERT_TRUE(s.has_range);
  EXPECT_TRUE(s.range.has_lo);
  EXPECT_TRUE(s.range.lo_inclusive);
  EXPECT_EQ(s.range.lo_placeholder, 1);
  EXPECT_TRUE(s.range.has_hi);
  EXPECT_TRUE(s.range.hi_inclusive);
  EXPECT_EQ(s.range.hi_placeholder, 2);
  EXPECT_EQ(s.rest, nullptr);
}

TEST(SplitTest, RangesOnDifferentAttrsOneIndexed) {
  auto s = Split("e.price < 100 and e.beds > 2");
  ASSERT_TRUE(s.has_range);
  EXPECT_EQ(s.range.attribute, "price");
  ASSERT_NE(s.rest, nullptr);
  EXPECT_NE(ExprToString(s.rest).find("beds"), std::string::npos);
}

TEST(SplitTest, NonIndexableExpression) {
  auto s = Split("abs(e.delta) > 5");
  EXPECT_TRUE(s.eq.empty());
  EXPECT_FALSE(s.has_range);
  ASSERT_NE(s.rest, nullptr);
}

TEST(SplitTest, OrDisablesIndexingOfThatConjunct) {
  auto s = Split("e.a = 1 or e.b = 2");
  EXPECT_TRUE(s.eq.empty());
  EXPECT_FALSE(s.has_range);
  ASSERT_NE(s.rest, nullptr);
}

TEST(SplitTest, NullGeneralizedIsTrivial) {
  auto s = SplitIndexable(nullptr);
  EXPECT_TRUE(s.eq.empty());
  EXPECT_FALSE(s.has_range);
  EXPECT_EQ(s.rest, nullptr);
}

TEST(SplitTest, ArithmeticOnColumnNotEqIndexable) {
  auto s = Split("e.a + 1 = 5");
  EXPECT_TRUE(s.eq.empty());
  ASSERT_NE(s.rest, nullptr);
}

}  // namespace
}  // namespace tman
