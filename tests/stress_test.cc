// Concurrency stress tests: trigger creation racing token matching,
// multi-driver processing under load, and storage reopen/durability.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/trigger_manager.h"
#include "parser/parser.h"
#include "storage/bptree.h"
#include "util/random.h"

namespace tman {
namespace {

TEST(StressTest, CreateTriggersWhileMatching) {
  // Exclusive-lock trigger creation must interleave safely with
  // shared-lock matching from concurrent "driver" threads.
  PredicateIndex index(nullptr, OrgPolicy());
  Schema schema({{"k", DataType::kInt}, {"v", DataType::kInt}});
  ASSERT_TRUE(index.RegisterDataSource(1, schema).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_matches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> matchers;
  for (int t = 0; t < 2; ++t) {
    matchers.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        Tuple tuple({Value::Int(rng.UniformRange(0, 99)), Value::Int(1)});
        std::vector<PredicateMatch> out;
        if (!index.Match(UpdateDescriptor::Insert(1, tuple), &out).ok()) {
          ++errors;
        }
        total_matches.fetch_add(out.size(), std::memory_order_relaxed);
      }
    });
  }

  // Meanwhile create (and occasionally remove) predicates.
  std::vector<ExprId> created;
  for (int i = 0; i < 2000; ++i) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    auto pred = ParseExpressionString("t.k = " + std::to_string(i % 100));
    ASSERT_TRUE(pred.ok());
    spec.predicate = *pred;
    spec.trigger_id = static_cast<TriggerId>(i + 1);
    auto added = index.AddPredicate(spec);
    ASSERT_TRUE(added.ok());
    created.push_back(added->expr_id);
    if (i % 7 == 0 && created.size() > 10) {
      ASSERT_TRUE(index.RemovePredicate(created.front()).ok());
      created.erase(created.begin());
    }
  }
  // Every key value has predicates now; let the matchers observe the
  // populated index before stopping (on a loaded machine they may not
  // have been scheduled at all during the build loop above).
  while (total_matches.load(std::memory_order_relaxed) == 0 &&
         errors.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : matchers) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(total_matches.load(), 0u);
  EXPECT_EQ(index.stats().num_predicates, created.size());
}

TEST(StressTest, DriversUnderSustainedLoad) {
  Database db;
  ASSERT_TRUE(db.CreateTable("emp", Schema({{"name", DataType::kVarchar},
                                            {"salary", DataType::kFloat},
                                            {"dept", DataType::kInt}}))
                  .ok());
  TriggerManagerOptions options;
  options.driver_config.num_drivers = 3;
  options.driver_config.period = std::chrono::milliseconds(2);
  options.concurrent_actions = true;  // exercise action tasks too
  TriggerManager tman(&db, options);
  ASSERT_TRUE(tman.Open().ok());
  ASSERT_TRUE(tman.DefineLocalTableSource("emp").ok());
  for (int d = 0; d < 10; ++d) {
    ASSERT_TRUE(tman.ExecuteCommand(
                        "create trigger t" + std::to_string(d) +
                        " from emp on insert when emp.dept = " +
                        std::to_string(d) + " do raise event E" +
                        std::to_string(d) + "(emp.name)")
                    .ok());
  }
  ASSERT_TRUE(tman.Start().ok());

  // Two application threads hammer the table while drivers process.
  std::atomic<int> errors{0};
  std::vector<std::thread> writers;
  constexpr int kPerWriter = 500;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) + 77);
      for (int i = 0; i < kPerWriter; ++i) {
        auto s = db.Insert(
            "emp", Tuple({Value::String("w" + std::to_string(w) + "-" +
                                        std::to_string(i)),
                          Value::Float(1),
                          Value::Int(rng.UniformRange(0, 19))}));
        if (!s.ok()) ++errors;
      }
    });
  }
  for (auto& th : writers) th.join();
  tman.Drain();
  tman.Stop();

  EXPECT_EQ(errors.load(), 0);
  auto stats = tman.stats();
  EXPECT_EQ(stats.updates_submitted, 2u * kPerWriter);
  EXPECT_EQ(stats.tokens_processed, 2u * kPerWriter);
  // Depts 0..9 fire (half the uniform range over 0..19): expect ~half of
  // the inserts to fire exactly once each.
  EXPECT_EQ(stats.rule_firings, tman.events().num_raised());
  EXPECT_GT(stats.rule_firings, 2u * kPerWriter / 4);
  EXPECT_LT(stats.rule_firings, 3u * kPerWriter / 2);
}

TEST(StressTest, MultiDriverBatchedSubmissionAllShardedLayers) {
  // The scaling hot path end to end: batched submission (one PushBatch
  // per batch) into the sharded task queue, drivers matching against the
  // striped predicate index across several data sources, firings pinning
  // hot triggers in the sharded cache. Runs under the tsan preset — this
  // is the data-race proof for the whole sharded hot path.
  Database db;
  constexpr int kSources = 4;
  for (int s = 0; s < kSources; ++s) {
    ASSERT_TRUE(db.CreateTable("s" + std::to_string(s),
                               Schema({{"k", DataType::kInt},
                                       {"v", DataType::kInt}}))
                    .ok());
  }
  TriggerManagerOptions options;
  options.driver_config.num_drivers = 4;
  options.driver_config.period = std::chrono::milliseconds(2);
  options.persistent_queue = false;  // hot path: in-memory delivery
  TriggerManager tman(&db, options);
  ASSERT_TRUE(tman.Open().ok());
  for (int s = 0; s < kSources; ++s) {
    ASSERT_TRUE(tman.DefineLocalTableSource("s" + std::to_string(s)).ok());
    for (int t = 0; t < 4; ++t) {
      ASSERT_TRUE(tman.ExecuteCommand(
                          "create trigger s" + std::to_string(s) + "t" +
                          std::to_string(t) + " from s" + std::to_string(s) +
                          " on insert when s" + std::to_string(s) +
                          ".k = " + std::to_string(t) + " do raise event B" +
                          std::to_string(s) + "_" + std::to_string(t) +
                          "(s" + std::to_string(s) + ".v)")
                      .ok());
    }
  }
  ASSERT_TRUE(tman.Start().ok());

  // Three submitter threads, each sending batches of 32 tokens spread
  // over all sources: every batch is ONE task-queue PushBatch.
  constexpr int kSubmitters = 3;
  constexpr int kBatches = 20;
  constexpr int kBatchSize = 32;
  std::atomic<int> errors{0};
  std::vector<std::thread> submitters;
  for (int w = 0; w < kSubmitters; ++w) {
    submitters.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) * 31 + 7);
      for (int b = 0; b < kBatches; ++b) {
        std::vector<UpdateDescriptor> batch;
        batch.reserve(kBatchSize);
        for (int i = 0; i < kBatchSize; ++i) {
          auto src = tman.sources().Lookup(
              "s" + std::to_string(rng.UniformRange(0, kSources - 1)));
          if (!src.ok()) {
            ++errors;
            continue;
          }
          batch.push_back(UpdateDescriptor::Insert(
              src->id,
              Tuple({Value::Int(rng.UniformRange(0, 7)), Value::Int(i)})));
        }
        std::vector<Status> per_update;
        if (!tman.SubmitUpdateBatch(batch, &per_update).ok()) ++errors;
        for (const Status& s : per_update) {
          if (!s.ok()) ++errors;
        }
      }
    });
  }
  for (auto& th : submitters) th.join();
  tman.Drain();
  tman.Stop();

  EXPECT_EQ(errors.load(), 0);
  constexpr uint64_t kTotal = kSubmitters * kBatches * kBatchSize;
  auto stats = tman.stats();
  EXPECT_EQ(stats.updates_submitted, kTotal);
  EXPECT_EQ(stats.tokens_processed, kTotal);
  // k is uniform over 0..7 and triggers cover 0..3: about half fire.
  EXPECT_EQ(stats.rule_firings, tman.events().num_raised());
  EXPECT_GT(stats.rule_firings, kTotal / 4);
  EXPECT_LT(stats.rule_firings, kTotal);
  // The task queue's own ledger balances across shards. Memory-mode
  // batches ride the columnar pipeline: each 32-token batch is ONE
  // ProcessTokenBatch task, so the floor is one task per submitted batch
  // (tokens_processed above proves per-token coverage).
  auto qstats = tman.task_queue().stats();
  EXPECT_EQ(qstats.popped, qstats.pushed);
  EXPECT_GE(qstats.pushed,
            static_cast<uint64_t>(kSubmitters) * kBatches);
  // Trigger pins were overwhelmingly cache hits (the working set is 16
  // triggers against a 16k-capacity cache).
  EXPECT_GT(stats.cache.hits, stats.cache.misses);
}

TEST(StressTest, BPTreeSurvivesPoolFlushAndReopen) {
  DiskManager disk;
  auto pool = std::make_unique<BufferPool>(&disk, 64);
  auto meta = BPTree::Create(pool.get());
  ASSERT_TRUE(meta.ok());
  {
    BPTree tree(pool.get(), *meta);
    for (int64_t i = 0; i < 3000; ++i) {
      ASSERT_TRUE(tree.Insert({Value::Int(i)}, Rid{0, 0}).ok());
    }
    ASSERT_TRUE(pool->FlushAll().ok());
  }
  // A fresh buffer pool over the same "disk": everything must read back.
  pool = std::make_unique<BufferPool>(&disk, 64);
  BPTree reopened(pool.get(), *meta);
  EXPECT_EQ(*reopened.NumEntries(), 3000u);
  for (int64_t i = 0; i < 3000; i += 113) {
    EXPECT_EQ(reopened.SearchEqual({Value::Int(i)})->size(), 1u);
  }
}

TEST(StressTest, AlphaMemoryConcurrentMutation) {
  AlphaMemory mem;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 5);
      for (int i = 0; i < 2000; ++i) {
        Tuple tuple({Value::Int(rng.UniformRange(0, 50)), Value::Int(t)});
        if (rng.Bernoulli(0.6)) {
          mem.Insert(tuple);
        } else {
          mem.Remove(tuple);
        }
        if (i % 16 == 0) {
          mem.ProbeEqual(0, Value::Int(rng.UniformRange(0, 50)),
                         [](const Tuple&) { return true; });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Consistency: ForEach count equals size().
  size_t counted = 0;
  mem.ForEach([&counted](const Tuple&) {
    ++counted;
    return true;
  });
  EXPECT_EQ(counted, mem.size());
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace tman
