#include <gtest/gtest.h>

#include <set>

#include "predindex/interval_index.h"
#include "util/random.h"

namespace tman {
namespace {

IntervalIndex::Interval Iv(uint64_t id, std::optional<int64_t> lo,
                           std::optional<int64_t> hi, bool lo_incl = true,
                           bool hi_incl = true) {
  IntervalIndex::Interval out;
  out.id = id;
  if (lo.has_value()) out.lo = Value::Int(*lo);
  if (hi.has_value()) out.hi = Value::Int(*hi);
  out.lo_inclusive = lo_incl;
  out.hi_inclusive = hi_incl;
  return out;
}

std::set<uint64_t> Stab(const IntervalIndex& idx, int64_t v) {
  std::set<uint64_t> out;
  idx.Stab(Value::Int(v), [&out](const IntervalIndex::Interval& iv) {
    out.insert(iv.id);
  });
  return out;
}

TEST(IntervalContainsTest, InclusiveExclusiveBounds) {
  EXPECT_TRUE(Iv(1, 10, 20).Contains(Value::Int(10)));
  EXPECT_TRUE(Iv(1, 10, 20).Contains(Value::Int(20)));
  EXPECT_FALSE(Iv(1, 10, 20, false, true).Contains(Value::Int(10)));
  EXPECT_FALSE(Iv(1, 10, 20, true, false).Contains(Value::Int(20)));
  EXPECT_FALSE(Iv(1, 10, 20).Contains(Value::Int(9)));
  EXPECT_FALSE(Iv(1, 10, 20).Contains(Value::Int(21)));
}

TEST(IntervalContainsTest, HalfOpenSides) {
  EXPECT_TRUE(Iv(1, std::nullopt, 5).Contains(Value::Int(-1000)));
  EXPECT_FALSE(Iv(1, std::nullopt, 5).Contains(Value::Int(6)));
  EXPECT_TRUE(Iv(1, 5, std::nullopt).Contains(Value::Int(1000)));
  EXPECT_TRUE(Iv(1, std::nullopt, std::nullopt).Contains(Value::Int(0)));
}

TEST(IntervalIndexTest, BasicStab) {
  IntervalIndex idx;
  idx.Insert(Iv(1, 0, 10));
  idx.Insert(Iv(2, 5, 15));
  idx.Insert(Iv(3, 12, 20));
  EXPECT_EQ(Stab(idx, 7), (std::set<uint64_t>{1, 2}));
  EXPECT_EQ(Stab(idx, 13), (std::set<uint64_t>{2, 3}));
  EXPECT_EQ(Stab(idx, 25), (std::set<uint64_t>{}));
  EXPECT_EQ(idx.size(), 3u);
}

TEST(IntervalIndexTest, RemoveHidesInterval) {
  IntervalIndex idx;
  idx.Insert(Iv(1, 0, 10));
  idx.Insert(Iv(2, 0, 10));
  EXPECT_TRUE(idx.Remove(1));
  EXPECT_EQ(Stab(idx, 5), (std::set<uint64_t>{2}));
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_FALSE(idx.Remove(1));   // already gone
  EXPECT_FALSE(idx.Remove(99));  // never existed
}

TEST(IntervalIndexTest, RebuildPreservesContents) {
  IntervalIndex idx;
  // Enough inserts to force several rebuilds (overflow merges).
  for (uint64_t i = 0; i < 500; ++i) {
    idx.Insert(Iv(i, static_cast<int64_t>(i), static_cast<int64_t>(i + 10)));
  }
  EXPECT_EQ(idx.size(), 500u);
  auto hits = Stab(idx, 250);
  // Intervals [241..250, 251..260] contain 250: ids 240..250.
  std::set<uint64_t> want;
  for (uint64_t i = 240; i <= 250; ++i) want.insert(i);
  EXPECT_EQ(hits, want);
}

TEST(IntervalIndexTest, StringDomain) {
  IntervalIndex idx;
  IntervalIndex::Interval iv;
  iv.id = 1;
  iv.lo = Value::String("apple");
  iv.hi = Value::String("mango");
  idx.Insert(iv);
  std::set<uint64_t> out;
  idx.Stab(Value::String("banana"),
           [&out](const IntervalIndex::Interval& i) { out.insert(i.id); });
  EXPECT_EQ(out, (std::set<uint64_t>{1}));
  out.clear();
  idx.Stab(Value::String("zebra"),
           [&out](const IntervalIndex::Interval& i) { out.insert(i.id); });
  EXPECT_TRUE(out.empty());
}

TEST(IntervalIndexTest, RandomizedAgainstBruteForce) {
  Random rng(31337);
  IntervalIndex idx;
  std::vector<IntervalIndex::Interval> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.5 || live.empty()) {
      int64_t lo = rng.UniformRange(-100, 100);
      int64_t hi = lo + rng.UniformRange(0, 50);
      auto iv = Iv(next_id++, lo, hi, rng.Bernoulli(0.5), rng.Bernoulli(0.5));
      if (rng.Bernoulli(0.05)) iv.lo.reset();
      if (rng.Bernoulli(0.05)) iv.hi.reset();
      idx.Insert(iv);
      live.push_back(iv);
    } else if (roll < 0.65) {
      size_t pick = rng.Uniform(live.size());
      EXPECT_TRUE(idx.Remove(live[pick].id));
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      int64_t v = rng.UniformRange(-120, 170);
      std::set<uint64_t> want;
      for (const auto& iv : live) {
        if (iv.Contains(Value::Int(v))) want.insert(iv.id);
      }
      EXPECT_EQ(Stab(idx, v), want) << "stab at " << v;
    }
  }
  EXPECT_EQ(idx.size(), live.size());
}

}  // namespace
}  // namespace tman
