#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_table.h"
#include "util/random.h"

namespace tman {
namespace {

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk;
  PageId p = disk.AllocatePage();
  Page page;
  page.data[0] = 'x';
  page.data[kPageSize - 1] = 'y';
  ASSERT_TRUE(disk.WritePage(p, page).ok());
  Page back;
  ASSERT_TRUE(disk.ReadPage(p, &back).ok());
  EXPECT_EQ(back.data[0], 'x');
  EXPECT_EQ(back.data[kPageSize - 1], 'y');
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
}

TEST(DiskManagerTest, InvalidPageRejected) {
  DiskManager disk;
  Page page;
  EXPECT_FALSE(disk.ReadPage(42, &page).ok());
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.DeallocatePage(p).ok());
  EXPECT_FALSE(disk.ReadPage(p, &page).ok());
  EXPECT_FALSE(disk.DeallocatePage(p).ok());
}

TEST(BufferPoolTest, HitAndMissAccounting) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageGuard g;
  ASSERT_TRUE(pool.NewPage(&g).ok());
  PageId id = g.page_id();
  g.data()[0] = 'a';
  g.MarkDirty();
  g.Release();

  ASSERT_TRUE(pool.FetchPage(id, &g).ok());
  EXPECT_EQ(g.data()[0], 'a');
  g.Release();
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) {
    PageGuard g;
    ASSERT_TRUE(pool.NewPage(&g).ok());
    g.data()[0] = static_cast<char>('a' + i);
    g.MarkDirty();
    ids.push_back(g.page_id());
  }
  // All pages must read back correctly even though only 2 frames exist.
  for (int i = 0; i < 5; ++i) {
    PageGuard g;
    ASSERT_TRUE(pool.FetchPage(ids[static_cast<size_t>(i)], &g).ok());
    EXPECT_EQ(g.data()[0], static_cast<char>('a' + i));
  }
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTest, AllFramesPinnedFails) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageGuard g1, g2, g3;
  ASSERT_TRUE(pool.NewPage(&g1).ok());
  ASSERT_TRUE(pool.NewPage(&g2).ok());
  EXPECT_FALSE(pool.NewPage(&g3).ok());
  g1.Release();
  EXPECT_TRUE(pool.NewPage(&g3).ok());
}

TEST(BufferPoolTest, RefetchWhileHoldingGuardDoesNotDeadlock) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageGuard g;
  ASSERT_TRUE(pool.NewPage(&g).ok());
  PageId id = g.page_id();
  // Re-fetching into the same guard must release the old pin first.
  ASSERT_TRUE(pool.FetchPage(id, &g).ok());
  EXPECT_EQ(g.page_id(), id);
}

TEST(BufferPoolTest, MoveGuardTransfersPin) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  PageGuard a;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.Release();
  EXPECT_FALSE(b.valid());
}

TEST(BufferPoolTest, ConcurrentFetchesOfSameMissReadDiskOnce) {
  DiskManager disk;
  PageId id = disk.AllocatePage();
  Page page;
  page.data[0] = 'z';
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  disk.ResetStats();
  // Make the miss read slow enough that the other fetchers pile up on the
  // io-pending latch while it is in flight.
  disk.set_access_latency_ns(5'000'000);  // 5 ms
  BufferPool pool(&disk, 8);

  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      PageGuard g;
      if (pool.FetchPage(id, &g).ok() && g.data()[0] == 'z') {
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok.load(), kThreads);
  // The io-pending latch makes waiters reuse the initiator's read instead
  // of issuing their own.
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(BufferPoolTest, MissesOfDistinctPagesOverlap) {
  DiskManager disk;
  constexpr int kPages = 4;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    PageId id = disk.AllocatePage();
    Page page;
    page.data[0] = static_cast<char>('a' + i);
    ASSERT_TRUE(disk.WritePage(id, page).ok());
    ids.push_back(id);
  }
  constexpr uint64_t kLatencyNs = 50'000'000;  // 50 ms per disk access
  disk.set_access_latency_ns(kLatencyNs);
  BufferPool pool(&disk, 8);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kPages);
  for (int i = 0; i < kPages; ++i) {
    threads.emplace_back([&, i] {
      PageGuard g;
      ASSERT_TRUE(pool.FetchPage(ids[static_cast<size_t>(i)], &g).ok());
      EXPECT_EQ(g.data()[0], static_cast<char>('a' + i));
    });
  }
  for (std::thread& t : threads) t.join();
  auto elapsed = std::chrono::steady_clock::now() - start;

  // Reads happen outside the pool mutex, so four 50 ms misses overlap;
  // the old behavior (read under the mutex) would serialize to >= 200 ms.
  // The generous bound only trips when there is no overlap at all.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            static_cast<int64_t>(kPages) * 50 - 25);
}

TEST(BufferPoolTest, FailedReadLeavesPoolConsistent) {
  DiskManager disk;
  PageId id = disk.AllocatePage();
  Page page;
  page.data[0] = 'q';
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  BufferPool pool(&disk, 2);

  disk.fault_injector()->ArmCountdown("disk.read", 0);
  PageGuard g;
  EXPECT_FALSE(pool.FetchPage(id, &g).ok());
  disk.ClearFaults();

  // The failed claim was undone: the retry re-reads and succeeds.
  ASSERT_TRUE(pool.FetchPage(id, &g).ok());
  EXPECT_EQ(g.data()[0], 'q');
  g.Release();

  // The frame was recycled, not leaked: the pool can still pin to capacity.
  PageGuard a, b;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.NewPage(&b).ok());
}

class HeapTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    auto first = HeapTable::Create(pool_.get());
    ASSERT_TRUE(first.ok());
    table_ = std::make_unique<HeapTable>(pool_.get(), *first);
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapTable> table_;
};

TEST_F(HeapTableTest, InsertGet) {
  auto rid = table_->Insert("hello");
  ASSERT_TRUE(rid.ok());
  auto rec = table_->Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello");
  EXPECT_EQ(table_->num_records(), 1u);
}

TEST_F(HeapTableTest, DeleteThenGetFails) {
  auto rid = table_->Insert("bye");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(table_->Delete(*rid).ok());
  EXPECT_FALSE(table_->Get(*rid).ok());
  EXPECT_FALSE(table_->Delete(*rid).ok());
  EXPECT_EQ(table_->num_records(), 0u);
}

TEST_F(HeapTableTest, UpdateInPlaceKeepsRid) {
  auto rid = table_->Insert("abcdef");
  ASSERT_TRUE(rid.ok());
  auto new_rid = table_->Update(*rid, "xyz");  // shorter: fits in place
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(*new_rid, *rid);
  EXPECT_EQ(*table_->Get(*new_rid), "xyz");
}

TEST_F(HeapTableTest, UpdateGrowingMovesRecord) {
  auto rid = table_->Insert("ab");
  ASSERT_TRUE(rid.ok());
  std::string big(300, 'q');
  auto new_rid = table_->Update(*rid, big);
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(*table_->Get(*new_rid), big);
  EXPECT_FALSE(table_->Get(*rid).ok());  // old slot tombstoned
  EXPECT_EQ(table_->num_records(), 1u);
}

TEST_F(HeapTableTest, SpillsAcrossPages) {
  std::string record(500, 'r');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    record[0] = static_cast<char>('a' + (i % 26));
    auto rid = table_->Insert(record);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  auto pages = table_->num_pages();
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(*pages, 10u);  // ~7 records of 500B per 4KB page
  for (int i = 0; i < 100; ++i) {
    auto rec = table_->Get(rids[static_cast<size_t>(i)]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ((*rec)[0], static_cast<char>('a' + (i % 26)));
  }
}

TEST_F(HeapTableTest, ScanVisitsLiveRecordsInOrder) {
  ASSERT_TRUE(table_->Insert("one").ok());
  auto two = table_->Insert("two");
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(table_->Insert("three").ok());
  ASSERT_TRUE(table_->Delete(*two).ok());

  std::vector<std::string> seen;
  ASSERT_TRUE(table_
                  ->Scan([&](const Rid&, std::string_view rec) {
                    seen.emplace_back(rec);
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "one");
  EXPECT_EQ(seen[1], "three");
}

TEST_F(HeapTableTest, ScanEarlyExit) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table_->Insert("r" + std::to_string(i)).ok());
  }
  int count = 0;
  ASSERT_TRUE(table_
                  ->Scan([&](const Rid&, std::string_view) {
                    ++count;
                    return count < 3;
                  })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(HeapTableTest, OversizedRecordRejected) {
  std::string huge(kPageSize, 'x');
  EXPECT_FALSE(table_->Insert(huge).ok());
}

TEST_F(HeapTableTest, EmptyRecordSupported) {
  auto rid = table_->Insert("");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*table_->Get(*rid), "");
}

TEST_F(HeapTableTest, RandomizedAgainstReferenceModel) {
  Random rng(2024);
  std::map<std::string, std::string> model;  // rid string -> payload
  std::map<std::string, Rid> rids;
  for (int step = 0; step < 2000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.6 || model.empty()) {
      std::string payload(rng.Uniform(200) + 1,
                          static_cast<char>('a' + rng.Uniform(26)));
      auto rid = table_->Insert(payload);
      ASSERT_TRUE(rid.ok());
      model[rid->ToString()] = payload;
      rids[rid->ToString()] = *rid;
    } else if (roll < 0.8) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.size())));
      ASSERT_TRUE(table_->Delete(rids[it->first]).ok());
      rids.erase(it->first);
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.size())));
      std::string payload(rng.Uniform(200) + 1,
                          static_cast<char>('A' + rng.Uniform(26)));
      auto new_rid = table_->Update(rids[it->first], payload);
      ASSERT_TRUE(new_rid.ok());
      std::string old_key = it->first;
      model.erase(it);
      rids.erase(old_key);
      model[new_rid->ToString()] = payload;
      rids[new_rid->ToString()] = *new_rid;
    }
  }
  EXPECT_EQ(table_->num_records(), model.size());
  size_t seen = 0;
  ASSERT_TRUE(table_
                  ->Scan([&](const Rid& rid, std::string_view rec) {
                    auto it = model.find(rid.ToString());
                    EXPECT_NE(it, model.end());
                    if (it != model.end()) {
                      EXPECT_EQ(it->second, rec);
                    }
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, model.size());
}

}  // namespace
}  // namespace tman
