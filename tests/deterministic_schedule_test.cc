// Deterministic concurrency tests: the §6 architecture (task queue +
// drivers + token sources) is exercised through DeterministicScheduler,
// which makes every interleaving a pure function of a seed. Each test
// sweeps seeds to explore schedules; any assertion failure names the
// seed that reproduces it, and a rerun with that seed replays the exact
// event trace (the reproducibility contract SameSeedSameTrace asserts).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "expr/eval.h"
#include "storage/wal.h"
#include "parser/parser.h"
#include "predindex/predicate_index.h"
#include "runtime/clock.h"
#include "runtime/deterministic.h"
#include "runtime/driver.h"
#include "util/random.h"

namespace tman {
namespace {

Task Work(TaskKind kind, std::function<Status()> fn) {
  Task t;
  t.kind = kind;
  t.work = std::move(fn);
  return t;
}

// --- reproducibility: same seed, same trace ---------------------------------

/// One push-storm-vs-two-drivers workload; returns its full event trace.
std::string QueueWorkloadTrace(uint64_t seed) {
  TaskQueue queue;
  DeterministicScheduler sched(seed);
  queue.set_observer([&sched](std::string_view e) {
    sched.Note("q:" + std::string(e));
  });
  int pushed = 0;
  bool producer_done = false;
  sched.AddActor("push", [&] {
    queue.Push(Work(pushed % 3 == 0 ? TaskKind::kRunAction
                                    : TaskKind::kProcessToken,
                    [] { return Status::OK(); }));
    if (++pushed == 30) {
      producer_done = true;
      return false;
    }
    return true;
  });
  AddQueueDriverActor(&sched, "drv0", &queue, [&] { return producer_done; });
  AddQueueDriverActor(&sched, "drv1", &queue, [&] { return producer_done; });
  sched.Run();
  return sched.TraceString();
}

TEST(DeterministicScheduleTest, SameSeedReplaysIdenticalTrace) {
  for (uint64_t seed : {1u, 42u, 1999u}) {
    std::string first = QueueWorkloadTrace(seed);
    std::string second = QueueWorkloadTrace(seed);
    ASSERT_EQ(first, second) << "trace not reproducible for seed " << seed;
    ASSERT_NE(first.find("q:push:run-action"), std::string::npos);
  }
}

TEST(DeterministicScheduleTest, DifferentSeedsExploreDifferentSchedules) {
  std::set<std::string> distinct;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    distinct.insert(QueueWorkloadTrace(seed));
  }
  // 3 actors over ~90 scheduling points: eight seeds collapsing to one
  // schedule would mean the RNG is not driving the scheduler at all.
  EXPECT_GT(distinct.size(), 1u);
}

// --- queue drain vs push storm ----------------------------------------------

TEST(DeterministicScheduleTest, DrainVsPushStormNeverLosesTasks) {
  constexpr int kSeeds = 300;
  constexpr int kTasks = 40;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    TaskQueue queue;
    DeterministicScheduler sched(seed);
    int executed = 0;
    int pushed = 0;
    // Two storming producers sharing the kTasks quota; some tasks re-push
    // follow-up work (token tasks spawning action tasks), as
    // TriggerManager's pipeline does. A spawn-push always happens inside
    // a driver step, so that driver stays alive to drain it.
    for (int p = 0; p < 2; ++p) {
      sched.AddActor("push" + std::to_string(p), [&] {
        if (pushed >= kTasks) return false;  // other producer used the quota
        bool spawn = (pushed % 5 == 0);
        queue.Push(Work(TaskKind::kProcessToken, [&queue, &executed, spawn] {
          ++executed;
          if (spawn) {
            queue.Push(Work(TaskKind::kRunAction, [&executed] {
              ++executed;
              return Status::OK();
            }));
          }
          return Status::OK();
        }));
        return ++pushed < kTasks;
      });
    }
    for (int d = 0; d < 3; ++d) {
      AddQueueDriverActor(&sched, "drv" + std::to_string(d), &queue,
                          [&] { return pushed >= kTasks; });
    }
    sched.Run();
    auto stats = queue.stats();
    ASSERT_EQ(stats.popped, stats.pushed) << "reproducing seed: " << seed;
    ASSERT_EQ(executed, static_cast<int>(stats.pushed))
        << "reproducing seed: " << seed;
    ASSERT_TRUE(queue.empty()) << "reproducing seed: " << seed;
    ASSERT_EQ(queue.in_flight(), 0u) << "reproducing seed: " << seed;
  }
}

// --- work stealing across shards --------------------------------------------

/// Sharded-queue workload with explicit shard placement: producers pick
/// target shards from the seed, drivers have fixed (distinct) home
/// shards, so which pops are steals is a pure function of the seed.
/// Returns the trace; `out_steals` receives the steal count.
std::string StealWorkloadTrace(uint64_t seed, uint64_t* out_steals,
                               uint64_t* out_executed) {
  TaskQueue queue(4);
  DeterministicScheduler sched(seed);
  queue.set_observer([&sched](std::string_view e) {
    sched.Note("q:" + std::string(e));
  });
  constexpr int kTasks = 32;
  int pushed = 0;
  uint64_t executed = 0;
  Random producer_rng(seed * 0x9e3779b9ULL + 3);
  sched.AddActor("push", [&] {
    // Skewed placement: most tasks land on shard 0, so drivers homed on
    // shards 1..3 must steal to drain.
    uint32_t shard = static_cast<uint32_t>(producer_rng.UniformRange(0, 5));
    if (shard >= 4) shard = 0;
    queue.PushToShard(shard,
                      Work(TaskKind::kProcessToken, [&executed] {
                        ++executed;
                        return Status::OK();
                      }));
    return ++pushed < kTasks;
  });
  for (uint32_t d = 0; d < 4; ++d) {
    AddQueueDriverActor(&sched, "drv" + std::to_string(d), &queue,
                        /*home_shard=*/d, [&] { return pushed >= kTasks; });
  }
  sched.Run();
  if (out_steals != nullptr) *out_steals = queue.stats().steals;
  if (out_executed != nullptr) *out_executed = executed;
  return sched.TraceString();
}

TEST(DeterministicScheduleTest, StealPathsSweepThousandSeedsNoLostTasks) {
  constexpr uint64_t kSeeds = 1000;
  uint64_t total_steals = 0;
  uint64_t seeds_with_steals = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    uint64_t steals = 0;
    uint64_t executed = 0;
    StealWorkloadTrace(seed, &steals, &executed);
    ASSERT_EQ(executed, 32u) << "reproducing seed: " << seed;
    total_steals += steals;
    if (steals > 0) ++seeds_with_steals;
  }
  // The skewed placement makes steals overwhelmingly likely: if the
  // sweep never exercised a steal the explicit-shard plumbing is broken.
  EXPECT_GT(total_steals, 0u);
  EXPECT_GT(seeds_with_steals, kSeeds / 2);
}

TEST(DeterministicScheduleTest, StealScheduleReplaysIdenticallyFromSeed) {
  for (uint64_t seed : {3u, 77u, 500u, 999u}) {
    uint64_t steals_a = 0, steals_b = 0;
    std::string first = StealWorkloadTrace(seed, &steals_a, nullptr);
    std::string second = StealWorkloadTrace(seed, &steals_b, nullptr);
    ASSERT_EQ(first, second)
        << "steal schedule not reproducible for seed " << seed;
    ASSERT_EQ(steals_a, steals_b);
  }
  // Steal pops are visible in the trace (the observer tags them), so a
  // failing seed's trace shows exactly which pops crossed shards.
  uint64_t steals = 0;
  for (uint64_t seed = 1; steals == 0 && seed <= 64; ++seed) {
    std::string trace = StealWorkloadTrace(seed, &steals, nullptr);
    if (steals > 0) {
      EXPECT_NE(trace.find("q:steal:"), std::string::npos);
    }
  }
  EXPECT_GT(steals, 0u);
}

// --- create-trigger racing token matching -----------------------------------

Schema KvSchema() {
  return Schema({{"k", DataType::kInt}, {"v", DataType::kInt}});
}

/// ≥1000 seeded interleavings of predicate creation/removal (the §5.1
/// create-trigger path) against token matching (the §5.4 pipeline): after
/// every scheduler step the index must match exactly the predicates
/// installed at that step, per direct evaluation of a mirror model.
TEST(DeterministicScheduleTest, CreateTriggerRacesTokenMatchingThousandSeeds) {
  constexpr uint64_t kSeeds = 1000;
  constexpr int kCreates = 14;
  constexpr int kProbes = 10;
  Schema schema = KvSchema();
  // Predicate shapes (parsed per install so indexes never share trees).
  std::vector<std::string> shapes;
  for (int i = 0; i < kCreates; ++i) {
    switch (i % 3) {
      case 0:
        shapes.push_back("t.k = " + std::to_string(i % 7));
        break;
      case 1:
        shapes.push_back("t.v > " + std::to_string((i * 13) % 50));
        break;
      default:
        shapes.push_back("t.k = " + std::to_string(i % 5) + " and t.v <= " +
                         std::to_string(20 + i));
    }
  }

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    PredicateIndex index(nullptr, OrgPolicy());
    ASSERT_TRUE(index.RegisterDataSource(1, schema).ok());
    DeterministicScheduler sched(seed);

    // Mirror of what is installed, updated atomically with each step.
    struct Installed {
      ExprId expr_id;
      TriggerId trigger_id;
      ExprPtr predicate;
    };
    std::vector<Installed> installed;

    int create_step = 0;
    Random creator_rng(seed * 0x9e3779b9ULL + 1);
    sched.AddActor("create", [&] {
      if (create_step % 4 == 3 && installed.size() > 2) {
        // Occasionally drop the oldest trigger (drop-trigger racing too).
        Installed victim = installed.front();
        installed.erase(installed.begin());
        EXPECT_TRUE(index.RemovePredicate(victim.expr_id).ok())
            << "reproducing seed: " << seed;
        sched.Note("drop:" + std::to_string(victim.trigger_id));
      } else {
        auto pred = ParseExpressionString(shapes[create_step % kCreates]);
        EXPECT_TRUE(pred.ok());
        PredicateSpec spec;
        spec.data_source = 1;
        spec.op = OpCode::kInsertOrUpdate;
        spec.predicate = *pred;
        spec.trigger_id = static_cast<TriggerId>(create_step + 1);
        auto added = index.AddPredicate(spec);
        EXPECT_TRUE(added.ok()) << "reproducing seed: " << seed;
        if (added.ok()) {
          installed.push_back({added->expr_id, spec.trigger_id, *pred});
        }
        sched.Note("create:" + std::to_string(spec.trigger_id));
      }
      return ++create_step < kCreates;
    });

    int probes = 0;
    Random matcher_rng(seed * 0x2545f491ULL + 7);
    sched.AddActor("match", [&] {
      Tuple t({Value::Int(matcher_rng.UniformRange(0, 7)),
               Value::Int(matcher_rng.UniformRange(0, 60))});
      std::vector<PredicateMatch> out;
      EXPECT_TRUE(index.Match(UpdateDescriptor::Insert(1, t), &out).ok())
          << "reproducing seed: " << seed;
      std::set<TriggerId> got;
      for (const auto& m : out) got.insert(m.trigger_id);
      std::set<TriggerId> expected;
      for (const Installed& inst : installed) {
        Bindings b;
        b.Bind("t", &schema, &t);
        auto pass = EvalPredicate(inst.predicate, b);
        EXPECT_TRUE(pass.ok());
        if (pass.ok() && *pass) expected.insert(inst.trigger_id);
      }
      EXPECT_EQ(got, expected)
          << "match diverged from direct evaluation on tuple "
          << t.ToString() << "; reproducing seed: " << seed;
      sched.Note("match:hits=" + std::to_string(got.size()));
      return ++probes < kProbes;
    });

    sched.Run();
    if (::testing::Test::HasFailure()) {
      // Print the failing schedule once, then stop: the trace plus the
      // seed is the complete reproduction recipe.
      ADD_FAILURE() << "failing interleaving (seed " << seed << "):\n"
                    << sched.TraceString();
      break;
    }
    ASSERT_EQ(index.stats().num_predicates, installed.size())
        << "reproducing seed: " << seed;
  }
}

// --- THRESHOLD expiry mid-batch under a virtual clock -----------------------

TEST(DeterministicScheduleTest, VirtualClockExpiresThresholdMidBatch) {
  // Each Now() call advances 100 virtual ms: TmanTest samples once for
  // `start`, then before each task, so elapsed is exactly 100ms * (tasks
  // run + 1) — THRESHOLD = 250ms admits precisely two tasks, every run.
  for (int run = 0; run < 3; ++run) {
    VirtualClock clock(std::chrono::milliseconds(100));
    TaskQueue queue;
    int executed = 0;
    for (int i = 0; i < 10; ++i) {
      queue.Push(Work(TaskKind::kProcessToken, [&executed] {
        ++executed;
        return Status::OK();
      }));
    }
    ExecutorStats stats;
    auto result =
        TmanTest(&queue, std::chrono::milliseconds(250), &stats, &clock);
    EXPECT_EQ(result, TmanTestResult::kTasksRemaining);
    EXPECT_EQ(executed, 2);  // deterministic, not wall-clock-dependent
    EXPECT_EQ(stats.tasks_executed, 2u);
    EXPECT_EQ(queue.size(), 8u);
    EXPECT_EQ(queue.in_flight(), 0u);  // nothing abandoned mid-task
  }
}

// --- WAL group commit under every interleaving -------------------------

// 1000-seed sweep of concurrent append/commit schedules against the WAL.
// Three submitter actors run a two-step state machine (append one batch,
// then group-commit it); the scheduler interleaves the steps, so commits
// routinely cover other actors' freshly appended batches — the group in
// group commit. Invariants, per seed:
//   * a returned (acked) Commit implies durable_lsn >= the batch's LSN —
//     the ack is never early;
//   * after a crash (instance dropped, reopen from disk) every acked
//     batch replays exactly once, with its payload intact;
//   * the replayed log is in strictly increasing LSN order and preserves
//     each actor's submission order (ack order respects log order);
// and across the sweep, piggybacked commits actually happened (some
// schedules must batch several commits into one sync round).
TEST(DeterministicScheduleTest, GroupCommitSweepEveryAckedBatchDurable) {
  constexpr int kActors = 3;
  constexpr int kBatches = 4;
  constexpr uint64_t kSeeds = 1000;
  uint64_t total_piggybacked = 0;
  uint64_t total_sync_rounds = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    DiskManager disk;
    auto header = Wal::Create(&disk);
    ASSERT_TRUE(header.ok());
    auto opened = Wal::Open(&disk, *header);
    ASSERT_TRUE(opened.ok());
    Wal* wal = opened->get();

    struct Submitter {
      int id = 0;
      int batch = 0;
      bool appended = false;
      Lsn pending = 0;
      std::string payload;
    };
    std::vector<Submitter> subs(kActors);
    std::map<Lsn, std::string> acked;  // lsn -> payload at ack time
    DeterministicScheduler sched(seed);
    for (int i = 0; i < kActors; ++i) {
      subs[i].id = i;
      Submitter* s = &subs[i];
      sched.AddActor("sub" + std::to_string(i), [&, s] {
        if (!s->appended) {
          s->payload = "a" + std::to_string(s->id) + "-b" +
                       std::to_string(s->batch) + "-s" +
                       std::to_string(seed);
          auto lsn = wal->Append(WalRecordType::kBatch, s->payload);
          EXPECT_TRUE(lsn.ok()) << "seed " << seed;
          if (!lsn.ok()) return false;
          s->pending = *lsn;
          s->appended = true;
          return true;
        }
        Status st = wal->Commit(s->pending);
        EXPECT_TRUE(st.ok()) << "seed " << seed;
        // The ack contract: returning from Commit means durable, and
        // durability is prefix-closed over the log order.
        EXPECT_GE(wal->durable_lsn(), s->pending) << "seed " << seed;
        acked[s->pending] = s->payload;
        s->appended = false;
        return ++s->batch < kBatches;
      });
    }
    sched.Run();
    WalStats stats = wal->stats();
    total_piggybacked += stats.piggybacked;
    total_sync_rounds += stats.sync_rounds;

    // Crash: drop the instance (volatile tail dies), reopen from disk.
    opened->reset();
    auto reopened = Wal::Open(&disk, *header);
    ASSERT_TRUE(reopened.ok()) << "seed " << seed;
    std::vector<std::pair<Lsn, std::string>> replayed;
    ASSERT_TRUE((*reopened)
                    ->Replay([&](WalRecordType, std::string_view p, Lsn e) {
                      replayed.emplace_back(e, std::string(p));
                      return Status::OK();
                    })
                    .ok())
        << "seed " << seed;

    // Strictly increasing LSN order; per-actor submission order intact.
    std::map<Lsn, std::string> replayed_by_lsn;
    std::vector<int> next_batch(kActors, 0);
    Lsn prev = 0;
    for (const auto& [lsn, payload] : replayed) {
      ASSERT_GT(lsn, prev) << "seed " << seed << ": log order violated";
      prev = lsn;
      ASSERT_TRUE(replayed_by_lsn.emplace(lsn, payload).second)
          << "seed " << seed << ": duplicate LSN " << lsn;
      int actor = payload[1] - '0';
      int batch = payload[4] - '0';
      ASSERT_EQ(batch, next_batch[actor])
          << "seed " << seed << ": actor " << actor
          << " batches replayed out of submission order";
      next_batch[actor] = batch + 1;
    }
    for (const auto& [lsn, payload] : acked) {
      auto it = replayed_by_lsn.find(lsn);
      ASSERT_TRUE(it != replayed_by_lsn.end())
          << "seed " << seed << ": acked batch at lsn " << lsn << " lost";
      EXPECT_EQ(it->second, payload) << "seed " << seed;
    }
  }
  // Group commit earned its name somewhere in 1000 schedules: without
  // piggybacking every commit would pay its own sync round.
  EXPECT_GT(total_piggybacked, 0u);
  EXPECT_LT(total_sync_rounds,
            kSeeds * static_cast<uint64_t>(kActors) * kBatches);
}

TEST(DeterministicScheduleTest, FrozenVirtualClockDrainsWholeQueue) {
  // With no auto-advance the THRESHOLD never expires: TmanTest must run
  // to queue-empty regardless of how long tasks "take".
  VirtualClock clock;
  TaskQueue queue;
  int executed = 0;
  for (int i = 0; i < 50; ++i) {
    queue.Push(Work(TaskKind::kProcessToken, [&executed, &clock] {
      ++executed;
      clock.Advance(std::chrono::hours(1));  // task-internal time is free
      return Status::OK();
    }));
  }
  ExecutorStats stats;
  VirtualClock frozen;
  auto result =
      TmanTest(&queue, std::chrono::milliseconds(250), &stats, &frozen);
  EXPECT_EQ(result, TmanTestResult::kTaskQueueEmpty);
  EXPECT_EQ(executed, 50);
}

}  // namespace
}  // namespace tman
