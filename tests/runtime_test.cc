#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/driver.h"
#include "runtime/task_queue.h"

namespace tman {
namespace {

Task Work(TaskKind kind, std::function<Status()> fn) {
  Task t;
  t.kind = kind;
  t.work = std::move(fn);
  return t;
}

TEST(TaskQueueTest, PushPopFifo) {
  TaskQueue q;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    q.Push(Work(TaskKind::kProcessToken, [&order, i] {
      order.push_back(i);
      return Status::OK();
    }));
  }
  EXPECT_EQ(q.size(), 3u);
  Task t;
  while (q.TryPop(&t)) {
    ASSERT_TRUE(t.work().ok());
    q.MarkDone();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(TaskQueueTest, StatsPerKind) {
  TaskQueue q;
  q.Push(Work(TaskKind::kProcessToken, [] { return Status::OK(); }));
  q.Push(Work(TaskKind::kRunAction, [] { return Status::OK(); }));
  q.Push(Work(TaskKind::kRunAction, [] { return Status::OK(); }));
  auto st = q.stats();
  EXPECT_EQ(st.pushed, 3u);
  EXPECT_EQ(st.per_kind[TaskKindIndex(TaskKind::kProcessToken)], 1u);
  EXPECT_EQ(st.per_kind[TaskKindIndex(TaskKind::kRunAction)], 2u);
}

TEST(TaskQueueTest, TaskKindIndexCoversEveryKind) {
  // TaskKind values start at 1; the 0-based remap must place all four
  // kinds inside per_kind[kNumTaskKinds] with no dead slot 0.
  EXPECT_EQ(TaskKindIndex(TaskKind::kProcessToken), 0);
  EXPECT_EQ(TaskKindIndex(TaskKind::kRunAction), 1);
  EXPECT_EQ(TaskKindIndex(TaskKind::kProcessTokenPartition), 2);
  EXPECT_EQ(TaskKindIndex(TaskKind::kRunActionSet), 3);
  EXPECT_LT(TaskKindIndex(TaskKind::kRunActionSet), kNumTaskKinds);
}

TEST(TaskQueueTest, PushBatchAmortizesAndPreservesAll) {
  TaskQueue q;
  std::atomic<int> done{0};
  std::vector<Task> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(Work(TaskKind::kProcessToken, [&done] {
      ++done;
      return Status::OK();
    }));
  }
  q.PushBatch(std::move(batch));
  EXPECT_EQ(q.size(), 64u);
  EXPECT_EQ(q.stats().pushed, 64u);
  Task t;
  while (q.TryPop(&t)) {
    ASSERT_TRUE(t.work().ok());
    q.MarkDone();
  }
  EXPECT_EQ(done.load(), 64);
  EXPECT_TRUE(q.empty());
}

TEST(TaskQueueTest, PushBatchEmptyIsNoOp) {
  TaskQueue q;
  q.PushBatch({});
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().pushed, 0u);
}

TEST(TaskQueueTest, PushBatchWakesWaiters) {
  TaskQueue q;
  std::atomic<int> got{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      Task t;
      if (q.WaitPop(&t, std::chrono::seconds(5))) {
        ++got;
        q.MarkDone();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<Task> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(Work(TaskKind::kProcessToken, [] { return Status::OK(); }));
  }
  q.PushBatch(std::move(batch));
  for (auto& w : waiters) w.join();
  EXPECT_EQ(got.load(), 3);
}

TEST(TaskQueueTest, StealCrossesShards) {
  TaskQueue q(4);
  ASSERT_EQ(q.num_shards(), 4u);
  // Fill one specific shard, then pop with a home on a different shard:
  // every pop must be served by stealing.
  for (int i = 0; i < 8; ++i) {
    q.PushToShard(2, Work(TaskKind::kProcessToken, [] { return Status::OK(); }));
  }
  Task t;
  int popped = 0;
  while (q.TryPopFromShard(/*home=*/0, &t)) {
    ++popped;
    q.MarkDone();
  }
  EXPECT_EQ(popped, 8);
  EXPECT_EQ(q.stats().steals, 8u);
  auto shards = q.shard_stats();
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[2].pushed, 8u);
  EXPECT_EQ(shards[2].steals, 8u);
}

TEST(TaskQueueTest, HomeShardPopIsNotASteal) {
  TaskQueue q(4);
  q.PushToShard(1, Work(TaskKind::kProcessToken, [] { return Status::OK(); }));
  Task t;
  ASSERT_TRUE(q.TryPopFromShard(1, &t));
  q.MarkDone();
  EXPECT_EQ(q.stats().steals, 0u);
}

TEST(TaskQueueTest, MaxSizeIsGlobalHighWater) {
  // The ipc credit window depends on max_size covering ALL shards, not
  // the deepest single shard.
  TaskQueue q(4);
  for (uint32_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 3; ++i) {
      q.PushToShard(s, Work(TaskKind::kProcessToken, [] { return Status::OK(); }));
    }
  }
  EXPECT_EQ(q.stats().max_size, 12u);
}

TEST(TaskQueueTest, ManyThreadsPushPopAllTasksSurvive) {
  TaskQueue q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &done] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(Work(TaskKind::kProcessToken, [&done] {
          ++done;
          return Status::OK();
        }));
      }
    });
  }
  std::vector<std::thread> consumers;
  std::atomic<bool> stop{false};
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&q, &stop] {
      Task t;
      while (!stop.load(std::memory_order_relaxed)) {
        if (q.WaitPop(&t, std::chrono::milliseconds(10))) {
          (void)t.work();
          q.MarkDone();
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  q.WaitIdle();
  stop = true;
  for (auto& c : consumers) c.join();
  EXPECT_EQ(done.load(), kProducers * kPerProducer);
  auto st = q.stats();
  EXPECT_EQ(st.pushed, static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(st.popped, st.pushed);
}

TEST(TaskQueueTest, WaitPopTimesOutWhenEmpty) {
  TaskQueue q;
  Task t;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.WaitPop(&t, std::chrono::milliseconds(30)));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(TaskQueueTest, WaitPopWakesOnPush) {
  TaskQueue q;
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    Task t;
    if (q.WaitPop(&t, std::chrono::seconds(5))) {
      got = true;
      q.MarkDone();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Push(Work(TaskKind::kProcessToken, [] { return Status::OK(); }));
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(TaskQueueTest, WaitIdleSeesInFlightTasks) {
  TaskQueue q;
  q.Push(Work(TaskKind::kProcessToken, [] { return Status::OK(); }));
  Task t;
  ASSERT_TRUE(q.TryPop(&t));
  EXPECT_EQ(q.in_flight(), 1u);
  std::atomic<bool> idle{false};
  std::thread waiter([&] {
    q.WaitIdle();
    idle = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(idle.load());  // still in flight
  q.MarkDone();
  waiter.join();
  EXPECT_TRUE(idle.load());
}

TEST(DriverTest, ComputeNumDriversFormula) {
  DriverConfig cfg;
  cfg.num_cpus = 8;
  cfg.concurrency_level = 1.0;
  EXPECT_EQ(ComputeNumDrivers(cfg), 8u);  // N = ceil(8 * 1.0)
  cfg.concurrency_level = 0.5;
  EXPECT_EQ(ComputeNumDrivers(cfg), 4u);
  cfg.concurrency_level = 0.3;
  EXPECT_EQ(ComputeNumDrivers(cfg), 3u);  // ceil(2.4)
  cfg.num_drivers = 2;  // explicit override
  EXPECT_EQ(ComputeNumDrivers(cfg), 2u);
}

TEST(DriverTest, TmanTestDrainsUntilEmpty) {
  TaskQueue q;
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    q.Push(Work(TaskKind::kProcessToken, [&done] {
      ++done;
      return Status::OK();
    }));
  }
  ExecutorStats stats;
  auto result = TmanTest(&q, std::chrono::milliseconds(250), &stats);
  EXPECT_EQ(result, TmanTestResult::kTaskQueueEmpty);
  EXPECT_EQ(done.load(), 10);
  EXPECT_EQ(stats.tasks_executed, 10u);
}

TEST(DriverTest, TmanTestRespectsThreshold) {
  TaskQueue q;
  for (int i = 0; i < 100; ++i) {
    q.Push(Work(TaskKind::kProcessToken, [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return Status::OK();
    }));
  }
  ExecutorStats stats;
  auto result = TmanTest(&q, std::chrono::milliseconds(20), &stats);
  // THRESHOLD cuts execution short; work remains.
  EXPECT_EQ(result, TmanTestResult::kTasksRemaining);
  EXPECT_LT(stats.tasks_executed, 100u);
  EXPECT_GT(stats.tasks_executed, 0u);
}

TEST(DriverTest, TaskErrorsCountedNotFatal) {
  TaskQueue q;
  q.Push(Work(TaskKind::kRunAction,
              [] { return Status::Internal("boom"); }));
  q.Push(Work(TaskKind::kRunAction, [] { return Status::OK(); }));
  ExecutorStats stats;
  TmanTest(&q, std::chrono::milliseconds(250), &stats);
  EXPECT_EQ(stats.tasks_executed, 2u);
  EXPECT_EQ(stats.task_errors, 1u);
}

TEST(DriverPoolTest, ExecutesAllTasksAcrossDrivers) {
  TaskQueue q;
  DriverConfig cfg;
  cfg.num_drivers = 3;
  cfg.period = std::chrono::milliseconds(10);
  DriverPool pool(&q, cfg);
  EXPECT_EQ(pool.num_drivers(), 3u);
  pool.Start();
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) {
    q.Push(Work(TaskKind::kProcessToken, [&done] {
      ++done;
      return Status::OK();
    }));
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 500);
  pool.Stop();
  EXPECT_GE(pool.stats().tasks_executed, 500u);
}

TEST(DriverPoolTest, TasksPushedWhileRunningGetPickedUp) {
  TaskQueue q;
  DriverConfig cfg;
  cfg.num_drivers = 2;
  cfg.period = std::chrono::milliseconds(5);
  DriverPool pool(&q, cfg);
  pool.Start();
  std::atomic<int> done{0};
  // Tasks that spawn more tasks (like token tasks spawning action tasks).
  for (int i = 0; i < 50; ++i) {
    q.Push(Work(TaskKind::kProcessToken, [&q, &done] {
      q.Push(Work(TaskKind::kRunAction, [&done] {
        ++done;
        return Status::OK();
      }));
      return Status::OK();
    }));
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 50);
  pool.Stop();
}

TEST(DriverPoolTest, StopIsIdempotentAndRestartable) {
  TaskQueue q;
  DriverConfig cfg;
  cfg.num_drivers = 1;
  DriverPool pool(&q, cfg);
  pool.Start();
  pool.Start();  // no-op
  pool.Stop();
  pool.Stop();  // no-op
}

}  // namespace
}  // namespace tman
