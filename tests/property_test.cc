// Property-based tests: randomized workloads checked against reference
// models and semantic invariants.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "expr/cnf.h"
#include "expr/eval.h"
#include "expr/rewrite.h"
#include "expr/signature.h"
#include "network/atreat.h"
#include "network/gator.h"
#include "parser/parser.h"
#include "predindex/predicate_index.h"
#include "util/random.h"

namespace tman {
namespace {

Schema TestSchema() {
  return Schema({{"a", DataType::kInt},
                 {"b", DataType::kInt},
                 {"s", DataType::kVarchar}});
}

Tuple RandomTuple(Random* rng) {
  return Tuple({Value::Int(rng->UniformRange(-20, 20)),
                Value::Int(rng->UniformRange(0, 100)),
                Value::String("k" + std::to_string(rng->Uniform(10)))});
}

ExprPtr MustParseLocal(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << text;
  return *r;
}

/// A random boolean expression over one tuple variable "t".
ExprPtr RandomPredicate(Random* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.45)) {
    // Leaf comparison.
    switch (rng->Uniform(5)) {
      case 0:
        return MustParseLocal("t.a = " +
                              std::to_string(rng->UniformRange(-20, 20)));
      case 1:
        return MustParseLocal("t.b > " +
                              std::to_string(rng->UniformRange(0, 100)));
      case 2:
        return MustParseLocal("t.b <= " +
                              std::to_string(rng->UniformRange(0, 100)));
      case 3:
        return MustParseLocal("t.s = 'k" + std::to_string(rng->Uniform(10)) +
                              "'");
      default:
        return MustParseLocal("t.a + t.b > " +
                              std::to_string(rng->UniformRange(-10, 110)));
    }
  }
  switch (rng->Uniform(3)) {
    case 0:
      return MakeBinary(BinOp::kAnd, RandomPredicate(rng, depth - 1),
                        RandomPredicate(rng, depth - 1));
    case 1:
      return MakeBinary(BinOp::kOr, RandomPredicate(rng, depth - 1),
                        RandomPredicate(rng, depth - 1));
    default:
      return MakeUnary(UnOp::kNot, RandomPredicate(rng, depth - 1));
  }
}

bool EvalOn(const ExprPtr& e, const Schema& schema, const Tuple& t) {
  Bindings b;
  b.Bind("t", &schema, &t);
  auto r = EvalPredicate(e, b);
  EXPECT_TRUE(r.ok()) << ExprToString(e) << ": " << r.status().ToString();
  return r.ok() && *r;
}

// --- CNF preserves semantics ------------------------------------------------

TEST(CnfPropertyTest, CnfEquivalentToOriginal) {
  Random rng(1234);
  Schema schema = TestSchema();
  for (int round = 0; round < 300; ++round) {
    ExprPtr e = RandomPredicate(&rng, 3);
    auto cnf = ToCnf(e);
    if (!cnf.ok()) continue;  // blown size bound — allowed
    for (int probe = 0; probe < 10; ++probe) {
      Tuple t = RandomTuple(&rng);
      bool original = EvalOn(e, schema, t);
      bool conjunction = true;
      for (const ExprPtr& c : *cnf) {
        if (!EvalOn(c, schema, t)) {
          conjunction = false;
          break;
        }
      }
      ASSERT_EQ(original, conjunction)
          << "expr: " << ExprToString(e) << " tuple: " << t.ToString();
    }
  }
}

// --- signature generalization round trips -----------------------------------

TEST(SignaturePropertyTest, BindPlaceholdersRestoresPredicate) {
  Random rng(99);
  Schema schema = TestSchema();
  for (int round = 0; round < 300; ++round) {
    ExprPtr e = RandomPredicate(&rng, 2);
    auto gen = GeneralizePredicate(1, OpCode::kInsert, e);
    ASSERT_TRUE(gen.ok());
    auto restored =
        BindPlaceholders(gen->signature.generalized, gen->constants);
    ASSERT_TRUE(restored.ok());
    // The restored predicate must evaluate identically to the original on
    // arbitrary tuples (canonicalization may flip comparisons, but never
    // semantics).
    for (int probe = 0; probe < 10; ++probe) {
      Tuple t = RandomTuple(&rng);
      ASSERT_EQ(EvalOn(e, schema, t), EvalOn(*restored, schema, t))
          << "expr: " << ExprToString(e)
          << " restored: " << ExprToString(*restored);
    }
  }
}

TEST(SignaturePropertyTest, SplitPartsConjoinToWhole) {
  // For every generalized predicate: (eq conjuncts AND range AND rest)
  // == whole. We verify by binding constants and evaluating.
  Random rng(7);
  Schema schema = TestSchema();
  for (int round = 0; round < 300; ++round) {
    ExprPtr e = RandomPredicate(&rng, 2);
    auto gen = GeneralizePredicate(1, OpCode::kInsert, e);
    ASSERT_TRUE(gen.ok());
    IndexableSplit split = SplitIndexable(gen->signature.generalized);
    // Reassemble: indexable eq conjuncts + range bounds + rest.
    std::vector<ExprPtr> parts;
    for (const EqConjunct& c : split.eq) {
      parts.push_back(MakeBinary(BinOp::kEq, MakeColumnRef("t", c.attribute),
                                 MakePlaceholder(c.placeholder)));
    }
    if (split.has_range) {
      const RangeSpec& r = split.range;
      if (r.has_lo) {
        parts.push_back(MakeBinary(
            r.lo_inclusive ? BinOp::kGe : BinOp::kGt,
            MakeColumnRef("t", r.attribute),
            MakePlaceholder(r.lo_placeholder)));
      }
      if (r.has_hi) {
        parts.push_back(MakeBinary(
            r.hi_inclusive ? BinOp::kLe : BinOp::kLt,
            MakeColumnRef("t", r.attribute),
            MakePlaceholder(r.hi_placeholder)));
      }
    }
    if (split.rest != nullptr) parts.push_back(split.rest);
    ExprPtr reassembled = AndAll(parts);
    auto bound_whole =
        BindPlaceholders(gen->signature.generalized, gen->constants);
    auto bound_parts = BindPlaceholders(reassembled, gen->constants);
    ASSERT_TRUE(bound_whole.ok() && bound_parts.ok());
    for (int probe = 0; probe < 10; ++probe) {
      Tuple t = RandomTuple(&rng);
      ASSERT_EQ(EvalOn(*bound_whole, schema, t),
                EvalOn(*bound_parts, schema, t))
          << ExprToString(*bound_whole) << " vs "
          << ExprToString(*bound_parts);
    }
  }
}

// --- all four organizations agree -------------------------------------------

class OrganizationEquivalenceTest : public ::testing::TestWithParam<OrgType> {
};

TEST_P(OrganizationEquivalenceTest, MatchesAgreeWithDirectEvaluation) {
  OrgType org = GetParam();
  Random rng(static_cast<uint64_t>(org) * 7919 + 5);
  Database db;
  OrgPolicy policy;
  policy.forced = true;
  policy.forced_type = org;
  PredicateIndex index(&db, policy);
  Schema schema = TestSchema();
  ASSERT_TRUE(index.RegisterDataSource(1, schema).ok());

  // Install random predicates, remembering their concrete forms.
  struct Installed {
    TriggerId id;
    ExprPtr predicate;
  };
  std::vector<Installed> installed;
  for (int i = 0; i < 60; ++i) {
    ExprPtr e = RandomPredicate(&rng, 2);
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    spec.predicate = e;
    spec.trigger_id = static_cast<TriggerId>(i + 1);
    auto added = index.AddPredicate(spec);
    ASSERT_TRUE(added.ok()) << added.status().ToString() << " for "
                            << ExprToString(e);
    installed.push_back({spec.trigger_id, e});
  }

  // Probe with random tokens: the index must emit exactly the triggers
  // whose predicate evaluates true.
  for (int probe = 0; probe < 200; ++probe) {
    Tuple t = RandomTuple(&rng);
    std::set<TriggerId> expected;
    for (const Installed& inst : installed) {
      Bindings b;
      b.Bind("t", &schema, &t);
      auto pass = EvalPredicate(inst.predicate, b);
      ASSERT_TRUE(pass.ok());
      if (*pass) expected.insert(inst.id);
    }
    std::vector<PredicateMatch> out;
    ASSERT_TRUE(index.Match(UpdateDescriptor::Insert(1, t), &out).ok());
    std::set<TriggerId> got;
    for (const auto& m : out) got.insert(m.trigger_id);
    ASSERT_EQ(got, expected) << "tuple " << t.ToString() << " org "
                             << OrgTypeName(org);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrganizations, OrganizationEquivalenceTest,
                         ::testing::Values(OrgType::kMemoryList,
                                           OrgType::kMemoryIndex,
                                           OrgType::kDbTable,
                                           OrgType::kDbIndexedTable),
                         [](const auto& info) {
                           return std::string(OrgTypeName(info.param))
                                      .find("memory") != std::string::npos
                                      ? (info.param == OrgType::kMemoryList
                                             ? "MemoryList"
                                             : "MemoryIndex")
                                      : (info.param == OrgType::kDbTable
                                             ? "DbTable"
                                             : "DbIndexedTable");
                         });

// --- partitioned matching is a partition ------------------------------------

class PartitionCoverageTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionCoverageTest, PartitionsAreDisjointAndComplete) {
  uint32_t parts = GetParam();
  Random rng(55);
  PredicateIndex index(nullptr, OrgPolicy());
  Schema schema = TestSchema();
  ASSERT_TRUE(index.RegisterDataSource(1, schema).ok());
  for (int i = 0; i < 100; ++i) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    spec.predicate = RandomPredicate(&rng, 2);
    spec.trigger_id = static_cast<TriggerId>(i + 1);
    ASSERT_TRUE(index.AddPredicate(spec).ok());
  }
  for (int probe = 0; probe < 50; ++probe) {
    Tuple t = RandomTuple(&rng);
    UpdateDescriptor token = UpdateDescriptor::Insert(1, t);
    std::multiset<TriggerId> unpartitioned;
    ASSERT_TRUE(index
                    .MatchPartitioned(token, 0, 1,
                                      [&](const PredicateMatch& m) {
                                        unpartitioned.insert(m.trigger_id);
                                      })
                    .ok());
    std::multiset<TriggerId> combined;
    for (uint32_t p = 0; p < parts; ++p) {
      ASSERT_TRUE(index
                      .MatchPartitioned(token, p, parts,
                                        [&](const PredicateMatch& m) {
                                          combined.insert(m.trigger_id);
                                        })
                      .ok());
    }
    ASSERT_EQ(combined, unpartitioned);
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionCoverageTest,
                         ::testing::Values(2u, 3u, 7u, 16u));

// --- discrimination networks vs naive evaluation ----------------------------

/// Reference model for join firing semantics: plain live-tuple lists per
/// variable and, on arrival, brute-force enumeration of every combination
/// (arriving tuple fixed at its variable) evaluated against the *whole*
/// un-normalized condition. No networks, no CNF, no memo structures — if
/// GATOR and A-TREAT disagree with this, they are wrong.
class NaiveJoinReference {
 public:
  NaiveJoinReference(ExprPtr condition, std::vector<std::string> var_names,
                     std::vector<Schema> schemas)
      : condition_(std::move(condition)),
        var_names_(std::move(var_names)),
        schemas_(std::move(schemas)),
        live_(var_names_.size()) {}

  /// Firings caused by `t` arriving at `var`, as serialized bindings.
  std::multiset<std::string> Add(size_t var, const Tuple& t) {
    std::multiset<std::string> firings;
    std::vector<const Tuple*> combo(live_.size(), nullptr);
    combo[var] = &t;
    Enumerate(0, var, &combo, &firings);
    live_[var].push_back(t);
    return firings;
  }

  void Remove(size_t var, const Tuple& t) {
    std::string key = Encode({t});
    auto& list = live_[var];
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (Encode({*it}) == key) {
        list.erase(it);
        return;
      }
    }
    ADD_FAILURE() << "reference asked to remove unknown tuple";
  }

  const std::vector<Tuple>& live(size_t var) const { return live_[var]; }

  static std::string Encode(const std::vector<Tuple>& bindings) {
    std::string out;
    for (const Tuple& t : bindings) t.Serialize(&out);
    return out;
  }

 private:
  void Enumerate(size_t var, size_t fixed, std::vector<const Tuple*>* combo,
                 std::multiset<std::string>* firings) {
    if (var == live_.size()) {
      Bindings b;
      for (size_t v = 0; v < live_.size(); ++v) {
        b.Bind(var_names_[v], &schemas_[v], (*combo)[v]);
      }
      auto pass = EvalPredicate(condition_, b);
      ASSERT_TRUE(pass.ok()) << pass.status().ToString();
      if (*pass) {
        std::vector<Tuple> bound;
        for (const Tuple* t : *combo) bound.push_back(*t);
        firings->insert(Encode(bound));
      }
      return;
    }
    if (var == fixed) {
      Enumerate(var + 1, fixed, combo, firings);
      return;
    }
    for (const Tuple& t : live_[var]) {
      (*combo)[var] = &t;
      Enumerate(var + 1, fixed, combo, firings);
    }
    (*combo)[var] = nullptr;
  }

  ExprPtr condition_;
  std::vector<std::string> var_names_;
  std::vector<Schema> schemas_;
  std::vector<std::vector<Tuple>> live_;
};

TEST(NetworkPropertyTest, GatorAndATreatMatchNaiveReference) {
  // Random trigger sets (join conditions over 2-3 tuple variables) and
  // random token streams: both network types must fire exactly the
  // bindings the naive evaluator derives, at every step. Conditions stay
  // free of single-variable conjuncts — selection predicates belong to
  // the predicate index, not the join networks (§5.1).
  const std::vector<std::string> kNames = {"r", "s", "u"};
  const std::vector<Schema> kSchemas = {
      Schema({{"a", DataType::kInt}, {"b", DataType::kInt},
              {"k", DataType::kInt}}),
      Schema({{"a", DataType::kInt}, {"c", DataType::kInt},
              {"k", DataType::kInt}}),
      Schema({{"a", DataType::kInt}, {"d", DataType::kInt},
              {"k", DataType::kInt}}),
  };
  const std::vector<std::string> kTwoVarExtras = {
      "r.b > s.c", "r.b + s.c < 40", "not (r.b = s.c)"};
  const std::vector<std::string> kThreeVarExtras = {
      "r.b > s.c", "s.c <= u.d", "r.b + u.d > 20", "not (s.c = u.d)"};

  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Random rng(seed * 6151 + 3);
    size_t num_vars = rng.Bernoulli(0.5) ? 2 : 3;

    // Random trigger: equijoin chain on `a` plus random extra conjuncts.
    std::string cond_text = "r.a = s.a";
    if (num_vars == 3) cond_text += " and s.a = u.a";
    const auto& extras = num_vars == 2 ? kTwoVarExtras : kThreeVarExtras;
    for (const std::string& extra : extras) {
      if (rng.Bernoulli(0.4)) cond_text += " and " + extra;
    }
    ExprPtr condition = MustParseLocal(cond_text);
    SCOPED_TRACE("condition: " + cond_text + "; reproducing seed: " +
                 std::to_string(seed));

    std::vector<TupleVarInfo> vars;
    std::vector<Schema> schemas;
    std::vector<std::string> names;
    for (size_t v = 0; v < num_vars; ++v) {
      vars.push_back({kNames[v], "tbl_" + kNames[v],
                      static_cast<DataSourceId>(21 + v),
                      OpCode::kInsertOrUpdate});
      schemas.push_back(kSchemas[v]);
      names.push_back(kNames[v]);
    }
    auto cnf = ToCnf(condition);
    ASSERT_TRUE(cnf.ok());
    auto graph = ConditionGraph::Build(vars, *cnf);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    auto gator = GatorNetwork::Build(*graph, schemas);
    ASSERT_TRUE(gator.ok()) << gator.status().ToString();
    ATreatOptions opts;
    opts.prefer_virtual = false;  // stored memories: stream-style sources
    auto atreat = ATreatNetwork::Build(*graph, nullptr, opts, schemas);
    ASSERT_TRUE(atreat.ok()) << atreat.status().ToString();

    NaiveJoinReference reference(condition, names, schemas);
    int serial = 0;  // unique per tuple: removal is unambiguous
    for (int step = 0; step < 120; ++step) {
      size_t var = rng.Uniform(num_vars);
      bool add = reference.live(var).empty() || rng.Bernoulli(0.65);
      if (add) {
        Tuple t({Value::Int(rng.UniformRange(0, 5)),
                 Value::Int(rng.UniformRange(0, 30)), Value::Int(serial++)});
        std::multiset<std::string> expected = reference.Add(var, t);
        if (::testing::Test::HasFatalFailure()) return;

        std::multiset<std::string> gator_firings;
        ASSERT_TRUE((*gator)
                        ->AddTuple(static_cast<NetworkNodeId>(var), t,
                                   [&](const std::vector<Tuple>& b) {
                                     gator_firings.insert(
                                         NaiveJoinReference::Encode(b));
                                   })
                        .ok());
        ASSERT_EQ(gator_firings, expected) << "GATOR diverged at step "
                                           << step;

        std::multiset<std::string> atreat_firings;
        ASSERT_TRUE(
            (*atreat)->AddTuple(static_cast<NetworkNodeId>(var), t).ok());
        ASSERT_TRUE((*atreat)
                        ->MatchJoins(static_cast<NetworkNodeId>(var), t,
                                     [&](const std::vector<Tuple>& b) {
                                       atreat_firings.insert(
                                           NaiveJoinReference::Encode(b));
                                     })
                        .ok());
        ASSERT_EQ(atreat_firings, expected) << "A-TREAT diverged at step "
                                            << step;
      } else {
        size_t pick = rng.Uniform(reference.live(var).size());
        Tuple t = reference.live(var)[pick];
        reference.Remove(var, t);
        ASSERT_TRUE(
            (*gator)->RemoveTuple(static_cast<NetworkNodeId>(var), t).ok());
        ASSERT_TRUE(
            (*atreat)->RemoveTuple(static_cast<NetworkNodeId>(var), t).ok());
      }
    }
    // Alpha memories track the reference's live lists exactly.
    for (size_t v = 0; v < num_vars; ++v) {
      EXPECT_EQ((*gator)->alpha_size(static_cast<NetworkNodeId>(v)),
                reference.live(v).size());
    }
  }
}

// --- parser/printer round trip ----------------------------------------------

TEST(ParserPropertyTest, ToStringReparsesEquivalently) {
  Random rng(2718);
  Schema schema = TestSchema();
  for (int round = 0; round < 300; ++round) {
    ExprPtr e = RandomPredicate(&rng, 3);
    std::string text = ExprToString(e);
    auto reparsed = ParseExpressionString(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    ASSERT_TRUE(ExprEquals(e, *reparsed))
        << text << " vs " << ExprToString(*reparsed);
  }
}

}  // namespace
}  // namespace tman
