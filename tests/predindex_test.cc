#include <gtest/gtest.h>

#include <set>

#include "parser/parser.h"
#include "predindex/cost_model.h"
#include "predindex/predicate_index.h"

namespace tman {
namespace {

Schema EmpSchema() {
  return Schema({{"name", DataType::kVarchar},
                 {"salary", DataType::kFloat},
                 {"dept", DataType::kInt}});
}

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

UpdateDescriptor EmpInsert(const std::string& name, double salary,
                           int64_t dept, DataSourceId ds = 1) {
  return UpdateDescriptor::Insert(
      ds,
      Tuple({Value::String(name), Value::Float(salary), Value::Int(dept)}));
}

class PredicateIndexTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(OrgPolicy()); }

  void Reset(OrgPolicy policy) {
    db_ = std::make_unique<Database>();
    index_ = std::make_unique<PredicateIndex>(db_.get(), policy);
    ASSERT_TRUE(index_->RegisterDataSource(1, EmpSchema()).ok());
  }

  AddPredicateInfo Add(const std::string& predicate, TriggerId trigger,
                       OpCode op = OpCode::kInsert,
                       NetworkNodeId node = 0) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = op;
    spec.predicate = predicate.empty() ? nullptr : Parse(predicate);
    spec.trigger_id = trigger;
    spec.next_node = node;
    auto r = index_->AddPredicate(spec);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : AddPredicateInfo{};
  }

  std::set<TriggerId> MatchTriggers(const UpdateDescriptor& token) {
    std::vector<PredicateMatch> out;
    EXPECT_TRUE(index_->Match(token, &out).ok());
    std::set<TriggerId> ids;
    for (const auto& m : out) ids.insert(m.trigger_id);
    return ids;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<PredicateIndex> index_;
};

TEST_F(PredicateIndexTest, EqualityMatching) {
  Add("emp.dept = 3", 100);
  Add("emp.dept = 4", 200);
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 1, 3)), (std::set<TriggerId>{100}));
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 1, 4)), (std::set<TriggerId>{200}));
  EXPECT_TRUE(MatchTriggers(EmpInsert("x", 1, 5)).empty());
}

TEST_F(PredicateIndexTest, SignatureSharedAcrossTriggers) {
  auto a = Add("emp.dept = 3", 1);
  auto b = Add("emp.dept = 7", 2);
  auto c = Add("emp.dept = 3", 3);
  EXPECT_TRUE(a.new_signature);
  EXPECT_FALSE(b.new_signature);
  EXPECT_FALSE(c.new_signature);
  EXPECT_EQ(a.sig_id, b.sig_id);
  EXPECT_EQ(index_->stats().num_signatures, 1u);
  EXPECT_EQ(index_->stats().num_predicates, 3u);
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 1, 3)),
            (std::set<TriggerId>{1, 3}));
}

TEST_F(PredicateIndexTest, OpCodeFiltering) {
  Add("emp.dept = 1", 10, OpCode::kInsert);
  Add("emp.dept = 1", 20, OpCode::kDelete);
  Add("emp.dept = 1", 30, OpCode::kInsertOrUpdate);

  Tuple t({Value::String("x"), Value::Float(1), Value::Int(1)});
  EXPECT_EQ(MatchTriggers(UpdateDescriptor::Insert(1, t)),
            (std::set<TriggerId>{10, 30}));
  EXPECT_EQ(MatchTriggers(UpdateDescriptor::Delete(1, t)),
            (std::set<TriggerId>{20}));
  EXPECT_EQ(MatchTriggers(UpdateDescriptor::Update(1, t, t)),
            (std::set<TriggerId>{30}));
}

TEST_F(PredicateIndexTest, UpdateColumnFiltering) {
  PredicateSpec spec;
  spec.data_source = 1;
  spec.op = OpCode::kUpdate;
  spec.update_columns = {"salary"};
  spec.predicate = Parse("emp.dept = 1");
  spec.trigger_id = 5;
  ASSERT_TRUE(index_->AddPredicate(spec).ok());

  Tuple before({Value::String("x"), Value::Float(100), Value::Int(1)});
  Tuple salary_changed({Value::String("x"), Value::Float(200), Value::Int(1)});
  Tuple name_changed({Value::String("y"), Value::Float(100), Value::Int(1)});
  EXPECT_EQ(MatchTriggers(UpdateDescriptor::Update(1, before, salary_changed)),
            (std::set<TriggerId>{5}));
  EXPECT_TRUE(
      MatchTriggers(UpdateDescriptor::Update(1, before, name_changed))
          .empty());
}

TEST_F(PredicateIndexTest, RestOfPredicateTested) {
  // dept is indexable; the salary range joins the rest-of-predicate.
  Add("emp.dept = 2 and emp.salary > 50000", 7);
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 60000, 2)),
            (std::set<TriggerId>{7}));
  EXPECT_TRUE(MatchTriggers(EmpInsert("x", 40000, 2)).empty());
  EXPECT_TRUE(MatchTriggers(EmpInsert("x", 60000, 3)).empty());
}

TEST_F(PredicateIndexTest, RangePredicatesViaIntervalIndex) {
  Add("emp.salary > 80000", 1);
  Add("emp.salary > 50000", 2);
  Add("emp.salary >= 90000 and emp.salary <= 100000", 3);
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 95000, 0)),
            (std::set<TriggerId>{1, 2, 3}));
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 60000, 0)),
            (std::set<TriggerId>{2}));
  EXPECT_TRUE(MatchTriggers(EmpInsert("x", 10000, 0)).empty());
}

TEST_F(PredicateIndexTest, UnconditionalPredicateMatchesEverything) {
  Add("", 77);
  EXPECT_EQ(MatchTriggers(EmpInsert("anything", 1, 1)),
            (std::set<TriggerId>{77}));
}

TEST_F(PredicateIndexTest, NonIndexablePredicate) {
  Add("abs(emp.salary - 100) < 10", 9);
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 95, 0)), (std::set<TriggerId>{9}));
  EXPECT_TRUE(MatchTriggers(EmpInsert("x", 300, 0)).empty());
}

TEST_F(PredicateIndexTest, RemovePredicate) {
  auto info = Add("emp.dept = 3", 1);
  Add("emp.dept = 3", 2);
  ASSERT_TRUE(index_->RemovePredicate(info.expr_id).ok());
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 1, 3)), (std::set<TriggerId>{2}));
  EXPECT_FALSE(index_->RemovePredicate(info.expr_id).ok());
}

TEST_F(PredicateIndexTest, UnknownDataSourceIgnoredOnMatch) {
  std::vector<PredicateMatch> out;
  EXPECT_TRUE(index_->Match(EmpInsert("x", 1, 1, /*ds=*/42), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(PredicateIndexTest, AddToUnknownSourceFails) {
  PredicateSpec spec;
  spec.data_source = 42;
  spec.predicate = Parse("x.dept = 1");
  EXPECT_FALSE(index_->AddPredicate(spec).ok());
}

TEST_F(PredicateIndexTest, OrganizationMigratesListToHash) {
  OrgPolicy policy;
  policy.list_max = 4;
  policy.memory_max = 100000;
  Reset(policy);
  AddPredicateInfo last;
  for (int i = 0; i < 10; ++i) {
    last = Add("emp.dept = " + std::to_string(i),
               static_cast<TriggerId>(i + 1));
  }
  EXPECT_EQ(last.org, OrgType::kMemoryIndex);
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 1, 6)), (std::set<TriggerId>{7}));
}

TEST_F(PredicateIndexTest, OrganizationMigratesToDbTable) {
  OrgPolicy policy;
  policy.list_max = 2;
  policy.memory_max = 5;
  Reset(policy);
  AddPredicateInfo last;
  for (int i = 0; i < 12; ++i) {
    last = Add("emp.dept = " + std::to_string(i),
               static_cast<TriggerId>(i + 1));
  }
  EXPECT_EQ(last.org, OrgType::kDbIndexedTable);
  // The constant table exists in MiniDB now.
  EXPECT_TRUE(db_->HasTable("const_table_" + std::to_string(last.sig_id)));
  // Matching goes through the B+-tree on [const_1].
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 1, 9)), (std::set<TriggerId>{10}));
  EXPECT_TRUE(MatchTriggers(EmpInsert("x", 1, 99)).empty());
}

TEST_F(PredicateIndexTest, ForcedDbTableScanWorks) {
  OrgPolicy policy;
  policy.forced = true;
  policy.forced_type = OrgType::kDbTable;
  Reset(policy);
  Add("emp.dept = 5 and emp.salary > 10", 3);
  Add("emp.dept = 6", 4);
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 50, 5)), (std::set<TriggerId>{3}));
  EXPECT_TRUE(MatchTriggers(EmpInsert("x", 5, 5)).empty());
  EXPECT_EQ(MatchTriggers(EmpInsert("x", 5, 6)), (std::set<TriggerId>{4}));
}

TEST_F(PredicateIndexTest, PartitionedMatchCoversExactlyOnce) {
  for (int i = 0; i < 20; ++i) {
    Add("emp.dept = 1", static_cast<TriggerId>(i + 1));
  }
  constexpr uint32_t kParts = 4;
  std::set<TriggerId> seen;
  size_t total = 0;
  for (uint32_t p = 0; p < kParts; ++p) {
    ASSERT_TRUE(index_
                    ->MatchPartitioned(EmpInsert("x", 1, 1), p, kParts,
                                       [&](const PredicateMatch& m) {
                                         seen.insert(m.trigger_id);
                                         ++total;
                                       })
                    .ok());
  }
  EXPECT_EQ(total, 20u);       // no duplicates across partitions
  EXPECT_EQ(seen.size(), 20u);  // full coverage
}

TEST_F(PredicateIndexTest, MaintenanceMatchIgnoresEventFilters) {
  Add("emp.dept = 3", 50, OpCode::kDelete);
  Tuple t({Value::String("x"), Value::Float(1), Value::Int(3)});
  // Fire match for an insert token: no (delete-only signature).
  EXPECT_TRUE(MatchTriggers(UpdateDescriptor::Insert(1, t)).empty());
  // Maintenance match sees it regardless of event.
  std::set<TriggerId> seen;
  ASSERT_TRUE(index_
                  ->MatchMaintenance(1, t, 0, 1,
                                     [&](const PredicateMatch& m) {
                                       seen.insert(m.trigger_id);
                                     })
                  .ok());
  EXPECT_EQ(seen, (std::set<TriggerId>{50}));
}

TEST_F(PredicateIndexTest, CompositeEqualityKey) {
  Add("emp.name = 'bob' and emp.dept = 2", 8);
  EXPECT_EQ(MatchTriggers(EmpInsert("bob", 1, 2)), (std::set<TriggerId>{8}));
  EXPECT_TRUE(MatchTriggers(EmpInsert("bob", 1, 3)).empty());
  EXPECT_TRUE(MatchTriggers(EmpInsert("alice", 1, 2)).empty());
}

TEST_F(PredicateIndexTest, StatsCount) {
  Add("emp.dept = 1", 1);
  Add("emp.salary > 10", 2);
  (void)MatchTriggers(EmpInsert("x", 100, 1));
  auto st = index_->stats();
  EXPECT_EQ(st.num_signatures, 2u);
  EXPECT_EQ(st.num_predicates, 2u);
  EXPECT_EQ(st.tokens_processed, 1u);
  EXPECT_EQ(st.matches_emitted, 2u);
}

TEST(CostModelTest, RegimesOrderedAsThePaperArgues) {
  CostModelParams p;
  // Tiny classes: the list wins (or ties) against everything.
  auto tiny = EstimateMatchCost(4, 1.0, 0.0, p);
  EXPECT_EQ(tiny.best(), OrgType::kMemoryList);
  // Mid-size classes: the main-memory index wins.
  auto mid = EstimateMatchCost(10000, 1.0, 0.0, p);
  EXPECT_EQ(mid.best(), OrgType::kMemoryIndex);
  // The indexed table always beats the table scan at scale.
  auto big = EstimateMatchCost(1000000, 1.0, 0.0, p);
  EXPECT_LT(big.db_indexed_ns, big.db_table_ns);
  // Memory footprint grows linearly: the motivation for disk organizations.
  EXPECT_GT(EstimateMemoryBytes(1000000, p), 9.0e7);
}

TEST(CostModelTest, BufferHitsShrinkDiskCosts) {
  CostModelParams p;
  auto cold = EstimateMatchCost(100000, 1.0, 0.0, p);
  auto warm = EstimateMatchCost(100000, 1.0, 0.99, p);
  EXPECT_LT(warm.db_indexed_ns, cold.db_indexed_ns);
  EXPECT_LT(warm.db_table_ns, cold.db_table_ns);
}

}  // namespace
}  // namespace tman
