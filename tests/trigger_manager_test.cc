#include <gtest/gtest.h>

#include "core/trigger_manager.h"
#include "db/sql.h"

namespace tman {
namespace {

class TriggerManagerTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(TriggerManagerOptions()); }

  void Reset(TriggerManagerOptions options) {
    tman_.reset();
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("emp", Schema({{"name", DataType::kVarchar},
                                                {"salary", DataType::kFloat},
                                                {"dept", DataType::kInt}}))
                    .ok());
    tman_ = std::make_unique<TriggerManager>(db_.get(), options);
    ASSERT_TRUE(tman_->Open().ok());
    ASSERT_TRUE(tman_->DefineLocalTableSource("emp").ok());
  }

  void Exec(const std::string& cmd) {
    auto r = tman_->ExecuteCommand(cmd);
    ASSERT_TRUE(r.ok()) << cmd << " -> " << r.status().ToString();
  }

  void InsertEmp(const std::string& name, double salary, int64_t dept) {
    ASSERT_TRUE(db_->Insert("emp", Tuple({Value::String(name),
                                          Value::Float(salary),
                                          Value::Int(dept)}))
                    .ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerManager> tman_;
};

TEST_F(TriggerManagerTest, EndToEndRaiseEvent) {
  Exec("create trigger bigSalary from emp on insert "
       "when emp.salary > 80000 do raise event BigHire(emp.name)");

  InsertEmp("Bob", 90000, 1);
  InsertEmp("Carl", 20000, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());

  auto events = tman_->events().History();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "BigHire");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].as_string(), "Bob");
  EXPECT_EQ(tman_->stats().rule_firings, 1u);
}

TEST_F(TriggerManagerTest, PaperExampleUpdateFred) {
  InsertEmp("Bob", 50000, 1);
  InsertEmp("Fred", 10000, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());  // drain capture noise

  Exec("create trigger updateFred from emp on update(emp.salary) "
       "when emp.name = 'Bob' "
       "do execSQL 'update emp set salary=:NEW.emp.salary where "
       "emp.name=''Fred'''");

  // Raise Bob's salary; the trigger mirrors it onto Fred.
  auto r = ExecuteSql(db_.get(), "UPDATE emp SET salary = 60000 "
                                 "WHERE name = 'Bob'");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());

  auto fred = ExecuteSql(db_.get(),
                         "SELECT salary FROM emp WHERE name = 'Fred'");
  ASSERT_TRUE(fred.ok());
  ASSERT_EQ(fred->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(fred->rows[0].at(0).as_float(), 60000);
}

TEST_F(TriggerManagerTest, UpdateColumnFilterEndToEnd) {
  Exec("create trigger salaryWatch from emp on update(emp.salary) "
       "do raise event SalaryChanged(emp.name)");
  InsertEmp("Ann", 100, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 0u);  // insert is not update

  // Changing dept only: no firing.
  ASSERT_TRUE(
      ExecuteSql(db_.get(), "UPDATE emp SET dept = 2 WHERE name = 'Ann'")
          .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 0u);

  // Changing salary: fires.
  ASSERT_TRUE(
      ExecuteSql(db_.get(), "UPDATE emp SET salary = 200 WHERE name = 'Ann'")
          .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(TriggerManagerTest, OldMacroInExecSqlAction) {
  ASSERT_TRUE(db_->CreateTable("audit", Schema({{"who", DataType::kVarchar},
                                                {"before", DataType::kFloat},
                                                {"after", DataType::kFloat}}))
                  .ok());
  InsertEmp("Bob", 100, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  Exec("create trigger auditRaise from emp on update(emp.salary) "
       "do execSQL 'insert into audit values (:NEW.emp.name, "
       ":OLD.emp.salary, :NEW.emp.salary)'");
  ASSERT_TRUE(
      ExecuteSql(db_.get(), "UPDATE emp SET salary = 150 WHERE name = 'Bob'")
          .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  auto rows = ExecuteSql(db_.get(), "SELECT * FROM audit");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).as_string(), "Bob");
  EXPECT_DOUBLE_EQ(rows->rows[0].at(1).as_float(), 100);
  EXPECT_DOUBLE_EQ(rows->rows[0].at(2).as_float(), 150);
}

TEST_F(TriggerManagerTest, DeleteEventTrigger) {
  Exec("create trigger onGone from emp on delete from emp "
       "do raise event Gone(emp.name)");
  InsertEmp("Zed", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 0u);
  ASSERT_TRUE(
      ExecuteSql(db_.get(), "DELETE FROM emp WHERE name = 'Zed'").ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  auto events = tman_->events().History();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "Gone");
  EXPECT_EQ(events[0].args[0].as_string(), "Zed");
}

TEST_F(TriggerManagerTest, EnableDisableTrigger) {
  Exec("create trigger t from emp on insert do raise event E(emp.name)");
  Exec("disable trigger t");
  InsertEmp("A", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 0u);
  Exec("enable trigger t");
  InsertEmp("B", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(TriggerManagerTest, TriggerSetsDisableMembers) {
  Exec("create trigger set batch 'batch triggers'");
  Exec("create trigger t1 in batch from emp on insert do raise event E()");
  Exec("create trigger t2 from emp on insert do raise event F()");
  Exec("disable trigger set batch");
  InsertEmp("A", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  auto events = tman_->events().History();
  ASSERT_EQ(events.size(), 1u);  // only t2 (default set) fired
  EXPECT_EQ(events[0].name, "F");
}

TEST_F(TriggerManagerTest, DropTriggerStopsFiring) {
  Exec("create trigger t from emp on insert do raise event E()");
  InsertEmp("A", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
  Exec("drop trigger t");
  InsertEmp("B", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
  EXPECT_EQ(tman_->predicate_index().stats().num_predicates, 0u);
}

TEST_F(TriggerManagerTest, DuplicateTriggerNameRejected) {
  Exec("create trigger t from emp on insert do raise event E()");
  auto r = tman_->ExecuteCommand(
      "create trigger t from emp on insert do raise event E()");
  EXPECT_FALSE(r.ok());
}

TEST_F(TriggerManagerTest, BadTriggerLeavesNoCatalogResidue) {
  auto r = tman_->ExecuteCommand(
      "create trigger bad from emp when emp.bogus = 1 do raise event E()");
  EXPECT_FALSE(r.ok());
  // Name is reusable: the catalog row was rolled back.
  Exec("create trigger bad from emp on insert do raise event E()");
}

TEST_F(TriggerManagerTest, StreamSourceSubmitUpdate) {
  Schema quotes({{"symbol", DataType::kVarchar}, {"price", DataType::kFloat}});
  auto ds = tman_->DefineStreamSource("quotes", quotes);
  ASSERT_TRUE(ds.ok());
  Exec("create trigger alert from quotes "
       "when quotes.symbol = 'ACME' and quotes.price > 100 "
       "do raise event PriceAlert(quotes.price)");

  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Insert(
                      *ds, Tuple({Value::String("ACME"), Value::Float(150)})))
                  .ok());
  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Insert(
                      *ds, Tuple({Value::String("ACME"), Value::Float(50)})))
                  .ok());
  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Insert(
                      *ds, Tuple({Value::String("XYZ"), Value::Float(500)})))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  ASSERT_EQ(tman_->events().num_raised(), 1u);
  EXPECT_DOUBLE_EQ(tman_->events().History()[0].args[0].as_float(), 150);
}

TEST_F(TriggerManagerTest, JoinTriggerIrisHouseAlert) {
  // Build the paper's real-estate schema as local tables.
  ASSERT_TRUE(db_->CreateTable("salesperson",
                               Schema({{"spno", DataType::kInt},
                                       {"name", DataType::kVarchar},
                                       {"phone", DataType::kVarchar}}))
                  .ok());
  ASSERT_TRUE(db_->CreateTable("house", Schema({{"hno", DataType::kInt},
                                                {"address",
                                                 DataType::kVarchar},
                                                {"price", DataType::kFloat},
                                                {"nno", DataType::kInt},
                                                {"spno", DataType::kInt}}))
                  .ok());
  ASSERT_TRUE(db_->CreateTable("represents",
                               Schema({{"spno", DataType::kInt},
                                       {"nno", DataType::kInt}}))
                  .ok());
  ASSERT_TRUE(tman_->DefineLocalTableSource("salesperson").ok());
  ASSERT_TRUE(tman_->DefineLocalTableSource("house").ok());
  ASSERT_TRUE(tman_->DefineLocalTableSource("represents").ok());

  ASSERT_TRUE(db_->Insert("salesperson",
                          Tuple({Value::Int(1), Value::String("Iris"),
                                 Value::String("555")}))
                  .ok());
  ASSERT_TRUE(
      db_->Insert("represents", Tuple({Value::Int(1), Value::Int(10)})).ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());

  Exec("create trigger IrisHouseAlert on insert to house "
       "from salesperson s, house h, represents r "
       "when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno "
       "do raise event NewHouseInIrisNeighborhood(h.hno, h.address)");

  // A house in Iris's neighborhood fires the alert.
  ASSERT_TRUE(db_->Insert("house",
                          Tuple({Value::Int(7), Value::String("12 Oak"),
                                 Value::Float(250000), Value::Int(10),
                                 Value::Int(1)}))
                  .ok());
  // A house elsewhere does not.
  ASSERT_TRUE(db_->Insert("house",
                          Tuple({Value::Int(8), Value::String("9 Elm"),
                                 Value::Float(90000), Value::Int(99),
                                 Value::Int(1)}))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());

  auto events = tman_->events().History();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "NewHouseInIrisNeighborhood");
  EXPECT_EQ(events[0].args[0].as_int(), 7);
  EXPECT_EQ(events[0].args[1].as_string(), "12 Oak");

  // Tuple variables without an explicit on-event are implicitly
  // insert-or-update (§5): a new represents row that completes the join
  // for the existing house 8 fires the trigger too.
  ASSERT_TRUE(
      db_->Insert("represents", Tuple({Value::Int(1), Value::Int(99)})).ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 2u);
  EXPECT_EQ(tman_->events().History()[1].args[0].as_int(), 8);

  // And future houses in the newly represented neighborhood fire as well
  // (virtual alpha nodes read current table state).
  ASSERT_TRUE(db_->Insert("house",
                          Tuple({Value::Int(9), Value::String("3 Fir"),
                                 Value::Float(1), Value::Int(99),
                                 Value::Int(1)}))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 3u);
}

TEST_F(TriggerManagerTest, MultiVarStreamUsesStoredMemories) {
  Schema orders({{"oid", DataType::kInt}, {"cust", DataType::kInt}});
  Schema shipments({{"oid", DataType::kInt}, {"status", DataType::kVarchar}});
  auto ds_o = tman_->DefineStreamSource("orders", orders);
  auto ds_s = tman_->DefineStreamSource("shipments", shipments);
  ASSERT_TRUE(ds_o.ok() && ds_s.ok());
  Exec("create trigger shipped from orders o, shipments s "
       "when o.oid = s.oid and s.status = 'shipped' "
       "do raise event OrderShipped(o.oid, o.cust)");

  // Order arrives first (stored in o's alpha memory), then the shipment.
  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Insert(
                      *ds_o, Tuple({Value::Int(1), Value::Int(42)})))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 0u);
  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Insert(
                      *ds_s, Tuple({Value::Int(1),
                                    Value::String("shipped")})))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  ASSERT_EQ(tman_->events().num_raised(), 1u);
  EXPECT_EQ(tman_->events().History()[0].args[1].as_int(), 42);

  // Delete the order; a duplicate shipment no longer fires.
  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Delete(
                      *ds_o, Tuple({Value::Int(1), Value::Int(42)})))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Insert(
                      *ds_s, Tuple({Value::Int(1),
                                    Value::String("shipped")})))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(TriggerManagerTest, AsyncDriversProcessUpdates) {
  TriggerManagerOptions options;
  options.driver_config.num_drivers = 2;
  options.driver_config.period = std::chrono::milliseconds(5);
  Reset(options);
  Exec("create trigger t from emp on insert when emp.dept = 1 "
       "do raise event E(emp.name)");
  ASSERT_TRUE(tman_->Start().ok());
  for (int i = 0; i < 200; ++i) {
    InsertEmp("e" + std::to_string(i), 1, i % 2);
  }
  tman_->Drain();
  tman_->Stop();
  EXPECT_EQ(tman_->events().num_raised(), 100u);
}

TEST_F(TriggerManagerTest, ConditionPartitionsCoverAllTriggers) {
  TriggerManagerOptions options;
  options.condition_partitions = 4;
  Reset(options);
  for (int i = 0; i < 10; ++i) {
    Exec("create trigger t" + std::to_string(i) +
         " from emp on insert when emp.dept = 1 do raise event E()");
  }
  InsertEmp("x", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 10u);  // exactly once each
}

TEST_F(TriggerManagerTest, ConcurrentActionsRunAsTasks) {
  TriggerManagerOptions options;
  options.concurrent_actions = true;
  Reset(options);
  Exec("create trigger t from emp on insert do raise event E(emp.name)");
  InsertEmp("x", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(TriggerManagerTest, MemoryQueueModeWorks) {
  TriggerManagerOptions options;
  options.persistent_queue = false;
  Reset(options);
  Exec("create trigger t from emp on insert do raise event E()");
  InsertEmp("x", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(TriggerManagerTest, TriggersSurviveReopen) {
  Exec("create trigger t from emp on insert when emp.dept = 7 "
       "do raise event E(emp.name)");
  tman_.reset();  // shut down the first instance

  // A new TriggerMan over the same database: Open restores data sources
  // from the catalog and reloads triggers.
  tman_ = std::make_unique<TriggerManager>(db_.get());
  ASSERT_TRUE(tman_->Open().ok());
  EXPECT_EQ(tman_->predicate_index().stats().num_predicates, 1u);

  InsertEmp("back", 1, 7);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  ASSERT_EQ(tman_->events().num_raised(), 1u);
  EXPECT_EQ(tman_->events().History()[0].args[0].as_string(), "back");
}

TEST_F(TriggerManagerTest, StreamSourcesSurviveReopen) {
  Schema quotes({{"symbol", DataType::kVarchar},
                 {"price", DataType::kFloat}});
  ASSERT_TRUE(tman_->DefineStreamSource("quotes", quotes).ok());
  Exec("create trigger alert from quotes when quotes.price > 100 "
       "do raise event Alert(quotes.symbol)");
  tman_.reset();

  tman_ = std::make_unique<TriggerManager>(db_.get());
  ASSERT_TRUE(tman_->Open().ok());  // restores the stream's schema too
  auto info = tman_->sources().Lookup("quotes");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->schema.num_fields(), 2u);
  ASSERT_TRUE(tman_->SubmitUpdate(UpdateDescriptor::Insert(
                      info->id,
                      Tuple({Value::String("ACME"), Value::Float(150)})))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 1u);
}

TEST_F(TriggerManagerTest, CacheEvictionReloadsDuringFiring) {
  TriggerManagerOptions options;
  options.trigger_cache_capacity = 2;  // tiny: constant eviction
  Reset(options);
  for (int i = 0; i < 8; ++i) {
    Exec("create trigger t" + std::to_string(i) +
         " from emp on insert when emp.dept = " + std::to_string(i) +
         " do raise event E" + std::to_string(i) + "()");
  }
  for (int64_t d = 0; d < 8; ++d) {
    InsertEmp("x", 1, d);
  }
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 8u);
  EXPECT_GT(tman_->cache().stats().evictions, 0u);
  EXPECT_GT(tman_->cache().stats().misses, 0u);
}

TEST_F(TriggerManagerTest, GroupByOverJoinsRejectedAsFutureWork) {
  ASSERT_TRUE(db_->CreateTable("dept", Schema({{"dno", DataType::kInt}}))
                  .ok());
  ASSERT_TRUE(tman_->DefineLocalTableSource("dept").ok());
  auto r = tman_->ExecuteCommand(
      "create trigger agg from emp e, dept d group by e.dept "
      "having count(e.dept) > 5 do raise event TooMany()");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
  // having without group by is invalid.
  auto r2 = tman_->ExecuteCommand(
      "create trigger agg2 from emp having count(dept) > 5 "
      "do raise event TooMany()");
  EXPECT_FALSE(r2.ok());
}

TEST_F(TriggerManagerTest, ScriptExecution) {
  auto r = tman_->ExecuteScript(
      "create trigger set s1 'x'; "
      "create trigger a in s1 from emp on insert do raise event A(); "
      "create trigger b from emp on insert do raise event B()");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  InsertEmp("q", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(tman_->events().num_raised(), 2u);
}

TEST_F(TriggerManagerTest, EventConsumersNotified) {
  Exec("create trigger t from emp on insert do raise event Ping(emp.name)");
  std::vector<std::string> received;
  uint64_t reg = tman_->events().Register("Ping", [&](const Event& e) {
    received.push_back(e.args[0].as_string());
  });
  InsertEmp("n1", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "n1");
  tman_->events().Unregister(reg);
  InsertEmp("n2", 1, 1);
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(TriggerManagerTest, PinTriggerExposesRuntime) {
  Exec("create trigger t from emp on insert when emp.dept = 1 "
       "do raise event E()");
  auto handle = tman_->PinTrigger("t");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->name, "t");
  EXPECT_EQ((*handle)->graph.nodes().size(), 1u);
  EXPECT_FALSE((*handle)->multi_variable());
  EXPECT_FALSE(tman_->PinTrigger("none").ok());
}

}  // namespace
}  // namespace tman
