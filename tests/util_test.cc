#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace tman {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  TMAN_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_FALSE(Propagates(-1).ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TMAN_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC_12"), "abc_12");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "sELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, SplitAndJoin) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \n\t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("create trigger", "create"));
  EXPECT_FALSE(StartsWith("crea", "create"));
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(MixInt(1), MixInt(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(99);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator z(100, 0.0, 1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = z.Next();
    EXPECT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 90u);  // nearly all values hit
}

TEST(ZipfTest, SkewedWhenThetaHigh) {
  ZipfGenerator z(1000, 0.99, 1);
  uint64_t low = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.Next() < 10) ++low;
  }
  // With theta=0.99 the top-10 of 1000 items should absorb a large
  // fraction of draws; uniform would give ~1%.
  EXPECT_GT(low, kDraws / 5);
}

TEST(ZipfTest, BoundsRespected) {
  ZipfGenerator z(3, 0.9, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(z.Next(), 3u);
  }
}

// The logger is shared global state hit from driver threads, the IPC
// server's connection threads and clients at once: the level must be
// readable while another thread changes it, and concurrent messages must
// come out as whole lines. Exercised under TSan by the CI preset.
TEST(LoggingTest, ConcurrentLoggingAndLevelChangesAreSafe) {
  LogLevel original = GetLogLevel();
  std::thread toggler([] {
    for (int i = 0; i < 500; ++i) {
      SetLogLevel(i % 2 == 0 ? LogLevel::kWarn : LogLevel::kError);
    }
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        // Below every level the toggler sets: exercises the level load on
        // the fast path without spamming the test log.
        TMAN_LOG(kDebug) << "dropped " << t << ":" << i;
        if (i % 50 == 0) {
          TMAN_LOG(kError) << "concurrent logger " << t << " line " << i;
        }
      }
    });
  }
  toggler.join();
  for (auto& th : loggers) th.join();
  SetLogLevel(original);
  SUCCEED();  // the assertion is TSan/ASan cleanliness and unmangled lines
}

}  // namespace
}  // namespace tman
