#include <gtest/gtest.h>

#include <set>

#include "network/atreat.h"
#include "parser/parser.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(AlphaMemoryTest, InsertRemoveForEach) {
  AlphaMemory mem;
  Tuple a({Value::Int(1), Value::String("a")});
  Tuple b({Value::Int(2), Value::String("b")});
  mem.Insert(a);
  mem.Insert(b);
  EXPECT_EQ(mem.size(), 2u);
  EXPECT_TRUE(mem.Remove(a));
  EXPECT_FALSE(mem.Remove(a));
  EXPECT_EQ(mem.size(), 1u);
  int count = 0;
  mem.ForEach([&](const Tuple& t) {
    EXPECT_EQ(t, b);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(AlphaMemoryTest, DuplicateTuplesCounted) {
  AlphaMemory mem;
  Tuple a({Value::Int(1)});
  mem.Insert(a);
  mem.Insert(a);
  EXPECT_EQ(mem.size(), 2u);
  EXPECT_TRUE(mem.Remove(a));
  EXPECT_EQ(mem.size(), 1u);
  EXPECT_TRUE(mem.Remove(a));
  EXPECT_EQ(mem.size(), 0u);
}

TEST(AlphaMemoryTest, ProbeEqualUsesIndex) {
  AlphaMemory mem;
  for (int64_t i = 0; i < 100; ++i) {
    mem.Insert(Tuple({Value::Int(i % 10), Value::Int(i)}));
  }
  std::set<int64_t> seen;
  mem.ProbeEqual(0, Value::Int(3), [&](const Tuple& t) {
    seen.insert(t.at(1).as_int());
    return true;
  });
  EXPECT_EQ(seen.size(), 10u);
  for (int64_t v : seen) EXPECT_EQ(v % 10, 3);
  // Index stays correct after removals.
  EXPECT_TRUE(mem.Remove(Tuple({Value::Int(3), Value::Int(3)})));
  seen.clear();
  mem.ProbeEqual(0, Value::Int(3), [&](const Tuple& t) {
    seen.insert(t.at(1).as_int());
    return true;
  });
  EXPECT_EQ(seen.size(), 9u);
}

TEST(AlphaMemoryTest, ProbeIndexesSurviveRemoveAndSlotReuse) {
  AlphaMemory mem;
  // Build per-field indexes on two fields before any churn.
  mem.Insert(Tuple({Value::Int(1), Value::String("a")}));
  mem.Insert(Tuple({Value::Int(2), Value::String("b")}));
  mem.Insert(Tuple({Value::Int(3), Value::String("c")}));
  mem.ProbeEqual(0, Value::Int(1), [](const Tuple&) { return true; });
  mem.ProbeEqual(1, Value::String("a"), [](const Tuple&) { return true; });

  // Churn: every removal frees a slot that the next insert reuses for a
  // tuple with different field values; both indexes must track the swaps.
  for (int64_t round = 0; round < 50; ++round) {
    int64_t old_key = 1 + (round % 3);
    std::string old_str(1, static_cast<char>('a' + (old_key - 1)));
    ASSERT_TRUE(
        mem.Remove(Tuple({Value::Int(old_key), Value::String(old_str)})))
        << "round " << round;
    mem.Insert(Tuple({Value::Int(old_key), Value::String(old_str)}));
  }
  EXPECT_EQ(mem.size(), 3u);

  for (int64_t k = 1; k <= 3; ++k) {
    std::string s(1, static_cast<char>('a' + (k - 1)));
    int hits = 0;
    mem.ProbeEqual(0, Value::Int(k), [&](const Tuple& t) {
      EXPECT_EQ(t.at(1).as_string(), s);
      ++hits;
      return true;
    });
    EXPECT_EQ(hits, 1) << "int probe for " << k;
    hits = 0;
    mem.ProbeEqual(1, Value::String(s), [&](const Tuple& t) {
      EXPECT_EQ(t.at(0).as_int(), k);
      ++hits;
      return true;
    });
    EXPECT_EQ(hits, 1) << "string probe for " << s;
  }

  // Reused slots must not resurrect the old values under either index.
  mem.Insert(Tuple({Value::Int(9), Value::String("z")}));
  ASSERT_TRUE(mem.Remove(Tuple({Value::Int(2), Value::String("b")})));
  mem.Insert(Tuple({Value::Int(7), Value::String("y")}));  // reuses b's slot
  int stale = 0;
  mem.ProbeEqual(0, Value::Int(2), [&](const Tuple&) {
    ++stale;
    return true;
  });
  mem.ProbeEqual(1, Value::String("b"), [&](const Tuple&) {
    ++stale;
    return true;
  });
  EXPECT_EQ(stale, 0);
  int fresh = 0;
  mem.ProbeEqual(0, Value::Int(7), [&](const Tuple& t) {
    EXPECT_EQ(t.at(1).as_string(), "y");
    ++fresh;
    return true;
  });
  EXPECT_EQ(fresh, 1);
}

TEST(AlphaMemoryTest, ShortTuplesCoexistWithProbeIndexes) {
  AlphaMemory mem;
  mem.Insert(Tuple({Value::Int(1), Value::String("long")}));
  // Index on field 1 exists before the short tuple arrives.
  mem.ProbeEqual(1, Value::String("long"), [](const Tuple&) { return true; });
  Tuple short_tuple({Value::Int(2)});
  mem.Insert(short_tuple);  // lacks field 1: stays out of that index
  int hits = 0;
  mem.ProbeEqual(0, Value::Int(2), [&](const Tuple&) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(mem.Remove(short_tuple));
  // The freed slot is reused by a full-width tuple; both indexes pick it up.
  mem.Insert(Tuple({Value::Int(5), Value::String("reborn")}));
  hits = 0;
  mem.ProbeEqual(1, Value::String("reborn"), [&](const Tuple&) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(mem.size(), 2u);
}

// --- A-TREAT network ---------------------------------------------------------

class ATreatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    // Real-estate schema from the paper §2.
    ASSERT_TRUE(db_->CreateTable("salesperson",
                                 Schema({{"spno", DataType::kInt},
                                         {"name", DataType::kVarchar},
                                         {"phone", DataType::kVarchar}}))
                    .ok());
    ASSERT_TRUE(db_->CreateTable("house",
                                 Schema({{"hno", DataType::kInt},
                                         {"address", DataType::kVarchar},
                                         {"price", DataType::kFloat},
                                         {"nno", DataType::kInt},
                                         {"spno", DataType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_->CreateTable("represents",
                                 Schema({{"spno", DataType::kInt},
                                         {"nno", DataType::kInt}}))
                    .ok());
    // Iris (spno 1) represents neighborhoods 10 and 11; Sam (2) reps 12.
    Insert("salesperson", {Value::Int(1), Value::String("Iris"),
                           Value::String("555")});
    Insert("salesperson", {Value::Int(2), Value::String("Sam"),
                           Value::String("556")});
    Insert("represents", {Value::Int(1), Value::Int(10)});
    Insert("represents", {Value::Int(1), Value::Int(11)});
    Insert("represents", {Value::Int(2), Value::Int(12)});
  }

  void Insert(const std::string& table, std::vector<Value> values) {
    ASSERT_TRUE(db_->Insert(table, Tuple(std::move(values))).ok());
  }

  Result<ConditionGraph> IrisGraph() {
    std::vector<TupleVarInfo> vars = {
        {"s", "salesperson", 1, OpCode::kInsertOrUpdate},
        {"h", "house", 2, OpCode::kInsert},
        {"r", "represents", 3, OpCode::kInsertOrUpdate},
    };
    auto cnf =
        ToCnf(Parse("s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno"));
    if (!cnf.ok()) return cnf.status();
    return ConditionGraph::Build(vars, *cnf);
  }

  Tuple House(int64_t hno, const std::string& addr, double price,
              int64_t nno, int64_t spno) {
    return Tuple({Value::Int(hno), Value::String(addr), Value::Float(price),
                  Value::Int(nno), Value::Int(spno)});
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ATreatTest, VirtualNodesForLocalTables) {
  auto graph = IrisGraph();
  ASSERT_TRUE(graph.ok());
  auto net = ATreatNetwork::Build(*graph, db_.get(), ATreatOptions{});
  ASSERT_TRUE(net.ok());
  // All three sources are local tables -> virtual alpha nodes (A-TREAT).
  EXPECT_FALSE((*net)->node_stored(0));
  EXPECT_FALSE((*net)->node_stored(1));
  EXPECT_FALSE((*net)->node_stored(2));
}

TEST_F(ATreatTest, JoinFiresForMatchingHouse) {
  auto graph = IrisGraph();
  ASSERT_TRUE(graph.ok());
  auto net = ATreatNetwork::Build(*graph, db_.get(), ATreatOptions{});
  ASSERT_TRUE(net.ok());

  // New house in neighborhood 10 (Iris's): token arrives at node h (1).
  int firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(1, House(100, "12 Oak St", 250000, 10, 2),
                               [&](const std::vector<Tuple>& bindings) {
                                 ++firings;
                                 ASSERT_EQ(bindings.size(), 3u);
                                 EXPECT_EQ(bindings[0].at(1).as_string(),
                                           "Iris");
                                 EXPECT_EQ(bindings[1].at(0).as_int(), 100);
                                 EXPECT_EQ(bindings[2].at(1).as_int(), 10);
                               })
                  .ok());
  EXPECT_EQ(firings, 1);

  // House in neighborhood 12 (Sam's): selection s.name='Iris' fails.
  firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(1, House(101, "9 Elm", 100000, 12, 2),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 0);

  // Unknown neighborhood: join on represents fails.
  firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(1, House(102, "1 Pine", 50000, 99, 1),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 0);
}

TEST_F(ATreatTest, MultipleJoinCombinations) {
  // Iris represents two neighborhoods; a token arriving at s joins with
  // every (r, h) pair that matches.
  Insert("house", {Value::Int(1), Value::String("a"), Value::Float(1),
                   Value::Int(10), Value::Int(1)});
  Insert("house", {Value::Int(2), Value::String("b"), Value::Float(2),
                   Value::Int(11), Value::Int(1)});
  Insert("house", {Value::Int(3), Value::String("c"), Value::Float(3),
                   Value::Int(12), Value::Int(2)});
  auto graph = IrisGraph();
  ASSERT_TRUE(graph.ok());
  auto net = ATreatNetwork::Build(*graph, db_.get(), ATreatOptions{});
  ASSERT_TRUE(net.ok());
  int firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(0,
                               Tuple({Value::Int(1), Value::String("Iris"),
                                      Value::String("555")}),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 2);  // houses 1 and 2, not Sam's house 3
}

TEST_F(ATreatTest, StoredMemoriesWhenForced) {
  ATreatOptions opts;
  opts.prefer_virtual = false;
  auto graph = IrisGraph();
  ASSERT_TRUE(graph.ok());
  auto net = ATreatNetwork::Build(*graph, db_.get(), opts);
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE((*net)->node_stored(0));
  // Priming fills stored memories from the base tables with selection
  // applied: only Iris qualifies at node s.
  ASSERT_TRUE((*net)->Prime().ok());
  EXPECT_EQ((*net)->memory_size(0), 1u);
  EXPECT_EQ((*net)->memory_size(2), 3u);  // all represents rows

  int firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(1, House(100, "x", 1, 10, 1),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 1);

  // Memory maintenance: drop the represents row for nno 10 and refire.
  ASSERT_TRUE(
      (*net)->RemoveTuple(2, Tuple({Value::Int(1), Value::Int(10)})).ok());
  firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(1, House(100, "x", 1, 10, 1),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 0);
}

TEST_F(ATreatTest, SingleVariableTriggerFiresDirectly) {
  std::vector<TupleVarInfo> vars = {
      {"h", "house", 2, OpCode::kInsert},
  };
  auto cnf = ToCnf(Parse("h.price < 100000"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(vars, *cnf);
  ASSERT_TRUE(graph.ok());
  auto net = ATreatNetwork::Build(*graph, db_.get(), ATreatOptions{});
  ASSERT_TRUE(net.ok());
  int firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(0, House(7, "x", 50000, 1, 1),
                               [&](const std::vector<Tuple>& b) {
                                 ++firings;
                                 EXPECT_EQ(b.size(), 1u);
                               })
                  .ok());
  EXPECT_EQ(firings, 1);
}

TEST_F(ATreatTest, CatchAllConjunctFiltersFirings) {
  std::vector<TupleVarInfo> vars = {
      {"s", "salesperson", 1, OpCode::kInsertOrUpdate},
      {"h", "house", 2, OpCode::kInsert},
      {"r", "represents", 3, OpCode::kInsertOrUpdate},
  };
  // Hyper-join conjunct (3 vars) lands on the catch-all list.
  auto cnf = ToCnf(Parse(
      "s.spno = r.spno and r.nno = h.nno and s.spno + r.nno > h.hno"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(vars, *cnf);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->catch_all().size(), 1u);
  auto net = ATreatNetwork::Build(*graph, db_.get(), ATreatOptions{});
  ASSERT_TRUE(net.ok());
  // House 100 in nno 10: s.spno(1) + r.nno(10) = 11 > hno must hold.
  int firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(1, House(5, "x", 1, 10, 1),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 1);  // 11 > 5
  firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(1, House(50, "x", 1, 10, 1),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 0);  // 11 > 50 fails
}

TEST_F(ATreatTest, DisconnectedVariableMakesCartesianProduct) {
  std::vector<TupleVarInfo> vars = {
      {"h", "house", 2, OpCode::kInsert},
      {"s", "salesperson", 1, OpCode::kInsertOrUpdate},
  };
  auto graph = ConditionGraph::Build(vars, {});  // no condition at all
  ASSERT_TRUE(graph.ok());
  auto net = ATreatNetwork::Build(*graph, db_.get(), ATreatOptions{});
  ASSERT_TRUE(net.ok());
  int firings = 0;
  ASSERT_TRUE((*net)
                  ->MatchJoins(0, House(1, "x", 1, 1, 1),
                               [&](const std::vector<Tuple>&) { ++firings; })
                  .ok());
  EXPECT_EQ(firings, 2);  // two salespersons
}

}  // namespace
}  // namespace tman
