#include <gtest/gtest.h>

#include <map>
#include <set>

#include "storage/bptree.h"
#include "util/random.h"

namespace tman {
namespace {

class BPTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 256);
    auto meta = BPTree::Create(pool_.get());
    ASSERT_TRUE(meta.ok());
    tree_ = std::make_unique<BPTree>(pool_.get(), *meta);
  }

  static std::vector<Value> IntKey(int64_t k) { return {Value::Int(k)}; }
  static Rid MakeRid(uint32_t p, uint16_t s) { return Rid{p, s}; }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPTree> tree_;
};

TEST_F(BPTreeTest, InsertAndSearchEqual) {
  ASSERT_TRUE(tree_->Insert(IntKey(5), MakeRid(1, 1)).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(7), MakeRid(2, 2)).ok());
  auto r = tree_->SearchEqual(IntKey(5));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], MakeRid(1, 1));
  EXPECT_TRUE(tree_->SearchEqual(IntKey(6))->empty());
}

TEST_F(BPTreeTest, DuplicateKeysAllRidsReturned) {
  for (uint16_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(42), MakeRid(1, i)).ok());
  }
  auto r = tree_->SearchEqual(IntKey(42));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 50u);
}

TEST_F(BPTreeTest, DuplicateKeyRidPairIdempotent) {
  ASSERT_TRUE(tree_->Insert(IntKey(1), MakeRid(9, 9)).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(1), MakeRid(9, 9)).ok());
  EXPECT_EQ(tree_->SearchEqual(IntKey(1))->size(), 1u);
}

TEST_F(BPTreeTest, DeleteRemovesOneEntry) {
  ASSERT_TRUE(tree_->Insert(IntKey(1), MakeRid(1, 1)).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(1), MakeRid(1, 2)).ok());
  ASSERT_TRUE(tree_->Delete(IntKey(1), MakeRid(1, 1)).ok());
  auto r = tree_->SearchEqual(IntKey(1));
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], MakeRid(1, 2));
  EXPECT_FALSE(tree_->Delete(IntKey(1), MakeRid(1, 1)).ok());
}

TEST_F(BPTreeTest, SplitsGrowTheTree) {
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), MakeRid(0, 0)).ok())
        << "insert " << i;
  }
  auto height = tree_->Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 2u);
  EXPECT_EQ(*tree_->NumEntries(), 5000u);
  // Every key still findable after all the splits.
  for (int64_t i = 0; i < 5000; i += 97) {
    EXPECT_EQ(tree_->SearchEqual(IntKey(i))->size(), 1u) << "key " << i;
  }
}

TEST_F(BPTreeTest, RangeScanInclusiveExclusive) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), MakeRid(0, 0)).ok());
  }
  std::vector<int64_t> seen;
  auto collect = [&seen](const std::vector<Value>& key, const Rid&) {
    seen.push_back(key[0].as_int());
    return true;
  };
  ASSERT_TRUE(tree_->SearchRange(IntKey(10), true, IntKey(15), true, collect)
                  .ok());
  EXPECT_EQ(seen, (std::vector<int64_t>{10, 11, 12, 13, 14, 15}));

  seen.clear();
  ASSERT_TRUE(tree_->SearchRange(IntKey(10), false, IntKey(15), false,
                                 collect)
                  .ok());
  EXPECT_EQ(seen, (std::vector<int64_t>{11, 12, 13, 14}));
}

TEST_F(BPTreeTest, OpenEndedRanges) {
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), MakeRid(0, 0)).ok());
  }
  int64_t count = 0;
  ASSERT_TRUE(tree_->SearchRange(std::nullopt, true, IntKey(4), true,
                                 [&](const auto&, const Rid&) {
                                   ++count;
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(count, 5);
  count = 0;
  ASSERT_TRUE(tree_->SearchRange(IntKey(15), true, std::nullopt, true,
                                 [&](const auto&, const Rid&) {
                                   ++count;
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(count, 5);
}

TEST_F(BPTreeTest, CompositeAndStringKeys) {
  std::vector<Value> k1{Value::String("boston"), Value::Int(2)};
  std::vector<Value> k2{Value::String("boston"), Value::Int(3)};
  std::vector<Value> k3{Value::String("austin"), Value::Int(9)};
  ASSERT_TRUE(tree_->Insert(k1, MakeRid(1, 1)).ok());
  ASSERT_TRUE(tree_->Insert(k2, MakeRid(2, 2)).ok());
  ASSERT_TRUE(tree_->Insert(k3, MakeRid(3, 3)).ok());
  EXPECT_EQ(tree_->SearchEqual(k1)->size(), 1u);
  EXPECT_EQ(tree_->SearchEqual(k2)->size(), 1u);
  // Full scan yields keys in lexicographic order.
  std::vector<std::string> cities;
  ASSERT_TRUE(tree_->ScanAll([&](const std::vector<Value>& k, const Rid&) {
                 cities.push_back(k[0].as_string());
                 return true;
               }).ok());
  EXPECT_EQ(cities,
            (std::vector<std::string>{"austin", "boston", "boston"}));
}

TEST_F(BPTreeTest, RandomizedAgainstStdMultimap) {
  Random rng(77);
  std::multimap<int64_t, Rid> model;
  for (int step = 0; step < 8000; ++step) {
    int64_t key = static_cast<int64_t>(rng.Uniform(500));
    if (rng.NextDouble() < 0.7 || model.empty()) {
      Rid rid = MakeRid(static_cast<uint32_t>(rng.Uniform(1000)),
                        static_cast<uint16_t>(rng.Uniform(100)));
      // Skip if (key,rid) already present (tree is idempotent there).
      bool dup = false;
      auto range = model.equal_range(key);
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == rid) dup = true;
      }
      ASSERT_TRUE(tree_->Insert({Value::Int(key)}, rid).ok());
      if (!dup) model.emplace(key, rid);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.size())));
      ASSERT_TRUE(tree_->Delete({Value::Int(it->first)}, it->second).ok());
      model.erase(it);
    }
  }
  EXPECT_EQ(*tree_->NumEntries(), model.size());
  // Spot-check equality lookups for every key bucket.
  for (int64_t key = 0; key < 500; ++key) {
    auto r = tree_->SearchEqual({Value::Int(key)});
    ASSERT_TRUE(r.ok());
    std::set<std::string> got, want;
    for (const Rid& rid : *r) got.insert(rid.ToString());
    auto range = model.equal_range(key);
    for (auto it = range.first; it != range.second; ++it) {
      want.insert(it->second.ToString());
    }
    EXPECT_EQ(got, want) << "key " << key;
  }
}

TEST_F(BPTreeTest, OversizedKeyRejected) {
  std::vector<Value> key{Value::String(std::string(2000, 'k'))};
  EXPECT_FALSE(tree_->Insert(key, MakeRid(0, 0)).ok());
}

TEST_F(BPTreeTest, ScanStopsEarly) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), MakeRid(0, 0)).ok());
  }
  int count = 0;
  ASSERT_TRUE(tree_->ScanAll([&](const auto&, const Rid&) {
                 return ++count < 10;
               }).ok());
  EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace tman
