// Kill-and-recover crash tests for durable ingestion (storage/wal.h +
// TriggerManager durable_wal). The methodology:
//
//   1. Enumerate every fault site the durable storage stack registers
//      (FaultInjector::RegisteredSites()) — each is a crash point.
//   2. For each site (x countdown depth x staging mode), run a seeded
//      deterministic workload (two stamped ingest sessions, a task
//      driver, a checkpointer) against a live TriggerManager until the
//      armed fault trips, then KILL the instance: destroy it with no
//      clean shutdown. The Database underneath is the durable host; the
//      TriggerManager (WAL tail buffer, task queue, session maps) is the
//      process image and dies with its destructor, which does no I/O.
//   3. Reopen from disk: a fresh TriggerManager's Open() runs WAL
//      recovery. Differentially check against a shadow oracle built
//      while the first instance ran.
//
// Oracle invariants (the durability contract of DESIGN.md §11):
//   * an acked token fires at least once (pre-kill or after replay);
//   * an acked token that did NOT fire pre-kill fires after recovery
//     EXACTLY once (acked-but-unprocessed => exactly-once replay);
//   * no token fires twice on either side of the kill (dups are allowed
//     only across the kill, for tokens processed right before it — the
//     documented lost-processed-marker ambiguity);
//   * only submitted tokens ever fire;
//   * recovered session high-water marks bound the acked/assigned seqs,
//     so the IPC dedup contract survives the restart.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/trigger_manager.h"
#include "db/database.h"
#include "runtime/deterministic.h"
#include "storage/wal.h"
#include "util/codec.h"
#include "util/fault_injector.h"

namespace tman {
namespace {

constexpr int kBatchesPerSession = 4;
constexpr int kTokensPerBatch = 3;

// Shadow oracle built while the pre-kill instance runs.
struct Oracle {
  std::set<int64_t> submitted;
  std::set<int64_t> acked;
  std::map<int64_t, int> fired_pre;
  std::map<int64_t, int> fired_post;
  // Per session: high-water of acked ack_seq / highest assigned seq.
  std::map<std::string, uint64_t> acked_high;
  std::map<std::string, uint64_t> assigned_high;
  bool crashed = false;
  uint64_t site_faults = 0;  // injected faults at `stat_site`
};

// One ingest session actor: submits stamped batches the way the IPC
// server does, and on a failed submit resends the identical batch (same
// tokens, same seqs) — the client-reconnect contract the dedup protocol
// assumes.
struct SessionState {
  std::string name;
  int64_t id_base = 0;
  uint64_t next_seq = 1;
  int batches_acked = 0;
  bool retry = false;
  std::vector<UpdateDescriptor> tokens;
  BatchStamp stamp;
  std::vector<int64_t> ids;
};

TriggerManagerOptions DurableOptions(bool persistent) {
  TriggerManagerOptions opts;
  opts.durable_wal = true;
  opts.persistent_queue = persistent;
  opts.wal_checkpoint_bytes = 1024;  // small: checkpoints happen in-test
  return opts;
}

/// Runs one kill-and-recover cycle into `oracle`. `arm` (may be empty)
/// arms the fault injector after setup; `stat_site` (may be empty) names
/// the site whose injected-fault count to report; `run_drivers` controls
/// whether pre-kill tokens get processed at all. EXPECTs the durability
/// invariants; `context` tags every failure message.
void RunCycle(Oracle* oracle, bool persistent, uint64_t seed,
              const std::function<void(FaultInjector*)>& arm,
              const std::string& stat_site, bool run_drivers,
              const std::string& context) {
  Database db;
  FaultInjector* faults = db.disk()->fault_injector();
  TriggerManagerOptions opts = DurableOptions(persistent);
  Schema feed({{"id", DataType::kInt}});
  DataSourceId ds = 0;

  // --- phase A: live instance, seeded workload, kill on first fault ----
  {
    TriggerManager a(&db, opts);
    Status open = a.Open();
    ASSERT_TRUE(open.ok()) << context << ": " << open.ToString();
    auto src = a.DefineStreamSource("feed", feed);
    ASSERT_TRUE(src.ok()) << context;
    ds = *src;
    auto cmd = a.ExecuteCommand(
        "create trigger watch from feed when feed.id >= 0 "
        "do raise event Seen(feed.id)");
    ASSERT_TRUE(cmd.ok()) << context << ": " << cmd.status().ToString();
    a.events().Register("Seen", [&](const Event& e) {
      oracle->fired_pre[e.args[0].as_int()]++;
    });

    if (arm) arm(faults);

    DeterministicScheduler sched(seed);
    bool crashed = false;
    auto check_crash = [&] {
      if (faults->total_faults() > 0) crashed = true;
      return crashed;
    };

    std::vector<std::unique_ptr<SessionState>> sessions;
    for (int i = 0; i < 2; ++i) {
      auto s = std::make_unique<SessionState>();
      s->name = i == 0 ? "alpha" : "beta";
      s->id_base = (i + 1) * 100000;
      sessions.push_back(std::move(s));
    }
    for (auto& sp : sessions) {
      SessionState* s = sp.get();
      sched.AddActor(s->name, [&, s] {
        if (check_crash()) return false;
        if (!s->retry) {
          if (s->batches_acked >= kBatchesPerSession) return false;
          s->tokens.clear();
          s->ids.clear();
          s->stamp = BatchStamp();
          s->stamp.session = s->name;
          for (int i = 0; i < kTokensPerBatch; ++i) {
            uint64_t seq = s->next_seq + i;
            int64_t id = s->id_base + static_cast<int64_t>(seq);
            s->ids.push_back(id);
            s->stamp.seqs.push_back(seq);
            s->tokens.push_back(
                UpdateDescriptor::Insert(ds, Tuple({Value::Int(id)})));
            oracle->submitted.insert(id);
          }
          s->stamp.ack_seq = s->next_seq + kTokensPerBatch - 1;
          uint64_t& high = oracle->assigned_high[s->name];
          high = std::max(high, s->stamp.ack_seq);
        }
        std::vector<Status> per;
        Status st = a.SubmitUpdateBatch(s->tokens, &per, &s->stamp);
        if (st.ok()) {
          for (int64_t id : s->ids) oracle->acked.insert(id);
          oracle->acked_high[s->name] = s->stamp.ack_seq;
          s->next_seq = s->stamp.ack_seq + 1;
          ++s->batches_acked;
          s->retry = false;
        } else {
          // The durable contract: a failed submit staged nothing and
          // advanced no session state; resend the identical batch.
          s->retry = true;
        }
        return !check_crash();
      });
    }

    auto producers_done = [&] {
      for (auto& sp : sessions) {
        if (sp->retry || sp->batches_acked < kBatchesPerSession) return false;
      }
      return true;
    };
    int ckpts = 0;  // outlives the if: the actor runs in sched.Run below
    if (run_drivers) {
      sched.AddActor("drv", [&] {
        if (check_crash()) return false;
        Task t;
        if (a.task_queue().TryPop(&t)) {
          (void)t.work();  // failures show up via the fault injector
          return true;
        }
        return !producers_done();
      });
      sched.AddActor("ckpt", [&] {
        if (check_crash()) return false;
        (void)a.CheckpointWal();  // may fail under injected faults
        return ++ckpts < 5;
      });
    }

    sched.Run(20000);
    oracle->crashed = faults->total_faults() > 0;
    if (!stat_site.empty()) {
      oracle->site_faults = faults->site_stats(stat_site).faults;
    }
    faults->ClearAll();
    // Scope exit destroys `a` with no clean shutdown: the kill. Nothing
    // in ~TriggerManager writes to the database.
  }

  // --- phase B: reopen from disk and recover ---------------------------
  {
    TriggerManager b(&db, opts);
    Status open = b.Open();
    ASSERT_TRUE(open.ok()) << context << ": " << open.ToString();
    b.events().Register("Seen", [&](const Event& e) {
      oracle->fired_post[e.args[0].as_int()]++;
    });
    Status drained = b.ProcessPending();
    ASSERT_TRUE(drained.ok()) << context << ": " << drained.ToString();
    EXPECT_EQ(b.WalPendingTokens(), 0u) << context;

    for (const auto& [session, acked_high] : oracle->acked_high) {
      uint64_t recovered = b.RecoveredSessionSeq(session);
      EXPECT_GE(recovered, acked_high) << context << " session " << session;
      EXPECT_LE(recovered, oracle->assigned_high[session])
          << context << " session " << session;
    }

    // The differential oracle check.
    for (int64_t id : oracle->submitted) {
      int pre = oracle->fired_pre.count(id) ? oracle->fired_pre[id] : 0;
      int post = oracle->fired_post.count(id) ? oracle->fired_post[id] : 0;
      EXPECT_LE(pre, 1) << context << " token " << id
                        << " fired twice before the kill";
      EXPECT_LE(post, 1) << context << " token " << id
                         << " replayed more than once";
      if (oracle->acked.count(id)) {
        EXPECT_GE(pre + post, 1)
            << context << " acked token " << id << " lost";
        if (pre == 0) {
          EXPECT_EQ(post, 1) << context << " acked-but-unprocessed token "
                             << id << " not replayed exactly once";
        }
      }
    }
    for (const auto& [id, n] : oracle->fired_pre) {
      EXPECT_TRUE(oracle->submitted.count(id))
          << context << " phantom pre-kill firing " << id << " x" << n;
    }
    for (const auto& [id, n] : oracle->fired_post) {
      EXPECT_TRUE(oracle->submitted.count(id))
          << context << " phantom replay firing " << id << " x" << n;
    }

    // --- phase C setup: checkpoint after the full drain ----------------
    // Persists the processed-markers' effect (empty pending set) and the
    // session map, then kill again.
    Status ck = b.CheckpointWal();
    ASSERT_TRUE(ck.ok()) << context << ": " << ck.ToString();
  }

  // --- phase C: a third incarnation must replay nothing yet keep the
  // session dedup high-water marks.
  {
    TriggerManager c(&db, opts);
    Status open = c.Open();
    ASSERT_TRUE(open.ok()) << context << ": " << open.ToString();
    std::map<int64_t, int> fired_c;
    c.events().Register("Seen", [&](const Event& e) {
      fired_c[e.args[0].as_int()]++;
    });
    Status drained = c.ProcessPending();
    ASSERT_TRUE(drained.ok()) << context << ": " << drained.ToString();
    EXPECT_TRUE(fired_c.empty())
        << context << " tokens replayed after a checkpointed drain";
    for (const auto& [session, acked_high] : oracle->acked_high) {
      EXPECT_GE(c.RecoveredSessionSeq(session), acked_high)
          << context << " session dedup state lost by checkpoint";
    }
  }
}

// --- the enumeration contract ------------------------------------------

TEST(CrashRecoveryTest, DurableStackRegistersAllCrashPoints) {
  Database db;
  TriggerManager tman(&db, DurableOptions(/*persistent=*/true));
  ASSERT_TRUE(tman.Open().ok());
  std::vector<std::string> sites =
      db.disk()->fault_injector()->RegisteredSites();
  std::set<std::string> have(sites.begin(), sites.end());
  for (const char* site :
       {"disk.read", "disk.write", "disk.write.short", "disk.sync",
        "buffer.fetch", "buffer.new", "buffer.flush", "table_queue.push",
        "table_queue.push.meta", "table_queue.pop", "table_queue.pop.meta",
        "wal.append", "wal.write", "wal.fsync", "wal.truncate"}) {
    EXPECT_TRUE(have.count(site)) << "site not registered: " << site;
  }
}

// --- clean kill: acked-but-unprocessed tokens replay exactly once ------

TEST(CrashRecoveryTest, CleanKillReplaysAckedUnprocessedExactlyOnce) {
  for (bool persistent : {false, true}) {
    // No drivers: every acked token is still unprocessed at the kill.
    Oracle o;
    RunCycle(&o, persistent, /*seed=*/7, /*arm=*/{}, /*stat_site=*/"",
             /*run_drivers=*/false, persistent ? "persistent" : "memory");
    EXPECT_FALSE(o.crashed);
    EXPECT_EQ(o.acked.size(),
              static_cast<size_t>(2 * kBatchesPerSession * kTokensPerBatch));
    for (int64_t id : o.acked) {
      EXPECT_EQ(o.fired_pre.count(id), 0u);
      EXPECT_EQ(o.fired_post[id], 1);
    }
  }
}

// --- the site matrix: kill at every registered crash point -------------

TEST(CrashRecoveryTest, KillAndRecoverAtEveryRegisteredFaultSite) {
  std::map<std::string, uint64_t> tripped;  // site -> total injected faults
  std::set<std::string> must_trip;
  uint64_t seed = 1;
  for (bool persistent : {false, true}) {
    // Enumerate the sites this mode's stack registers.
    std::vector<std::string> sites;
    {
      Database db;
      TriggerManager tman(&db, DurableOptions(persistent));
      ASSERT_TRUE(tman.Open().ok());
      sites = db.disk()->fault_injector()->RegisteredSites();
    }
    ASSERT_FALSE(sites.empty());
    for (const std::string& site : sites) {
      // The workload must be able to reach every wal/disk/table_queue
      // crash point; buffer.* sites are enumerated and armed too, but
      // some (buffer.flush) have no durable-path caller mid-workload.
      if (site.rfind("wal.", 0) == 0 || site.rfind("disk.", 0) == 0 ||
          site.rfind("table_queue.", 0) == 0) {
        must_trip.insert(site);
      }
      for (uint64_t hits : {0u, 1u, 4u}) {
        std::string context =
            std::string(persistent ? "persistent" : "memory") + "/" + site +
            "/hits=" + std::to_string(hits) + "/seed=" +
            std::to_string(seed);
        Oracle o;
        RunCycle(&o, persistent, seed++,
                 [&](FaultInjector* f) { f->ArmCountdown(site, hits); },
                 /*stat_site=*/site, /*run_drivers=*/true, context);
        tripped[site] += o.site_faults;
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  for (const std::string& site : must_trip) {
    EXPECT_GT(tripped[site], 0u)
        << "crash point never reached by the workload: " << site;
  }
}

// --- seeded randomized storms ------------------------------------------

TEST(CrashRecoveryTest, SeededFaultStormsRecover) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    bool persistent = (seed % 2) == 0;
    std::string context = "storm/seed=" + std::to_string(seed);
    Oracle o;
    RunCycle(&o, persistent, seed,
             [&](FaultInjector* f) {
               f->ArmProbability("wal.*", 0.04, seed * 13 + 1);
               f->ArmProbability("disk.sync", 0.02, seed * 13 + 2);
               if (persistent) {
                 f->ArmProbability("table_queue.*", 0.02, seed * 13 + 3);
               }
             },
             /*stat_site=*/"", /*run_drivers=*/true, context);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- fault during recovery itself --------------------------------------

TEST(CrashRecoveryTest, FaultDuringRecoveryFailsCleanlyThenSucceeds) {
  Database db;
  TriggerManagerOptions opts = DurableOptions(/*persistent=*/true);
  Schema feed({{"id", DataType::kInt}});
  {
    TriggerManager a(&db, opts);
    ASSERT_TRUE(a.Open().ok());
    auto ds = a.DefineStreamSource("feed", feed);
    ASSERT_TRUE(ds.ok());
    ASSERT_TRUE(a.ExecuteCommand("create trigger watch from feed "
                                 "when feed.id >= 0 "
                                 "do raise event Seen(feed.id)")
                    .ok());
    BatchStamp stamp;
    stamp.session = "alpha";
    std::vector<UpdateDescriptor> tokens;
    for (int i = 0; i < 6; ++i) {
      tokens.push_back(UpdateDescriptor::Insert(*ds, Tuple({Value::Int(i)})));
      stamp.seqs.push_back(i + 1);
    }
    stamp.ack_seq = 6;
    ASSERT_TRUE(a.SubmitUpdateBatch(tokens, nullptr, &stamp).ok());
    // Kill without processing.
  }
  // Recovery that hits a disk fault must fail cleanly (no partial
  // instance), and a retry after the fault clears must replay everything.
  {
    db.disk()->fault_injector()->ArmCountdown("disk.read", 2);
    TriggerManager b(&db, opts);
    EXPECT_FALSE(b.Open().ok());
    db.disk()->fault_injector()->ClearAll();
  }
  {
    TriggerManager c(&db, opts);
    ASSERT_TRUE(c.Open().ok());
    std::map<int64_t, int> fired;
    c.events().Register("Seen", [&](const Event& e) {
      fired[e.args[0].as_int()]++;
    });
    ASSERT_TRUE(c.ProcessPending().ok());
    EXPECT_EQ(fired.size(), 6u);
    for (const auto& [id, n] : fired) {
      EXPECT_EQ(n, 1) << "token " << id;
    }
    EXPECT_EQ(c.RecoveredSessionSeq("alpha"), 6u);
  }
}

// --- checkpoint racing a failing group commit --------------------------
//
// A checkpoint must not snapshot a batch whose group commit is still in
// flight: if that commit then fails, the submitter erases the batch and
// rolls the session seq back (the client is told to resend), but a
// durable checkpoint listing the batch would re-stage it unconditionally
// on replay — firing the same logical token a second time on top of the
// dedup-passing resend.

TEST(CrashRecoveryTest, CheckpointDuringFailedCommitDoesNotResurrectBatch) {
  Database db;
  TriggerManagerOptions opts = DurableOptions(/*persistent=*/false);
  Schema feed({{"id", DataType::kInt}});
  std::map<int64_t, int> fired_pre, fired_post;
  {
    TriggerManager a(&db, opts);
    ASSERT_TRUE(a.Open().ok());
    auto ds = a.DefineStreamSource("feed", feed);
    ASSERT_TRUE(ds.ok());
    ASSERT_TRUE(a.ExecuteCommand("create trigger watch from feed "
                                 "when feed.id >= 0 "
                                 "do raise event Seen(feed.id)")
                    .ok());
    a.events().Register("Seen", [&](const Event& e) {
      fired_pre[e.args[0].as_int()]++;
    });

    BatchStamp stamp;
    stamp.session = "alpha";
    stamp.seqs = {1, 2};
    stamp.ack_seq = 2;
    std::vector<UpdateDescriptor> tokens;
    tokens.push_back(UpdateDescriptor::Insert(*ds, Tuple({Value::Int(1)})));
    tokens.push_back(UpdateDescriptor::Insert(*ds, Tuple({Value::Int(2)})));

    FaultInjector* faults = db.disk()->fault_injector();
    // Slow page writes widen the window in which the batch's commit is in
    // flight; the armed fsync then fails that commit.
    db.disk()->set_access_latency_ns(20 * 1000 * 1000);
    faults->ArmCountdown("wal.fsync", 0);

    Status submit_status;
    std::thread submitter([&] {
      submit_status = a.SubmitUpdateBatch(tokens, nullptr, &stamp);
    });
    // Once the batch is registered its commit is pending; checkpoint
    // concurrently with the commit that is about to fail.
    for (int i = 0; i < 1000 && a.WalPendingTokens() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::thread checkpointer([&] { (void)a.CheckpointWal(); });
    submitter.join();
    faults->ClearAll();
    db.disk()->set_access_latency_ns(0);
    checkpointer.join();
    ASSERT_FALSE(submit_status.ok());

    // The client-reconnect contract: resend the identical stamped batch,
    // which must now be acked and fire exactly once.
    ASSERT_TRUE(a.SubmitUpdateBatch(tokens, nullptr, &stamp).ok());
    ASSERT_TRUE(a.ProcessPending().ok());
    EXPECT_EQ(fired_pre[1], 1);
    EXPECT_EQ(fired_pre[2], 1);
    // Flush the resent batch's processed markers with one more durable
    // submission (its group commit covers the buffered markers), so the
    // replay below owes tokens 1 and 2 nothing at all.
    ASSERT_TRUE(
        a.SubmitUpdate(UpdateDescriptor::Insert(*ds, Tuple({Value::Int(99)})))
            .ok());
    // Kill: scope exit, no clean shutdown.
  }
  {
    TriggerManager b(&db, opts);
    ASSERT_TRUE(b.Open().ok());
    b.events().Register("Seen", [&](const Event& e) {
      fired_post[e.args[0].as_int()]++;
    });
    ASSERT_TRUE(b.ProcessPending().ok());
    // Tokens 1 and 2 were acked, processed, and their markers committed;
    // any replay of them can only come from a checkpoint that snapshotted
    // the failed first submission.
    EXPECT_EQ(fired_post[1], 0) << "failed batch resurrected by checkpoint";
    EXPECT_EQ(fired_post[2], 0) << "failed batch resurrected by checkpoint";
    EXPECT_GE(b.RecoveredSessionSeq("alpha"), 2u);
  }
}

// --- staged-queue dequeue failures must surface ------------------------

TEST(CrashRecoveryTest, StagedQueueDequeueErrorSurfacesFromPumpTask) {
  Database db;
  TriggerManagerOptions opts = DurableOptions(/*persistent=*/true);
  Schema feed({{"id", DataType::kInt}});
  TriggerManager a(&db, opts);
  ASSERT_TRUE(a.Open().ok());
  auto ds = a.DefineStreamSource("feed", feed);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(
      a.SubmitUpdate(UpdateDescriptor::Insert(*ds, Tuple({Value::Int(7)})))
          .ok());
  // The submit staged one pump task. A dequeue failure that is not
  // NotFound (here: injected corruption) must propagate from the task,
  // not read as "another pump already consumed it".
  db.disk()->fault_injector()->ArmCountdown("table_queue.pop", 0,
                                            StatusCode::kCorruption);
  Task t;
  ASSERT_TRUE(a.task_queue().TryPop(&t));
  Status st = t.work();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  db.disk()->fault_injector()->ClearAll();
  // The token stays durably pending, so the next recovery replays it.
  EXPECT_EQ(a.WalPendingTokens(), 1u);
}

// --- legacy (pre-V2) checkpoint records still replay -------------------
//
// The checkpoint payload grew a meta blob and per-token sequence stamps
// (WalRecordType::kCheckpointV2); logs written by the previous release
// end in old-layout kCheckpoint records. Recovery must keep decoding
// those — a version bump that misparsed them would turn every upgrade
// into a corrupt-log failure or, worse, silently wrong session seqs.

TEST(CrashRecoveryTest, LegacyCheckpointRecordReplaysAfterUpgrade) {
  Database db;
  TriggerManagerOptions opts = DurableOptions(/*persistent=*/false);
  Schema feed({{"id", DataType::kInt}});
  {
    TriggerManager a(&db, opts);
    ASSERT_TRUE(a.Open().ok());
    auto ds = a.DefineStreamSource("feed", feed);
    ASSERT_TRUE(ds.ok());
    ASSERT_TRUE(a.ExecuteCommand("create trigger watch from feed "
                                 "when feed.id >= 0 "
                                 "do raise event Seen(feed.id)")
                    .ok());
    // Handcraft an old-layout checkpoint exactly as the previous release
    // wrote it: sessions (name, seq), then pending batches with bare
    // (index, descriptor) tokens — no meta blob, no per-token seq.
    std::string tok100, tok101;
    UpdateDescriptor::Insert(*ds, Tuple({Value::Int(100)})).Serialize(&tok100);
    UpdateDescriptor::Insert(*ds, Tuple({Value::Int(101)})).Serialize(&tok101);
    std::string payload;
    PutU32(&payload, 1);  // session count
    PutLengthPrefixed(&payload, "legacy");
    PutU64(&payload, 7);
    PutU32(&payload, 1);  // batch count
    PutU64(&payload, 42);
    PutLengthPrefixed(&payload, "legacy");
    PutU32(&payload, 2);  // token count
    PutU32(&payload, 0);
    PutLengthPrefixed(&payload, tok100);
    PutU32(&payload, 1);
    PutLengthPrefixed(&payload, tok101);
    auto lsn = a.wal()->Append(WalRecordType::kCheckpoint, payload);
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    ASSERT_TRUE(a.wal()->Commit(*lsn).ok());
    // Kill without processing.
  }
  {
    TriggerManager b(&db, opts);
    ASSERT_TRUE(b.Open().ok());
    EXPECT_EQ(b.last_recovery().checkpoints_seen, 1u);
    EXPECT_EQ(b.RecoveredSessionSeq("legacy"), 7u);
    EXPECT_EQ(b.WalPendingTokens(), 2u);
    std::map<int64_t, int> fired;
    b.events().Register("Seen", [&](const Event& e) {
      fired[e.args[0].as_int()]++;
    });
    ASSERT_TRUE(b.ProcessPending().ok());
    EXPECT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[100], 1);
    EXPECT_EQ(fired[101], 1);
    // A V2 checkpoint written now must not confuse a further reopen.
    ASSERT_TRUE(b.CheckpointWal().ok());
  }
  {
    TriggerManager c(&db, opts);
    ASSERT_TRUE(c.Open().ok());
    EXPECT_EQ(c.RecoveredSessionSeq("legacy"), 7u);
    EXPECT_EQ(c.WalPendingTokens(), 0u);
  }
}

}  // namespace
}  // namespace tman
