#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cache/trigger_cache.h"
#include "core/trigger.h"

namespace tman {
namespace {

TriggerHandle MakeTrigger(TriggerId id) {
  auto t = std::make_shared<TriggerRuntime>();
  t->id = id;
  t->name = "t" + std::to_string(id);
  return t;
}

TEST(TriggerCacheTest, LoadsOnMissHitsAfter) {
  std::atomic<int> loads{0};
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  auto h1 = cache.Pin(1);
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ((*h1)->id, 1u);
  EXPECT_EQ(loads.load(), 1);
  auto h2 = cache.Pin(1);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(loads.load(), 1);  // hit, no reload
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TriggerCacheTest, LruEviction) {
  std::atomic<int> loads{0};
  TriggerCache cache(2, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(1).ok());
  ASSERT_TRUE(cache.Pin(2).ok());
  ASSERT_TRUE(cache.Pin(3).ok());  // evicts 1 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  ASSERT_TRUE(cache.Pin(2).ok());  // still resident
  EXPECT_EQ(loads.load(), 3);
  ASSERT_TRUE(cache.Pin(1).ok());  // reload
  EXPECT_EQ(loads.load(), 4);
}

TEST(TriggerCacheTest, TouchOnHitProtectsFromEviction) {
  TriggerCache cache(2, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(1).ok());
  ASSERT_TRUE(cache.Pin(2).ok());
  ASSERT_TRUE(cache.Pin(1).ok());  // 1 becomes MRU
  ASSERT_TRUE(cache.Pin(3).ok());  // evicts 2, not 1
  EXPECT_EQ(cache.stats().misses, 3u);
  ASSERT_TRUE(cache.Pin(1).ok());
  EXPECT_EQ(cache.stats().misses, 3u);  // 1 still cached
}

TEST(TriggerCacheTest, EvictedButPinnedHandleStaysAlive) {
  TriggerCache cache(1, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  auto pinned = cache.Pin(1);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(cache.Pin(2).ok());  // evicts 1's slot
  EXPECT_EQ(cache.size(), 1u);
  // The shared_ptr pin keeps the description valid.
  EXPECT_EQ((*pinned)->name, "t1");
}

TEST(TriggerCacheTest, PutSeedsWithoutLoader) {
  std::atomic<int> loads{0};
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  cache.Put(9, MakeTrigger(9));
  ASSERT_TRUE(cache.Pin(9).ok());
  EXPECT_EQ(loads.load(), 0);
}

TEST(TriggerCacheTest, InvalidateForcesReload) {
  std::atomic<int> loads{0};
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(5).ok());
  cache.Invalidate(5);
  ASSERT_TRUE(cache.Pin(5).ok());
  EXPECT_EQ(loads.load(), 2);
  cache.Invalidate(12345);  // unknown id: no-op
}

TEST(TriggerCacheTest, LoaderFailurePropagates) {
  TriggerCache cache(4, [&](TriggerId) -> Result<TriggerHandle> {
    return Status::NotFound("gone");
  });
  auto r = cache.Pin(1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(cache.stats().loads_failed, 1u);
}

TEST(TriggerCacheTest, ClearEmptiesEverything) {
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(1).ok());
  ASSERT_TRUE(cache.Pin(2).ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TriggerCacheTest, ConcurrentPinsAreSafe) {
  std::atomic<int> loads{0};
  TriggerCache cache(8, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    std::this_thread::yield();
    return MakeTrigger(id);
  });
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &errors, t] {
      for (int i = 0; i < 500; ++i) {
        auto h = cache.Pin(static_cast<TriggerId>((i + t) % 16));
        if (!h.ok() || (*h)->id != static_cast<TriggerId>((i + t) % 16)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(cache.size(), 8u);  // at capacity
}

TEST(TriggerCacheTest, ShardCountScalesWithCapacityButNeverExceedsIt) {
  TriggerCache tiny(4, [](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  EXPECT_EQ(tiny.num_shards(), 1u);  // small caches stay one CLOCK ring
  TriggerCache big(16384, [](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  EXPECT_GE(big.num_shards(), 2u);
  EXPECT_LE(big.num_shards(), 16u);
  TriggerCache forced(100, [](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  }, /*num_shards=*/8);
  EXPECT_EQ(forced.num_shards(), 8u);
}

TEST(TriggerCacheTest, ConcurrentHammerPinPutInvalidateClear) {
  // Hammer every mutating entry point from many threads at once; under
  // the asan/tsan presets this is the shard-locking proof.
  std::atomic<int> loads{0};
  TriggerCache cache(32, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    std::this_thread::yield();
    return MakeTrigger(id);
  }, /*num_shards=*/4);
  constexpr int kIds = 128;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &errors, t] {
      for (int i = 0; i < 2000; ++i) {
        TriggerId id = static_cast<TriggerId>((i * 7 + t * 13) % kIds);
        auto h = cache.Pin(id);
        if (!h.ok() || (*h)->id != id) ++errors;
      }
    });
  }
  threads.emplace_back([&cache, &stop] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Put(static_cast<TriggerId>(i % kIds),
                MakeTrigger(static_cast<TriggerId>(i % kIds)));
      cache.Invalidate(static_cast<TriggerId>((i + 3) % kIds));
      if (++i % 512 == 0) cache.Clear();
    }
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop = true;
  threads.back().join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(cache.size(), 32u);  // per-shard CLOCK keeps the bound
  // Every Pin counts exactly one hit or one miss, even when racing the
  // mutator thread (Put/Invalidate/Clear touch no counters).
  auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, 4u * 2000u);
}

TEST(TriggerCacheTest, PinnedHandlesSurviveConcurrentEviction) {
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  }, /*num_shards=*/1);
  // Pin a handle, then thrash the cache far past capacity from other
  // threads; the pinned description must stay valid throughout.
  auto pinned = cache.Pin(999);
  ASSERT_TRUE(pinned.ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 1000; ++i) {
        (void)cache.Pin(static_cast<TriggerId>(t * 1000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ((*pinned)->id, 999u);
  EXPECT_EQ((*pinned)->name, "t999");
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), 4u);
}

TEST(TriggerCacheTest, StatsConsistentUnderConcurrency) {
  TriggerCache cache(64, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  }, /*num_shards=*/4);
  constexpr int kThreads = 4;
  constexpr int kPins = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < kPins; ++i) {
        (void)cache.Pin(static_cast<TriggerId>(i % 32));
      }
    });
  }
  for (auto& th : threads) th.join();
  auto st = cache.stats();
  // Every pin is exactly one hit or one miss.
  EXPECT_EQ(st.hits + st.misses,
            static_cast<uint64_t>(kThreads) * kPins);
  EXPECT_EQ(st.loads_failed, 0u);
  EXPECT_EQ(cache.size(), 32u);
}

TEST(TriggerCacheTest, PaperSizingExample) {
  // §5.1: with 4 KB per description and a 64 MB cache, 16,384 trigger
  // descriptions fit simultaneously.
  constexpr size_t kCacheBytes = 64ull << 20;
  constexpr size_t kPerTrigger = 4096;
  TriggerCache cache(kCacheBytes / kPerTrigger,
                     [&](TriggerId id) -> Result<TriggerHandle> {
                       return MakeTrigger(id);
                     });
  EXPECT_EQ(cache.capacity(), 16384u);
}

}  // namespace
}  // namespace tman
