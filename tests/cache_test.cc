#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cache/trigger_cache.h"
#include "core/trigger.h"

namespace tman {
namespace {

TriggerHandle MakeTrigger(TriggerId id) {
  auto t = std::make_shared<TriggerRuntime>();
  t->id = id;
  t->name = "t" + std::to_string(id);
  return t;
}

TEST(TriggerCacheTest, LoadsOnMissHitsAfter) {
  std::atomic<int> loads{0};
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  auto h1 = cache.Pin(1);
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ((*h1)->id, 1u);
  EXPECT_EQ(loads.load(), 1);
  auto h2 = cache.Pin(1);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(loads.load(), 1);  // hit, no reload
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TriggerCacheTest, LruEviction) {
  std::atomic<int> loads{0};
  TriggerCache cache(2, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(1).ok());
  ASSERT_TRUE(cache.Pin(2).ok());
  ASSERT_TRUE(cache.Pin(3).ok());  // evicts 1 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  ASSERT_TRUE(cache.Pin(2).ok());  // still resident
  EXPECT_EQ(loads.load(), 3);
  ASSERT_TRUE(cache.Pin(1).ok());  // reload
  EXPECT_EQ(loads.load(), 4);
}

TEST(TriggerCacheTest, TouchOnHitProtectsFromEviction) {
  TriggerCache cache(2, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(1).ok());
  ASSERT_TRUE(cache.Pin(2).ok());
  ASSERT_TRUE(cache.Pin(1).ok());  // 1 becomes MRU
  ASSERT_TRUE(cache.Pin(3).ok());  // evicts 2, not 1
  EXPECT_EQ(cache.stats().misses, 3u);
  ASSERT_TRUE(cache.Pin(1).ok());
  EXPECT_EQ(cache.stats().misses, 3u);  // 1 still cached
}

TEST(TriggerCacheTest, EvictedButPinnedHandleStaysAlive) {
  TriggerCache cache(1, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  auto pinned = cache.Pin(1);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(cache.Pin(2).ok());  // evicts 1's slot
  EXPECT_EQ(cache.size(), 1u);
  // The shared_ptr pin keeps the description valid.
  EXPECT_EQ((*pinned)->name, "t1");
}

TEST(TriggerCacheTest, PutSeedsWithoutLoader) {
  std::atomic<int> loads{0};
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  cache.Put(9, MakeTrigger(9));
  ASSERT_TRUE(cache.Pin(9).ok());
  EXPECT_EQ(loads.load(), 0);
}

TEST(TriggerCacheTest, InvalidateForcesReload) {
  std::atomic<int> loads{0};
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(5).ok());
  cache.Invalidate(5);
  ASSERT_TRUE(cache.Pin(5).ok());
  EXPECT_EQ(loads.load(), 2);
  cache.Invalidate(12345);  // unknown id: no-op
}

TEST(TriggerCacheTest, LoaderFailurePropagates) {
  TriggerCache cache(4, [&](TriggerId) -> Result<TriggerHandle> {
    return Status::NotFound("gone");
  });
  auto r = cache.Pin(1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(cache.stats().loads_failed, 1u);
}

TEST(TriggerCacheTest, ClearEmptiesEverything) {
  TriggerCache cache(4, [&](TriggerId id) -> Result<TriggerHandle> {
    return MakeTrigger(id);
  });
  ASSERT_TRUE(cache.Pin(1).ok());
  ASSERT_TRUE(cache.Pin(2).ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TriggerCacheTest, ConcurrentPinsAreSafe) {
  std::atomic<int> loads{0};
  TriggerCache cache(8, [&](TriggerId id) -> Result<TriggerHandle> {
    ++loads;
    std::this_thread::yield();
    return MakeTrigger(id);
  });
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &errors, t] {
      for (int i = 0; i < 500; ++i) {
        auto h = cache.Pin(static_cast<TriggerId>((i + t) % 16));
        if (!h.ok() || (*h)->id != static_cast<TriggerId>((i + t) % 16)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(cache.size(), 8u);  // at capacity
}

TEST(TriggerCacheTest, PaperSizingExample) {
  // §5.1: with 4 KB per description and a 64 MB cache, 16,384 trigger
  // descriptions fit simultaneously.
  constexpr size_t kCacheBytes = 64ull << 20;
  constexpr size_t kPerTrigger = 4096;
  TriggerCache cache(kCacheBytes / kPerTrigger,
                     [&](TriggerId id) -> Result<TriggerHandle> {
                       return MakeTrigger(id);
                     });
  EXPECT_EQ(cache.capacity(), 16384u);
}

}  // namespace
}  // namespace tman
