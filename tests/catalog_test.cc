#include <gtest/gtest.h>

#include "catalog/trigger_catalog.h"

namespace tman {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    catalog_ = std::make_unique<TriggerCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Open().ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerCatalog> catalog_;
};

TEST_F(CatalogTest, TriggerSetsLifecycle) {
  auto id = catalog_->CreateTriggerSet("alerts", "web alerts");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(catalog_->CreateTriggerSet("alerts", "dup").ok());
  auto row = catalog_->GetTriggerSet("ALERTS");
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ((*row)->ts_id, *id);
  EXPECT_EQ((*row)->comments, "web alerts");
  EXPECT_TRUE((*row)->is_enabled);

  ASSERT_TRUE(catalog_->SetTriggerSetEnabled("alerts", false).ok());
  EXPECT_FALSE((*catalog_->GetTriggerSet("alerts"))->is_enabled);
  EXPECT_FALSE(catalog_->SetTriggerSetEnabled("nope", true).ok());
  auto by_id = catalog_->GetTriggerSetById(*id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_TRUE(by_id->has_value());
}

TEST_F(CatalogTest, TriggerRowsLifecycle) {
  auto ts = catalog_->CreateTriggerSet("s", "");
  ASSERT_TRUE(ts.ok());
  auto id1 = catalog_->InsertTrigger("t1", *ts, "c", "create trigger t1 ...");
  auto id2 = catalog_->InsertTrigger("t2", *ts, "", "create trigger t2 ...");
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_FALSE(catalog_->InsertTrigger("t1", *ts, "", "dup").ok());

  auto byname = catalog_->GetTrigger("T1");
  ASSERT_TRUE(byname.ok() && byname->has_value());
  EXPECT_EQ((*byname)->trigger_id, *id1);
  EXPECT_EQ((*byname)->trigger_text, "create trigger t1 ...");

  auto byid = catalog_->GetTriggerById(*id2);
  ASSERT_TRUE(byid.ok() && byid->has_value());
  EXPECT_EQ((*byid)->name, "t2");

  EXPECT_EQ(*catalog_->NumTriggers(), 2u);
  ASSERT_TRUE(catalog_->SetTriggerEnabled("t1", false).ok());
  EXPECT_FALSE((*catalog_->GetTrigger("t1"))->is_enabled);

  ASSERT_TRUE(catalog_->DeleteTrigger("t1").ok());
  EXPECT_FALSE((*catalog_->GetTrigger("t1")).has_value());
  EXPECT_FALSE(catalog_->DeleteTrigger("t1").ok());
  EXPECT_EQ(*catalog_->NumTriggers(), 1u);
}

TEST_F(CatalogTest, SignatureRows) {
  SignatureRow row;
  row.sig_id = 5;
  row.data_src_id = 2;
  row.signature_desc = "[ds=2 on insert when (t.x = CONSTANT_1)]";
  row.const_table_name = "const_table_5";
  row.constant_set_size = 1;
  row.constant_set_organization = OrgType::kMemoryList;
  ASSERT_TRUE(catalog_->InsertSignature(row).ok());

  ASSERT_TRUE(
      catalog_->UpdateSignatureStats(5, 4000, OrgType::kMemoryIndex).ok());
  auto all = catalog_->AllSignatures();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].constant_set_size, 4000u);
  EXPECT_EQ((*all)[0].constant_set_organization, OrgType::kMemoryIndex);
  EXPECT_FALSE(
      catalog_->UpdateSignatureStats(99, 1, OrgType::kMemoryList).ok());
  EXPECT_EQ(*catalog_->MaxSignatureId(), 5u);
}

TEST_F(CatalogTest, IdCountersSurviveReopen) {
  auto ts = catalog_->CreateTriggerSet("s", "");
  ASSERT_TRUE(ts.ok());
  auto id1 = catalog_->InsertTrigger("t1", *ts, "", "text1");
  ASSERT_TRUE(id1.ok());

  // Reopen a fresh catalog object over the same database.
  TriggerCatalog reopened(db_.get());
  ASSERT_TRUE(reopened.Open().ok());
  auto id2 = reopened.InsertTrigger("t2", *ts, "", "text2");
  ASSERT_TRUE(id2.ok());
  EXPECT_GT(*id2, *id1);  // no id reuse
  auto t1 = reopened.GetTrigger("t1");
  ASSERT_TRUE(t1.ok() && t1->has_value());
  EXPECT_EQ((*t1)->trigger_text, "text1");
}

TEST_F(CatalogTest, AllTriggersEnumerates) {
  auto ts = catalog_->CreateTriggerSet("s", "");
  ASSERT_TRUE(ts.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(catalog_->InsertTrigger("t" + std::to_string(i), *ts, "",
                                        "text")
                    .ok());
  }
  auto all = catalog_->AllTriggers();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20u);
}

}  // namespace
}  // namespace tman
