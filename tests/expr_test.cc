#include <gtest/gtest.h>

#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/rewrite.h"
#include "parser/parser.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest()
      : schema_({{"name", DataType::kVarchar},
                 {"salary", DataType::kFloat},
                 {"dept", DataType::kInt}}),
        tuple_({Value::String("Bob"), Value::Float(85000), Value::Int(3)}) {
    bindings_.Bind("emp", &schema_, &tuple_);
  }

  Result<Value> Eval(const std::string& text) {
    return EvalExpr(Parse(text), bindings_);
  }
  Result<bool> Pred(const std::string& text) {
    return EvalPredicate(Parse(text), bindings_);
  }

  Schema schema_;
  Tuple tuple_;
  Bindings bindings_;
};

TEST_F(ExprEvalTest, Literals) {
  EXPECT_EQ(Eval("42")->as_int(), 42);
  EXPECT_DOUBLE_EQ(Eval("2.5")->as_float(), 2.5);
  EXPECT_EQ(Eval("'hi'")->as_string(), "hi");
  EXPECT_TRUE(Eval("null")->is_null());
}

TEST_F(ExprEvalTest, ColumnRefsQualifiedAndNot) {
  EXPECT_EQ(Eval("emp.name")->as_string(), "Bob");
  EXPECT_EQ(Eval("dept")->as_int(), 3);
  EXPECT_FALSE(Eval("emp.bogus").ok());
  EXPECT_FALSE(Eval("zorp.name").ok());
}

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3")->as_int(), 7);
  EXPECT_EQ(Eval("(1 + 2) * 3")->as_int(), 9);
  EXPECT_EQ(Eval("7 / 2")->as_int(), 3);
  EXPECT_DOUBLE_EQ(Eval("7.0 / 2")->as_float(), 3.5);
  EXPECT_EQ(Eval("-5 + 2")->as_int(), -3);
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("'a' * 2").ok());
}

TEST_F(ExprEvalTest, StringConcatViaPlus) {
  EXPECT_EQ(Eval("'foo' + 'bar'")->as_string(), "foobar");
}

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(*Pred("emp.salary > 80000"));
  EXPECT_FALSE(*Pred("emp.salary > 90000"));
  EXPECT_TRUE(*Pred("emp.name = 'Bob'"));
  EXPECT_TRUE(*Pred("emp.name <> 'Alice'"));
  EXPECT_TRUE(*Pred("emp.dept <= 3"));
  EXPECT_FALSE(Pred("emp.name > 5").ok());  // type error
}

TEST_F(ExprEvalTest, BooleanLogicWithShortCircuit) {
  EXPECT_TRUE(*Pred("emp.dept = 3 and emp.salary > 1000"));
  EXPECT_FALSE(*Pred("emp.dept = 4 and emp.bogus = 1"));  // short-circuits
  EXPECT_TRUE(*Pred("emp.dept = 3 or emp.bogus = 1"));
  EXPECT_TRUE(*Pred("not (emp.dept = 4)"));
}

TEST_F(ExprEvalTest, NullSemantics) {
  // Comparisons with NULL are unknown -> predicate false.
  EXPECT_FALSE(*Pred("null = null"));
  EXPECT_FALSE(*Pred("1 < null"));
  EXPECT_FALSE(*Pred("not (1 = null)"));  // NOT unknown = unknown
  // AND/OR three-valued behavior.
  EXPECT_FALSE(*Pred("1 = null and true"));
  EXPECT_TRUE(*Pred("1 = null or true"));
  EXPECT_FALSE(*Pred("1 = null or false"));
  EXPECT_TRUE(Eval("1 + null")->is_null());
}

TEST_F(ExprEvalTest, Functions) {
  EXPECT_EQ(Eval("abs(-7)")->as_int(), 7);
  EXPECT_DOUBLE_EQ(Eval("abs(0 - 2.5)")->as_float(), 2.5);
  EXPECT_EQ(Eval("length('hello')")->as_int(), 5);
  EXPECT_EQ(Eval("upper(emp.name)")->as_string(), "BOB");
  EXPECT_EQ(Eval("lower('ABC')")->as_string(), "abc");
  EXPECT_EQ(Eval("round(2.6)")->as_int(), 3);
  EXPECT_EQ(Eval("mod(10, 3)")->as_int(), 1);
  EXPECT_FALSE(Eval("mod(1, 0)").ok());
  EXPECT_FALSE(Eval("nosuchfn(1)").ok());
  EXPECT_FALSE(Eval("abs(1, 2)").ok());
}

TEST_F(ExprEvalTest, NullConditionIsTrue) {
  auto r = EvalPredicate(nullptr, bindings_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(ExprEvalTest, PlaceholderCannotBeEvaluated) {
  EXPECT_FALSE(EvalExpr(MakePlaceholder(1), bindings_).ok());
}

TEST(ExprStructureTest, ToStringCanonical) {
  ExprPtr e = Parse("emp.salary > 80000 and emp.dept = 3");
  EXPECT_EQ(ExprToString(e),
            "((emp.salary > 80000) and (emp.dept = 3))");
}

TEST(ExprStructureTest, EqualsAndHash) {
  ExprPtr a = Parse("x.a > 5 and x.b = 'q'");
  ExprPtr b = Parse("x.a > 5 and x.b = 'q'");
  ExprPtr c = Parse("x.a > 6 and x.b = 'q'");
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_EQ(ExprHash(a), ExprHash(b));
  EXPECT_FALSE(ExprEquals(a, c));
  EXPECT_NE(ExprHash(a), ExprHash(c));
}

TEST(ExprStructureTest, ReferencedTupleVars) {
  ExprPtr e = Parse("a.x = b.y and a.z > 3 and c.w < 2");
  auto vars = ReferencedTupleVars(e);
  EXPECT_EQ(vars, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ExprStructureTest, ContainsConstant) {
  EXPECT_TRUE(ContainsConstant(Parse("a.x = 5")));
  EXPECT_FALSE(ContainsConstant(Parse("a.x = b.y")));
}

TEST(ExprStructureTest, ComparisonHelpers) {
  EXPECT_EQ(FlipComparison(BinOp::kLt), BinOp::kGt);
  EXPECT_EQ(FlipComparison(BinOp::kEq), BinOp::kEq);
  EXPECT_EQ(NegateComparison(BinOp::kLe), BinOp::kGt);
  EXPECT_EQ(NegateComparison(BinOp::kEq), BinOp::kNe);
  EXPECT_TRUE(IsComparison(BinOp::kGe));
  EXPECT_FALSE(IsComparison(BinOp::kAdd));
}

TEST(RewriteTest, QualifyColumnRefs) {
  ExprPtr e = Parse("salary > 100 and name = 'x'");
  auto resolver = [](const std::string& attr) -> Result<std::string> {
    if (attr == "salary" || attr == "name") return std::string("emp");
    return Status::NotFound("no attr " + attr);
  };
  auto q = QualifyColumnRefs(e, resolver, nullptr);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExprToString(*q),
            "((emp.salary > 100) and (emp.name = 'x'))");
}

TEST(RewriteTest, QualifyFailsOnUnknownAttr) {
  ExprPtr e = Parse("wat > 1");
  auto resolver = [](const std::string&) -> Result<std::string> {
    return Status::NotFound("nope");
  };
  EXPECT_FALSE(QualifyColumnRefs(e, resolver, nullptr).ok());
}

TEST(RewriteTest, BindPlaceholders) {
  // (t.a > CONSTANT_1) and (t.b = CONSTANT_2)
  ExprPtr e = MakeBinary(
      BinOp::kAnd,
      MakeBinary(BinOp::kGt, MakeColumnRef("t", "a"), MakePlaceholder(1)),
      MakeBinary(BinOp::kEq, MakeColumnRef("t", "b"), MakePlaceholder(2)));
  auto bound = BindPlaceholders(e, {Value::Int(10), Value::String("x")});
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(ExprToString(*bound), "((t.a > 10) and (t.b = 'x'))");
  EXPECT_FALSE(BindPlaceholders(e, {Value::Int(10)}).ok());  // missing const
}

TEST(BindingsTest, AmbiguousUnqualifiedAttr) {
  Schema s1({{"x", DataType::kInt}});
  Schema s2({{"x", DataType::kInt}});
  Tuple t1({Value::Int(1)}), t2({Value::Int(2)});
  Bindings b;
  b.Bind("a", &s1, &t1);
  b.Bind("b", &s2, &t2);
  EXPECT_FALSE(b.Lookup("", "x").ok());
  EXPECT_EQ(b.Lookup("a", "x")->as_int(), 1);
  EXPECT_EQ(b.Lookup("b", "x")->as_int(), 2);
}

}  // namespace
}  // namespace tman
