#include <gtest/gtest.h>

#include "db/sql.h"

namespace tman {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    Run("CREATE TABLE emp (name varchar(32), salary float, dept int)");
    Run("INSERT INTO emp VALUES ('Bob', 85000, 3)");
    Run("INSERT INTO emp VALUES ('Alice', 95000.5, 3)");
    Run("INSERT INTO emp VALUES ('Carl', 45000, 4)");
  }

  SqlResult Run(const std::string& sql) {
    auto r = ExecuteSql(db_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : SqlResult{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlTest, SelectStar) {
  auto r = Run("SELECT * FROM emp");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.column_names,
            (std::vector<std::string>{"name", "salary", "dept"}));
}

TEST_F(SqlTest, SelectProjectionAndWhere) {
  auto r = Run("SELECT name FROM emp WHERE salary > 80000");
  EXPECT_EQ(r.rows.size(), 2u);
  for (const Tuple& row : r.rows) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_NE(row.at(0).as_string(), "Carl");
  }
}

TEST_F(SqlTest, SelectWithComplexPredicate) {
  auto r = Run("SELECT name FROM emp WHERE dept = 3 AND salary < 90000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(0).as_string(), "Bob");
}

TEST_F(SqlTest, UpdateWithWhere) {
  auto r = Run("UPDATE emp SET salary = salary * 2 WHERE name = 'Bob'");
  EXPECT_EQ(r.rows_affected, 1u);
  auto check = Run("SELECT salary FROM emp WHERE name = 'Bob'");
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(check.rows[0].at(0).as_float(), 170000);
}

TEST_F(SqlTest, UpdateAllRows) {
  auto r = Run("UPDATE emp SET dept = 9");
  EXPECT_EQ(r.rows_affected, 3u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE dept = 9").rows.size(), 3u);
}

TEST_F(SqlTest, DeleteWithWhere) {
  auto r = Run("DELETE FROM emp WHERE dept = 3");
  EXPECT_EQ(r.rows_affected, 2u);
  EXPECT_EQ(Run("SELECT * FROM emp").rows.size(), 1u);
}

TEST_F(SqlTest, MultiRowInsert) {
  auto r = Run("INSERT INTO emp VALUES ('D', 1, 1), ('E', 2, 2)");
  EXPECT_EQ(r.rows_affected, 2u);
  EXPECT_EQ(Run("SELECT * FROM emp").rows.size(), 5u);
}

TEST_F(SqlTest, InsertWithExpressions) {
  Run("INSERT INTO emp VALUES (upper('zed'), 10 * 100, 1 + 1)");
  auto r = Run("SELECT name, salary, dept FROM emp WHERE name = 'ZED'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].at(1).as_float(), 1000);
  EXPECT_EQ(r.rows[0].at(2).as_int(), 2);
}

TEST_F(SqlTest, IndexAcceleratedEqualityWhere) {
  Run("CREATE INDEX idx_name ON emp (name)");
  // With the index, the equality WHERE routes through IndexLookup; the
  // heap is not scanned. Verify correctness (stats-level verification is
  // in the benches).
  auto r = Run("SELECT salary FROM emp WHERE name = 'Alice'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].at(0).as_float(), 95000.5);
  // Residual predicate still applied on index hits.
  auto r2 = Run("SELECT * FROM emp WHERE name = 'Alice' AND dept = 99");
  EXPECT_TRUE(r2.rows.empty());
}

TEST_F(SqlTest, QualifiedColumnInUpdateSet) {
  auto r = Run("UPDATE emp SET emp.dept = 5 WHERE name = 'Carl'");
  EXPECT_EQ(r.rows_affected, 1u);
}

TEST_F(SqlTest, StringEscapingRoundTrip) {
  Run("INSERT INTO emp VALUES ('O''Brien', 1, 1)");
  auto r = Run("SELECT name FROM emp WHERE name = 'O''Brien'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(0).as_string(), "O'Brien");
}

TEST_F(SqlTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(ExecuteSql(db_.get(), "SELECT * FROM missing").ok());
  EXPECT_FALSE(ExecuteSql(db_.get(), "SELECT bogus FROM emp").ok());
  EXPECT_FALSE(ExecuteSql(db_.get(), "FROB emp").ok());
  EXPECT_FALSE(ExecuteSql(db_.get(), "INSERT INTO emp VALUES (1)").ok());
  EXPECT_FALSE(
      ExecuteSql(db_.get(), "SELECT * FROM emp WHERE name > 3").ok());
  EXPECT_FALSE(ExecuteSql(db_.get(), "SELECT * FROM emp trailing").ok());
}

TEST_F(SqlTest, CreateTableAndIndexViaSql) {
  Run("CREATE TABLE t2 (a int, b varchar)");
  Run("CREATE INDEX idx_a ON t2 (a)");
  Run("INSERT INTO t2 VALUES (1, 'x')");
  EXPECT_EQ(Run("SELECT * FROM t2 WHERE a = 1").rows.size(), 1u);
  EXPECT_FALSE(ExecuteSql(db_.get(), "CREATE TABLE t2 (a int)").ok());
}

TEST_F(SqlTest, UpdateTriggersHookWithOldAndNew) {
  std::vector<UpdateDescriptor> captured;
  ASSERT_TRUE(db_->SetUpdateHook("emp", [&](const UpdateDescriptor& u) {
                  captured.push_back(u);
                }).ok());
  Run("UPDATE emp SET salary = 1 WHERE name = 'Bob'");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].op, OpCode::kUpdate);
  EXPECT_DOUBLE_EQ(captured[0].old_tuple->at(1).as_float(), 85000);
}

}  // namespace
}  // namespace tman
