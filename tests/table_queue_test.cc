#include <gtest/gtest.h>

#include <deque>

#include "storage/table_queue.h"
#include "types/update_descriptor.h"
#include "util/random.h"

namespace tman {
namespace {

class TableQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    auto meta = TableQueue::Create(pool_.get());
    ASSERT_TRUE(meta.ok());
    meta_page_ = *meta;
    queue_ = std::make_unique<TableQueue>(pool_.get(), meta_page_);
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  PageId meta_page_ = kInvalidPageId;
  std::unique_ptr<TableQueue> queue_;
};

TEST_F(TableQueueTest, FifoOrder) {
  ASSERT_TRUE(queue_->Enqueue("a").ok());
  ASSERT_TRUE(queue_->Enqueue("b").ok());
  ASSERT_TRUE(queue_->Enqueue("c").ok());
  EXPECT_EQ(*queue_->Size(), 3u);
  EXPECT_EQ(*queue_->Dequeue(), "a");
  EXPECT_EQ(*queue_->Dequeue(), "b");
  EXPECT_EQ(*queue_->Dequeue(), "c");
  EXPECT_TRUE(queue_->Empty());
}

TEST_F(TableQueueTest, DequeueEmptyIsNotFound) {
  auto r = queue_->Dequeue();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(TableQueueTest, InterleavedEnqueueDequeue) {
  ASSERT_TRUE(queue_->Enqueue("1").ok());
  EXPECT_EQ(*queue_->Dequeue(), "1");
  ASSERT_TRUE(queue_->Enqueue("2").ok());
  ASSERT_TRUE(queue_->Enqueue("3").ok());
  EXPECT_EQ(*queue_->Dequeue(), "2");
  ASSERT_TRUE(queue_->Enqueue("4").ok());
  EXPECT_EQ(*queue_->Dequeue(), "3");
  EXPECT_EQ(*queue_->Dequeue(), "4");
  EXPECT_TRUE(queue_->Empty());
}

TEST_F(TableQueueTest, SpillsAcrossPagesAndReclaims) {
  std::string payload(600, 'p');
  for (int i = 0; i < 200; ++i) {
    payload[0] = static_cast<char>('a' + (i % 26));
    ASSERT_TRUE(queue_->Enqueue(payload).ok());
  }
  EXPECT_EQ(*queue_->Size(), 200u);
  for (int i = 0; i < 200; ++i) {
    auto r = queue_->Dequeue();
    ASSERT_TRUE(r.ok()) << "i=" << i;
    EXPECT_EQ((*r)[0], static_cast<char>('a' + (i % 26)));
  }
  EXPECT_TRUE(queue_->Empty());
  // Drained pages were deallocated; enqueue again works fine.
  ASSERT_TRUE(queue_->Enqueue("again").ok());
  EXPECT_EQ(*queue_->Dequeue(), "again");
}

TEST_F(TableQueueTest, ExactPageBoundaryDrain) {
  // Fill a page, drain it fully, then enqueue so the tail moves: the
  // stale head pointer must step over the exhausted page.
  std::string payload(1000, 'x');
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue_->Enqueue(payload).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue_->Dequeue().ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(queue_->Enqueue(payload).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue_->Dequeue().ok()) << "i=" << i;
  }
  EXPECT_TRUE(queue_->Empty());
}

TEST_F(TableQueueTest, PersistsAcrossReopen) {
  ASSERT_TRUE(queue_->Enqueue("durable-1").ok());
  ASSERT_TRUE(queue_->Enqueue("durable-2").ok());
  ASSERT_TRUE(pool_->FlushAll().ok());
  // Reopen a second queue object over the same pages (same "disk").
  TableQueue reopened(pool_.get(), meta_page_);
  EXPECT_EQ(*reopened.Size(), 2u);
  EXPECT_EQ(*reopened.Dequeue(), "durable-1");
  EXPECT_EQ(*reopened.Dequeue(), "durable-2");
}

TEST_F(TableQueueTest, CarriesUpdateDescriptors) {
  auto token = UpdateDescriptor::Update(
      5, Tuple({Value::Int(1), Value::String("old")}),
      Tuple({Value::Int(1), Value::String("new")}));
  std::string record;
  token.Serialize(&record);
  ASSERT_TRUE(queue_->Enqueue(record).ok());
  auto back = queue_->Dequeue();
  ASSERT_TRUE(back.ok());
  auto decoded = UpdateDescriptor::Deserialize(*back);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, OpCode::kUpdate);
  EXPECT_EQ(decoded->new_tuple->at(1).as_string(), "new");
}

TEST_F(TableQueueTest, RandomizedFifoProperty) {
  Random rng(5);
  std::deque<std::string> model;
  int next = 0;
  for (int step = 0; step < 3000; ++step) {
    if (rng.NextDouble() < 0.55 || model.empty()) {
      std::string payload =
          "msg-" + std::to_string(next++) +
          std::string(rng.Uniform(300), 'z');
      ASSERT_TRUE(queue_->Enqueue(payload).ok());
      model.push_back(payload);
    } else {
      auto r = queue_->Dequeue();
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(*r, model.front());
      model.pop_front();
    }
  }
  EXPECT_EQ(*queue_->Size(), model.size());
}

}  // namespace
}  // namespace tman
