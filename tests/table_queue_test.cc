#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "storage/table_queue.h"
#include "types/update_descriptor.h"
#include "util/random.h"

namespace tman {
namespace {

class TableQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    auto meta = TableQueue::Create(pool_.get());
    ASSERT_TRUE(meta.ok());
    meta_page_ = *meta;
    queue_ = std::make_unique<TableQueue>(pool_.get(), meta_page_);
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  PageId meta_page_ = kInvalidPageId;
  std::unique_ptr<TableQueue> queue_;
};

TEST_F(TableQueueTest, FifoOrder) {
  ASSERT_TRUE(queue_->Enqueue("a").ok());
  ASSERT_TRUE(queue_->Enqueue("b").ok());
  ASSERT_TRUE(queue_->Enqueue("c").ok());
  EXPECT_EQ(*queue_->Size(), 3u);
  EXPECT_EQ(*queue_->Dequeue(), "a");
  EXPECT_EQ(*queue_->Dequeue(), "b");
  EXPECT_EQ(*queue_->Dequeue(), "c");
  EXPECT_TRUE(queue_->Empty());
}

TEST_F(TableQueueTest, DequeueEmptyIsNotFound) {
  auto r = queue_->Dequeue();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(TableQueueTest, InterleavedEnqueueDequeue) {
  ASSERT_TRUE(queue_->Enqueue("1").ok());
  EXPECT_EQ(*queue_->Dequeue(), "1");
  ASSERT_TRUE(queue_->Enqueue("2").ok());
  ASSERT_TRUE(queue_->Enqueue("3").ok());
  EXPECT_EQ(*queue_->Dequeue(), "2");
  ASSERT_TRUE(queue_->Enqueue("4").ok());
  EXPECT_EQ(*queue_->Dequeue(), "3");
  EXPECT_EQ(*queue_->Dequeue(), "4");
  EXPECT_TRUE(queue_->Empty());
}

TEST_F(TableQueueTest, SpillsAcrossPagesAndReclaims) {
  std::string payload(600, 'p');
  for (int i = 0; i < 200; ++i) {
    payload[0] = static_cast<char>('a' + (i % 26));
    ASSERT_TRUE(queue_->Enqueue(payload).ok());
  }
  EXPECT_EQ(*queue_->Size(), 200u);
  for (int i = 0; i < 200; ++i) {
    auto r = queue_->Dequeue();
    ASSERT_TRUE(r.ok()) << "i=" << i;
    EXPECT_EQ((*r)[0], static_cast<char>('a' + (i % 26)));
  }
  EXPECT_TRUE(queue_->Empty());
  // Drained pages were deallocated; enqueue again works fine.
  ASSERT_TRUE(queue_->Enqueue("again").ok());
  EXPECT_EQ(*queue_->Dequeue(), "again");
}

TEST_F(TableQueueTest, ExactPageBoundaryDrain) {
  // Fill a page, drain it fully, then enqueue so the tail moves: the
  // stale head pointer must step over the exhausted page.
  std::string payload(1000, 'x');
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue_->Enqueue(payload).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue_->Dequeue().ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(queue_->Enqueue(payload).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue_->Dequeue().ok()) << "i=" << i;
  }
  EXPECT_TRUE(queue_->Empty());
}

TEST_F(TableQueueTest, PersistsAcrossReopen) {
  ASSERT_TRUE(queue_->Enqueue("durable-1").ok());
  ASSERT_TRUE(queue_->Enqueue("durable-2").ok());
  ASSERT_TRUE(pool_->FlushAll().ok());
  // Reopen a second queue object over the same pages (same "disk").
  TableQueue reopened(pool_.get(), meta_page_);
  EXPECT_EQ(*reopened.Size(), 2u);
  EXPECT_EQ(*reopened.Dequeue(), "durable-1");
  EXPECT_EQ(*reopened.Dequeue(), "durable-2");
}

TEST_F(TableQueueTest, CarriesUpdateDescriptors) {
  auto token = UpdateDescriptor::Update(
      5, Tuple({Value::Int(1), Value::String("old")}),
      Tuple({Value::Int(1), Value::String("new")}));
  std::string record;
  token.Serialize(&record);
  ASSERT_TRUE(queue_->Enqueue(record).ok());
  auto back = queue_->Dequeue();
  ASSERT_TRUE(back.ok());
  auto decoded = UpdateDescriptor::Deserialize(*back);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, OpCode::kUpdate);
  EXPECT_EQ(decoded->new_tuple->at(1).as_string(), "new");
}

// --- crash-consistency: reopen after torn writes and mid-operation
// faults (the staging-queue half of the durable-ingestion contract) ----

TEST_F(TableQueueTest, RecoverTornDropsOnlyTornFinalRecord) {
  // Four records, flushed to disk.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue_->Enqueue("record-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(pool_->FlushAll().ok());

  // Simulate the mid-enqueue torn write for the FINAL record: its slot
  // directory entry landed but its payload bytes did not. Locate the
  // record through the on-disk meta page and zero its payload directly
  // on the disk, bypassing the pool.
  Page meta;
  ASSERT_TRUE(disk_->ReadPage(meta_page_, &meta).ok());
  PageId tail_page;
  std::memcpy(&tail_page, meta.data + 8, 4);
  Page tail;
  ASSERT_TRUE(disk_->ReadPage(tail_page, &tail).ok());
  uint16_t slots;
  std::memcpy(&slots, tail.data, 2);
  ASSERT_GE(slots, 1);
  uint16_t off, len;
  std::memcpy(&off, tail.data + 8 + (slots - 1) * 8, 2);
  std::memcpy(&len, tail.data + 8 + (slots - 1) * 8 + 2, 2);
  std::memset(tail.data + off, 0, len);
  ASSERT_TRUE(disk_->WritePage(tail_page, tail).ok());

  // Reopen over a fresh pool (the old pool's cached frames are the dead
  // process's memory). Recovery drops exactly the torn final record.
  BufferPool fresh(disk_.get(), 64);
  TableQueue reopened(&fresh, meta_page_);
  auto dropped = reopened.RecoverTorn();
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(*dropped, 1u);
  EXPECT_EQ(*reopened.Size(), 3u);
  for (int i = 0; i < 3; ++i) {
    auto r = reopened.Dequeue();
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, "record-" + std::to_string(i));
  }
  EXPECT_TRUE(reopened.Empty());
}

TEST_F(TableQueueTest, RecoverTornCleanQueueDropsNothing) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue_->Enqueue("ok-" + std::to_string(i)).ok());
  }
  auto dropped = queue_->RecoverTorn();
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0u);
  EXPECT_EQ(*queue_->Size(), 5u);
}

TEST_F(TableQueueTest, RecoverTornRejectsNonFinalCorruption) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue_->Enqueue("rec-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(pool_->FlushAll().ok());
  // Corrupt the FIRST record on disk: not a torn tail, real corruption.
  Page meta;
  ASSERT_TRUE(disk_->ReadPage(meta_page_, &meta).ok());
  PageId head_page;
  std::memcpy(&head_page, meta.data, 4);
  Page head;
  ASSERT_TRUE(disk_->ReadPage(head_page, &head).ok());
  uint16_t off;
  std::memcpy(&off, head.data + 8, 2);
  head.data[off] ^= 0x7f;
  ASSERT_TRUE(disk_->WritePage(head_page, head).ok());

  BufferPool fresh(disk_.get(), 64);
  TableQueue reopened(&fresh, meta_page_);
  auto dropped = reopened.RecoverTorn();
  EXPECT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kCorruption);
}

TEST_F(TableQueueTest, ShortWriteDuringFlushRetriesWithoutLoss) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue_->Enqueue("flush-" + std::to_string(i)).ok());
  }
  // The first flushed page tears: FlushAll must report the error and
  // keep the page dirty, so the retry rewrites it in full.
  disk_->fault_injector()->ArmCountdown("disk.write.short", 0);
  EXPECT_FALSE(pool_->FlushAll().ok());
  disk_->fault_injector()->ClearAll();
  ASSERT_TRUE(pool_->FlushAll().ok());

  BufferPool fresh(disk_.get(), 64);
  TableQueue reopened(&fresh, meta_page_);
  EXPECT_EQ(*reopened.RecoverTorn(), 0u);
  EXPECT_EQ(*reopened.Size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(*reopened.Dequeue(), "flush-" + std::to_string(i));
  }
}

TEST_F(TableQueueTest, PushMetaFaultLosesAndDuplicatesNothing) {
  ASSERT_TRUE(queue_->Enqueue("a").ok());
  ASSERT_TRUE(queue_->Enqueue("b").ok());
  // Fault between the data-page write and the meta write: the enqueue
  // fails, and the meta (the authority) still describes {a, b}.
  disk_->fault_injector()->ArmCountdown("table_queue.push.meta", 0);
  EXPECT_FALSE(queue_->Enqueue("c").ok());
  disk_->fault_injector()->ClearAll();
  EXPECT_EQ(*queue_->Size(), 2u);
  // The caller's retry is not a duplicate: exactly one "c" comes out.
  ASSERT_TRUE(queue_->Enqueue("c").ok());
  ASSERT_TRUE(pool_->FlushAll().ok());

  BufferPool fresh(disk_.get(), 64);
  TableQueue reopened(&fresh, meta_page_);
  EXPECT_EQ(*reopened.RecoverTorn(), 0u);
  EXPECT_EQ(*reopened.Dequeue(), "a");
  EXPECT_EQ(*reopened.Dequeue(), "b");
  EXPECT_EQ(*reopened.Dequeue(), "c");
  EXPECT_TRUE(reopened.Empty());
}

TEST_F(TableQueueTest, PopMetaFaultLeavesRecordInQueue) {
  ASSERT_TRUE(queue_->Enqueue("keep-me").ok());
  ASSERT_TRUE(queue_->Enqueue("second").ok());
  // Fault between extracting the record and writing the meta: the pop
  // fails and must NOT consume the record.
  disk_->fault_injector()->ArmCountdown("table_queue.pop.meta", 0);
  EXPECT_FALSE(queue_->Dequeue().ok());
  disk_->fault_injector()->ClearAll();
  EXPECT_EQ(*queue_->Size(), 2u);
  EXPECT_EQ(*queue_->Dequeue(), "keep-me");  // exactly once
  EXPECT_EQ(*queue_->Dequeue(), "second");
  EXPECT_TRUE(queue_->Empty());
}

TEST_F(TableQueueTest, RandomizedFifoProperty) {
  Random rng(5);
  std::deque<std::string> model;
  int next = 0;
  for (int step = 0; step < 3000; ++step) {
    if (rng.NextDouble() < 0.55 || model.empty()) {
      std::string payload =
          "msg-" + std::to_string(next++) +
          std::string(rng.Uniform(300), 'z');
      ASSERT_TRUE(queue_->Enqueue(payload).ok());
      model.push_back(payload);
    } else {
      auto r = queue_->Dequeue();
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(*r, model.front());
      model.pop_front();
    }
  }
  EXPECT_EQ(*queue_->Size(), model.size());
}

}  // namespace
}  // namespace tman
