// Tests for online adaptive re-optimization: the constant-set organization
// swap (never dropping or double-reporting a match, under a 1000-seed
// deterministic interleaving sweep against a never-adapting shadow
// oracle), fault injection at the adapt.* sites, cost-based Gator join
// reorganization equivalence, and the `stats` / `adapt` console commands.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/trigger_manager.h"
#include "db/sql.h"
#include "network/gator.h"
#include "parser/parser.h"
#include "predindex/cost_model.h"
#include "predindex/predicate_index.h"
#include "predindex/reoptimizer.h"
#include "runtime/deterministic.h"
#include "util/fault_injector.h"
#include "util/random.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

Schema EmpSchema() {
  return Schema({{"name", DataType::kVarchar},
                 {"salary", DataType::kFloat},
                 {"dept", DataType::kInt}});
}

UpdateDescriptor EmpInsert(const std::string& name, double salary,
                           int64_t dept) {
  return UpdateDescriptor::Insert(
      1,
      Tuple({Value::String(name), Value::Float(salary), Value::Int(dept)}));
}

/// An eager adaptation policy for tests: any observed probe justifies a
/// switch the cost model likes even slightly, every round.
AdaptPolicy EagerPolicy() {
  AdaptPolicy policy;
  policy.min_probes = 1;
  policy.min_gain_ratio = 1.0;
  policy.cooldown_rounds = 0;
  return policy;
}

/// A predicate index whose classes stay on the (mismatched) list
/// organization until the re-optimizer intervenes: list_max is huge, so
/// size-triggered promotion never fires and any promotion observed is
/// the adaptive layer's doing.
OrgPolicy StuckOnListPolicy() {
  OrgPolicy policy;
  policy.list_max = 1u << 30;
  return policy;
}

class AdaptSwapTest : public ::testing::Test {
 protected:
  void Reset(const OrgPolicy& policy, FaultInjector* faults = nullptr) {
    db_ = std::make_unique<Database>();
    index_ = std::make_unique<PredicateIndex>(db_.get(), policy);
    ASSERT_TRUE(index_->RegisterDataSource(1, EmpSchema()).ok());
    shadow_db_ = std::make_unique<Database>();
    shadow_ = std::make_unique<PredicateIndex>(shadow_db_.get(), policy);
    ASSERT_TRUE(shadow_->RegisterDataSource(1, EmpSchema()).ok());
    ReoptimizerOptions options;
    options.policy = EagerPolicy();
    options.faults = faults;
    reopt_ = std::make_unique<ConstantSetReoptimizer>(index_.get(), &log_,
                                                      options);
  }

  /// Adds the same predicate to the adaptive index and the shadow oracle.
  void AddBoth(const std::string& predicate, TriggerId trigger) {
    for (PredicateIndex* target : {index_.get(), shadow_.get()}) {
      PredicateSpec spec;
      spec.data_source = 1;
      spec.op = OpCode::kInsert;
      spec.predicate = Parse(predicate);
      spec.trigger_id = trigger;
      auto r = target->AddPredicate(spec);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }

  /// Matches the token against both indexes and asserts the adaptive one
  /// (whatever organizations it has swapped to) reports exactly the
  /// shadow oracle's trigger set — no dropped, no doubled matches.
  std::multiset<TriggerId> MatchBothExpectEqual(
      const UpdateDescriptor& token) {
    std::vector<PredicateMatch> adaptive, oracle;
    EXPECT_TRUE(index_->Match(token, &adaptive).ok());
    EXPECT_TRUE(shadow_->Match(token, &oracle).ok());
    std::multiset<TriggerId> a, b;
    for (const auto& m : adaptive) a.insert(m.trigger_id);
    for (const auto& m : oracle) b.insert(m.trigger_id);
    EXPECT_EQ(a, b);
    return a;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Database> shadow_db_;
  std::unique_ptr<PredicateIndex> index_;
  std::unique_ptr<PredicateIndex> shadow_;
  AdaptationLog log_;
  std::unique_ptr<ConstantSetReoptimizer> reopt_;
};

TEST_F(AdaptSwapTest, ReoptimizerPromotesHotListToIndex) {
  Reset(StuckOnListPolicy());
  for (int d = 0; d < 64; ++d) {
    AddBoth("emp.dept = " + std::to_string(d), 100 + d);
  }
  auto before = index_->SignatureStats();
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0].stats.org, OrgType::kMemoryList);

  // Drive probes through the list so the cost model sees the fan-out.
  for (int i = 0; i < 64; ++i) {
    MatchBothExpectEqual(EmpInsert("x", 1.0, i % 64));
  }
  AdaptRoundReport report = reopt_->RunOnce();
  EXPECT_EQ(report.switched, 1u) << report.ToString();

  auto after = index_->SignatureStats();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].stats.org, OrgType::kMemoryIndex);
  EXPECT_EQ(after[0].stats.org_switches, 1u);
  EXPECT_GE(log_.total_applied(), 1u);

  // Post-swap matching still agrees with the never-adapted oracle.
  for (int i = 0; i < 64; ++i) {
    MatchBothExpectEqual(EmpInsert("y", 2.0, i));
  }
}

TEST_F(AdaptSwapTest, RangeSignaturePromotionUsesIntervalIndex) {
  Reset(StuckOnListPolicy());
  for (int i = 0; i < 48; ++i) {
    AddBoth("emp.salary > " + std::to_string(i * 1000), 500 + i);
  }
  for (int i = 0; i < 32; ++i) {
    MatchBothExpectEqual(EmpInsert("x", i * 1500.0, 0));
  }
  AdaptRoundReport report = reopt_->RunOnce();
  EXPECT_EQ(report.switched, 1u) << report.ToString();
  auto after = index_->SignatureStats();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].stats.org, OrgType::kMemoryIndex);
  EXPECT_TRUE(after[0].stats.has_range);
  // Range matching through the promoted interval index stays exact.
  for (int i = 0; i < 64; ++i) {
    MatchBothExpectEqual(EmpInsert("y", i * 777.0, 0));
  }
}

// The satellite's centerpiece: a 1000-seed deterministic sweep. Each seed
// interleaves three actors — a token producer/matcher, a predicate
// inserter (mutating the class under the re-optimizer's feet, which
// exercises the version-checked abort), and an adaptation actor — and
// every matched token is differentially checked against the
// never-adapting shadow oracle. Any dropped or double-fired match fails
// the exact multiset comparison; the trace makes a failing seed replay.
TEST_F(AdaptSwapTest, SeedSweepSwapNeverDropsOrDoublesMatches) {
  uint64_t total_switches = 0;
  uint64_t total_aborts = 0;
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    Reset(StuckOnListPolicy());
    for (int d = 0; d < 16; ++d) {
      AddBoth("emp.dept = " + std::to_string(d), 100 + d);
    }
    DeterministicScheduler sched(seed);
    Random rng(seed * 977);

    int tokens_left = 20;
    sched.AddActor("tok", [&] {
      if (tokens_left == 0) return false;
      --tokens_left;
      int64_t dept = static_cast<int64_t>(rng.Uniform(32));
      auto matched = MatchBothExpectEqual(EmpInsert("t", 1.0, dept));
      sched.Note("match dept=" + std::to_string(dept) + " -> " +
                 std::to_string(matched.size()));
      return true;
    });

    int inserts_left = 5;
    int next_dept = 16;
    sched.AddActor("ins", [&] {
      if (inserts_left == 0) return false;
      --inserts_left;
      AddBoth("emp.dept = " + std::to_string(next_dept), 100 + next_dept);
      ++next_dept;
      return true;
    });

    int rounds_left = 6;
    sched.AddActor("adapt", [&] {
      if (rounds_left == 0) return false;
      --rounds_left;
      AdaptRoundReport report = reopt_->RunOnce();
      total_switches += report.switched;
      total_aborts += report.aborted;
      EXPECT_EQ(report.errors, 0u)
          << "seed " << seed << ": " << report.ToString();
      return true;
    });

    sched.Run();
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "seed " << seed << " trace:\n"
        << sched.TraceString();

    // Post-run: drive every dept through both indexes one final time.
    for (int d = 0; d < next_dept; ++d) {
      MatchBothExpectEqual(EmpInsert("final", 1.0, d));
    }
    ASSERT_FALSE(::testing::Test::HasFailure()) << "seed " << seed;
  }
  // The sweep must actually exercise the swap machinery, not vacuously
  // pass with the re-optimizer never firing.
  EXPECT_GT(total_switches, 0u);
}

TEST_F(AdaptSwapTest, FaultInjectionAtEverySiteSurfacesAndRecovers) {
  for (const char* site : {"adapt.snapshot", "adapt.build", "adapt.swap"}) {
    FaultInjector faults;
    Reset(StuckOnListPolicy(), &faults);
    // Registration happens in the re-optimizer's constructor.
    auto sites = faults.RegisteredSites();
    ASSERT_NE(std::find(sites.begin(), sites.end(), site), sites.end());

    for (int d = 0; d < 64; ++d) {
      AddBoth("emp.dept = " + std::to_string(d), 100 + d);
    }
    for (int i = 0; i < 64; ++i) {
      MatchBothExpectEqual(EmpInsert("x", 1.0, i));
    }

    faults.ArmCountdown(site, 0);
    AdaptRoundReport failed = reopt_->RunOnce();
    EXPECT_EQ(failed.switched, 0u) << site;
    EXPECT_EQ(failed.errors + failed.aborted, 1u)
        << site << ": " << failed.ToString();
    // The class is untouched by the failed attempt and still matches.
    auto stats = index_->SignatureStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].stats.org, OrgType::kMemoryList) << site;
    for (int i = 0; i < 16; ++i) {
      MatchBothExpectEqual(EmpInsert("after-fault", 1.0, i));
    }

    // Disarmed, the very next round installs the switch.
    faults.ClearAll();
    AdaptRoundReport ok = reopt_->RunOnce();
    EXPECT_EQ(ok.switched, 1u) << site << ": " << ok.ToString();
    EXPECT_EQ(index_->SignatureStats()[0].stats.org, OrgType::kMemoryIndex)
        << site;
    for (int i = 0; i < 16; ++i) {
      MatchBothExpectEqual(EmpInsert("after-recover", 1.0, i));
    }
  }
}

// --- Gator join-order reorganization ----------------------------------

// Orders ⋈ Shipments ⋈ Invoices on a shared oid.
struct JoinFixture {
  std::vector<TupleVarInfo> vars = {
      {"o", "orders", 11, OpCode::kInsertOrUpdate},
      {"s", "shipments", 12, OpCode::kInsertOrUpdate},
      {"i", "invoices", 13, OpCode::kInsertOrUpdate},
  };
  std::vector<Schema> schemas = {
      Schema({{"oid", DataType::kInt}, {"cust", DataType::kInt}}),
      Schema({{"oid", DataType::kInt}, {"status", DataType::kVarchar}}),
      Schema({{"oid", DataType::kInt}, {"total", DataType::kFloat}}),
  };

  Result<ConditionGraph> Graph() {
    auto cnf = ToCnf(Parse("o.oid = s.oid and s.oid = i.oid"));
    if (!cnf.ok()) return cnf.status();
    return ConditionGraph::Build(vars, *cnf);
  }
};

/// Firing rows keyed by their original-order binding values, so two
/// networks (one reorganized, one not) can be compared exactly.
std::string FiringKey(const std::vector<Tuple>& bindings) {
  std::string key;
  for (const Tuple& t : bindings) {
    key += t.ToString();
    key += "|";
  }
  return key;
}

TEST(GatorReorganizeTest, ReorganizedNetworkFiresIdenticallyToStatic) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  auto adaptive = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(adaptive.ok());
  auto fixed = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(fixed.ok());

  std::multiset<std::string> adaptive_firings, fixed_firings;
  auto record_a = [&](const std::vector<Tuple>& b) {
    adaptive_firings.insert(FiringKey(b));
  };
  auto record_f = [&](const std::vector<Tuple>& b) {
    fixed_firings.insert(FiringKey(b));
  };

  Random rng(42);
  auto feed = [&](int count) {
    for (int i = 0; i < count; ++i) {
      int64_t oid = static_cast<int64_t>(rng.Uniform(12));
      switch (rng.Uniform(3)) {
        case 0: {
          Tuple t({Value::Int(oid), Value::Int(static_cast<int64_t>(i))});
          ASSERT_TRUE((*adaptive)->AddTuple(0, t, record_a).ok());
          ASSERT_TRUE((*fixed)->AddTuple(0, t, record_f).ok());
          break;
        }
        case 1: {
          Tuple t({Value::Int(oid), Value::String("s" + std::to_string(i))});
          ASSERT_TRUE((*adaptive)->AddTuple(1, t, record_a).ok());
          ASSERT_TRUE((*fixed)->AddTuple(1, t, record_f).ok());
          break;
        }
        default: {
          Tuple t({Value::Int(oid), Value::Float(i * 1.5)});
          ASSERT_TRUE((*adaptive)->AddTuple(2, t, record_a).ok());
          ASSERT_TRUE((*fixed)->AddTuple(2, t, record_f).ok());
          break;
        }
      }
    }
  };

  feed(60);
  EXPECT_EQ(adaptive_firings, fixed_firings);

  // Reorganize to the reversed order; firings already delivered stay
  // delivered (replay suppresses them) and future firings are identical,
  // with bindings still in original variable order.
  ASSERT_TRUE((*adaptive)->Reorganize({2, 1, 0}).ok());
  EXPECT_EQ((*adaptive)->current_order(), (std::vector<size_t>{2, 1, 0}));
  EXPECT_EQ((*adaptive)->reorganizations(), 1u);
  EXPECT_EQ(adaptive_firings, fixed_firings);  // replay fired nothing

  feed(60);
  EXPECT_EQ(adaptive_firings, fixed_firings);

  // Removals behave identically after the reorganization too.
  Tuple gone({Value::Int(3), Value::Int(0)});
  ASSERT_TRUE((*adaptive)->RemoveTuple(0, gone).ok());
  ASSERT_TRUE((*fixed)->RemoveTuple(0, gone).ok());
  feed(30);
  EXPECT_EQ(adaptive_firings, fixed_firings);
}

TEST(GatorReorganizeTest, MaybeReorganizePicksSelectiveVariableFirst) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  auto net = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(net.ok());
  auto ignore = [](const std::vector<Tuple>&) {};

  // Orders is huge and joins nothing; invoices and shipments are small
  // and join each other densely. A cost-aware order starts with the
  // small, selective variables instead of the big orders alpha.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        (*net)
            ->AddTuple(0, Tuple({Value::Int(100000 + i), Value::Int(i)}),
                       ignore)
            .ok());
  }
  // A few joinable orders so the edges actually observe traffic (the
  // hysteresis gate needs attempts, not just alpha sizes).
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*net)->AddTuple(0, Tuple({Value::Int(i), Value::Int(i)}), ignore)
            .ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*net)
            ->AddTuple(1, Tuple({Value::Int(i), Value::String("s")}), ignore)
            .ok());
    ASSERT_TRUE(
        (*net)->AddTuple(2, Tuple({Value::Int(i), Value::Float(1)}), ignore)
            .ok());
  }
  auto recommended = (*net)->RecommendOrder();
  ASSERT_EQ(recommended.size(), 3u);
  EXPECT_NE(recommended[0], 0u)
      << "orders (the large, unselective alpha) should not lead";

  auto installed = (*net)->MaybeReorganize(/*min_gain_ratio=*/1.01,
                                           /*min_attempts=*/1);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  EXPECT_TRUE(*installed);
  EXPECT_EQ((*net)->current_order(), recommended);

  // Stable: a second call finds nothing better to do.
  auto again = (*net)->MaybeReorganize(1.01, 1);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(GatorReorganizeTest, RejectsNonPermutations) {
  JoinFixture fx;
  auto graph = fx.Graph();
  ASSERT_TRUE(graph.ok());
  auto net = GatorNetwork::Build(*graph, fx.schemas);
  ASSERT_TRUE(net.ok());
  EXPECT_FALSE((*net)->Reorganize({0, 1}).ok());
  EXPECT_FALSE((*net)->Reorganize({0, 1, 1}).ok());
  EXPECT_FALSE((*net)->Reorganize({0, 1, 5}).ok());
  EXPECT_TRUE((*net)->Reorganize({0, 1, 2}).ok());  // identity no-op
  EXPECT_EQ((*net)->reorganizations(), 0u);
}

// --- console / wire surface -------------------------------------------

class AdaptCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("emp", EmpSchema()).ok());
    TriggerManagerOptions options;
    options.org_policy = StuckOnListPolicy();
    options.adapt_policy = EagerPolicy();
    tman_ = std::make_unique<TriggerManager>(db_.get(), options);
    ASSERT_TRUE(tman_->Open().ok());
    ASSERT_TRUE(tman_->DefineLocalTableSource("emp").ok());
  }

  std::string Exec(const std::string& cmd) {
    auto r = tman_->ExecuteCommand(cmd);
    EXPECT_TRUE(r.ok()) << cmd << " -> " << r.status().ToString();
    return r.ok() ? *r : std::string();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerManager> tman_;
};

TEST_F(AdaptCommandTest, StatsReportsStagesOrganizationsAndAdaptState) {
  for (int d = 0; d < 40; ++d) {
    Exec("create trigger t" + std::to_string(d) +
         " from emp on insert when emp.dept = " + std::to_string(d) +
         " do raise event E" + std::to_string(d) + "(emp.name)");
  }
  ASSERT_TRUE(db_->Insert("emp", Tuple({Value::String("a"), Value::Float(1),
                                        Value::Int(3)}))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());

  std::string stats = Exec("stats");
  EXPECT_NE(stats.find("mean_us"), std::string::npos) << stats;
  EXPECT_NE(stats.find("adapt:"), std::string::npos) << stats;
  EXPECT_NE(stats.find("sig "), std::string::npos) << stats;
  EXPECT_NE(stats.find("org=memory-list"), std::string::npos) << stats;

  // Stage metrics actually accumulated work.
  auto st = tman_->stats();
  EXPECT_GT(st.stages.stage(Stage::kIngest).items, 0u);
  EXPECT_GT(st.stages.stage(Stage::kMatch).items, 0u);
}

TEST_F(AdaptCommandTest, AdaptRunSwitchesOrganizationAndLogsIt) {
  for (int d = 0; d < 64; ++d) {
    Exec("create trigger t" + std::to_string(d) +
         " from emp on insert when emp.dept = " + std::to_string(d) +
         " do raise event E(emp.name)");
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db_->Insert("emp", Tuple({Value::String("a"), Value::Float(1),
                                          Value::Int(i)}))
                    .ok());
  }
  ASSERT_TRUE(tman_->ProcessPending().ok());

  std::string before = Exec("adapt status");
  EXPECT_NE(before.find("rounds="), std::string::npos) << before;

  std::string round = Exec("adapt run");
  EXPECT_NE(round.find("switched=1"), std::string::npos) << round;
  EXPECT_NE(Exec("stats").find("org=memory-index"), std::string::npos);
  EXPECT_NE(Exec("adapt log").find("list"), std::string::npos);
  EXPECT_EQ(tman_->stats().adapt_switches, 1u);

  // Matching still works after the command-driven swap.
  ASSERT_TRUE(db_->Insert("emp", Tuple({Value::String("b"), Value::Float(1),
                                        Value::Int(7)}))
                  .ok());
  ASSERT_TRUE(tman_->ProcessPending().ok());
  EXPECT_GT(tman_->stats().rule_firings, 0u);
}

TEST_F(AdaptCommandTest, AdaptOnOffGateAndUsageErrors) {
  EXPECT_NE(Exec("adapt off").find("disabled"), std::string::npos);
  EXPECT_FALSE(tman_->adaptive_enabled());
  EXPECT_NE(Exec("adapt on").find("enabled"), std::string::npos);
  EXPECT_TRUE(tman_->adaptive_enabled());
  auto bad = tman_->ExecuteCommand("adapt bogus");
  EXPECT_FALSE(bad.ok());
}

TEST_F(AdaptCommandTest, BackgroundAdaptThreadConvergesWithoutCommands) {
  // Short adapt interval; the background thread should install the
  // promotion without any explicit `adapt run`.
  TriggerManagerOptions options;
  options.org_policy = StuckOnListPolicy();
  options.adapt_policy = EagerPolicy();
  options.adaptive = true;
  options.adapt_interval = std::chrono::milliseconds(5);
  auto db2 = std::make_unique<Database>();
  ASSERT_TRUE(db2->CreateTable("emp", EmpSchema()).ok());
  TriggerManager bg(db2.get(), options);
  ASSERT_TRUE(bg.Open().ok());
  ASSERT_TRUE(bg.DefineLocalTableSource("emp").ok());
  for (int d = 0; d < 64; ++d) {
    auto r = bg.ExecuteCommand(
        "create trigger t" + std::to_string(d) +
        " from emp on insert when emp.dept = " + std::to_string(d) +
        " do raise event E(emp.name)");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db2->Insert("emp", Tuple({Value::String("a"),
                                          Value::Float(1), Value::Int(i)}))
                    .ok());
  }
  ASSERT_TRUE(bg.ProcessPending().ok());
  ASSERT_TRUE(bg.Start().ok());
  for (int spin = 0; spin < 400 && bg.stats().adapt_switches == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(bg.stats().adapt_switches, 0u);
  bg.Stop();
}

}  // namespace
}  // namespace tman
