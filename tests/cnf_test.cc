#include <gtest/gtest.h>

#include "expr/cnf.h"
#include "expr/condition_graph.h"
#include "parser/parser.h"

namespace tman {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = ParseExpressionString(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

std::vector<std::string> CnfStrings(const std::string& text) {
  auto cnf = ToCnf(Parse(text));
  EXPECT_TRUE(cnf.ok()) << cnf.status().ToString();
  std::vector<std::string> out;
  for (const ExprPtr& c : *cnf) out.push_back(ExprToString(c));
  return out;
}

TEST(CnfTest, SingleAtomPassesThrough) {
  EXPECT_EQ(CnfStrings("a.x > 1"), (std::vector<std::string>{"(a.x > 1)"}));
}

TEST(CnfTest, AndSplitsIntoConjuncts) {
  auto cnf = CnfStrings("a.x > 1 and a.y = 2 and b.z < 3");
  EXPECT_EQ(cnf.size(), 3u);
}

TEST(CnfTest, OrStaysOneConjunct) {
  auto cnf = CnfStrings("a.x > 1 or a.y = 2");
  ASSERT_EQ(cnf.size(), 1u);
  EXPECT_EQ(cnf[0], "((a.x > 1) or (a.y = 2))");
}

TEST(CnfTest, DistributesOrOverAnd) {
  // (A and B) or C  =>  (A or C) and (B or C)
  auto cnf = CnfStrings("(a.x = 1 and a.y = 2) or a.z = 3");
  ASSERT_EQ(cnf.size(), 2u);
  EXPECT_EQ(cnf[0], "((a.x = 1) or (a.z = 3))");
  EXPECT_EQ(cnf[1], "((a.y = 2) or (a.z = 3))");
}

TEST(CnfTest, NotPushedIntoComparisons) {
  auto cnf = CnfStrings("not (a.x > 1)");
  ASSERT_EQ(cnf.size(), 1u);
  EXPECT_EQ(cnf[0], "(a.x <= 1)");
}

TEST(CnfTest, DeMorgan) {
  // not (A and B) => (not A) or (not B), with comparisons negated.
  auto cnf = CnfStrings("not (a.x > 1 and a.y = 2)");
  ASSERT_EQ(cnf.size(), 1u);
  EXPECT_EQ(cnf[0], "((a.x <= 1) or (a.y <> 2))");

  auto cnf2 = CnfStrings("not (a.x > 1 or a.y = 2)");
  ASSERT_EQ(cnf2.size(), 2u);
  EXPECT_EQ(cnf2[0], "(a.x <= 1)");
  EXPECT_EQ(cnf2[1], "(a.y <> 2)");
}

TEST(CnfTest, DoubleNegationCancels) {
  auto cnf = CnfStrings("not not (a.x = 1)");
  ASSERT_EQ(cnf.size(), 1u);
  EXPECT_EQ(cnf[0], "(a.x = 1)");
}

TEST(CnfTest, NullExprGivesEmptyCnf) {
  auto cnf = ToCnf(nullptr);
  ASSERT_TRUE(cnf.ok());
  EXPECT_TRUE(cnf->empty());
}

TEST(CnfTest, ExplosionBounded) {
  // Each (a OR b) AND-ed pair distributes multiplicatively; build one
  // whose CNF exceeds the bound.
  std::string text;
  for (int i = 0; i < 12; ++i) {
    if (i > 0) text += " or ";
    text += "(a.x" + std::to_string(i) + " = 1 and a.y" + std::to_string(i) +
            " = 2)";
  }
  auto cnf = ToCnf(Parse(text));
  EXPECT_FALSE(cnf.ok());
  EXPECT_EQ(cnf.status().code(), StatusCode::kResourceExhausted);
}

TEST(GroupConjunctsTest, GroupsByVariableSets) {
  auto cnf = ToCnf(Parse(
      "s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno and h.price < "
      "100000"));
  ASSERT_TRUE(cnf.ok());
  auto groups = GroupConjuncts(*cnf);
  ASSERT_EQ(groups.size(), 4u);
  // Selection on s; join s-r; join r-h; selection on h.
  EXPECT_EQ(groups[0].vars, (std::vector<std::string>{"s"}));
  EXPECT_EQ(groups[1].vars, (std::vector<std::string>{"r", "s"}));
  EXPECT_EQ(groups[2].vars, (std::vector<std::string>{"h", "r"}));
  EXPECT_EQ(groups[3].vars, (std::vector<std::string>{"h"}));
}

TEST(GroupConjunctsTest, MergesSameVarSet) {
  auto cnf = ToCnf(Parse("a.x = 1 and a.y = 2"));
  ASSERT_TRUE(cnf.ok());
  auto groups = GroupConjuncts(*cnf);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].conjuncts.size(), 2u);
}

std::vector<TupleVarInfo> RealEstateVars() {
  return {
      {"s", "salesperson", 1, OpCode::kInsertOrUpdate},
      {"h", "house", 2, OpCode::kInsert},
      {"r", "represents", 3, OpCode::kInsertOrUpdate},
  };
}

TEST(ConditionGraphTest, IrisHouseAlertShape) {
  auto cnf = ToCnf(Parse(
      "s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(RealEstateVars(), *cnf);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->nodes().size(), 3u);
  EXPECT_EQ(graph->edges().size(), 2u);
  EXPECT_TRUE(graph->catch_all().empty());
  // Node s has a selection predicate; h and r do not.
  EXPECT_EQ(graph->nodes()[0].selection_conjuncts.size(), 1u);
  EXPECT_TRUE(graph->nodes()[1].selection_conjuncts.empty());
  EXPECT_TRUE(graph->nodes()[2].selection_conjuncts.empty());
}

TEST(ConditionGraphTest, TrivialAndHyperJoinGoToCatchAll) {
  auto cnf = ToCnf(Parse("1 = 1 and s.spno + r.spno = h.nno"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(RealEstateVars(), *cnf);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->catch_all().size(), 2u);
  EXPECT_TRUE(graph->edges().empty());
}

TEST(ConditionGraphTest, UnknownVariableRejected) {
  auto cnf = ToCnf(Parse("z.q = 1"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(RealEstateVars(), *cnf);
  EXPECT_FALSE(graph.ok());
}

TEST(ConditionGraphTest, ParallelJoinConjunctsMergeIntoOneEdge) {
  auto cnf = ToCnf(Parse("s.spno = r.spno and s.name = r.name2"));
  ASSERT_TRUE(cnf.ok());
  auto graph = ConditionGraph::Build(RealEstateVars(), *cnf);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->edges().size(), 1u);
  EXPECT_EQ(graph->edges()[0].join_conjuncts.size(), 2u);
}

TEST(ConditionGraphTest, NodeIndexLookup) {
  auto graph = ConditionGraph::Build(RealEstateVars(), {});
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(*graph->NodeIndex("h"), 1u);
  EXPECT_EQ(*graph->NodeIndex("S"), 0u);  // case-insensitive
  EXPECT_FALSE(graph->NodeIndex("zz").ok());
}

}  // namespace
}  // namespace tman
