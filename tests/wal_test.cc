#include "storage/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/random.h"

namespace tman {
namespace {

struct Replayed {
  WalRecordType type;
  std::string payload;
  Lsn end_lsn;
};

std::vector<Replayed> ReplayAll(Wal* wal) {
  std::vector<Replayed> out;
  Status s = wal->Replay(
      [&](WalRecordType type, std::string_view payload, Lsn end) {
        out.push_back({type, std::string(payload), end});
        return Status::OK();
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    auto header = Wal::Create(disk_.get());
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    header_ = *header;
    auto wal = Wal::Open(disk_.get(), header_);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    wal_ = std::move(*wal);
  }

  Lsn Append(std::string_view payload,
             WalRecordType type = WalRecordType::kBatch) {
    auto lsn = wal_->Append(type, payload);
    EXPECT_TRUE(lsn.ok()) << lsn.status().ToString();
    return *lsn;
  }

  std::unique_ptr<Wal> Reopen() {
    auto wal = Wal::Open(disk_.get(), header_);
    EXPECT_TRUE(wal.ok()) << wal.status().ToString();
    return std::move(*wal);
  }

  std::unique_ptr<DiskManager> disk_;
  PageId header_ = kInvalidPageId;
  std::unique_ptr<Wal> wal_;
};

TEST_F(WalTest, AppendIsNotDurableUntilCommit) {
  Lsn a = Append("alpha");
  EXPECT_EQ(wal_->durable_lsn(), 0u);
  EXPECT_EQ(wal_->appended_lsn(), a);
  // A crash now (reopen without commit) loses the buffered record.
  auto reopened = Reopen();
  EXPECT_TRUE(ReplayAll(reopened.get()).empty());
  // Committing makes it visible.
  ASSERT_TRUE(wal_->Commit(a).ok());
  EXPECT_GE(wal_->durable_lsn(), a);
  reopened = Reopen();
  auto records = ReplayAll(reopened.get());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "alpha");
  EXPECT_EQ(records[0].end_lsn, a);
}

TEST_F(WalTest, CommitIsPrefixClosed) {
  Append("one");
  Lsn b = Append("two");
  Append("three");
  // Committing through "two" must also cover "one" (prefix property) and
  // here covers "three" as well: the round syncs the whole buffered tail.
  ASSERT_TRUE(wal_->Commit(b).ok());
  EXPECT_GE(wal_->durable_lsn(), b);
  auto reopened = Reopen();
  auto records = ReplayAll(reopened.get());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].payload, "one");
  EXPECT_EQ(records[1].payload, "two");
  EXPECT_EQ(records[2].payload, "three");
}

TEST_F(WalTest, RecordsSpanPages) {
  // Each record is larger than one page; several of them force the
  // stream across many page boundaries.
  std::vector<Lsn> lsns;
  for (int i = 0; i < 5; ++i) {
    std::string payload(kPageSize + 700 * i + 13, static_cast<char>('a' + i));
    lsns.push_back(Append(payload));
  }
  ASSERT_TRUE(wal_->Sync().ok());
  auto reopened = Reopen();
  auto records = ReplayAll(reopened.get());
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].end_lsn, lsns[i]);
    EXPECT_EQ(records[i].payload.size(), kPageSize + 700 * i + 13);
    EXPECT_EQ(records[i].payload[0], static_cast<char>('a' + i));
  }
}

TEST_F(WalTest, IncrementalCommitsAppendToTheSamePages) {
  // Many small commit rounds re-write the partial tail page; the stream
  // must still replay as one contiguous sequence.
  std::vector<std::string> expect;
  for (int i = 0; i < 100; ++i) {
    std::string payload = "rec-" + std::to_string(i);
    expect.push_back(payload);
    Lsn lsn = Append(payload);
    ASSERT_TRUE(wal_->Commit(lsn).ok());
  }
  auto reopened = Reopen();
  auto records = ReplayAll(reopened.get());
  ASSERT_EQ(records.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(records[i].payload, expect[i]);
  }
}

TEST_F(WalTest, TruncateDropsWholePagesAndKeepsLiveRecords) {
  std::string filler(1200, 'f');
  std::vector<Lsn> lsns;
  for (int i = 0; i < 20; ++i) lsns.push_back(Append(filler));
  ASSERT_TRUE(wal_->Sync().ok());
  uint64_t pages_before = disk_->num_pages();

  // Everything through record 15 (by its end-LSN) is dead.
  ASSERT_TRUE(wal_->Truncate(lsns[14]).ok());
  auto records = ReplayAll(wal_.get());
  ASSERT_EQ(records.size(), 5u);  // records 16..20 survive
  EXPECT_EQ(records[0].end_lsn, lsns[15]);

  // Truncation survives reopen, and LSNs are unchanged.
  auto reopened = Reopen();
  auto after = ReplayAll(reopened.get());
  ASSERT_EQ(after.size(), 5u);
  EXPECT_EQ(after.back().end_lsn, lsns.back());
  EXPECT_LE(wal_->RetainedBytes(),
            5 * (filler.size() + kWalRecordOverhead) + kPageSize);
  EXPECT_GT(pages_before, 2u);
}

TEST_F(WalTest, ReopenAtPageBoundaryKeepsPreallocatedSuccessor) {
  // One record whose framing exactly fills the first data page's payload
  // area (kPageSize minus the 4-byte next link): the committed stream
  // ends on a page boundary, and the round that filled the page
  // pre-allocated a linked successor. Reopen must adopt that successor —
  // writing the next bytes into a freshly allocated page instead would
  // leave the full page's on-disk link pointing at a page that never
  // receives them, and the following reopen would replay garbage.
  const size_t exact_fill = (kPageSize - 4) - kWalRecordOverhead;
  std::string fill(exact_fill, 'b');
  Lsn a = Append(fill);
  ASSERT_TRUE(wal_->Commit(a).ok());

  auto second = Reopen();
  auto lsn = second->Append(WalRecordType::kBatch, "after-boundary");
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(second->Commit(*lsn).ok());

  auto third = Reopen();
  auto records = ReplayAll(third.get());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, fill);
  EXPECT_EQ(records[1].payload, "after-boundary");
}

TEST_F(WalTest, RepeatedReopenAtSuccessiveBoundaries) {
  // Every cycle appends exactly one page worth of stream and reopens, so
  // each incarnation starts at a page boundary behind a pre-allocated
  // successor and must keep extending one contiguous chain.
  const size_t exact_fill = (kPageSize - 4) - kWalRecordOverhead;
  std::vector<std::string> expect;
  std::unique_ptr<Wal> wal = std::move(wal_);
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::string fill(exact_fill, static_cast<char>('a' + cycle));
    auto lsn = wal->Append(WalRecordType::kBatch, fill);
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE(wal->Commit(*lsn).ok());
    expect.push_back(fill);
    wal = Reopen();
    auto records = ReplayAll(wal.get());
    ASSERT_EQ(records.size(), expect.size()) << "cycle " << cycle;
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(records[i].payload, expect[i]) << "cycle " << cycle;
    }
  }
}

TEST_F(WalTest, TruncateToBoundaryThenReopenAndExtend) {
  // Truncating the entire committed stream at a page boundary leaves the
  // header's first_page naming the pre-allocated successor; reopen must
  // pick it up (or at least stay consistent) and keep appending.
  const size_t exact_fill = (kPageSize - 4) - kWalRecordOverhead;
  std::string fill(exact_fill, 'q');
  Lsn a = Append(fill);
  ASSERT_TRUE(wal_->Commit(a).ok());
  ASSERT_TRUE(wal_->Truncate(a).ok());
  auto second = Reopen();
  EXPECT_TRUE(ReplayAll(second.get()).empty());
  auto lsn = second->Append(WalRecordType::kBatch, "fresh");
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(second->Commit(*lsn).ok());
  auto third = Reopen();
  auto records = ReplayAll(third.get());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "fresh");
}

TEST_F(WalTest, TruncateBelowStartIsANoOp) {
  std::string filler(1200, 'f');
  std::vector<Lsn> lsns;
  for (int i = 0; i < 20; ++i) lsns.push_back(Append(filler));
  ASSERT_TRUE(wal_->Sync().ok());
  ASSERT_TRUE(wal_->Truncate(lsns[14]).ok());
  ASSERT_GT(wal_->start_lsn(), lsns[0]);
  Lsn start = wal_->start_lsn();
  // An `upto` below start_ must not underflow the page-drop arithmetic
  // and silently discard live committed pages.
  ASSERT_TRUE(wal_->Truncate(lsns[0]).ok());
  EXPECT_EQ(wal_->start_lsn(), start);
  EXPECT_EQ(ReplayAll(wal_.get()).size(), 5u);
  auto reopened = Reopen();
  EXPECT_EQ(ReplayAll(reopened.get()).size(), 5u);
}

TEST_F(WalTest, AppendAfterTruncateContinues) {
  std::string filler(2000, 'x');
  std::vector<Lsn> lsns;
  for (int i = 0; i < 10; ++i) lsns.push_back(Append(filler));
  ASSERT_TRUE(wal_->Sync().ok());
  ASSERT_TRUE(wal_->Truncate(lsns[7]).ok());
  Lsn tail = Append("after-truncate");
  ASSERT_TRUE(wal_->Commit(tail).ok());
  auto reopened = Reopen();
  auto records = ReplayAll(reopened.get());
  ASSERT_EQ(records.size(), 3u);  // records 9, 10, and the new tail
  EXPECT_EQ(records.back().payload, "after-truncate");
  EXPECT_EQ(records.back().end_lsn, tail);
}

TEST_F(WalTest, FailedCommitRetries) {
  Lsn a = Append("retry-me");
  disk_->fault_injector()->ArmCountdown("wal.fsync", 0);
  EXPECT_FALSE(wal_->Commit(a).ok());
  EXPECT_LT(wal_->durable_lsn(), a);
  disk_->ClearFaults();
  // The buffered bytes were restored; the retry succeeds and replays.
  ASSERT_TRUE(wal_->Commit(a).ok());
  auto reopened = Reopen();
  auto records = ReplayAll(reopened.get());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "retry-me");
}

TEST_F(WalTest, WriteFaultPropagatesAndRecovers) {
  Lsn a = Append("w");
  disk_->fault_injector()->ArmCountdown("wal.write", 0);
  EXPECT_FALSE(wal_->Commit(a).ok());
  disk_->ClearFaults();
  ASSERT_TRUE(wal_->Commit(a).ok());
  EXPECT_GE(wal_->durable_lsn(), a);
}

TEST_F(WalTest, TornHeaderWriteLeavesOneValidCopy) {
  Lsn a = Append("first");
  ASSERT_TRUE(wal_->Commit(a).ok());
  Lsn b = Append("second");
  // Tear the next header write (the commit point). Whichever copy
  // survives, reopen must succeed and expose a valid prefix.
  disk_->fault_injector()->ArmCountdown("disk.write.short", 1);
  Status c = wal_->Commit(b);
  disk_->ClearFaults();
  auto reopened = Reopen();
  auto records = ReplayAll(reopened.get());
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "first");
  if (records.size() == 2) {
    // The torn write landed the new header copy: commit became durable
    // even though the writer saw an error — the documented ambiguity.
    EXPECT_EQ(records[1].payload, "second");
  }
  EXPECT_FALSE(c.ok());
}

TEST_F(WalTest, CorruptedCommittedPageFailsReplay) {
  std::string filler(3000, 'z');
  Lsn a = Append(filler);
  ASSERT_TRUE(wal_->Commit(a).ok());
  // Flip a byte in the middle of the committed record on disk.
  // Page layout puts the first data page right after the header page.
  Page pg;
  PageId data_page = header_ + 1;
  ASSERT_TRUE(disk_->ReadPage(data_page, &pg).ok());
  pg.data[600] ^= 0x5a;
  ASSERT_TRUE(disk_->WritePage(data_page, pg).ok());
  auto reopened = Reopen();
  Status s = reopened->Replay(
      [](WalRecordType, std::string_view, Lsn) { return Status::OK(); });
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST_F(WalTest, GroupCommitAmortizesSyncRounds) {
  constexpr uint64_t kThreads = 8;
  constexpr uint64_t kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        auto lsn = wal_->Append(WalRecordType::kBatch, payload);
        if (!lsn.ok() || !wal_->Commit(*lsn).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (wal_->durable_lsn() < *lsn) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  WalStats stats = wal_->stats();
  EXPECT_EQ(stats.records_appended, kThreads * kPerThread);
  EXPECT_EQ(stats.commit_calls, kThreads * kPerThread);
  // Piggybacking must have happened at least once across 400 commits on
  // 8 threads; on a single-core box the margin can be thin, so just
  // require *some* batching (sync rounds < commit calls).
  EXPECT_LE(stats.sync_rounds + stats.piggybacked, stats.commit_calls * 2);
  EXPECT_EQ(stats.sync_rounds + stats.piggybacked, stats.commit_calls);

  // Every record made it exactly once, in per-thread submission order.
  auto records = ReplayAll(wal_.get());
  ASSERT_EQ(records.size(), kThreads * kPerThread);
  std::map<int, int> next_per_thread;
  for (const auto& r : records) {
    size_t dash = r.payload.find('-');
    int t = std::stoi(r.payload.substr(1, dash - 1));
    int i = std::stoi(r.payload.substr(dash + 1));
    EXPECT_EQ(i, next_per_thread[t]) << "thread " << t;
    next_per_thread[t] = i + 1;
  }
}

TEST_F(WalTest, RandomizedCrashPointsPreserveCommittedPrefix) {
  // Storm: appends and commits under a probabilistic fault on every wal
  // and disk site; whatever the WAL claims durable before a "crash" must
  // replay after reopen (modulo the lost-ack ambiguity, which can only
  // ADD records, never lose acked ones).
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    DiskManager disk;
    auto header = Wal::Create(&disk);
    ASSERT_TRUE(header.ok());
    auto wal = Wal::Open(&disk, *header);
    ASSERT_TRUE(wal.ok());
    Random rng(seed);
    disk.fault_injector()->ArmProbability("wal.*", 0.05, seed * 7 + 1);
    disk.fault_injector()->ArmProbability("disk.sync", 0.05, seed * 7 + 2);

    std::vector<std::pair<Lsn, std::string>> acked;
    for (int i = 0; i < 60; ++i) {
      std::string payload =
          "s" + std::to_string(seed) + "-" + std::to_string(i) +
          std::string(rng.Uniform(900), 'p');
      auto lsn = (*wal)->Append(WalRecordType::kBatch, payload);
      if (!lsn.ok()) continue;
      if ((*wal)->Commit(*lsn).ok()) acked.emplace_back(*lsn, payload);
    }
    disk.ClearFaults();
    // Crash: drop the instance, reopen from disk.
    wal->reset();
    auto reopened = Wal::Open(&disk, *header);
    ASSERT_TRUE(reopened.ok()) << "seed " << seed;
    std::map<Lsn, std::string> recovered;
    ASSERT_TRUE((*reopened)
                    ->Replay([&](WalRecordType, std::string_view p, Lsn e) {
                      recovered[e] = std::string(p);
                      return Status::OK();
                    })
                    .ok())
        << "seed " << seed;
    for (const auto& [lsn, payload] : acked) {
      auto it = recovered.find(lsn);
      ASSERT_TRUE(it != recovered.end())
          << "seed " << seed << ": acked record at lsn " << lsn << " lost";
      EXPECT_EQ(it->second, payload) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace tman
