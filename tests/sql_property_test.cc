// Property tests for MiniDB's SQL layer and the parser's robustness.

#include <gtest/gtest.h>

#include <set>

#include "db/sql.h"
#include "parser/parser.h"
#include "util/random.h"

namespace tman {
namespace {

// The WHERE planner takes the index route when an equality conjunct hits
// an indexed attribute and the scan route otherwise; both must produce
// identical result sets for any predicate.
TEST(SqlPropertyTest, IndexRouteEquivalentToScanRoute) {
  Random rng(314);
  // Two databases with identical contents; only one has indexes.
  Database indexed, plain;
  for (Database* db : {&indexed, &plain}) {
    ASSERT_TRUE(
        ExecuteSql(db, "create table t (k int, v int, s varchar)").ok());
  }
  ASSERT_TRUE(ExecuteSql(&indexed, "create index idx_k on t (k)").ok());
  ASSERT_TRUE(ExecuteSql(&indexed, "create index idx_s on t (s)").ok());
  for (int i = 0; i < 400; ++i) {
    std::string row = "(" + std::to_string(rng.UniformRange(0, 40)) + ", " +
                      std::to_string(rng.UniformRange(-50, 50)) + ", 'g" +
                      std::to_string(rng.Uniform(12)) + "')";
    for (Database* db : {&indexed, &plain}) {
      ASSERT_TRUE(ExecuteSql(db, "insert into t values " + row).ok());
    }
  }

  auto rows_of = [](Database* db, const std::string& where) {
    auto r = ExecuteSql(db, "select k, v, s from t where " + where);
    EXPECT_TRUE(r.ok()) << where << ": " << r.status().ToString();
    std::multiset<std::string> out;
    if (r.ok()) {
      for (const Tuple& row : r->rows) out.insert(row.ToString());
    }
    return out;
  };

  std::vector<std::string> predicates;
  for (int i = 0; i < 60; ++i) {
    switch (rng.Uniform(5)) {
      case 0:
        predicates.push_back("k = " +
                             std::to_string(rng.UniformRange(0, 40)));
        break;
      case 1:
        predicates.push_back("k = " + std::to_string(rng.UniformRange(0, 40)) +
                             " and v > " +
                             std::to_string(rng.UniformRange(-50, 50)));
        break;
      case 2:
        predicates.push_back("s = 'g" + std::to_string(rng.Uniform(12)) +
                             "' and k < " +
                             std::to_string(rng.UniformRange(0, 40)));
        break;
      case 3:
        predicates.push_back("v >= " +
                             std::to_string(rng.UniformRange(-50, 50)));
        break;
      default:
        predicates.push_back(
            "k = " + std::to_string(rng.UniformRange(0, 40)) + " or v = " +
            std::to_string(rng.UniformRange(-50, 50)));
        break;
    }
  }
  for (const std::string& where : predicates) {
    EXPECT_EQ(rows_of(&indexed, where), rows_of(&plain, where))
        << "WHERE " << where;
  }
}

TEST(SqlPropertyTest, UpdatesKeepIndexConsistentWithScans) {
  Random rng(272);
  Database db;
  ASSERT_TRUE(ExecuteSql(&db, "create table t (k int, v int)").ok());
  ASSERT_TRUE(ExecuteSql(&db, "create index idx_k on t (k)").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ExecuteSql(&db, "insert into t values (" +
                                    std::to_string(rng.UniformRange(0, 20)) +
                                    ", 0)")
                    .ok());
  }
  for (int round = 0; round < 30; ++round) {
    int64_t from = rng.UniformRange(0, 20);
    int64_t to = rng.UniformRange(0, 20);
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(ExecuteSql(&db, "delete from t where k = " +
                                      std::to_string(from))
                      .ok());
    } else {
      ASSERT_TRUE(ExecuteSql(&db, "update t set k = " + std::to_string(to) +
                                      " where k = " + std::to_string(from))
                      .ok());
    }
    // Index-accelerated count must equal a full-scan count.
    for (int64_t k = 0; k <= 20; ++k) {
      auto via_index = ExecuteSql(
          &db, "select v from t where k = " + std::to_string(k));
      ASSERT_TRUE(via_index.ok());
      int64_t scanned = 0;
      ASSERT_TRUE(db.Scan("t", [&](const Rid&, const Tuple& row) {
                      if (row.at(0).as_int() == k) ++scanned;
                      return true;
                    }).ok());
      ASSERT_EQ(static_cast<int64_t>(via_index->rows.size()), scanned)
          << "k=" << k << " round=" << round;
    }
  }
}

// The parser must reject garbage with a ParseError — never crash or hang.
TEST(ParserRobustnessTest, RandomGarbageNeverCrashes) {
  Random rng(1999);
  const std::string alphabet =
      "abcdef ()'=<>!.,;0123456789+-*/\n\t_\"%&#";
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    size_t len = rng.Uniform(60);
    for (size_t j = 0; j < len; ++j) {
      input.push_back(alphabet[rng.Uniform(alphabet.size())]);
    }
    // Must terminate and either parse or return a Status — no crash.
    (void)ParseCommand(input);
    (void)ParseExpressionString(input);
  }
}

TEST(ParserRobustnessTest, TruncatedCommandsRejectedCleanly) {
  const std::string full =
      "create trigger t from emp on update(emp.salary) when emp.name = "
      "'Bob' do raise event E(emp.name)";
  for (size_t cut = 0; cut + 1 < full.size(); cut += 3) {
    auto r = ParseCommand(full.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix length " << cut;
  }
  EXPECT_TRUE(ParseCommand(full).ok());
}

TEST(ParserRobustnessTest, DeeplyNestedExpressionsParse) {
  std::string expr = "x.a";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto r = ParseExpressionString(expr);
  ASSERT_TRUE(r.ok());
}

}  // namespace
}  // namespace tman
