#include <gtest/gtest.h>

#include "core/actions.h"
#include "core/trigger_manager.h"
#include "db/sql.h"
#include "parser/parser.h"

namespace tman {
namespace {

// Builds a minimal TriggerRuntime (single emp variable) plus an
// ActionContext for macro-substitution tests.
class ActionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("emp", Schema({{"name", DataType::kVarchar},
                                                {"salary", DataType::kFloat},
                                                {"dept", DataType::kInt}}))
                    .ok());
    executor_ = std::make_unique<ActionExecutor>(db_.get(), &events_);

    trigger_ = std::make_shared<TriggerRuntime>();
    trigger_->id = 1;
    trigger_->name = "t";
    std::vector<TupleVarInfo> vars = {
        {"emp", "emp", 1, OpCode::kInsertOrUpdate}};
    auto graph = ConditionGraph::Build(vars, {});
    ASSERT_TRUE(graph.ok());
    trigger_->graph = *graph;
    auto net = ATreatNetwork::Build(trigger_->graph, db_.get(),
                                    ATreatOptions{});
    ASSERT_TRUE(net.ok());
    trigger_->network = std::move(*net);
  }

  ActionContext MakeContext(double old_salary, double new_salary) {
    ActionContext ctx;
    ctx.trigger = trigger_.get();
    Tuple old_t({Value::String("Bob"), Value::Float(old_salary),
                 Value::Int(3)});
    Tuple new_t({Value::String("Bob"), Value::Float(new_salary),
                 Value::Int(3)});
    ctx.token = UpdateDescriptor::Update(1, old_t, new_t);
    ctx.bindings = {new_t};
    ctx.arrival_node = 0;
    return ctx;
  }

  std::string Substitute(const std::string& sql, const ActionContext& ctx) {
    auto r = executor_->SubstituteMacros(sql, ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : "";
  }

  std::unique_ptr<Database> db_;
  EventManager events_;
  std::unique_ptr<ActionExecutor> executor_;
  std::shared_ptr<TriggerRuntime> trigger_;
};

TEST_F(ActionsTest, QualifiedNewAndOld) {
  auto ctx = MakeContext(100, 200);
  EXPECT_EQ(Substitute("set x = :NEW.emp.salary", ctx), "set x = 200");
  EXPECT_EQ(Substitute("set x = :OLD.emp.salary", ctx), "set x = 100");
}

TEST_F(ActionsTest, UnqualifiedAttrResolved) {
  auto ctx = MakeContext(100, 200);
  EXPECT_EQ(Substitute(":NEW.salary + :OLD.salary", ctx), "200 + 100");
}

TEST_F(ActionsTest, StringValuesQuoted) {
  auto ctx = MakeContext(1, 2);
  EXPECT_EQ(Substitute("where n = :NEW.emp.name", ctx),
            "where n = 'Bob'");
}

TEST_F(ActionsTest, CaseInsensitiveMacros) {
  auto ctx = MakeContext(100, 200);
  EXPECT_EQ(Substitute(":new.emp.salary/:Old.emp.salary", ctx), "200/100");
}

TEST_F(ActionsTest, NonMacroColonsPassThrough) {
  auto ctx = MakeContext(1, 2);
  EXPECT_EQ(Substitute("a : b :: c :x", ctx), "a : b :: c :x");
  EXPECT_EQ(Substitute(":NEWT.salary", ctx), ":NEWT.salary");  // not :NEW.
}

TEST_F(ActionsTest, OldOnWrongVariableFails) {
  auto ctx = MakeContext(1, 2);
  EXPECT_FALSE(executor_->SubstituteMacros(":OLD.other.x", ctx).ok());
}

TEST_F(ActionsTest, OldWithoutOldImageFails) {
  ActionContext ctx;
  ctx.trigger = trigger_.get();
  Tuple t({Value::String("Bob"), Value::Float(5), Value::Int(3)});
  ctx.token = UpdateDescriptor::Insert(1, t);
  ctx.bindings = {t};
  EXPECT_FALSE(executor_->SubstituteMacros(":OLD.emp.salary", ctx).ok());
  // :NEW still fine for inserts.
  EXPECT_TRUE(executor_->SubstituteMacros(":NEW.emp.salary", ctx).ok());
}

TEST_F(ActionsTest, UnknownAttributeFails) {
  auto ctx = MakeContext(1, 2);
  EXPECT_FALSE(executor_->SubstituteMacros(":NEW.emp.bogus", ctx).ok());
}

TEST_F(ActionsTest, ExecSqlActionRunsAgainstDatabase) {
  trigger_->cmd.action.kind = ActionKind::kExecSql;
  trigger_->cmd.action.sql =
      "insert into emp values (:NEW.emp.name, :NEW.emp.salary, 9)";
  auto ctx = MakeContext(100, 200);
  ASSERT_TRUE(executor_->Execute(ctx).ok());
  auto rows = ExecuteSql(db_.get(), "select * from emp where dept = 9");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).as_string(), "Bob");
  EXPECT_EQ(executor_->stats().sql_statements, 1u);
}

TEST_F(ActionsTest, FailingSqlCountsAsError) {
  trigger_->cmd.action.kind = ActionKind::kExecSql;
  trigger_->cmd.action.sql = "insert into missing values (1)";
  auto ctx = MakeContext(1, 2);
  EXPECT_FALSE(executor_->Execute(ctx).ok());
  EXPECT_EQ(executor_->stats().action_errors, 1u);
}

TEST_F(ActionsTest, RaiseEventEvaluatesArgs) {
  trigger_->cmd.action.kind = ActionKind::kRaiseEvent;
  trigger_->cmd.action.event_name = "Raise";
  auto arg1 = ParseExpressionString("emp.name");
  auto arg2 = ParseExpressionString("emp.salary * 2");
  ASSERT_TRUE(arg1.ok() && arg2.ok());
  trigger_->cmd.action.event_args = {*arg1, *arg2};
  auto ctx = MakeContext(100, 200);
  ASSERT_TRUE(executor_->Execute(ctx).ok());
  ASSERT_EQ(events_.History().size(), 1u);
  Event e = events_.History()[0];
  EXPECT_EQ(e.args[0].as_string(), "Bob");
  EXPECT_DOUBLE_EQ(e.args[1].as_float(), 400);
}

TEST(EventManagerTest, WildcardAndHistoryBounds) {
  EventManager events(/*history_capacity=*/3);
  int wildcard_hits = 0;
  events.Register("*", [&](const Event&) { ++wildcard_hits; });
  for (int i = 0; i < 5; ++i) {
    events.Raise(Event{"E" + std::to_string(i), {}});
  }
  EXPECT_EQ(wildcard_hits, 5);
  EXPECT_EQ(events.num_raised(), 5u);
  auto history = events.History();
  ASSERT_EQ(history.size(), 3u);  // bounded
  EXPECT_EQ(history[0].name, "E2");
  EXPECT_EQ(history[2].name, "E4");
  events.ClearHistory();
  EXPECT_TRUE(events.History().empty());
}

TEST(EventManagerTest, ConsumerMatchingIsCaseInsensitive) {
  EventManager events;
  int hits = 0;
  uint64_t id = events.Register("PriceAlert", [&](const Event&) { ++hits; });
  events.Raise(Event{"pricealert", {}});
  events.Raise(Event{"PRICEALERT", {}});
  events.Raise(Event{"other", {}});
  EXPECT_EQ(hits, 2);
  events.Unregister(id);
  events.Raise(Event{"PriceAlert", {}});
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace tman
