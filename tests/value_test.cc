#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/update_descriptor.h"
#include "types/value.h"

namespace tman {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_EQ(DataTypeName(DataType::kInt), "int");
  EXPECT_EQ(DataTypeName(DataType::kVarchar), "varchar");
}

TEST(DataTypeTest, FromName) {
  EXPECT_EQ(*DataTypeFromName("INT"), DataType::kInt);
  EXPECT_EQ(*DataTypeFromName("integer"), DataType::kInt);
  EXPECT_EQ(*DataTypeFromName("Float"), DataType::kFloat);
  EXPECT_EQ(*DataTypeFromName("char"), DataType::kChar);
  EXPECT_EQ(*DataTypeFromName("VARCHAR"), DataType::kVarchar);
  EXPECT_FALSE(DataTypeFromName("blob").ok());
}

TEST(DataTypeTest, Comparability) {
  EXPECT_TRUE(Comparable(DataType::kInt, DataType::kFloat));
  EXPECT_TRUE(Comparable(DataType::kChar, DataType::kVarchar));
  EXPECT_FALSE(Comparable(DataType::kInt, DataType::kVarchar));
}

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, IntFloatCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3), Value::Float(3.0));
  EXPECT_LT(Value::Int(3), Value::Float(3.5));
  EXPECT_GT(Value::Float(4.1), Value::Int(4));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Float(3.0).Hash());
  EXPECT_EQ(Value::String("hi").Hash(), Value::String("hi").Hash());
  EXPECT_NE(Value::String("hi").Hash(), Value::String("ho").Hash());
}

TEST(ValueTest, CastToInt) {
  EXPECT_EQ(Value::String("42").CastTo(DataType::kInt)->as_int(), 42);
  EXPECT_EQ(Value::Float(3.9).CastTo(DataType::kInt)->as_int(), 3);
  EXPECT_FALSE(Value::String("abc").CastTo(DataType::kInt).ok());
  EXPECT_FALSE(Value::String("12x").CastTo(DataType::kInt).ok());
}

TEST(ValueTest, CastToFloatAndString) {
  EXPECT_DOUBLE_EQ(Value::String("2.5").CastTo(DataType::kFloat)->as_float(),
                   2.5);
  EXPECT_EQ(Value::Int(7).CastTo(DataType::kVarchar)->as_string(), "7");
  EXPECT_TRUE(Value::Null().CastTo(DataType::kInt)->is_null());
}

TEST(ValueTest, ToStringQuotesAndEscapes) {
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("it's").ToString(), "'it''s'");
}

TEST(ValueTest, FloatToStringRoundTrips) {
  double v = 0.1 + 0.2;  // not exactly 0.3
  std::string s = Value::Float(v).ToString();
  EXPECT_EQ(std::stod(s), v);
}

TEST(ValueVectorTest, CompareLexicographic) {
  std::vector<Value> a{Value::Int(1), Value::String("b")};
  std::vector<Value> b{Value::Int(1), Value::String("c")};
  std::vector<Value> c{Value::Int(1)};
  EXPECT_LT(CompareValues(a, b), 0);
  EXPECT_GT(CompareValues(b, a), 0);
  EXPECT_GT(CompareValues(a, c), 0);  // longer wins on equal prefix
  EXPECT_EQ(CompareValues(a, a), 0);
}

TEST(ValueVectorTest, HashValuesOrderSensitive) {
  std::vector<Value> a{Value::Int(1), Value::Int(2)};
  std::vector<Value> b{Value::Int(2), Value::Int(1)};
  EXPECT_NE(HashValues(a), HashValues(b));
  EXPECT_EQ(HashValues(a), HashValues(a));
}

TEST(SchemaTest, FieldLookupCaseInsensitive) {
  Schema s({{"Hno", DataType::kInt}, {"Address", DataType::kVarchar, 64}});
  EXPECT_EQ(s.FieldIndex("hno"), 0);
  EXPECT_EQ(s.FieldIndex("ADDRESS"), 1);
  EXPECT_EQ(s.FieldIndex("zip"), -1);
  EXPECT_TRUE(s.RequireField("address").ok());
  EXPECT_FALSE(s.RequireField("zip").ok());
}

TEST(SchemaTest, ToStringShowsWidths) {
  Schema s({{"a", DataType::kVarchar, 30}});
  EXPECT_EQ(s.ToString(), "(a varchar(30))");
}

TEST(TupleTest, SerializeRoundTrip) {
  Tuple t({Value::Int(42), Value::Null(), Value::Float(2.5),
           Value::String("hello world")});
  std::string buf;
  t.Serialize(&buf);
  size_t pos = 0;
  auto back = Tuple::Deserialize(buf, &pos);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(*back, t);
}

TEST(TupleTest, SerializeEmptyTuple) {
  Tuple t;
  std::string buf;
  t.Serialize(&buf);
  size_t pos = 0;
  auto back = Tuple::Deserialize(buf, &pos);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(TupleTest, SerializeBinaryStringContents) {
  std::string binary("\x00\x01\xff\x27", 4);
  Tuple t({Value::String(binary)});
  std::string buf;
  t.Serialize(&buf);
  size_t pos = 0;
  auto back = Tuple::Deserialize(buf, &pos);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0).as_string(), binary);
}

TEST(TupleTest, DeserializeTruncatedFails) {
  Tuple t({Value::Int(1), Value::String("abc")});
  std::string buf;
  t.Serialize(&buf);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    size_t pos = 0;
    auto r = Tuple::Deserialize(std::string_view(buf.data(), cut), &pos);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(TupleTest, CoerceToSchemaCastsAndValidates) {
  Schema s({{"a", DataType::kInt}, {"b", DataType::kVarchar}});
  auto ok = CoerceToSchema(Tuple({Value::String("5"), Value::Int(9)}), s);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->at(0).as_int(), 5);
  EXPECT_EQ(ok->at(1).as_string(), "9");

  EXPECT_FALSE(CoerceToSchema(Tuple({Value::Int(1)}), s).ok());  // arity
  EXPECT_FALSE(
      CoerceToSchema(Tuple({Value::String("xy"), Value::Int(1)}), s).ok());
}

TEST(UpdateDescriptorTest, FactoryAndEffectiveTuple) {
  Tuple t1({Value::Int(1)});
  Tuple t2({Value::Int(2)});
  auto ins = UpdateDescriptor::Insert(7, t1);
  EXPECT_EQ(ins.op, OpCode::kInsert);
  EXPECT_EQ(ins.EffectiveTuple(), t1);

  auto del = UpdateDescriptor::Delete(7, t1);
  EXPECT_EQ(del.EffectiveTuple(), t1);

  auto upd = UpdateDescriptor::Update(7, t1, t2);
  EXPECT_EQ(upd.EffectiveTuple(), t2);  // new image drives matching
  EXPECT_EQ(*upd.old_tuple, t1);
}

TEST(UpdateDescriptorTest, SerializeRoundTrip) {
  auto upd = UpdateDescriptor::Update(
      99, Tuple({Value::Int(1), Value::String("a")}),
      Tuple({Value::Int(2), Value::String("b")}));
  std::string buf;
  upd.Serialize(&buf);
  auto back = UpdateDescriptor::Deserialize(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->data_source, 99u);
  EXPECT_EQ(back->op, OpCode::kUpdate);
  EXPECT_EQ(*back->old_tuple, *upd.old_tuple);
  EXPECT_EQ(*back->new_tuple, *upd.new_tuple);
}

TEST(UpdateDescriptorTest, OpMatchesSemantics) {
  EXPECT_TRUE(OpMatches(OpCode::kInsert, OpCode::kInsert));
  EXPECT_FALSE(OpMatches(OpCode::kInsert, OpCode::kUpdate));
  EXPECT_TRUE(OpMatches(OpCode::kInsertOrUpdate, OpCode::kInsert));
  EXPECT_TRUE(OpMatches(OpCode::kInsertOrUpdate, OpCode::kUpdate));
  EXPECT_FALSE(OpMatches(OpCode::kInsertOrUpdate, OpCode::kDelete));
  EXPECT_TRUE(OpMatches(OpCode::kDelete, OpCode::kDelete));
}

}  // namespace
}  // namespace tman
