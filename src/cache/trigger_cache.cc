#include "cache/trigger_cache.h"

namespace tman {

TriggerCache::TriggerCache(size_t capacity, TriggerLoader loader)
    : capacity_(capacity == 0 ? 1 : capacity), loader_(std::move(loader)) {}

Result<TriggerHandle> TriggerCache::Pin(TriggerId id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(id);
    if (it != slots_.end()) {
      ++stats_.hits;
      Touch(id);
      return it->second.handle;
    }
    ++stats_.misses;
  }
  // Load outside the lock: catalog loads parse trigger text and may do
  // I/O; concurrent pins of different triggers must not serialize on it.
  auto loaded = loader_(id);
  if (!loaded.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.loads_failed;
    return loaded.status();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(id);
  if (it != slots_.end()) {
    // Another thread raced the load; keep the resident copy.
    Touch(id);
    return it->second.handle;
  }
  Slot slot;
  slot.handle = *loaded;
  slot.lru_pos = lru_.insert(lru_.end(), id);
  slots_[id] = std::move(slot);
  EvictIfNeeded();
  return *loaded;
}

void TriggerCache::Put(TriggerId id, TriggerHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(id);
  if (it != slots_.end()) {
    it->second.handle = std::move(handle);
    Touch(id);
    return;
  }
  Slot slot;
  slot.handle = std::move(handle);
  slot.lru_pos = lru_.insert(lru_.end(), id);
  slots_[id] = std::move(slot);
  EvictIfNeeded();
}

void TriggerCache::Invalidate(TriggerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(id);
  if (it == slots_.end()) return;
  lru_.erase(it->second.lru_pos);
  slots_.erase(it);
}

void TriggerCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
  lru_.clear();
}

size_t TriggerCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

TriggerCacheStats TriggerCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TriggerCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = TriggerCacheStats();
}

void TriggerCache::Touch(TriggerId id) {
  auto it = slots_.find(id);
  lru_.erase(it->second.lru_pos);
  it->second.lru_pos = lru_.insert(lru_.end(), id);
}

void TriggerCache::EvictIfNeeded() {
  while (slots_.size() > capacity_ && !lru_.empty()) {
    TriggerId victim = lru_.front();
    lru_.pop_front();
    slots_.erase(victim);
    ++stats_.evictions;
    // Pinned handles stay alive through their shared_ptr even after the
    // slot is gone — eviction only drops the cache's reference.
  }
}

}  // namespace tman
