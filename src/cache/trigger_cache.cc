#include "cache/trigger_cache.h"

#include <algorithm>
#include <mutex>

#include "util/hash.h"

namespace tman {

TriggerCache::TriggerCache(size_t capacity, TriggerLoader loader,
                           uint32_t num_shards)
    : capacity_(capacity == 0 ? 1 : capacity), loader_(std::move(loader)) {
  if (num_shards == 0) {
    num_shards = static_cast<uint32_t>(
        std::clamp<size_t>(capacity_ / 1024, 1, 16));
  }
  // Never run more shards than capacity: every shard must hold at least
  // one description.
  num_shards = static_cast<uint32_t>(
      std::min<size_t>(num_shards, capacity_));
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = (capacity_ + num_shards - 1) / num_shards;  // ceil
}

TriggerCache::Shard& TriggerCache::ShardFor(TriggerId id) const {
  return *shards_[MixInt(static_cast<uint64_t>(id)) % shards_.size()];
}

Result<TriggerHandle> TriggerCache::Pin(TriggerId id) {
  Shard& shard = ShardFor(id);
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.slots.find(id);
    if (it != shard.slots.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      // The deferred "LRU touch": no list splice, no exclusive lock —
      // the CLOCK hand reads this bit at eviction time.
      it->second.referenced.store(true, std::memory_order_relaxed);
      return it->second.handle;
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Load outside any lock: catalog loads parse trigger text and may do
  // I/O; concurrent pins of different triggers must not serialize on it.
  auto loaded = loader_(id);
  if (!loaded.ok()) {
    shard.loads_failed.fetch_add(1, std::memory_order_relaxed);
    return loaded.status();
  }
  std::unique_lock lock(shard.mutex);
  auto it = shard.slots.find(id);
  if (it != shard.slots.end()) {
    // Another thread raced the load; keep the resident copy.
    it->second.referenced.store(true, std::memory_order_relaxed);
    return it->second.handle;
  }
  InsertLocked(shard, id, *loaded);
  return *loaded;
}

void TriggerCache::Put(TriggerId id, TriggerHandle handle) {
  Shard& shard = ShardFor(id);
  std::unique_lock lock(shard.mutex);
  auto it = shard.slots.find(id);
  if (it != shard.slots.end()) {
    it->second.handle = std::move(handle);
    it->second.referenced.store(true, std::memory_order_relaxed);
    return;
  }
  InsertLocked(shard, id, std::move(handle));
}

void TriggerCache::InsertLocked(Shard& shard, TriggerId id,
                                TriggerHandle handle) {
  Slot& slot = shard.slots[id];
  slot.handle = std::move(handle);
  // New entries start unreferenced: only an actual hit earns the second
  // chance, which preserves the scan-resistance of strict LRU for
  // load-once workloads.
  slot.referenced.store(false, std::memory_order_relaxed);
  slot.ring_pos = shard.ring.size();
  shard.ring.push_back(id);
  EvictIfNeededLocked(shard);
}

void TriggerCache::RemoveFromRingLocked(Shard& shard, size_t ring_pos) {
  size_t last = shard.ring.size() - 1;
  if (ring_pos != last) {
    TriggerId moved = shard.ring[last];
    shard.ring[ring_pos] = moved;
    shard.slots[moved].ring_pos = ring_pos;
  }
  shard.ring.pop_back();
  if (shard.ring.empty()) {
    shard.hand = 0;
  } else {
    shard.hand %= shard.ring.size();
  }
}

void TriggerCache::EvictIfNeededLocked(Shard& shard) {
  while (shard.slots.size() > shard_capacity_ && !shard.ring.empty()) {
    TriggerId candidate = shard.ring[shard.hand];
    Slot& slot = shard.slots[candidate];
    if (slot.referenced.load(std::memory_order_relaxed)) {
      // Second chance: clear the bit and advance the hand.
      slot.referenced.store(false, std::memory_order_relaxed);
      shard.hand = (shard.hand + 1) % shard.ring.size();
      continue;
    }
    RemoveFromRingLocked(shard, shard.hand);
    shard.slots.erase(candidate);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    // Pinned handles stay alive through their shared_ptr even after the
    // slot is gone — eviction only drops the cache's reference.
  }
}

void TriggerCache::Invalidate(TriggerId id) {
  Shard& shard = ShardFor(id);
  std::unique_lock lock(shard.mutex);
  auto it = shard.slots.find(id);
  if (it == shard.slots.end()) return;
  RemoveFromRingLocked(shard, it->second.ring_pos);
  shard.slots.erase(it);
}

void TriggerCache::Clear() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->slots.clear();
    shard->ring.clear();
    shard->hand = 0;
  }
}

size_t TriggerCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    total += shard->slots.size();
  }
  return total;
}

TriggerCacheStats TriggerCache::stats() const {
  TriggerCacheStats stats;
  for (const auto& shard : shards_) {
    stats.hits += shard->hits.load(std::memory_order_relaxed);
    stats.misses += shard->misses.load(std::memory_order_relaxed);
    stats.evictions += shard->evictions.load(std::memory_order_relaxed);
    stats.loads_failed += shard->loads_failed.load(std::memory_order_relaxed);
  }
  return stats;
}

void TriggerCache::ResetStats() {
  for (auto& shard : shards_) {
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->evictions.store(0, std::memory_order_relaxed);
    shard->loads_failed.store(0, std::memory_order_relaxed);
  }
}

}  // namespace tman
