#ifndef TRIGGERMAN_CACHE_TRIGGER_CACHE_H_
#define TRIGGERMAN_CACHE_TRIGGER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "predindex/predicate_entry.h"
#include "util/result.h"

namespace tman {

struct TriggerRuntime;

/// Shared handle to a cached trigger description. Holding the handle is
/// the "pin": the description cannot be destroyed while any handle is
/// live, even if the cache evicts its slot (§5.4 — the pin operation is
/// analogous to a buffer-pool pin).
using TriggerHandle = std::shared_ptr<const TriggerRuntime>;

/// Loads a trigger description from the on-disk trigger catalog (parse the
/// stored text, rebuild syntax tree + network skeleton). Installed by the
/// TriggerManager.
using TriggerLoader =
    std::function<Result<TriggerHandle>(TriggerId trigger_id)>;

struct TriggerCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t loads_failed = 0;
};

/// The trigger cache (§5.1): complete descriptions of recently accessed
/// triggers, kept in main memory with second-chance (CLOCK) replacement.
/// Sized in number of triggers (the paper's arithmetic: ~4 KB per
/// description, 16,384 descriptions in a 64 MB cache).
///
/// Scaling: the cache is sharded by trigger id, each shard holding its
/// own map + CLOCK ring under a shard shared_mutex. A hit — by far the
/// dominant operation once the working set is resident — takes only the
/// shard's *read* lock and records recency by setting an atomic
/// reference bit, so concurrent pins of hot triggers serialize on
/// nothing: no global mutex, no LRU list splice. Eviction runs the CLOCK
/// hand under the shard's write lock; a set reference bit buys a slot a
/// second chance (the deferred equivalent of an LRU touch).
class TriggerCache {
 public:
  /// `num_shards` = 0 scales the shard count with capacity (one shard
  /// per 1024 descriptions, clamped to [1, 16]), so small caches — and
  /// the deterministic unit tests that size them in single digits —
  /// behave as one CLOCK ring.
  TriggerCache(size_t capacity, TriggerLoader loader, uint32_t num_shards = 0);

  TriggerCache(const TriggerCache&) = delete;
  TriggerCache& operator=(const TriggerCache&) = delete;

  /// Pins a trigger: returns the cached description, loading it through
  /// the catalog loader on a miss (possibly evicting a second-chance
  /// victim).
  Result<TriggerHandle> Pin(TriggerId id);

  /// Inserts/refreshes a description directly (used right after create
  /// trigger, so the first firing does not re-load it).
  void Put(TriggerId id, TriggerHandle handle);

  /// Drops a trigger from the cache (drop trigger / disable).
  void Invalidate(TriggerId id);

  /// Drops everything (e.g. after bulk catalog changes).
  void Clear();

  size_t capacity() const { return capacity_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  size_t size() const;
  TriggerCacheStats stats() const;
  void ResetStats();

 private:
  struct Slot {
    TriggerHandle handle;
    /// Set on every hit (under the shard's shared lock); cleared by the
    /// CLOCK hand. Replaces the LRU touch with a race-free atomic store.
    std::atomic<bool> referenced{false};
    /// Position in the shard's CLOCK ring (maintained under the shard's
    /// exclusive lock).
    size_t ring_pos = 0;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<TriggerId, Slot> slots;
    std::vector<TriggerId> ring;  // CLOCK ring over resident ids
    size_t hand = 0;

    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> loads_failed{0};
  };

  Shard& ShardFor(TriggerId id) const;

  /// Inserts `handle` into `shard` and runs the CLOCK hand if the shard
  /// outgrew its share of the capacity. Requires the shard's exclusive
  /// lock.
  void InsertLocked(Shard& shard, TriggerId id, TriggerHandle handle);
  void EvictIfNeededLocked(Shard& shard);
  void RemoveFromRingLocked(Shard& shard, size_t ring_pos);

  const size_t capacity_;
  size_t shard_capacity_ = 0;
  TriggerLoader loader_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tman

#endif  // TRIGGERMAN_CACHE_TRIGGER_CACHE_H_
