#ifndef TRIGGERMAN_CACHE_TRIGGER_CACHE_H_
#define TRIGGERMAN_CACHE_TRIGGER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "predindex/predicate_entry.h"
#include "util/result.h"

namespace tman {

struct TriggerRuntime;

/// Shared handle to a cached trigger description. Holding the handle is
/// the "pin": the description cannot be destroyed while any handle is
/// live, even if the cache evicts its slot (§5.4 — the pin operation is
/// analogous to a buffer-pool pin).
using TriggerHandle = std::shared_ptr<const TriggerRuntime>;

/// Loads a trigger description from the on-disk trigger catalog (parse the
/// stored text, rebuild syntax tree + network skeleton). Installed by the
/// TriggerManager.
using TriggerLoader =
    std::function<Result<TriggerHandle>(TriggerId trigger_id)>;

struct TriggerCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t loads_failed = 0;
};

/// The trigger cache (§5.1): complete descriptions of recently accessed
/// triggers, kept in main memory with LRU replacement. Sized in number of
/// triggers (the paper's arithmetic: ~4 KB per description, 16,384
/// descriptions in a 64 MB cache).
class TriggerCache {
 public:
  TriggerCache(size_t capacity, TriggerLoader loader);

  TriggerCache(const TriggerCache&) = delete;
  TriggerCache& operator=(const TriggerCache&) = delete;

  /// Pins a trigger: returns the cached description, loading it through
  /// the catalog loader on a miss (possibly evicting the LRU entry).
  Result<TriggerHandle> Pin(TriggerId id);

  /// Inserts/refreshes a description directly (used right after create
  /// trigger, so the first firing does not re-load it).
  void Put(TriggerId id, TriggerHandle handle);

  /// Drops a trigger from the cache (drop trigger / disable).
  void Invalidate(TriggerId id);

  /// Drops everything (e.g. after bulk catalog changes).
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  TriggerCacheStats stats() const;
  void ResetStats();

 private:
  void Touch(TriggerId id);    // requires mutex_ held
  void EvictIfNeeded();        // requires mutex_ held

  const size_t capacity_;
  TriggerLoader loader_;

  mutable std::mutex mutex_;
  struct Slot {
    TriggerHandle handle;
    std::list<TriggerId>::iterator lru_pos;
  };
  std::unordered_map<TriggerId, Slot> slots_;
  std::list<TriggerId> lru_;  // front = least recently used
  TriggerCacheStats stats_;
};

}  // namespace tman

#endif  // TRIGGERMAN_CACHE_TRIGGER_CACHE_H_
