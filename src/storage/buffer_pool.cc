#include "storage/buffer_pool.h"

#include <cassert>

namespace tman {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_frames)
    : disk_(disk), capacity_(capacity_frames == 0 ? 1 : capacity_frames) {
  frames_.reserve(capacity_);
  FaultInjector* faults = disk_->fault_injector();
  faults->RegisterSite("buffer.fetch");
  faults->RegisterSite("buffer.new");
  faults->RegisterSite("buffer.flush");
}

Status BufferPool::FetchPage(PageId id, PageGuard* guard) {
  TMAN_RETURN_IF_ERROR(disk_->fault_injector()->Check("buffer.fetch"));
  // Drop any pin the caller's guard still holds *before* taking the pool
  // mutex: assigning into a live guard under the lock would re-enter
  // Unpin() and deadlock.
  guard->Release();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = page_table_.find(id);
    if (it == page_table_.end()) break;
    Frame& f = frames_[it->second];
    if (f.io_pending) {
      // Another thread is reading this page from disk; wait for its read
      // instead of issuing a duplicate one, then re-look-up — a failed
      // read erases the entry and this thread becomes the new initiator.
      io_cv_.wait(lock);
      continue;
    }
    ++stats_.hits;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    *guard = PageGuard(this, it->second, id, &f.page);
    return Status::OK();
  }
  ++stats_.misses;
  size_t frame;
  TMAN_RETURN_IF_ERROR(GetFreeFrame(&frame));
  Frame& f = frames_[frame];
  // Claim the frame and publish the page-table entry, then drop the pool
  // mutex for the disk read: fetches of other pages proceed concurrently,
  // and fetches of this page park on the frame's io-pending latch above.
  // The pin keeps the frame off the LRU; &f stays valid across the unlock
  // because frames_ is reserved to capacity_ and never reallocates.
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.io_pending = true;
  f.in_lru = false;
  page_table_[id] = frame;
  lock.unlock();
  Status read = disk_->ReadPage(id, &f.page);
  lock.lock();
  f.io_pending = false;
  if (!read.ok()) {
    // Undo the claim so the next fetch retries the read; park the frame at
    // the LRU front for immediate reuse.
    page_table_.erase(id);
    f.page_id = kInvalidPageId;
    f.pin_count = 0;
    f.lru_pos = lru_.insert(lru_.begin(), frame);
    f.in_lru = true;
    io_cv_.notify_all();
    return read;
  }
  io_cv_.notify_all();
  *guard = PageGuard(this, frame, id, &f.page);
  return Status::OK();
}

Status BufferPool::NewPage(PageGuard* guard) {
  TMAN_RETURN_IF_ERROR(disk_->fault_injector()->Check("buffer.new"));
  guard->Release();  // see FetchPage
  std::unique_lock<std::mutex> lock(mutex_);
  size_t frame;
  TMAN_RETURN_IF_ERROR(GetFreeFrame(&frame));
  PageId id = disk_->AllocatePage();
  Frame& f = frames_[frame];
  f.page = Page();
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;  // ensure the zeroed page reaches disk
  f.in_lru = false;
  page_table_[id] = frame;
  *guard = PageGuard(this, frame, id, &f.page);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  TMAN_RETURN_IF_ERROR(disk_->fault_injector()->Check("buffer.flush"));
  std::unique_lock<std::mutex> lock(mutex_);
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      TMAN_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page));
      f.dirty = false;
      ++stats_.dirty_writebacks;
    }
  }
  // The flush is only durable once the disk acknowledges the barrier; a
  // failed sync leaves callers unable to assume anything written above
  // persisted, so propagate it.
  return disk_->Sync();
}

void BufferPool::Discard(PageId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return;
  Frame& f = frames_[it->second];
  if (f.pin_count > 0) return;  // pinned pages cannot be discarded
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.page_id = kInvalidPageId;
  f.dirty = false;
  // Reuse: park the frame at the LRU front so GetFreeFrame finds it first.
  f.lru_pos = lru_.insert(lru_.begin(), it->second);
  f.in_lru = true;
  page_table_.erase(it);
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = BufferPoolStats();
}

void BufferPool::Unpin(size_t frame, bool dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame];
  assert(f.pin_count > 0);
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0 && f.page_id != kInvalidPageId) {
    f.lru_pos = lru_.insert(lru_.end(), frame);
    f.in_lru = true;
  }
}

Status BufferPool::GetFreeFrame(size_t* out) {
  if (frames_.size() < capacity_) {
    frames_.emplace_back();
    *out = frames_.size() - 1;
    return Status::OK();
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  size_t victim = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[victim];
  f.in_lru = false;
  if (f.page_id != kInvalidPageId) {
    if (f.dirty) {
      Status flush = disk_->WritePage(f.page_id, f.page);
      if (!flush.ok()) {
        // Put the victim back so the frame is not leaked; the caller sees
        // the I/O error and the pool stays usable once the disk recovers.
        f.lru_pos = lru_.insert(lru_.begin(), victim);
        f.in_lru = true;
        return flush;
      }
      ++stats_.dirty_writebacks;
    }
    page_table_.erase(f.page_id);
    ++stats_.evictions;
  }
  f.page_id = kInvalidPageId;
  f.dirty = false;
  *out = victim;
  return Status::OK();
}

}  // namespace tman
