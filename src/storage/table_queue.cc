#include "storage/table_queue.h"

#include <cstring>
#include <vector>

#include "util/crc32.h"

namespace tman {

namespace {

// Data page layout:
//   [0..2)  u16 slot_count
//   [2..4)  u16 data_start
//   [4..8)  u32 next_page
//   [8..)   slots {u16 off, u16 len, u32 crc}
//
// The per-record CRC makes a torn page write detectable: a page whose
// slot directory landed but whose record bytes did not (or vice versa)
// yields a checksum mismatch instead of silently corrupt payload.
constexpr size_t kHeader = 8;
constexpr size_t kSlotSize = 8;

uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void PutU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

void InitDataPage(char* d) {
  PutU16(d, 0);
  PutU16(d + 2, static_cast<uint16_t>(kPageSize));
  PutU32(d + 4, kInvalidPageId);
}

size_t FreeSpace(const char* d) {
  size_t top = kHeader + GetU16(d) * kSlotSize;
  size_t start = GetU16(d + 2);
  return start > top ? start - top : 0;
}

}  // namespace

TableQueue::TableQueue(BufferPool* pool, PageId meta_page)
    : pool_(pool), meta_page_(meta_page) {
  FaultInjector* faults = pool_->disk()->fault_injector();
  faults->RegisterSite("table_queue.push");
  faults->RegisterSite("table_queue.push.meta");
  faults->RegisterSite("table_queue.pop");
  faults->RegisterSite("table_queue.pop.meta");
}

Result<PageId> TableQueue::Create(BufferPool* pool) {
  PageGuard first;
  TMAN_RETURN_IF_ERROR(pool->NewPage(&first));
  InitDataPage(first.data());
  first.MarkDirty();

  PageGuard meta;
  TMAN_RETURN_IF_ERROR(pool->NewPage(&meta));
  char* d = meta.data();
  PutU32(d, first.page_id());       // head page
  PutU32(d + 4, 0);                 // head slot
  PutU32(d + 8, first.page_id());   // tail page
  uint64_t zero = 0;
  std::memcpy(d + 12, &zero, 8);    // count
  meta.MarkDirty();
  return meta.page_id();
}

Result<TableQueue::Meta> TableQueue::ReadMeta() const {
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(meta_page_, &guard));
  const char* d = guard.data();
  Meta m;
  m.head_page = GetU32(d);
  m.head_slot = GetU32(d + 4);
  m.tail_page = GetU32(d + 8);
  std::memcpy(&m.count, d + 12, 8);
  return m;
}

Status TableQueue::WriteMeta(const Meta& m) {
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(meta_page_, &guard));
  char* d = guard.data();
  PutU32(d, m.head_page);
  PutU32(d + 4, m.head_slot);
  PutU32(d + 8, m.tail_page);
  std::memcpy(d + 12, &m.count, 8);
  guard.MarkDirty();
  return Status::OK();
}

Status TableQueue::Enqueue(std::string_view record) {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultInjector* faults = pool_->disk()->fault_injector();
  TMAN_RETURN_IF_ERROR(faults->Check("table_queue.push"));
  if (record.size() + kHeader + kSlotSize > kPageSize) {
    return Status::NotSupported("queued record larger than one page");
  }
  TMAN_ASSIGN_OR_RETURN(Meta m, ReadMeta());
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(m.tail_page, &guard));
  char* d = guard.data();
  if (FreeSpace(d) < record.size() + kSlotSize) {
    PageGuard fresh;
    TMAN_RETURN_IF_ERROR(pool_->NewPage(&fresh));
    InitDataPage(fresh.data());
    fresh.MarkDirty();
    PageId fresh_id = fresh.page_id();
    // NewPage may have evicted the tail page; re-fetch before linking.
    // A failure past this point orphans the fresh page (a leak, never an
    // inconsistency): the metadata still names the old tail, whose next
    // pointer is simply overwritten by the Enqueue that succeeds.
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(m.tail_page, &guard));
    d = guard.data();
    PutU32(d + 4, fresh_id);
    guard.MarkDirty();
    m.tail_page = fresh_id;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(fresh_id, &guard));
    d = guard.data();
  }
  uint16_t slot = GetU16(d);
  uint16_t old_start = GetU16(d + 2);
  uint16_t off = static_cast<uint16_t>(old_start - record.size());
  std::memcpy(d + off, record.data(), record.size());
  PutU16(d + 2, off);
  char* s = d + kHeader + slot * kSlotSize;
  PutU16(s, off);
  PutU16(s + 2, static_cast<uint16_t>(record.size()));
  PutU32(s + 4, Crc32(record));
  PutU16(d, static_cast<uint16_t>(slot + 1));
  guard.MarkDirty();
  ++m.count;
  // Mid-push crash point: the record sits in the pinned tail page but the
  // metadata page — the authority on queue contents — is not yet updated.
  Status persisted = faults->Check("table_queue.push.meta");
  if (persisted.ok()) persisted = WriteMeta(m);
  if (!persisted.ok()) {
    // Roll back the slot (the tail page is still pinned, so this cannot
    // fail): meta still describes the old contents, and leaving a ghost
    // slot would make a later Dequeue hand out this failed record in
    // place of a real one.
    PutU16(d, slot);
    PutU16(d + 2, old_start);
    return persisted;
  }
  return Status::OK();
}

Result<std::string> TableQueue::Dequeue() {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultInjector* faults = pool_->disk()->fault_injector();
  TMAN_RETURN_IF_ERROR(faults->Check("table_queue.pop"));
  TMAN_ASSIGN_OR_RETURN(Meta m, ReadMeta());
  if (m.count == 0) return Status::NotFound("queue empty");
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(m.head_page, &guard));
  const char* d = guard.data();
  uint16_t slots = GetU16(d);
  // Exhausted head pages are stepped over now but recycled only *after*
  // the new metadata is written: deallocating first would leave the
  // metadata pointing at freed pages if the meta write then failed.
  std::vector<PageId> drained;
  while (m.head_slot >= slots && m.head_page != m.tail_page) {
    PageId next = GetU32(d + 4);
    drained.push_back(m.head_page);
    m.head_page = next;
    m.head_slot = 0;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(m.head_page, &guard));
    d = guard.data();
    slots = GetU16(d);
  }
  if (m.head_slot >= slots) {
    return Status::Corruption("queue head past slot count");
  }
  const char* s = d + kHeader + m.head_slot * kSlotSize;
  uint16_t off = GetU16(s);
  uint16_t len = GetU16(s + 2);
  std::string record(d + off, len);
  if (Crc32(record) != GetU32(s + 4)) {
    return Status::Corruption("queued record failed checksum");
  }
  ++m.head_slot;
  --m.count;
  // Head page exhausted and not the tail: advance past it. (The tail page
  // is kept even when drained so Enqueue always has a target.)
  if (m.head_slot >= slots && m.head_page != m.tail_page) {
    PageId next = GetU32(d + 4);
    drained.push_back(m.head_page);
    m.head_page = next;
    m.head_slot = 0;
  }
  // Mid-pop crash point: record extracted but meta not yet updated — a
  // failure here must leave the record in the queue, not consumed.
  Status persisted = faults->Check("table_queue.pop.meta");
  if (persisted.ok()) persisted = WriteMeta(m);
  TMAN_RETURN_IF_ERROR(persisted);
  // The new meta is authoritative; recycling the drained pages can no
  // longer break consistency (a failed deallocation merely leaks a page).
  guard.Release();
  for (PageId id : drained) {
    pool_->Discard(id);
    (void)pool_->disk()->DeallocatePage(id);
  }
  return record;
}

Result<uint64_t> TableQueue::RecoverTorn() {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(Meta m, ReadMeta());
  if (m.count == 0) return 0;
  // Walk the live records in FIFO order verifying checksums. The enqueue
  // write order (record page, then meta) means only the *final* record can
  // legitimately be torn: its slot landed but the page tail carrying its
  // bytes did not. A checksum failure anywhere earlier is real corruption.
  PageGuard guard;
  PageId page = m.head_page;
  uint32_t slot = m.head_slot;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(page, &guard));
  const char* d = guard.data();
  for (uint64_t i = 0; i < m.count; ++i) {
    uint16_t slots = GetU16(d);
    while (slot >= slots && page != m.tail_page) {
      page = GetU32(d + 4);
      slot = 0;
      TMAN_RETURN_IF_ERROR(pool_->FetchPage(page, &guard));
      d = guard.data();
      slots = GetU16(d);
    }
    if (slot >= slots) {
      return Status::Corruption("queue head past slot count");
    }
    const char* s = d + kHeader + slot * kSlotSize;
    uint16_t off = GetU16(s);
    uint16_t len = GetU16(s + 2);
    bool bad = static_cast<size_t>(off) + len > kPageSize ||
               Crc32(std::string_view(d + off, len)) != GetU32(s + 4);
    if (bad) {
      if (i + 1 != m.count) {
        return Status::Corruption("non-final queued record failed checksum");
      }
      // Torn tail: drop the final record by rolling its slot back and
      // shrinking the count; the preceding records are intact.
      char* w = guard.data();
      PutU16(w, static_cast<uint16_t>(slot));
      guard.MarkDirty();
      --m.count;
      TMAN_RETURN_IF_ERROR(WriteMeta(m));
      return 1;
    }
    ++slot;
  }
  return 0;
}

Result<uint64_t> TableQueue::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(Meta m, ReadMeta());
  return m.count;
}

bool TableQueue::Empty() const {
  auto size = Size();
  return !size.ok() || *size == 0;
}

}  // namespace tman
