#ifndef TRIGGERMAN_STORAGE_WAL_H_
#define TRIGGERMAN_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/disk_manager.h"
#include "util/result.h"

namespace tman {

/// Logical position in the log: a byte offset into the append-only record
/// stream. LSNs are absolute and stable across truncation (truncation only
/// advances the stream's retained prefix), so a record's end LSN doubles as
/// its durable identity.
using Lsn = uint64_t;

/// Record types understood by the ingestion WAL. The WAL itself treats
/// payloads as opaque bytes; TriggerManager defines the payload encodings.
/// Bytes of framing each record adds to the stream (type + length +
/// checksum); a record appended at end LSN `e` with payload size `p`
/// starts at `e - p - kWalRecordOverhead`.
inline constexpr size_t kWalRecordOverhead = 9;

enum class WalRecordType : uint8_t {
  kBatch = 1,         // a submitted update batch (tokens + session stamp)
  kProcessed = 2,     // a token of an earlier batch finished processing
  kCheckpoint = 3,    // legacy checkpoint layout (pre-meta, no per-token
                      // seq); decoded on replay, never written anymore
  kMeta = 4,          // opaque durable metadata blob (latest wins; carried
                      // forward inside checkpoints so truncation keeps it)
  kCheckpointV2 = 5,  // snapshot of live state (meta blob + sessions +
                      // pending tokens with seqs); everything before is dead
};

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t commit_calls = 0;
  uint64_t sync_rounds = 0;    // leader rounds that hit the disk
  uint64_t piggybacked = 0;    // commits satisfied by another caller's round
  uint64_t pages_written = 0;
  uint64_t truncations = 0;
};

/// Write-ahead log with batched group commit, layered directly on the
/// DiskManager (deliberately *not* the buffer pool: WAL pages are written
/// once, in order, and must never linger dirty in a cache — the header
/// write is the commit point and everything it covers must already be on
/// disk).
///
/// Physical layout. One header page plus a singly-linked chain of data
/// pages. A data page is `[0..4) u32 next_page | [4..kPageSize) payload`;
/// the record stream runs through the payload areas in chain order. The
/// header page carries two self-checksummed copies of the header (slot A
/// at byte 0, slot B at kPageSize/2) written alternately with a rising
/// sequence number, so a torn header write leaves the other copy intact
/// and recovery picks the valid copy with the higher sequence.
///
/// Record encoding: `u8 type | u32 payload_len | u32 payload_crc |
/// payload`. Records span page boundaries freely.
///
/// Group commit. Append() only buffers the record in the volatile tail and
/// returns its end LSN; nothing is durable yet. Commit(lsn) makes the
/// stream durable *at least* through lsn: the first caller into an idle
/// log becomes the leader, snapshots the whole buffered tail (including
/// records appended by threads that have not called Commit yet), writes
/// the affected pages, syncs, and publishes the new committed LSN with one
/// header write — every concurrent committer whose record was covered
/// completes without touching the disk. This is the one-fsync-per-batch
/// idiom: the cost of durability is amortized over every record that
/// joined the round.
///
/// Durability contract: the committed LSN in the header is authoritative.
/// Replay surfaces exactly the records with end LSN <= committed, in
/// order; buffered-but-uncommitted bytes simply vanish on a crash, and a
/// failed commit round leaves them buffered for a retry. A commit round
/// that fails *after* its data-page writes may still land its header write
/// on disk (the classic lost-ack), so callers must treat commit failure as
/// "possibly durable" — TriggerMan resolves the ambiguity with per-session
/// sequence dedup at replay.
///
/// Fault sites (on the disk's shared injector): "wal.append", "wal.write"
/// (per data-page write), "wal.fsync" (before the header commit write),
/// "wal.truncate" (before the truncation header write).
///
/// Thread-safe. The destructor performs no I/O (crash tests use object
/// destruction as the kill), so anything un-committed is lost by design.
class Wal {
 public:
  /// Formats a new empty log; returns its header page id.
  static Result<PageId> Create(DiskManager* disk);

  /// Opens an existing log from its header page, validating the header
  /// copies and walking the page chain covering the committed stream.
  static Result<std::unique_ptr<Wal>> Open(DiskManager* disk,
                                           PageId header_page);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Buffers one record in the volatile tail; returns its end LSN. The
  /// record is NOT durable until a Commit covering the LSN succeeds.
  Result<Lsn> Append(WalRecordType type, std::string_view payload);

  /// Group commit: returns once the stream is durable through `lsn`.
  Status Commit(Lsn lsn);

  /// Commits everything appended so far.
  Status Sync();

  /// Drops committed records wholly below `upto` (page-granular: only
  /// whole leading pages are released). Called after a checkpoint record
  /// lands to bound log growth. Concurrent-safe with Commit.
  Status Truncate(Lsn upto);

  /// Invokes `fn(type, payload, end_lsn)` for every committed record in
  /// log order. Stops and returns the first non-OK status from `fn`;
  /// returns Corruption if the committed stream fails validation.
  Status Replay(
      const std::function<Status(WalRecordType, std::string_view, Lsn)>& fn);

  PageId header_page() const { return header_page_; }
  Lsn appended_lsn() const;
  Lsn durable_lsn() const;
  Lsn start_lsn() const;

  /// Bytes currently retained by the log (appended minus truncated) —
  /// the checkpoint trigger input.
  uint64_t RetainedBytes() const;

  WalStats stats() const;

 private:
  Wal(DiskManager* disk, PageId header_page);

  struct Header {
    uint64_t seq = 0;
    PageId first_page = kInvalidPageId;
    Lsn start = 0;       // stream offset of first_page's payload byte 0
    Lsn parse_from = 0;  // first live record boundary (>= start)
    Lsn committed = 0;
  };

  static void EncodeHeaderSlot(const Header& h, char* out);
  static bool DecodeHeaderSlot(const char* in, Header* h);

  /// Writes `h` into the non-authoritative header slot (commit point).
  Status WriteHeader(const Header& h);

  /// Leader body: makes the stream durable through at least `target`.
  /// Called with `lock` held and syncing_ == true; drops the lock for I/O
  /// and reacquires before returning.
  Status RunSyncRound(std::unique_lock<std::mutex>& lock, Lsn target);

  DiskManager* disk_;
  PageId header_page_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool syncing_ = false;        // a leader round or truncation is in flight
  uint64_t header_seq_ = 0;     // last written header sequence
  bool header_slot_b_ = false;  // which slot the last header write used
  Header last_header_;          // authoritative on-disk header image
  std::string buffer_;          // bytes [durable_, appended_) not yet synced
  Lsn start_ = 0;               // stream offset of chain_[0]'s payload
  Lsn parse_from_ = 0;          // first live record boundary
  Lsn durable_ = 0;
  Lsn appended_ = 0;
  std::vector<PageId> chain_;  // data pages covering [start_, ...)
  WalStats stats_;
};

}  // namespace tman

#endif  // TRIGGERMAN_STORAGE_WAL_H_
