#ifndef TRIGGERMAN_STORAGE_HEAP_TABLE_H_
#define TRIGGERMAN_STORAGE_HEAP_TABLE_H_

#include <functional>
#include <mutex>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/result.h"

namespace tman {

/// A heap file of variable-length records stored in slotted pages, chained
/// through `next_page` pointers. Records must fit in one page (~4 KB);
/// TriggerMan stores serialized tuples, catalog rows, and trigger text here.
///
/// Simplifications relative to a production heap file, documented for
/// honesty: deleted space inside a page is only reused by in-place updates
/// that fit, and inserts always target the tail page. Catalog and constant
/// tables are insert-mostly, so fragmentation stays negligible in every
/// workload this repository runs.
class HeapTable {
 public:
  /// Opens an existing heap file rooted at `first_page`, or creates a new
  /// one if `first_page` is kInvalidPageId (Create() below).
  HeapTable(BufferPool* pool, PageId first_page);

  /// Creates an empty heap file and returns its root page id.
  static Result<PageId> Create(BufferPool* pool);

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  /// Appends a record; returns its RID.
  Result<Rid> Insert(std::string_view record);

  /// Reads the record at `rid`.
  Result<std::string> Get(const Rid& rid) const;

  /// Removes the record at `rid`.
  Status Delete(const Rid& rid);

  /// Replaces the record at `rid`. If the new record no longer fits in
  /// place, it is moved and the new RID is returned (callers owning
  /// secondary indexes must re-point them).
  Result<Rid> Update(const Rid& rid, std::string_view record);

  /// Calls `fn(rid, record)` for every live record, in page order. If `fn`
  /// returns false the scan stops early.
  Status Scan(
      const std::function<bool(const Rid&, std::string_view)>& fn) const;

  /// Number of live records (maintained incrementally; O(1)).
  uint64_t num_records() const;

  /// Number of pages in the chain (counts a full chain walk; O(pages)).
  Result<uint64_t> num_pages() const;

  PageId first_page() const { return first_page_; }

 private:
  Result<Rid> InsertLocked(std::string_view record);

  BufferPool* pool_;
  PageId first_page_;
  mutable std::mutex mutex_;
  PageId tail_hint_ = kInvalidPageId;
  mutable uint64_t num_records_ = 0;
  mutable bool counted_ = false;
};

}  // namespace tman

#endif  // TRIGGERMAN_STORAGE_HEAP_TABLE_H_
