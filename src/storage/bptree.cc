#include "storage/bptree.h"

#include <cassert>
#include <cstring>

#include "types/tuple.h"

namespace tman {

namespace {

// Node layout:
//   [0]      u8  is_leaf
//   [2..4)   u16 slot_count
//   [4..6)   u16 data_start
//   [6..10)  u32 next_leaf (leaf) / leftmost child (internal)
//   [12..)   slot array {u16 off, u16 len}, kept in key order
// Entry bytes:
//   leaf:     [u16 klen][key bytes][rid: u32 page, u16 slot]
//   internal: [u16 klen][key bytes][rid: 6 bytes][child: u32]
// The (key, rid) pair is the total ordering; storing the rid makes every
// entry unique so duplicate user keys need no special casing.
constexpr size_t kNodeHeader = 12;
constexpr size_t kSlotSize = 4;
constexpr size_t kRidSize = 6;
constexpr size_t kMaxEntry = 1024;  // guarantees >= 3 entries per node

uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void PutU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

bool IsLeaf(const char* d) { return d[0] != 0; }
uint16_t SlotCount(const char* d) { return GetU16(d + 2); }
PageId Link(const char* d) { return GetU32(d + 6); }
void SetLink(char* d, PageId v) { PutU32(d + 6, v); }

struct EntryView {
  std::string_view key;  // serialized tuple bytes
  Rid rid;
  PageId child = kInvalidPageId;  // internal nodes only
};

EntryView ParseEntry(std::string_view raw, bool is_leaf) {
  EntryView e;
  uint16_t klen = GetU16(raw.data());
  e.key = raw.substr(2, klen);
  const char* p = raw.data() + 2 + klen;
  e.rid.page_id = GetU32(p);
  e.rid.slot = GetU16(p + 4);
  if (!is_leaf) e.child = GetU32(p + kRidSize);
  return e;
}

std::string_view EntryRaw(const char* d, uint16_t slot) {
  const char* s = d + kNodeHeader + slot * kSlotSize;
  uint16_t off = GetU16(s);
  uint16_t len = GetU16(s + 2);
  return std::string_view(d + off, len);
}

std::string MakeEntry(std::string_view key_bytes, const Rid& rid,
                      PageId child, bool is_leaf) {
  std::string out;
  out.reserve(2 + key_bytes.size() + kRidSize + (is_leaf ? 0 : 4));
  char klen[2];
  PutU16(klen, static_cast<uint16_t>(key_bytes.size()));
  out.append(klen, 2);
  out.append(key_bytes);
  char ridbuf[kRidSize];
  PutU32(ridbuf, rid.page_id);
  PutU16(ridbuf + 4, rid.slot);
  out.append(ridbuf, kRidSize);
  if (!is_leaf) {
    char cbuf[4];
    PutU32(cbuf, child);
    out.append(cbuf, 4);
  }
  return out;
}

std::string EncodeKey(const std::vector<Value>& key) {
  std::string out;
  Tuple(key).Serialize(&out);
  return out;
}

std::vector<Value> DecodeKey(std::string_view key_bytes) {
  size_t pos = 0;
  auto t = Tuple::Deserialize(key_bytes, &pos);
  assert(t.ok());
  return std::move(*t).values();
}

int CompareRid(const Rid& a, const Rid& b) {
  if (a.page_id != b.page_id) return a.page_id < b.page_id ? -1 : 1;
  if (a.slot != b.slot) return a.slot < b.slot ? -1 : 1;
  return 0;
}

/// (entry key, entry rid) vs (target key, target rid).
int CmpEntryToTarget(std::string_view entry_key, const Rid& entry_rid,
                     const std::vector<Value>& target_key,
                     const Rid& target_rid) {
  std::vector<Value> vals = DecodeKey(entry_key);
  int c = CompareValues(vals, target_key);
  if (c != 0) return c;
  return CompareRid(entry_rid, target_rid);
}

constexpr Rid kMinRid{0, 0};
constexpr Rid kMaxRid{0xFFFFFFFEu, 0xFFFF};

/// Rewrites a node page from an ordered list of raw entries.
void RebuildNode(char* d, bool is_leaf, PageId link,
                 const std::vector<std::string>& entries) {
  std::memset(d, 0, kPageSize);
  d[0] = is_leaf ? 1 : 0;
  SetLink(d, link);
  uint16_t data_start = static_cast<uint16_t>(kPageSize);
  PutU16(d + 2, static_cast<uint16_t>(entries.size()));
  for (size_t i = 0; i < entries.size(); ++i) {
    data_start = static_cast<uint16_t>(data_start - entries[i].size());
    std::memcpy(d + data_start, entries[i].data(), entries[i].size());
    char* s = d + kNodeHeader + i * kSlotSize;
    PutU16(s, data_start);
    PutU16(s + 2, static_cast<uint16_t>(entries[i].size()));
  }
  PutU16(d + 4, data_start);
}

std::vector<std::string> CollectEntries(const char* d) {
  std::vector<std::string> out;
  uint16_t n = SlotCount(d);
  out.reserve(n + 1);
  for (uint16_t i = 0; i < n; ++i) out.emplace_back(EntryRaw(d, i));
  return out;
}

size_t TotalSize(const std::vector<std::string>& entries) {
  size_t sz = kNodeHeader + entries.size() * kSlotSize;
  for (const auto& e : entries) sz += e.size();
  return sz;
}

/// Binary search: first slot whose (key, rid) >= target. Returns n if none.
uint16_t LowerBound(const char* d, const std::vector<Value>& key,
                    const Rid& rid) {
  bool leaf = IsLeaf(d);
  uint16_t lo = 0;
  uint16_t hi = SlotCount(d);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    EntryView e = ParseEntry(EntryRaw(d, mid), leaf);
    if (CmpEntryToTarget(e.key, e.rid, key, rid) < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First slot whose (key, rid) > target. In internal nodes the target's
/// child is the entry *before* this position (a separator equal to the
/// target leads to its own child — separators are the first entry of the
/// right subtree, so equality belongs right).
uint16_t UpperBound(const char* d, const std::vector<Value>& key,
                    const Rid& rid) {
  bool leaf = IsLeaf(d);
  uint16_t lo = 0;
  uint16_t hi = SlotCount(d);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    EntryView e = ParseEntry(EntryRaw(d, mid), leaf);
    if (CmpEntryToTarget(e.key, e.rid, key, rid) <= 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BPTree::BPTree(BufferPool* pool, PageId meta_page)
    : pool_(pool), meta_page_(meta_page) {}

Result<PageId> BPTree::Create(BufferPool* pool) {
  PageGuard root;
  TMAN_RETURN_IF_ERROR(pool->NewPage(&root));
  RebuildNode(root.data(), /*is_leaf=*/true, kInvalidPageId, {});
  root.MarkDirty();

  PageGuard meta;
  TMAN_RETURN_IF_ERROR(pool->NewPage(&meta));
  PutU32(meta.data(), root.page_id());
  meta.MarkDirty();
  return meta.page_id();
}

Result<PageId> BPTree::Root() const {
  PageGuard meta;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(meta_page_, &meta));
  return static_cast<PageId>(GetU32(meta.data()));
}

Status BPTree::SetRoot(PageId root) {
  PageGuard meta;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(meta_page_, &meta));
  PutU32(meta.data(), root);
  meta.MarkDirty();
  return Status::OK();
}

Status BPTree::Insert(const std::vector<Value>& key, const Rid& rid) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key_bytes = EncodeKey(key);
  if (key_bytes.size() + 2 + kRidSize + 4 > kMaxEntry) {
    return Status::NotSupported("index key too large (" +
                                std::to_string(key_bytes.size()) + " bytes)");
  }
  TMAN_ASSIGN_OR_RETURN(PageId root, Root());
  Promo promo;
  TMAN_RETURN_IF_ERROR(InsertRec(root, key_bytes, rid, &promo));
  if (promo.happened) {
    // Grow the tree: new root with the old root as leftmost child.
    PageGuard fresh;
    TMAN_RETURN_IF_ERROR(pool_->NewPage(&fresh));
    EntryView sep = ParseEntry(promo.sep, /*is_leaf=*/true);
    std::vector<std::string> entries;
    entries.push_back(
        MakeEntry(sep.key, sep.rid, promo.right, /*is_leaf=*/false));
    RebuildNode(fresh.data(), /*is_leaf=*/false, root, entries);
    fresh.MarkDirty();
    TMAN_RETURN_IF_ERROR(SetRoot(fresh.page_id()));
  }
  return Status::OK();
}

Status BPTree::InsertRec(PageId node, const std::string& key_bytes,
                         const Rid& rid, Promo* promo) {
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(node, &guard));
  char* d = guard.data();
  bool leaf = IsLeaf(d);
  std::vector<Value> key = DecodeKey(key_bytes);

  std::string new_entry;
  if (leaf) {
    uint16_t pos = LowerBound(d, key, rid);
    if (pos < SlotCount(d)) {
      EntryView e = ParseEntry(EntryRaw(d, pos), true);
      if (CmpEntryToTarget(e.key, e.rid, key, rid) == 0) {
        return Status::OK();  // idempotent duplicate (key, rid)
      }
    }
    new_entry = MakeEntry(key_bytes, rid, kInvalidPageId, true);
    std::vector<std::string> entries = CollectEntries(d);
    entries.insert(entries.begin() + pos, new_entry);
    if (TotalSize(entries) <= kPageSize) {
      RebuildNode(d, true, Link(d), entries);
      guard.MarkDirty();
      return Status::OK();
    }
    // Split the leaf. Right sibling gets the upper half.
    size_t mid = entries.size() / 2;
    std::vector<std::string> left(entries.begin(), entries.begin() + mid);
    std::vector<std::string> right(entries.begin() + mid, entries.end());
    PageGuard rguard;
    TMAN_RETURN_IF_ERROR(pool_->NewPage(&rguard));
    RebuildNode(rguard.data(), true, Link(d), right);
    rguard.MarkDirty();
    RebuildNode(d, true, rguard.page_id(), left);
    guard.MarkDirty();
    promo->happened = true;
    promo->sep = right.front();  // leaf entry: klen|key|rid — parseable
    promo->right = rguard.page_id();
    return Status::OK();
  }

  // Internal node: pick the child whose separator is the last one <= key
  // (equality descends into the separator's own child).
  uint16_t pos = UpperBound(d, key, rid);
  PageId child;
  if (pos == 0) {
    child = Link(d);  // leftmost child: all keys below the first separator
  } else {
    EntryView e = ParseEntry(EntryRaw(d, pos - 1), false);
    child = e.child;
  }
  Promo child_promo;
  TMAN_RETURN_IF_ERROR(InsertRec(child, key_bytes, rid, &child_promo));
  if (!child_promo.happened) return Status::OK();

  // Re-fetch: recursion may have evicted our frame.
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(node, &guard));
  d = guard.data();
  EntryView sep = ParseEntry(child_promo.sep, /*is_leaf=*/true);
  std::vector<Value> sep_key = DecodeKey(sep.key);
  new_entry = MakeEntry(sep.key, sep.rid, child_promo.right, false);
  uint16_t ipos = LowerBound(d, sep_key, sep.rid);
  std::vector<std::string> entries = CollectEntries(d);
  entries.insert(entries.begin() + ipos, new_entry);
  if (TotalSize(entries) <= kPageSize) {
    RebuildNode(d, false, Link(d), entries);
    guard.MarkDirty();
    return Status::OK();
  }
  // Split the internal node: the middle entry moves up.
  size_t mid = entries.size() / 2;
  EntryView mid_e = ParseEntry(entries[mid], false);
  std::vector<std::string> left(entries.begin(), entries.begin() + mid);
  std::vector<std::string> right(entries.begin() + mid + 1, entries.end());
  PageGuard rguard;
  TMAN_RETURN_IF_ERROR(pool_->NewPage(&rguard));
  RebuildNode(rguard.data(), false, mid_e.child, right);
  rguard.MarkDirty();
  RebuildNode(d, false, Link(d), left);
  guard.MarkDirty();
  promo->happened = true;
  promo->sep = MakeEntry(mid_e.key, mid_e.rid, kInvalidPageId, true);
  promo->right = rguard.page_id();
  return Status::OK();
}

Result<PageId> BPTree::DescendToLeaf(const std::string& target) const {
  EntryView t = ParseEntry(target, true);
  std::vector<Value> key = DecodeKey(t.key);
  TMAN_ASSIGN_OR_RETURN(PageId node, Root());
  while (true) {
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(node, &guard));
    const char* d = guard.data();
    if (IsLeaf(d)) return node;
    uint16_t pos = UpperBound(d, key, t.rid);
    if (pos == 0) {
      node = Link(d);
    } else {
      node = ParseEntry(EntryRaw(d, pos - 1), false).child;
    }
  }
}

Status BPTree::Delete(const std::vector<Value>& key, const Rid& rid) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string target = MakeEntry(EncodeKey(key), rid, kInvalidPageId, true);
  TMAN_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(target));
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(leaf, &guard));
  char* d = guard.data();
  uint16_t pos = LowerBound(d, key, rid);
  if (pos >= SlotCount(d)) {
    return Status::NotFound("index entry not found");
  }
  EntryView e = ParseEntry(EntryRaw(d, pos), true);
  if (CmpEntryToTarget(e.key, e.rid, key, rid) != 0) {
    return Status::NotFound("index entry not found");
  }
  std::vector<std::string> entries = CollectEntries(d);
  entries.erase(entries.begin() + pos);
  RebuildNode(d, true, Link(d), entries);
  guard.MarkDirty();
  return Status::OK();
}

Result<std::vector<Rid>> BPTree::SearchEqual(
    const std::vector<Value>& key) const {
  std::vector<Rid> out;
  TMAN_RETURN_IF_ERROR(SearchRange(
      key, true, key, true,
      [&out](const std::vector<Value>&, const Rid& rid) {
        out.push_back(rid);
        return true;
      }));
  return out;
}

Status BPTree::SearchRange(
    const std::optional<std::vector<Value>>& lo, bool lo_inclusive,
    const std::optional<std::vector<Value>>& hi, bool hi_inclusive,
    const std::function<bool(const std::vector<Value>&, const Rid&)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  PageId leaf;
  uint16_t pos = 0;
  if (lo.has_value()) {
    // For inclusive bounds start at (lo, minimal rid); for exclusive
    // bounds start just past every entry with key == lo.
    const Rid& start_rid = lo_inclusive ? kMinRid : kMaxRid;
    std::string target =
        MakeEntry(EncodeKey(*lo), start_rid, kInvalidPageId, true);
    TMAN_ASSIGN_OR_RETURN(leaf, DescendToLeaf(target));
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(leaf, &guard));
    pos = LowerBound(guard.data(), *lo, start_rid);
  } else {
    // Leftmost leaf.
    TMAN_ASSIGN_OR_RETURN(PageId node, Root());
    while (true) {
      PageGuard guard;
      TMAN_RETURN_IF_ERROR(pool_->FetchPage(node, &guard));
      if (IsLeaf(guard.data())) {
        leaf = node;
        break;
      }
      node = Link(guard.data());
    }
  }

  while (leaf != kInvalidPageId) {
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(leaf, &guard));
    const char* d = guard.data();
    uint16_t n = SlotCount(d);
    for (; pos < n; ++pos) {
      EntryView e = ParseEntry(EntryRaw(d, pos), true);
      std::vector<Value> vals = DecodeKey(e.key);
      if (hi.has_value()) {
        int c = CompareValues(vals, *hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return Status::OK();
      }
      if (!fn(vals, e.rid)) return Status::OK();
    }
    leaf = Link(d);
    pos = 0;
  }
  return Status::OK();
}

Status BPTree::ScanAll(
    const std::function<bool(const std::vector<Value>&, const Rid&)>& fn)
    const {
  return SearchRange(std::nullopt, true, std::nullopt, true, fn);
}

Result<uint32_t> BPTree::Height() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(PageId node, Root());
  uint32_t h = 1;
  while (true) {
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(node, &guard));
    if (IsLeaf(guard.data())) return h;
    node = Link(guard.data());
    ++h;
  }
}

Result<uint64_t> BPTree::NumEntries() const {
  uint64_t n = 0;
  TMAN_RETURN_IF_ERROR(ScanAll(
      [&n](const std::vector<Value>&, const Rid&) {
        ++n;
        return true;
      }));
  return n;
}

}  // namespace tman
