#ifndef TRIGGERMAN_STORAGE_DISK_MANAGER_H_
#define TRIGGERMAN_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/page.h"
#include "util/fault_injector.h"
#include "util/status.h"

namespace tman {

/// Cumulative I/O counters for a DiskManager.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t syncs = 0;
  uint64_t allocations = 0;
};

/// Simulated disk: a growable array of pages kept in process memory, with
/// read/write counters and optional per-access latency. The paper's host
/// (Informix) provides real disk tables; this simulation preserves the one
/// property the organization-strategy experiments depend on — disk-resident
/// structures pay a per-page cost main-memory structures do not.
class DiskManager {
 public:
  /// `access_latency_ns`: artificial busy-wait added to every page read or
  /// write that reaches the "disk" (i.e. every buffer pool miss/flush).
  /// 0 disables the delay; counters are always maintained.
  explicit DiskManager(uint64_t access_latency_ns = 0);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Copies the stored page into *page.
  Status ReadPage(PageId id, Page* page);

  /// Persists *page. Under an armed "disk.write.short" fault the write
  /// tears: only a prefix of the page lands before the error is returned,
  /// leaving a mix of old and new bytes on disk — the torn-page shape
  /// recovery code must tolerate.
  Status WritePage(PageId id, const Page& page);

  /// Durability barrier (the simulated fsync). The in-memory disk array is
  /// trivially "durable", so this only charges the sync cost and gives
  /// fault injection a "disk.sync" site; callers must still treat a
  /// failure as "nothing since the previous successful Sync is durable".
  Status Sync();

  /// Frees a page (contents become invalid). Freed ids are not reused.
  Status DeallocatePage(PageId id);

  uint64_t num_pages() const;

  DiskStats stats() const;
  void ResetStats();

  void set_access_latency_ns(uint64_t ns) {
    access_latency_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t access_latency_ns() const {
    return access_latency_ns_.load(std::memory_order_relaxed);
  }

  /// The fault injector shared by this disk and every structure layered
  /// on it (buffer pool, heap tables, table queues all consult this
  /// instance), so one injector arms/clears fault sites across the whole
  /// storage stack. Page reads check "disk.read", writes "disk.write".
  FaultInjector* fault_injector() { return &fault_injector_; }

  /// Legacy convenience (equivalent to arming "disk.*" with a countdown):
  /// after `after_accesses` more successful page reads/writes, every
  /// subsequent access fails with IoError until ClearFaults() is called.
  void InjectFaultAfter(uint64_t after_accesses);

  /// Disarms every fault in the shared injector.
  void ClearFaults();

 private:
  void SimulateLatency() const;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<bool> live_;
  DiskStats stats_;
  std::atomic<uint64_t> access_latency_ns_;
  FaultInjector fault_injector_;
};

}  // namespace tman

#endif  // TRIGGERMAN_STORAGE_DISK_MANAGER_H_
