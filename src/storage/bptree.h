#ifndef TRIGGERMAN_STORAGE_BPTREE_H_
#define TRIGGERMAN_STORAGE_BPTREE_H_

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "types/value.h"
#include "util/result.h"

namespace tman {

/// A disk-resident B+-tree over composite keys (vectors of Value), mapping
/// each key to record RIDs. This is the index the paper's organization
/// strategy 4 ("indexed database table") puts on [const1..constK]; since
/// the tree clusters equal keys on adjacent leaf entries, retrieving all
/// triggers for one constant tuple touches O(log n + matches/page) pages —
/// the paper's "retrieved together quickly without doing random I/O".
///
/// Duplicates are handled by appending the RID to the stored key, making
/// every stored entry unique; equality lookups scan the contiguous run of
/// entries whose user-key prefix matches.
///
/// Deletion removes entries without rebalancing (pages may underflow, as
/// in several production systems); space inside a node is reclaimed by
/// compaction when the node next fills.
class BPTree {
 public:
  /// Opens an existing tree whose metadata lives at `meta_page`.
  BPTree(BufferPool* pool, PageId meta_page);

  /// Creates an empty tree; returns its metadata page id.
  static Result<PageId> Create(BufferPool* pool);

  BPTree(const BPTree&) = delete;
  BPTree& operator=(const BPTree&) = delete;

  /// Inserts key -> rid. Duplicate (key, rid) pairs are idempotent.
  Status Insert(const std::vector<Value>& key, const Rid& rid);

  /// Removes one (key, rid) entry. NotFound if absent.
  Status Delete(const std::vector<Value>& key, const Rid& rid);

  /// All RIDs whose key equals `key`.
  Result<std::vector<Rid>> SearchEqual(const std::vector<Value>& key) const;

  /// Calls `fn(key, rid)` for entries in [lo, hi] in key order; either
  /// bound may be absent (open). `fn` returning false stops the scan.
  Status SearchRange(
      const std::optional<std::vector<Value>>& lo, bool lo_inclusive,
      const std::optional<std::vector<Value>>& hi, bool hi_inclusive,
      const std::function<bool(const std::vector<Value>&, const Rid&)>& fn)
      const;

  /// Full in-order scan.
  Status ScanAll(
      const std::function<bool(const std::vector<Value>&, const Rid&)>& fn)
      const;

  /// Tree height (1 = just a leaf). For tests and the cost model.
  Result<uint32_t> Height() const;

  /// Total number of entries (walks the leaf chain).
  Result<uint64_t> NumEntries() const;

 private:
  struct Promo {
    bool happened = false;
    std::string sep;       // encoded composite key promoted to the parent
    PageId right = kInvalidPageId;
  };

  Result<PageId> Root() const;
  Status SetRoot(PageId root);

  Status InsertRec(PageId node, const std::string& entry_key, const Rid& rid,
                   Promo* promo);

  /// Descends to the leaf that may contain the first entry >= target.
  Result<PageId> DescendToLeaf(const std::string& target) const;

  BufferPool* pool_;
  PageId meta_page_;
  mutable std::mutex mutex_;
};

}  // namespace tman

#endif  // TRIGGERMAN_STORAGE_BPTREE_H_
