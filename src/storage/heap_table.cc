#include "storage/heap_table.h"

#include <cstring>

namespace tman {

namespace {

// Page layout:
//   [0..2)   u16 slot_count
//   [2..4)   u16 data_start  (offset of the lowest record byte; records
//                             grow downward from kPageSize)
//   [4..8)   u32 next_page
//   [8..12)  u32 live_count
//   [12..)   slot array: per slot {u16 offset, u16 len}; offset==0xFFFF
//            marks a deleted slot.
constexpr size_t kHeaderSize = 12;
constexpr size_t kSlotSize = 4;
constexpr uint16_t kDeletedOffset = 0xFFFF;

uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void PutU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

uint16_t SlotCount(const char* d) { return GetU16(d); }
uint16_t DataStart(const char* d) { return GetU16(d + 2); }
PageId NextPage(const char* d) { return GetU32(d + 4); }
uint32_t LiveCount(const char* d) { return GetU32(d + 8); }

void SetSlotCount(char* d, uint16_t v) { PutU16(d, v); }
void SetDataStart(char* d, uint16_t v) { PutU16(d + 2, v); }
void SetNextPage(char* d, PageId v) { PutU32(d + 4, v); }
void SetLiveCount(char* d, uint32_t v) { PutU32(d + 8, v); }

void SlotGet(const char* d, uint16_t slot, uint16_t* off, uint16_t* len) {
  const char* s = d + kHeaderSize + slot * kSlotSize;
  *off = GetU16(s);
  *len = GetU16(s + 2);
}
void SlotPut(char* d, uint16_t slot, uint16_t off, uint16_t len) {
  char* s = d + kHeaderSize + slot * kSlotSize;
  PutU16(s, off);
  PutU16(s + 2, len);
}

void InitPage(char* d) {
  SetSlotCount(d, 0);
  SetDataStart(d, static_cast<uint16_t>(kPageSize));
  SetNextPage(d, kInvalidPageId);
  SetLiveCount(d, 0);
}

size_t FreeSpace(const char* d) {
  size_t used_top = kHeaderSize + SlotCount(d) * kSlotSize;
  size_t data_start = DataStart(d);
  return data_start > used_top ? data_start - used_top : 0;
}

}  // namespace

HeapTable::HeapTable(BufferPool* pool, PageId first_page)
    : pool_(pool), first_page_(first_page) {}

Result<PageId> HeapTable::Create(BufferPool* pool) {
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool->NewPage(&guard));
  InitPage(guard.data());
  guard.MarkDirty();
  return guard.page_id();
}

Result<Rid> HeapTable::Insert(std::string_view record) {
  std::lock_guard<std::mutex> lock(mutex_);
  return InsertLocked(record);
}

Result<Rid> HeapTable::InsertLocked(std::string_view record) {
  if (record.size() + kSlotSize + kHeaderSize > kPageSize) {
    return Status::NotSupported("record larger than one page (" +
                                std::to_string(record.size()) + " bytes)");
  }
  PageId pid = tail_hint_ != kInvalidPageId ? tail_hint_ : first_page_;
  while (true) {
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(pid, &guard));
    char* d = guard.data();
    if (FreeSpace(d) >= record.size() + kSlotSize) {
      uint16_t slot = SlotCount(d);
      uint16_t off =
          static_cast<uint16_t>(DataStart(d) - record.size());
      std::memcpy(d + off, record.data(), record.size());
      SetDataStart(d, off);
      SlotPut(d, slot, off, static_cast<uint16_t>(record.size()));
      SetSlotCount(d, static_cast<uint16_t>(slot + 1));
      SetLiveCount(d, LiveCount(d) + 1);
      guard.MarkDirty();
      tail_hint_ = pid;
      if (counted_) ++num_records_;
      return Rid{pid, slot};
    }
    PageId next = NextPage(d);
    if (next == kInvalidPageId) {
      PageGuard fresh;
      TMAN_RETURN_IF_ERROR(pool_->NewPage(&fresh));
      InitPage(fresh.data());
      fresh.MarkDirty();
      SetNextPage(d, fresh.page_id());
      guard.MarkDirty();
      next = fresh.page_id();
    }
    pid = next;
  }
}

Result<std::string> HeapTable::Get(const Rid& rid) const {
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(rid.page_id, &guard));
  const char* d = guard.data();
  if (rid.slot >= SlotCount(d)) {
    return Status::NotFound("no such slot " + rid.ToString());
  }
  uint16_t off, len;
  SlotGet(d, rid.slot, &off, &len);
  if (off == kDeletedOffset) {
    return Status::NotFound("record deleted at " + rid.ToString());
  }
  return std::string(d + off, len);
}

Status HeapTable::Delete(const Rid& rid) {
  std::lock_guard<std::mutex> lock(mutex_);
  PageGuard guard;
  TMAN_RETURN_IF_ERROR(pool_->FetchPage(rid.page_id, &guard));
  char* d = guard.data();
  if (rid.slot >= SlotCount(d)) {
    return Status::NotFound("no such slot " + rid.ToString());
  }
  uint16_t off, len;
  SlotGet(d, rid.slot, &off, &len);
  if (off == kDeletedOffset) {
    return Status::NotFound("record already deleted at " + rid.ToString());
  }
  SlotPut(d, rid.slot, kDeletedOffset, 0);
  SetLiveCount(d, LiveCount(d) - 1);
  guard.MarkDirty();
  if (counted_ && num_records_ > 0) --num_records_;
  return Status::OK();
}

Result<Rid> HeapTable::Update(const Rid& rid, std::string_view record) {
  std::lock_guard<std::mutex> lock(mutex_);
  {
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(rid.page_id, &guard));
    char* d = guard.data();
    if (rid.slot >= SlotCount(d)) {
      return Status::NotFound("no such slot " + rid.ToString());
    }
    uint16_t off, len;
    SlotGet(d, rid.slot, &off, &len);
    if (off == kDeletedOffset) {
      return Status::NotFound("record deleted at " + rid.ToString());
    }
    if (record.size() <= len) {
      std::memcpy(d + off, record.data(), record.size());
      SlotPut(d, rid.slot, off, static_cast<uint16_t>(record.size()));
      guard.MarkDirty();
      return rid;
    }
    // Does not fit in place: tombstone the old slot and move the record.
    SlotPut(d, rid.slot, kDeletedOffset, 0);
    SetLiveCount(d, LiveCount(d) - 1);
    guard.MarkDirty();
  }
  if (counted_ && num_records_ > 0) --num_records_;
  return InsertLocked(record);
}

Status HeapTable::Scan(
    const std::function<bool(const Rid&, std::string_view)>& fn) const {
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(pid, &guard));
    const char* d = guard.data();
    uint16_t slots = SlotCount(d);
    for (uint16_t s = 0; s < slots; ++s) {
      uint16_t off, len;
      SlotGet(d, s, &off, &len);
      if (off == kDeletedOffset) continue;
      if (!fn(Rid{pid, s}, std::string_view(d + off, len))) {
        return Status::OK();
      }
    }
    pid = NextPage(d);
  }
  return Status::OK();
}

uint64_t HeapTable::num_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!counted_) {
    uint64_t n = 0;
    PageId pid = first_page_;
    while (pid != kInvalidPageId) {
      PageGuard guard;
      if (!pool_->FetchPage(pid, &guard).ok()) break;
      n += LiveCount(guard.data());
      pid = NextPage(guard.data());
    }
    num_records_ = n;
    counted_ = true;
  }
  return num_records_;
}

Result<uint64_t> HeapTable::num_pages() const {
  uint64_t n = 0;
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    PageGuard guard;
    TMAN_RETURN_IF_ERROR(pool_->FetchPage(pid, &guard));
    ++n;
    pid = NextPage(guard.data());
  }
  return n;
}

}  // namespace tman
