#ifndef TRIGGERMAN_STORAGE_PAGE_H_
#define TRIGGERMAN_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace tman {

/// Fixed page size for the MiniDB storage engine.
inline constexpr size_t kPageSize = 4096;

/// Page identifier within a DiskManager. kInvalidPageId marks "no page".
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Raw page buffer.
struct Page {
  char data[kPageSize];

  Page() { std::memset(data, 0, kPageSize); }
};

/// Record identifier: page + slot within the page.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }

  bool operator==(const Rid& other) const {
    return page_id == other.page_id && slot == other.slot;
  }
  bool operator<(const Rid& other) const {
    if (page_id != other.page_id) return page_id < other.page_id;
    return slot < other.slot;
  }

  std::string ToString() const {
    return "(" + std::to_string(page_id) + "," + std::to_string(slot) + ")";
  }
};

}  // namespace tman

#endif  // TRIGGERMAN_STORAGE_PAGE_H_
