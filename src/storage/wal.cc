#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "util/crc32.h"

namespace tman {

namespace {

constexpr char kMagic[8] = {'T', 'M', 'A', 'N', 'W', 'A', 'L', '1'};

// Data pages reserve 4 bytes for the next-page link.
constexpr size_t kPageLink = 4;
constexpr size_t kWalPayload = kPageSize - kPageLink;

// Header slot: magic(8) seq(8) first_page(4) start(8) parse_from(8)
// committed(8) crc(4). Slot A lives at byte 0, slot B at kPageSize / 2 —
// far enough apart that a torn (prefix-only) page write can never clobber
// both copies.
constexpr size_t kHeaderSlotSize = 48;
constexpr size_t kHeaderSlotB = kPageSize / 2;

// Record framing overhead: type(1) + payload_len(4) + payload_crc(4).
constexpr size_t kRecordOverhead = kWalRecordOverhead;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }

}  // namespace

void Wal::EncodeHeaderSlot(const Header& h, char* out) {
  std::memcpy(out, kMagic, 8);
  StoreU64(out + 8, h.seq);
  StoreU32(out + 16, h.first_page);
  StoreU64(out + 20, h.start);
  StoreU64(out + 28, h.parse_from);
  StoreU64(out + 36, h.committed);
  StoreU32(out + 44, Crc32(out, 44));
}

bool Wal::DecodeHeaderSlot(const char* in, Header* h) {
  if (std::memcmp(in, kMagic, 8) != 0) return false;
  if (Crc32(in, 44) != LoadU32(in + 44)) return false;
  h->seq = LoadU64(in + 8);
  h->first_page = LoadU32(in + 16);
  h->start = LoadU64(in + 20);
  h->parse_from = LoadU64(in + 28);
  h->committed = LoadU64(in + 36);
  return true;
}

Wal::Wal(DiskManager* disk, PageId header_page)
    : disk_(disk), header_page_(header_page) {
  FaultInjector* faults = disk_->fault_injector();
  faults->RegisterSite("wal.append");
  faults->RegisterSite("wal.write");
  faults->RegisterSite("wal.fsync");
  faults->RegisterSite("wal.truncate");
}

Result<PageId> Wal::Create(DiskManager* disk) {
  PageId header_page = disk->AllocatePage();
  Wal wal(disk, header_page);
  Header h;
  h.seq = 0;  // WriteHeader bumps to 1
  TMAN_RETURN_IF_ERROR(wal.WriteHeader(h));
  TMAN_RETURN_IF_ERROR(disk->Sync());
  return header_page;
}

Result<std::unique_ptr<Wal>> Wal::Open(DiskManager* disk,
                                       PageId header_page) {
  Page pg;
  TMAN_RETURN_IF_ERROR(disk->ReadPage(header_page, &pg));
  Header a, b;
  bool a_ok = DecodeHeaderSlot(pg.data, &a);
  bool b_ok = DecodeHeaderSlot(pg.data + kHeaderSlotB, &b);
  if (!a_ok && !b_ok) {
    return Status::Corruption("wal: no valid header copy");
  }
  // The valid copy with the higher sequence is authoritative; a torn
  // header write left exactly one valid copy, which is either the old
  // state (commit did not happen) or the new one (commit landed even
  // though the writer saw an error).
  bool use_b = b_ok && (!a_ok || b.seq > a.seq);
  Header h = use_b ? b : a;

  std::unique_ptr<Wal> wal(new Wal(disk, header_page));
  wal->header_seq_ = h.seq;
  wal->header_slot_b_ = use_b;
  wal->last_header_ = h;
  wal->start_ = h.start;
  wal->parse_from_ = h.parse_from;
  wal->durable_ = h.committed;
  wal->appended_ = h.committed;

  uint64_t committed_bytes = h.committed - h.start;
  size_t pages = (committed_bytes + kWalPayload - 1) / kWalPayload;
  PageId cur = h.first_page;
  for (size_t i = 0; i < pages; ++i) {
    if (cur == kInvalidPageId) {
      return Status::Corruption("wal: page chain shorter than committed");
    }
    wal->chain_.push_back(cur);
    Page dp;
    TMAN_RETURN_IF_ERROR(disk->ReadPage(cur, &dp));
    cur = LoadU32(dp.data);
  }
  // When the committed stream ends exactly at a page-payload boundary,
  // the last walked page is full and its on-disk next link is final: it
  // names the successor page the filling round pre-allocated. Adopt that
  // page so the next sync round extends through it — allocating a fresh
  // page instead would leave the full page's link pointing at a page
  // that never receives the new bytes, and a later Open would follow it
  // into garbage. (With zero committed pages, `cur` is the header's
  // first_page, which truncation can likewise leave pointing at a
  // pre-allocated successor.)
  if (committed_bytes % kWalPayload == 0 && cur != kInvalidPageId) {
    wal->chain_.push_back(cur);
  }
  return wal;
}

Result<Lsn> Wal::Append(WalRecordType type, std::string_view payload) {
  TMAN_RETURN_IF_ERROR(disk_->fault_injector()->Check("wal.append"));
  std::lock_guard<std::mutex> lock(mutex_);
  buffer_.push_back(static_cast<char>(type));
  char hdr[8];
  StoreU32(hdr, static_cast<uint32_t>(payload.size()));
  StoreU32(hdr + 4, Crc32(payload));
  buffer_.append(hdr, 8);
  buffer_.append(payload);
  appended_ += kRecordOverhead + payload.size();
  ++stats_.records_appended;
  stats_.bytes_appended += kRecordOverhead + payload.size();
  return appended_;
}

Status Wal::WriteHeader(const Header& next) {
  // Only one header writer runs at a time (leader rounds and truncation
  // exclude each other via syncing_), so the slot bookkeeping needs no
  // extra lock. The previous authoritative header is re-encoded into its
  // slot and the new one goes into the other: one page write, and either
  // copy alone is enough to recover.
  Page pg;
  Header prev = last_header_;
  Header fresh = next;
  fresh.seq = ++header_seq_;
  bool fresh_in_b = !header_slot_b_;
  EncodeHeaderSlot(prev, pg.data + (header_slot_b_ ? kHeaderSlotB : 0));
  EncodeHeaderSlot(fresh, pg.data + (fresh_in_b ? kHeaderSlotB : 0));
  Status st = disk_->WritePage(header_page_, pg);
  if (!st.ok()) {
    --header_seq_;
    return st;
  }
  header_slot_b_ = fresh_in_b;
  last_header_ = fresh;
  return Status::OK();
}

Status Wal::RunSyncRound(std::unique_lock<std::mutex>& lock, Lsn target) {
  (void)target;  // the round always syncs through appended_
  Lsn sync_start = durable_;
  Lsn sync_end = appended_;
  if (sync_end == sync_start) return Status::OK();
  std::string pending = std::move(buffer_);
  buffer_.clear();

  // Extend the page chain to cover the round, plus one linked successor
  // for a page this round fills exactly: a full page is never rewritten,
  // so its next pointer must already be final when it goes to disk.
  size_t last_idx = static_cast<size_t>((sync_end - start_ - 1) / kWalPayload);
  size_t needed =
      last_idx + 1 + ((sync_end - start_) % kWalPayload == 0 ? 1 : 0);
  while (chain_.size() < needed) chain_.push_back(disk_->AllocatePage());
  size_t first_idx = static_cast<size_t>((sync_start - start_) / kWalPayload);
  std::vector<PageId> pages = chain_;
  Lsn base = start_;

  lock.unlock();
  FaultInjector* faults = disk_->fault_injector();
  Status st = Status::OK();
  uint64_t written = 0;
  for (size_t idx = first_idx; idx <= last_idx; ++idx) {
    st = faults->Check("wal.write");
    if (!st.ok()) break;
    Page pg;
    Lsn page_lo = base + idx * kWalPayload;
    Lsn page_hi = page_lo + kWalPayload;
    if (idx == first_idx && sync_start > page_lo) {
      // Partially durable page: merge the new tail into its on-disk image
      // so the durable prefix is rewritten byte-identical.
      st = disk_->ReadPage(pages[idx], &pg);
      if (!st.ok()) break;
    }
    StoreU32(pg.data,
             idx + 1 < pages.size() ? pages[idx + 1] : kInvalidPageId);
    Lsn lo = std::max(sync_start, page_lo);
    Lsn hi = std::min(sync_end, page_hi);
    std::memcpy(pg.data + kPageLink + (lo - page_lo),
                pending.data() + (lo - sync_start), hi - lo);
    st = disk_->WritePage(pages[idx], pg);
    if (!st.ok()) break;
    ++written;
  }
  if (st.ok()) st = faults->Check("wal.fsync");
  if (st.ok()) st = disk_->Sync();
  if (st.ok()) {
    Header h = last_header_;
    h.first_page = pages.empty() ? kInvalidPageId : pages[0];
    h.committed = sync_end;
    st = WriteHeader(h);
  }
  if (st.ok()) st = disk_->Sync();

  lock.lock();
  stats_.pages_written += written;
  if (st.ok()) {
    durable_ = sync_end;
    ++stats_.sync_rounds;
  } else {
    // Give the un-committed bytes back to the buffer so a later round
    // retries them; the physical cursor is derived from durable_, so the
    // retry rewrites the same pages.
    pending.append(buffer_);
    buffer_ = std::move(pending);
  }
  return st;
}

Status Wal::Commit(Lsn lsn) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.commit_calls;
  if (lsn > appended_) lsn = appended_;
  for (;;) {
    if (durable_ >= lsn) {
      ++stats_.piggybacked;
      return Status::OK();
    }
    if (!syncing_) break;
    cv_.wait(lock);
  }
  syncing_ = true;
  Status st = RunSyncRound(lock, lsn);
  syncing_ = false;
  cv_.notify_all();
  return st;
}

Status Wal::Sync() {
  Lsn target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    target = appended_;
  }
  return Commit(target);
}

Status Wal::Truncate(Lsn upto) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (syncing_) cv_.wait(lock);
  upto = std::min(upto, durable_);
  if (upto < start_) upto = start_;  // everything below start_ is already gone
  size_t drop = static_cast<size_t>((upto - start_) / kWalPayload);
  drop = std::min(drop, chain_.size());
  if (drop == 0 && upto <= parse_from_) return Status::OK();
  syncing_ = true;

  Header h = last_header_;
  h.start = start_ + drop * kWalPayload;
  h.parse_from = std::max(parse_from_, upto);
  h.first_page = drop < chain_.size() ? chain_[drop] : kInvalidPageId;
  std::vector<PageId> dropped(chain_.begin(), chain_.begin() + drop);

  lock.unlock();
  Status st = disk_->fault_injector()->Check("wal.truncate");
  if (st.ok()) st = WriteHeader(h);
  if (st.ok()) st = disk_->Sync();
  lock.lock();

  if (st.ok()) {
    start_ = h.start;
    parse_from_ = h.parse_from;
    chain_.erase(chain_.begin(), chain_.begin() + drop);
    ++stats_.truncations;
    lock.unlock();
    // The new header no longer references these pages; a failed
    // deallocation merely leaks a page.
    for (PageId id : dropped) (void)disk_->DeallocatePage(id);
    lock.lock();
  }
  syncing_ = false;
  cv_.notify_all();
  return st;
}

Status Wal::Replay(
    const std::function<Status(WalRecordType, std::string_view, Lsn)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (syncing_) cv_.wait(lock);
  syncing_ = true;
  std::vector<PageId> pages = chain_;
  Lsn base = start_;
  Lsn committed = durable_;
  Lsn parse_from = parse_from_;
  lock.unlock();

  auto finish = [&](Status st) {
    lock.lock();
    syncing_ = false;
    cv_.notify_all();
    return st;
  };

  std::string stream;
  stream.reserve(static_cast<size_t>(committed - base));
  for (size_t i = 0; i < pages.size() && stream.size() < committed - base;
       ++i) {
    Page pg;
    Status st = disk_->ReadPage(pages[i], &pg);
    if (!st.ok()) return finish(st);
    size_t want = std::min<size_t>(kWalPayload,
                                   static_cast<size_t>(committed - base) -
                                       stream.size());
    stream.append(pg.data + kPageLink, want);
  }
  if (stream.size() != committed - base) {
    return finish(Status::Corruption("wal: committed stream truncated"));
  }

  size_t pos = static_cast<size_t>(parse_from - base);
  while (pos < stream.size()) {
    if (stream.size() - pos < kRecordOverhead) {
      return finish(Status::Corruption("wal: truncated record header"));
    }
    auto type = static_cast<WalRecordType>(
        static_cast<uint8_t>(stream[pos]));
    uint32_t len = LoadU32(stream.data() + pos + 1);
    uint32_t crc = LoadU32(stream.data() + pos + 5);
    if (stream.size() - pos - kRecordOverhead < len) {
      return finish(Status::Corruption("wal: truncated record payload"));
    }
    std::string_view payload(stream.data() + pos + kRecordOverhead, len);
    if (Crc32(payload) != crc) {
      return finish(Status::Corruption("wal: record failed checksum"));
    }
    pos += kRecordOverhead + len;
    Status st = fn(type, payload, base + pos);
    if (!st.ok()) return finish(st);
  }
  return finish(Status::OK());
}

Lsn Wal::appended_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

Lsn Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return durable_;
}

Lsn Wal::start_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return start_;
}

uint64_t Wal::RetainedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_ - parse_from_;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace tman
