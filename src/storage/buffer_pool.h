#ifndef TRIGGERMAN_STORAGE_BUFFER_POOL_H_
#define TRIGGERMAN_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace tman {

class BufferPool;

/// RAII pin on a buffer-pool frame. While a PageGuard is live the page
/// stays in memory; destruction unpins it. Mark the guard dirty after
/// modifying page contents so the frame is written back before eviction.
class PageGuard {
 public:
  PageGuard() = default;
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  char* data() { return page_->data; }
  const char* data() const { return page_->data; }

  /// Records that the page contents changed and must be flushed on evict.
  void MarkDirty() { dirty_ = true; }

  /// Explicit early unpin.
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, PageId id, Page* page)
      : pool_(pool), frame_(frame), page_id_(id), page_(page) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

/// Hit/miss/eviction counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// A classic pin-count + LRU buffer pool over a DiskManager. Frames are
/// protected by one pool mutex; content-level synchronization is the
/// caller's job (MiniDB serializes per-table mutations above this layer).
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins an existing page, reading it from disk on a miss.
  Status FetchPage(PageId id, PageGuard* guard);

  /// Allocates a fresh zeroed page on disk and pins it.
  Status NewPage(PageGuard* guard);

  /// Writes back all dirty frames. Pinned pages are flushed but stay pinned.
  Status FlushAll();

  /// Drops an unpinned page from the pool (after e.g. deallocation).
  void Discard(PageId id);

  size_t capacity() const { return capacity_; }
  BufferPoolStats stats() const;
  void ResetStats();
  DiskManager* disk() { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    /// Set while the claiming thread reads the page from disk outside the
    /// pool mutex; concurrent fetches of the same page wait on io_cv_.
    bool io_pending = false;
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame, bool dirty);

  /// Picks a victim frame (unpinned LRU head), flushing if dirty, or
  /// allocates a new frame if capacity allows. Returns frame index or
  /// error if every frame is pinned.
  Status GetFreeFrame(size_t* out);

  mutable std::mutex mutex_;
  std::condition_variable io_cv_;  // signaled when an io_pending read ends
  DiskManager* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = least recently used, unpinned only
  BufferPoolStats stats_;
};

}  // namespace tman

#endif  // TRIGGERMAN_STORAGE_BUFFER_POOL_H_
