#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace tman {

DiskManager::DiskManager(uint64_t access_latency_ns)
    : access_latency_ns_(access_latency_ns) {
  fault_injector_.RegisterSite("disk.read");
  fault_injector_.RegisterSite("disk.write");
  fault_injector_.RegisterSite("disk.write.short");
  fault_injector_.RegisterSite("disk.sync");
}

void DiskManager::SimulateLatency() const {
  uint64_t ns = access_latency_ns_.load(std::memory_order_relaxed);
  if (ns == 0) return;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  // Busy-wait: sleep granularity on Linux is far coarser than realistic
  // device latencies, and the benches need stable per-access costs.
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

PageId DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::make_unique<Page>());
  live_.push_back(true);
  ++stats_.allocations;
  return static_cast<PageId>(pages_.size() - 1);
}

void DiskManager::InjectFaultAfter(uint64_t after_accesses) {
  fault_injector_.ArmCountdown("disk.*", after_accesses);
}

void DiskManager::ClearFaults() { fault_injector_.ClearAll(); }

Status DiskManager::ReadPage(PageId id, Page* page) {
  TMAN_RETURN_IF_ERROR(fault_injector_.Check("disk.read"));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id >= pages_.size() || !live_[id]) {
      return Status::IoError("read of invalid page " + std::to_string(id));
    }
    *page = *pages_[id];
    ++stats_.reads;
  }
  SimulateLatency();
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  TMAN_RETURN_IF_ERROR(fault_injector_.Check("disk.write"));
  Status torn = fault_injector_.Check("disk.write.short");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id >= pages_.size() || !live_[id]) {
      return Status::IoError("write of invalid page " + std::to_string(id));
    }
    if (!torn.ok()) {
      // Torn write: a prefix of the page lands, the tail keeps its old
      // bytes, and the caller sees the error. Mirrors a power-cut partial
      // sector write; recovery must detect the mix (e.g. via record CRCs).
      std::memcpy(pages_[id]->data, page.data, kPageSize / 2);
      ++stats_.writes;
      return torn;
    }
    *pages_[id] = page;
    ++stats_.writes;
  }
  SimulateLatency();
  return Status::OK();
}

Status DiskManager::Sync() {
  TMAN_RETURN_IF_ERROR(fault_injector_.Check("disk.sync"));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.syncs;
  }
  SimulateLatency();
  return Status::OK();
}

Status DiskManager::DeallocatePage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= pages_.size() || !live_[id]) {
    return Status::IoError("deallocate of invalid page " + std::to_string(id));
  }
  live_[id] = false;
  return Status::OK();
}

uint64_t DiskManager::num_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_.size();
}

DiskStats DiskManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DiskManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = DiskStats();
}

}  // namespace tman
