#ifndef TRIGGERMAN_STORAGE_TABLE_QUEUE_H_
#define TRIGGERMAN_STORAGE_TABLE_QUEUE_H_

#include <mutex>
#include <string>

#include "storage/buffer_pool.h"
#include "util/result.h"

namespace tman {

/// Persistent FIFO of byte records, backed by a chain of pages. This is
/// the paper's update-descriptor table: update-capture triggers and data
/// source programs append update descriptors here, and TmanTest() consumes
/// them on its next call, so queued updates survive a crash ("the safety
/// of persistent update queuing").
///
/// Layout: a metadata page holds (head page, head slot, tail page, count);
/// data pages are append-only slotted pages chained by next pointers.
/// Fully-consumed head pages are deallocated.
///
/// Failure atomicity: the metadata page is the authority on queue
/// contents and is written last, so an Enqueue/Dequeue that returns an
/// error has not happened — the record is respectively absent from or
/// still present in the queue, and the queue stays usable once the fault
/// clears (fault sites "table_queue.push[.meta]" / "table_queue.pop
/// [.meta]" on the disk's shared FaultInjector exercise exactly this).
/// The worst a mid-operation failure can cost is a leaked page.
class TableQueue {
 public:
  TableQueue(BufferPool* pool, PageId meta_page);

  /// Creates an empty queue; returns its metadata page id.
  static Result<PageId> Create(BufferPool* pool);

  TableQueue(const TableQueue&) = delete;
  TableQueue& operator=(const TableQueue&) = delete;

  /// Appends a record at the tail.
  Status Enqueue(std::string_view record);

  /// Removes and returns the head record. NotFound when empty.
  Result<std::string> Dequeue();

  /// Crash-recovery scan: verifies every queued record's checksum in FIFO
  /// order. A checksum mismatch on the *final* record is the torn-tail
  /// signature (its slot reached disk, its bytes did not) and the record
  /// is dropped; a mismatch anywhere else is reported as Corruption.
  /// Returns the number of records dropped (0 or 1).
  Result<uint64_t> RecoverTorn();

  /// Number of queued records.
  Result<uint64_t> Size() const;

  bool Empty() const;

 private:
  struct Meta {
    PageId head_page;
    uint32_t head_slot;
    PageId tail_page;
    uint64_t count;
  };

  Result<Meta> ReadMeta() const;
  Status WriteMeta(const Meta& m);

  BufferPool* pool_;
  PageId meta_page_;
  mutable std::mutex mutex_;
};

}  // namespace tman

#endif  // TRIGGERMAN_STORAGE_TABLE_QUEUE_H_
