#ifndef TRIGGERMAN_UTIL_LOGGING_H_
#define TRIGGERMAN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tman {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarn so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TMAN_LOG(level)                                              \
  if (::tman::LogLevel::level < ::tman::GetLogLevel()) {             \
  } else                                                             \
    ::tman::internal::LogMessage(::tman::LogLevel::level, __FILE__,  \
                                 __LINE__)                           \
        .stream()

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_LOGGING_H_
