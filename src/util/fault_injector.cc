#include "util/fault_injector.h"

namespace tman {

void FaultInjector::ArmCountdown(std::string pattern, uint64_t after_hits,
                                 StatusCode code) {
  std::lock_guard<std::mutex> lock(mutex_);
  Arm arm;
  arm.mode = Arm::Mode::kCountdown;
  arm.remaining = after_hits;
  arm.code = code;
  arms_[std::move(pattern)] = std::move(arm);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmEveryNth(std::string pattern, uint64_t n,
                                StatusCode code) {
  std::lock_guard<std::mutex> lock(mutex_);
  Arm arm;
  arm.mode = Arm::Mode::kEveryNth;
  arm.period = n == 0 ? 1 : n;
  arm.code = code;
  arms_[std::move(pattern)] = std::move(arm);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmProbability(std::string pattern, double p,
                                   uint64_t seed, StatusCode code) {
  std::lock_guard<std::mutex> lock(mutex_);
  Arm arm;
  arm.mode = Arm::Mode::kProbability;
  arm.probability = p;
  arm.rng = Random(seed);
  arm.code = code;
  arms_[std::move(pattern)] = std::move(arm);
  armed_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::Matches(std::string_view pattern, std::string_view site) {
  if (pattern.size() >= 1 && pattern.back() == '*') {
    return site.substr(0, pattern.size() - 1) ==
           pattern.substr(0, pattern.size() - 1);
  }
  return pattern == site;
}

Status FaultInjector::MakeFault(const Arm& arm, std::string_view site,
                                std::string_view pattern) const {
  std::string msg = "injected fault at " + std::string(site);
  if (pattern != site) msg += " (pattern " + std::string(pattern) + ")";
  switch (arm.code) {
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    default:
      return Status::IoError(std::move(msg));
  }
}

Status FaultInjector::Check(std::string_view site) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (arms_.empty()) return Status::OK();
  auto stat_it = stats_.find(site);
  if (stat_it == stats_.end()) {
    stat_it = stats_.emplace(std::string(site), FaultSiteStats()).first;
  }
  ++stat_it->second.checks;
  for (auto& [pattern, arm] : arms_) {
    if (!Matches(pattern, site)) continue;
    bool trip = false;
    switch (arm.mode) {
      case Arm::Mode::kCountdown:
        if (arm.remaining == 0) {
          trip = true;
        } else {
          --arm.remaining;
        }
        break;
      case Arm::Mode::kEveryNth:
        trip = (++arm.hits % arm.period) == 0;
        break;
      case Arm::Mode::kProbability:
        trip = arm.rng.Bernoulli(arm.probability);
        break;
    }
    if (trip) {
      ++stat_it->second.faults;
      ++total_faults_;
      return MakeFault(arm, site, pattern);
    }
  }
  return Status::OK();
}

void FaultInjector::Clear(std::string_view pattern) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = arms_.find(pattern);
  if (it != arms_.end()) arms_.erase(it);
  if (arms_.empty()) armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::ClearAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  arms_.clear();
  stats_.clear();
  total_faults_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::RegisterSite(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.emplace(site);
}

std::vector<std::string> FaultInjector::RegisteredSites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::string>(sites_.begin(), sites_.end());
}

FaultSiteStats FaultInjector::site_stats(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stats_.find(site);
  return it == stats_.end() ? FaultSiteStats() : it->second;
}

uint64_t FaultInjector::total_faults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_faults_;
}

}  // namespace tman
