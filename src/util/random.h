#ifndef TRIGGERMAN_UTIL_RANDOM_H_
#define TRIGGERMAN_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace tman {

/// Small, fast, deterministic PRNG (xorshift128+). Used by tests and
/// workload generators; seeded explicitly so every run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x853c49e6748fea9bULL) {
    s0_ = seed ? seed : 1;
    s1_ = seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL;
    if (s1_ == 0) s1_ = 2;
    // Warm up so low-entropy seeds decorrelate.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return (Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed generator over [0, n). Used to model skewed trigger
/// match distributions (hot triggers) in the trigger-cache experiments.
/// theta = 0 is uniform; theta near 1 is heavily skewed.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_RANDOM_H_
