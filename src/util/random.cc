#include "util/random.h"

#include <cmath>

namespace tman {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
  if (theta_ <= 0.0) {
    // Uniform special case; avoid the zeta computation entirely.
    alpha_ = zetan_ = eta_ = 0.0;
    return;
  }
  // Cap the exact zeta computation; for larger n approximate the tail with
  // the integral of x^-theta, which is accurate to <0.1% at this size.
  constexpr uint64_t kExactLimit = 1000000;
  if (n_ <= kExactLimit) {
    zetan_ = Zeta(n_, theta_);
  } else {
    double head = Zeta(kExactLimit, theta_);
    double tail =
        (std::pow(static_cast<double>(n_), 1.0 - theta_) -
         std::pow(static_cast<double>(kExactLimit), 1.0 - theta_)) /
        (1.0 - theta_);
    zetan_ = head + tail;
  }
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  if (theta_ <= 0.0) return rng_.Uniform(n_);
  // Gray et al. "Quickly generating billion-record synthetic databases".
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace tman
