#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tman {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace tman
