#ifndef TRIGGERMAN_UTIL_STATUS_H_
#define TRIGGERMAN_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tman {

/// Error codes used across the TriggerMan library. The library is
/// exception-free: every fallible operation returns a Status (or a
/// Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kEvalError,
  kIoError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kAborted,
  kInternal,
  /// Transient condition the caller should retry against a (possibly
  /// different) endpoint — e.g. a cluster node rejecting a batch whose
  /// partition has moved to another owner.
  kUnavailable,
};

/// Returns a human-readable name for a status code ("Ok", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, in the style of rocksdb::Status /
/// arrow::Status. Ok statuses carry no allocation.
class Status {
 public:
  /// Constructs an Ok status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// Rebuilds a Status from a code transported out-of-band (e.g. a status
  /// byte in a wire frame). A kOk code yields OK regardless of `msg`.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-ok Status out of the enclosing function.
#define TMAN_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::tman::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_STATUS_H_
