#ifndef TRIGGERMAN_UTIL_HASH_H_
#define TRIGGERMAN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tman {

/// 64-bit FNV-1a over a byte range. Deterministic across platforms, which
/// keeps the predicate index and signature IDs stable between runs.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// Mixes a new 64-bit value into an accumulated hash (boost::hash_combine
/// style, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Finalizer from MurmurHash3; decorrelates low-entropy integer keys before
/// they are reduced modulo a table size.
inline uint64_t MixInt(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_HASH_H_
