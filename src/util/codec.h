#ifndef TRIGGERMAN_UTIL_CODEC_H_
#define TRIGGERMAN_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace tman {

/// Little-endian append/read helpers shared by the storage serializers and
/// the wire protocol. Readers are bounds-checked and never over-read:
/// they return false (leaving *pos untouched) when the input is too short,
/// so decoders can turn truncation into a clean Status.

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Appends a u32 length prefix followed by the bytes of `s`.
inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

inline bool GetU8(std::string_view data, size_t* pos, uint8_t* v) {
  if (*pos + 1 > data.size()) return false;
  *v = static_cast<uint8_t>(data[*pos]);
  *pos += 1;
  return true;
}

inline bool GetU16(std::string_view data, size_t* pos, uint16_t* v) {
  if (*pos + 2 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 2);
  *pos += 2;
  return true;
}

inline bool GetU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

inline bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

/// Reads a u32-length-prefixed byte string written by PutLengthPrefixed.
/// The returned view aliases `data`.
inline bool GetLengthPrefixed(std::string_view data, size_t* pos,
                              std::string_view* out) {
  size_t p = *pos;
  uint32_t len = 0;
  if (!GetU32(data, &p, &len)) return false;
  if (p + len > data.size()) return false;
  *out = data.substr(p, len);
  *pos = p + len;
  return true;
}

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_CODEC_H_
