#ifndef TRIGGERMAN_UTIL_SHARDED_COUNTER_H_
#define TRIGGERMAN_UTIL_SHARDED_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tman {

/// Slot a thread adds its counter increments into. Threads are spread
/// over a small fixed slot space by a round-robin thread-local id, so the
/// always-on runtime statistics of the adaptive layer cost one relaxed
/// fetch_add on an (almost always) uncontended cache line — the batched
/// hot path pays ~nothing for them.
inline size_t CounterSlotOfThisThread() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// A monotonically increasing counter sharded across cache-line-padded
/// relaxed atomics. Writers add to their thread's slot; Read() sums the
/// slots (each load is atomic, so readers never observe a torn value —
/// the sum is a valid count that existed between the first and last slot
/// load). No ordering is implied: this is a statistics counter, not a
/// synchronization primitive.
class ShardedCounter {
 public:
  static constexpr size_t kSlots = 16;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t n) {
    slots_[CounterSlotOfThisThread() & (kSlots - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Read() const {
    uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kSlots];
};

/// Process-wide switch for the adaptive layer's runtime statistics
/// (per-signature probe/fan-out counters, per-stage latency, Gator edge
/// selectivities). Defaults to on — the counters are designed to be
/// always-on-cheap — and exists so `bench_adapt` can measure exactly what
/// they cost (the CI gate holds the overhead under 3%).
namespace runtime_stats {

inline std::atomic<bool>& Flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

inline bool enabled() { return Flag().load(std::memory_order_relaxed); }
inline void set_enabled(bool on) {
  Flag().store(on, std::memory_order_relaxed);
}

}  // namespace runtime_stats

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_SHARDED_COUNTER_H_
