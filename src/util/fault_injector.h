#ifndef TRIGGERMAN_UTIL_FAULT_INJECTOR_H_
#define TRIGGERMAN_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace tman {

/// Per-site counters: how often a site was checked and how often it
/// returned an injected fault.
struct FaultSiteStats {
  uint64_t checks = 0;
  uint64_t faults = 0;
};

/// Unified fault-injection registry for failure-path testing. Fallible
/// code calls `Check("<layer>.<operation>")` at its fault sites; tests arm
/// faults against exact site names or `prefix.*` patterns. Three trigger
/// modes cover the common failure shapes:
///
///   * countdown    — the next N matching checks succeed, then every
///                    check fails until cleared (the crash point);
///   * every-Nth    — every Nth matching check fails (periodic flakiness);
///   * probability  — each matching check fails with seeded probability p
///                    (random storms that replay exactly by seed).
///
/// Canonical site names used across the library:
///
///   disk.read / disk.write /
///   disk.write.short / disk.sync       DiskManager page I/O (".short"
///                                      tears the write: a prefix lands)
///   buffer.fetch / buffer.new /
///   buffer.flush                       BufferPool entry points
///   table_queue.push / .push.meta /
///   table_queue.pop / .pop.meta        TableQueue, before and after the
///                                      record mutation (mid-operation)
///   wal.append / wal.write /
///   wal.fsync / wal.truncate           write-ahead log (storage/wal.h)
///   executor.task                      task execution in TmanTest/drivers
///
/// Components register their site names on construction (RegisterSite),
/// so a test can enumerate every crash point a storage stack exposes and
/// systematically kill-and-recover at each one (crash_recovery_test).
///
/// The unarmed fast path is one relaxed atomic load; arming is rare and
/// fully mutex-protected, so sites may be checked from any thread.
class FaultInjector {
 public:
  FaultInjector() = default;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `pattern` so the next `after_hits` matching checks succeed and
  /// every later one fails with `code`.
  void ArmCountdown(std::string pattern, uint64_t after_hits,
                    StatusCode code = StatusCode::kIoError);

  /// Arms `pattern` so every `n`th matching check fails (n >= 1; n == 1
  /// fails every check).
  void ArmEveryNth(std::string pattern, uint64_t n,
                   StatusCode code = StatusCode::kIoError);

  /// Arms `pattern` so each matching check fails with probability `p`,
  /// drawn from a PRNG seeded with `seed` (same seed, same failures).
  void ArmProbability(std::string pattern, double p, uint64_t seed,
                      StatusCode code = StatusCode::kIoError);

  /// Called by instrumented code at a fault site. Returns OK when no armed
  /// fault matches or the armed fault does not trip on this hit.
  Status Check(std::string_view site);

  /// Disarms one pattern (as passed to an Arm call) / every pattern.
  void Clear(std::string_view pattern);
  void ClearAll();

  /// True when any fault is armed (sites stop recording stats when not).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Declares a site name this injector's instrumented components check.
  /// Idempotent; called from component constructors.
  void RegisterSite(std::string_view site);

  /// Every site declared via RegisterSite, sorted (the crash-test
  /// enumeration contract: arming each of these names in turn covers
  /// every instrumented crash point of the attached storage stack).
  std::vector<std::string> RegisteredSites() const;

  /// Stats for one check-site name (zeroes when never checked while armed).
  FaultSiteStats site_stats(std::string_view site) const;

  /// Total injected faults across all sites since the last ClearAll.
  uint64_t total_faults() const;

 private:
  struct Arm {
    enum class Mode { kCountdown, kEveryNth, kProbability };
    Mode mode = Mode::kCountdown;
    uint64_t remaining = 0;  // countdown: hits left before tripping
    uint64_t period = 0;     // every-Nth
    uint64_t hits = 0;       // every-Nth: matching checks so far
    double probability = 0.0;
    Random rng{1};
    StatusCode code = StatusCode::kIoError;
  };

  /// True when `pattern` ("a.b" exact or "a.*" prefix) covers `site`.
  static bool Matches(std::string_view pattern, std::string_view site);

  Status MakeFault(const Arm& arm, std::string_view site,
                   std::string_view pattern) const;

  mutable std::mutex mutex_;
  std::map<std::string, Arm, std::less<>> arms_;
  std::set<std::string, std::less<>> sites_;
  std::map<std::string, FaultSiteStats, std::less<>> stats_;
  uint64_t total_faults_ = 0;
  std::atomic<bool> armed_{false};
};

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_FAULT_INJECTOR_H_
