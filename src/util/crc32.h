#ifndef TRIGGERMAN_UTIL_CRC32_H_
#define TRIGGERMAN_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tman {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), as used by zlib.
/// `seed` is a previous Crc32 result, allowing incremental checksums over
/// scattered buffers.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_CRC32_H_
