#ifndef TRIGGERMAN_UTIL_BACKOFF_H_
#define TRIGGERMAN_UTIL_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "util/random.h"

namespace tman {

/// Exponential backoff with symmetric jitter, capped:
///
///   base(attempt) = min(initial * multiplier^(attempt-1), cap)
///   delay         = base +- base * jitter   (uniform, clamped to [0, cap])
///
/// `attempt` is 1-based. Jitter decorrelates many clients retrying the
/// same endpoint after a shared failure (a restarted server would
/// otherwise see every writer redial in lockstep). With `jitter` 0 or a
/// null `rng` the delay is deterministic.
inline std::chrono::milliseconds BackoffDelay(
    uint32_t attempt, std::chrono::milliseconds initial,
    std::chrono::milliseconds cap, double multiplier, double jitter,
    Random* rng) {
  if (attempt == 0) attempt = 1;
  double base = static_cast<double>(initial.count());
  const double cap_ms = static_cast<double>(cap.count());
  for (uint32_t i = 1; i < attempt && base < cap_ms; ++i) {
    base *= std::max(1.0, multiplier);
  }
  base = std::min(base, cap_ms);
  double delay = base;
  if (jitter > 0.0 && rng != nullptr) {
    delay += base * jitter * (2.0 * rng->NextDouble() - 1.0);
  }
  delay = std::min(std::max(delay, 0.0), cap_ms);
  return std::chrono::milliseconds(static_cast<int64_t>(std::llround(delay)));
}

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_BACKOFF_H_
