#include "util/status.h"

namespace tman {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace tman
