#ifndef TRIGGERMAN_UTIL_STRING_UTIL_H_
#define TRIGGERMAN_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tman {

/// ASCII-only lowercase copy. The TriggerMan command language is
/// case-insensitive for keywords and identifiers.
std::string ToLower(std::string_view s);

/// ASCII-only uppercase copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a delimiter character; empty pieces are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_STRING_UTIL_H_
