#ifndef TRIGGERMAN_UTIL_RESULT_H_
#define TRIGGERMAN_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace tman {

/// A value-or-error carrier, in the style of arrow::Result<T>. A Result is
/// either ok and holds a T, or holds a non-ok Status. Dereferencing a
/// non-ok Result is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-ok Status (failure).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from Ok status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error Status out of the enclosing function.
#define TMAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define TMAN_ASSIGN_OR_RETURN(lhs, rexpr) \
  TMAN_ASSIGN_OR_RETURN_IMPL(             \
      TMAN_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define TMAN_CONCAT_INNER_(a, b) a##b
#define TMAN_CONCAT_(a, b) TMAN_CONCAT_INNER_(a, b)

}  // namespace tman

#endif  // TRIGGERMAN_UTIL_RESULT_H_
