#include "expr/expr.h"

#include <algorithm>

#include "util/hash.h"

namespace tman {

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kOr:
      return "or";
    case BinOp::kAnd:
      return "and";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
  }
  return "?";
}

std::string_view UnOpName(UnOp op) {
  return op == UnOp::kNot ? "not" : "-";
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

BinOp FlipComparison(BinOp op) {
  switch (op) {
    case BinOp::kLt:
      return BinOp::kGt;
    case BinOp::kLe:
      return BinOp::kGe;
    case BinOp::kGt:
      return BinOp::kLt;
    case BinOp::kGe:
      return BinOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

BinOp NegateComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return BinOp::kNe;
    case BinOp::kNe:
      return BinOp::kEq;
    case BinOp::kLt:
      return BinOp::kGe;
    case BinOp::kLe:
      return BinOp::kGt;
    case BinOp::kGt:
      return BinOp::kLe;
    case BinOp::kGe:
      return BinOp::kLt;
    default:
      return op;
  }
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string tuple_var, std::string attribute) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->tuple_var = std::move(tuple_var);
  e->attribute = std::move(attribute);
  return e;
}

ExprPtr MakePlaceholder(int index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kPlaceholder;
  e->placeholder_index = index;
  return e;
}

ExprPtr MakeUnary(UnOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnaryOp;
  e->un_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinaryOp;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

std::string ExprToString(const ExprPtr& e) {
  if (e == nullptr) return "<null>";
  switch (e->kind) {
    case ExprKind::kLiteral:
      return e->literal.ToString();
    case ExprKind::kColumnRef:
      return e->tuple_var.empty() ? e->attribute
                                  : e->tuple_var + "." + e->attribute;
    case ExprKind::kPlaceholder:
      return "CONSTANT_" + std::to_string(e->placeholder_index);
    case ExprKind::kUnaryOp:
      return std::string(UnOpName(e->un_op)) + "(" +
             ExprToString(e->children[0]) + ")";
    case ExprKind::kBinaryOp:
      return "(" + ExprToString(e->children[0]) + " " +
             std::string(BinOpName(e->bin_op)) + " " +
             ExprToString(e->children[1]) + ")";
    case ExprKind::kFunctionCall: {
      std::string out = e->func_name + "(";
      for (size_t i = 0; i < e->children.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToString(e->children[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kLiteral:
      if (a->literal.is_null() != b->literal.is_null()) return false;
      if (a->literal.is_string() != b->literal.is_string()) return false;
      if (!a->literal.is_null() && a->literal != b->literal) return false;
      return true;
    case ExprKind::kColumnRef:
      if (a->tuple_var != b->tuple_var || a->attribute != b->attribute) {
        return false;
      }
      return true;
    case ExprKind::kPlaceholder:
      if (a->placeholder_index != b->placeholder_index) return false;
      return true;
    case ExprKind::kUnaryOp:
      if (a->un_op != b->un_op) return false;
      break;
    case ExprKind::kBinaryOp:
      if (a->bin_op != b->bin_op) return false;
      break;
    case ExprKind::kFunctionCall:
      if (a->func_name != b->func_name) return false;
      break;
  }
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!ExprEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

uint64_t ExprHash(const ExprPtr& e) {
  if (e == nullptr) return 0;
  uint64_t h = MixInt(static_cast<uint64_t>(e->kind) + 0x51);
  switch (e->kind) {
    case ExprKind::kLiteral:
      h = HashCombine(h, e->literal.Hash());
      break;
    case ExprKind::kColumnRef:
      h = HashCombine(h, HashString(e->tuple_var));
      h = HashCombine(h, HashString(e->attribute));
      break;
    case ExprKind::kPlaceholder:
      h = HashCombine(h, MixInt(static_cast<uint64_t>(e->placeholder_index)));
      break;
    case ExprKind::kUnaryOp:
      h = HashCombine(h, static_cast<uint64_t>(e->un_op));
      break;
    case ExprKind::kBinaryOp:
      h = HashCombine(h, static_cast<uint64_t>(e->bin_op));
      break;
    case ExprKind::kFunctionCall:
      h = HashCombine(h, HashString(e->func_name));
      break;
  }
  for (const ExprPtr& c : e->children) {
    h = HashCombine(h, ExprHash(c));
  }
  return h;
}

namespace {
void CollectVars(const ExprPtr& e, std::vector<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), e->tuple_var) == out->end()) {
      out->push_back(e->tuple_var);
    }
  }
  for (const ExprPtr& c : e->children) CollectVars(c, out);
}
}  // namespace

std::vector<std::string> ReferencedTupleVars(const ExprPtr& e) {
  std::vector<std::string> out;
  CollectVars(e, &out);
  return out;
}

bool ContainsConstant(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kLiteral) return true;
  for (const ExprPtr& c : e->children) {
    if (ContainsConstant(c)) return true;
  }
  return false;
}

ExprPtr AndAll(const std::vector<ExprPtr>& clauses) {
  if (clauses.empty()) return MakeLiteral(Value::Int(1));
  ExprPtr out = clauses[0];
  for (size_t i = 1; i < clauses.size(); ++i) {
    out = MakeBinary(BinOp::kAnd, out, clauses[i]);
  }
  return out;
}

}  // namespace tman
