#include "expr/compile.h"

#include <cmath>
#include <sstream>

#include "expr/eval.h"
#include "util/string_util.h"

namespace tman {

namespace {

// Static type lattice used to pick specialized opcodes. A bit set means
// the operand *may* produce that type at runtime.
constexpr uint8_t kMaskInt = 1;
constexpr uint8_t kMaskFloat = 2;
constexpr uint8_t kMaskString = 4;
constexpr uint8_t kMaskNull = 8;
constexpr uint8_t kMaskAll = kMaskInt | kMaskFloat | kMaskString | kMaskNull;

uint8_t MaskOfValue(const Value& v) {
  if (v.is_null()) return kMaskNull;
  if (v.is_int()) return kMaskInt;
  if (v.is_float()) return kMaskFloat;
  return kMaskString;
}

uint8_t MaskOfDataType(DataType t) {
  // A stored field may always hold NULL.
  switch (t) {
    case DataType::kInt:
      return kMaskInt | kMaskNull;
    case DataType::kFloat:
      return kMaskFloat | kMaskNull;
    case DataType::kChar:
    case DataType::kVarchar:
      return kMaskString | kMaskNull;
  }
  return kMaskAll;
}

bool Within(uint8_t mask, uint8_t allowed) { return (mask & ~allowed) == 0; }

bool ApplyComparison(BinOp op, int c) {
  switch (op) {
    case BinOp::kEq:
      return c == 0;
    case BinOp::kNe:
      return c != 0;
    case BinOp::kLt:
      return c < 0;
    case BinOp::kLe:
      return c <= 0;
    case BinOp::kGt:
      return c > 0;
    case BinOp::kGe:
      return c >= 0;
    default:
      return false;  // unreachable: the compiler only encodes comparisons
  }
}

std::string_view VmOpName(VmOp op) {
  switch (op) {
    case VmOp::kCmpII:
      return "cmp.ii";
    case VmOp::kCmpFF:
      return "cmp.ff";
    case VmOp::kCmpSS:
      return "cmp.ss";
    case VmOp::kCmpAny:
      return "cmp.any";
    case VmOp::kArithII:
      return "arith.ii";
    case VmOp::kArithFF:
      return "arith.ff";
    case VmOp::kArithAny:
      return "arith.any";
    case VmOp::kBrFalse:
      return "br.false";
    case VmOp::kBrTrue:
      return "br.true";
    case VmOp::kAndMerge:
      return "and.merge";
    case VmOp::kOrMerge:
      return "or.merge";
    case VmOp::kNot:
      return "not";
    case VmOp::kNeg:
      return "neg";
    case VmOp::kAbs:
      return "abs";
    case VmOp::kLength:
      return "length";
    case VmOp::kUpper:
      return "upper";
    case VmOp::kLower:
      return "lower";
    case VmOp::kRound:
      return "round";
    case VmOp::kMod:
      return "mod";
    case VmOp::kMove:
      return "move";
  }
  return "?";
}

std::string OperandToString(const VmOperand& o) {
  switch (o.kind) {
    case VmOperand::Kind::kReg:
      return "r" + std::to_string(o.a);
    case VmOperand::Kind::kField:
      return "t" + std::to_string(o.a) + "." + std::to_string(o.b);
    case VmOperand::Kind::kConst:
      return "c" + std::to_string(o.a);
    case VmOperand::Kind::kParam:
      return "p" + std::to_string(o.a);
  }
  return "?";
}

}  // namespace

Result<BindingLayout::FieldRef> BindingLayout::Resolve(
    const std::string& var, const std::string& attr) const {
  if (!var.empty()) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (EqualsIgnoreCase(slots_[i].var, var)) {
        TMAN_ASSIGN_OR_RETURN(size_t idx,
                              slots_[i].schema->RequireField(attr));
        return FieldRef{static_cast<uint16_t>(i), static_cast<uint16_t>(idx),
                        slots_[i].schema->field(idx).type};
      }
    }
    return Status::NotFound("unbound tuple variable: " + var);
  }
  // Unqualified: must resolve to exactly one slot, as in Bindings::Lookup.
  int found_slot = -1;
  int found_field = -1;
  for (size_t i = 0; i < slots_.size(); ++i) {
    int idx = slots_[i].schema->FieldIndex(attr);
    if (idx >= 0) {
      if (found_slot >= 0) {
        return Status::InvalidArgument("ambiguous attribute: " + attr);
      }
      found_slot = static_cast<int>(i);
      found_field = idx;
    }
  }
  if (found_slot < 0) {
    return Status::NotFound("no such attribute: " + attr);
  }
  return FieldRef{static_cast<uint16_t>(found_slot),
                  static_cast<uint16_t>(found_field),
                  slots_[found_slot].schema->field(found_field).type};
}

/// One-shot tree -> bytecode lowering. Leaves (literals, column refs,
/// parameters) become operands, not instructions; every instruction writes
/// a fresh register (trees are small, so registers are never recycled).
class PredicateCompiler {
 public:
  PredicateCompiler(const BindingLayout& layout, const CompileOptions& opts)
      : layout_(layout), opts_(opts) {}

  Result<CompiledPredicate> Compile(const ExprPtr& expr) {
    TypedOperand root;
    if (expr == nullptr) {
      // Absent condition = TRUE, as in EvalExpr.
      TMAN_ASSIGN_OR_RETURN(VmOperand one, ConstOperand(Value::Int(1)));
      root = TypedOperand{one, kMaskInt};
    } else {
      TMAN_ASSIGN_OR_RETURN(root, Emit(expr));
    }
    CompiledPredicate p;
    p.code_ = std::move(code_);
    p.const_pool_ = std::move(pool_);
    p.result_ = root.op;
    p.num_regs_ = static_cast<uint16_t>(next_reg_);
    p.num_slots_ = static_cast<uint16_t>(layout_.size());
    p.num_params_ = static_cast<uint16_t>(max_param_);
    return p;
  }

 private:
  struct TypedOperand {
    VmOperand op;
    uint8_t mask = kMaskAll;
  };

  Result<uint16_t> AllocReg() {
    if (next_reg_ >= 65535) {
      return Status::ResourceExhausted("expression too large to compile");
    }
    return static_cast<uint16_t>(next_reg_++);
  }

  Result<VmOperand> ConstOperand(Value v) {
    for (size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].Compare(v) == 0 && pool_[i].is_null() == v.is_null() &&
          pool_[i].type() == v.type()) {
        return VmOperand{VmOperand::Kind::kConst, static_cast<uint16_t>(i), 0};
      }
    }
    if (pool_.size() >= 65535) {
      return Status::ResourceExhausted("expression too large to compile");
    }
    pool_.push_back(std::move(v));
    return VmOperand{VmOperand::Kind::kConst,
                     static_cast<uint16_t>(pool_.size() - 1), 0};
  }

  Result<VmOperand> EmitInstr(VmOp op, VmOperand x, VmOperand y,
                              uint32_t imm) {
    TMAN_ASSIGN_OR_RETURN(uint16_t dst, AllocReg());
    code_.push_back(VmInstr{op, dst, x, y, imm});
    return VmOperand{VmOperand::Kind::kReg, dst, 0};
  }

  Result<TypedOperand> Emit(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kLiteral: {
        TMAN_ASSIGN_OR_RETURN(VmOperand c, ConstOperand(e->literal));
        return TypedOperand{c, MaskOfValue(e->literal)};
      }

      case ExprKind::kColumnRef: {
        TMAN_ASSIGN_OR_RETURN(BindingLayout::FieldRef ref,
                              layout_.Resolve(e->tuple_var, e->attribute));
        return TypedOperand{
            VmOperand{VmOperand::Kind::kField, ref.slot, ref.field},
            MaskOfDataType(ref.type)};
      }

      case ExprKind::kPlaceholder: {
        if (!opts_.allow_params || e->placeholder_index < 1 ||
            e->placeholder_index > 65535) {
          return Status::NotSupported(
              "placeholder requires interpreter fallback");
        }
        uint16_t idx = static_cast<uint16_t>(e->placeholder_index - 1);
        if (static_cast<uint32_t>(idx) + 1 > max_param_) {
          max_param_ = idx + 1;
        }
        return TypedOperand{VmOperand{VmOperand::Kind::kParam, idx, 0},
                            kMaskAll};
      }

      case ExprKind::kUnaryOp: {
        TMAN_ASSIGN_OR_RETURN(TypedOperand in, Emit(e->children[0]));
        if (e->un_op == UnOp::kNeg) {
          TMAN_ASSIGN_OR_RETURN(
              VmOperand out, EmitInstr(VmOp::kNeg, in.op, VmOperand{}, 0));
          uint8_t mask = in.mask & (kMaskInt | kMaskFloat | kMaskNull);
          return TypedOperand{out, mask == 0 ? kMaskAll : mask};
        }
        TMAN_ASSIGN_OR_RETURN(VmOperand out,
                              EmitInstr(VmOp::kNot, in.op, VmOperand{}, 0));
        return TypedOperand{out, static_cast<uint8_t>(
                                     kMaskInt | (in.mask & kMaskNull))};
      }

      case ExprKind::kBinaryOp:
        return EmitBinary(e);

      case ExprKind::kFunctionCall:
        return EmitFunction(e);
    }
    return Status::Internal("unknown expression kind");
  }

  Result<TypedOperand> EmitBinary(const ExprPtr& e) {
    BinOp op = e->bin_op;
    if (op == BinOp::kAnd || op == BinOp::kOr) {
      TMAN_ASSIGN_OR_RETURN(TypedOperand l, Emit(e->children[0]));
      TMAN_ASSIGN_OR_RETURN(uint16_t dst, AllocReg());
      // Decided results short-circuit past the right side, exactly like
      // the interpreter (so errors in the skipped subtree never surface).
      size_t branch_at = code_.size();
      code_.push_back(VmInstr{
          op == BinOp::kAnd ? VmOp::kBrFalse : VmOp::kBrTrue, dst, l.op,
          VmOperand{}, 0});
      TMAN_ASSIGN_OR_RETURN(TypedOperand r, Emit(e->children[1]));
      code_.push_back(VmInstr{
          op == BinOp::kAnd ? VmOp::kAndMerge : VmOp::kOrMerge, dst, l.op,
          r.op, 0});
      code_[branch_at].imm = static_cast<uint32_t>(code_.size());
      uint8_t null_bit =
          static_cast<uint8_t>((l.mask | r.mask) & kMaskNull);
      return TypedOperand{VmOperand{VmOperand::Kind::kReg, dst, 0},
                          static_cast<uint8_t>(kMaskInt | null_bit)};
    }

    TMAN_ASSIGN_OR_RETURN(TypedOperand l, Emit(e->children[0]));
    TMAN_ASSIGN_OR_RETURN(TypedOperand r, Emit(e->children[1]));
    uint32_t imm = static_cast<uint32_t>(op);

    if (IsComparison(op)) {
      VmOp vop = VmOp::kCmpAny;
      if (Within(l.mask, kMaskInt | kMaskNull) &&
          Within(r.mask, kMaskInt | kMaskNull)) {
        vop = VmOp::kCmpII;
      } else if (Within(l.mask, kMaskInt | kMaskFloat | kMaskNull) &&
                 Within(r.mask, kMaskInt | kMaskFloat | kMaskNull)) {
        vop = VmOp::kCmpFF;
      } else if (Within(l.mask, kMaskString | kMaskNull) &&
                 Within(r.mask, kMaskString | kMaskNull)) {
        vop = VmOp::kCmpSS;
      }
      TMAN_ASSIGN_OR_RETURN(VmOperand out, EmitInstr(vop, l.op, r.op, imm));
      uint8_t null_bit =
          static_cast<uint8_t>((l.mask | r.mask) & kMaskNull);
      return TypedOperand{out, static_cast<uint8_t>(kMaskInt | null_bit)};
    }

    // Arithmetic. '+' may be string concatenation, which only the generic
    // kernel implements.
    VmOp vop = VmOp::kArithAny;
    uint8_t mask = kMaskAll;
    if (Within(l.mask, kMaskInt | kMaskNull) &&
        Within(r.mask, kMaskInt | kMaskNull)) {
      vop = VmOp::kArithII;
      mask = kMaskInt | kMaskNull;
    } else if (Within(l.mask, kMaskInt | kMaskFloat | kMaskNull) &&
               Within(r.mask, kMaskInt | kMaskFloat | kMaskNull)) {
      vop = VmOp::kArithFF;
      mask = kMaskInt | kMaskFloat | kMaskNull;
    }
    TMAN_ASSIGN_OR_RETURN(VmOperand out, EmitInstr(vop, l.op, r.op, imm));
    return TypedOperand{out, mask};
  }

  Result<TypedOperand> EmitFunction(const ExprPtr& e) {
    std::string fn = ToLower(e->func_name);
    struct Builtin {
      const char* name;
      VmOp op;
      size_t arity;
      uint8_t mask;
    };
    static const Builtin kBuiltins[] = {
        {"abs", VmOp::kAbs, 1, kMaskInt | kMaskFloat | kMaskNull},
        {"length", VmOp::kLength, 1, kMaskInt | kMaskNull},
        {"upper", VmOp::kUpper, 1, kMaskString | kMaskNull},
        {"lower", VmOp::kLower, 1, kMaskString | kMaskNull},
        {"round", VmOp::kRound, 1, kMaskInt | kMaskNull},
        {"mod", VmOp::kMod, 2, kMaskInt | kMaskNull},
    };
    for (const Builtin& b : kBuiltins) {
      if (fn != b.name) continue;
      if (e->children.size() != b.arity) {
        // The interpreter reports the arity error at eval time; refusing
        // here routes such expressions to it.
        return Status::NotSupported("arity mismatch requires interpreter");
      }
      TMAN_ASSIGN_OR_RETURN(TypedOperand x, Emit(e->children[0]));
      VmOperand y{};
      if (b.arity == 2) {
        TMAN_ASSIGN_OR_RETURN(TypedOperand ty, Emit(e->children[1]));
        y = ty.op;
      }
      TMAN_ASSIGN_OR_RETURN(VmOperand out, EmitInstr(b.op, x.op, y, 0));
      return TypedOperand{out, b.mask};
    }
    return Status::NotSupported("unknown function requires interpreter");
  }

  const BindingLayout& layout_;
  CompileOptions opts_;
  std::vector<VmInstr> code_;
  std::vector<Value> pool_;
  uint32_t next_reg_ = 0;
  uint32_t max_param_ = 0;
};

Result<CompiledPredicate> CompiledPredicate::Compile(
    const ExprPtr& expr, const BindingLayout& layout,
    const CompileOptions& opts) {
  if (layout.size() > 65535) {
    return Status::ResourceExhausted("too many binding slots");
  }
  PredicateCompiler compiler(layout, opts);
  return compiler.Compile(expr);
}

std::shared_ptr<const CompiledPredicate> TryCompilePredicate(
    const ExprPtr& expr, const BindingLayout& layout,
    const CompileOptions& opts) {
  Result<CompiledPredicate> compiled =
      CompiledPredicate::Compile(expr, layout, opts);
  if (!compiled.ok()) return nullptr;
  return std::make_shared<const CompiledPredicate>(
      std::move(compiled).value());
}

namespace {

/// Truthiness of a value already known to be non-null.
inline bool TruthyNonNull(const Value& v) {
  if (const int64_t* i = v.if_int()) return *i != 0;
  if (const double* f = v.if_float()) return *f != 0.0;
  return !v.as_string().empty();
}

/// Widens both operands to double via tag checks only; false when either
/// is non-numeric.
inline bool NumericPair(const Value& l, const Value& r, double* a,
                        double* b) {
  if (const int64_t* li = l.if_int()) {
    *a = static_cast<double>(*li);
  } else if (const double* lf = l.if_float()) {
    *a = *lf;
  } else {
    return false;
  }
  if (const int64_t* ri = r.if_int()) {
    *b = static_cast<double>(*ri);
  } else if (const double* rf = r.if_float()) {
    *b = *rf;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Result<const Value*> CompiledPredicate::Run(const Tuple* const* tuples,
                                            size_t num_tuples,
                                            const Value* params,
                                            size_t num_params) const {
  if (num_tuples < num_slots_) {
    return Status::Internal("compiled predicate: missing tuple bindings");
  }
  if (num_params < num_params_) {
    return Status::Internal("compiled predicate: missing parameters");
  }
  thread_local std::vector<Value> regs;
  if (regs.size() < num_regs_) regs.resize(num_regs_);

  Status err;
  // Resolves an operand to the Value it denotes, without copying. Field
  // reads are bounds-checked: a tuple narrower than its schema yields an
  // error instead of UB (the interpreter would fault the same way through
  // Tuple::at's unchecked indexing, but only on malformed input).
  auto read = [&](const VmOperand& o) -> const Value* {
    switch (o.kind) {
      case VmOperand::Kind::kReg:
        return &regs[o.a];
      case VmOperand::Kind::kField: {
        const Tuple* t = tuples[o.a];
        if (t == nullptr || o.b >= t->size()) {
          err = Status::Internal("compiled predicate: field out of range");
          return nullptr;
        }
        return &t->at(o.b);
      }
      case VmOperand::Kind::kConst:
        return &const_pool_[o.a];
      case VmOperand::Kind::kParam:
        return &params[o.a];
    }
    err = Status::Internal("bad operand");
    return nullptr;
  };

  size_t pc = 0;
  const size_t n = code_.size();
  while (pc < n) {
    const VmInstr& ins = code_[pc];
    Value& dst = regs[ins.dst];
    switch (ins.op) {
      case VmOp::kCmpII: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* a = l->if_int();
        const int64_t* b = r->if_int();
        if (a != nullptr && b != nullptr) {
          int c = *a < *b ? -1 : (*a > *b ? 1 : 0);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kCmpFF: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* a = l->if_int();
        const int64_t* b = r->if_int();
        double af, bf;
        if (a != nullptr && b != nullptr) {
          int c = *a < *b ? -1 : (*a > *b ? 1 : 0);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else if (NumericPair(*l, *r, &af, &bf)) {
          int c = af < bf ? -1 : (af > bf ? 1 : 0);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kCmpSS: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const std::string* a = l->if_string();
        const std::string* b = r->if_string();
        if (a != nullptr && b != nullptr) {
          int c = a->compare(*b);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kCmpAny: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        TMAN_ASSIGN_OR_RETURN(
            dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        break;
      }
      case VmOp::kArithII: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* ap = l->if_int();
        const int64_t* bp = r->if_int();
        if (ap != nullptr && bp != nullptr) {
          int64_t a = *ap;
          int64_t b = *bp;
          switch (static_cast<BinOp>(ins.imm)) {
            case BinOp::kAdd:
              dst.SetInt(a + b);
              break;
            case BinOp::kSub:
              dst.SetInt(a - b);
              break;
            case BinOp::kMul:
              dst.SetInt(a * b);
              break;
            case BinOp::kDiv:
              if (b == 0) {
                return Status::EvalError("integer division by zero");
              }
              dst.SetInt(a / b);
              break;
            default:
              return Status::Internal("not arithmetic");
          }
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalArithmeticOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kArithFF: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* ai = l->if_int();
        const int64_t* bi = r->if_int();
        double a;
        double b;
        if (ai != nullptr && bi != nullptr) {
          // The int/int case stays exact (and reports "integer division
          // by zero"), matching EvalArithmeticOp.
          switch (static_cast<BinOp>(ins.imm)) {
            case BinOp::kAdd:
              dst.SetInt(*ai + *bi);
              break;
            case BinOp::kSub:
              dst.SetInt(*ai - *bi);
              break;
            case BinOp::kMul:
              dst.SetInt(*ai * *bi);
              break;
            case BinOp::kDiv:
              if (*bi == 0) {
                return Status::EvalError("integer division by zero");
              }
              dst.SetInt(*ai / *bi);
              break;
            default:
              return Status::Internal("not arithmetic");
          }
        } else if (NumericPair(*l, *r, &a, &b)) {
          switch (static_cast<BinOp>(ins.imm)) {
            case BinOp::kAdd:
              dst.SetFloat(a + b);
              break;
            case BinOp::kSub:
              dst.SetFloat(a - b);
              break;
            case BinOp::kMul:
              dst.SetFloat(a * b);
              break;
            case BinOp::kDiv:
              if (b == 0.0) {
                return Status::EvalError("division by zero");
              }
              dst.SetFloat(a / b);
              break;
            default:
              return Status::Internal("not arithmetic");
          }
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalArithmeticOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kArithAny: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        TMAN_ASSIGN_OR_RETURN(
            dst, EvalArithmeticOp(static_cast<BinOp>(ins.imm), *l, *r));
        break;
      }
      case VmOp::kBrFalse: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (!v->is_null() && !TruthyNonNull(*v)) {
          dst.SetInt(0);
          pc = ins.imm;
          continue;
        }
        break;
      }
      case VmOp::kBrTrue: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (!v->is_null() && TruthyNonNull(*v)) {
          dst.SetInt(1);
          pc = ins.imm;
          continue;
        }
        break;
      }
      case VmOp::kAndMerge: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        if (!r->is_null() && !TruthyNonNull(*r)) {
          dst.SetInt(0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          dst.SetInt(1);
        }
        break;
      }
      case VmOp::kOrMerge: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        if (!r->is_null() && TruthyNonNull(*r)) {
          dst.SetInt(1);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          dst.SetInt(0);
        }
        break;
      }
      case VmOp::kNot: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (v->is_null()) {
          dst.SetNull();
        } else {
          dst.SetInt(TruthyNonNull(*v) ? 0 : 1);
        }
        break;
      }
      case VmOp::kNeg: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const int64_t* i = v->if_int()) {
          dst.SetInt(-*i);
        } else if (const double* f = v->if_float()) {
          dst.SetFloat(-*f);
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("negation of non-numeric value");
        }
        break;
      }
      case VmOp::kAbs: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const int64_t* i = v->if_int()) {
          dst.SetInt(std::llabs(*i));
        } else if (const double* f = v->if_float()) {
          dst.SetFloat(std::fabs(*f));
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("abs of non-numeric value");
        }
        break;
      }
      case VmOp::kLength: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const std::string* s = v->if_string()) {
          dst.SetInt(static_cast<int64_t>(s->size()));
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("length of non-string");
        }
        break;
      }
      case VmOp::kUpper:
      case VmOp::kLower: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (v->is_null()) {
          dst = Value::Null();
        } else if (v->is_string()) {
          dst = Value::String(ins.op == VmOp::kUpper
                                  ? ToUpper(v->as_string())
                                  : ToLower(v->as_string()));
        } else {
          return Status::TypeError(
              std::string(ins.op == VmOp::kUpper ? "upper" : "lower") +
              " of non-string");
        }
        break;
      }
      case VmOp::kRound: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const int64_t* i = v->if_int()) {
          dst.SetInt(static_cast<int64_t>(
              std::llround(static_cast<double>(*i))));
        } else if (const double* f = v->if_float()) {
          dst.SetInt(static_cast<int64_t>(std::llround(*f)));
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("round non-numeric");
        }
        break;
      }
      case VmOp::kMod: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* a = l->if_int();
        const int64_t* b = r->if_int();
        if (a != nullptr && b != nullptr) {
          if (*b == 0) return Status::EvalError("mod by zero");
          dst.SetInt(*a % *b);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("mod expects integers");
        }
        break;
      }
      case VmOp::kMove: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        dst = *v;
        break;
      }
    }
    ++pc;
  }

  const Value* out = read(result_);
  if (out == nullptr) return err;
  return out;
}

Result<Value> CompiledPredicate::EvalValue(const Tuple* const* tuples,
                                           size_t num_tuples,
                                           const Value* params,
                                           size_t num_params) const {
  TMAN_ASSIGN_OR_RETURN(const Value* out,
                        Run(tuples, num_tuples, params, num_params));
  return *out;
}

Result<bool> CompiledPredicate::EvalBool(const Tuple* const* tuples,
                                         size_t num_tuples,
                                         const Value* params,
                                         size_t num_params) const {
  TMAN_ASSIGN_OR_RETURN(const Value* out,
                        Run(tuples, num_tuples, params, num_params));
  return Truthy(*out);
}

std::string CompiledPredicate::Disassemble() const {
  std::ostringstream os;
  os << "slots=" << num_slots_ << " regs=" << num_regs_
     << " params=" << num_params_ << " consts=" << const_pool_.size()
     << "\n";
  for (size_t i = 0; i < const_pool_.size(); ++i) {
    os << "  c" << i << " = " << const_pool_[i].ToString() << "\n";
  }
  for (size_t i = 0; i < code_.size(); ++i) {
    const VmInstr& ins = code_[i];
    os << "  " << i << ": " << VmOpName(ins.op) << " r" << ins.dst << ", "
       << OperandToString(ins.x);
    switch (ins.op) {
      case VmOp::kCmpII:
      case VmOp::kCmpFF:
      case VmOp::kCmpSS:
      case VmOp::kCmpAny:
      case VmOp::kArithII:
      case VmOp::kArithFF:
      case VmOp::kArithAny:
        os << ", " << OperandToString(ins.y) << " ["
           << BinOpName(static_cast<BinOp>(ins.imm)) << "]";
        break;
      case VmOp::kAndMerge:
      case VmOp::kOrMerge:
      case VmOp::kMod:
        os << ", " << OperandToString(ins.y);
        break;
      case VmOp::kBrFalse:
      case VmOp::kBrTrue:
        os << " -> " << ins.imm;
        break;
      default:
        break;
    }
    os << "\n";
  }
  os << "  result = " << OperandToString(result_) << "\n";
  return os.str();
}

}  // namespace tman
