#include "expr/compile.h"

#include <cmath>
#include <cstring>
#include <deque>
#include <sstream>

#include "expr/eval.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace tman {

namespace {

// Static type lattice used to pick specialized opcodes. A bit set means
// the operand *may* produce that type at runtime.
constexpr uint8_t kMaskInt = 1;
constexpr uint8_t kMaskFloat = 2;
constexpr uint8_t kMaskString = 4;
constexpr uint8_t kMaskNull = 8;
constexpr uint8_t kMaskAll = kMaskInt | kMaskFloat | kMaskString | kMaskNull;

uint8_t MaskOfValue(const Value& v) {
  if (v.is_null()) return kMaskNull;
  if (v.is_int()) return kMaskInt;
  if (v.is_float()) return kMaskFloat;
  return kMaskString;
}

uint8_t MaskOfDataType(DataType t) {
  // A stored field may always hold NULL.
  switch (t) {
    case DataType::kInt:
      return kMaskInt | kMaskNull;
    case DataType::kFloat:
      return kMaskFloat | kMaskNull;
    case DataType::kChar:
    case DataType::kVarchar:
      return kMaskString | kMaskNull;
  }
  return kMaskAll;
}

bool Within(uint8_t mask, uint8_t allowed) { return (mask & ~allowed) == 0; }

bool ApplyComparison(BinOp op, int c) {
  switch (op) {
    case BinOp::kEq:
      return c == 0;
    case BinOp::kNe:
      return c != 0;
    case BinOp::kLt:
      return c < 0;
    case BinOp::kLe:
      return c <= 0;
    case BinOp::kGt:
      return c > 0;
    case BinOp::kGe:
      return c >= 0;
    default:
      return false;  // unreachable: the compiler only encodes comparisons
  }
}

std::string_view VmOpName(VmOp op) {
  switch (op) {
    case VmOp::kCmpII:
      return "cmp.ii";
    case VmOp::kCmpFF:
      return "cmp.ff";
    case VmOp::kCmpSS:
      return "cmp.ss";
    case VmOp::kCmpAny:
      return "cmp.any";
    case VmOp::kArithII:
      return "arith.ii";
    case VmOp::kArithFF:
      return "arith.ff";
    case VmOp::kArithAny:
      return "arith.any";
    case VmOp::kBrFalse:
      return "br.false";
    case VmOp::kBrTrue:
      return "br.true";
    case VmOp::kAndMerge:
      return "and.merge";
    case VmOp::kOrMerge:
      return "or.merge";
    case VmOp::kNot:
      return "not";
    case VmOp::kNeg:
      return "neg";
    case VmOp::kAbs:
      return "abs";
    case VmOp::kLength:
      return "length";
    case VmOp::kUpper:
      return "upper";
    case VmOp::kLower:
      return "lower";
    case VmOp::kRound:
      return "round";
    case VmOp::kMod:
      return "mod";
    case VmOp::kMove:
      return "move";
  }
  return "?";
}

std::string OperandToString(const VmOperand& o) {
  switch (o.kind) {
    case VmOperand::Kind::kReg:
      return "r" + std::to_string(o.a);
    case VmOperand::Kind::kField:
      return "t" + std::to_string(o.a) + "." + std::to_string(o.b);
    case VmOperand::Kind::kConst:
      return "c" + std::to_string(o.a);
    case VmOperand::Kind::kParam:
      return "p" + std::to_string(o.a);
  }
  return "?";
}

}  // namespace

Result<BindingLayout::FieldRef> BindingLayout::Resolve(
    const std::string& var, const std::string& attr) const {
  if (!var.empty()) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (EqualsIgnoreCase(slots_[i].var, var)) {
        TMAN_ASSIGN_OR_RETURN(size_t idx,
                              slots_[i].schema->RequireField(attr));
        return FieldRef{static_cast<uint16_t>(i), static_cast<uint16_t>(idx),
                        slots_[i].schema->field(idx).type};
      }
    }
    return Status::NotFound("unbound tuple variable: " + var);
  }
  // Unqualified: must resolve to exactly one slot, as in Bindings::Lookup.
  int found_slot = -1;
  int found_field = -1;
  for (size_t i = 0; i < slots_.size(); ++i) {
    int idx = slots_[i].schema->FieldIndex(attr);
    if (idx >= 0) {
      if (found_slot >= 0) {
        return Status::InvalidArgument("ambiguous attribute: " + attr);
      }
      found_slot = static_cast<int>(i);
      found_field = idx;
    }
  }
  if (found_slot < 0) {
    return Status::NotFound("no such attribute: " + attr);
  }
  return FieldRef{static_cast<uint16_t>(found_slot),
                  static_cast<uint16_t>(found_field),
                  slots_[found_slot].schema->field(found_field).type};
}

/// One-shot tree -> bytecode lowering. Leaves (literals, column refs,
/// parameters) become operands, not instructions; every instruction writes
/// a fresh register (trees are small, so registers are never recycled).
class PredicateCompiler {
 public:
  PredicateCompiler(const BindingLayout& layout, const CompileOptions& opts)
      : layout_(layout), opts_(opts) {}

  Result<CompiledPredicate> Compile(const ExprPtr& expr) {
    TypedOperand root;
    if (expr == nullptr) {
      // Absent condition = TRUE, as in EvalExpr.
      TMAN_ASSIGN_OR_RETURN(VmOperand one, ConstOperand(Value::Int(1)));
      root = TypedOperand{one, kMaskInt};
    } else {
      TMAN_ASSIGN_OR_RETURN(root, Emit(expr));
    }
    CompiledPredicate p;
    p.code_ = std::move(code_);
    p.const_pool_ = std::move(pool_);
    p.const_str_hash_.assign(p.const_pool_.size(), 0);
    for (size_t i = 0; i < p.const_pool_.size(); ++i) {
      if (const std::string* sp = p.const_pool_[i].if_string()) {
        p.const_str_hash_[i] = HashString(*sp);
      }
    }
    p.result_ = root.op;
    p.num_regs_ = static_cast<uint16_t>(next_reg_);
    p.num_slots_ = static_cast<uint16_t>(layout_.size());
    p.num_params_ = static_cast<uint16_t>(max_param_);
    return p;
  }

 private:
  struct TypedOperand {
    VmOperand op;
    uint8_t mask = kMaskAll;
  };

  Result<uint16_t> AllocReg() {
    if (next_reg_ >= 65535) {
      return Status::ResourceExhausted("expression too large to compile");
    }
    return static_cast<uint16_t>(next_reg_++);
  }

  Result<VmOperand> ConstOperand(Value v) {
    for (size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].Compare(v) == 0 && pool_[i].is_null() == v.is_null() &&
          pool_[i].type() == v.type()) {
        return VmOperand{VmOperand::Kind::kConst, static_cast<uint16_t>(i), 0};
      }
    }
    if (pool_.size() >= 65535) {
      return Status::ResourceExhausted("expression too large to compile");
    }
    pool_.push_back(std::move(v));
    return VmOperand{VmOperand::Kind::kConst,
                     static_cast<uint16_t>(pool_.size() - 1), 0};
  }

  Result<VmOperand> EmitInstr(VmOp op, VmOperand x, VmOperand y,
                              uint32_t imm) {
    TMAN_ASSIGN_OR_RETURN(uint16_t dst, AllocReg());
    code_.push_back(VmInstr{op, dst, x, y, imm});
    return VmOperand{VmOperand::Kind::kReg, dst, 0};
  }

  Result<TypedOperand> Emit(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kLiteral: {
        TMAN_ASSIGN_OR_RETURN(VmOperand c, ConstOperand(e->literal));
        return TypedOperand{c, MaskOfValue(e->literal)};
      }

      case ExprKind::kColumnRef: {
        TMAN_ASSIGN_OR_RETURN(BindingLayout::FieldRef ref,
                              layout_.Resolve(e->tuple_var, e->attribute));
        return TypedOperand{
            VmOperand{VmOperand::Kind::kField, ref.slot, ref.field},
            MaskOfDataType(ref.type)};
      }

      case ExprKind::kPlaceholder: {
        if (!opts_.allow_params || e->placeholder_index < 1 ||
            e->placeholder_index > 65535) {
          return Status::NotSupported(
              "placeholder requires interpreter fallback");
        }
        uint16_t idx = static_cast<uint16_t>(e->placeholder_index - 1);
        if (static_cast<uint32_t>(idx) + 1 > max_param_) {
          max_param_ = idx + 1;
        }
        return TypedOperand{VmOperand{VmOperand::Kind::kParam, idx, 0},
                            kMaskAll};
      }

      case ExprKind::kUnaryOp: {
        TMAN_ASSIGN_OR_RETURN(TypedOperand in, Emit(e->children[0]));
        if (e->un_op == UnOp::kNeg) {
          TMAN_ASSIGN_OR_RETURN(
              VmOperand out, EmitInstr(VmOp::kNeg, in.op, VmOperand{}, 0));
          uint8_t mask = in.mask & (kMaskInt | kMaskFloat | kMaskNull);
          return TypedOperand{out, mask == 0 ? kMaskAll : mask};
        }
        TMAN_ASSIGN_OR_RETURN(VmOperand out,
                              EmitInstr(VmOp::kNot, in.op, VmOperand{}, 0));
        return TypedOperand{out, static_cast<uint8_t>(
                                     kMaskInt | (in.mask & kMaskNull))};
      }

      case ExprKind::kBinaryOp:
        return EmitBinary(e);

      case ExprKind::kFunctionCall:
        return EmitFunction(e);
    }
    return Status::Internal("unknown expression kind");
  }

  Result<TypedOperand> EmitBinary(const ExprPtr& e) {
    BinOp op = e->bin_op;
    if (op == BinOp::kAnd || op == BinOp::kOr) {
      TMAN_ASSIGN_OR_RETURN(TypedOperand l, Emit(e->children[0]));
      TMAN_ASSIGN_OR_RETURN(uint16_t dst, AllocReg());
      // Decided results short-circuit past the right side, exactly like
      // the interpreter (so errors in the skipped subtree never surface).
      size_t branch_at = code_.size();
      code_.push_back(VmInstr{
          op == BinOp::kAnd ? VmOp::kBrFalse : VmOp::kBrTrue, dst, l.op,
          VmOperand{}, 0});
      TMAN_ASSIGN_OR_RETURN(TypedOperand r, Emit(e->children[1]));
      code_.push_back(VmInstr{
          op == BinOp::kAnd ? VmOp::kAndMerge : VmOp::kOrMerge, dst, l.op,
          r.op, 0});
      code_[branch_at].imm = static_cast<uint32_t>(code_.size());
      uint8_t null_bit =
          static_cast<uint8_t>((l.mask | r.mask) & kMaskNull);
      return TypedOperand{VmOperand{VmOperand::Kind::kReg, dst, 0},
                          static_cast<uint8_t>(kMaskInt | null_bit)};
    }

    TMAN_ASSIGN_OR_RETURN(TypedOperand l, Emit(e->children[0]));
    TMAN_ASSIGN_OR_RETURN(TypedOperand r, Emit(e->children[1]));
    uint32_t imm = static_cast<uint32_t>(op);

    if (IsComparison(op)) {
      VmOp vop = VmOp::kCmpAny;
      if (Within(l.mask, kMaskInt | kMaskNull) &&
          Within(r.mask, kMaskInt | kMaskNull)) {
        vop = VmOp::kCmpII;
      } else if (Within(l.mask, kMaskInt | kMaskFloat | kMaskNull) &&
                 Within(r.mask, kMaskInt | kMaskFloat | kMaskNull)) {
        vop = VmOp::kCmpFF;
      } else if (Within(l.mask, kMaskString | kMaskNull) &&
                 Within(r.mask, kMaskString | kMaskNull)) {
        vop = VmOp::kCmpSS;
      }
      TMAN_ASSIGN_OR_RETURN(VmOperand out, EmitInstr(vop, l.op, r.op, imm));
      uint8_t null_bit =
          static_cast<uint8_t>((l.mask | r.mask) & kMaskNull);
      return TypedOperand{out, static_cast<uint8_t>(kMaskInt | null_bit)};
    }

    // Arithmetic. '+' may be string concatenation, which only the generic
    // kernel implements.
    VmOp vop = VmOp::kArithAny;
    uint8_t mask = kMaskAll;
    if (Within(l.mask, kMaskInt | kMaskNull) &&
        Within(r.mask, kMaskInt | kMaskNull)) {
      vop = VmOp::kArithII;
      mask = kMaskInt | kMaskNull;
    } else if (Within(l.mask, kMaskInt | kMaskFloat | kMaskNull) &&
               Within(r.mask, kMaskInt | kMaskFloat | kMaskNull)) {
      vop = VmOp::kArithFF;
      mask = kMaskInt | kMaskFloat | kMaskNull;
    }
    TMAN_ASSIGN_OR_RETURN(VmOperand out, EmitInstr(vop, l.op, r.op, imm));
    return TypedOperand{out, mask};
  }

  Result<TypedOperand> EmitFunction(const ExprPtr& e) {
    std::string fn = ToLower(e->func_name);
    struct Builtin {
      const char* name;
      VmOp op;
      size_t arity;
      uint8_t mask;
    };
    static const Builtin kBuiltins[] = {
        {"abs", VmOp::kAbs, 1, kMaskInt | kMaskFloat | kMaskNull},
        {"length", VmOp::kLength, 1, kMaskInt | kMaskNull},
        {"upper", VmOp::kUpper, 1, kMaskString | kMaskNull},
        {"lower", VmOp::kLower, 1, kMaskString | kMaskNull},
        {"round", VmOp::kRound, 1, kMaskInt | kMaskNull},
        {"mod", VmOp::kMod, 2, kMaskInt | kMaskNull},
    };
    for (const Builtin& b : kBuiltins) {
      if (fn != b.name) continue;
      if (e->children.size() != b.arity) {
        // The interpreter reports the arity error at eval time; refusing
        // here routes such expressions to it.
        return Status::NotSupported("arity mismatch requires interpreter");
      }
      TMAN_ASSIGN_OR_RETURN(TypedOperand x, Emit(e->children[0]));
      VmOperand y{};
      if (b.arity == 2) {
        TMAN_ASSIGN_OR_RETURN(TypedOperand ty, Emit(e->children[1]));
        y = ty.op;
      }
      TMAN_ASSIGN_OR_RETURN(VmOperand out, EmitInstr(b.op, x.op, y, 0));
      return TypedOperand{out, b.mask};
    }
    return Status::NotSupported("unknown function requires interpreter");
  }

  const BindingLayout& layout_;
  CompileOptions opts_;
  std::vector<VmInstr> code_;
  std::vector<Value> pool_;
  uint32_t next_reg_ = 0;
  uint32_t max_param_ = 0;
};

Result<CompiledPredicate> CompiledPredicate::Compile(
    const ExprPtr& expr, const BindingLayout& layout,
    const CompileOptions& opts) {
  if (layout.size() > 65535) {
    return Status::ResourceExhausted("too many binding slots");
  }
  PredicateCompiler compiler(layout, opts);
  return compiler.Compile(expr);
}

std::shared_ptr<const CompiledPredicate> TryCompilePredicate(
    const ExprPtr& expr, const BindingLayout& layout,
    const CompileOptions& opts) {
  Result<CompiledPredicate> compiled =
      CompiledPredicate::Compile(expr, layout, opts);
  if (!compiled.ok()) return nullptr;
  return std::make_shared<const CompiledPredicate>(
      std::move(compiled).value());
}

namespace {

/// Truthiness of a value already known to be non-null.
inline bool TruthyNonNull(const Value& v) {
  if (const int64_t* i = v.if_int()) return *i != 0;
  if (const double* f = v.if_float()) return *f != 0.0;
  return !v.as_string().empty();
}

/// Widens both operands to double via tag checks only; false when either
/// is non-numeric.
inline bool NumericPair(const Value& l, const Value& r, double* a,
                        double* b) {
  if (const int64_t* li = l.if_int()) {
    *a = static_cast<double>(*li);
  } else if (const double* lf = l.if_float()) {
    *a = *lf;
  } else {
    return false;
  }
  if (const int64_t* ri = r.if_int()) {
    *b = static_cast<double>(*ri);
  } else if (const double* rf = r.if_float()) {
    *b = *rf;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Result<const Value*> CompiledPredicate::Run(const Tuple* const* tuples,
                                            size_t num_tuples,
                                            const Value* params,
                                            size_t num_params) const {
  if (num_tuples < num_slots_) {
    return Status::Internal("compiled predicate: missing tuple bindings");
  }
  if (num_params < num_params_) {
    return Status::Internal("compiled predicate: missing parameters");
  }
  thread_local std::vector<Value> regs;
  if (regs.size() < num_regs_) regs.resize(num_regs_);

  Status err;
  // Resolves an operand to the Value it denotes, without copying. Field
  // reads are bounds-checked: a tuple narrower than its schema yields an
  // error instead of UB (the interpreter would fault the same way through
  // Tuple::at's unchecked indexing, but only on malformed input).
  auto read = [&](const VmOperand& o) -> const Value* {
    switch (o.kind) {
      case VmOperand::Kind::kReg:
        return &regs[o.a];
      case VmOperand::Kind::kField: {
        const Tuple* t = tuples[o.a];
        if (t == nullptr || o.b >= t->size()) {
          err = Status::Internal("compiled predicate: field out of range");
          return nullptr;
        }
        return &t->at(o.b);
      }
      case VmOperand::Kind::kConst:
        return &const_pool_[o.a];
      case VmOperand::Kind::kParam:
        return &params[o.a];
    }
    err = Status::Internal("bad operand");
    return nullptr;
  };

  size_t pc = 0;
  const size_t n = code_.size();
  while (pc < n) {
    const VmInstr& ins = code_[pc];
    Value& dst = regs[ins.dst];
    switch (ins.op) {
      case VmOp::kCmpII: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* a = l->if_int();
        const int64_t* b = r->if_int();
        if (a != nullptr && b != nullptr) {
          int c = *a < *b ? -1 : (*a > *b ? 1 : 0);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kCmpFF: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* a = l->if_int();
        const int64_t* b = r->if_int();
        double af, bf;
        if (a != nullptr && b != nullptr) {
          int c = *a < *b ? -1 : (*a > *b ? 1 : 0);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else if (NumericPair(*l, *r, &af, &bf)) {
          int c = af < bf ? -1 : (af > bf ? 1 : 0);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kCmpSS: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const std::string* a = l->if_string();
        const std::string* b = r->if_string();
        if (a != nullptr && b != nullptr) {
          int c = a->compare(*b);
          dst.SetInt(ApplyComparison(static_cast<BinOp>(ins.imm), c) ? 1
                                                                     : 0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kCmpAny: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        TMAN_ASSIGN_OR_RETURN(
            dst, EvalComparisonOp(static_cast<BinOp>(ins.imm), *l, *r));
        break;
      }
      case VmOp::kArithII: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* ap = l->if_int();
        const int64_t* bp = r->if_int();
        if (ap != nullptr && bp != nullptr) {
          int64_t a = *ap;
          int64_t b = *bp;
          switch (static_cast<BinOp>(ins.imm)) {
            case BinOp::kAdd:
              dst.SetInt(a + b);
              break;
            case BinOp::kSub:
              dst.SetInt(a - b);
              break;
            case BinOp::kMul:
              dst.SetInt(a * b);
              break;
            case BinOp::kDiv:
              if (b == 0) {
                return Status::EvalError("integer division by zero");
              }
              dst.SetInt(a / b);
              break;
            default:
              return Status::Internal("not arithmetic");
          }
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalArithmeticOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kArithFF: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* ai = l->if_int();
        const int64_t* bi = r->if_int();
        double a;
        double b;
        if (ai != nullptr && bi != nullptr) {
          // The int/int case stays exact (and reports "integer division
          // by zero"), matching EvalArithmeticOp.
          switch (static_cast<BinOp>(ins.imm)) {
            case BinOp::kAdd:
              dst.SetInt(*ai + *bi);
              break;
            case BinOp::kSub:
              dst.SetInt(*ai - *bi);
              break;
            case BinOp::kMul:
              dst.SetInt(*ai * *bi);
              break;
            case BinOp::kDiv:
              if (*bi == 0) {
                return Status::EvalError("integer division by zero");
              }
              dst.SetInt(*ai / *bi);
              break;
            default:
              return Status::Internal("not arithmetic");
          }
        } else if (NumericPair(*l, *r, &a, &b)) {
          switch (static_cast<BinOp>(ins.imm)) {
            case BinOp::kAdd:
              dst.SetFloat(a + b);
              break;
            case BinOp::kSub:
              dst.SetFloat(a - b);
              break;
            case BinOp::kMul:
              dst.SetFloat(a * b);
              break;
            case BinOp::kDiv:
              if (b == 0.0) {
                return Status::EvalError("division by zero");
              }
              dst.SetFloat(a / b);
              break;
            default:
              return Status::Internal("not arithmetic");
          }
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          TMAN_ASSIGN_OR_RETURN(
              dst, EvalArithmeticOp(static_cast<BinOp>(ins.imm), *l, *r));
        }
        break;
      }
      case VmOp::kArithAny: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        TMAN_ASSIGN_OR_RETURN(
            dst, EvalArithmeticOp(static_cast<BinOp>(ins.imm), *l, *r));
        break;
      }
      case VmOp::kBrFalse: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (!v->is_null() && !TruthyNonNull(*v)) {
          dst.SetInt(0);
          pc = ins.imm;
          continue;
        }
        break;
      }
      case VmOp::kBrTrue: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (!v->is_null() && TruthyNonNull(*v)) {
          dst.SetInt(1);
          pc = ins.imm;
          continue;
        }
        break;
      }
      case VmOp::kAndMerge: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        if (!r->is_null() && !TruthyNonNull(*r)) {
          dst.SetInt(0);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          dst.SetInt(1);
        }
        break;
      }
      case VmOp::kOrMerge: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        if (!r->is_null() && TruthyNonNull(*r)) {
          dst.SetInt(1);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          dst.SetInt(0);
        }
        break;
      }
      case VmOp::kNot: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (v->is_null()) {
          dst.SetNull();
        } else {
          dst.SetInt(TruthyNonNull(*v) ? 0 : 1);
        }
        break;
      }
      case VmOp::kNeg: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const int64_t* i = v->if_int()) {
          dst.SetInt(-*i);
        } else if (const double* f = v->if_float()) {
          dst.SetFloat(-*f);
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("negation of non-numeric value");
        }
        break;
      }
      case VmOp::kAbs: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const int64_t* i = v->if_int()) {
          dst.SetInt(std::llabs(*i));
        } else if (const double* f = v->if_float()) {
          dst.SetFloat(std::fabs(*f));
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("abs of non-numeric value");
        }
        break;
      }
      case VmOp::kLength: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const std::string* s = v->if_string()) {
          dst.SetInt(static_cast<int64_t>(s->size()));
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("length of non-string");
        }
        break;
      }
      case VmOp::kUpper:
      case VmOp::kLower: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (v->is_null()) {
          dst = Value::Null();
        } else if (v->is_string()) {
          dst = Value::String(ins.op == VmOp::kUpper
                                  ? ToUpper(v->as_string())
                                  : ToLower(v->as_string()));
        } else {
          return Status::TypeError(
              std::string(ins.op == VmOp::kUpper ? "upper" : "lower") +
              " of non-string");
        }
        break;
      }
      case VmOp::kRound: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        if (const int64_t* i = v->if_int()) {
          dst.SetInt(static_cast<int64_t>(
              std::llround(static_cast<double>(*i))));
        } else if (const double* f = v->if_float()) {
          dst.SetInt(static_cast<int64_t>(std::llround(*f)));
        } else if (v->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("round non-numeric");
        }
        break;
      }
      case VmOp::kMod: {
        const Value* l = read(ins.x);
        const Value* r = read(ins.y);
        if (l == nullptr || r == nullptr) return err;
        const int64_t* a = l->if_int();
        const int64_t* b = r->if_int();
        if (a != nullptr && b != nullptr) {
          if (*b == 0) return Status::EvalError("mod by zero");
          dst.SetInt(*a % *b);
        } else if (l->is_null() || r->is_null()) {
          dst.SetNull();
        } else {
          return Status::TypeError("mod expects integers");
        }
        break;
      }
      case VmOp::kMove: {
        const Value* v = read(ins.x);
        if (v == nullptr) return err;
        dst = *v;
        break;
      }
    }
    ++pc;
  }

  const Value* out = read(result_);
  if (out == nullptr) return err;
  return out;
}

Result<Value> CompiledPredicate::EvalValue(const Tuple* const* tuples,
                                           size_t num_tuples,
                                           const Value* params,
                                           size_t num_params) const {
  TMAN_ASSIGN_OR_RETURN(const Value* out,
                        Run(tuples, num_tuples, params, num_params));
  return *out;
}

Result<bool> CompiledPredicate::EvalBool(const Tuple* const* tuples,
                                         size_t num_tuples,
                                         const Value* params,
                                         size_t num_params) const {
  TMAN_ASSIGN_OR_RETURN(const Value* out,
                        Run(tuples, num_tuples, params, num_params));
  return Truthy(*out);
}

namespace {

/// A lane whose resume counter holds this value has raised an error and
/// executes nothing further; any taken branch target is smaller.
constexpr uint32_t kLaneDead = 0xFFFFFFFFu;

// The batched register file is columnar and typed: one tag byte plus one
// 8-byte payload per (register, lane) instead of a variant Value. Lane
// reads and writes are plain loads/stores — no variant emplace, no string
// construction. Strings are borrowed pointers into the tuples, the const
// pool, the params, or the per-call owned-string pool, all of which
// outlive the call. Field operands decode into cached columns once per
// batch; const/param operands broadcast into stride-1 columns, so every
// inner loop reads plain arrays.
constexpr uint8_t kTagNull = BatchResult::kTagNull;
constexpr uint8_t kTagInt = BatchResult::kTagInt;
constexpr uint8_t kTagFloat = BatchResult::kTagFloat;
constexpr uint8_t kTagStr = BatchResult::kTagStr;
/// Column-only sentinel: the lane's tuple was missing or too short. The
/// first *executing* instruction that reads it raises the scalar VM's
/// "field out of range" error; decoding alone never errors.
constexpr uint8_t kTagOob = 4;

using LaneVal = BatchResult::Payload;

[[gnu::always_inline]] inline void DecodeValue(const Value& v, uint8_t* tag,
                                               LaneVal* val) {
  if (const int64_t* p = v.if_int()) {
    *tag = kTagInt;
    val->i = *p;
  } else if (const double* p = v.if_float()) {
    *tag = kTagFloat;
    val->f = *p;
  } else if (const std::string* p = v.if_string()) {
    *tag = kTagStr;
    val->s = p;
  } else {
    *tag = kTagNull;
  }
}

/// Rebuilds a Value for the rare mixed-type fallbacks (which reuse the
/// scalar EvalComparisonOp / EvalArithmeticOp helpers).
inline Value ToValue(uint8_t tag, const LaneVal& val) {
  switch (tag) {
    case kTagInt:
      return Value::Int(val.i);
    case kTagFloat:
      return Value::Float(val.f);
    case kTagStr:
      return Value::String(*val.s);
    default:
      return Value::Null();
  }
}

/// Truthiness of a lane already known to be non-null (and in range);
/// mirrors the scalar VM's TruthyNonNull.
inline bool TruthyLane(uint8_t tag, const LaneVal& val) {
  switch (tag) {
    case kTagInt:
      return val.i != 0;
    case kTagFloat:
      return val.f != 0.0;
    case kTagStr:
      return !val.s->empty();
    default:
      return false;
  }
}

/// Reusable per-thread scratch for EvalBatch: the column-major typed
/// register file, the decoded-field column cache, and the broadcast
/// columns const/param operands expand into. Grown once per thread, never
/// shrunk — batched evaluation allocates nothing per call in steady state
/// (the owned-string pool only fills when upper()/lower() or a mixed-type
/// fallback produces a string).
struct BatchScratch {
  std::vector<uint8_t> tag;      // tag[r * lanes + lane]
  std::vector<LaneVal> val;      // val[r * lanes + lane]
  std::vector<uint32_t> resume;  // per-lane next-active pc (kLaneDead = dead)
  std::vector<uint32_t> slow;    // lanes deferred to the scalar fallbacks
  std::vector<uint32_t> fkeys;   // distinct (slot << 16 | field) operands
  std::vector<uint8_t> fdecoded;
  std::vector<uint8_t> fpure;    // per cached column: kTagInt/kTagFloat/0
  std::vector<uint8_t> regpure;  // per register: purity of its last write
  std::vector<uint8_t> fct;      // decoded field columns, fkeys-indexed
  std::vector<LaneVal> fcv;
  std::vector<uint64_t> fhash;   // per-column string-lane hashes, lazy
  std::vector<uint8_t> fhashed;
  std::vector<uint8_t> bxt, byt;  // broadcast const/param operand columns
  std::vector<LaneVal> bxv, byv;
  std::vector<uint64_t> bxh, byh;  // broadcast operand hash columns
  std::deque<std::string> owned;  // strings created during this call
};

/// Decodes one (slot, field) operand for every lane. Missing tuples and
/// short tuples become kTagOob lanes; no error is raised here. `purity`
/// summarizes the column: kTagInt / kTagFloat when every lane holds that
/// type, 0 otherwise — downstream ops use it to pick their branch-free
/// kernels without rescanning the tags.
[[gnu::noinline]] void DecodeFieldColumn(const Tuple* const* tuples,
                                         uint16_t field, size_t lanes,
                                         uint8_t* t, LaneVal* v,
                                         uint8_t* purity) {
  uint8_t andt = 0xFF, ort = 0;
  for (size_t i = 0; i < lanes; ++i) {
    const Tuple* tp = tuples[i];
    uint8_t tg = kTagOob;
    if (tp != nullptr && field < tp->size()) {
      DecodeValue(tp->at(field), &tg, &v[i]);
    }
    t[i] = tg;
    andt &= tg;
    ort |= tg;
  }
  *purity =
      (andt == ort && (andt == kTagInt || andt == kTagFloat)) ? andt : 0;
}

/// True if any lane executes the instruction at `pc`.
inline bool AnyActive(const uint32_t* resume, uint32_t pc, size_t lanes) {
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] <= pc) return true;
  }
  return false;
}

// The hot per-opcode loops live in small noinline functions: each gets
// its own register allocation (the monolithic dispatch function spilled
// loop state to the stack on every lane). When the caller's purity
// metadata proves every lane active and typed alike (tracked per column
// at decode time and per register at write time — no rescans), the loop
// runs a flat branch-free kernel the compiler auto-vectorizes; otherwise
// it falls to a per-lane loop whose branches are predictable for
// homogeneous batches. Lanes needing the scalar helpers (mixed types,
// out-of-range fields, zero divisors) are appended to `slow` for the
// caller.

template <typename ICmp>
[[gnu::noinline]] size_t CmpIILoop(bool pure, const uint8_t* lt,
                                   const LaneVal* lv, const uint8_t* rt,
                                   const LaneVal* rv, const uint32_t* resume,
                                   uint32_t pc, size_t lanes, uint8_t* dt,
                                   LaneVal* dv, uint32_t* slow, ICmp icmp) {
  if (pure) {
    for (size_t i = 0; i < lanes; ++i) {
      dv[i].i = icmp(lv[i].i, rv[i].i) ? 1 : 0;
    }
    std::memset(dt, kTagInt, lanes);
    return 0;
  }
  size_t ns = 0;
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] > pc) continue;
    const uint8_t a = lt[i], b = rt[i];
    if (a == kTagInt && b == kTagInt) {
      dt[i] = kTagInt;
      dv[i].i = icmp(lv[i].i, rv[i].i) ? 1 : 0;
    } else if (a == kTagNull || b == kTagNull) {
      // OOB outranks null: the scalar VM raises before reading types.
      if (a == kTagOob || b == kTagOob) {
        slow[ns++] = static_cast<uint32_t>(i);
      } else {
        dt[i] = kTagNull;
      }
    } else {
      slow[ns++] = static_cast<uint32_t>(i);
    }
  }
  return ns;
}

template <typename ICmp, typename FCmp>
[[gnu::noinline]] size_t CmpFFLoop(bool all_int, bool all_float,
                                   const uint8_t* lt, const LaneVal* lv,
                                   const uint8_t* rt, const LaneVal* rv,
                                   const uint32_t* resume, uint32_t pc,
                                   size_t lanes, uint8_t* dt, LaneVal* dv,
                                   uint32_t* slow, ICmp icmp, FCmp fcmp) {
  if (all_int) {
    // Int/int stays an exact 64-bit compare even on the float path,
    // matching the scalar VM (doubles lose low bits).
    for (size_t i = 0; i < lanes; ++i) {
      dv[i].i = icmp(lv[i].i, rv[i].i) ? 1 : 0;
    }
    std::memset(dt, kTagInt, lanes);
    return 0;
  }
  if (all_float) {
    for (size_t i = 0; i < lanes; ++i) {
      dv[i].i = fcmp(lv[i].f, rv[i].f) ? 1 : 0;
    }
    std::memset(dt, kTagInt, lanes);
    return 0;
  }
  size_t ns = 0;
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] > pc) continue;
    const uint8_t a = lt[i], b = rt[i];
    if (a == kTagInt && b == kTagInt) {
      dt[i] = kTagInt;
      dv[i].i = icmp(lv[i].i, rv[i].i) ? 1 : 0;
    } else if (a == kTagOob || b == kTagOob) {
      slow[ns++] = static_cast<uint32_t>(i);
    } else if (a == kTagNull || b == kTagNull) {
      dt[i] = kTagNull;
    } else if (a != kTagStr && b != kTagStr) {
      const double x = a == kTagInt ? static_cast<double>(lv[i].i) : lv[i].f;
      const double y = b == kTagInt ? static_cast<double>(rv[i].i) : rv[i].f;
      dt[i] = kTagInt;
      dv[i].i = fcmp(x, y) ? 1 : 0;
    } else {
      slow[ns++] = static_cast<uint32_t>(i);
    }
  }
  return ns;
}

template <typename IOp>
[[gnu::noinline]] size_t ArithIILoop(bool pure, const uint8_t* lt,
                                     const LaneVal* lv, const uint8_t* rt,
                                     const LaneVal* rv, const uint32_t* resume,
                                     uint32_t pc, size_t lanes, uint8_t* dt,
                                     LaneVal* dv, uint32_t* slow, IOp iop) {
  if (pure) {
    for (size_t i = 0; i < lanes; ++i) {
      dv[i].i = iop(lv[i].i, rv[i].i);
    }
    std::memset(dt, kTagInt, lanes);
    return 0;
  }
  size_t ns = 0;
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] > pc) continue;
    const uint8_t a = lt[i], b = rt[i];
    if (a == kTagInt && b == kTagInt) {
      dt[i] = kTagInt;
      dv[i].i = iop(lv[i].i, rv[i].i);
    } else if (a == kTagNull || b == kTagNull) {
      if (a == kTagOob || b == kTagOob) {
        slow[ns++] = static_cast<uint32_t>(i);
      } else {
        dt[i] = kTagNull;
      }
    } else {
      slow[ns++] = static_cast<uint32_t>(i);
    }
  }
  return ns;
}

template <typename IOp, typename FOp>
[[gnu::noinline]] size_t ArithFFLoop(bool all_int, bool all_float,
                                     const uint8_t* lt, const LaneVal* lv,
                                     const uint8_t* rt, const LaneVal* rv,
                                     const uint32_t* resume, uint32_t pc,
                                     size_t lanes, uint8_t* dt, LaneVal* dv,
                                     uint32_t* slow, IOp iop, FOp fop) {
  if (all_int) {
    for (size_t i = 0; i < lanes; ++i) {
      dv[i].i = iop(lv[i].i, rv[i].i);
    }
    std::memset(dt, kTagInt, lanes);
    return 0;
  }
  if (all_float) {
    for (size_t i = 0; i < lanes; ++i) {
      dv[i].f = fop(lv[i].f, rv[i].f);
    }
    std::memset(dt, kTagFloat, lanes);
    return 0;
  }
  size_t ns = 0;
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] > pc) continue;
    const uint8_t a = lt[i], b = rt[i];
    if (a == kTagInt && b == kTagInt) {
      dt[i] = kTagInt;
      dv[i].i = iop(lv[i].i, rv[i].i);
    } else if (a == kTagOob || b == kTagOob) {
      slow[ns++] = static_cast<uint32_t>(i);
    } else if ((a == kTagInt || a == kTagFloat) &&
               (b == kTagInt || b == kTagFloat)) {
      const double x = a == kTagInt ? static_cast<double>(lv[i].i) : lv[i].f;
      const double y = b == kTagInt ? static_cast<double>(rv[i].i) : rv[i].f;
      dt[i] = kTagFloat;
      dv[i].f = fop(x, y);
    } else if (a == kTagNull || b == kTagNull) {
      dt[i] = kTagNull;
    } else {
      slow[ns++] = static_cast<uint32_t>(i);
    }
  }
  return ns;
}

/// Division (int or numeric): zero divisors and mixed types defer to the
/// scalar EvalArithmeticOp, which raises exactly the scalar messages
/// ("integer division by zero" / "division by zero").
[[gnu::noinline]] size_t DivLoop(bool int_only, const uint8_t* lt,
                                 const LaneVal* lv, const uint8_t* rt,
                                 const LaneVal* rv, const uint32_t* resume,
                                 uint32_t pc, size_t lanes, uint8_t* dt,
                                 LaneVal* dv, uint32_t* slow) {
  size_t ns = 0;
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] > pc) continue;
    const uint8_t a = lt[i], b = rt[i];
    if (a == kTagInt && b == kTagInt) {
      if (rv[i].i == 0) {
        slow[ns++] = static_cast<uint32_t>(i);
      } else {
        dt[i] = kTagInt;
        dv[i].i = lv[i].i / rv[i].i;
      }
    } else if (a == kTagOob || b == kTagOob) {
      slow[ns++] = static_cast<uint32_t>(i);
    } else if (!int_only && (a == kTagInt || a == kTagFloat) &&
               (b == kTagInt || b == kTagFloat)) {
      const double y = b == kTagInt ? static_cast<double>(rv[i].i) : rv[i].f;
      if (y == 0.0) {
        slow[ns++] = static_cast<uint32_t>(i);
      } else {
        const double x = a == kTagInt ? static_cast<double>(lv[i].i) : lv[i].f;
        dt[i] = kTagFloat;
        dv[i].f = x / y;
      }
    } else if (a == kTagNull || b == kTagNull) {
      dt[i] = kTagNull;
    } else {
      slow[ns++] = static_cast<uint32_t>(i);
    }
  }
  return ns;
}

/// Short-circuit branch: lanes whose operand truth matches `want` latch
/// the boolean result and skip to `target`. Out-of-range lanes defer.
/// `branched` reports how many lanes left the straight line — while it
/// stays zero the caller keeps its all-lanes-active purity fast paths.
[[gnu::noinline]] size_t BranchLoop(const uint8_t* t, const LaneVal* v,
                                    uint32_t* resume, uint32_t pc,
                                    uint32_t target, bool want, size_t lanes,
                                    uint8_t* dt, LaneVal* dv, uint32_t* slow,
                                    size_t* branched) {
  size_t ns = 0;
  size_t nb = 0;
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] > pc) continue;
    const uint8_t tag = t[i];
    if (tag == kTagOob) {
      slow[ns++] = static_cast<uint32_t>(i);
      continue;
    }
    if (tag == kTagNull) continue;
    if (TruthyLane(tag, v[i]) == want) {
      dt[i] = kTagInt;
      dv[i].i = want ? 1 : 0;
      resume[i] = target;
      ++nb;
    }
  }
  *branched = nb;
  return ns;
}

/// Three-valued AND/OR merge of the latched left side with the evaluated
/// right side; mirrors the scalar kAndMerge/kOrMerge exactly.
[[gnu::noinline]] size_t MergeLoop(bool is_and, const uint8_t* lt,
                                   const LaneVal* lv, const uint8_t* rt,
                                   const LaneVal* rv, const uint32_t* resume,
                                   uint32_t pc, size_t lanes, uint8_t* dt,
                                   LaneVal* dv, uint32_t* slow) {
  (void)lv;  // left truth is already encoded in its tag (latched or null)
  size_t ns = 0;
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] > pc) continue;
    const uint8_t a = lt[i], b = rt[i];
    if (a == kTagOob || b == kTagOob) {
      slow[ns++] = static_cast<uint32_t>(i);
      continue;
    }
    if (is_and) {
      if (b != kTagNull && !TruthyLane(b, rv[i])) {
        dt[i] = kTagInt;
        dv[i].i = 0;
      } else if (a == kTagNull || b == kTagNull) {
        dt[i] = kTagNull;
      } else {
        dt[i] = kTagInt;
        dv[i].i = 1;
      }
    } else {
      if (b != kTagNull && TruthyLane(b, rv[i])) {
        dt[i] = kTagInt;
        dv[i].i = 1;
      } else if (a == kTagNull || b == kTagNull) {
        dt[i] = kTagNull;
      } else {
        dt[i] = kTagInt;
        dv[i].i = 0;
      }
    }
  }
  return ns;
}

}  // namespace

Status CompiledPredicate::EvalBatch(const TokenBatch& batch, BatchResult* out,
                                    const Value* params,
                                    size_t num_params) const {
  if (batch.num_slots() < num_slots_) {
    return Status::Internal("compiled predicate: missing tuple bindings");
  }
  if (num_params < num_params_) {
    return Status::Internal("compiled predicate: missing parameters");
  }
  const size_t lanes = batch.size();
  out->Reset(lanes);
  if (lanes == 0) return Status::OK();

  thread_local BatchScratch scratch;
  BatchScratch& s = scratch;
  const size_t cells = static_cast<size_t>(num_regs_) * lanes;
  if (s.tag.size() < cells) {
    s.tag.resize(cells);
    s.val.resize(cells);
  }
  if (s.slow.size() < lanes) {
    s.slow.resize(lanes);
    s.bxt.resize(lanes);
    s.bxv.resize(lanes);
    s.byt.resize(lanes);
    s.byv.resize(lanes);
    s.bxh.resize(lanes);
    s.byh.resize(lanes);
  }
  s.resume.assign(lanes, 0);
  s.owned.clear();
  uint8_t* tags = s.tag.data();
  LaneVal* vals = s.val.data();
  uint32_t* resume = s.resume.data();
  uint32_t* slow = s.slow.data();

  // Collect the distinct field operands; each decodes into a cached
  // column at most once per batch, however many instructions read it.
  s.fkeys.clear();
  auto note_field = [&](const VmOperand& o) {
    if (o.kind != VmOperand::Kind::kField) return;
    const uint32_t key = (static_cast<uint32_t>(o.a) << 16) | o.b;
    for (uint32_t k : s.fkeys) {
      if (k == key) return;
    }
    s.fkeys.push_back(key);
  };
  for (const VmInstr& ins : code_) {
    note_field(ins.x);
    note_field(ins.y);
  }
  note_field(result_);
  const size_t nfields = s.fkeys.size();
  if (s.fct.size() < nfields * lanes) {
    s.fct.resize(nfields * lanes);
    s.fcv.resize(nfields * lanes);
  }
  s.fdecoded.assign(nfields, 0);
  if (s.fpure.size() < nfields) s.fpure.resize(nfields);
  if (s.fhash.size() < nfields * lanes) s.fhash.resize(nfields * lanes);
  s.fhashed.assign(nfields, 0);
  s.regpure.assign(num_regs_, 0);

  // While true, every lane is still on the straight-line path (no branch
  // taken, no error): combined with per-column purity this licenses the
  // branch-free all-lane kernels with zero per-op scanning.
  bool all_active = true;

  struct ColRef {
    const uint8_t* t;
    const LaneVal* v;
    uint8_t pure;  // kTagInt / kTagFloat when every lane has that type
  };
  auto resolve = [&](const VmOperand& o, uint8_t* bt, LaneVal* bv) -> ColRef {
    switch (o.kind) {
      case VmOperand::Kind::kReg:
        return {tags + static_cast<size_t>(o.a) * lanes,
                vals + static_cast<size_t>(o.a) * lanes, s.regpure[o.a]};
      case VmOperand::Kind::kField: {
        const uint32_t key = (static_cast<uint32_t>(o.a) << 16) | o.b;
        size_t idx = 0;
        while (s.fkeys[idx] != key) ++idx;
        uint8_t* ct = s.fct.data() + idx * lanes;
        LaneVal* cv = s.fcv.data() + idx * lanes;
        if (!s.fdecoded[idx]) {
          s.fdecoded[idx] = 1;
          DecodeFieldColumn(batch.slot(o.a), o.b, lanes, ct, cv,
                            &s.fpure[idx]);
        }
        return {ct, cv, s.fpure[idx]};
      }
      case VmOperand::Kind::kConst:
      case VmOperand::Kind::kParam: {
        uint8_t t;
        LaneVal v{};
        DecodeValue(o.kind == VmOperand::Kind::kConst ? const_pool_[o.a]
                                                      : params[o.a],
                    &t, &v);
        std::memset(bt, t, lanes);
        std::fill(bv, bv + lanes, v);
        return {bt, bv,
                static_cast<uint8_t>(
                    t == kTagInt || t == kTagFloat ? t : 0)};
      }
    }
    return {nullptr, nullptr, 0};
  };

  // Hash columns for the string-equality fast path: constants carry their
  // compile-time hash (the pool is interned, so equal literals also share
  // a pointer), parameters hash once per instruction, field columns hash
  // their string lanes at most once per batch however many equality
  // compares read them. Registers can't supply hashes — returns nullptr
  // and the compare stays byte-wise.
  auto hash_col = [&](const VmOperand& o, const ColRef& c,
                      uint64_t* bh) -> const uint64_t* {
    switch (o.kind) {
      case VmOperand::Kind::kConst: {
        if (const_pool_[o.a].if_string() == nullptr) return nullptr;
        std::fill(bh, bh + lanes, const_str_hash_[o.a]);
        return bh;
      }
      case VmOperand::Kind::kParam: {
        const std::string* sp = params[o.a].if_string();
        if (sp == nullptr) return nullptr;
        std::fill(bh, bh + lanes, HashString(*sp));
        return bh;
      }
      case VmOperand::Kind::kField: {
        const uint32_t key = (static_cast<uint32_t>(o.a) << 16) | o.b;
        size_t idx = 0;
        while (s.fkeys[idx] != key) ++idx;
        uint64_t* ch = s.fhash.data() + idx * lanes;
        if (!s.fhashed[idx]) {
          s.fhashed[idx] = 1;
          for (size_t i = 0; i < lanes; ++i) {
            ch[i] = c.t[i] == kTagStr ? HashString(*c.v[i].s) : 0;
          }
        }
        return ch;
      }
      default:
        return nullptr;
    }
  };

  bool any_dead = false;
  auto lane_error = [&](size_t lane, Status status) {
    resume[lane] = kLaneDead;
    all_active = false;
    any_dead = true;
    out->SetError(static_cast<uint32_t>(lane), std::move(status));
  };
  auto lane_oob = [&](size_t lane) {
    lane_error(lane,
               Status::Internal("compiled predicate: field out of range"));
  };
  // Stores a scalar-helper result into a lane; strings move into the
  // per-call pool so the lane can borrow them.
  auto store_value = [&](Value v, uint8_t* tag, LaneVal* val) {
    if (const std::string* p = v.if_string()) {
      s.owned.push_back(*p);
      *tag = kTagStr;
      val->s = &s.owned.back();
      return;
    }
    DecodeValue(v, tag, val);
  };
  // Lanes the typed loops could not finish: out-of-range fields raise,
  // everything else reruns through the scalar helper for byte-identical
  // values and error messages.
  auto run_slow = [&](size_t ns, BinOp bop, bool cmp, const ColRef& x,
                      const ColRef& y, uint8_t* dt, LaneVal* dv) {
    for (size_t k = 0; k < ns; ++k) {
      const uint32_t i = slow[k];
      if (x.t[i] == kTagOob || y.t[i] == kTagOob) {
        lane_oob(i);
        continue;
      }
      Result<Value> g =
          cmp ? EvalComparisonOp(bop, ToValue(x.t[i], x.v[i]),
                                 ToValue(y.t[i], y.v[i]))
              : EvalArithmeticOp(bop, ToValue(x.t[i], x.v[i]),
                                 ToValue(y.t[i], y.v[i]));
      if (!g.ok()) {
        lane_error(i, g.status());
      } else {
        store_value(std::move(g).value(), &dt[i], &dv[i]);
      }
    }
  };

  const size_t n = code_.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const uint32_t pcu = static_cast<uint32_t>(pc);
    if (!AnyActive(resume, pcu, lanes)) continue;
    const VmInstr& ins = code_[pc];
    uint8_t* dt = tags + static_cast<size_t>(ins.dst) * lanes;
    LaneVal* dv = vals + static_cast<size_t>(ins.dst) * lanes;
    const BinOp bop = static_cast<BinOp>(ins.imm);
    // Purity is only claimed by the full-width kernels below; any other
    // write (partial, mixed-type, latched) makes the register unknown.
    s.regpure[ins.dst] = 0;
    switch (ins.op) {
      case VmOp::kCmpII: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        const bool pure =
            all_active && x.pure == kTagInt && y.pure == kTagInt;
        size_t ns;
        switch (bop) {
          case BinOp::kEq:
            ns = CmpIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a == b; });
            break;
          case BinOp::kNe:
            ns = CmpIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a != b; });
            break;
          case BinOp::kLt:
            ns = CmpIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a < b; });
            break;
          case BinOp::kLe:
            ns = CmpIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a <= b; });
            break;
          case BinOp::kGt:
            ns = CmpIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a > b; });
            break;
          case BinOp::kGe:
            ns = CmpIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a >= b; });
            break;
          default:
            // Unreachable: the compiler only encodes comparisons (the
            // scalar ApplyComparison returns false the same way).
            ns = CmpIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t, int64_t) { return false; });
            break;
        }
        if (ns != 0) run_slow(ns, bop, true, x, y, dt, dv);
        if (pure) s.regpure[ins.dst] = kTagInt;
        break;
      }
      case VmOp::kCmpFF: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        const bool all_int =
            all_active && x.pure == kTagInt && y.pure == kTagInt;
        const bool all_float =
            all_active && x.pure == kTagFloat && y.pure == kTagFloat;
        size_t ns;
        switch (bop) {
          case BinOp::kEq:
            ns = CmpFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a == b; },
                           [](double a, double b) { return a == b; });
            break;
          case BinOp::kNe:
            ns = CmpFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a != b; },
                           [](double a, double b) { return a != b; });
            break;
          case BinOp::kLt:
            ns = CmpFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a < b; },
                           [](double a, double b) { return a < b; });
            break;
          case BinOp::kLe:
            ns = CmpFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a <= b; },
                           [](double a, double b) { return a <= b; });
            break;
          case BinOp::kGt:
            ns = CmpFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a > b; },
                           [](double a, double b) { return a > b; });
            break;
          case BinOp::kGe:
            ns = CmpFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t a, int64_t b) { return a >= b; },
                           [](double a, double b) { return a >= b; });
            break;
          default:
            ns = CmpFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                           slow, [](int64_t, int64_t) { return false; },
                           [](double, double) { return false; });
            break;
        }
        if (ns != 0) run_slow(ns, bop, true, x, y, dt, dv);
        if (all_int || all_float) s.regpure[ins.dst] = kTagInt;
        break;
      }
      case VmOp::kCmpSS:
      case VmOp::kCmpAny: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        // Equality/inequality over string lanes first tries pointer
        // identity (interned constants), then rejects on the cached
        // 8-byte hashes; bytes are touched only to confirm a hash match.
        const bool want_hash = ins.op == VmOp::kCmpSS &&
                               (bop == BinOp::kEq || bop == BinOp::kNe);
        const uint64_t* xh =
            want_hash ? hash_col(ins.x, x, s.bxh.data()) : nullptr;
        const uint64_t* yh =
            want_hash ? hash_col(ins.y, y, s.byh.data()) : nullptr;
        const bool hashed = xh != nullptr && yh != nullptr;
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t a = x.t[i], b = y.t[i];
          if (a == kTagOob || b == kTagOob) {
            lane_oob(i);
            continue;
          }
          if (ins.op == VmOp::kCmpSS) {
            if (a == kTagStr && b == kTagStr) {
              if (hashed) {
                const bool eq = x.v[i].s == y.v[i].s ||
                                (xh[i] == yh[i] && *x.v[i].s == *y.v[i].s);
                dt[i] = kTagInt;
                dv[i].i = (eq == (bop == BinOp::kEq)) ? 1 : 0;
                continue;
              }
              int c = x.v[i].s->compare(*y.v[i].s);
              dt[i] = kTagInt;
              dv[i].i = ApplyComparison(bop, c) ? 1 : 0;
              continue;
            }
            if (a == kTagNull || b == kTagNull) {
              dt[i] = kTagNull;
              continue;
            }
          }
          Result<Value> g = EvalComparisonOp(bop, ToValue(a, x.v[i]),
                                             ToValue(b, y.v[i]));
          if (!g.ok()) {
            lane_error(i, g.status());
          } else {
            store_value(std::move(g).value(), &dt[i], &dv[i]);
          }
        }
        break;
      }
      case VmOp::kArithII: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        const bool pure =
            all_active && x.pure == kTagInt && y.pure == kTagInt;
        size_t ns;
        switch (bop) {
          case BinOp::kAdd:
            ns = ArithIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                             slow, [](int64_t a, int64_t b) { return a + b; });
            break;
          case BinOp::kSub:
            ns = ArithIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                             slow, [](int64_t a, int64_t b) { return a - b; });
            break;
          case BinOp::kMul:
            ns = ArithIILoop(pure, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                             slow, [](int64_t a, int64_t b) { return a * b; });
            break;
          case BinOp::kDiv:
            ns = DivLoop(/*int_only=*/true, x.t, x.v, y.t, y.v, resume, pcu,
                         lanes, dt, dv, slow);
            break;
          default: {
            // Unreachable: the compiler only encodes arithmetic here.
            ns = 0;
            for (size_t i = 0; i < lanes; ++i) {
              if (resume[i] > pc) continue;
              slow[ns++] = static_cast<uint32_t>(i);
            }
            break;
          }
        }
        if (ns != 0) run_slow(ns, bop, false, x, y, dt, dv);
        if (pure && (bop == BinOp::kAdd || bop == BinOp::kSub ||
                     bop == BinOp::kMul)) {
          s.regpure[ins.dst] = kTagInt;
        }
        break;
      }
      case VmOp::kArithFF: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        const bool all_int =
            all_active && x.pure == kTagInt && y.pure == kTagInt;
        const bool all_float =
            all_active && x.pure == kTagFloat && y.pure == kTagFloat;
        size_t ns;
        switch (bop) {
          case BinOp::kAdd:
            ns = ArithFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                             slow, [](int64_t a, int64_t b) { return a + b; },
                             [](double a, double b) { return a + b; });
            break;
          case BinOp::kSub:
            ns = ArithFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                             slow, [](int64_t a, int64_t b) { return a - b; },
                             [](double a, double b) { return a - b; });
            break;
          case BinOp::kMul:
            ns = ArithFFLoop(all_int, all_float, x.t, x.v, y.t, y.v, resume, pcu, lanes, dt, dv,
                             slow, [](int64_t a, int64_t b) { return a * b; },
                             [](double a, double b) { return a * b; });
            break;
          case BinOp::kDiv:
            ns = DivLoop(/*int_only=*/false, x.t, x.v, y.t, y.v, resume, pcu,
                         lanes, dt, dv, slow);
            break;
          default: {
            ns = 0;
            for (size_t i = 0; i < lanes; ++i) {
              if (resume[i] > pc) continue;
              slow[ns++] = static_cast<uint32_t>(i);
            }
            break;
          }
        }
        if (ns != 0) run_slow(ns, bop, false, x, y, dt, dv);
        if (bop == BinOp::kAdd || bop == BinOp::kSub || bop == BinOp::kMul) {
          if (all_int) {
            s.regpure[ins.dst] = kTagInt;
          } else if (all_float) {
            s.regpure[ins.dst] = kTagFloat;
          }
        }
        break;
      }
      case VmOp::kArithAny: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          if (x.t[i] == kTagOob || y.t[i] == kTagOob) {
            lane_oob(i);
            continue;
          }
          Result<Value> g = EvalArithmeticOp(bop, ToValue(x.t[i], x.v[i]),
                                             ToValue(y.t[i], y.v[i]));
          if (!g.ok()) {
            lane_error(i, g.status());
          } else {
            store_value(std::move(g).value(), &dt[i], &dv[i]);
          }
        }
        break;
      }
      case VmOp::kBrFalse:
      case VmOp::kBrTrue: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        size_t branched = 0;
        const size_t ns =
            BranchLoop(x.t, x.v, resume, pcu, ins.imm,
                       ins.op == VmOp::kBrTrue, lanes, dt, dv, slow,
                       &branched);
        if (branched != 0) all_active = false;
        for (size_t k = 0; k < ns; ++k) lane_oob(slow[k]);
        break;
      }
      case VmOp::kAndMerge:
      case VmOp::kOrMerge: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        const size_t ns =
            MergeLoop(ins.op == VmOp::kAndMerge, x.t, x.v, y.t, y.v, resume,
                      pcu, lanes, dt, dv, slow);
        for (size_t k = 0; k < ns; ++k) lane_oob(slow[k]);
        break;
      }
      case VmOp::kNot: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t t = x.t[i];
          if (t == kTagOob) {
            lane_oob(i);
          } else if (t == kTagNull) {
            dt[i] = kTagNull;
          } else {
            dt[i] = kTagInt;
            dv[i].i = TruthyLane(t, x.v[i]) ? 0 : 1;
          }
        }
        break;
      }
      case VmOp::kNeg: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t t = x.t[i];
          if (t == kTagInt) {
            dt[i] = kTagInt;
            dv[i].i = -x.v[i].i;
          } else if (t == kTagFloat) {
            dt[i] = kTagFloat;
            dv[i].f = -x.v[i].f;
          } else if (t == kTagNull) {
            dt[i] = kTagNull;
          } else if (t == kTagOob) {
            lane_oob(i);
          } else {
            lane_error(i, Status::TypeError("negation of non-numeric value"));
          }
        }
        break;
      }
      case VmOp::kAbs: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t t = x.t[i];
          if (t == kTagInt) {
            dt[i] = kTagInt;
            dv[i].i = std::llabs(x.v[i].i);
          } else if (t == kTagFloat) {
            dt[i] = kTagFloat;
            dv[i].f = std::fabs(x.v[i].f);
          } else if (t == kTagNull) {
            dt[i] = kTagNull;
          } else if (t == kTagOob) {
            lane_oob(i);
          } else {
            lane_error(i, Status::TypeError("abs of non-numeric value"));
          }
        }
        break;
      }
      case VmOp::kLength: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t t = x.t[i];
          if (t == kTagStr) {
            dt[i] = kTagInt;
            dv[i].i = static_cast<int64_t>(x.v[i].s->size());
          } else if (t == kTagNull) {
            dt[i] = kTagNull;
          } else if (t == kTagOob) {
            lane_oob(i);
          } else {
            lane_error(i, Status::TypeError("length of non-string"));
          }
        }
        break;
      }
      case VmOp::kUpper:
      case VmOp::kLower: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t t = x.t[i];
          if (t == kTagNull) {
            dt[i] = kTagNull;
          } else if (t == kTagStr) {
            s.owned.push_back(ins.op == VmOp::kUpper ? ToUpper(*x.v[i].s)
                                                     : ToLower(*x.v[i].s));
            dt[i] = kTagStr;
            dv[i].s = &s.owned.back();
          } else if (t == kTagOob) {
            lane_oob(i);
          } else {
            lane_error(
                i, Status::TypeError(
                       std::string(ins.op == VmOp::kUpper ? "upper"
                                                          : "lower") +
                       " of non-string"));
          }
        }
        break;
      }
      case VmOp::kRound: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t t = x.t[i];
          if (t == kTagInt) {
            dt[i] = kTagInt;
            dv[i].i = static_cast<int64_t>(
                std::llround(static_cast<double>(x.v[i].i)));
          } else if (t == kTagFloat) {
            dt[i] = kTagInt;
            dv[i].i = static_cast<int64_t>(std::llround(x.v[i].f));
          } else if (t == kTagNull) {
            dt[i] = kTagNull;
          } else if (t == kTagOob) {
            lane_oob(i);
          } else {
            lane_error(i, Status::TypeError("round non-numeric"));
          }
        }
        break;
      }
      case VmOp::kMod: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        const ColRef y = resolve(ins.y, s.byt.data(), s.byv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          const uint8_t a = x.t[i], b = y.t[i];
          if (a == kTagOob || b == kTagOob) {
            lane_oob(i);
            continue;
          }
          if (a == kTagInt && b == kTagInt) {
            if (y.v[i].i == 0) {
              lane_error(i, Status::EvalError("mod by zero"));
            } else {
              dt[i] = kTagInt;
              dv[i].i = x.v[i].i % y.v[i].i;
            }
          } else if (a == kTagNull || b == kTagNull) {
            dt[i] = kTagNull;
          } else {
            lane_error(i, Status::TypeError("mod expects integers"));
          }
        }
        break;
      }
      case VmOp::kMove: {
        const ColRef x = resolve(ins.x, s.bxt.data(), s.bxv.data());
        for (size_t i = 0; i < lanes; ++i) {
          if (resume[i] > pc) continue;
          if (x.t[i] == kTagOob) {
            lane_oob(i);
            continue;
          }
          dt[i] = x.t[i];
          dv[i] = x.v[i];
        }
        if (all_active) s.regpure[ins.dst] = x.pure;
        break;
      }
    }
  }

  const ColRef rv = resolve(result_, s.bxt.data(), s.bxv.data());
  if (!any_dead) {
    // No lane erred: if no string or out-of-range lane exists either, the
    // result rows copy straight across (the common all-live boolean batch).
    uint8_t mx = rv.pure;
    if (mx == 0) {
      for (size_t i = 0; i < lanes; ++i) mx = std::max(mx, rv.t[i]);
    }
    if (mx <= kTagFloat) {
      std::memcpy(out->tags_.data(), rv.t, lanes);
      std::memcpy(out->vals_.data(), rv.v, lanes * sizeof(LaneVal));
      return Status::OK();
    }
  }
  for (size_t i = 0; i < lanes; ++i) {
    if (resume[i] == kLaneDead) continue;
    uint8_t t = rv.t[i];
    if (t == kTagOob) {
      lane_oob(i);
      continue;
    }
    LaneVal v = rv.v[i];
    // String lanes borrow scratch or tuple storage; copy into the
    // result's own pool so the BatchResult outlives this call.
    if (t == kTagStr) v.s = out->Intern(*v.s);
    out->tags_[i] = t;
    out->vals_[i] = v;
  }
  return Status::OK();
}

Status CompiledPredicate::EvalBoolBatch(const TokenBatch& batch,
                                        BatchResult* out,
                                        std::vector<uint32_t>* selection,
                                        const Value* params,
                                        size_t num_params) const {
  TMAN_RETURN_IF_ERROR(EvalBatch(batch, out, params, num_params));
  const size_t lanes = out->size();
  for (size_t i = 0; i < lanes; ++i) {
    if (out->Truth(i)) selection->push_back(static_cast<uint32_t>(i));
  }
  return Status::OK();
}

std::string CompiledPredicate::Disassemble() const {
  std::ostringstream os;
  os << "slots=" << num_slots_ << " regs=" << num_regs_
     << " params=" << num_params_ << " consts=" << const_pool_.size()
     << "\n";
  for (size_t i = 0; i < const_pool_.size(); ++i) {
    os << "  c" << i << " = " << const_pool_[i].ToString() << "\n";
  }
  for (size_t i = 0; i < code_.size(); ++i) {
    const VmInstr& ins = code_[i];
    os << "  " << i << ": " << VmOpName(ins.op) << " r" << ins.dst << ", "
       << OperandToString(ins.x);
    switch (ins.op) {
      case VmOp::kCmpII:
      case VmOp::kCmpFF:
      case VmOp::kCmpSS:
      case VmOp::kCmpAny:
      case VmOp::kArithII:
      case VmOp::kArithFF:
      case VmOp::kArithAny:
        os << ", " << OperandToString(ins.y) << " ["
           << BinOpName(static_cast<BinOp>(ins.imm)) << "]";
        break;
      case VmOp::kAndMerge:
      case VmOp::kOrMerge:
      case VmOp::kMod:
        os << ", " << OperandToString(ins.y);
        break;
      case VmOp::kBrFalse:
      case VmOp::kBrTrue:
        os << " -> " << ins.imm;
        break;
      default:
        break;
    }
    os << "\n";
  }
  os << "  result = " << OperandToString(result_) << "\n";
  return os.str();
}

}  // namespace tman
