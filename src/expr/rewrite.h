#ifndef TRIGGERMAN_EXPR_REWRITE_H_
#define TRIGGERMAN_EXPR_REWRITE_H_

#include <functional>
#include <string>

#include "expr/expr.h"
#include "util/result.h"

namespace tman {

/// Rewrites every unqualified column reference to carry its tuple
/// variable. `resolver` maps an attribute name to the unique tuple
/// variable whose schema defines it (erroring on ambiguity). Qualified
/// references are validated by `validator` (may be null to skip).
Result<ExprPtr> QualifyColumnRefs(
    const ExprPtr& expr,
    const std::function<Result<std::string>(const std::string& attr)>&
        resolver,
    const std::function<Status(const std::string& var,
                               const std::string& attr)>& validator);

/// Substitutes placeholder nodes with the given constants:
/// CONSTANT_i becomes a literal holding constants[i-1]. Used to
/// re-instantiate a predicate from its signature plus a constant-table row.
Result<ExprPtr> BindPlaceholders(const ExprPtr& expr,
                                 const std::vector<Value>& constants);

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_REWRITE_H_
