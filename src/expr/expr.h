#ifndef TRIGGERMAN_EXPR_EXPR_H_
#define TRIGGERMAN_EXPR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace tman {

/// Expression node kinds. Placeholders (CONSTANT_x in the paper, Figure 2)
/// appear only inside expression signatures, where they stand for the
/// positions constants occupied in the original predicate.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kPlaceholder,
  kUnaryOp,
  kBinaryOp,
  kFunctionCall,
};

enum class BinOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

enum class UnOp { kNot, kNeg };

std::string_view BinOpName(BinOp op);
std::string_view UnOpName(UnOp op);

/// True for =, <>, <, <=, >, >=.
bool IsComparison(BinOp op);

/// Mirrored comparison: a < b  <=>  b > a. Identity for non-comparisons.
BinOp FlipComparison(BinOp op);

/// Negated comparison: NOT (a < b) == a >= b.
BinOp NegateComparison(BinOp op);

struct Expr;
/// Expressions are immutable trees shared by pointer. Transformations
/// (CNF, signature generalization) build new nodes and share untouched
/// subtrees.
using ExprPtr = std::shared_ptr<const Expr>;

/// A node in an expression syntax tree.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef: tuple_var may be empty when the attribute was written
  // unqualified; binding resolves it during validation.
  std::string tuple_var;
  std::string attribute;

  // kPlaceholder: 1-based constant number within the signature, as in the
  // paper's CONSTANT_x notation.
  int placeholder_index = 0;

  // kUnaryOp / kBinaryOp
  UnOp un_op = UnOp::kNot;
  BinOp bin_op = BinOp::kAnd;

  // kFunctionCall
  std::string func_name;

  // Operands: 1 for unary, 2 for binary, n for function calls.
  std::vector<ExprPtr> children;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string tuple_var, std::string attribute);
ExprPtr MakePlaceholder(int index);
ExprPtr MakeUnary(UnOp op, ExprPtr operand);
ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args);

/// Canonical rendering with full parenthesization; used for signature
/// descriptions, diagnostics and structural comparison in tests.
std::string ExprToString(const ExprPtr& e);

/// Structural equality (literals compared by value, names case-sensitively
/// after parser lowercasing).
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// Structural hash consistent with ExprEquals.
uint64_t ExprHash(const ExprPtr& e);

/// Collects the distinct tuple variables referenced, in first-seen order.
std::vector<std::string> ReferencedTupleVars(const ExprPtr& e);

/// True if any node is a literal (constant).
bool ContainsConstant(const ExprPtr& e);

/// AND of clauses (returns literal TRUE for an empty list).
ExprPtr AndAll(const std::vector<ExprPtr>& clauses);

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_EXPR_H_
