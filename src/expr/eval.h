#ifndef TRIGGERMAN_EXPR_EVAL_H_
#define TRIGGERMAN_EXPR_EVAL_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "util/result.h"

namespace tman {

/// Binds tuple variables to (schema, tuple) pairs for evaluation. Holds
/// raw pointers; the bound objects must outlive the Bindings.
class Bindings {
 public:
  void Bind(std::string var, const Schema* schema, const Tuple* tuple) {
    entries_.push_back({std::move(var), schema, tuple});
  }

  /// Resolves var.attr. An empty var matches any binding that has the
  /// attribute, provided exactly one does (otherwise the reference is
  /// ambiguous).
  Result<Value> Lookup(const std::string& var,
                       const std::string& attr) const;

  /// Resolves the tuple variable an unqualified attribute belongs to.
  Result<std::string> ResolveVar(const std::string& attr) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string var;
    const Schema* schema;
    const Tuple* tuple;
  };
  std::vector<Entry> entries_;
};

/// Evaluates an expression to a Value. Comparisons and boolean operators
/// yield Int 0/1; NULL operands propagate (SQL-style: any comparison with
/// NULL is NULL; AND/OR treat NULL as unknown).
Result<Value> EvalExpr(const ExprPtr& expr, const Bindings& bindings);

/// Evaluates an expression as a predicate: true iff the result is non-NULL
/// and nonzero/nonempty.
Result<bool> EvalPredicate(const ExprPtr& expr, const Bindings& bindings);

/// True iff `v` counts as SQL-true (non-NULL and nonzero).
bool Truthy(const Value& v);

/// Scalar kernels of the interpreter, shared with the bytecode VM
/// (expr/compile.h) so the generic opcodes agree with EvalExpr bit for bit
/// — including error codes and messages.
Result<Value> EvalComparisonOp(BinOp op, const Value& l, const Value& r);
Result<Value> EvalArithmeticOp(BinOp op, const Value& l, const Value& r);
Result<Value> EvalFunctionCall(const std::string& name,
                               const std::vector<Value>& args);

/// Process-wide count of tree-interpreter node visits (every EvalExpr
/// call, including recursion). The compiled hot path never touches it;
/// tests use the delta to prove a workload ran entirely on bytecode.
uint64_t InterpreterEvalCalls();

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_EVAL_H_
