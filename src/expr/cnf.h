#ifndef TRIGGERMAN_EXPR_CNF_H_
#define TRIGGERMAN_EXPR_CNF_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "util/result.h"

namespace tman {

/// Converts a boolean expression to conjunctive normal form and returns
/// the list of conjuncts; each conjunct is an OR of atomic clauses (or a
/// single clause). NOT is pushed down to atoms (comparisons are negated
/// in place: NOT (a < b) becomes a >= b). Distribution is bounded — a
/// pathological expression whose CNF would exceed `kMaxConjuncts` yields
/// an error rather than an exponential blowup.
Result<std::vector<ExprPtr>> ToCnf(const ExprPtr& expr);

inline constexpr size_t kMaxConjuncts = 256;

/// A group of conjuncts that all reference exactly the same set of tuple
/// variables (paper §4): 1 variable = selection predicate, 2 = join
/// predicate, 0 = trivial, >=3 = hyper-join.
struct ConjunctGroup {
  std::vector<std::string> vars;  // sorted, distinct
  std::vector<ExprPtr> conjuncts;
};

/// Groups CNF conjuncts by the distinct sets of tuple variables they
/// reference. Requires all column refs to be qualified (see
/// QualifyColumnRefs in rewrite.h). Groups appear in first-seen order.
std::vector<ConjunctGroup> GroupConjuncts(const std::vector<ExprPtr>& cnf);

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_CNF_H_
