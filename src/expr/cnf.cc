#include "expr/cnf.h"

#include <algorithm>

namespace tman {

namespace {

/// Pushes NOT down to atoms. `negated` tracks an odd number of enclosing
/// NOTs. Comparisons absorb the negation; AND/OR apply De Morgan;
/// non-boolean atoms keep an explicit NOT node.
ExprPtr PushNot(const ExprPtr& e, bool negated) {
  if (e == nullptr) return e;
  switch (e->kind) {
    case ExprKind::kUnaryOp:
      if (e->un_op == UnOp::kNot) {
        return PushNot(e->children[0], !negated);
      }
      return negated ? MakeUnary(UnOp::kNot, e) : e;
    case ExprKind::kBinaryOp: {
      BinOp op = e->bin_op;
      if (op == BinOp::kAnd || op == BinOp::kOr) {
        BinOp out_op = op;
        if (negated) {
          out_op = (op == BinOp::kAnd) ? BinOp::kOr : BinOp::kAnd;
        }
        return MakeBinary(out_op, PushNot(e->children[0], negated),
                          PushNot(e->children[1], negated));
      }
      if (IsComparison(op) && negated) {
        return MakeBinary(NegateComparison(op), e->children[0],
                          e->children[1]);
      }
      return negated ? MakeUnary(UnOp::kNot, e) : e;
    }
    default:
      return negated ? MakeUnary(UnOp::kNot, e) : e;
  }
}

/// Recursively converts a NOT-normalized expression into a list of
/// conjuncts (CNF). Fails if the result would exceed kMaxConjuncts.
Status CnfRec(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinaryOp && e->bin_op == BinOp::kAnd) {
    TMAN_RETURN_IF_ERROR(CnfRec(e->children[0], out));
    return CnfRec(e->children[1], out);
  }
  if (e->kind == ExprKind::kBinaryOp && e->bin_op == BinOp::kOr) {
    std::vector<ExprPtr> left, right;
    TMAN_RETURN_IF_ERROR(CnfRec(e->children[0], &left));
    TMAN_RETURN_IF_ERROR(CnfRec(e->children[1], &right));
    if (left.size() * right.size() + out->size() > kMaxConjuncts) {
      return Status::ResourceExhausted(
          "CNF expansion exceeds " + std::to_string(kMaxConjuncts) +
          " conjuncts");
    }
    // (A1 AND A2) OR (B1 AND B2) => (A1 OR B1) AND (A1 OR B2) AND ...
    for (const ExprPtr& l : left) {
      for (const ExprPtr& r : right) {
        out->push_back(MakeBinary(BinOp::kOr, l, r));
      }
    }
    return Status::OK();
  }
  out->push_back(e);
  return Status::OK();
}

}  // namespace

Result<std::vector<ExprPtr>> ToCnf(const ExprPtr& expr) {
  if (expr == nullptr) return std::vector<ExprPtr>{};
  ExprPtr normalized = PushNot(expr, false);
  std::vector<ExprPtr> out;
  TMAN_RETURN_IF_ERROR(CnfRec(normalized, &out));
  return out;
}

std::vector<ConjunctGroup> GroupConjuncts(const std::vector<ExprPtr>& cnf) {
  std::vector<ConjunctGroup> groups;
  for (const ExprPtr& conjunct : cnf) {
    std::vector<std::string> vars = ReferencedTupleVars(conjunct);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&vars](const ConjunctGroup& g) {
                             return g.vars == vars;
                           });
    if (it == groups.end()) {
      groups.push_back(ConjunctGroup{vars, {conjunct}});
    } else {
      it->conjuncts.push_back(conjunct);
    }
  }
  return groups;
}

}  // namespace tman
