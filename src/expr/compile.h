#ifndef TRIGGERMAN_EXPR_COMPILE_H_
#define TRIGGERMAN_EXPR_COMPILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "util/result.h"

namespace tman {

/// Ordered tuple-variable -> schema map a predicate is compiled against.
/// Slot order is the calling convention: at eval time the caller passes
/// one Tuple* per slot, in the same order. Resolution mirrors
/// Bindings::Lookup — qualified references match the variable name
/// case-insensitively; unqualified references must resolve to exactly one
/// slot's schema.
class BindingLayout {
 public:
  void Add(std::string var, const Schema* schema) {
    slots_.push_back({std::move(var), schema});
  }

  size_t size() const { return slots_.size(); }
  const std::string& var(size_t i) const { return slots_[i].var; }
  const Schema* schema(size_t i) const { return slots_[i].schema; }

  struct FieldRef {
    uint16_t slot = 0;
    uint16_t field = 0;
    DataType type = DataType::kInt;
  };

  /// Resolves var.attr to (slot, field index, declared type). Fails with
  /// the same classes of errors Bindings::Lookup would raise at runtime
  /// (unbound variable, unknown attribute, ambiguous unqualified name) —
  /// the compiler surfaces them as compile failures so callers fall back
  /// to the interpreter, which then reports them identically per eval.
  Result<FieldRef> Resolve(const std::string& var,
                           const std::string& attr) const;

 private:
  struct Slot {
    std::string var;
    const Schema* schema;
  };
  std::vector<Slot> slots_;
};

struct CompileOptions {
  /// When set, kPlaceholder nodes compile to parameter loads (slot =
  /// placeholder_index - 1) instead of refusing. Used for HAVING clauses,
  /// where aggregate results are passed as the parameter vector each eval
  /// instead of rebuilding the tree via BindPlaceholders.
  bool allow_params = false;
};

/// Bytecode opcodes. Comparisons and arithmetic come in schema-specialized
/// flavors chosen when static types pin the operands (int/int, any
/// numeric, string/string); each specialized op still guards the actual
/// runtime types and defers to the generic kernel on a mismatch, so a
/// tuple that disagrees with its schema produces exactly the interpreter's
/// result.
enum class VmOp : uint8_t {
  kCmpII,    // int compare           dst <- x (imm:BinOp) y
  kCmpFF,    // numeric compare (>=1 float statically)
  kCmpSS,    // string compare
  kCmpAny,   // generic compare (EvalComparisonOp)
  kArithII,  // int arithmetic
  kArithFF,  // numeric arithmetic
  kArithAny, // generic arithmetic (EvalArithmeticOp)
  kBrFalse,  // if x is non-null false: dst <- 0, jump imm
  kBrTrue,   // if x is non-null true:  dst <- 1, jump imm
  kAndMerge, // dst <- three-valued AND of x, y
  kOrMerge,  // dst <- three-valued OR of x, y
  kNot,      // dst <- NOT x (NULL -> NULL)
  kNeg,      // dst <- -x
  kAbs,      // builtins, one op each: exact interpreter semantics
  kLength,
  kUpper,
  kLower,
  kRound,
  kMod,      // dst <- x mod y
  kMove,     // dst <- x (materializes a leaf used as the final result)
};

/// Operand addressing: leaves never occupy instructions. A field operand
/// reads tuples[a]->at(b); a const operand reads the intern pool; a param
/// operand reads the caller-supplied parameter vector.
struct VmOperand {
  enum class Kind : uint8_t { kReg, kField, kConst, kParam };
  Kind kind = Kind::kReg;
  uint16_t a = 0;  // register / slot / pool index / param index
  uint16_t b = 0;  // field index (kField only)
};

struct VmInstr {
  VmOp op = VmOp::kMove;
  uint16_t dst = 0;
  VmOperand x;
  VmOperand y;
  uint32_t imm = 0;  // BinOp ordinal for cmp/arith, branch target for br*
};

/// A predicate compiled to a flat register program. Immutable after
/// Compile; a single instance may be evaluated concurrently from many
/// threads (the register file is thread-local). Produces values, errors,
/// and error messages identical to EvalExpr over equivalent Bindings.
class CompiledPredicate {
 public:
  /// Compiles `expr` against `layout`. Fails (so callers fall back to the
  /// interpreter) on: unresolvable or ambiguous column references,
  /// unknown functions or arity mismatches, placeholders without
  /// allow_params, or operand/register counts overflowing the 16-bit
  /// encoding.
  static Result<CompiledPredicate> Compile(const ExprPtr& expr,
                                           const BindingLayout& layout,
                                           const CompileOptions& opts = {});

  /// Evaluates against one tuple per layout slot. `params` supplies
  /// placeholder values when compiled with allow_params. Allocates nothing
  /// per call (amortized: the thread-local register file is grown once).
  Result<Value> EvalValue(const Tuple* const* tuples, size_t num_tuples,
                          const Value* params = nullptr,
                          size_t num_params = 0) const;

  /// EvalValue + Truthy, the hot-path entry point.
  Result<bool> EvalBool(const Tuple* const* tuples, size_t num_tuples,
                        const Value* params = nullptr,
                        size_t num_params = 0) const;

  size_t num_slots() const { return num_slots_; }
  size_t num_instrs() const { return code_.size(); }

  /// Human-readable program listing for tests and debugging.
  std::string Disassemble() const;

 private:
  friend class PredicateCompiler;

  /// Runs the program; returns a pointer to the result value, valid until
  /// the next Run on the same thread.
  Result<const Value*> Run(const Tuple* const* tuples, size_t num_tuples,
                           const Value* params, size_t num_params) const;

  std::vector<VmInstr> code_;
  std::vector<Value> const_pool_;
  VmOperand result_;        // where the root value lives after the run
  uint16_t num_regs_ = 0;
  uint16_t num_slots_ = 0;
  uint16_t num_params_ = 0;  // max placeholder index referenced
};

/// Compiles and returns a shared program, or nullptr when compilation is
/// refused — callers keep the ExprPtr and fall back to EvalPredicate.
/// A null `expr` (absent condition = TRUE) compiles to a constant program.
std::shared_ptr<const CompiledPredicate> TryCompilePredicate(
    const ExprPtr& expr, const BindingLayout& layout,
    const CompileOptions& opts = {});

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_COMPILE_H_
