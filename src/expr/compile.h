#ifndef TRIGGERMAN_EXPR_COMPILE_H_
#define TRIGGERMAN_EXPR_COMPILE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/token_batch.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "util/result.h"

namespace tman {

/// Per-lane outcome of one batched evaluation. Values and errors are lane
/// addressed: lane i holds exactly what the scalar EvalValue over lane i's
/// tuples would have produced — same value, or same status code and
/// message. Errors are stored sparsely (the hot path has none); the dense
/// failed-bit vector keeps ok() O(1).
class BatchResult {
 public:
  /// Columnar lane storage: one tag byte plus one 8-byte payload per lane
  /// instead of a variant Value, so the batched VM's result extraction and
  /// Truth scans are plain byte/word loads. String lanes point into the
  /// result's own pool and stay valid as long as the BatchResult.
  enum Tag : uint8_t { kTagNull = 0, kTagInt = 1, kTagFloat = 2, kTagStr = 3 };
  union Payload {
    int64_t i;
    double f;
    const std::string* s;
  };

  size_t size() const { return failed_.size(); }

  bool ok(size_t lane) const { return failed_[lane] == 0; }

  /// Lane value materialized as a Value; meaningful only when ok(lane).
  Value value(size_t lane) const {
    switch (tags_[lane]) {
      case kTagInt:
        return Value::Int(vals_[lane].i);
      case kTagFloat:
        return Value::Float(vals_[lane].f);
      case kTagStr:
        return Value::String(*vals_[lane].s);
      default:
        return Value::Null();
    }
  }

  /// Lane status: OK, or the scalar error this lane would have raised.
  Status status(size_t lane) const {
    if (failed_[lane] == 0) return Status::OK();
    for (const auto& [l, s] : errors_) {
      if (l == lane) return s;
    }
    return Status::Internal("batch eval: lost lane error");
  }

  /// SQL truth of the lane: ok, non-null, and truthy.
  bool Truth(size_t lane) const {
    if (failed_[lane] != 0) return false;
    switch (tags_[lane]) {
      case kTagInt:
        return vals_[lane].i != 0;
      case kTagFloat:
        return vals_[lane].f != 0.0;
      case kTagStr:
        return !vals_[lane].s->empty();
      default:
        return false;
    }
  }

  size_t num_errors() const { return errors_.size(); }
  const std::vector<std::pair<uint32_t, Status>>& errors() const {
    return errors_;
  }

 private:
  friend class CompiledPredicate;

  void Reset(size_t n) {
    tags_.assign(n, kTagNull);
    if (vals_.size() < n) vals_.resize(n);
    failed_.assign(n, 0);
    errors_.clear();
    owned_.clear();
  }

  void SetError(uint32_t lane, Status status) {
    if (failed_[lane]) return;  // first error wins, as in the scalar VM
    failed_[lane] = 1;
    errors_.emplace_back(lane, std::move(status));
  }

  /// Copies a string into the result's pool; the returned pointer lives
  /// as long as this BatchResult (deque growth never relocates elements).
  const std::string* Intern(const std::string& sv) {
    owned_.push_back(sv);
    return &owned_.back();
  }

  std::vector<uint8_t> tags_;
  std::vector<Payload> vals_;
  std::vector<uint8_t> failed_;
  std::vector<std::pair<uint32_t, Status>> errors_;
  std::deque<std::string> owned_;
};

/// Ordered tuple-variable -> schema map a predicate is compiled against.
/// Slot order is the calling convention: at eval time the caller passes
/// one Tuple* per slot, in the same order. Resolution mirrors
/// Bindings::Lookup — qualified references match the variable name
/// case-insensitively; unqualified references must resolve to exactly one
/// slot's schema.
class BindingLayout {
 public:
  void Add(std::string var, const Schema* schema) {
    slots_.push_back({std::move(var), schema});
  }

  size_t size() const { return slots_.size(); }
  const std::string& var(size_t i) const { return slots_[i].var; }
  const Schema* schema(size_t i) const { return slots_[i].schema; }

  struct FieldRef {
    uint16_t slot = 0;
    uint16_t field = 0;
    DataType type = DataType::kInt;
  };

  /// Resolves var.attr to (slot, field index, declared type). Fails with
  /// the same classes of errors Bindings::Lookup would raise at runtime
  /// (unbound variable, unknown attribute, ambiguous unqualified name) —
  /// the compiler surfaces them as compile failures so callers fall back
  /// to the interpreter, which then reports them identically per eval.
  Result<FieldRef> Resolve(const std::string& var,
                           const std::string& attr) const;

 private:
  struct Slot {
    std::string var;
    const Schema* schema;
  };
  std::vector<Slot> slots_;
};

struct CompileOptions {
  /// When set, kPlaceholder nodes compile to parameter loads (slot =
  /// placeholder_index - 1) instead of refusing. Used for HAVING clauses,
  /// where aggregate results are passed as the parameter vector each eval
  /// instead of rebuilding the tree via BindPlaceholders.
  bool allow_params = false;
};

/// Bytecode opcodes. Comparisons and arithmetic come in schema-specialized
/// flavors chosen when static types pin the operands (int/int, any
/// numeric, string/string); each specialized op still guards the actual
/// runtime types and defers to the generic kernel on a mismatch, so a
/// tuple that disagrees with its schema produces exactly the interpreter's
/// result.
enum class VmOp : uint8_t {
  kCmpII,    // int compare           dst <- x (imm:BinOp) y
  kCmpFF,    // numeric compare (>=1 float statically)
  kCmpSS,    // string compare
  kCmpAny,   // generic compare (EvalComparisonOp)
  kArithII,  // int arithmetic
  kArithFF,  // numeric arithmetic
  kArithAny, // generic arithmetic (EvalArithmeticOp)
  kBrFalse,  // if x is non-null false: dst <- 0, jump imm
  kBrTrue,   // if x is non-null true:  dst <- 1, jump imm
  kAndMerge, // dst <- three-valued AND of x, y
  kOrMerge,  // dst <- three-valued OR of x, y
  kNot,      // dst <- NOT x (NULL -> NULL)
  kNeg,      // dst <- -x
  kAbs,      // builtins, one op each: exact interpreter semantics
  kLength,
  kUpper,
  kLower,
  kRound,
  kMod,      // dst <- x mod y
  kMove,     // dst <- x (materializes a leaf used as the final result)
};

/// Operand addressing: leaves never occupy instructions. A field operand
/// reads tuples[a]->at(b); a const operand reads the intern pool; a param
/// operand reads the caller-supplied parameter vector.
struct VmOperand {
  enum class Kind : uint8_t { kReg, kField, kConst, kParam };
  Kind kind = Kind::kReg;
  uint16_t a = 0;  // register / slot / pool index / param index
  uint16_t b = 0;  // field index (kField only)
};

struct VmInstr {
  VmOp op = VmOp::kMove;
  uint16_t dst = 0;
  VmOperand x;
  VmOperand y;
  uint32_t imm = 0;  // BinOp ordinal for cmp/arith, branch target for br*
};

/// A predicate compiled to a flat register program. Immutable after
/// Compile; a single instance may be evaluated concurrently from many
/// threads (the register file is thread-local). Produces values, errors,
/// and error messages identical to EvalExpr over equivalent Bindings.
class CompiledPredicate {
 public:
  /// Compiles `expr` against `layout`. Fails (so callers fall back to the
  /// interpreter) on: unresolvable or ambiguous column references,
  /// unknown functions or arity mismatches, placeholders without
  /// allow_params, or operand/register counts overflowing the 16-bit
  /// encoding.
  static Result<CompiledPredicate> Compile(const ExprPtr& expr,
                                           const BindingLayout& layout,
                                           const CompileOptions& opts = {});

  /// Evaluates against one tuple per layout slot. `params` supplies
  /// placeholder values when compiled with allow_params. Allocates nothing
  /// per call (amortized: the thread-local register file is grown once).
  Result<Value> EvalValue(const Tuple* const* tuples, size_t num_tuples,
                          const Value* params = nullptr,
                          size_t num_params = 0) const;

  /// EvalValue + Truthy, the hot-path entry point.
  Result<bool> EvalBool(const Tuple* const* tuples, size_t num_tuples,
                        const Value* params = nullptr,
                        size_t num_params = 0) const;

  /// Batched evaluation: runs the program over every lane of `batch` with
  /// one dispatch per instruction instead of one per (instruction, token).
  /// Comparison and arithmetic opcodes gather their int/float lanes into
  /// contiguous arrays and run branchless selection-vector kernels the
  /// compiler auto-vectorizes; short-circuit branches deactivate lanes via
  /// a per-lane resume counter (sound because branch targets are forward
  /// and properly nested). Per-lane values and errors land in `out`, each
  /// lane byte-identical to what EvalValue over that lane's tuples returns
  /// — an erroring lane is isolated, the rest of the batch completes.
  /// Returns non-OK only for whole-batch misuse (missing slots or
  /// parameters), mirroring the scalar entry's Internal errors.
  Status EvalBatch(const TokenBatch& batch, BatchResult* out,
                   const Value* params = nullptr,
                   size_t num_params = 0) const;

  /// EvalBatch + Truthy: appends the ascending lane indices whose result
  /// is SQL-true to `selection`. Erroring lanes are never selected;
  /// callers that care read their statuses from `out`.
  Status EvalBoolBatch(const TokenBatch& batch, BatchResult* out,
                       std::vector<uint32_t>* selection,
                       const Value* params = nullptr,
                       size_t num_params = 0) const;

  size_t num_slots() const { return num_slots_; }
  size_t num_instrs() const { return code_.size(); }

  /// Human-readable program listing for tests and debugging.
  std::string Disassemble() const;

 private:
  friend class PredicateCompiler;

  /// Runs the program; returns a pointer to the result value, valid until
  /// the next Run on the same thread.
  Result<const Value*> Run(const Tuple* const* tuples, size_t num_tuples,
                           const Value* params, size_t num_params) const;

  std::vector<VmInstr> code_;
  std::vector<Value> const_pool_;
  /// FNV-1a of each *string* entry in const_pool_ (0 for other types).
  /// ConstOperand interns the pool — equal string literals share one
  /// entry — so these compile-time hashes let batched string equality
  /// reject mismatched lanes on an 8-byte compare (and accept
  /// pointer-equal ones) instead of walking bytes.
  std::vector<uint64_t> const_str_hash_;
  VmOperand result_;        // where the root value lives after the run
  uint16_t num_regs_ = 0;
  uint16_t num_slots_ = 0;
  uint16_t num_params_ = 0;  // max placeholder index referenced
};

/// Compiles and returns a shared program, or nullptr when compilation is
/// refused — callers keep the ExprPtr and fall back to EvalPredicate.
/// A null `expr` (absent condition = TRUE) compiles to a constant program.
std::shared_ptr<const CompiledPredicate> TryCompilePredicate(
    const ExprPtr& expr, const BindingLayout& layout,
    const CompileOptions& opts = {});

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_COMPILE_H_
