#include "expr/eval.h"

#include <atomic>
#include <cmath>

#include "util/string_util.h"

namespace tman {

Result<Value> Bindings::Lookup(const std::string& var,
                               const std::string& attr) const {
  if (!var.empty()) {
    for (const Entry& e : entries_) {
      if (EqualsIgnoreCase(e.var, var)) {
        TMAN_ASSIGN_OR_RETURN(size_t idx, e.schema->RequireField(attr));
        return e.tuple->at(idx);
      }
    }
    return Status::NotFound("unbound tuple variable: " + var);
  }
  // Unqualified: must resolve to exactly one binding.
  const Entry* found = nullptr;
  int field = -1;
  for (const Entry& e : entries_) {
    int idx = e.schema->FieldIndex(attr);
    if (idx >= 0) {
      if (found != nullptr) {
        return Status::InvalidArgument("ambiguous attribute: " + attr);
      }
      found = &e;
      field = idx;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("no such attribute: " + attr);
  }
  return found->tuple->at(static_cast<size_t>(field));
}

Result<std::string> Bindings::ResolveVar(const std::string& attr) const {
  const Entry* found = nullptr;
  for (const Entry& e : entries_) {
    if (e.schema->FieldIndex(attr) >= 0) {
      if (found != nullptr) {
        return Status::InvalidArgument("ambiguous attribute: " + attr);
      }
      found = &e;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("no such attribute: " + attr);
  }
  return found->var;
}

bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int()) return v.as_int() != 0;
  if (v.is_float()) return v.as_float() != 0.0;
  return !v.as_string().empty();
}

namespace {

std::atomic<uint64_t> g_interpreter_calls{0};

}  // namespace

uint64_t InterpreterEvalCalls() {
  return g_interpreter_calls.load(std::memory_order_relaxed);
}

Result<Value> EvalComparisonOp(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!Comparable(l.type(), r.type())) {
    return Status::TypeError("cannot compare " +
                             std::string(DataTypeName(l.type())) + " with " +
                             std::string(DataTypeName(r.type())));
  }
  int c = l.Compare(r);
  bool result = false;
  switch (op) {
    case BinOp::kEq:
      result = c == 0;
      break;
    case BinOp::kNe:
      result = c != 0;
      break;
    case BinOp::kLt:
      result = c < 0;
      break;
    case BinOp::kLe:
      result = c <= 0;
      break;
    case BinOp::kGt:
      result = c > 0;
      break;
    case BinOp::kGe:
      result = c >= 0;
      break;
    default:
      return Status::Internal("not a comparison");
  }
  return Value::Int(result ? 1 : 0);
}

Result<Value> EvalArithmeticOp(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (op == BinOp::kAdd && l.is_string() && r.is_string()) {
    return Value::String(l.as_string() + r.as_string());  // concatenation
  }
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError("arithmetic on non-numeric operands");
  }
  if (l.is_int() && r.is_int()) {
    int64_t a = l.as_int();
    int64_t b = r.as_int();
    switch (op) {
      case BinOp::kAdd:
        return Value::Int(a + b);
      case BinOp::kSub:
        return Value::Int(a - b);
      case BinOp::kMul:
        return Value::Int(a * b);
      case BinOp::kDiv:
        if (b == 0) return Status::EvalError("integer division by zero");
        return Value::Int(a / b);
      default:
        break;
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op) {
    case BinOp::kAdd:
      return Value::Float(a + b);
    case BinOp::kSub:
      return Value::Float(a - b);
    case BinOp::kMul:
      return Value::Float(a * b);
    case BinOp::kDiv:
      if (b == 0.0) return Status::EvalError("division by zero");
      return Value::Float(a / b);
    default:
      break;
  }
  return Status::Internal("not arithmetic");
}

Result<Value> EvalFunctionCall(const std::string& name,
                               const std::vector<Value>& args) {
  std::string fn = ToLower(name);
  auto arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(fn + " expects " + std::to_string(n) +
                                     " argument(s)");
    }
    return Status::OK();
  };
  if (fn == "abs") {
    TMAN_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_int()) return Value::Int(std::llabs(args[0].as_int()));
    if (args[0].is_float()) return Value::Float(std::fabs(args[0].as_float()));
    return Status::TypeError("abs of non-numeric value");
  }
  if (fn == "length") {
    TMAN_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string()) return Status::TypeError("length of non-string");
    return Value::Int(static_cast<int64_t>(args[0].as_string().size()));
  }
  if (fn == "upper" || fn == "lower") {
    TMAN_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string()) {
      return Status::TypeError(fn + " of non-string");
    }
    return Value::String(fn == "upper" ? ToUpper(args[0].as_string())
                                       : ToLower(args[0].as_string()));
  }
  if (fn == "round") {
    TMAN_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_numeric()) return Status::TypeError("round non-numeric");
    return Value::Int(static_cast<int64_t>(std::llround(args[0].AsDouble())));
  }
  if (fn == "mod") {
    TMAN_RETURN_IF_ERROR(arity(2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    if (!args[0].is_int() || !args[1].is_int()) {
      return Status::TypeError("mod expects integers");
    }
    if (args[1].as_int() == 0) return Status::EvalError("mod by zero");
    return Value::Int(args[0].as_int() % args[1].as_int());
  }
  return Status::NotSupported("unknown function: " + name);
}

Result<Value> EvalExpr(const ExprPtr& expr, const Bindings& bindings) {
  g_interpreter_calls.fetch_add(1, std::memory_order_relaxed);
  if (expr == nullptr) return Value::Int(1);  // absent condition = TRUE
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return expr->literal;
    case ExprKind::kColumnRef:
      return bindings.Lookup(expr->tuple_var, expr->attribute);
    case ExprKind::kPlaceholder:
      return Status::EvalError(
          "placeholder CONSTANT_" +
          std::to_string(expr->placeholder_index) +
          " cannot be evaluated (signatures are templates, not predicates)");
    case ExprKind::kUnaryOp: {
      TMAN_ASSIGN_OR_RETURN(Value v, EvalExpr(expr->children[0], bindings));
      if (expr->un_op == UnOp::kNeg) {
        if (v.is_null()) return Value::Null();
        if (v.is_int()) return Value::Int(-v.as_int());
        if (v.is_float()) return Value::Float(-v.as_float());
        return Status::TypeError("negation of non-numeric value");
      }
      // NOT: SQL three-valued — NOT NULL is NULL.
      if (v.is_null()) return Value::Null();
      return Value::Int(Truthy(v) ? 0 : 1);
    }
    case ExprKind::kBinaryOp: {
      BinOp op = expr->bin_op;
      if (op == BinOp::kAnd || op == BinOp::kOr) {
        TMAN_ASSIGN_OR_RETURN(Value l, EvalExpr(expr->children[0], bindings));
        // Short-circuit where the result is already decided.
        if (op == BinOp::kAnd && !l.is_null() && !Truthy(l)) {
          return Value::Int(0);
        }
        if (op == BinOp::kOr && !l.is_null() && Truthy(l)) {
          return Value::Int(1);
        }
        TMAN_ASSIGN_OR_RETURN(Value r, EvalExpr(expr->children[1], bindings));
        if (op == BinOp::kAnd) {
          if (!r.is_null() && !Truthy(r)) return Value::Int(0);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Int(1);
        }
        if (!r.is_null() && Truthy(r)) return Value::Int(1);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Int(0);
      }
      TMAN_ASSIGN_OR_RETURN(Value l, EvalExpr(expr->children[0], bindings));
      TMAN_ASSIGN_OR_RETURN(Value r, EvalExpr(expr->children[1], bindings));
      if (IsComparison(op)) return EvalComparisonOp(op, l, r);
      return EvalArithmeticOp(op, l, r);
    }
    case ExprKind::kFunctionCall: {
      std::vector<Value> args;
      args.reserve(expr->children.size());
      for (const ExprPtr& c : expr->children) {
        TMAN_ASSIGN_OR_RETURN(Value v, EvalExpr(c, bindings));
        args.push_back(std::move(v));
      }
      return EvalFunctionCall(expr->func_name, args);
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvalPredicate(const ExprPtr& expr, const Bindings& bindings) {
  TMAN_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, bindings));
  return Truthy(v);
}

}  // namespace tman
