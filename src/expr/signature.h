#ifndef TRIGGERMAN_EXPR_SIGNATURE_H_
#define TRIGGERMAN_EXPR_SIGNATURE_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/update_descriptor.h"
#include "util/result.h"

namespace tman {

/// An expression signature (paper §5): a triple of data source ID,
/// operation code, and a generalized expression in which every constant
/// has been replaced by a numbered placeholder CONSTANT_x (Figure 2). A
/// signature defines the equivalence class of all instantiations of the
/// expression with different constant values.
struct ExpressionSignature {
  DataSourceId data_source = 0;
  OpCode op = OpCode::kInsertOrUpdate;
  ExprPtr generalized;

  /// Number of constant placeholders (m in the paper).
  int num_constants = 0;

  /// For "on update(t.col, ...)" events: the columns whose change fires
  /// the event (sorted, lowercase; empty = any column). Part of the
  /// signature identity.
  std::vector<std::string> update_columns;

  bool Equals(const ExpressionSignature& other) const;
  uint64_t Hash() const;

  /// Human-readable description, stored in the expression_signature
  /// catalog's signatureDesc column.
  std::string Description() const;
};

/// The outcome of generalizing a concrete predicate: its signature plus
/// the extracted constants, numbered 1..m left to right.
struct GeneralizedPredicate {
  ExpressionSignature signature;
  std::vector<Value> constants;
};

/// Canonicalizes (comparisons put the column ref on the left: 50 < e.sal
/// becomes e.sal > 50) and generalizes a selection predicate, extracting
/// its constants. The predicate must reference at most one tuple variable.
Result<GeneralizedPredicate> GeneralizePredicate(DataSourceId ds, OpCode op,
                                                 const ExprPtr& predicate);

/// One indexable equality conjunct: attribute = CONSTANT_<placeholder>.
struct EqConjunct {
  std::string attribute;
  int placeholder = 0;
};

/// A range-indexable piece: one attribute bounded below and/or above by
/// constants, assembled from conjuncts of the form
/// attribute <op> CONSTANT_<placeholder> with op in {<, <=, >, >=}.
/// `lo < x AND x < hi` produces both bounds (a stabbing interval).
struct RangeSpec {
  std::string attribute;
  bool has_lo = false;
  bool lo_inclusive = false;
  int lo_placeholder = 0;
  bool has_hi = false;
  bool hi_inclusive = false;
  int hi_placeholder = 0;
};

/// The split E = E_I AND E_NI of a generalized expression (§5.1).
/// Priority follows the paper's "most selective conjunct" rule: all
/// equality conjuncts on constants form a composite-key indexable part;
/// failing that, the range conjuncts on one attribute are indexable
/// through an interval index; otherwise nothing is indexable and every
/// expression in the equivalence class must be tested directly.
struct IndexableSplit {
  std::vector<EqConjunct> eq;          // composite equality key (may be empty)
  bool has_range = false;
  RangeSpec range;                     // valid iff has_range (eq empty)
  ExprPtr rest;                        // E_NI; null when fully indexable
};

/// Computes the indexable split of a signature's generalized expression.
IndexableSplit SplitIndexable(const ExprPtr& generalized);

/// The canonical tuple-variable name used inside signatures ("t").
/// Rest-of-predicate tests bind the token tuple to this variable.
std::string_view SignatureVarName();

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_SIGNATURE_H_
