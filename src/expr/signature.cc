#include "expr/signature.h"

#include "expr/cnf.h"
#include "util/hash.h"

namespace tman {

bool ExpressionSignature::Equals(const ExpressionSignature& other) const {
  return data_source == other.data_source && op == other.op &&
         update_columns == other.update_columns &&
         ExprEquals(generalized, other.generalized);
}

uint64_t ExpressionSignature::Hash() const {
  uint64_t h = MixInt(data_source);
  h = HashCombine(h, static_cast<uint64_t>(op));
  for (const std::string& c : update_columns) {
    h = HashCombine(h, HashString(c));
  }
  h = HashCombine(h, ExprHash(generalized));
  return h;
}

std::string ExpressionSignature::Description() const {
  std::string out = "[ds=" + std::to_string(data_source) + " on " +
                    std::string(OpCodeName(op));
  if (!update_columns.empty()) {
    out += "(";
    for (size_t i = 0; i < update_columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += update_columns[i];
    }
    out += ")";
  }
  out += " when " + ExprToString(generalized) + "]";
  return out;
}

namespace {

/// Canonical tuple-variable name used inside signatures. Signatures are
/// per data source; the trigger-local variable spelling must not split
/// equivalence classes, so every column ref is rewritten to this name.
constexpr char kSigVar[] = "t";

/// Puts column-vs-constant comparisons in column-first order so that
/// `50000 < emp.salary` and `emp.salary > 50000` land in the same
/// equivalence class, and renames the tuple variable to the canonical
/// signature variable.
ExprPtr Canonicalize(const ExprPtr& e) {
  if (e == nullptr) return e;
  if (e->kind == ExprKind::kColumnRef) {
    if (e->tuple_var == kSigVar) return e;
    return MakeColumnRef(kSigVar, e->attribute);
  }
  if (e->children.empty()) return e;
  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  bool changed = false;
  for (const ExprPtr& c : e->children) {
    ExprPtr nc = Canonicalize(c);
    changed = changed || nc != c;
    children.push_back(std::move(nc));
  }
  if (e->kind == ExprKind::kBinaryOp && IsComparison(e->bin_op) &&
      children[0]->kind == ExprKind::kLiteral &&
      children[1]->kind != ExprKind::kLiteral) {
    return MakeBinary(FlipComparison(e->bin_op), children[1], children[0]);
  }
  if (!changed) return e;
  auto out = std::make_shared<Expr>(*e);
  out->children = std::move(children);
  return ExprPtr(out);
}

/// Replaces literals with CONSTANT_i placeholders, numbering left to
/// right, and collects the constants.
ExprPtr Generalize(const ExprPtr& e, std::vector<Value>* constants) {
  if (e == nullptr) return e;
  if (e->kind == ExprKind::kLiteral) {
    constants->push_back(e->literal);
    return MakePlaceholder(static_cast<int>(constants->size()));
  }
  if (e->children.empty()) return e;
  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  bool changed = false;
  for (const ExprPtr& c : e->children) {
    ExprPtr nc = Generalize(c, constants);
    changed = changed || nc != c;
    children.push_back(std::move(nc));
  }
  if (!changed) return e;
  auto out = std::make_shared<Expr>(*e);
  out->children = std::move(children);
  return ExprPtr(out);
}

}  // namespace

Result<GeneralizedPredicate> GeneralizePredicate(DataSourceId ds, OpCode op,
                                                 const ExprPtr& predicate) {
  std::vector<std::string> vars = ReferencedTupleVars(predicate);
  if (vars.size() > 1) {
    return Status::InvalidArgument(
        "selection predicate references more than one tuple variable: " +
        ExprToString(predicate));
  }
  GeneralizedPredicate out;
  out.signature.data_source = ds;
  out.signature.op = op;
  out.signature.generalized = Generalize(Canonicalize(predicate),
                                         &out.constants);
  out.signature.num_constants = static_cast<int>(out.constants.size());
  return out;
}

namespace {

/// Splits a conjunction into top-level AND operands.
void FlattenAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinaryOp && e->bin_op == BinOp::kAnd) {
    FlattenAnd(e->children[0], out);
    FlattenAnd(e->children[1], out);
    return;
  }
  out->push_back(e);
}

bool AsEqConjunct(const ExprPtr& e, EqConjunct* out) {
  if (e->kind != ExprKind::kBinaryOp || e->bin_op != BinOp::kEq) return false;
  const ExprPtr& l = e->children[0];
  const ExprPtr& r = e->children[1];
  if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kPlaceholder) {
    out->attribute = l->attribute;
    out->placeholder = r->placeholder_index;
    return true;
  }
  if (r->kind == ExprKind::kColumnRef && l->kind == ExprKind::kPlaceholder) {
    out->attribute = r->attribute;
    out->placeholder = l->placeholder_index;
    return true;
  }
  return false;
}

/// One normalized range conjunct: attr <op> CONSTANT_<placeholder> with
/// the column on the left.
struct RangeConjunct {
  std::string attribute;
  BinOp op = BinOp::kLt;
  int placeholder = 0;
};

bool AsRangeConjunct(const ExprPtr& e, RangeConjunct* out) {
  if (e->kind != ExprKind::kBinaryOp) return false;
  BinOp op = e->bin_op;
  if (op != BinOp::kLt && op != BinOp::kLe && op != BinOp::kGt &&
      op != BinOp::kGe) {
    return false;
  }
  const ExprPtr& l = e->children[0];
  const ExprPtr& r = e->children[1];
  if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kPlaceholder) {
    out->attribute = l->attribute;
    out->op = op;
    out->placeholder = r->placeholder_index;
    return true;
  }
  if (r->kind == ExprKind::kColumnRef && l->kind == ExprKind::kPlaceholder) {
    out->attribute = r->attribute;
    out->op = FlipComparison(op);
    out->placeholder = l->placeholder_index;
    return true;
  }
  return false;
}

}  // namespace

IndexableSplit SplitIndexable(const ExprPtr& generalized) {
  IndexableSplit split;
  std::vector<ExprPtr> conjuncts;
  FlattenAnd(generalized, &conjuncts);

  std::vector<ExprPtr> rest;
  std::vector<std::pair<RangeConjunct, ExprPtr>> ranges;
  for (const ExprPtr& c : conjuncts) {
    EqConjunct eq;
    if (AsEqConjunct(c, &eq)) {
      split.eq.push_back(std::move(eq));
      continue;
    }
    RangeConjunct rc;
    if (AsRangeConjunct(c, &rc)) {
      ranges.emplace_back(std::move(rc), c);
      continue;
    }
    rest.push_back(c);
  }

  if (!split.eq.empty()) {
    // Equality conjuncts win: all of them form the composite index key;
    // every range conjunct joins the rest-of-predicate.
    for (auto& [rc, e] : ranges) rest.push_back(e);
  } else if (!ranges.empty()) {
    // Index the range conjuncts on the first ranged attribute: one lower
    // and one upper bound form a stabbing interval; everything else joins
    // the rest-of-predicate.
    split.has_range = true;
    split.range.attribute = ranges.front().first.attribute;
    for (auto& [rc, e] : ranges) {
      bool is_lower = rc.op == BinOp::kGt || rc.op == BinOp::kGe;
      if (rc.attribute == split.range.attribute) {
        if (is_lower && !split.range.has_lo) {
          split.range.has_lo = true;
          split.range.lo_inclusive = rc.op == BinOp::kGe;
          split.range.lo_placeholder = rc.placeholder;
          continue;
        }
        if (!is_lower && !split.range.has_hi) {
          split.range.has_hi = true;
          split.range.hi_inclusive = rc.op == BinOp::kLe;
          split.range.hi_placeholder = rc.placeholder;
          continue;
        }
      }
      rest.push_back(e);
    }
  }

  if (!rest.empty()) split.rest = AndAll(rest);
  return split;
}

std::string_view SignatureVarName() { return kSigVar; }

}  // namespace tman
