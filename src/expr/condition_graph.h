#ifndef TRIGGERMAN_EXPR_CONDITION_GRAPH_H_
#define TRIGGERMAN_EXPR_CONDITION_GRAPH_H_

#include <string>
#include <vector>

#include "expr/cnf.h"
#include "expr/expr.h"
#include "types/update_descriptor.h"
#include "util/result.h"

namespace tman {

/// A tuple variable from a trigger's from-clause, with the event the
/// on-clause attached to it (implicitly insert-or-update when absent).
struct TupleVarInfo {
  std::string var;
  std::string source_name;
  DataSourceId source_id = 0;
  OpCode event = OpCode::kInsertOrUpdate;
};

/// The trigger condition graph of §5.1 step 3: an undirected graph with a
/// node per tuple variable (holding its selection predicate as CNF
/// conjuncts) and an edge per join predicate. Conjuncts referring to zero
/// or three-plus tuple variables go on the catch-all list and are tested
/// after all joins succeed.
class ConditionGraph {
 public:
  struct Node {
    TupleVarInfo info;
    std::vector<ExprPtr> selection_conjuncts;

    /// AND of the selection conjuncts; null when unconditional.
    ExprPtr SelectionPredicate() const {
      return selection_conjuncts.empty() ? nullptr
                                         : AndAll(selection_conjuncts);
    }
  };

  struct Edge {
    size_t a = 0;
    size_t b = 0;
    std::vector<ExprPtr> join_conjuncts;

    ExprPtr JoinPredicate() const { return AndAll(join_conjuncts); }
  };

  /// Builds the graph from the declared tuple variables and the CNF of
  /// the when-clause (all column refs must already be qualified).
  static Result<ConditionGraph> Build(std::vector<TupleVarInfo> vars,
                                      const std::vector<ExprPtr>& cnf);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<ExprPtr>& catch_all() const { return catch_all_; }

  /// Index of the node for `var`, or error.
  Result<size_t> NodeIndex(const std::string& var) const;

  /// The same graph with its nodes reordered: position p of the result
  /// holds node `order[p]`, edge endpoints are remapped accordingly, and
  /// the edge *list order* is preserved (so per-edge statistics indexed
  /// by edge position stay meaningful across permutations). Conjuncts
  /// reference variables by name and are shared as-is. `order` must be a
  /// permutation of 0..nodes().size()-1. This is how the adaptive
  /// re-optimizer expresses a Gator join-order change.
  Result<ConditionGraph> Permuted(const std::vector<size_t>& order) const;

  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<ExprPtr> catch_all_;
};

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_CONDITION_GRAPH_H_
