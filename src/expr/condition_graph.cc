#include "expr/condition_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace tman {

Result<ConditionGraph> ConditionGraph::Build(
    std::vector<TupleVarInfo> vars, const std::vector<ExprPtr>& cnf) {
  ConditionGraph g;
  g.nodes_.reserve(vars.size());
  for (TupleVarInfo& v : vars) {
    g.nodes_.push_back(Node{std::move(v), {}});
  }

  for (const ConjunctGroup& group : GroupConjuncts(cnf)) {
    if (group.vars.empty()) {
      // Trivial predicates (no tuple variables).
      for (const ExprPtr& c : group.conjuncts) g.catch_all_.push_back(c);
      continue;
    }
    if (group.vars.size() == 1) {
      TMAN_ASSIGN_OR_RETURN(size_t node, g.NodeIndex(group.vars[0]));
      for (const ExprPtr& c : group.conjuncts) {
        g.nodes_[node].selection_conjuncts.push_back(c);
      }
      continue;
    }
    if (group.vars.size() == 2) {
      TMAN_ASSIGN_OR_RETURN(size_t a, g.NodeIndex(group.vars[0]));
      TMAN_ASSIGN_OR_RETURN(size_t b, g.NodeIndex(group.vars[1]));
      auto it = std::find_if(g.edges_.begin(), g.edges_.end(),
                             [a, b](const Edge& e) {
                               return (e.a == a && e.b == b) ||
                                      (e.a == b && e.b == a);
                             });
      if (it == g.edges_.end()) {
        g.edges_.push_back(Edge{a, b, group.conjuncts});
      } else {
        for (const ExprPtr& c : group.conjuncts) {
          it->join_conjuncts.push_back(c);
        }
      }
      continue;
    }
    // Hyper-join predicates (3+ tuple variables): catch-all list.
    for (const ExprPtr& c : group.conjuncts) g.catch_all_.push_back(c);
  }
  return g;
}

Result<ConditionGraph> ConditionGraph::Permuted(
    const std::vector<size_t>& order) const {
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("permutation size does not match nodes");
  }
  std::vector<size_t> pos_of(nodes_.size(), nodes_.size());
  for (size_t p = 0; p < order.size(); ++p) {
    if (order[p] >= nodes_.size() || pos_of[order[p]] != nodes_.size()) {
      return Status::InvalidArgument("order is not a permutation");
    }
    pos_of[order[p]] = p;
  }
  ConditionGraph g;
  g.nodes_.reserve(nodes_.size());
  for (size_t p = 0; p < order.size(); ++p) g.nodes_.push_back(nodes_[order[p]]);
  g.edges_.reserve(edges_.size());
  for (const Edge& e : edges_) {
    g.edges_.push_back(Edge{pos_of[e.a], pos_of[e.b], e.join_conjuncts});
  }
  g.catch_all_ = catch_all_;
  return g;
}

Result<size_t> ConditionGraph::NodeIndex(const std::string& var) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (EqualsIgnoreCase(nodes_[i].info.var, var)) return i;
  }
  return Status::NotFound("unknown tuple variable in condition: " + var);
}

std::string ConditionGraph::ToString() const {
  std::string out;
  for (const Node& n : nodes_) {
    out += "node " + n.info.var + " (" + n.info.source_name + ", on " +
           std::string(OpCodeName(n.info.event)) + "): ";
    out += n.selection_conjuncts.empty()
               ? "<true>"
               : ExprToString(AndAll(n.selection_conjuncts));
    out += "\n";
  }
  for (const Edge& e : edges_) {
    out += "edge " + nodes_[e.a].info.var + " -- " + nodes_[e.b].info.var +
           ": " + ExprToString(AndAll(e.join_conjuncts)) + "\n";
  }
  for (const ExprPtr& c : catch_all_) {
    out += "catch-all: " + ExprToString(c) + "\n";
  }
  return out;
}

}  // namespace tman
