#ifndef TRIGGERMAN_EXPR_TOKEN_BATCH_H_
#define TRIGGERMAN_EXPR_TOKEN_BATCH_H_

#include <cstddef>
#include <vector>

#include "types/tuple.h"

namespace tman {

/// Default number of tokens staged per batch through the compiled hot
/// path. 64 keeps a whole batch's per-slot tuple-pointer columns (and the
/// VM's gathered int64/double operand arrays) inside L1 while amortizing
/// one bytecode dispatch, one probe-key pass, and one queue-lock
/// acquisition over the batch.
inline constexpr size_t kDefaultTokenBatchSize = 64;

/// A small columnar batch of tokens: the unit of work the batched
/// evaluation pipeline threads through the bytecode VM, the predicate
/// index, and the Gator network in place of a single `Tuple*`.
///
/// Layout is column-major over binding slots: slot(s) is a contiguous
/// `const Tuple* const*` with one entry per lane, so a kField operand
/// column in CompiledPredicate::EvalBatch is a single pointer array walk.
/// Lane i of every slot together forms one token's bindings — exactly the
/// `tuples` array the scalar EvalValue entry takes. The batch borrows the
/// tuples; callers keep them alive for the duration of the evaluation,
/// the same contract as the scalar entry points.
class TokenBatch {
 public:
  explicit TokenBatch(size_t num_slots = 1) { Reset(num_slots); }

  /// Drops all lanes and re-shapes the batch to `num_slots` columns.
  void Reset(size_t num_slots) {
    cols_.resize(num_slots == 0 ? 1 : num_slots);
    Clear();
  }

  /// Drops all lanes, keeping the slot count and column capacity.
  void Clear() {
    for (auto& col : cols_) col.clear();
  }

  size_t num_slots() const { return cols_.size(); }
  size_t size() const { return cols_[0].size(); }
  bool empty() const { return cols_[0].empty(); }

  /// Appends one token: `slot_tuples[s]` binds slot s. Returns the lane.
  size_t Append(const Tuple* const* slot_tuples) {
    for (size_t s = 0; s < cols_.size(); ++s) {
      cols_[s].push_back(slot_tuples[s]);
    }
    return size() - 1;
  }

  /// Single-slot convenience (selection predicates).
  size_t Append(const Tuple* t) {
    cols_[0].push_back(t);
    for (size_t s = 1; s < cols_.size(); ++s) cols_[s].push_back(nullptr);
    return size() - 1;
  }

  /// Two-slot convenience (join conjuncts: [prefix, candidate]).
  size_t Append(const Tuple* a, const Tuple* b) {
    cols_[0].push_back(a);
    cols_[1].push_back(b);
    for (size_t s = 2; s < cols_.size(); ++s) cols_[s].push_back(nullptr);
    return size() - 1;
  }

  /// Contiguous per-lane tuple pointers for one slot.
  const Tuple* const* slot(size_t s) const { return cols_[s].data(); }

  const Tuple* at(size_t s, size_t lane) const { return cols_[s][lane]; }

 private:
  std::vector<std::vector<const Tuple*>> cols_;
};

}  // namespace tman

#endif  // TRIGGERMAN_EXPR_TOKEN_BATCH_H_
