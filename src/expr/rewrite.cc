#include "expr/rewrite.h"

namespace tman {

Result<ExprPtr> QualifyColumnRefs(
    const ExprPtr& expr,
    const std::function<Result<std::string>(const std::string& attr)>&
        resolver,
    const std::function<Status(const std::string& var,
                               const std::string& attr)>& validator) {
  if (expr == nullptr) return ExprPtr(nullptr);
  if (expr->kind == ExprKind::kColumnRef) {
    if (expr->tuple_var.empty()) {
      TMAN_ASSIGN_OR_RETURN(std::string var, resolver(expr->attribute));
      return MakeColumnRef(var, expr->attribute);
    }
    if (validator) {
      TMAN_RETURN_IF_ERROR(validator(expr->tuple_var, expr->attribute));
    }
    return expr;
  }
  if (expr->children.empty()) return expr;
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& c : expr->children) {
    TMAN_ASSIGN_OR_RETURN(ExprPtr nc,
                          QualifyColumnRefs(c, resolver, validator));
    changed = changed || nc != c;
    children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  auto out = std::make_shared<Expr>(*expr);
  out->children = std::move(children);
  return ExprPtr(out);
}

Result<ExprPtr> BindPlaceholders(const ExprPtr& expr,
                                 const std::vector<Value>& constants) {
  if (expr == nullptr) return ExprPtr(nullptr);
  if (expr->kind == ExprKind::kPlaceholder) {
    int idx = expr->placeholder_index;
    if (idx < 1 || static_cast<size_t>(idx) > constants.size()) {
      return Status::InvalidArgument(
          "placeholder CONSTANT_" + std::to_string(idx) +
          " out of range (have " + std::to_string(constants.size()) +
          " constants)");
    }
    return MakeLiteral(constants[static_cast<size_t>(idx - 1)]);
  }
  if (expr->children.empty()) return expr;
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& c : expr->children) {
    TMAN_ASSIGN_OR_RETURN(ExprPtr nc, BindPlaceholders(c, constants));
    changed = changed || nc != c;
    children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  auto out = std::make_shared<Expr>(*expr);
  out->children = std::move(children);
  return ExprPtr(out);
}

}  // namespace tman
