#ifndef TRIGGERMAN_IPC_SOCKET_TRANSPORT_H_
#define TRIGGERMAN_IPC_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "ipc/transport.h"

namespace tman {

/// TCP implementations of the transport seam (POSIX sockets). These are
/// the production path; protocol logic is identical over loopback.

/// Binds and listens on `host:port`. Port 0 picks an ephemeral port;
/// port() reports the bound one so tests and tools never race on a fixed
/// number.
class TcpListener : public Listener {
 public:
  static Result<std::unique_ptr<TcpListener>> Bind(const std::string& host,
                                                   uint16_t port,
                                                   int backlog = 64);
  ~TcpListener() override;

  Result<std::unique_ptr<Transport>> Accept() override;
  void Close() override;

  uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
  std::atomic<bool> closed_{false};
};

/// Connects to a TriggerMan server at `host:port`.
Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port);

/// Same connection as TcpConnect, typed for pump loops (the cluster
/// router's node connectors). All TCP transports here are pollable; this
/// variant just preserves the static type.
Result<std::unique_ptr<PollableTransport>> TcpConnectPollable(
    const std::string& host, uint16_t port);

/// Parses "host:port" (e.g. "127.0.0.1:7447", "[::1]:7447"). Used by the
/// console's --connect flag and tools.
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec);

}  // namespace tman

#endif  // TRIGGERMAN_IPC_SOCKET_TRANSPORT_H_
