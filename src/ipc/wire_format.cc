#include "ipc/wire_format.h"

#include "types/tuple.h"
#include "util/codec.h"
#include "util/crc32.h"

namespace tman {

namespace {

/// Wraps a strict decode: after the fields are consumed, any leftover
/// bytes mean the frame was forged or mangled.
Status ExpectConsumed(std::string_view payload, size_t pos) {
  if (pos != payload.size()) {
    return Status::Corruption("frame payload has trailing bytes");
  }
  return Status::OK();
}

Status Truncated(const char* what) {
  return Status::Corruption(std::string("frame payload truncated: ") + what);
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloReply: return "hello-reply";
    case FrameType::kCommand: return "command";
    case FrameType::kCommandReply: return "command-reply";
    case FrameType::kUpdateBatch: return "update-batch";
    case FrameType::kUpdateAck: return "update-ack";
    case FrameType::kEventRegister: return "event-register";
    case FrameType::kEventUnregister: return "event-unregister";
    case FrameType::kEventPush: return "event-push";
    case FrameType::kCreditGrant: return "credit-grant";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kGoodbye: return "goodbye";
    case FrameType::kPartitionMap: return "partition-map";
    case FrameType::kPartitionMapAck: return "partition-map-ack";
  }
  return "?";
}

void EncodeFrame(FrameType type, std::string_view payload, std::string* out) {
  PutU32(out, kWireMagic);
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<uint8_t>(type));
  PutU16(out, 0);  // reserved
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload);
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint32_t max_payload) {
  if (bytes.size() != kFrameHeaderSize) {
    return Status::Corruption("frame header truncated");
  }
  size_t pos = 0;
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t reserved = 0;
  FrameHeader h;
  GetU32(bytes, &pos, &magic);
  GetU8(bytes, &pos, &version);
  GetU8(bytes, &pos, &type);
  GetU16(bytes, &pos, &reserved);
  GetU32(bytes, &pos, &h.payload_len);
  GetU32(bytes, &pos, &h.payload_crc);
  if (magic != kWireMagic) return Status::Corruption("bad frame magic");
  if (version != kWireVersion) {
    return Status::NotSupported("unsupported wire protocol version " +
                                std::to_string(version));
  }
  if (reserved != 0) return Status::Corruption("nonzero reserved header bits");
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kPartitionMapAck)) {
    return Status::Corruption("unknown frame type " + std::to_string(type));
  }
  if (h.payload_len > max_payload) {
    return Status::ResourceExhausted(
        "frame payload of " + std::to_string(h.payload_len) +
        " bytes exceeds the " + std::to_string(max_payload) + "-byte cap");
  }
  h.version = version;
  h.type = static_cast<FrameType>(type);
  return h;
}

Status VerifyFramePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_len) {
    return Status::Corruption("frame payload length mismatch");
  }
  if (Crc32(payload) != header.payload_crc) {
    return Status::Corruption("frame payload CRC mismatch");
  }
  return Status::OK();
}

// --- HelloFrame ------------------------------------------------------------

void HelloFrame::Encode(std::string* out) const {
  PutLengthPrefixed(out, client_name);
  PutU32(out, protocol_version);
}

Result<HelloFrame> HelloFrame::Decode(std::string_view payload) {
  HelloFrame f;
  size_t pos = 0;
  std::string_view name;
  if (!GetLengthPrefixed(payload, &pos, &name)) return Truncated("hello name");
  if (!GetU32(payload, &pos, &f.protocol_version)) {
    return Truncated("hello version");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.client_name = std::string(name);
  return f;
}

// --- HelloReplyFrame -------------------------------------------------------

void HelloReplyFrame::Encode(std::string* out) const {
  PutU8(out, status_code);
  PutLengthPrefixed(out, message);
  PutU32(out, initial_credits);
  PutU64(out, last_applied_seq);
}

Result<HelloReplyFrame> HelloReplyFrame::Decode(std::string_view payload) {
  HelloReplyFrame f;
  size_t pos = 0;
  std::string_view msg;
  if (!GetU8(payload, &pos, &f.status_code) ||
      !GetLengthPrefixed(payload, &pos, &msg) ||
      !GetU32(payload, &pos, &f.initial_credits) ||
      !GetU64(payload, &pos, &f.last_applied_seq)) {
    return Truncated("hello reply");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.message = std::string(msg);
  return f;
}

// --- CommandFrame ----------------------------------------------------------

void CommandFrame::Encode(std::string* out) const {
  PutU64(out, request_id);
  PutLengthPrefixed(out, text);
}

Result<CommandFrame> CommandFrame::Decode(std::string_view payload) {
  CommandFrame f;
  size_t pos = 0;
  std::string_view text;
  if (!GetU64(payload, &pos, &f.request_id) ||
      !GetLengthPrefixed(payload, &pos, &text)) {
    return Truncated("command");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.text = std::string(text);
  return f;
}

// --- CommandReplyFrame -----------------------------------------------------

void CommandReplyFrame::Encode(std::string* out) const {
  PutU64(out, request_id);
  PutU8(out, status_code);
  PutLengthPrefixed(out, message);
  PutLengthPrefixed(out, result);
}

Result<CommandReplyFrame> CommandReplyFrame::Decode(std::string_view payload) {
  CommandReplyFrame f;
  size_t pos = 0;
  std::string_view msg;
  std::string_view result;
  if (!GetU64(payload, &pos, &f.request_id) ||
      !GetU8(payload, &pos, &f.status_code) ||
      !GetLengthPrefixed(payload, &pos, &msg) ||
      !GetLengthPrefixed(payload, &pos, &result)) {
    return Truncated("command reply");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.message = std::string(msg);
  f.result = std::string(result);
  return f;
}

// --- UpdateBatchFrame ------------------------------------------------------

void UpdateBatchFrame::Encode(std::string* out) const {
  PutU64(out, first_seq);
  PutU32(out, static_cast<uint32_t>(updates.size()));
  std::string scratch;
  for (const UpdateDescriptor& u : updates) {
    scratch.clear();
    u.Serialize(&scratch);
    PutLengthPrefixed(out, scratch);
  }
}

Result<UpdateBatchFrame> UpdateBatchFrame::Decode(std::string_view payload) {
  UpdateBatchFrame f;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetU64(payload, &pos, &f.first_seq) ||
      !GetU32(payload, &pos, &count)) {
    return Truncated("update batch header");
  }
  // Decoded iteratively with bounds checks — the count field cannot drive
  // an allocation larger than the (already capped) payload itself.
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view blob;
    if (!GetLengthPrefixed(payload, &pos, &blob)) {
      return Truncated("update descriptor");
    }
    TMAN_ASSIGN_OR_RETURN(UpdateDescriptor u,
                          UpdateDescriptor::Deserialize(blob));
    f.updates.push_back(std::move(u));
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  return f;
}

// --- UpdateAckFrame --------------------------------------------------------

void UpdateAckFrame::Encode(std::string* out) const {
  PutU64(out, ack_seq);
  PutU8(out, status_code);
  PutLengthPrefixed(out, message);
  PutU32(out, credits);
}

Result<UpdateAckFrame> UpdateAckFrame::Decode(std::string_view payload) {
  UpdateAckFrame f;
  size_t pos = 0;
  std::string_view msg;
  if (!GetU64(payload, &pos, &f.ack_seq) ||
      !GetU8(payload, &pos, &f.status_code) ||
      !GetLengthPrefixed(payload, &pos, &msg) ||
      !GetU32(payload, &pos, &f.credits)) {
    return Truncated("update ack");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.message = std::string(msg);
  return f;
}

// --- EventRegisterFrame ----------------------------------------------------

void EventRegisterFrame::Encode(std::string* out) const {
  PutU64(out, request_id);
  PutLengthPrefixed(out, event_name);
}

Result<EventRegisterFrame> EventRegisterFrame::Decode(
    std::string_view payload) {
  EventRegisterFrame f;
  size_t pos = 0;
  std::string_view name;
  if (!GetU64(payload, &pos, &f.request_id) ||
      !GetLengthPrefixed(payload, &pos, &name)) {
    return Truncated("event register");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.event_name = std::string(name);
  return f;
}

// --- EventUnregisterFrame --------------------------------------------------

void EventUnregisterFrame::Encode(std::string* out) const {
  PutU64(out, registration_id);
}

Result<EventUnregisterFrame> EventUnregisterFrame::Decode(
    std::string_view payload) {
  EventUnregisterFrame f;
  size_t pos = 0;
  if (!GetU64(payload, &pos, &f.registration_id)) {
    return Truncated("event unregister");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  return f;
}

// --- EventPushFrame --------------------------------------------------------

void EventPushFrame::Encode(std::string* out) const {
  PutU64(out, registration_id);
  PutLengthPrefixed(out, event_name);
  // Event arguments reuse the tuple serialization (self-describing values).
  Tuple(args).Serialize(out);
}

Result<EventPushFrame> EventPushFrame::Decode(std::string_view payload) {
  EventPushFrame f;
  size_t pos = 0;
  std::string_view name;
  if (!GetU64(payload, &pos, &f.registration_id) ||
      !GetLengthPrefixed(payload, &pos, &name)) {
    return Truncated("event push");
  }
  TMAN_ASSIGN_OR_RETURN(Tuple args, Tuple::Deserialize(payload, &pos));
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.event_name = std::string(name);
  f.args = args.values();
  return f;
}

// --- CreditGrantFrame ------------------------------------------------------

void CreditGrantFrame::Encode(std::string* out) const {
  PutU32(out, credits);
}

Result<CreditGrantFrame> CreditGrantFrame::Decode(std::string_view payload) {
  CreditGrantFrame f;
  size_t pos = 0;
  if (!GetU32(payload, &pos, &f.credits)) return Truncated("credit grant");
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  return f;
}

// --- PingFrame -------------------------------------------------------------

void PingFrame::Encode(std::string* out) const { PutU64(out, nonce); }

Result<PingFrame> PingFrame::Decode(std::string_view payload) {
  PingFrame f;
  size_t pos = 0;
  if (!GetU64(payload, &pos, &f.nonce)) return Truncated("ping");
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  return f;
}

// --- GoodbyeFrame ----------------------------------------------------------

void GoodbyeFrame::Encode(std::string* out) const {
  PutLengthPrefixed(out, reason);
}

Result<GoodbyeFrame> GoodbyeFrame::Decode(std::string_view payload) {
  GoodbyeFrame f;
  size_t pos = 0;
  std::string_view reason;
  if (!GetLengthPrefixed(payload, &pos, &reason)) return Truncated("goodbye");
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.reason = std::string(reason);
  return f;
}

// --- PartitionMapFrame -----------------------------------------------------

void PartitionMapFrame::Encode(std::string* out) const {
  PutU64(out, epoch);
  PutU32(out, static_cast<uint32_t>(owners.size()));
  for (const std::string& owner : owners) PutLengthPrefixed(out, owner);
  PutU32(out, static_cast<uint32_t>(fences.size()));
  for (const auto& [session, seq] : fences) {
    PutLengthPrefixed(out, session);
    PutU64(out, seq);
  }
}

Result<PartitionMapFrame> PartitionMapFrame::Decode(std::string_view payload) {
  PartitionMapFrame f;
  size_t pos = 0;
  uint32_t owner_count = 0;
  if (!GetU64(payload, &pos, &f.epoch) ||
      !GetU32(payload, &pos, &owner_count)) {
    return Truncated("partition map header");
  }
  for (uint32_t i = 0; i < owner_count; ++i) {
    std::string_view owner;
    if (!GetLengthPrefixed(payload, &pos, &owner)) {
      return Truncated("partition owner");
    }
    f.owners.emplace_back(owner);
  }
  uint32_t fence_count = 0;
  if (!GetU32(payload, &pos, &fence_count)) {
    return Truncated("partition map fence count");
  }
  for (uint32_t i = 0; i < fence_count; ++i) {
    std::string_view session;
    uint64_t seq = 0;
    if (!GetLengthPrefixed(payload, &pos, &session) ||
        !GetU64(payload, &pos, &seq)) {
      return Truncated("partition map fence");
    }
    f.fences.emplace_back(std::string(session), seq);
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  return f;
}

// --- PartitionMapAckFrame --------------------------------------------------

void PartitionMapAckFrame::Encode(std::string* out) const {
  PutU64(out, epoch);
  PutU64(out, prior_epoch);
  PutU8(out, status_code);
  PutLengthPrefixed(out, message);
  PutU64(out, fenced_tokens);
}

Result<PartitionMapAckFrame> PartitionMapAckFrame::Decode(
    std::string_view payload) {
  PartitionMapAckFrame f;
  size_t pos = 0;
  std::string_view msg;
  if (!GetU64(payload, &pos, &f.epoch) ||
      !GetU64(payload, &pos, &f.prior_epoch) ||
      !GetU8(payload, &pos, &f.status_code) ||
      !GetLengthPrefixed(payload, &pos, &msg) ||
      !GetU64(payload, &pos, &f.fenced_tokens)) {
    return Truncated("partition map ack");
  }
  TMAN_RETURN_IF_ERROR(ExpectConsumed(payload, pos));
  f.message = std::string(msg);
  return f;
}

}  // namespace tman
