#ifndef TRIGGERMAN_IPC_SERVER_H_
#define TRIGGERMAN_IPC_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/trigger_manager.h"
#include "ipc/transport.h"
#include "ipc/wire_format.h"

namespace tman {

struct TmanServerOptions {
  /// Credit cap: the task-queue depth the ingest path is allowed to
  /// sustain. The server never has more than this many update descriptors
  /// "in the air" (granted-but-unconsumed credits plus queued tasks), so
  /// with token-level concurrency (condition_partitions == 1) the task
  /// queue's high-water mark stays at or below this bound no matter how
  /// many or how fast the remote writers are.
  uint32_t max_queue_depth = 4096;

  /// Per-frame payload cap (both directions).
  uint32_t max_payload_bytes = kDefaultMaxPayload;

  /// How often the credit thread tops up windows of connections that are
  /// waiting for the task queue to drain.
  std::chrono::milliseconds credit_period{2};

  /// Optional fault injector for the ipc.* sites (see FrameIoOptions).
  FaultInjector* fault_injector = nullptr;

  /// Cluster-member hooks (bound to a ClusterNode when this server is one
  /// member of a routed cluster; both unset for a standalone server).
  ///
  /// `cluster_admit` is consulted for every non-deduplicated update in a
  /// batch; any failure rejects the whole batch with that status and NO
  /// session-sequence advance, so the router can re-route it intact to
  /// the partition's current owner (a retryable Unavailable, not an
  /// error ack that would burn the sequence range).
  std::function<Status(const UpdateDescriptor&)> cluster_admit;

  /// Handles a partition-map install from the router; the returned ack is
  /// sent back verbatim.
  std::function<PartitionMapAckFrame(const PartitionMapFrame&)> cluster_map;

  /// A connection that had installed a partition map (the router's) tore
  /// down. Bound to ClusterNode::OnRouterChannelLost so a member enters
  /// the false-death processing hold even though the server — not the
  /// node — owns the sockets.
  std::function<void()> cluster_router_lost;

  /// A frame arrived on the router's connection. Bound to
  /// ClusterNode::NoteRouterTraffic (the callback supplies its own
  /// clock); renews the router-liveness lease.
  std::function<void()> cluster_activity;

  /// Called once per credit-thread period (~credit_period). Bound to
  /// ClusterNode::TickRouterLease so a mute partition — no frames, no
  /// observable close — still expires the lease.
  std::function<void()> cluster_tick;
};

struct TmanServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t protocol_errors = 0;   // malformed/unexpected frames, credit abuse
  uint64_t updates_applied = 0;
  uint64_t updates_deduped = 0;   // resent after reconnect, skipped
  uint64_t events_pushed = 0;
  uint64_t credits_granted = 0;
};

/// The TriggerMan network front end (Figure 1): accepts client and data
/// source connections from a Listener, speaks the framed wire protocol,
/// and dispatches onto the in-process ClientConnection/TriggerManager
/// path. One std::thread accepts; each connection gets a worker thread
/// that reads frames; replies, event pushes and credit grants share the
/// connection's write lock.
///
/// Ingestion is flow-controlled by credits: one credit = permission to
/// send one update descriptor. Grants are demand-driven so idle
/// connections cannot hoard the window: the hello reply carries a small
/// bootstrap grant, each update ack replenishes what the batch consumed,
/// and anything more must be requested (a client->server kCreditGrant
/// frame); requests are remembered and satisfied by the periodic credit
/// thread as the queue drains. Every grant is bounded by
/// cap - task_queue_depth - total_outstanding_credits, so remote writers
/// can never push the task queue past the configured bound; they block
/// (or shed, client policy) instead.
///
/// Sessions are keyed by the client name from the hello frame and survive
/// reconnects: the server remembers the highest applied update sequence
/// per session and skips lower ones, making client resends after a
/// dropped connection idempotent (exactly-once, in order, per source).
class TmanServer {
 public:
  TmanServer(TriggerManager* tman, std::unique_ptr<Listener> listener,
             TmanServerOptions options = {});
  ~TmanServer();

  TmanServer(const TmanServer&) = delete;
  TmanServer& operator=(const TmanServer&) = delete;

  Status Start();

  /// Closes the listener and every live connection, then joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop();

  /// Graceful shutdown: stops accepting, then gives in-flight work up to
  /// `drain_timeout` to finish — frames already received complete their
  /// session batches (and their acks go out), the task queue drains, and
  /// a final WAL checkpoint persists the processed markers — before the
  /// connections close. A zero timeout is the immediate Stop().
  void Stop(std::chrono::milliseconds drain_timeout);

  TmanServerStats stats() const;
  size_t active_connections() const;

 private:
  /// Per-session-name state that outlives any one connection.
  struct Session {
    std::mutex mutex;
    uint64_t last_applied_seq = 0;
  };

  /// One live connection. Shared: the worker thread, the credit thread
  /// and registered event consumers all hold references, so a consumer
  /// fired during teardown still writes into a live (closed) transport
  /// instead of freed memory.
  struct Conn {
    std::unique_ptr<Transport> transport;
    FrameIoOptions io;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
    std::atomic<bool> done{false};        // worker finished; joinable
    std::atomic<bool> hello_done{false};  // set by worker, read by creditor
    std::atomic<bool> busy{false};        // worker inside HandleFrame (drain)
    std::atomic<bool> is_router{false};   // sent us a partition map
    std::string name;
    std::unique_ptr<ClientConnection> client;
    std::shared_ptr<Session> session;
    uint64_t credits_outstanding = 0;  // guarded by server credit_mutex_
    uint64_t credit_want = 0;          // unfulfilled request; same guard
  };

  void AcceptLoop();
  void ConnLoop(std::shared_ptr<Conn> conn);
  void CreditLoop();

  /// Handles one frame. A non-ok return closes the connection.
  Status HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);

  /// Grants up to `want` credits to `conn`, bounded by the cap minus the
  /// current task-queue depth minus all outstanding credits.
  uint64_t GrantCredits(const std::shared_ptr<Conn>& conn, uint64_t want);

  /// Returns outstanding credits to the pool (connection died).
  void ReleaseCredits(const std::shared_ptr<Conn>& conn);

  template <typename Payload>
  void SendToConn(const std::shared_ptr<Conn>& conn, FrameType type,
                  const Payload& payload);

  std::shared_ptr<Session> GetSession(const std::string& name);
  void ReapFinishedLocked();

  TriggerManager* tman_;
  std::unique_ptr<Listener> listener_;
  TmanServerOptions options_;

  mutable std::mutex mutex_;  // conns_, sessions_, stats_
  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  TmanServerStats stats_;
  // Separate from stats_: event consumers run on driver threads and must
  // not touch the server object (they may outlive Stop()), so they bump a
  // shared counter instead.
  std::shared_ptr<std::atomic<uint64_t>> events_pushed_ =
      std::make_shared<std::atomic<uint64_t>>(0);

  std::mutex credit_mutex_;  // credit accounting across threads
  uint64_t total_outstanding_ = 0;

  std::thread acceptor_;
  std::thread credit_thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace tman

#endif  // TRIGGERMAN_IPC_SERVER_H_
