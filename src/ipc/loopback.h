#ifndef TRIGGERMAN_IPC_LOOPBACK_H_
#define TRIGGERMAN_IPC_LOOPBACK_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "ipc/transport.h"

namespace tman {

/// In-memory transport pair: two Transports joined by a pair of bounded
/// byte queues, mimicking a connected TCP socket (including partial reads
/// and writer blocking when the peer is slow). All protocol logic — the
/// server, the client library, backpressure, fault injection — runs over
/// loopback in tests with no sockets and no nondeterministic network.
class LoopbackTransport;

/// Creates a connected pair: first = client end, second = server end.
/// `capacity` bounds each direction's buffered bytes; writers block when
/// the peer is `capacity` bytes behind (a slow consumer, as on a real
/// socket with full kernel buffers).
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateLoopbackPair(size_t capacity = 1 << 20);

/// Same connected pair, typed as PollableTransport so single-threaded pump
/// loops (src/cluster) can drive both ends without blocking. The blocking
/// Transport methods still work on the same object, so one end may be
/// handed to a threaded TmanServer while the other is pumped.
std::pair<std::unique_ptr<PollableTransport>, std::unique_ptr<PollableTransport>>
CreatePollableLoopbackPair(size_t capacity = 1 << 20);

/// A Listener whose clients connect in-process: Connect() hands back the
/// client end and queues the server end for Accept().
class LoopbackListener : public Listener {
 public:
  explicit LoopbackListener(size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  /// Client side: creates a connection to this listener. Fails once the
  /// listener is closed.
  Result<std::unique_ptr<Transport>> Connect();

  Result<std::unique_ptr<Transport>> Accept() override;
  void Close() override;

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Transport>> pending_;
  bool closed_ = false;
};

}  // namespace tman

#endif  // TRIGGERMAN_IPC_LOOPBACK_H_
