#include "ipc/socket_transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace tman {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::string PeerString(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "tcp:?";
  }
  char host[INET6_ADDRSTRLEN] = {0};
  uint16_t port = 0;
  if (addr.ss_family == AF_INET) {
    auto* in4 = reinterpret_cast<sockaddr_in*>(&addr);
    inet_ntop(AF_INET, &in4->sin_addr, host, sizeof(host));
    port = ntohs(in4->sin_port);
  } else if (addr.ss_family == AF_INET6) {
    auto* in6 = reinterpret_cast<sockaddr_in6*>(&addr);
    inet_ntop(AF_INET6, &in6->sin6_addr, host, sizeof(host));
    port = ntohs(in6->sin6_port);
  }
  return std::string(host) + ":" + std::to_string(port);
}

/// A connected TCP stream. Close() uses shutdown() so a concurrent reader
/// or writer unblocks with an error; the descriptor itself is released in
/// the destructor only, so no thread can ever touch a reused fd.
/// Pollable: ReadReady is a zero-timeout poll(), TryWrite a non-blocking
/// send — what the cluster router's pump loop needs over real sockets.
class TcpTransport : public PollableTransport {
 public:
  explicit TcpTransport(int fd) : fd_(fd), peer_(PeerString(fd)) {
    int one = 1;
    // Batched frames are already sized sensibly; don't let Nagle delay acks.
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpTransport() override {
    Close();
    ::close(fd_);
  }

  Status Write(std::string_view data) override {
    size_t sent = 0;
    while (sent < data.size()) {
      if (closed_.load(std::memory_order_relaxed)) {
        return Status::IoError("socket closed");
      }
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(Errno("send"));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Result<size_t> ReadSome(char* buf, size_t cap) override {
    while (true) {
      if (closed_.load(std::memory_order_relaxed)) {
        return Status::IoError("socket closed");
      }
      ssize_t n = ::recv(fd_, buf, cap, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(Errno("recv"));
      }
      return static_cast<size_t>(n);
    }
  }

  bool ReadReady() const override {
    if (closed_.load(std::memory_order_relaxed)) return true;  // surfaces EOF
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, 0);
    return rc > 0 && (pfd.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
  }

  Result<size_t> TryWrite(std::string_view data) override {
    if (closed_.load(std::memory_order_relaxed)) {
      return Status::IoError("socket closed");
    }
    if (data.empty()) return static_cast<size_t>(0);
    ssize_t n = ::send(fd_, data.data(), data.size(),
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return static_cast<size_t>(0);
      }
      return Status::IoError(Errno("send"));
    }
    return static_cast<size_t>(n);
  }

  void Close() override {
    if (!closed_.exchange(true, std::memory_order_relaxed)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  std::string peer() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  std::atomic<bool> closed_{false};
};

}  // namespace

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(const std::string& host,
                                                       uint16_t port,
                                                       int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                       std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError(std::string("getaddrinfo: ") + gai_strerror(rc));
  }
  Status last = Status::IoError("no usable address");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(Errno("socket"));
      continue;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = Status::IoError(Errno("bind/listen"));
      ::close(fd);
      continue;
    }
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    uint16_t actual_port = port;
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        actual_port = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        actual_port =
            ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    freeaddrinfo(res);
    return std::unique_ptr<TcpListener>(new TcpListener(fd, actual_port));
  }
  freeaddrinfo(res);
  return last;
}

TcpListener::~TcpListener() {
  Close();
  ::close(fd_);
}

Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  while (true) {
    if (closed_.load(std::memory_order_relaxed)) {
      return Status::Aborted("listener closed");
    }
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (closed_.load(std::memory_order_relaxed)) {
        return Status::Aborted("listener closed");
      }
      return Status::IoError(Errno("accept"));
    }
    return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
  }
}

void TcpListener::Close() {
  if (!closed_.exchange(true, std::memory_order_relaxed)) {
    // Unblock a blocked accept(). shutdown() on a listening socket is
    // enough on Linux; the close itself waits for the destructor.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Result<std::unique_ptr<PollableTransport>> TcpConnectPollable(
    const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                       &res);
  if (rc != 0) {
    return Status::IoError(std::string("getaddrinfo: ") + gai_strerror(rc));
  }
  Status last = Status::IoError("no usable address");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(Errno("socket"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Status::IoError(Errno("connect"));
      ::close(fd);
      continue;
    }
    freeaddrinfo(res);
    return std::unique_ptr<PollableTransport>(
        std::make_unique<TcpTransport>(fd));
  }
  freeaddrinfo(res);
  return last;
}

Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port) {
  auto pollable = TcpConnectPollable(host, port);
  if (!pollable.ok()) return pollable.status();
  return std::unique_ptr<Transport>(std::move(*pollable));
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec) {
  std::string host;
  std::string port_str;
  if (!spec.empty() && spec[0] == '[') {  // [v6addr]:port
    size_t end = spec.find(']');
    if (end == std::string::npos || end + 1 >= spec.size() ||
        spec[end + 1] != ':') {
      return Status::InvalidArgument("expected [host]:port, got '" + spec +
                                     "'");
    }
    host = spec.substr(1, end - 1);
    port_str = spec.substr(end + 2);
  } else {
    size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("expected host:port, got '" + spec + "'");
    }
    host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  if (host.empty()) host = "127.0.0.1";
  char* end = nullptr;
  long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in '" + spec + "'");
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

}  // namespace tman
