#include "ipc/transport.h"

namespace tman {

namespace {

/// Reads exactly `n` bytes, looping over short reads. `allow_eof_at_start`
/// distinguishes a peer that closed between frames (clean) from one that
/// died mid-frame (corruption).
Status ReadFull(Transport* transport, char* buf, size_t n,
                bool allow_eof_at_start, const FrameIoOptions& options) {
  size_t got = 0;
  while (got < n) {
    if (options.faults != nullptr && options.faults->armed()) {
      TMAN_RETURN_IF_ERROR(options.faults->Check("ipc.read"));
    }
    size_t cap = n - got;
    if (options.faults != nullptr && options.faults->armed() &&
        !options.faults->Check("ipc.read.short").ok()) {
      cap = 1;  // injected fragmentation, not a failure
    }
    auto r = transport->ReadSome(buf + got, cap);
    if (!r.ok()) return r.status();
    if (*r == 0) {
      if (got == 0 && allow_eof_at_start) {
        return Status::Aborted("connection closed");
      }
      return Status::Corruption("connection closed mid-frame");
    }
    got += *r;
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(Transport* transport, FrameType type,
                  std::string_view payload, const FrameIoOptions& options) {
  if (payload.size() > options.max_payload) {
    return Status::InvalidArgument(
        "refusing to send a " + std::to_string(payload.size()) +
        "-byte payload over a " + std::to_string(options.max_payload) +
        "-byte cap");
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  EncodeFrame(type, payload, &frame);
  if (options.faults != nullptr && options.faults->armed()) {
    TMAN_RETURN_IF_ERROR(options.faults->Check("ipc.write"));
    if (!options.faults->Check("ipc.corrupt").ok() && !frame.empty()) {
      frame[frame.size() - 1] ^= 0x5A;  // receiver sees a CRC mismatch
    }
    if (!options.faults->Check("ipc.write.drop").ok()) {
      // The peer dies after half the frame reaches the wire.
      (void)transport->Write(
          std::string_view(frame).substr(0, frame.size() / 2));
      transport->Close();
      return Status::IoError("connection dropped mid-frame (injected)");
    }
  }
  return transport->Write(frame);
}

Result<Frame> ReadFrame(Transport* transport, const FrameIoOptions& options) {
  char header_bytes[kFrameHeaderSize];
  TMAN_RETURN_IF_ERROR(ReadFull(transport, header_bytes, kFrameHeaderSize,
                                /*allow_eof_at_start=*/true, options));
  TMAN_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(std::string_view(header_bytes, kFrameHeaderSize),
                        options.max_payload));
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    TMAN_RETURN_IF_ERROR(ReadFull(transport, frame.payload.data(),
                                  header.payload_len,
                                  /*allow_eof_at_start=*/false, options));
  }
  TMAN_RETURN_IF_ERROR(VerifyFramePayload(header, frame.payload));
  return frame;
}

}  // namespace tman
