#ifndef TRIGGERMAN_IPC_TRANSPORT_H_
#define TRIGGERMAN_IPC_TRANSPORT_H_

#include <memory>
#include <string>
#include <string_view>

#include "ipc/wire_format.h"
#include "util/fault_injector.h"
#include "util/result.h"
#include "util/status.h"

namespace tman {

/// A bidirectional byte stream between one client and the server: the
/// pluggable seam between protocol logic and the wire. The real
/// implementation is a TCP socket (socket_transport.h); tests use the
/// in-memory loopback (loopback.h) so every protocol path — including
/// partial reads, drops, and corruption — runs deterministically.
///
/// Thread-safety contract: one thread reads (ReadSome) while any number
/// of threads write (Write must be externally serialized by the caller's
/// write mutex); Close may be called from any thread and unblocks both
/// sides.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes all of `data` or returns an error (connection closed/failed).
  virtual Status Write(std::string_view data) = 0;

  /// Reads between 1 and `cap` bytes into `buf`, blocking until data is
  /// available. Returns 0 on clean end-of-stream, an error Status on
  /// failure.
  virtual Result<size_t> ReadSome(char* buf, size_t cap) = 0;

  /// Closes both directions; pending and future reads/writes fail fast.
  virtual void Close() = 0;

  /// Short peer description for logs ("127.0.0.1:51844", "loopback#3").
  virtual std::string peer() const = 0;
};

/// A Transport that can additionally be driven without blocking — the seam
/// the cluster subsystem's single-threaded pump loop needs. A caller checks
/// ReadReady() before ReadSome (which then returns without blocking) and
/// uses TryWrite to push as many bytes as the peer's buffer accepts,
/// retaining the rest in its own outbox. Under the deterministic scheduler
/// every actor step is a bounded amount of pump work, so seed-reproducible
/// schedules never deadlock on transport I/O.
class PollableTransport : public Transport {
 public:
  /// True when ReadSome would return immediately: buffered bytes are
  /// available, the peer closed its write side (EOF), or the connection
  /// errored.
  virtual bool ReadReady() const = 0;

  /// Non-blocking write: appends up to data.size() bytes to the peer's
  /// buffer and returns how many were accepted (0 when the buffer is
  /// full). Errors once the connection is closed.
  virtual Result<size_t> TryWrite(std::string_view data) = 0;
};

/// Downcasts an owned Transport that is actually pollable (every TCP and
/// loopback transport is); returns null — without leaking — when it is
/// not. Lets Listener::Accept results feed pump loops.
inline std::unique_ptr<PollableTransport> AsPollable(
    std::unique_ptr<Transport> transport) {
  auto* pollable = dynamic_cast<PollableTransport*>(transport.get());
  if (pollable == nullptr) return nullptr;
  transport.release();
  return std::unique_ptr<PollableTransport>(pollable);
}

/// Accepts inbound Transports for a server. Accept blocks until a client
/// connects or Close is called (after which it returns Aborted).
class Listener {
 public:
  virtual ~Listener() = default;

  virtual Result<std::unique_ptr<Transport>> Accept() = 0;
  virtual void Close() = 0;
};

/// A received frame: validated header plus payload bytes.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Options shared by frame read/write paths. `faults` (optional) is
/// consulted at the ipc.* sites:
///
///   ipc.write          the whole write fails (connection error)
///   ipc.write.drop     half the frame is written, then the transport is
///                      closed (a peer dying mid-frame)
///   ipc.corrupt        one payload byte is flipped before sending (the
///                      receiver must detect the CRC mismatch)
///   ipc.read           the read fails (connection error)
///   ipc.read.short     the next transport read is clamped to one byte
///                      (exercises reassembly of fragmented frames)
struct FrameIoOptions {
  uint32_t max_payload = kDefaultMaxPayload;
  FaultInjector* faults = nullptr;
};

/// Encodes and writes one frame. The caller serializes concurrent writers.
Status WriteFrame(Transport* transport, FrameType type,
                  std::string_view payload, const FrameIoOptions& options = {});

/// Reads one complete frame, reassembling across short reads, and verifies
/// magic, version, size cap and CRC. Returns Aborted("connection closed")
/// on clean end-of-stream at a frame boundary; Corruption when the stream
/// dies or decays mid-frame.
Result<Frame> ReadFrame(Transport* transport,
                        const FrameIoOptions& options = {});

/// Convenience: encodes `payload_struct` (any wire_format payload type)
/// and writes it as one frame of the given type.
template <typename Payload>
Status WriteFramePayload(Transport* transport, FrameType type,
                         const Payload& payload_struct,
                         const FrameIoOptions& options = {}) {
  std::string payload;
  payload_struct.Encode(&payload);
  return WriteFrame(transport, type, payload, options);
}

}  // namespace tman

#endif  // TRIGGERMAN_IPC_TRANSPORT_H_
