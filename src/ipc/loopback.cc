#include "ipc/loopback.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

namespace tman {

namespace {

/// One direction of a loopback connection: a bounded byte queue with
/// socket-like close semantics. Closing the write side lets the reader
/// drain what was already sent and then see end-of-stream; closing the
/// read side fails subsequent writes (RST-style).
struct HalfPipe {
  explicit HalfPipe(size_t capacity) : capacity(capacity) {}

  const size_t capacity;
  mutable std::mutex mutex;
  std::condition_variable cv;
  std::string buffer;  // FIFO: append at back, consume from front
  size_t read_pos = 0;
  bool write_closed = false;
  bool read_closed = false;

  Status Write(std::string_view data) {
    std::unique_lock<std::mutex> lock(mutex);
    size_t written = 0;
    while (written < data.size()) {
      cv.wait(lock, [&] {
        return read_closed || write_closed ||
               buffer.size() - read_pos < capacity;
      });
      if (read_closed || write_closed) {
        return Status::IoError("loopback connection closed");
      }
      size_t room = capacity - (buffer.size() - read_pos);
      size_t n = std::min(room, data.size() - written);
      buffer.append(data.data() + written, n);
      written += n;
      cv.notify_all();
    }
    return Status::OK();
  }

  Result<size_t> ReadSome(char* buf, size_t cap) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] {
      return read_closed || write_closed || buffer.size() > read_pos;
    });
    if (read_closed) return Status::IoError("loopback connection closed");
    size_t available = buffer.size() - read_pos;
    if (available == 0) return size_t{0};  // write side closed: EOF
    size_t n = std::min(cap, available);
    std::memcpy(buf, buffer.data() + read_pos, n);
    read_pos += n;
    // Compact once the consumed prefix dominates, to keep the buffer from
    // growing without bound across long streams.
    if (read_pos > capacity && read_pos * 2 > buffer.size()) {
      buffer.erase(0, read_pos);
      read_pos = 0;
    }
    cv.notify_all();
    return n;
  }

  bool ReadReady() const {
    std::lock_guard<std::mutex> lock(mutex);
    return read_closed || write_closed || buffer.size() > read_pos;
  }

  Result<size_t> TryWrite(std::string_view data) {
    std::lock_guard<std::mutex> lock(mutex);
    if (read_closed || write_closed) {
      return Status::IoError("loopback connection closed");
    }
    size_t room = capacity - (buffer.size() - read_pos);
    size_t n = std::min(room, data.size());
    if (n > 0) {
      buffer.append(data.data(), n);
      cv.notify_all();
    }
    return n;
  }

  void CloseWrite() {
    std::lock_guard<std::mutex> lock(mutex);
    write_closed = true;
    cv.notify_all();
  }

  void CloseRead() {
    std::lock_guard<std::mutex> lock(mutex);
    read_closed = true;
    cv.notify_all();
  }
};

std::atomic<uint64_t> g_loopback_id{1};

class LoopbackTransportImpl : public PollableTransport {
 public:
  LoopbackTransportImpl(std::shared_ptr<HalfPipe> in,
                        std::shared_ptr<HalfPipe> out, std::string peer)
      : in_(std::move(in)), out_(std::move(out)), peer_(std::move(peer)) {}

  ~LoopbackTransportImpl() override { Close(); }

  Status Write(std::string_view data) override { return out_->Write(data); }

  Result<size_t> ReadSome(char* buf, size_t cap) override {
    return in_->ReadSome(buf, cap);
  }

  bool ReadReady() const override { return in_->ReadReady(); }

  Result<size_t> TryWrite(std::string_view data) override {
    return out_->TryWrite(data);
  }

  void Close() override {
    // Outbound: peer may still drain buffered bytes, then sees EOF.
    out_->CloseWrite();
    // Inbound: our reads and the peer's writes fail fast.
    in_->CloseRead();
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<HalfPipe> in_;
  std::shared_ptr<HalfPipe> out_;
  std::string peer_;
};

}  // namespace

std::pair<std::unique_ptr<PollableTransport>, std::unique_ptr<PollableTransport>>
CreatePollableLoopbackPair(size_t capacity) {
  auto a_to_b = std::make_shared<HalfPipe>(capacity);
  auto b_to_a = std::make_shared<HalfPipe>(capacity);
  uint64_t id = g_loopback_id.fetch_add(1, std::memory_order_relaxed);
  auto a = std::make_unique<LoopbackTransportImpl>(
      b_to_a, a_to_b, "loopback#" + std::to_string(id) + ".client");
  auto b = std::make_unique<LoopbackTransportImpl>(
      a_to_b, b_to_a, "loopback#" + std::to_string(id) + ".server");
  return {std::move(a), std::move(b)};
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateLoopbackPair(size_t capacity) {
  auto [a, b] = CreatePollableLoopbackPair(capacity);
  return {std::move(a), std::move(b)};
}

Result<std::unique_ptr<Transport>> LoopbackListener::Connect() {
  auto [client_end, server_end] = CreateLoopbackPair(capacity_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Status::Aborted("listener closed");
    pending_.push_back(std::move(server_end));
  }
  cv_.notify_one();
  return std::move(client_end);
}

Result<std::unique_ptr<Transport>> LoopbackListener::Accept() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !pending_.empty(); });
  if (!pending_.empty()) {
    auto t = std::move(pending_.front());
    pending_.pop_front();
    return t;
  }
  return Status::Aborted("listener closed");
}

void LoopbackListener::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace tman
