#ifndef TRIGGERMAN_IPC_WIRE_FORMAT_H_
#define TRIGGERMAN_IPC_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "types/update_descriptor.h"
#include "types/value.h"
#include "util/result.h"
#include "util/status.h"

namespace tman {

/// The TriggerMan wire protocol (Figure 1's client / data source
/// connections, made remote). Every frame is:
///
///   offset  size  field
///   0       4     magic "TMAN"
///   4       1     protocol version (kWireVersion)
///   5       1     frame type (FrameType)
///   6       2     reserved (must be zero)
///   8       4     payload length in bytes
///   12      4     CRC-32 of the payload bytes
///   16      ...   payload
///
/// Integers are little-endian throughout (the serialization the storage
/// layer already commits to disk). Payload length is capped — a frame
/// whose header announces more than the receiver's limit is rejected
/// before any payload is read, so a corrupt or hostile length field can
/// never drive an allocation. Decoders consume exactly the payload: any
/// trailing bytes are treated as corruption.

inline constexpr uint32_t kWireMagic = 0x4E414D54u;  // "TMAN", little-endian
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;

/// Default cap on payload size (16 MiB). Both sides of a connection use
/// the same limit; WriteFrame refuses to emit what ReadFrame would drop.
inline constexpr uint32_t kDefaultMaxPayload = 16u << 20;

enum class FrameType : uint8_t {
  kHello = 1,          // client -> server: open a named session
  kHelloReply = 2,     // server -> client: session state + initial credits
  kCommand = 3,        // client -> server: one TriggerMan command
  kCommandReply = 4,   // server -> client: command outcome
  kUpdateBatch = 5,    // data source -> server: batched update descriptors
  kUpdateAck = 6,      // server -> data source: applied seq + credit grant
  kEventRegister = 7,  // client -> server: subscribe to an event
  kEventUnregister = 8,// client -> server: drop a subscription
  kEventPush = 9,      // server -> client: one raised event
  kCreditGrant = 10,   // server -> client: replenish the send window;
                       // client -> server: request that many credits
  kPing = 11,          // either direction: liveness probe
  kPong = 12,          // reply to kPing, echoing its nonce
  kGoodbye = 13,       // either direction: orderly close
  kPartitionMap = 14,  // cluster router -> node: install a partition map
  kPartitionMapAck = 15, // node -> router: map install outcome + prior epoch
};

std::string_view FrameTypeName(FrameType type);

/// Decoded frame header.
struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kPing;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// Appends a complete frame (header + payload) to `out`.
void EncodeFrame(FrameType type, std::string_view payload, std::string* out);

/// Decodes the 16-byte header in `bytes` (exactly kFrameHeaderSize bytes).
/// Rejects bad magic, unsupported version, nonzero reserved bits, unknown
/// frame types, and payloads larger than `max_payload`.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint32_t max_payload);

/// Verifies the payload CRC against the header.
Status VerifyFramePayload(const FrameHeader& header, std::string_view payload);

// --- payloads --------------------------------------------------------------
// Each payload type encodes with Encode(out) and decodes with a strict
// Decode(payload) that errors on truncated or trailing bytes.

/// First frame on every connection. `client_name` keys the server-side
/// session, so a data source that reconnects under the same name resumes
/// its update sequence (exactly-once across reconnects).
struct HelloFrame {
  std::string client_name;
  uint32_t protocol_version = kWireVersion;

  void Encode(std::string* out) const;
  static Result<HelloFrame> Decode(std::string_view payload);
};

struct HelloReplyFrame {
  uint8_t status_code = 0;       // StatusCode; 0 = accepted
  std::string message;           // error text when rejected
  uint32_t initial_credits = 0;  // update descriptors the client may send
  uint64_t last_applied_seq = 0; // resume point for this session name

  void Encode(std::string* out) const;
  static Result<HelloReplyFrame> Decode(std::string_view payload);
};

struct CommandFrame {
  uint64_t request_id = 0;
  std::string text;

  void Encode(std::string* out) const;
  static Result<CommandFrame> Decode(std::string_view payload);
};

struct CommandReplyFrame {
  uint64_t request_id = 0;
  uint8_t status_code = 0;  // StatusCode of the outcome
  std::string message;      // error text (empty on success)
  std::string result;       // human-readable result (empty on error)

  void Encode(std::string* out) const;
  static Result<CommandReplyFrame> Decode(std::string_view payload);
};

/// A batch of update descriptors. Descriptor i carries session sequence
/// number `first_seq + i`; the server applies only sequences above the
/// session's high-water mark, which makes resends after a reconnect
/// idempotent.
struct UpdateBatchFrame {
  uint64_t first_seq = 1;
  std::vector<UpdateDescriptor> updates;

  void Encode(std::string* out) const;
  static Result<UpdateBatchFrame> Decode(std::string_view payload);
};

struct UpdateAckFrame {
  uint64_t ack_seq = 0;     // highest sequence applied for this session
  uint8_t status_code = 0;  // first submission error, if any
  std::string message;
  uint32_t credits = 0;     // additional send window granted

  void Encode(std::string* out) const;
  static Result<UpdateAckFrame> Decode(std::string_view payload);
};

struct EventRegisterFrame {
  uint64_t request_id = 0;
  std::string event_name;  // "*" = all events

  void Encode(std::string* out) const;
  static Result<EventRegisterFrame> Decode(std::string_view payload);
};

struct EventUnregisterFrame {
  uint64_t registration_id = 0;

  void Encode(std::string* out) const;
  static Result<EventUnregisterFrame> Decode(std::string_view payload);
};

struct EventPushFrame {
  uint64_t registration_id = 0;
  std::string event_name;
  std::vector<Value> args;

  void Encode(std::string* out) const;
  static Result<EventPushFrame> Decode(std::string_view payload);
};

struct CreditGrantFrame {
  uint32_t credits = 0;

  void Encode(std::string* out) const;
  static Result<CreditGrantFrame> Decode(std::string_view payload);
};

struct PingFrame {
  uint64_t nonce = 0;

  void Encode(std::string* out) const;
  static Result<PingFrame> Decode(std::string_view payload);
};

using PongFrame = PingFrame;  // identical payload, echoed nonce

struct GoodbyeFrame {
  std::string reason;

  void Encode(std::string* out) const;
  static Result<GoodbyeFrame> Decode(std::string_view payload);
};

/// Cluster membership / routing control (src/cluster): the router installs
/// a versioned partition map on a member node. `owners[p]` names the node
/// owning partition p; a node accepts update batches only for partitions it
/// owns at the installed epoch and rejects others with a retryable
/// Unavailable ("partition moved") ack. `fences` carries, per ingest
/// session, the highest sequence the router saw acked before this map took
/// effect: a node rejoining after a failover must discard recovered-but-
/// unacked tokens above its fence, because the router already re-routed
/// them to the partitions' new owners (see DESIGN.md §12).
struct PartitionMapFrame {
  uint64_t epoch = 0;
  std::vector<std::string> owners;  // partition id -> owning node name
  std::vector<std::pair<std::string, uint64_t>> fences;  // session -> seq

  void Encode(std::string* out) const;
  static Result<PartitionMapFrame> Decode(std::string_view payload);
};

struct PartitionMapAckFrame {
  uint64_t epoch = 0;        // epoch now installed on the node
  uint64_t prior_epoch = 0;  // durable epoch the node held before this map
  uint8_t status_code = 0;   // StatusCode; 0 = installed
  std::string message;
  uint64_t fenced_tokens = 0;  // recovered tokens discarded by the fences

  void Encode(std::string* out) const;
  static Result<PartitionMapAckFrame> Decode(std::string_view payload);
};

}  // namespace tman

#endif  // TRIGGERMAN_IPC_WIRE_FORMAT_H_
