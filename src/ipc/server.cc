#include "ipc/server.h"

#include <algorithm>

#include "util/logging.h"

namespace tman {

namespace {

/// Bootstrap window granted at hello. Kept small on purpose: a
/// connection that never ingests (a console, an event watcher) parks at
/// most this many credits; real windows are built by request/ack grants.
constexpr uint64_t kHelloCreditGrant = 64;

}  // namespace

TmanServer::TmanServer(TriggerManager* tman,
                       std::unique_ptr<Listener> listener,
                       TmanServerOptions options)
    : tman_(tman), listener_(std::move(listener)), options_(options) {}

TmanServer::~TmanServer() { Stop(); }

Status TmanServer::Start() {
  if (started_) return Status::Aborted("server already started");
  started_ = true;
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&TmanServer::AcceptLoop, this);
  credit_thread_ = std::thread(&TmanServer::CreditLoop, this);
  return Status::OK();
}

void TmanServer::Stop() { Stop(std::chrono::milliseconds(0)); }

void TmanServer::Stop(std::chrono::milliseconds drain_timeout) {
  if (!started_) return;
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return;
  stop_cv_.notify_all();
  listener_->Close();
  if (acceptor_.joinable()) acceptor_.join();

  if (drain_timeout.count() > 0) {
    // Drain: workers stop pulling new frames once running_ is false, but
    // a frame already in HandleFrame finishes its batch and its ack goes
    // out. Wait (bounded) for those, then for the task queue, so acked
    // work is also processed work at shutdown.
    auto deadline = std::chrono::steady_clock::now() + drain_timeout;
    for (;;) {
      bool busy = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [conn, thread] : conns_) {
          if (conn->busy.load(std::memory_order_acquire)) {
            busy = true;
            break;
          }
        }
      }
      if (!busy && tman_->task_queue().empty() &&
          tman_->task_queue().in_flight() == 0) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (tman_->wal_enabled()) {
      // Final commit round: checkpointing persists the processed markers
      // for everything the drain completed, so a restart replays nothing
      // that already fired.
      Status s = tman_->CheckpointWal();
      if (!s.ok()) {
        TMAN_LOG(kWarn) << "drain checkpoint failed: " << s.ToString();
      }
    }
  }

  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
  }
  for (auto& [conn, thread] : conns) {
    conn->open.store(false, std::memory_order_relaxed);
    conn->transport->Close();
  }
  for (auto& [conn, thread] : conns) {
    if (thread.joinable()) thread.join();
  }
  if (credit_thread_.joinable()) credit_thread_.join();
}

TmanServerStats TmanServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TmanServerStats s = stats_;
  s.events_pushed = events_pushed_->load(std::memory_order_relaxed);
  return s;
}

size_t TmanServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [conn, thread] : conns_) {
    if (!conn->done.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

std::shared_ptr<TmanServer::Session> TmanServer::GetSession(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = sessions_[name];
  if (slot == nullptr) {
    slot = std::make_shared<Session>();
    // A durable instance remembers acknowledged sequences across a crash:
    // seed the fresh session from the WAL so a client resending after a
    // server kill-and-recover is deduplicated, not re-applied.
    slot->last_applied_seq = tman_->RecoveredSessionSeq(name);
  }
  return slot;
}

void TmanServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->first->done.load(std::memory_order_acquire)) {
      if (it->second.joinable()) it->second.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void TmanServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto transport = listener_->Accept();
    if (!transport.ok()) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (transport.status().code() == StatusCode::kAborted) break;
      TMAN_LOG(kWarn) << "accept failed: " << transport.status().ToString();
      break;
    }
    auto conn = std::make_shared<Conn>();
    conn->transport = std::move(*transport);
    conn->io.max_payload = options_.max_payload_bytes;
    conn->io.faults = options_.fault_injector;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ReapFinishedLocked();
      ++stats_.connections_accepted;
      conns_.emplace_back(conn, std::thread(&TmanServer::ConnLoop, this,
                                            conn));
    }
  }
}

template <typename Payload>
void TmanServer::SendToConn(const std::shared_ptr<Conn>& conn, FrameType type,
                            const Payload& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->open.load(std::memory_order_relaxed)) return;
  Status s = WriteFramePayload(conn->transport.get(), type, payload, conn->io);
  if (!s.ok()) {
    conn->open.store(false, std::memory_order_relaxed);
    conn->transport->Close();
  }
}

uint64_t TmanServer::GrantCredits(const std::shared_ptr<Conn>& conn,
                                  uint64_t want) {
  uint64_t granted = 0;
  {
    std::lock_guard<std::mutex> lock(credit_mutex_);
    const uint64_t cap = options_.max_queue_depth;
    uint64_t used = tman_->task_queue().size() + total_outstanding_;
    uint64_t avail = used >= cap ? 0 : cap - used;
    uint64_t conn_room = conn->credits_outstanding >= cap
                             ? 0
                             : cap - conn->credits_outstanding;
    granted = std::min({avail, conn_room, want});
    total_outstanding_ += granted;
    conn->credits_outstanding += granted;
    conn->credit_want -= std::min(conn->credit_want, granted);
  }
  if (granted > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.credits_granted += granted;
  }
  return granted;
}

void TmanServer::ReleaseCredits(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(credit_mutex_);
  total_outstanding_ -= std::min(total_outstanding_,
                                 conn->credits_outstanding);
  conn->credits_outstanding = 0;
}

void TmanServer::CreditLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      stop_cv_.wait_for(lock, options_.credit_period, [&] {
        return !running_.load(std::memory_order_acquire);
      });
    }
    if (!running_.load(std::memory_order_acquire)) return;
    if (options_.cluster_tick) options_.cluster_tick();
    std::vector<std::shared_ptr<Conn>> snapshot;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      snapshot.reserve(conns_.size());
      for (const auto& [conn, thread] : conns_) snapshot.push_back(conn);
    }
    for (const auto& conn : snapshot) {
      if (!conn->open.load(std::memory_order_relaxed) ||
          !conn->hello_done.load(std::memory_order_acquire)) {
        continue;
      }
      uint64_t want;
      {
        std::lock_guard<std::mutex> lock(credit_mutex_);
        want = conn->credit_want;
      }
      if (want == 0) continue;
      uint64_t grant = GrantCredits(conn, want);
      if (grant > 0) {
        CreditGrantFrame frame;
        frame.credits = static_cast<uint32_t>(grant);
        SendToConn(conn, FrameType::kCreditGrant, frame);
      }
    }
  }
}

void TmanServer::ConnLoop(std::shared_ptr<Conn> conn) {
  while (running_.load(std::memory_order_acquire) &&
         conn->open.load(std::memory_order_relaxed)) {
    auto frame = ReadFrame(conn->transport.get(), conn->io);
    if (!frame.ok()) {
      const Status& s = frame.status();
      if (s.code() == StatusCode::kAborted) break;  // clean EOF / goodbye
      // Corrupt, oversized or unsupported-version frames get an orderly
      // goodbye so a confused-but-listening peer learns why; a dead
      // transport (IoError) just closes.
      if (s.code() != StatusCode::kIoError) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.protocol_errors;
        }
        GoodbyeFrame bye;
        bye.reason = s.ToString();
        SendToConn(conn, FrameType::kGoodbye, bye);
      }
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.frames_received;
    }
    conn->busy.store(true, std::memory_order_release);
    Status s = HandleFrame(conn, *frame);
    conn->busy.store(false, std::memory_order_release);
    if (conn->is_router.load(std::memory_order_relaxed) &&
        options_.cluster_activity) {
      options_.cluster_activity();
    }
    if (!s.ok()) {
      if (s.code() != StatusCode::kAborted) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.protocol_errors;
        }
        GoodbyeFrame bye;
        bye.reason = s.ToString();
        SendToConn(conn, FrameType::kGoodbye, bye);
      }
      break;
    }
  }

  // Teardown: stop writers, drop event registrations, return credits.
  // The ClientConnection is closed (not destroyed) here; destruction
  // waits for the last event-consumer reference to the Conn to go away.
  conn->open.store(false, std::memory_order_relaxed);
  conn->transport->Close();
  if (conn->client != nullptr) conn->client->Close();
  if (conn->is_router.load(std::memory_order_relaxed) &&
      options_.cluster_router_lost) {
    options_.cluster_router_lost();
  }
  ReleaseCredits(conn);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections_closed;
  }
  conn->done.store(true, std::memory_order_release);
}

Status TmanServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                               const Frame& frame) {
  if (!conn->hello_done.load(std::memory_order_relaxed) &&
      frame.type != FrameType::kHello) {
    return Status::InvalidArgument("expected hello, got " +
                                   std::string(FrameTypeName(frame.type)));
  }
  switch (frame.type) {
    case FrameType::kHello: {
      if (conn->hello_done.load(std::memory_order_relaxed)) {
        return Status::InvalidArgument("duplicate hello");
      }
      TMAN_ASSIGN_OR_RETURN(HelloFrame hello,
                            HelloFrame::Decode(frame.payload));
      HelloReplyFrame reply;
      if (hello.protocol_version != kWireVersion) {
        reply.status_code = static_cast<uint8_t>(StatusCode::kNotSupported);
        reply.message = "server speaks protocol version " +
                        std::to_string(kWireVersion);
        SendToConn(conn, FrameType::kHelloReply, reply);
        return Status::NotSupported("client protocol version mismatch");
      }
      if (hello.client_name.empty()) {
        reply.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
        reply.message = "client name must not be empty";
        SendToConn(conn, FrameType::kHelloReply, reply);
        return Status::InvalidArgument("empty client name");
      }
      conn->name = hello.client_name;
      conn->session = GetSession(conn->name);
      conn->client =
          std::make_unique<ClientConnection>(tman_, conn->name);
      conn->hello_done.store(true, std::memory_order_release);
      reply.initial_credits = static_cast<uint32_t>(GrantCredits(
          conn,
          std::min<uint64_t>(options_.max_queue_depth, kHelloCreditGrant)));
      {
        std::lock_guard<std::mutex> lock(conn->session->mutex);
        reply.last_applied_seq = conn->session->last_applied_seq;
      }
      SendToConn(conn, FrameType::kHelloReply, reply);
      return Status::OK();
    }

    case FrameType::kCommand: {
      TMAN_ASSIGN_OR_RETURN(CommandFrame cmd,
                            CommandFrame::Decode(frame.payload));
      auto outcome = conn->client->Command(cmd.text);
      CommandReplyFrame reply;
      reply.request_id = cmd.request_id;
      if (outcome.ok()) {
        reply.result = *outcome;
      } else {
        reply.status_code = static_cast<uint8_t>(outcome.status().code());
        reply.message = outcome.status().message();
      }
      SendToConn(conn, FrameType::kCommandReply, reply);
      return Status::OK();
    }

    case FrameType::kUpdateBatch: {
      TMAN_ASSIGN_OR_RETURN(UpdateBatchFrame batch,
                            UpdateBatchFrame::Decode(frame.payload));
      const uint64_t k = batch.updates.size();
      {
        std::lock_guard<std::mutex> lock(credit_mutex_);
        if (k > conn->credits_outstanding) {
          return Status::ResourceExhausted(
              "credit overrun: batch of " + std::to_string(k) +
              " exceeds outstanding window of " +
              std::to_string(conn->credits_outstanding));
        }
      }
      UpdateAckFrame ack;
      Status first_error = Status::OK();
      Status admit_reject = Status::OK();
      uint64_t applied = 0;
      uint64_t deduped = 0;
      {
        // Serializes concurrent connections sharing a session name, and
        // makes dedup + submit atomic with the high-water-mark advance.
        std::lock_guard<std::mutex> lock(conn->session->mutex);
        // First pass: dedup + validation, collecting the survivors so
        // the whole frame reaches the task queue through ONE
        // SubmitUpdateBatch → TaskQueue::PushBatch, instead of taking
        // the queue lock (and waking a driver) once per update.
        std::vector<UpdateDescriptor> accepted;
        std::vector<uint64_t> accepted_seqs;
        accepted.reserve(batch.updates.size());
        uint64_t new_high = conn->session->last_applied_seq;
        for (size_t i = 0; i < batch.updates.size(); ++i) {
          uint64_t seq = batch.first_seq + i;
          if (seq <= conn->session->last_applied_seq) {
            ++deduped;
            continue;
          }
          // Validate the source id here: SubmitUpdate defers resolution
          // to the (async) token pipeline, but a remote writer deserves a
          // deterministic rejection in its ack.
          Status s =
              tman_->sources().LookupById(batch.updates[i].data_source)
                  .status();
          if (s.ok()) {
            accepted.push_back(batch.updates[i]);
            accepted_seqs.push_back(seq);
          } else if (first_error.ok()) {
            // Rejections (unknown source, schema mismatch) are
            // deterministic: surface them in the ack but advance the
            // sequence so the client does not resend forever.
            first_error = s;
          }
          if (seq > new_high) new_high = seq;
        }
        // Cluster-member ownership gate: one token for a partition this
        // node no longer owns rejects the whole batch with no sequence
        // advance (the router re-routes it; see TmanServerOptions).
        if (options_.cluster_admit) {
          for (const UpdateDescriptor& update : accepted) {
            Status a = options_.cluster_admit(update);
            if (!a.ok()) {
              admit_reject = a;
              break;
            }
          }
        }
        if (!admit_reject.ok()) {
          accepted.clear();
          accepted_seqs.clear();
          new_high = conn->session->last_applied_seq;
        }
        if (tman_->wal_enabled()) {
          // Durable path: the batch (with its session stamp) must be in
          // the log before any sequence advances or any ack leaves —
          // acked means durable. A commit failure fails the whole frame:
          // nothing was staged and nothing advanced, so dropping the
          // connection makes the client reconnect and resend, and the
          // idempotent resend lands exactly once.
          if (!accepted.empty() ||
              new_high > conn->session->last_applied_seq) {
            BatchStamp stamp;
            stamp.session = conn->name;
            stamp.ack_seq = new_high;
            stamp.seqs = std::move(accepted_seqs);
            std::vector<Status> per_update;
            per_update.reserve(accepted.size());
            TMAN_RETURN_IF_ERROR(conn->client->SubmitUpdateBatch(
                accepted, &per_update, &stamp));
            applied += per_update.size();
            conn->session->last_applied_seq = new_high;
          }
        } else {
          conn->session->last_applied_seq = new_high;
          if (!accepted.empty()) {
            std::vector<Status> per_update;
            per_update.reserve(accepted.size());
            Status batch_status =
                conn->client->SubmitUpdateBatch(accepted, &per_update);
            for (const Status& s : per_update) {
              if (s.ok()) ++applied;
            }
            if (!batch_status.ok() && first_error.ok()) {
              first_error = batch_status;
            }
          }
        }
        ack.ack_seq = conn->session->last_applied_seq;
      }
      // Consumed credits are returned to the pool only now, after the
      // submissions pushed their tasks — the credit bound always sees
      // either the outstanding credit or the queued task, never neither.
      {
        std::lock_guard<std::mutex> lock(credit_mutex_);
        uint64_t consumed = std::min(k, conn->credits_outstanding);
        conn->credits_outstanding -= consumed;
        total_outstanding_ -= std::min(total_outstanding_, consumed);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.updates_applied += applied;
        stats_.updates_deduped += deduped;
      }
      if (!admit_reject.ok()) {
        ack.status_code = static_cast<uint8_t>(admit_reject.code());
        ack.message = admit_reject.message();
      } else if (!first_error.ok()) {
        ack.status_code = static_cast<uint8_t>(first_error.code());
        ack.message = first_error.message();
      }
      // Replenish what the batch consumed; a larger window must be
      // requested explicitly (and is then topped up by the credit
      // thread as the queue drains).
      ack.credits = static_cast<uint32_t>(GrantCredits(conn, k));
      SendToConn(conn, FrameType::kUpdateAck, ack);
      return Status::OK();
    }

    case FrameType::kEventRegister: {
      TMAN_ASSIGN_OR_RETURN(EventRegisterFrame reg,
                            EventRegisterFrame::Decode(frame.payload));
      // The consumer runs on driver threads and may be invoked (via a
      // copy taken by EventManager::Raise) even after this connection —
      // or the whole server — is torn down. It therefore captures only
      // shared state: the Conn and the push counter, never `this`.
      auto reg_id = std::make_shared<std::atomic<uint64_t>>(0);
      std::shared_ptr<Conn> c = conn;
      auto counter = events_pushed_;
      FrameIoOptions io = conn->io;
      uint64_t id = conn->client->RegisterForEvent(
          reg.event_name, [c, reg_id, counter, io](const Event& e) {
            if (!c->open.load(std::memory_order_relaxed)) return;
            EventPushFrame push;
            push.registration_id = reg_id->load(std::memory_order_acquire);
            push.event_name = e.name;
            push.args = e.args;
            std::string payload;
            push.Encode(&payload);
            std::lock_guard<std::mutex> lock(c->write_mutex);
            if (!c->open.load(std::memory_order_relaxed)) return;
            Status s = WriteFrame(c->transport.get(), FrameType::kEventPush,
                                  payload, io);
            if (!s.ok()) {
              c->open.store(false, std::memory_order_relaxed);
              c->transport->Close();
              return;
            }
            counter->fetch_add(1, std::memory_order_relaxed);
          });
      reg_id->store(id, std::memory_order_release);
      CommandReplyFrame reply;
      reply.request_id = reg.request_id;
      reply.result = std::to_string(id);
      SendToConn(conn, FrameType::kCommandReply, reply);
      return Status::OK();
    }

    case FrameType::kEventUnregister: {
      TMAN_ASSIGN_OR_RETURN(EventUnregisterFrame unreg,
                            EventUnregisterFrame::Decode(frame.payload));
      conn->client->Unregister(unreg.registration_id);
      return Status::OK();
    }

    case FrameType::kPing: {
      TMAN_ASSIGN_OR_RETURN(PingFrame ping, PingFrame::Decode(frame.payload));
      SendToConn(conn, FrameType::kPong, ping);
      return Status::OK();
    }

    case FrameType::kCreditGrant: {
      // From a client this frame is a credit *request*: the sender is
      // stalled with that many updates queued. Remember the want (the
      // credit thread keeps servicing it as the queue drains) and grant
      // what the bound allows right now.
      TMAN_ASSIGN_OR_RETURN(CreditGrantFrame req,
                            CreditGrantFrame::Decode(frame.payload));
      {
        std::lock_guard<std::mutex> lock(credit_mutex_);
        conn->credit_want = std::max<uint64_t>(conn->credit_want, req.credits);
      }
      uint64_t grant = GrantCredits(conn, req.credits);
      if (grant > 0) {
        CreditGrantFrame reply;
        reply.credits = static_cast<uint32_t>(grant);
        SendToConn(conn, FrameType::kCreditGrant, reply);
      }
      return Status::OK();
    }

    case FrameType::kPartitionMap: {
      TMAN_ASSIGN_OR_RETURN(PartitionMapFrame map,
                            PartitionMapFrame::Decode(frame.payload));
      conn->is_router.store(true, std::memory_order_relaxed);
      PartitionMapAckFrame ack;
      if (options_.cluster_map) {
        ack = options_.cluster_map(map);
      } else {
        ack.epoch = map.epoch;
        ack.status_code = static_cast<uint8_t>(StatusCode::kNotSupported);
        ack.message = "not a cluster member";
      }
      SendToConn(conn, FrameType::kPartitionMapAck, ack);
      return Status::OK();
    }

    case FrameType::kPong:
      return Status::OK();  // unsolicited pongs are harmless

    case FrameType::kGoodbye:
      return Status::Aborted("client said goodbye");

    case FrameType::kHelloReply:
    case FrameType::kCommandReply:
    case FrameType::kUpdateAck:
    case FrameType::kEventPush:
    case FrameType::kPartitionMapAck:
      return Status::InvalidArgument(
          "client sent server-to-client frame " +
          std::string(FrameTypeName(frame.type)));
  }
  return Status::InvalidArgument("unhandled frame type");
}

}  // namespace tman
