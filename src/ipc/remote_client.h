#ifndef TRIGGERMAN_IPC_REMOTE_CLIENT_H_
#define TRIGGERMAN_IPC_REMOTE_CLIENT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/events.h"
#include "ipc/transport.h"
#include "types/update_descriptor.h"

namespace tman {

/// What a writer does when the server's credit window is exhausted (the
/// task queue is at its configured bound).
enum class BackpressurePolicy {
  kBlock,  // Flush/SubmitUpdate block until credits arrive (or timeout)
  kShed,   // drop the batch, count it in stats().updates_shed
};

struct RemoteClientOptions {
  /// Session name. The server keys exactly-once update sequencing and
  /// resume state by this name, so a reconnecting data source must reuse
  /// it.
  std::string client_name = "remote-client";

  uint32_t max_payload_bytes = kDefaultMaxPayload;

  /// Optional fault injector for the ipc.* sites (tests).
  FaultInjector* fault_injector = nullptr;

  /// Factory for transports; used by Connect() and for auto-reconnect.
  /// E.g. [] { return TcpConnect("db1", 7447); } or a loopback listener's
  /// Connect.
  std::function<Result<std::unique_ptr<Transport>>()> connector;

  /// Reconnect transparently when the connection drops, resending unacked
  /// update batches (the server dedups by sequence, so this is
  /// exactly-once end to end). Requires `connector`.
  bool auto_reconnect = true;
  uint32_t max_reconnect_attempts = 8;

  /// Exponential redial schedule: attempt n sleeps
  /// min(reconnect_backoff * reconnect_backoff_multiplier^(n-1),
  ///     reconnect_backoff_max), +- reconnect_jitter of itself (uniform,
  /// seeded by reconnect_seed) so a fleet of writers redialing a restarted
  /// server spreads out instead of stampeding in lockstep.
  std::chrono::milliseconds reconnect_backoff{10};
  std::chrono::milliseconds reconnect_backoff_max{2000};
  double reconnect_backoff_multiplier = 2.0;
  double reconnect_jitter = 0.2;
  uint64_t reconnect_seed = 0;  // 0 = derive from client_name

  /// Test seam: replaces std::this_thread::sleep_for in the reconnect
  /// path, so backoff schedules are assertable against a virtual clock.
  std::function<void(std::chrono::milliseconds)> reconnect_sleep;

  std::chrono::milliseconds command_timeout{10000};

  /// Batching of update descriptors (data source API): a batch is flushed
  /// when it reaches `batch_max_updates` or its oldest update has waited
  /// `batch_max_delay`.
  size_t batch_max_updates = 256;
  std::chrono::milliseconds batch_max_delay{5};

  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// How long kBlock waits for credits before giving up with
  /// ResourceExhausted (the batch stays queued and is sent when credits
  /// eventually arrive).
  std::chrono::milliseconds send_timeout{30000};
};

struct RemoteClientStats {
  uint64_t updates_submitted = 0;
  uint64_t updates_sent = 0;      // handed to the transport (incl. resends)
  uint64_t updates_acked = 0;
  uint64_t updates_shed = 0;      // dropped by BackpressurePolicy::kShed
  uint64_t batches_sent = 0;
  uint64_t events_received = 0;
  uint64_t reconnects = 0;
  uint64_t credit_stalls = 0;     // sends delayed waiting for credits
};

/// The remote counterpart of ClientConnection + the data source API
/// (Figure 1's client applications and data source programs, connected
/// over the wire protocol instead of in-process). One background reader
/// thread dispatches replies, event pushes, acks and credit grants; one
/// flusher thread enforces the time-based batch flush. Public methods are
/// thread-safe.
class RemoteClient {
 public:
  explicit RemoteClient(RemoteClientOptions options = {});
  ~RemoteClient();

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  /// Connects and handshakes using options.connector.
  Status Connect();

  /// Connects over an explicit transport (tests, one-shot tools).
  /// Auto-reconnect still goes through options.connector when set.
  Status Connect(std::unique_ptr<Transport> transport);

  /// Sends a best-effort goodbye and stops the background threads.
  /// Unacked queued updates are dropped. Idempotent.
  void Close();

  bool connected() const;

  // --- ClientConnection mirror ---------------------------------------------

  /// Executes one TriggerMan command on the server; returns its summary.
  Result<std::string> Command(std::string_view text);

  /// Registers for an event ("*" = all). The consumer runs on the reader
  /// thread. Registrations survive reconnects (re-registered
  /// automatically). Returns a client-side handle.
  Result<uint64_t> RegisterForEvent(const std::string& event_name,
                                    EventConsumer consumer);
  Status Unregister(uint64_t handle);

  /// Round-trip liveness probe.
  Status Ping();

  // --- data source API ------------------------------------------------------

  /// Stages one update descriptor into the current batch; flushes when the
  /// batch is full (honoring the backpressure policy).
  Status SubmitUpdate(const UpdateDescriptor& update);

  /// Seals the current batch and, per policy, blocks until every queued
  /// batch has been handed to the transport.
  Status Flush();

  /// Flush + wait until the server has acknowledged everything.
  Status Drain();

  uint64_t credits() const;
  RemoteClientStats stats() const;

 private:
  struct Batch {
    uint64_t first_seq = 0;
    std::vector<UpdateDescriptor> updates;
  };

  /// A caller waiting for a reply frame (command, registration, pong).
  struct Waiter {
    bool done = false;
    CommandReplyFrame reply;
  };

  struct EventReg {
    std::string event_name;
    EventConsumer consumer;
    uint64_t server_id = 0;
  };

  Status Handshake(Transport* transport, HelloReplyFrame* reply);
  Status InstallConnection(std::unique_ptr<Transport> transport);
  void ReaderLoop();
  void FlusherLoop();
  void HandleDisconnectLocked();
  bool AttemptReconnect(std::unique_lock<std::mutex>* lock);
  void DispatchFrame(const Frame& frame);
  /// Moves sendable batches from queued_ to inflight_, writing them out.
  /// If the window is too small for the backlog, asks the server for more.
  void TrySend();
  void DrainSendQueue();
  /// Records a pending credit request (mutex_ held) ...
  void RequestCreditsLocked();
  /// ... which this writes out without holding mutex_.
  void FlushCreditRequest();
  /// Seals current_ into queued_ (or sheds). Caller holds mutex_.
  void SealBatchLocked();
  Status WaitQueuedDrainLocked(std::unique_lock<std::mutex>* lock);
  Status SendRequest(FrameType type, std::string payload, uint64_t request_id,
                     CommandReplyFrame* reply);

  RemoteClientOptions options_;
  FrameIoOptions io_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<Transport> transport_;
  std::mutex write_mutex_;
  bool connected_ = false;
  bool stopping_ = false;
  bool terminal_ = false;  // no reconnect possible; fail fast
  bool sending_ = false;   // one thread at a time drains queued_
  bool credit_requested_ = false;  // a credit request is outstanding
  uint64_t credits_ = 0;
  uint64_t credit_request_amount_ = 0;  // staged by RequestCreditsLocked
  std::shared_ptr<Transport> credit_request_transport_;

  uint64_t next_seq_ = 1;
  uint64_t next_request_id_ = 1;
  uint64_t next_handle_ = 1;
  std::vector<UpdateDescriptor> current_;
  std::chrono::steady_clock::time_point current_started_{};
  std::deque<Batch> queued_;
  std::deque<Batch> inflight_;
  Status last_ack_error_ = Status::OK();

  std::map<uint64_t, Waiter*> pending_;           // request id -> waiter
  std::map<uint64_t, uint64_t> pending_rereg_;    // request id -> handle
  std::map<uint64_t, Waiter*> pending_pings_;     // nonce -> waiter
  std::map<uint64_t, EventReg> events_;           // handle -> registration
  std::map<uint64_t, uint64_t> handle_by_server_; // server id -> handle

  RemoteClientStats stats_;

  std::thread reader_;
  std::thread flusher_;
};

/// Convenience facade for a data source program streaming one source's
/// updates through a RemoteClient (which owns batching, credits and
/// reconnect).
class RemoteDataSource {
 public:
  RemoteDataSource(RemoteClient* client, DataSourceId source)
      : client_(client), source_(source) {}

  Status Insert(Tuple t) {
    return client_->SubmitUpdate(
        UpdateDescriptor::Insert(source_, std::move(t)));
  }
  Status Delete(Tuple t) {
    return client_->SubmitUpdate(
        UpdateDescriptor::Delete(source_, std::move(t)));
  }
  Status Update(Tuple old_t, Tuple new_t) {
    return client_->SubmitUpdate(
        UpdateDescriptor::Update(source_, std::move(old_t),
                                 std::move(new_t)));
  }
  Status Flush() { return client_->Flush(); }

  DataSourceId source() const { return source_; }

 private:
  RemoteClient* client_;
  DataSourceId source_;
};

}  // namespace tman

#endif  // TRIGGERMAN_IPC_REMOTE_CLIENT_H_
