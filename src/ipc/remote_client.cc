#include "ipc/remote_client.h"

#include <cstdlib>
#include <limits>

#include "util/backoff.h"
#include "util/hash.h"
#include "util/logging.h"

namespace tman {

RemoteClient::RemoteClient(RemoteClientOptions options)
    : options_(std::move(options)) {
  io_.max_payload = options_.max_payload_bytes;
  io_.faults = options_.fault_injector;
}

RemoteClient::~RemoteClient() { Close(); }

Status RemoteClient::Handshake(Transport* transport, HelloReplyFrame* reply) {
  HelloFrame hello;
  hello.client_name = options_.client_name;
  hello.protocol_version = kWireVersion;
  TMAN_RETURN_IF_ERROR(
      WriteFramePayload(transport, FrameType::kHello, hello, io_));
  TMAN_ASSIGN_OR_RETURN(Frame frame, ReadFrame(transport, io_));
  if (frame.type != FrameType::kHelloReply) {
    return Status::Corruption("expected hello reply, got " +
                              std::string(FrameTypeName(frame.type)));
  }
  TMAN_ASSIGN_OR_RETURN(*reply, HelloReplyFrame::Decode(frame.payload));
  if (reply->status_code != 0) {
    return Status::FromCode(static_cast<StatusCode>(reply->status_code),
                            "server rejected session: " + reply->message);
  }
  return Status::OK();
}

Status RemoteClient::Connect() {
  if (!options_.connector) {
    return Status::InvalidArgument("no connector configured");
  }
  TMAN_ASSIGN_OR_RETURN(std::unique_ptr<Transport> transport,
                        options_.connector());
  return Connect(std::move(transport));
}

Status RemoteClient::Connect(std::unique_ptr<Transport> transport) {
  if (reader_.joinable()) return Status::Aborted("already connected");
  HelloReplyFrame reply;
  TMAN_RETURN_IF_ERROR(Handshake(transport.get(), &reply));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    transport_ = std::shared_ptr<Transport>(std::move(transport));
    connected_ = true;
    credits_ = reply.initial_credits;
    // Resume the session's sequence numbering: a restarted client with
    // the same name must not reuse already-applied sequences (the server
    // would silently drop its updates as duplicates).
    if (next_seq_ <= reply.last_applied_seq) {
      next_seq_ = reply.last_applied_seq + 1;
    }
  }
  reader_ = std::thread(&RemoteClient::ReaderLoop, this);
  flusher_ = std::thread(&RemoteClient::FlusherLoop, this);
  return Status::OK();
}

void RemoteClient::Close() {
  std::shared_ptr<Transport> transport;
  bool send_goodbye = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      stopping_ = true;
      send_goodbye = connected_;
      transport = transport_;
      // Fail blocked Command/Ping callers.
      for (auto& [id, waiter] : pending_) {
        waiter->done = true;
        waiter->reply.status_code =
            static_cast<uint8_t>(StatusCode::kAborted);
        waiter->reply.message = "client closed";
      }
      pending_.clear();
      for (auto& [nonce, waiter] : pending_pings_) {
        waiter->done = true;
        waiter->reply.status_code =
            static_cast<uint8_t>(StatusCode::kAborted);
      }
      pending_pings_.clear();
    }
  }
  cv_.notify_all();
  if (transport != nullptr) {
    if (send_goodbye) {
      GoodbyeFrame bye;
      bye.reason = "client closing";
      std::string payload;
      bye.Encode(&payload);
      std::lock_guard<std::mutex> lock(write_mutex_);
      (void)WriteFrame(transport.get(), FrameType::kGoodbye, payload, io_);
    }
    transport->Close();
  }
  if (reader_.joinable()) reader_.join();
  if (flusher_.joinable()) flusher_.join();
}

bool RemoteClient::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connected_;
}

uint64_t RemoteClient::credits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return credits_;
}

RemoteClientStats RemoteClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// --- background threads -----------------------------------------------------

void RemoteClient::ReaderLoop() {
  while (true) {
    std::shared_ptr<Transport> transport;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) return;
      if (!connected_) {
        if (!AttemptReconnect(&lock)) {
          terminal_ = true;
          cv_.notify_all();
          return;
        }
      }
      transport = transport_;
    }
    TrySend();  // resume queued batches after (re)connect
    auto frame = ReadFrame(transport.get(), io_);
    if (!frame.ok()) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) return;
      if (transport_ != transport) continue;  // raced with a reconnect
      HandleDisconnectLocked();
      continue;
    }
    DispatchFrame(*frame);
  }
}

void RemoteClient::FlusherLoop() {
  while (true) {
    bool flush_now = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto deadline = current_.empty()
                          ? std::chrono::steady_clock::now() +
                                options_.batch_max_delay
                          : current_started_ + options_.batch_max_delay;
      cv_.wait_until(lock, deadline, [&] { return stopping_; });
      if (stopping_) return;
      if (!current_.empty() &&
          std::chrono::steady_clock::now() - current_started_ >=
              options_.batch_max_delay) {
        SealBatchLocked();
        flush_now = true;
      }
    }
    if (flush_now) TrySend();
  }
}

// Asks the server to widen the send window. The server's hello grant is
// a small bootstrap; a writer whose backlog outgrows it says how much it
// is missing and the server services the want as its queue drains. Called
// with mutex_ held; the actual write happens on a detached best-effort
// path below because a blocking transport write must not hold mutex_.
void RemoteClient::RequestCreditsLocked() {
  if (credit_requested_ || !connected_) return;
  uint64_t backlog = 0;
  for (const Batch& b : queued_) backlog += b.updates.size();
  if (backlog <= credits_) return;
  credit_requested_ = true;
  credit_request_amount_ = backlog - credits_;
  credit_request_transport_ = transport_;
}

void RemoteClient::FlushCreditRequest() {
  std::shared_ptr<Transport> transport;
  uint64_t amount = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (credit_request_transport_ == nullptr) return;
    transport = std::move(credit_request_transport_);
    credit_request_transport_ = nullptr;
    amount = credit_request_amount_;
  }
  CreditGrantFrame req;
  req.credits = static_cast<uint32_t>(
      std::min<uint64_t>(amount, std::numeric_limits<uint32_t>::max()));
  std::string payload;
  req.Encode(&payload);
  std::lock_guard<std::mutex> wlock(write_mutex_);
  // Best effort: if the write fails the reader notices the dead stream,
  // and the disconnect path resets credit_requested_.
  (void)WriteFrame(transport.get(), FrameType::kCreditGrant, payload, io_);
}

void RemoteClient::HandleDisconnectLocked() {
  connected_ = false;
  credits_ = 0;
  credit_requested_ = false;
  credit_request_transport_ = nullptr;
  if (transport_ != nullptr) transport_->Close();
  // Unacked batches go back to the head of the send queue, oldest first;
  // the server's per-session sequence dedup makes the resend idempotent.
  while (!inflight_.empty()) {
    queued_.push_front(std::move(inflight_.back()));
    inflight_.pop_back();
  }
  // Commands are not idempotent (CREATE TRIGGER twice is an error), so
  // blocked callers get Aborted instead of a silent replay.
  for (auto& [id, waiter] : pending_) {
    waiter->done = true;
    waiter->reply.status_code = static_cast<uint8_t>(StatusCode::kAborted);
    waiter->reply.message = "connection lost";
  }
  pending_.clear();
  for (auto& [nonce, waiter] : pending_pings_) {
    waiter->done = true;
    waiter->reply.status_code = static_cast<uint8_t>(StatusCode::kAborted);
  }
  pending_pings_.clear();
  pending_rereg_.clear();
  cv_.notify_all();
}

bool RemoteClient::AttemptReconnect(std::unique_lock<std::mutex>* lock) {
  if (terminal_ || !options_.auto_reconnect || !options_.connector) {
    return false;
  }
  Random backoff_rng(options_.reconnect_seed != 0
                         ? options_.reconnect_seed
                         : HashString(options_.client_name));
  for (uint32_t attempt = 1; attempt <= options_.max_reconnect_attempts;
       ++attempt) {
    lock->unlock();
    std::chrono::milliseconds delay = BackoffDelay(
        attempt, options_.reconnect_backoff, options_.reconnect_backoff_max,
        options_.reconnect_backoff_multiplier, options_.reconnect_jitter,
        &backoff_rng);
    if (options_.reconnect_sleep) {
      options_.reconnect_sleep(delay);
    } else {
      std::this_thread::sleep_for(delay);
    }
    auto transport = options_.connector();
    HelloReplyFrame reply;
    Status status = transport.ok()
                        ? Handshake(transport->get(), &reply)
                        : transport.status();
    lock->lock();
    if (stopping_) return false;
    if (!status.ok()) {
      TMAN_LOG(kInfo) << "reconnect attempt " << attempt
                      << " failed: " << status.ToString();
      continue;
    }
    transport_ = std::shared_ptr<Transport>(std::move(*transport));
    connected_ = true;
    credits_ = reply.initial_credits;
    ++stats_.reconnects;
    // Drop queued batches the server already applied before the drop.
    while (!queued_.empty()) {
      const Batch& b = queued_.front();
      uint64_t last = b.first_seq + b.updates.size() - 1;
      if (last > reply.last_applied_seq) break;
      stats_.updates_acked += b.updates.size();
      queued_.pop_front();
    }
    if (next_seq_ <= reply.last_applied_seq) {
      next_seq_ = reply.last_applied_seq + 1;
    }
    // Event registrations are client-side state; rebuild them on the new
    // connection. Replies are matched back to handles by request id.
    std::vector<EventRegisterFrame> regs;
    for (auto& [handle, reg] : events_) {
      EventRegisterFrame f;
      f.request_id = next_request_id_++;
      f.event_name = reg.event_name;
      pending_rereg_[f.request_id] = handle;
      regs.push_back(std::move(f));
    }
    std::shared_ptr<Transport> transport_now = transport_;
    lock->unlock();
    for (const EventRegisterFrame& f : regs) {
      std::lock_guard<std::mutex> wlock(write_mutex_);
      Status s = WriteFramePayload(transport_now.get(),
                                   FrameType::kEventRegister, f, io_);
      if (!s.ok()) break;  // reader will observe the dead transport
    }
    lock->lock();
    cv_.notify_all();
    return true;
  }
  return false;
}

void RemoteClient::DispatchFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kCommandReply: {
      auto reply = CommandReplyFrame::Decode(frame.payload);
      if (!reply.ok()) break;
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_.find(reply->request_id);
      if (it != pending_.end()) {
        *it->second = Waiter{true, *reply};
        pending_.erase(it);
        cv_.notify_all();
        return;
      }
      auto rit = pending_rereg_.find(reply->request_id);
      if (rit != pending_rereg_.end()) {
        uint64_t handle = rit->second;
        pending_rereg_.erase(rit);
        auto eit = events_.find(handle);
        if (eit != events_.end() && reply->status_code == 0) {
          uint64_t server_id =
              std::strtoull(reply->result.c_str(), nullptr, 10);
          eit->second.server_id = server_id;
          handle_by_server_[server_id] = handle;
        }
      }
      return;
    }

    case FrameType::kUpdateAck: {
      auto ack = UpdateAckFrame::Decode(frame.payload);
      if (!ack.ok()) break;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        credits_ += ack->credits;
        credit_requested_ = false;  // server is responsive; may re-request
        while (!inflight_.empty()) {
          const Batch& b = inflight_.front();
          uint64_t last = b.first_seq + b.updates.size() - 1;
          if (last > ack->ack_seq) break;
          stats_.updates_acked += b.updates.size();
          inflight_.pop_front();
        }
        if (ack->status_code != 0) {
          last_ack_error_ = Status::FromCode(
              static_cast<StatusCode>(ack->status_code), ack->message);
        }
        cv_.notify_all();
      }
      TrySend();
      return;
    }

    case FrameType::kCreditGrant: {
      auto grant = CreditGrantFrame::Decode(frame.payload);
      if (!grant.ok()) break;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        credits_ += grant->credits;
        credit_requested_ = false;  // partial grants trigger a re-request
        cv_.notify_all();
      }
      TrySend();
      return;
    }

    case FrameType::kEventPush: {
      auto push = EventPushFrame::Decode(frame.payload);
      if (!push.ok()) break;
      EventConsumer consumer;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto hit = handle_by_server_.find(push->registration_id);
        if (hit != handle_by_server_.end()) {
          auto eit = events_.find(hit->second);
          if (eit != events_.end()) consumer = eit->second.consumer;
        }
        ++stats_.events_received;
      }
      if (consumer) {
        Event event;
        event.name = push->event_name;
        event.args = std::move(push->args);
        consumer(event);
      }
      return;
    }

    case FrameType::kPong: {
      auto pong = PongFrame::Decode(frame.payload);
      if (!pong.ok()) break;
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_pings_.find(pong->nonce);
      if (it != pending_pings_.end()) {
        it->second->done = true;
        pending_pings_.erase(it);
        cv_.notify_all();
      }
      return;
    }

    case FrameType::kGoodbye: {
      auto bye = GoodbyeFrame::Decode(frame.payload);
      TMAN_LOG(kInfo) << "server said goodbye: "
                      << (bye.ok() ? bye->reason : "<garbled>");
      std::lock_guard<std::mutex> lock(mutex_);
      // An orderly goodbye is the server telling us to stop — likely a
      // protocol violation on our side. Don't reconnect-loop into it.
      terminal_ = true;
      HandleDisconnectLocked();
      return;
    }

    case FrameType::kPing: {
      auto ping = PingFrame::Decode(frame.payload);
      if (!ping.ok()) break;
      std::shared_ptr<Transport> transport;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!connected_) return;
        transport = transport_;
      }
      std::string payload;
      ping->Encode(&payload);
      std::lock_guard<std::mutex> wlock(write_mutex_);
      (void)WriteFrame(transport.get(), FrameType::kPong, payload, io_);
      return;
    }

    default:
      break;
  }
  // Garbled payload or a frame type a server must not send: the stream
  // can no longer be trusted.
  TMAN_LOG(kWarn) << "dropping connection on unexpected "
                  << FrameTypeName(frame.type) << " frame";
  std::lock_guard<std::mutex> lock(mutex_);
  terminal_ = true;
  HandleDisconnectLocked();
}

// --- sending ---------------------------------------------------------------

void RemoteClient::SealBatchLocked() {
  if (current_.empty()) return;
  if (options_.backpressure == BackpressurePolicy::kShed) {
    uint64_t committed = 0;
    for (const Batch& b : queued_) committed += b.updates.size();
    for (const Batch& b : inflight_) committed += b.updates.size();
    if (!connected_ || credits_ < committed + current_.size()) {
      stats_.updates_shed += current_.size();
      current_.clear();
      return;
    }
  }
  Batch batch;
  batch.first_seq = next_seq_;
  next_seq_ += current_.size();
  batch.updates = std::move(current_);
  current_.clear();
  queued_.push_back(std::move(batch));
}

void RemoteClient::TrySend() {
  DrainSendQueue();
  FlushCreditRequest();
}

void RemoteClient::DrainSendQueue() {
  while (true) {
    std::shared_ptr<Transport> transport;
    std::string payload;
    size_t n = 0;
    uint64_t first_seq = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (sending_ || !connected_ || queued_.empty()) return;
      n = queued_.front().updates.size();
      if (credits_ < n) {
        ++stats_.credit_stalls;
        RequestCreditsLocked();
        return;
      }
      sending_ = true;
      credits_ -= n;
      transport = transport_;
      UpdateBatchFrame f;
      f.first_seq = queued_.front().first_seq;
      f.updates = queued_.front().updates;  // copied: kept for resend
      f.Encode(&payload);
      first_seq = f.first_seq;
      // Into inflight_ BEFORE the write: the server's ack can overtake the
      // write call's own return (it only needs the bytes, not our resumed
      // thread), and the ack handler must find the batch to retire it.
      inflight_.push_back(std::move(queued_.front()));
      queued_.pop_front();
    }
    Status s;
    {
      std::lock_guard<std::mutex> wlock(write_mutex_);
      s = WriteFrame(transport.get(), FrameType::kUpdateBatch, payload, io_);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sending_ = false;
      if (!connected_ || transport_ != transport) {
        // A disconnect raced the write; HandleDisconnectLocked has already
        // pushed inflight_ back to the send queue and the reconnect path
        // decides (via the server's resume point) whether the server saw
        // the batch.
        cv_.notify_all();
        return;
      }
      if (!s.ok()) {
        // Write failed on a live connection: the server never saw the
        // frame, so pull the batch back for a later retry — unless the
        // impossible-in-practice happened and an ack retired it already.
        if (!inflight_.empty() && inflight_.back().first_seq == first_seq) {
          queued_.push_front(std::move(inflight_.back()));
          inflight_.pop_back();
          credits_ += n;  // refund; the reader will notice a dead stream
        }
        cv_.notify_all();
        return;
      }
      ++stats_.batches_sent;
      stats_.updates_sent += n;
      cv_.notify_all();
    }
  }
}

Status RemoteClient::WaitQueuedDrainLocked(std::unique_lock<std::mutex>* lock) {
  auto deadline = std::chrono::steady_clock::now() + options_.send_timeout;
  while (!queued_.empty()) {
    if (stopping_ || terminal_) {
      return Status::Aborted("connection closed with updates still queued");
    }
    if (cv_.wait_until(*lock, deadline) == std::cv_status::timeout) {
      ++stats_.credit_stalls;
      return Status::ResourceExhausted(
          "timed out waiting for server credits (queued updates remain "
          "buffered)");
    }
  }
  return Status::OK();
}

// --- public API -------------------------------------------------------------

Status RemoteClient::SubmitUpdate(const UpdateDescriptor& update) {
  bool full = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || terminal_) return Status::Aborted("client closed");
    if (current_.empty()) {
      current_started_ = std::chrono::steady_clock::now();
    }
    current_.push_back(update);
    ++stats_.updates_submitted;
    full = current_.size() >= options_.batch_max_updates;
  }
  if (full) return Flush();
  return Status::OK();
}

Status RemoteClient::Flush() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || terminal_) return Status::Aborted("client closed");
    SealBatchLocked();
  }
  TrySend();
  if (options_.backpressure == BackpressurePolicy::kBlock) {
    std::unique_lock<std::mutex> lock(mutex_);
    return WaitQueuedDrainLocked(&lock);
  }
  return Status::OK();
}

Status RemoteClient::Drain() {
  TMAN_RETURN_IF_ERROR(Flush());
  std::unique_lock<std::mutex> lock(mutex_);
  auto deadline = std::chrono::steady_clock::now() + options_.send_timeout;
  while (!queued_.empty() || !inflight_.empty()) {
    if (stopping_ || terminal_) {
      return Status::Aborted("connection closed before drain completed");
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::ResourceExhausted("drain timed out");
    }
  }
  Status s = last_ack_error_;
  last_ack_error_ = Status::OK();
  return s;
}

Status RemoteClient::SendRequest(FrameType type, std::string payload,
                                 uint64_t request_id,
                                 CommandReplyFrame* reply) {
  Waiter waiter;
  std::shared_ptr<Transport> transport;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Commands tolerate a reconnect in progress: wait for the session to
    // come back rather than failing instantly.
    cv_.wait_for(lock, options_.command_timeout, [&] {
      return connected_ || stopping_ || terminal_;
    });
    if (stopping_ || terminal_ || !connected_) {
      return Status::Aborted("not connected");
    }
    pending_[request_id] = &waiter;
    transport = transport_;
  }
  Status s;
  {
    std::lock_guard<std::mutex> wlock(write_mutex_);
    s = WriteFrame(transport.get(), type, payload, io_);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!s.ok()) {
    pending_.erase(request_id);
    return s;
  }
  bool done = cv_.wait_for(lock, options_.command_timeout,
                           [&] { return waiter.done; });
  if (!done) {
    pending_.erase(request_id);
    return Status::IoError("request timed out");
  }
  if (waiter.reply.status_code != 0) {
    return Status::FromCode(static_cast<StatusCode>(waiter.reply.status_code),
                            waiter.reply.message);
  }
  *reply = std::move(waiter.reply);
  return Status::OK();
}

Result<std::string> RemoteClient::Command(std::string_view text) {
  uint64_t request_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    request_id = next_request_id_++;
  }
  CommandFrame cmd;
  cmd.request_id = request_id;
  cmd.text = std::string(text);
  std::string payload;
  cmd.Encode(&payload);
  CommandReplyFrame reply;
  TMAN_RETURN_IF_ERROR(
      SendRequest(FrameType::kCommand, std::move(payload), request_id,
                  &reply));
  return reply.result;
}

Result<uint64_t> RemoteClient::RegisterForEvent(const std::string& event_name,
                                                EventConsumer consumer) {
  uint64_t request_id;
  uint64_t handle;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    request_id = next_request_id_++;
    handle = next_handle_++;
  }
  EventRegisterFrame reg;
  reg.request_id = request_id;
  reg.event_name = event_name;
  std::string payload;
  reg.Encode(&payload);
  CommandReplyFrame reply;
  TMAN_RETURN_IF_ERROR(
      SendRequest(FrameType::kEventRegister, std::move(payload), request_id,
                  &reply));
  uint64_t server_id = std::strtoull(reply.result.c_str(), nullptr, 10);
  std::lock_guard<std::mutex> lock(mutex_);
  events_[handle] = EventReg{event_name, std::move(consumer), server_id};
  handle_by_server_[server_id] = handle;
  return handle;
}

Status RemoteClient::Unregister(uint64_t handle) {
  uint64_t server_id = 0;
  std::shared_ptr<Transport> transport;
  bool send = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = events_.find(handle);
    if (it == events_.end()) {
      return Status::NotFound("unknown event registration handle");
    }
    server_id = it->second.server_id;
    handle_by_server_.erase(server_id);
    events_.erase(it);
    send = connected_;
    transport = transport_;
  }
  if (!send) return Status::OK();  // won't be re-registered on reconnect
  EventUnregisterFrame unreg;
  unreg.registration_id = server_id;
  std::string payload;
  unreg.Encode(&payload);
  std::lock_guard<std::mutex> wlock(write_mutex_);
  return WriteFrame(transport.get(), FrameType::kEventUnregister, payload,
                    io_);
}

Status RemoteClient::Ping() {
  Waiter waiter;
  uint64_t nonce;
  std::shared_ptr<Transport> transport;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!connected_) return Status::Aborted("not connected");
    nonce = next_request_id_++;
    pending_pings_[nonce] = &waiter;
    transport = transport_;
  }
  PingFrame ping;
  ping.nonce = nonce;
  std::string payload;
  ping.Encode(&payload);
  Status s;
  {
    std::lock_guard<std::mutex> wlock(write_mutex_);
    s = WriteFrame(transport.get(), FrameType::kPing, payload, io_);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!s.ok()) {
    pending_pings_.erase(nonce);
    return s;
  }
  bool done = cv_.wait_for(lock, options_.command_timeout,
                           [&] { return waiter.done; });
  if (!done) {
    pending_pings_.erase(nonce);
    return Status::IoError("ping timed out");
  }
  if (waiter.reply.status_code != 0) {
    return Status::FromCode(static_cast<StatusCode>(waiter.reply.status_code),
                            "ping failed");
  }
  return Status::OK();
}

}  // namespace tman
