#ifndef TRIGGERMAN_TYPES_SCHEMA_H_
#define TRIGGERMAN_TYPES_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/data_type.h"
#include "util/result.h"

namespace tman {

/// One attribute of a relation: name, type, and optional declared width
/// for char/varchar (0 = unbounded).
struct Field {
  std::string name;
  DataType type = DataType::kInt;
  uint32_t width = 0;

  Field() = default;
  Field(std::string n, DataType t, uint32_t w = 0)
      : name(std::move(n)), type(t), width(w) {}

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && width == other.width;
  }
};

/// An ordered list of fields describing a tuple layout. Field names are
/// case-insensitive on lookup (the command language is case-insensitive).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or -1 if absent.
  int FieldIndex(std::string_view name) const;

  /// Like FieldIndex but returns a Status error mentioning the name.
  Result<size_t> RequireField(std::string_view name) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// "(a int, b varchar)" rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace tman

#endif  // TRIGGERMAN_TYPES_SCHEMA_H_
