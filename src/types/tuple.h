#ifndef TRIGGERMAN_TYPES_TUPLE_H_
#define TRIGGERMAN_TYPES_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace tman {

/// A row of values. Tuples are schema-agnostic containers; interpretation
/// (names -> positions) goes through a Schema at the call site.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  bool operator==(const Tuple& other) const {
    return CompareValues(values_, other.values_) == 0;
  }

  uint64_t Hash() const { return HashValues(values_); }

  /// Serializes into `out` (appended). Self-describing format; schema is
  /// only needed for validation, not decoding.
  void Serialize(std::string* out) const;

  /// Decodes a tuple previously produced by Serialize. `pos` is advanced
  /// past the consumed bytes.
  static Result<Tuple> Deserialize(std::string_view data, size_t* pos);

  std::string ToString() const { return ValuesToString(values_); }

 private:
  std::vector<Value> values_;
};

/// Validates that tuple value types match the schema (NULL matches any) and
/// casts int<->float where the schema demands it. Returns the coerced tuple.
Result<Tuple> CoerceToSchema(const Tuple& tuple, const Schema& schema);

}  // namespace tman

#endif  // TRIGGERMAN_TYPES_TUPLE_H_
