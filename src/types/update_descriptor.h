#ifndef TRIGGERMAN_TYPES_UPDATE_DESCRIPTOR_H_
#define TRIGGERMAN_TYPES_UPDATE_DESCRIPTOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "types/tuple.h"

namespace tman {

/// Identifier of a data source (a table in a local/remote database, or a
/// stream of tuples from an application program).
using DataSourceId = uint32_t;

/// Update event operation codes. kInsertOrUpdate appears only in
/// expression signatures (a tuple variable with no explicit `on` event is
/// implicitly insert-or-update); concrete tokens carry one of the first
/// three.
enum class OpCode : uint8_t {
  kInsert = 0,
  kDelete = 1,
  kUpdate = 2,
  kInsertOrUpdate = 3,
};

std::string_view OpCodeName(OpCode op);

/// An update descriptor — the paper's "token". It consists of a data
/// source ID, an operation code, and an old tuple, new tuple, or old/new
/// tuple pair (old for deletes, new for inserts, both for updates).
struct UpdateDescriptor {
  DataSourceId data_source = 0;
  OpCode op = OpCode::kInsert;
  std::optional<Tuple> old_tuple;
  std::optional<Tuple> new_tuple;

  static UpdateDescriptor Insert(DataSourceId ds, Tuple t) {
    UpdateDescriptor u;
    u.data_source = ds;
    u.op = OpCode::kInsert;
    u.new_tuple = std::move(t);
    return u;
  }
  static UpdateDescriptor Delete(DataSourceId ds, Tuple t) {
    UpdateDescriptor u;
    u.data_source = ds;
    u.op = OpCode::kDelete;
    u.old_tuple = std::move(t);
    return u;
  }
  static UpdateDescriptor Update(DataSourceId ds, Tuple old_t, Tuple new_t) {
    UpdateDescriptor u;
    u.data_source = ds;
    u.op = OpCode::kUpdate;
    u.old_tuple = std::move(old_t);
    u.new_tuple = std::move(new_t);
    return u;
  }

  /// The tuple whose attribute values selection predicates test: the new
  /// tuple for inserts/updates, the old tuple for deletes.
  const Tuple& EffectiveTuple() const {
    return op == OpCode::kDelete ? *old_tuple : *new_tuple;
  }

  /// Serialization for the persistent update-descriptor queue table.
  void Serialize(std::string* out) const;
  static Result<UpdateDescriptor> Deserialize(std::string_view data);

  std::string ToString() const;
};

/// True if a token with opcode `token_op` satisfies an event condition
/// declared with `event_op` (kInsertOrUpdate matches insert and update).
inline bool OpMatches(OpCode event_op, OpCode token_op) {
  if (event_op == token_op) return true;
  return event_op == OpCode::kInsertOrUpdate &&
         (token_op == OpCode::kInsert || token_op == OpCode::kUpdate);
}

}  // namespace tman

#endif  // TRIGGERMAN_TYPES_UPDATE_DESCRIPTOR_H_
