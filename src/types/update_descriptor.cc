#include "types/update_descriptor.h"

#include <cstring>

namespace tman {

std::string_view OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kInsert:
      return "insert";
    case OpCode::kDelete:
      return "delete";
    case OpCode::kUpdate:
      return "update";
    case OpCode::kInsertOrUpdate:
      return "insertOrUpdate";
  }
  return "?";
}

void UpdateDescriptor::Serialize(std::string* out) const {
  char header[6];
  std::memcpy(header, &data_source, 4);
  header[4] = static_cast<char>(op);
  header[5] = static_cast<char>((old_tuple ? 1 : 0) | (new_tuple ? 2 : 0));
  out->append(header, 6);
  if (old_tuple) old_tuple->Serialize(out);
  if (new_tuple) new_tuple->Serialize(out);
}

Result<UpdateDescriptor> UpdateDescriptor::Deserialize(std::string_view data) {
  if (data.size() < 6) return Status::Corruption("update descriptor truncated");
  UpdateDescriptor u;
  std::memcpy(&u.data_source, data.data(), 4);
  u.op = static_cast<OpCode>(data[4]);
  uint8_t mask = static_cast<uint8_t>(data[5]);
  size_t pos = 6;
  if (mask & 1) {
    TMAN_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(data, &pos));
    u.old_tuple = std::move(t);
  }
  if (mask & 2) {
    TMAN_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(data, &pos));
    u.new_tuple = std::move(t);
  }
  return u;
}

std::string UpdateDescriptor::ToString() const {
  std::string out = "[ds=" + std::to_string(data_source) + " " +
                    std::string(OpCodeName(op));
  if (old_tuple) out += " old=" + old_tuple->ToString();
  if (new_tuple) out += " new=" + new_tuple->ToString();
  out += "]";
  return out;
}

}  // namespace tman
