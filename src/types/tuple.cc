#include "types/tuple.h"

#include <cstring>

namespace tman {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagFloat = 2;
constexpr uint8_t kTagString = 3;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

void Tuple::Serialize(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) {
    if (v.is_null()) {
      out->push_back(static_cast<char>(kTagNull));
    } else if (v.is_int()) {
      out->push_back(static_cast<char>(kTagInt));
      PutU64(out, static_cast<uint64_t>(v.as_int()));
    } else if (v.is_float()) {
      out->push_back(static_cast<char>(kTagFloat));
      uint64_t bits;
      double d = v.as_float();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
    } else {
      out->push_back(static_cast<char>(kTagString));
      const std::string& s = v.as_string();
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
    }
  }
}

Result<Tuple> Tuple::Deserialize(std::string_view data, size_t* pos) {
  uint32_t count = 0;
  if (!GetU32(data, pos, &count)) {
    return Status::Corruption("tuple header truncated");
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (*pos >= data.size()) return Status::Corruption("tuple truncated");
    uint8_t tag = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    switch (tag) {
      case kTagNull:
        values.push_back(Value::Null());
        break;
      case kTagInt: {
        uint64_t raw;
        if (!GetU64(data, pos, &raw)) {
          return Status::Corruption("int value truncated");
        }
        values.push_back(Value::Int(static_cast<int64_t>(raw)));
        break;
      }
      case kTagFloat: {
        uint64_t raw;
        if (!GetU64(data, pos, &raw)) {
          return Status::Corruption("float value truncated");
        }
        double d;
        std::memcpy(&d, &raw, 8);
        values.push_back(Value::Float(d));
        break;
      }
      case kTagString: {
        uint32_t len;
        if (!GetU32(data, pos, &len) || *pos + len > data.size()) {
          return Status::Corruption("string value truncated");
        }
        values.push_back(
            Value::String(std::string(data.substr(*pos, len))));
        *pos += len;
        break;
      }
      default:
        return Status::Corruption("bad value tag");
    }
  }
  return Tuple(std::move(values));
}

Result<Tuple> CoerceToSchema(const Tuple& tuple, const Schema& schema) {
  if (tuple.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " +
        std::to_string(schema.num_fields()));
  }
  std::vector<Value> out;
  out.reserve(tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) {
      out.push_back(v);
      continue;
    }
    TMAN_ASSIGN_OR_RETURN(Value coerced, v.CastTo(schema.field(i).type));
    out.push_back(std::move(coerced));
  }
  return Tuple(std::move(out));
}

}  // namespace tman
