#ifndef TRIGGERMAN_TYPES_DATA_TYPE_H_
#define TRIGGERMAN_TYPES_DATA_TYPE_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace tman {

/// Data types supported by the TriggerMan object-relational model. The
/// paper's current implementation supports char, varchar, integer and
/// float; that is exactly the set implemented here (user-defined types are
/// listed as future work in the paper).
enum class DataType {
  kInt = 0,
  kFloat = 1,
  kChar = 2,     // fixed-width string (padded semantics relaxed: stored trimmed)
  kVarchar = 3,  // variable-width string
};

/// Returns "int", "float", "char" or "varchar".
std::string_view DataTypeName(DataType type);

/// Parses a type name (case-insensitive). Accepts optional "(n)" suffixes
/// for char/varchar, which are recorded by Field, not here.
Result<DataType> DataTypeFromName(std::string_view name);

/// True for int/float.
inline bool IsNumeric(DataType type) {
  return type == DataType::kInt || type == DataType::kFloat;
}

/// True for char/varchar.
inline bool IsString(DataType type) {
  return type == DataType::kChar || type == DataType::kVarchar;
}

/// True if values of the two types may be compared with relational
/// operators (numeric with numeric, string with string).
inline bool Comparable(DataType a, DataType b) {
  return (IsNumeric(a) && IsNumeric(b)) || (IsString(a) && IsString(b));
}

}  // namespace tman

#endif  // TRIGGERMAN_TYPES_DATA_TYPE_H_
