#ifndef TRIGGERMAN_TYPES_VALUE_H_
#define TRIGGERMAN_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "types/data_type.h"
#include "util/hash.h"
#include "util/result.h"

namespace tman {

/// A single runtime value: NULL, 64-bit integer, double, or string.
/// Char and varchar share the string representation. Values are small,
/// copyable, and hashable; they are the currency of expression evaluation,
/// constant tables, and the predicate index.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Float(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_float() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_float(); }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_float() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Borrowing accessors: payload pointer when the value currently holds
  /// that alternative, nullptr otherwise. One tag check, no throw path —
  /// preferred in evaluation inner loops.
  const int64_t* if_int() const { return std::get_if<int64_t>(&data_); }
  const double* if_float() const { return std::get_if<double>(&data_); }
  const std::string* if_string() const {
    return std::get_if<std::string>(&data_);
  }

  /// In-place mutation, avoiding a temporary Value on assignment-heavy
  /// paths (VM registers).
  void SetNull() { data_.emplace<std::monostate>(); }
  void SetInt(int64_t v) { data_.emplace<int64_t>(v); }
  void SetFloat(double v) { data_.emplace<double>(v); }

  /// Numeric value widened to double (int or float). Undefined for others.
  double AsDouble() const {
    return is_int() ? static_cast<double>(as_int()) : as_float();
  }

  /// Dynamic type of this value; NULL reports kVarchar by convention but
  /// callers should check is_null() first.
  DataType type() const;

  /// Three-way comparison. Returns <0, 0, >0. NULLs compare equal to each
  /// other and less than every non-NULL value (total order for indexing).
  /// Numeric values compare across int/float; comparing a numeric with a
  /// string orders by type tag (stable but arbitrary — expression
  /// evaluation rejects such comparisons before they get here).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable 64-bit hash, consistent with Compare (equal values hash equal;
  /// int 3 and float 3.0 hash the same).
  uint64_t Hash() const;

  /// Coerces this value to `target`. Int<->float widen/narrow; string
  /// conversions parse/print. Fails on lossy garbage (e.g. "abc" -> int).
  Result<Value> CastTo(DataType target) const;

  /// SQL-ish literal rendering: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

 private:
  using Payload = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Payload p) : data_(std::move(p)) {}

  Payload data_;
};

/// Hash of a composite key (e.g. [const1..constK] in a constant table).
uint64_t HashValues(const std::vector<Value>& values);

/// Lexicographic comparison of two value vectors.
int CompareValues(const std::vector<Value>& a, const std::vector<Value>& b);

/// Renders "(v1, v2, ...)".
std::string ValuesToString(const std::vector<Value>& values);

}  // namespace tman

#endif  // TRIGGERMAN_TYPES_VALUE_H_
