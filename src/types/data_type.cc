#include "types/data_type.h"

#include "util/string_util.h"

namespace tman {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt:
      return "int";
    case DataType::kFloat:
      return "float";
    case DataType::kChar:
      return "char";
    case DataType::kVarchar:
      return "varchar";
  }
  return "unknown";
}

Result<DataType> DataTypeFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "int" || lower == "integer") return DataType::kInt;
  if (lower == "float" || lower == "double" || lower == "real") {
    return DataType::kFloat;
  }
  if (lower == "char") return DataType::kChar;
  if (lower == "varchar" || lower == "text" || lower == "string") {
    return DataType::kVarchar;
  }
  return Status::InvalidArgument("unknown data type: " + std::string(name));
}

}  // namespace tman
