#include "types/value.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tman {

DataType Value::type() const {
  if (is_int()) return DataType::kInt;
  if (is_float()) return DataType::kFloat;
  return DataType::kVarchar;
}

int Value::Compare(const Value& other) const {
  // NULL ordering: NULL == NULL, NULL < non-NULL.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = as_int();
      int64_t b = other.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    int c = as_string().compare(other.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed numeric/string: order by type tag for index stability.
  int a = is_string() ? 1 : 0;
  int b = other.is_string() ? 1 : 0;
  return a - b;
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x9ae16a3b2f90404fULL;
  if (is_numeric()) {
    // Hash ints and integral floats identically so 3 == 3.0 stays
    // consistent between Compare and Hash.
    double d = AsDouble();
    double integral;
    if (std::modf(d, &integral) == 0.0 && integral >= -9.2e18 &&
        integral <= 9.2e18) {
      auto i = static_cast<int64_t>(integral);
      return MixInt(static_cast<uint64_t>(i) ^ 0x2545f4914f6cdd1dULL);
    }
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return MixInt(bits);
  }
  return HashString(as_string());
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  switch (target) {
    case DataType::kInt: {
      if (is_int()) return *this;
      if (is_float()) return Value::Int(static_cast<int64_t>(as_float()));
      errno = 0;
      char* end = nullptr;
      const std::string& s = as_string();
      long long v = std::strtoll(s.c_str(), &end, 10);
      if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::TypeError("cannot cast '" + s + "' to int");
      }
      return Value::Int(v);
    }
    case DataType::kFloat: {
      if (is_float()) return *this;
      if (is_int()) return Value::Float(static_cast<double>(as_int()));
      errno = 0;
      char* end = nullptr;
      const std::string& s = as_string();
      double v = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::TypeError("cannot cast '" + s + "' to float");
      }
      return Value::Float(v);
    }
    case DataType::kChar:
    case DataType::kVarchar: {
      if (is_string()) return *this;
      return Value::String(ToString());
    }
  }
  return Status::TypeError("unknown cast target");
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_float()) {
    // %.17g round-trips every double exactly; predicates rendered to text
    // (constant tables, catalogs) must re-parse to the same value.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", as_float());
    return buf;
  }
  // SQL-style quoting with '' escaping embedded quotes.
  std::string out = "'";
  for (char c : as_string()) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

uint64_t HashValues(const std::vector<Value>& values) {
  uint64_t h = 0x51ed270b4d2f2c8dULL;
  for (const Value& v : values) h = HashCombine(h, v.Hash());
  return h;
}

int CompareValues(const std::vector<Value>& a, const std::vector<Value>& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

std::string ValuesToString(const std::vector<Value>& values) {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace tman
