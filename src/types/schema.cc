#include "types/schema.h"

#include "util/string_util.h"

namespace tman {

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::RequireField(std::string_view name) const {
  int i = FieldIndex(name);
  if (i < 0) {
    return Status::NotFound("no such attribute: " + std::string(name));
  }
  return static_cast<size_t>(i);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
    if (fields_[i].width > 0) {
      out += "(" + std::to_string(fields_[i].width) + ")";
    }
  }
  out += ")";
  return out;
}

}  // namespace tman
