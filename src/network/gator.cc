#include "network/gator.h"

#include <algorithm>
#include <limits>

namespace tman {

Result<std::unique_ptr<GatorNetwork>> GatorNetwork::Build(
    const ConditionGraph& graph, std::vector<Schema> schemas) {
  if (schemas.size() != graph.nodes().size()) {
    return Status::InvalidArgument(
        "schema count does not match condition graph nodes");
  }
  if (graph.nodes().empty()) {
    return Status::InvalidArgument("empty condition graph");
  }
  std::unique_ptr<GatorNetwork> net(
      new GatorNetwork(graph, std::move(schemas)));
  size_t n = graph.nodes().size();
  net->alphas_.resize(n);
  net->betas_.resize(n);
  net->probes_.resize(n);
  // Static probe analysis: how does variable L equijoin the prefix? The
  // chosen conjunct keys both the alpha memory of L (for delta
  // propagation) and the beta memory of L-1 (for token arrival at L).
  for (size_t level = 1; level < n; ++level) {
    for (const ConditionGraph::Edge& e : graph.edges()) {
      size_t hi = std::max(e.a, e.b);
      size_t lo = std::min(e.a, e.b);
      if (hi != level) continue;
      for (const ExprPtr& c : e.join_conjuncts) {
        if (c->kind != ExprKind::kBinaryOp || c->bin_op != BinOp::kEq) {
          continue;
        }
        const ExprPtr& l = c->children[0];
        const ExprPtr& r = c->children[1];
        if (l->kind != ExprKind::kColumnRef ||
            r->kind != ExprKind::kColumnRef) {
          continue;
        }
        const std::string& hi_var = graph.nodes()[hi].info.var;
        const Expr* hi_side;
        const Expr* lo_side;
        if (l->tuple_var == hi_var) {
          hi_side = l.get();
          lo_side = r.get();
        } else if (r->tuple_var == hi_var) {
          hi_side = r.get();
          lo_side = l.get();
        } else {
          continue;
        }
        int cand_field = net->schemas_[hi].FieldIndex(hi_side->attribute);
        int prefix_field = net->schemas_[lo].FieldIndex(lo_side->attribute);
        if (cand_field < 0 || prefix_field < 0) continue;
        Probe& p = net->probes_[level];
        p.found = true;
        p.prefix_var = lo;
        p.prefix_field = static_cast<size_t>(prefix_field);
        p.cand_field = static_cast<size_t>(cand_field);
        break;
      }
      if (net->probes_[level].found) break;
    }
  }
  net->order_.resize(n);
  net->pos_of_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    net->order_[i] = i;
    net->pos_of_[i] = i;
  }
  net->identity_ = true;
  net->edge_attempts_.assign(graph.edges().size(), 0);
  net->edge_passes_.assign(graph.edges().size(), 0);
  net->CompilePredicates();
  return net;
}

void GatorNetwork::CompilePredicates() {
  edge_programs_.resize(graph_.edges().size());
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    size_t lo = std::min(e.a, e.b);
    size_t hi = std::max(e.a, e.b);
    BindingLayout layout;
    layout.Add(graph_.nodes()[lo].info.var, &schemas_[lo]);
    layout.Add(graph_.nodes()[hi].info.var, &schemas_[hi]);
    for (const ExprPtr& conjunct : e.join_conjuncts) {
      // Unqualified references resolved against just these two schemas
      // could dodge an ambiguity the interpreter would report with more
      // variables bound — leave those to the interpreter.
      bool unqualified = false;
      for (const std::string& v : ReferencedTupleVars(conjunct)) {
        if (v.empty()) unqualified = true;
      }
      edge_programs_[ei].push_back(
          unqualified ? nullptr : TryCompilePredicate(conjunct, layout));
    }
  }
  if (!graph_.catch_all().empty()) {
    BindingLayout full;
    for (size_t i = 0; i < graph_.nodes().size(); ++i) {
      full.Add(graph_.nodes()[i].info.var, &schemas_[i]);
    }
    for (const ExprPtr& conjunct : graph_.catch_all()) {
      catch_all_programs_.push_back(TryCompilePredicate(conjunct, full));
    }
  }
}

uint64_t GatorNetwork::AlphaKey(size_t var, const Tuple& tuple) const {
  const Probe& p = probes_[var];
  if (var == 0 || !p.found || p.cand_field >= tuple.size()) return 0;
  return tuple.at(p.cand_field).Hash();
}

uint64_t GatorNetwork::BetaKey(size_t level, const Row& row) const {
  // betas_[level] is probed by arrivals at level+1.
  if (level + 1 >= probes_.size()) return 0;
  const Probe& p = probes_[level + 1];
  if (!p.found || p.prefix_var >= row.size() ||
      p.prefix_field >= row[p.prefix_var].size()) {
    return 0;
  }
  return row[p.prefix_var].at(p.prefix_field).Hash();
}

Result<bool> GatorNetwork::JoinsSatisfied(const Row& prefix, size_t var,
                                          const Tuple& candidate) const {
  // Interpreter bindings are built lazily: the compiled programs cover
  // the common case without them.
  Bindings fallback;
  bool fallback_ready = false;
  const bool track = runtime_stats::enabled();
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    size_t hi = std::max(e.a, e.b);
    size_t lo = std::min(e.a, e.b);
    if (hi != var || lo >= prefix.size()) continue;
    if (track) ++edge_attempts_[ei];
    const Tuple* pair[2] = {&prefix[lo], &candidate};
    for (size_t ci = 0; ci < e.join_conjuncts.size(); ++ci) {
      const CompiledPredicate* prog = edge_programs_[ei][ci].get();
      if (prog != nullptr) {
        TMAN_ASSIGN_OR_RETURN(bool pass, prog->EvalBool(pair, 2));
        if (!pass) return false;
        continue;
      }
      if (!fallback_ready) {
        for (size_t i = 0; i < prefix.size(); ++i) {
          fallback.Bind(graph_.nodes()[i].info.var, &schemas_[i], &prefix[i]);
        }
        fallback.Bind(graph_.nodes()[var].info.var, &schemas_[var],
                      &candidate);
        fallback_ready = true;
      }
      TMAN_ASSIGN_OR_RETURN(bool pass,
                            EvalPredicate(e.join_conjuncts[ci], fallback));
      if (!pass) return false;
    }
    if (track) ++edge_passes_[ei];
  }
  return true;
}

Status GatorNetwork::JoinsSatisfiedBatch(
    const std::vector<const Row*>& prefixes, size_t var,
    const std::vector<const Tuple*>& candidates,
    std::vector<uint8_t>* pass) const {
  const size_t n = prefixes.size();
  pass->assign(n, 1);
  TokenBatch batch(2);
  BatchResult result;
  std::vector<uint32_t> live, sel;
  const bool track = runtime_stats::enabled();
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    size_t hi = std::max(e.a, e.b);
    size_t lo = std::min(e.a, e.b);
    if (hi != var) continue;
    if (std::none_of(pass->begin(), pass->end(),
                     [](uint8_t b) { return b != 0; })) {
      return Status::OK();
    }
    if (track) {
      uint64_t entered = 0;
      for (uint32_t i = 0; i < n; ++i) {
        if ((*pass)[i] != 0 && lo < prefixes[i]->size()) ++entered;
      }
      edge_attempts_[ei] += entered;
    }
    for (size_t ci = 0; ci < e.join_conjuncts.size(); ++ci) {
      // Lanes still passing and subject to this edge (a prefix too short
      // for `lo` skips the edge, as in the scalar path).
      live.clear();
      for (uint32_t i = 0; i < n; ++i) {
        if ((*pass)[i] != 0 && lo < prefixes[i]->size()) live.push_back(i);
      }
      if (live.empty()) break;
      const CompiledPredicate* prog = edge_programs_[ei][ci].get();
      if (prog != nullptr) {
        batch.Clear();
        for (uint32_t i : live) {
          batch.Append(&(*prefixes[i])[lo], candidates[i]);
        }
        sel.clear();
        TMAN_RETURN_IF_ERROR(prog->EvalBoolBatch(batch, &result, &sel));
        for (size_t k = 0; k < live.size(); ++k) {
          if (!result.ok(k)) return result.status(k);
        }
        for (uint32_t i : live) (*pass)[i] = 0;
        for (uint32_t k : sel) (*pass)[live[k]] = 1;
        continue;
      }
      for (uint32_t i : live) {
        Bindings fallback;
        const Row& prefix = *prefixes[i];
        for (size_t j = 0; j < prefix.size(); ++j) {
          fallback.Bind(graph_.nodes()[j].info.var, &schemas_[j], &prefix[j]);
        }
        fallback.Bind(graph_.nodes()[var].info.var, &schemas_[var],
                      candidates[i]);
        TMAN_ASSIGN_OR_RETURN(bool ok,
                              EvalPredicate(e.join_conjuncts[ci], fallback));
        if (!ok) (*pass)[i] = 0;
      }
    }
    if (track) {
      uint64_t exited = 0;
      for (uint32_t i = 0; i < n; ++i) {
        if ((*pass)[i] != 0 && lo < prefixes[i]->size()) ++exited;
      }
      edge_passes_[ei] += exited;
    }
  }
  return Status::OK();
}

Status GatorNetwork::FilterJoinCandidates(
    const std::vector<const Row*>& prefixes, size_t var,
    const std::vector<const Tuple*>& candidates,
    std::vector<uint8_t>* pass) const {
  if (prefixes.size() <= 1) {
    pass->assign(prefixes.size(), 0);
    if (!prefixes.empty()) {
      TMAN_ASSIGN_OR_RETURN(bool ok,
                            JoinsSatisfied(*prefixes[0], var, *candidates[0]));
      (*pass)[0] = ok ? 1 : 0;
    }
    return Status::OK();
  }
  return JoinsSatisfiedBatch(prefixes, var, candidates, pass);
}

Result<bool> GatorNetwork::CatchAllSatisfied(const Row& row) const {
  if (graph_.catch_all().empty()) return true;
  std::vector<const Tuple*> tuples(row.size());
  for (size_t i = 0; i < row.size(); ++i) tuples[i] = &row[i];
  bool full_row = row.size() == graph_.nodes().size();
  Bindings fallback;
  bool fallback_ready = false;
  for (size_t ci = 0; ci < graph_.catch_all().size(); ++ci) {
    const CompiledPredicate* prog =
        full_row ? catch_all_programs_[ci].get() : nullptr;
    if (prog != nullptr) {
      TMAN_ASSIGN_OR_RETURN(bool pass,
                            prog->EvalBool(tuples.data(), tuples.size()));
      if (!pass) return false;
      continue;
    }
    if (!fallback_ready) {
      for (size_t i = 0; i < row.size(); ++i) {
        fallback.Bind(graph_.nodes()[i].info.var, &schemas_[i], &row[i]);
      }
      fallback_ready = true;
    }
    TMAN_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(graph_.catch_all()[ci], fallback));
    if (!pass) return false;
  }
  return true;
}

Status GatorNetwork::Propagate(size_t node, const Tuple& tuple,
                               const FiringFn& fn) {
  size_t n = graph_.nodes().size();
  std::vector<Row> delta;
  // Join candidates are gathered first (hash probes only), then filtered
  // in one batched pass per level: compiled conjuncts see all pairs at
  // once instead of re-dispatching per pair. Collection is row-major in
  // memory order, so surviving rows — and therefore firings — appear in
  // exactly the scalar order.
  std::vector<const Row*> prefixes;
  std::vector<const Tuple*> cands;
  std::vector<uint8_t> pass;
  if (node == 0) {
    delta.push_back(Row{tuple});
  } else {
    const Probe& p = probes_[node];
    if (p.found && p.cand_field < tuple.size()) {
      auto range =
          betas_[node - 1].equal_range(tuple.at(p.cand_field).Hash());
      for (auto it = range.first; it != range.second; ++it) {
        prefixes.push_back(&it->second);
      }
    } else {
      for (const auto& [key, row] : betas_[node - 1]) {
        prefixes.push_back(&row);
      }
    }
    cands.assign(prefixes.size(), &tuple);
    TMAN_RETURN_IF_ERROR(FilterJoinCandidates(prefixes, node, cands, &pass));
    for (size_t i = 0; i < prefixes.size(); ++i) {
      if (pass[i] == 0) continue;
      Row extended = *prefixes[i];
      extended.push_back(tuple);
      delta.push_back(std::move(extended));
    }
  }
  for (const Row& row : delta) {
    betas_[node].emplace(BetaKey(node, row), row);
  }

  for (size_t level = node + 1; level < n && !delta.empty(); ++level) {
    const Probe& p = probes_[level];
    prefixes.clear();
    cands.clear();
    for (const Row& row : delta) {
      if (p.found && p.prefix_var < row.size() &&
          p.prefix_field < row[p.prefix_var].size()) {
        auto range = alphas_[level].equal_range(
            row[p.prefix_var].at(p.prefix_field).Hash());
        for (auto it = range.first; it != range.second; ++it) {
          prefixes.push_back(&row);
          cands.push_back(&it->second);
        }
      } else {
        for (const auto& [key, cand] : alphas_[level]) {
          prefixes.push_back(&row);
          cands.push_back(&cand);
        }
      }
    }
    TMAN_RETURN_IF_ERROR(FilterJoinCandidates(prefixes, level, cands, &pass));
    std::vector<Row> next;
    for (size_t i = 0; i < prefixes.size(); ++i) {
      if (pass[i] == 0) continue;
      Row extended = *prefixes[i];
      extended.push_back(*cands[i]);
      next.push_back(std::move(extended));
    }
    for (const Row& row : next) {
      betas_[level].emplace(BetaKey(level, row), row);
    }
    delta = std::move(next);
  }

  for (const Row& row : delta) {
    if (row.size() != n) continue;
    TMAN_ASSIGN_OR_RETURN(bool pass, CatchAllSatisfied(row));
    if (pass && fn) {
      if (identity_) {
        fn(row);
      } else {
        // Internal rows are in join-order positions; callers always see
        // the original declaration order.
        Row mapped(n);
        for (size_t p = 0; p < n; ++p) mapped[order_[p]] = row[p];
        fn(mapped);
      }
    }
  }
  return Status::OK();
}

Status GatorNetwork::AddTuple(NetworkNodeId node, const Tuple& tuple,
                              const FiringFn& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node >= graph_.nodes().size()) {
    return Status::InvalidArgument("bad network node id");
  }
  ++version_;
  const size_t pos = pos_of_[node];
  alphas_[pos].emplace(AlphaKey(pos, tuple), tuple);
  return Propagate(pos, tuple, fn);
}

Status GatorNetwork::AddTupleBatch(NetworkNodeId node,
                                   const std::vector<Tuple>& tuples,
                                   const BatchFiringFn& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node >= graph_.nodes().size()) {
    return Status::InvalidArgument("bad network node id");
  }
  ++version_;
  const size_t pos = pos_of_[node];
  // Alpha keys for the whole batch in one tight pass; the hash work is
  // hoisted out of the insert+propagate loop.
  std::vector<uint64_t> keys(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    keys[i] = AlphaKey(pos, tuples[i]);
  }
  for (size_t i = 0; i < tuples.size(); ++i) {
    alphas_[pos].emplace(keys[i], tuples[i]);
    FiringFn wrapped;
    if (fn) {
      wrapped = [&fn, i](const std::vector<Tuple>& bindings) {
        fn(i, bindings);
      };
    }
    TMAN_RETURN_IF_ERROR(Propagate(pos, tuples[i], wrapped));
  }
  return Status::OK();
}

Status GatorNetwork::RemoveTuple(NetworkNodeId node, const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = graph_.nodes().size();
  if (node >= n) return Status::InvalidArgument("bad network node id");
  ++version_;
  const size_t pos = pos_of_[node];

  // Remove one instance from the alpha memory.
  auto& alpha = alphas_[pos];
  auto range = alpha.equal_range(AlphaKey(pos, tuple));
  bool erased = false;
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == tuple) {
      alpha.erase(it);
      erased = true;
      break;
    }
  }
  if (!erased) return Status::OK();
  size_t remaining = 0;
  range = alpha.equal_range(AlphaKey(pos, tuple));
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == tuple) ++remaining;
  }

  // Drop every materialized row carrying the tuple at this position...
  for (size_t level = pos; level < n; ++level) {
    auto& rows = betas_[level];
    for (auto it = rows.begin(); it != rows.end();) {
      if (it->second[pos] == tuple) {
        it = rows.erase(it);
      } else {
        ++it;
      }
    }
  }
  // ...then re-derive the rows owed to identical duplicates still stored
  // (duplicates are rare; correctness over cleverness).
  for (size_t dup = 0; dup < remaining; ++dup) {
    TMAN_RETURN_IF_ERROR(Propagate(pos, tuple, nullptr));
  }
  return Status::OK();
}

size_t GatorNetwork::alpha_size(NetworkNodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node >= pos_of_.size()) return 0;
  return alphas_[pos_of_[node]].size();
}

size_t GatorNetwork::beta_size(size_t level) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return level < betas_.size() ? betas_[level].size() : 0;
}

size_t GatorNetwork::total_beta_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (size_t i = 1; i < betas_.size(); ++i) total += betas_[i].size();
  return total;
}

std::vector<GatorEdgeStats> GatorNetwork::EdgeStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GatorEdgeStats> out(graph_.edges().size());
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    out[ei].a = order_[e.a];
    out[ei].b = order_[e.b];
    out[ei].attempts = edge_attempts_[ei];
    out[ei].passes = edge_passes_[ei];
  }
  return out;
}

std::vector<size_t> GatorNetwork::current_order() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

uint64_t GatorNetwork::reorganizations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reorgs_;
}

double GatorNetwork::OrderCost(const std::vector<size_t>& order,
                               const std::vector<size_t>& sizes,
                               const std::vector<std::vector<double>>& sel,
                               const std::vector<std::vector<uint8_t>>& has_edge) {
  if (order.empty()) return 0;
  // Estimated rows at each level of the left-deep chain; the cost is
  // their sum — the work every arriving token's delta join walks over.
  double est = static_cast<double>(std::max<size_t>(sizes[order[0]], 1));
  double cost = est;
  for (size_t s = 1; s < order.size(); ++s) {
    size_t v = order[s];
    double width = static_cast<double>(std::max<size_t>(sizes[v], 1));
    double reduction = 1.0;
    for (size_t t = 0; t < s; ++t) {
      if (has_edge[v][order[t]] != 0) reduction *= sel[v][order[t]];
    }
    est = est * width * reduction;
    cost += est;
  }
  return cost;
}

std::vector<size_t> GatorNetwork::RecommendOrderLocked(
    double* current_cost, double* recommended_cost,
    uint64_t* total_attempts) const {
  const size_t n = graph_.nodes().size();
  std::vector<size_t> sizes(n);
  for (size_t v = 0; v < n; ++v) sizes[v] = alphas_[pos_of_[v]].size();

  // Pairwise observed selectivities in original ids; unobserved edges
  // default to 1.0 (no reduction claimed), so reordering is driven only
  // by evidence.
  std::vector<std::vector<double>> sel(n, std::vector<double>(n, 1.0));
  std::vector<std::vector<uint8_t>> has_edge(n, std::vector<uint8_t>(n, 0));
  uint64_t attempts_total = 0;
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    size_t a = order_[e.a];
    size_t b = order_[e.b];
    has_edge[a][b] = has_edge[b][a] = 1;
    attempts_total += edge_attempts_[ei];
    if (edge_attempts_[ei] > 0) {
      double s = static_cast<double>(edge_passes_[ei]) /
                 static_cast<double>(edge_attempts_[ei]);
      sel[a][b] = sel[b][a] = std::max(s, 1e-6);
    }
  }
  if (total_attempts != nullptr) *total_attempts = attempts_total;

  std::vector<size_t> best_order = order_;
  double best_cost = OrderCost(order_, sizes, sel, has_edge);
  if (current_cost != nullptr) *current_cost = best_cost;

  // Greedy from every possible first variable; keep the cheapest order.
  for (size_t first = 0; first < n; ++first) {
    std::vector<size_t> cand{first};
    std::vector<uint8_t> used(n, 0);
    used[first] = 1;
    while (cand.size() < n) {
      size_t pick = n;
      double pick_cost = std::numeric_limits<double>::infinity();
      for (size_t v = 0; v < n; ++v) {
        if (used[v] != 0) continue;
        cand.push_back(v);
        double c = OrderCost(cand, sizes, sel, has_edge);
        cand.pop_back();
        if (c < pick_cost) {
          pick_cost = c;
          pick = v;
        }
      }
      cand.push_back(pick);
      used[pick] = 1;
    }
    double c = OrderCost(cand, sizes, sel, has_edge);
    if (c < best_cost) {
      best_cost = c;
      best_order = cand;
    }
  }
  if (recommended_cost != nullptr) *recommended_cost = best_cost;
  return best_order;
}

std::vector<size_t> GatorNetwork::RecommendOrder() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return RecommendOrderLocked(nullptr, nullptr, nullptr);
}

Status GatorNetwork::Reorganize(const std::vector<size_t>& order) {
  uint64_t version = 0;
  std::vector<std::vector<Tuple>> by_pos;  // snapshot, already permuted
  ConditionGraph permuted;
  std::vector<Schema> pschemas;
  {
    // Stage 1: snapshot the alpha contents and version.
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t n = graph_.nodes().size();
    if (order.size() != n) {
      return Status::InvalidArgument("order size does not match network");
    }
    if (order == order_) return Status::OK();
    // rel[p] = current position of the variable moving to position p;
    // Permuted(rel) composes the new order over the active graph (and
    // validates that `order` is a permutation).
    std::vector<size_t> rel(n);
    for (size_t p = 0; p < n; ++p) {
      if (order[p] >= n) {
        return Status::InvalidArgument("order is not a permutation");
      }
      rel[p] = pos_of_[order[p]];
    }
    TMAN_ASSIGN_OR_RETURN(permuted, graph_.Permuted(rel));
    pschemas.resize(n);
    by_pos.resize(n);
    for (size_t p = 0; p < n; ++p) {
      pschemas[p] = schemas_[rel[p]];
      by_pos[p].reserve(alphas_[rel[p]].size());
      for (const auto& [key, t] : alphas_[rel[p]]) by_pos[p].push_back(t);
    }
    version = version_;
  }

  // Stage 2: build the permuted network off to the side — probe
  // analysis, predicate compilation and the full beta replay run with no
  // lock held, so matching continues on the old order meanwhile.
  // Firings stay suppressed: every replayed tuple already fired on
  // arrival.
  TMAN_ASSIGN_OR_RETURN(std::unique_ptr<GatorNetwork> fresh,
                        Build(permuted, std::move(pschemas)));
  for (size_t p = 0; p < by_pos.size(); ++p) {
    for (const Tuple& t : by_pos[p]) {
      TMAN_RETURN_IF_ERROR(fresh->AddTuple(p, t, nullptr));
    }
  }

  {
    // Stage 3: install iff nothing changed since the snapshot.
    std::lock_guard<std::mutex> lock(mutex_);
    if (version_ != version) {
      return Status::Aborted("gator network mutated during reorganization");
    }
    graph_ = std::move(fresh->graph_);
    schemas_ = std::move(fresh->schemas_);
    probes_ = std::move(fresh->probes_);
    edge_programs_ = std::move(fresh->edge_programs_);
    catch_all_programs_ = std::move(fresh->catch_all_programs_);
    alphas_ = std::move(fresh->alphas_);
    betas_ = std::move(fresh->betas_);
    order_ = order;
    identity_ = true;
    for (size_t p = 0; p < order.size(); ++p) {
      pos_of_[order[p]] = p;
      if (order[p] != p) identity_ = false;
    }
    ++reorgs_;
    // edge_attempts_/edge_passes_ carry over: permutation preserves the
    // edge list order, so index ei still names the same join edge.
  }
  return Status::OK();
}

Result<bool> GatorNetwork::MaybeReorganize(double min_gain_ratio,
                                           uint64_t min_attempts) {
  std::vector<size_t> order;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    double current = 0;
    double recommended = 0;
    uint64_t attempts = 0;
    order = RecommendOrderLocked(&current, &recommended, &attempts);
    if (attempts < min_attempts) return false;
    if (order == order_) return false;
    if (recommended <= 0 || current / recommended < min_gain_ratio) {
      return false;
    }
  }
  Status s = Reorganize(order);
  if (!s.ok()) return s;
  return true;
}

}  // namespace tman
