#include "network/gator.h"

#include <algorithm>

namespace tman {

Result<std::unique_ptr<GatorNetwork>> GatorNetwork::Build(
    const ConditionGraph& graph, std::vector<Schema> schemas) {
  if (schemas.size() != graph.nodes().size()) {
    return Status::InvalidArgument(
        "schema count does not match condition graph nodes");
  }
  if (graph.nodes().empty()) {
    return Status::InvalidArgument("empty condition graph");
  }
  std::unique_ptr<GatorNetwork> net(
      new GatorNetwork(graph, std::move(schemas)));
  size_t n = graph.nodes().size();
  net->alphas_.resize(n);
  net->betas_.resize(n);
  net->probes_.resize(n);
  // Static probe analysis: how does variable L equijoin the prefix? The
  // chosen conjunct keys both the alpha memory of L (for delta
  // propagation) and the beta memory of L-1 (for token arrival at L).
  for (size_t level = 1; level < n; ++level) {
    for (const ConditionGraph::Edge& e : graph.edges()) {
      size_t hi = std::max(e.a, e.b);
      size_t lo = std::min(e.a, e.b);
      if (hi != level) continue;
      for (const ExprPtr& c : e.join_conjuncts) {
        if (c->kind != ExprKind::kBinaryOp || c->bin_op != BinOp::kEq) {
          continue;
        }
        const ExprPtr& l = c->children[0];
        const ExprPtr& r = c->children[1];
        if (l->kind != ExprKind::kColumnRef ||
            r->kind != ExprKind::kColumnRef) {
          continue;
        }
        const std::string& hi_var = graph.nodes()[hi].info.var;
        const Expr* hi_side;
        const Expr* lo_side;
        if (l->tuple_var == hi_var) {
          hi_side = l.get();
          lo_side = r.get();
        } else if (r->tuple_var == hi_var) {
          hi_side = r.get();
          lo_side = l.get();
        } else {
          continue;
        }
        int cand_field = net->schemas_[hi].FieldIndex(hi_side->attribute);
        int prefix_field = net->schemas_[lo].FieldIndex(lo_side->attribute);
        if (cand_field < 0 || prefix_field < 0) continue;
        Probe& p = net->probes_[level];
        p.found = true;
        p.prefix_var = lo;
        p.prefix_field = static_cast<size_t>(prefix_field);
        p.cand_field = static_cast<size_t>(cand_field);
        break;
      }
      if (net->probes_[level].found) break;
    }
  }
  net->CompilePredicates();
  return net;
}

void GatorNetwork::CompilePredicates() {
  edge_programs_.resize(graph_.edges().size());
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    size_t lo = std::min(e.a, e.b);
    size_t hi = std::max(e.a, e.b);
    BindingLayout layout;
    layout.Add(graph_.nodes()[lo].info.var, &schemas_[lo]);
    layout.Add(graph_.nodes()[hi].info.var, &schemas_[hi]);
    for (const ExprPtr& conjunct : e.join_conjuncts) {
      // Unqualified references resolved against just these two schemas
      // could dodge an ambiguity the interpreter would report with more
      // variables bound — leave those to the interpreter.
      bool unqualified = false;
      for (const std::string& v : ReferencedTupleVars(conjunct)) {
        if (v.empty()) unqualified = true;
      }
      edge_programs_[ei].push_back(
          unqualified ? nullptr : TryCompilePredicate(conjunct, layout));
    }
  }
  if (!graph_.catch_all().empty()) {
    BindingLayout full;
    for (size_t i = 0; i < graph_.nodes().size(); ++i) {
      full.Add(graph_.nodes()[i].info.var, &schemas_[i]);
    }
    for (const ExprPtr& conjunct : graph_.catch_all()) {
      catch_all_programs_.push_back(TryCompilePredicate(conjunct, full));
    }
  }
}

uint64_t GatorNetwork::AlphaKey(size_t var, const Tuple& tuple) const {
  const Probe& p = probes_[var];
  if (var == 0 || !p.found || p.cand_field >= tuple.size()) return 0;
  return tuple.at(p.cand_field).Hash();
}

uint64_t GatorNetwork::BetaKey(size_t level, const Row& row) const {
  // betas_[level] is probed by arrivals at level+1.
  if (level + 1 >= probes_.size()) return 0;
  const Probe& p = probes_[level + 1];
  if (!p.found || p.prefix_var >= row.size() ||
      p.prefix_field >= row[p.prefix_var].size()) {
    return 0;
  }
  return row[p.prefix_var].at(p.prefix_field).Hash();
}

Result<bool> GatorNetwork::JoinsSatisfied(const Row& prefix, size_t var,
                                          const Tuple& candidate) const {
  // Interpreter bindings are built lazily: the compiled programs cover
  // the common case without them.
  Bindings fallback;
  bool fallback_ready = false;
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    size_t hi = std::max(e.a, e.b);
    size_t lo = std::min(e.a, e.b);
    if (hi != var || lo >= prefix.size()) continue;
    const Tuple* pair[2] = {&prefix[lo], &candidate};
    for (size_t ci = 0; ci < e.join_conjuncts.size(); ++ci) {
      const CompiledPredicate* prog = edge_programs_[ei][ci].get();
      if (prog != nullptr) {
        TMAN_ASSIGN_OR_RETURN(bool pass, prog->EvalBool(pair, 2));
        if (!pass) return false;
        continue;
      }
      if (!fallback_ready) {
        for (size_t i = 0; i < prefix.size(); ++i) {
          fallback.Bind(graph_.nodes()[i].info.var, &schemas_[i], &prefix[i]);
        }
        fallback.Bind(graph_.nodes()[var].info.var, &schemas_[var],
                      &candidate);
        fallback_ready = true;
      }
      TMAN_ASSIGN_OR_RETURN(bool pass,
                            EvalPredicate(e.join_conjuncts[ci], fallback));
      if (!pass) return false;
    }
  }
  return true;
}

Status GatorNetwork::JoinsSatisfiedBatch(
    const std::vector<const Row*>& prefixes, size_t var,
    const std::vector<const Tuple*>& candidates,
    std::vector<uint8_t>* pass) const {
  const size_t n = prefixes.size();
  pass->assign(n, 1);
  TokenBatch batch(2);
  BatchResult result;
  std::vector<uint32_t> live, sel;
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    size_t hi = std::max(e.a, e.b);
    size_t lo = std::min(e.a, e.b);
    if (hi != var) continue;
    if (std::none_of(pass->begin(), pass->end(),
                     [](uint8_t b) { return b != 0; })) {
      return Status::OK();
    }
    for (size_t ci = 0; ci < e.join_conjuncts.size(); ++ci) {
      // Lanes still passing and subject to this edge (a prefix too short
      // for `lo` skips the edge, as in the scalar path).
      live.clear();
      for (uint32_t i = 0; i < n; ++i) {
        if ((*pass)[i] != 0 && lo < prefixes[i]->size()) live.push_back(i);
      }
      if (live.empty()) break;
      const CompiledPredicate* prog = edge_programs_[ei][ci].get();
      if (prog != nullptr) {
        batch.Clear();
        for (uint32_t i : live) {
          batch.Append(&(*prefixes[i])[lo], candidates[i]);
        }
        sel.clear();
        TMAN_RETURN_IF_ERROR(prog->EvalBoolBatch(batch, &result, &sel));
        for (size_t k = 0; k < live.size(); ++k) {
          if (!result.ok(k)) return result.status(k);
        }
        for (uint32_t i : live) (*pass)[i] = 0;
        for (uint32_t k : sel) (*pass)[live[k]] = 1;
        continue;
      }
      for (uint32_t i : live) {
        Bindings fallback;
        const Row& prefix = *prefixes[i];
        for (size_t j = 0; j < prefix.size(); ++j) {
          fallback.Bind(graph_.nodes()[j].info.var, &schemas_[j], &prefix[j]);
        }
        fallback.Bind(graph_.nodes()[var].info.var, &schemas_[var],
                      candidates[i]);
        TMAN_ASSIGN_OR_RETURN(bool ok,
                              EvalPredicate(e.join_conjuncts[ci], fallback));
        if (!ok) (*pass)[i] = 0;
      }
    }
  }
  return Status::OK();
}

Status GatorNetwork::FilterJoinCandidates(
    const std::vector<const Row*>& prefixes, size_t var,
    const std::vector<const Tuple*>& candidates,
    std::vector<uint8_t>* pass) const {
  if (prefixes.size() <= 1) {
    pass->assign(prefixes.size(), 0);
    if (!prefixes.empty()) {
      TMAN_ASSIGN_OR_RETURN(bool ok,
                            JoinsSatisfied(*prefixes[0], var, *candidates[0]));
      (*pass)[0] = ok ? 1 : 0;
    }
    return Status::OK();
  }
  return JoinsSatisfiedBatch(prefixes, var, candidates, pass);
}

Result<bool> GatorNetwork::CatchAllSatisfied(const Row& row) const {
  if (graph_.catch_all().empty()) return true;
  std::vector<const Tuple*> tuples(row.size());
  for (size_t i = 0; i < row.size(); ++i) tuples[i] = &row[i];
  bool full_row = row.size() == graph_.nodes().size();
  Bindings fallback;
  bool fallback_ready = false;
  for (size_t ci = 0; ci < graph_.catch_all().size(); ++ci) {
    const CompiledPredicate* prog =
        full_row ? catch_all_programs_[ci].get() : nullptr;
    if (prog != nullptr) {
      TMAN_ASSIGN_OR_RETURN(bool pass,
                            prog->EvalBool(tuples.data(), tuples.size()));
      if (!pass) return false;
      continue;
    }
    if (!fallback_ready) {
      for (size_t i = 0; i < row.size(); ++i) {
        fallback.Bind(graph_.nodes()[i].info.var, &schemas_[i], &row[i]);
      }
      fallback_ready = true;
    }
    TMAN_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(graph_.catch_all()[ci], fallback));
    if (!pass) return false;
  }
  return true;
}

Status GatorNetwork::Propagate(size_t node, const Tuple& tuple,
                               const FiringFn& fn) {
  size_t n = graph_.nodes().size();
  std::vector<Row> delta;
  // Join candidates are gathered first (hash probes only), then filtered
  // in one batched pass per level: compiled conjuncts see all pairs at
  // once instead of re-dispatching per pair. Collection is row-major in
  // memory order, so surviving rows — and therefore firings — appear in
  // exactly the scalar order.
  std::vector<const Row*> prefixes;
  std::vector<const Tuple*> cands;
  std::vector<uint8_t> pass;
  if (node == 0) {
    delta.push_back(Row{tuple});
  } else {
    const Probe& p = probes_[node];
    if (p.found && p.cand_field < tuple.size()) {
      auto range =
          betas_[node - 1].equal_range(tuple.at(p.cand_field).Hash());
      for (auto it = range.first; it != range.second; ++it) {
        prefixes.push_back(&it->second);
      }
    } else {
      for (const auto& [key, row] : betas_[node - 1]) {
        prefixes.push_back(&row);
      }
    }
    cands.assign(prefixes.size(), &tuple);
    TMAN_RETURN_IF_ERROR(FilterJoinCandidates(prefixes, node, cands, &pass));
    for (size_t i = 0; i < prefixes.size(); ++i) {
      if (pass[i] == 0) continue;
      Row extended = *prefixes[i];
      extended.push_back(tuple);
      delta.push_back(std::move(extended));
    }
  }
  for (const Row& row : delta) {
    betas_[node].emplace(BetaKey(node, row), row);
  }

  for (size_t level = node + 1; level < n && !delta.empty(); ++level) {
    const Probe& p = probes_[level];
    prefixes.clear();
    cands.clear();
    for (const Row& row : delta) {
      if (p.found && p.prefix_var < row.size() &&
          p.prefix_field < row[p.prefix_var].size()) {
        auto range = alphas_[level].equal_range(
            row[p.prefix_var].at(p.prefix_field).Hash());
        for (auto it = range.first; it != range.second; ++it) {
          prefixes.push_back(&row);
          cands.push_back(&it->second);
        }
      } else {
        for (const auto& [key, cand] : alphas_[level]) {
          prefixes.push_back(&row);
          cands.push_back(&cand);
        }
      }
    }
    TMAN_RETURN_IF_ERROR(FilterJoinCandidates(prefixes, level, cands, &pass));
    std::vector<Row> next;
    for (size_t i = 0; i < prefixes.size(); ++i) {
      if (pass[i] == 0) continue;
      Row extended = *prefixes[i];
      extended.push_back(*cands[i]);
      next.push_back(std::move(extended));
    }
    for (const Row& row : next) {
      betas_[level].emplace(BetaKey(level, row), row);
    }
    delta = std::move(next);
  }

  for (const Row& row : delta) {
    if (row.size() != n) continue;
    TMAN_ASSIGN_OR_RETURN(bool pass, CatchAllSatisfied(row));
    if (pass && fn) fn(row);
  }
  return Status::OK();
}

Status GatorNetwork::AddTuple(NetworkNodeId node, const Tuple& tuple,
                              const FiringFn& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node >= graph_.nodes().size()) {
    return Status::InvalidArgument("bad network node id");
  }
  alphas_[node].emplace(AlphaKey(node, tuple), tuple);
  return Propagate(node, tuple, fn);
}

Status GatorNetwork::AddTupleBatch(NetworkNodeId node,
                                   const std::vector<Tuple>& tuples,
                                   const BatchFiringFn& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node >= graph_.nodes().size()) {
    return Status::InvalidArgument("bad network node id");
  }
  // Alpha keys for the whole batch in one tight pass; the hash work is
  // hoisted out of the insert+propagate loop.
  std::vector<uint64_t> keys(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    keys[i] = AlphaKey(node, tuples[i]);
  }
  for (size_t i = 0; i < tuples.size(); ++i) {
    alphas_[node].emplace(keys[i], tuples[i]);
    FiringFn wrapped;
    if (fn) {
      wrapped = [&fn, i](const std::vector<Tuple>& bindings) {
        fn(i, bindings);
      };
    }
    TMAN_RETURN_IF_ERROR(Propagate(node, tuples[i], wrapped));
  }
  return Status::OK();
}

Status GatorNetwork::RemoveTuple(NetworkNodeId node, const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = graph_.nodes().size();
  if (node >= n) return Status::InvalidArgument("bad network node id");

  // Remove one instance from the alpha memory.
  auto& alpha = alphas_[node];
  auto range = alpha.equal_range(AlphaKey(node, tuple));
  bool erased = false;
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == tuple) {
      alpha.erase(it);
      erased = true;
      break;
    }
  }
  if (!erased) return Status::OK();
  size_t remaining = 0;
  range = alpha.equal_range(AlphaKey(node, tuple));
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == tuple) ++remaining;
  }

  // Drop every materialized row carrying the tuple at this position...
  for (size_t level = node; level < n; ++level) {
    auto& rows = betas_[level];
    for (auto it = rows.begin(); it != rows.end();) {
      if (it->second[node] == tuple) {
        it = rows.erase(it);
      } else {
        ++it;
      }
    }
  }
  // ...then re-derive the rows owed to identical duplicates still stored
  // (duplicates are rare; correctness over cleverness).
  for (size_t dup = 0; dup < remaining; ++dup) {
    TMAN_RETURN_IF_ERROR(Propagate(node, tuple, nullptr));
  }
  return Status::OK();
}

size_t GatorNetwork::alpha_size(NetworkNodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node < alphas_.size() ? alphas_[node].size() : 0;
}

size_t GatorNetwork::beta_size(size_t level) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return level < betas_.size() ? betas_[level].size() : 0;
}

size_t GatorNetwork::total_beta_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (size_t i = 1; i < betas_.size(); ++i) total += betas_[i].size();
  return total;
}

}  // namespace tman
