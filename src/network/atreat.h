#ifndef TRIGGERMAN_NETWORK_ATREAT_H_
#define TRIGGERMAN_NETWORK_ATREAT_H_

#include <memory>
#include <optional>
#include <vector>

#include "db/database.h"
#include "expr/compile.h"
#include "expr/condition_graph.h"
#include "expr/eval.h"
#include "network/alpha_memory.h"
#include "predindex/predicate_entry.h"

namespace tman {

/// Options for building a trigger's A-TREAT network.
struct ATreatOptions {
  /// Use virtual alpha nodes (query the base table on demand instead of
  /// materializing the selection) for tuple variables whose data source
  /// is a local MiniDB table — the memory-saving device that
  /// distinguishes A-TREAT from TREAT. Stream sources are always stored.
  bool prefer_virtual = true;
};

/// The A-TREAT discrimination network of one trigger: one alpha node per
/// tuple variable (stored memory or virtual), join condition testing, and
/// a P-node that emits complete variable bindings (rule firings).
/// Selection predicates are NOT tested here — the shared predicate index
/// performs all selection testing and passes matched tokens to a network
/// node (the nextNetworkNode of §5.1).
class ATreatNetwork {
 public:
  /// A complete match: one tuple per graph node, aligned with
  /// graph().nodes().
  using FiringFn = std::function<void(const std::vector<Tuple>& bindings)>;

  /// `schemas` (aligned with graph nodes) supplies each tuple variable's
  /// schema; when empty, schemas are read from the database tables named
  /// by the graph (stream sources then require explicit schemas).
  static Result<std::unique_ptr<ATreatNetwork>> Build(
      const ConditionGraph& graph, Database* db, const ATreatOptions& options,
      const std::vector<Schema>& schemas = {});

  /// Fills stored memories for local-table sources from current table
  /// contents (the §5.1 "prime the trigger to make it ready to run").
  Status Prime();

  /// Memory maintenance: the tuple passed its node's selection predicate
  /// and must be added to / removed from the node's alpha memory. No-ops
  /// for virtual nodes and single-variable triggers.
  Status AddTuple(NetworkNodeId node, const Tuple& tuple) const;
  Status RemoveTuple(NetworkNodeId node, const Tuple& tuple) const;

  /// Join processing (§5.4): `tuple` arrived at `node` and already passed
  /// selection; enumerate combinations of tuples from the other alpha
  /// nodes satisfying every join predicate and catch-all conjunct, and
  /// call `fn` for each complete binding.
  Status MatchJoins(NetworkNodeId node, const Tuple& tuple,
                    const FiringFn& fn) const;

  const ConditionGraph& graph() const { return graph_; }
  size_t num_nodes() const { return graph_.nodes().size(); }
  bool node_stored(NetworkNodeId node) const {
    return nodes_[node].stored;
  }
  const Schema& node_schema(NetworkNodeId node) const {
    return nodes_[node].schema;
  }
  size_t memory_size(NetworkNodeId node) const {
    return nodes_[node].stored ? nodes_[node].memory->size() : 0;
  }

 private:
  struct AlphaNode {
    bool stored = true;
    std::unique_ptr<AlphaMemory> memory;  // stored nodes only
    Schema schema;
    /// The node's selection predicate compiled against its schema; null
    /// when there is no predicate, the schema is unknown, or compilation
    /// was refused (eval then falls back to the interpreter).
    std::shared_ptr<const CompiledPredicate> compiled_selection;
  };

  ATreatNetwork(ConditionGraph graph, Database* db)
      : graph_(std::move(graph)), db_(db) {}

  /// Depth-first enumeration over the remaining nodes.
  Status Enumerate(std::vector<std::optional<Tuple>>* bound,
                   const std::vector<size_t>& order, size_t depth,
                   const FiringFn& fn) const;

  /// Tests every join edge / catch-all conjunct fully bound by `bound`
  /// that involves `just_bound`.
  Result<bool> EdgesSatisfied(const std::vector<std::optional<Tuple>>& bound,
                              size_t just_bound) const;

  Result<bool> CatchAllSatisfied(
      const std::vector<std::optional<Tuple>>& bound) const;

  Bindings MakeBindings(const std::vector<std::optional<Tuple>>& bound) const;

  /// Compiles selection/join/catch-all predicates once schemas are known.
  void CompilePredicates();

  ConditionGraph graph_;
  Database* db_;
  std::vector<AlphaNode> nodes_;

  /// Compiled join conjuncts, aligned with graph_.edges() and each edge's
  /// join_conjuncts; layout is [node a, node b]. Null entries fall back
  /// to the interpreter over full bindings.
  std::vector<std::vector<std::shared_ptr<const CompiledPredicate>>>
      edge_programs_;

  /// Compiled catch-all conjuncts over the full node layout; evaluated
  /// only with every variable bound, so unqualified-name resolution
  /// matches the interpreter exactly.
  std::vector<std::shared_ptr<const CompiledPredicate>> catch_all_programs_;
};

}  // namespace tman

#endif  // TRIGGERMAN_NETWORK_ATREAT_H_
