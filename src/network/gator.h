#ifndef TRIGGERMAN_NETWORK_GATOR_H_
#define TRIGGERMAN_NETWORK_GATOR_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "expr/compile.h"
#include "expr/condition_graph.h"
#include "expr/eval.h"
#include "network/alpha_memory.h"
#include "predindex/predicate_entry.h"
#include "util/sharded_counter.h"

namespace tman {

/// Observed traffic on one join edge, in *original* variable ids (stable
/// across reorganizations): how many (prefix, candidate) pairs reached
/// the edge and how many passed all its conjuncts. passes/attempts is
/// the observed join selectivity the reorganizer feeds its cost model.
struct GatorEdgeStats {
  size_t a = 0;
  size_t b = 0;
  uint64_t attempts = 0;
  uint64_t passes = 0;
};

/// A Gator-style discrimination network ([Hans97b]; §3 of the paper:
/// "In the future, we plan to implement an optimized type of
/// discrimination network called a Gator network in TriggerMan").
///
/// Where A-TREAT re-joins the arriving token against the other alpha
/// memories from scratch, a Gator network materializes intermediate join
/// results in beta memories. This implementation uses a left-deep chain
/// over the condition-graph node order:
///
///   beta[1] = alpha[0] ⋈ alpha[1]
///   beta[2] = beta[1] ⋈ alpha[2]
///   ...
///
/// A +token at variable v joins the materialized prefix beta[v-1] once,
/// then propagates the delta up through alphas v+1..n-1; complete rows at
/// the top are rule firings. A -token deletes every beta row containing
/// the tuple. Classic time/space tradeoff: per-token work shrinks (no
/// prefix recomputation), beta memories cost space — the bench
/// `bench_gator` quantifies both against A-TREAT.
///
/// Scope: all variables use stored memories (stream-style sources), and
/// firings are emitted on tuple *arrival* — callers apply event-condition
/// filtering before feeding tokens. This component is provided as the
/// paper's planned extension; TriggerManager wires A-TREAT by default.
class GatorNetwork {
 public:
  using FiringFn = std::function<void(const std::vector<Tuple>& bindings)>;

  /// `schemas` must be aligned with the graph's nodes.
  static Result<std::unique_ptr<GatorNetwork>> Build(
      const ConditionGraph& graph, std::vector<Schema> schemas);

  /// Inserts a tuple (which already passed its node's selection) at
  /// `node`; emits a firing for every new complete join row.
  Status AddTuple(NetworkNodeId node, const Tuple& tuple,
                  const FiringFn& fn);

  /// Firing callback for batched arrival: `lane` is the index of the
  /// arriving tuple within the batch that produced the row.
  using BatchFiringFn =
      std::function<void(size_t lane, const std::vector<Tuple>& bindings)>;

  /// Batched arrival at one node: one mutex acquisition for the whole
  /// batch, alpha keys hashed in a tight pass up front, then each tuple
  /// inserted and propagated in order — firings and memory contents are
  /// exactly those of the equivalent AddTuple sequence (including the
  /// state left behind when a propagation errors mid-batch: the error is
  /// returned and later tuples stay un-inserted, as if the loop stopped).
  Status AddTupleBatch(NetworkNodeId node, const std::vector<Tuple>& tuples,
                       const BatchFiringFn& fn);

  /// Removes a tuple; all join rows containing it disappear.
  Status RemoveTuple(NetworkNodeId node, const Tuple& tuple);

  size_t alpha_size(NetworkNodeId node) const;
  /// Rows materialized at beta level i (1..n-1); level n-1 is the
  /// complete-match memory. Levels are *positions in the current join
  /// order* (they name intermediate results, which only exist relative
  /// to an order), unlike node ids, which always mean the original
  /// variables.
  size_t beta_size(size_t level) const;
  /// Total tuples held in beta memories (the space cost vs A-TREAT).
  size_t total_beta_rows() const;

  /// The *active* (possibly reorganized) graph.
  const ConditionGraph& graph() const { return graph_; }

  // --- adaptive join-order reorganization -------------------------------
  //
  // The left-deep chain's cost hangs on its variable order: joining the
  // selective edges first keeps every beta small. The initial order is
  // the declaration order; these methods let the re-optimizer replace it
  // at runtime from *observed* per-edge selectivities, under the same
  // snapshot/build-offside/version-checked-install protocol the
  // constant-set swap uses. Node ids in the public API always mean the
  // original declaration order, and firing bindings are always delivered
  // in it — callers never see the internal permutation.

  /// Per-edge observed traffic (original variable ids; order matches the
  /// original graph's edge list, which every permutation preserves).
  std::vector<GatorEdgeStats> EdgeStats() const;

  /// Current join order: position -> original variable id.
  std::vector<size_t> current_order() const;

  uint64_t reorganizations() const;

  /// Greedy cost-based order from current alpha sizes and observed edge
  /// selectivities: tries each variable first, then repeatedly appends
  /// the variable minimizing the estimated intermediate result, and
  /// keeps the cheapest full order. Returns original variable ids.
  std::vector<size_t> RecommendOrder() const;

  /// Rebuilds the network in `order` (original variable ids, a
  /// permutation of 0..n-1): snapshots the alpha memories and version
  /// under the lock, builds a fresh permuted network off to the side
  /// (replaying tuples with firings suppressed — arrival firings already
  /// happened), then re-locks and installs it iff the version is
  /// unchanged; a concurrent Add/RemoveTuple aborts the install
  /// (Status::Aborted) rather than losing the mutation. A no-op when
  /// `order` is already active.
  Status Reorganize(const std::vector<size_t>& order);

  /// RecommendOrder + hysteresis: reorganizes only when the edges have
  /// seen `min_attempts` join attempts and the modeled cost ratio of the
  /// current order over the recommended one clears `min_gain_ratio`.
  /// Returns whether a reorganization was installed.
  Result<bool> MaybeReorganize(double min_gain_ratio = 1.5,
                               uint64_t min_attempts = 256);

 private:
  GatorNetwork(ConditionGraph graph, std::vector<Schema> schemas)
      : graph_(std::move(graph)), schemas_(std::move(schemas)) {}

  /// A beta row: one tuple per variable 0..level.
  using Row = std::vector<Tuple>;

  /// Static equijoin probe for variable L against the prefix (analyzed at
  /// Build): keys the alpha memory of L and the beta memory of L-1 so
  /// delta joins are hash probes rather than scans.
  struct Probe {
    bool found = false;
    size_t prefix_var = 0;
    size_t prefix_field = 0;
    size_t cand_field = 0;
  };

  uint64_t AlphaKey(size_t var, const Tuple& tuple) const;
  uint64_t BetaKey(size_t level, const Row& row) const;

  /// Joins `tuple` (just stored at `node`) with the materialized prefix
  /// and propagates the delta to the top; complete rows are firings.
  /// Requires mutex_ held.
  Status Propagate(size_t node, const Tuple& tuple, const FiringFn& fn);

  /// Tests the join edges between variable `var` and variables < `var`,
  /// plus (at the top level) the catch-all conjuncts.
  Result<bool> JoinsSatisfied(const Row& prefix, size_t var,
                              const Tuple& candidate) const;

  /// Batched join-edge filter over many (prefix, candidate) pairs at
  /// `var`: compiled conjuncts run once per conjunct over the
  /// still-passing lanes via the batched VM (selection-vector
  /// short-circuit), interpreter conjuncts fall back per lane.
  /// `pass` is resized to the pair count; lane i survives iff its pair
  /// satisfies every applicable conjunct. Any lane's eval error aborts
  /// the call, matching the scalar path's error propagation.
  Status JoinsSatisfiedBatch(const std::vector<const Row*>& prefixes,
                             size_t var,
                             const std::vector<const Tuple*>& candidates,
                             std::vector<uint8_t>* pass) const;

  /// Dispatches between the scalar and batched join filters: single-pair
  /// calls stay on JoinsSatisfied (no batch setup cost), larger sets go
  /// through JoinsSatisfiedBatch.
  Status FilterJoinCandidates(const std::vector<const Row*>& prefixes,
                              size_t var,
                              const std::vector<const Tuple*>& candidates,
                              std::vector<uint8_t>* pass) const;
  Result<bool> CatchAllSatisfied(const Row& row) const;

  /// Compiles join and catch-all conjuncts against the node schemas.
  void CompilePredicates();

  /// Estimated total intermediate rows of a left-deep order (original
  /// ids) given per-variable alpha sizes and the pairwise selectivity /
  /// connectivity matrices. Requires mutex_ held (reads nothing mutable,
  /// but callers derive sel/sizes under it).
  static double OrderCost(const std::vector<size_t>& order,
                          const std::vector<size_t>& sizes,
                          const std::vector<std::vector<double>>& sel,
                          const std::vector<std::vector<uint8_t>>& has_edge);

  /// RecommendOrder body; requires mutex_ held. Also reports the modeled
  /// cost of the current and recommended orders and the total join
  /// attempts observed (the hysteresis inputs).
  std::vector<size_t> RecommendOrderLocked(double* current_cost,
                                           double* recommended_cost,
                                           uint64_t* total_attempts) const;

  ConditionGraph graph_;           // active (permuted) graph
  std::vector<Schema> schemas_;    // aligned with graph_ positions
  std::vector<Probe> probes_;      // per position; [0] unused

  /// Compiled join conjuncts aligned with graph_.edges(); layout is
  /// [min(a,b), max(a,b)]. Null entries use the interpreter fallback.
  std::vector<std::vector<std::shared_ptr<const CompiledPredicate>>>
      edge_programs_;
  /// Compiled catch-all conjuncts over the full node layout.
  std::vector<std::shared_ptr<const CompiledPredicate>> catch_all_programs_;

  mutable std::mutex mutex_;
  // Hash-keyed memories: alphas by their own probe field, beta level L by
  // the field level L+1 probes with (0 when no equijoin exists). Indexed
  // by *position* in the current order.
  std::vector<std::unordered_multimap<uint64_t, Tuple>> alphas_;
  std::vector<std::unordered_multimap<uint64_t, Row>> betas_;

  // Join-order bookkeeping (all under mutex_). order_[pos] = original
  // variable id at position pos; pos_of_ is its inverse; identity_
  // short-circuits the firing remap on never-reorganized networks.
  std::vector<size_t> order_;
  std::vector<size_t> pos_of_;
  bool identity_ = true;
  uint64_t version_ = 0;  // bumped by every mutation; swap validates it
  uint64_t reorgs_ = 0;

  // Per-edge observed traffic, aligned with graph_.edges() (stable
  // across permutations — Permuted preserves edge list order). Written
  // under mutex_ when runtime_stats::enabled().
  mutable std::vector<uint64_t> edge_attempts_;
  mutable std::vector<uint64_t> edge_passes_;
};

}  // namespace tman

#endif  // TRIGGERMAN_NETWORK_GATOR_H_
