#ifndef TRIGGERMAN_NETWORK_ALPHA_MEMORY_H_
#define TRIGGERMAN_NETWORK_ALPHA_MEMORY_H_

#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "types/tuple.h"

namespace tman {

/// A stored alpha memory of an A-TREAT network: the set of tuples from
/// one data source that currently satisfy a trigger's selection predicate
/// for one tuple variable. Supports equality probes on a field through
/// lazily built hash indexes (used for equijoin conjuncts).
///
/// Thread-safe: concurrent token processing may read while another token
/// mutates (token-level concurrency, §6).
class AlphaMemory {
 public:
  AlphaMemory() = default;

  AlphaMemory(const AlphaMemory&) = delete;
  AlphaMemory& operator=(const AlphaMemory&) = delete;

  void Insert(const Tuple& tuple);

  /// Removes one tuple equal to `tuple`. Returns false if absent.
  bool Remove(const Tuple& tuple);

  /// Visits every tuple; `fn` returning false stops.
  void ForEach(const std::function<bool(const Tuple&)>& fn) const;

  /// Visits tuples whose `field` equals `value`, via a hash index built
  /// on first use for that field.
  void ProbeEqual(size_t field, const Value& value,
                  const std::function<bool(const Tuple&)>& fn) const;

  size_t size() const;

 private:
  void EnsureIndex(size_t field) const;  // requires mutex_ held

  mutable std::mutex mutex_;
  std::vector<std::optional<Tuple>> slots_;
  std::vector<size_t> free_;
  size_t live_ = 0;
  // field -> (value hash -> slot indices)
  mutable std::unordered_map<size_t,
                             std::unordered_multimap<uint64_t, size_t>>
      indexes_;
};

}  // namespace tman

#endif  // TRIGGERMAN_NETWORK_ALPHA_MEMORY_H_
