#include "network/alpha_memory.h"

namespace tman {

void AlphaMemory::Insert(const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slots_[slot] = tuple;
  } else {
    slot = slots_.size();
    slots_.push_back(tuple);
  }
  ++live_;
  for (auto& [field, index] : indexes_) {
    if (field < tuple.size()) {
      index.emplace(tuple.at(field).Hash(), slot);
    }
  }
}

bool AlphaMemory::Remove(const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Locate a slot holding an equal tuple — through any existing index if
  // possible, otherwise by scan.
  size_t found = slots_.size();
  if (!indexes_.empty()) {
    auto& [field, index] = *indexes_.begin();
    if (field < tuple.size()) {
      auto range = index.equal_range(tuple.at(field).Hash());
      for (auto it = range.first; it != range.second; ++it) {
        const auto& slot = slots_[it->second];
        if (slot.has_value() && *slot == tuple) {
          found = it->second;
          break;
        }
      }
      if (found == slots_.size()) return false;
    }
  }
  if (found == slots_.size()) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value() && *slots_[i] == tuple) {
        found = i;
        break;
      }
    }
    if (found == slots_.size()) return false;
  }
  // Unhook from all indexes.
  for (auto& [field, index] : indexes_) {
    if (field >= tuple.size()) continue;
    auto range = index.equal_range(tuple.at(field).Hash());
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == found) {
        index.erase(it);
        break;
      }
    }
  }
  slots_[found].reset();
  free_.push_back(found);
  --live_;
  return true;
}

void AlphaMemory::ForEach(const std::function<bool(const Tuple&)>& fn) const {
  // Copy out under the lock: callbacks may run joins that re-enter other
  // memories; holding the lock through user code risks deadlock.
  std::vector<Tuple> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.reserve(live_);
    for (const auto& slot : slots_) {
      if (slot.has_value()) snapshot.push_back(*slot);
    }
  }
  for (const Tuple& t : snapshot) {
    if (!fn(t)) return;
  }
}

void AlphaMemory::ProbeEqual(size_t field, const Value& value,
                             const std::function<bool(const Tuple&)>& fn)
    const {
  std::vector<Tuple> matches;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureIndex(field);
    const auto& index = indexes_[field];
    auto range = index.equal_range(value.Hash());
    for (auto it = range.first; it != range.second; ++it) {
      const auto& slot = slots_[it->second];
      if (slot.has_value() && field < slot->size() &&
          slot->at(field) == value) {
        matches.push_back(*slot);
      }
    }
  }
  for (const Tuple& t : matches) {
    if (!fn(t)) return;
  }
}

size_t AlphaMemory::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

void AlphaMemory::EnsureIndex(size_t field) const {
  if (indexes_.count(field) > 0) return;
  auto& index = indexes_[field];
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].has_value() && field < slots_[i]->size()) {
      index.emplace(slots_[i]->at(field).Hash(), i);
    }
  }
}

}  // namespace tman
