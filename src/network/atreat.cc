#include "network/atreat.h"

#include <algorithm>
#include <deque>

#include "expr/eval.h"

namespace tman {

Result<std::unique_ptr<ATreatNetwork>> ATreatNetwork::Build(
    const ConditionGraph& graph, Database* db, const ATreatOptions& options,
    const std::vector<Schema>& schemas) {
  if (!schemas.empty() && schemas.size() != graph.nodes().size()) {
    return Status::InvalidArgument(
        "schema count does not match condition graph nodes");
  }
  std::unique_ptr<ATreatNetwork> net(new ATreatNetwork(graph, db));
  net->nodes_.resize(graph.nodes().size());
  bool multi = graph.nodes().size() > 1;
  for (size_t i = 0; i < graph.nodes().size(); ++i) {
    const ConditionGraph::Node& gnode = graph.nodes()[i];
    AlphaNode& anode = net->nodes_[i];
    bool local_table =
        db != nullptr && db->HasTable(gnode.info.source_name);
    if (!schemas.empty()) {
      anode.schema = schemas[i];
    } else if (local_table) {
      TMAN_ASSIGN_OR_RETURN(anode.schema, db->SchemaOf(gnode.info.source_name));
    }
    // Single-variable triggers need no memories at all: the predicate
    // index decides everything and the token itself is the firing.
    if (!multi) {
      anode.stored = false;
      continue;
    }
    if (options.prefer_virtual && local_table) {
      anode.stored = false;  // virtual alpha node (A-TREAT)
    } else {
      anode.stored = true;
      anode.memory = std::make_unique<AlphaMemory>();
    }
  }
  net->CompilePredicates();
  return net;
}

void ATreatNetwork::CompilePredicates() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    ExprPtr selection = graph_.nodes()[i].SelectionPredicate();
    if (selection == nullptr) continue;
    BindingLayout layout;
    layout.Add(graph_.nodes()[i].info.var, &nodes_[i].schema);
    nodes_[i].compiled_selection = TryCompilePredicate(selection, layout);
  }

  edge_programs_.resize(graph_.edges().size());
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    BindingLayout layout;
    layout.Add(graph_.nodes()[e.a].info.var, &nodes_[e.a].schema);
    layout.Add(graph_.nodes()[e.b].info.var, &nodes_[e.b].schema);
    for (const ExprPtr& conjunct : e.join_conjuncts) {
      // An unqualified reference resolved against just these two schemas
      // could dodge an ambiguity the interpreter would report over the
      // full binding set — leave those to the interpreter.
      bool unqualified = false;
      for (const std::string& v : ReferencedTupleVars(conjunct)) {
        if (v.empty()) unqualified = true;
      }
      edge_programs_[ei].push_back(
          unqualified ? nullptr : TryCompilePredicate(conjunct, layout));
    }
  }

  if (!graph_.catch_all().empty()) {
    BindingLayout full;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      full.Add(graph_.nodes()[i].info.var, &nodes_[i].schema);
    }
    for (const ExprPtr& conjunct : graph_.catch_all()) {
      catch_all_programs_.push_back(TryCompilePredicate(conjunct, full));
    }
  }
}

Status ATreatNetwork::Prime() {
  if (db_ == nullptr) return Status::OK();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    AlphaNode& anode = nodes_[i];
    const ConditionGraph::Node& gnode = graph_.nodes()[i];
    if (!anode.stored || !db_->HasTable(gnode.info.source_name)) continue;
    ExprPtr selection = gnode.SelectionPredicate();
    Status inner = Status::OK();
    TMAN_RETURN_IF_ERROR(db_->Scan(
        gnode.info.source_name, [&](const Rid&, const Tuple& t) {
          if (selection != nullptr) {
            Result<bool> pass = false;
            if (anode.compiled_selection != nullptr) {
              const Tuple* tuples[] = {&t};
              pass = anode.compiled_selection->EvalBool(tuples, 1);
            } else {
              Bindings b;
              b.Bind(gnode.info.var, &anode.schema, &t);
              pass = EvalPredicate(selection, b);
            }
            if (!pass.ok()) {
              inner = pass.status();
              return false;
            }
            if (!*pass) return true;
          }
          anode.memory->Insert(t);
          return true;
        }));
    TMAN_RETURN_IF_ERROR(inner);
  }
  return Status::OK();
}

Status ATreatNetwork::AddTuple(NetworkNodeId node, const Tuple& tuple) const {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("bad network node id");
  }
  if (nodes_[node].stored) nodes_[node].memory->Insert(tuple);
  return Status::OK();
}

Status ATreatNetwork::RemoveTuple(NetworkNodeId node, const Tuple& tuple) const {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("bad network node id");
  }
  if (nodes_[node].stored) nodes_[node].memory->Remove(tuple);
  return Status::OK();
}

Bindings ATreatNetwork::MakeBindings(
    const std::vector<std::optional<Tuple>>& bound) const {
  Bindings b;
  for (size_t i = 0; i < bound.size(); ++i) {
    if (bound[i].has_value()) {
      b.Bind(graph_.nodes()[i].info.var, &nodes_[i].schema, &*bound[i]);
    }
  }
  return b;
}

Result<bool> ATreatNetwork::EdgesSatisfied(
    const std::vector<std::optional<Tuple>>& bound, size_t just_bound) const {
  for (size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const ConditionGraph::Edge& e = graph_.edges()[ei];
    if (e.a != just_bound && e.b != just_bound) continue;
    size_t other = e.a == just_bound ? e.b : e.a;
    if (!bound[other].has_value()) continue;
    const Tuple* pair[2] = {&*bound[e.a], &*bound[e.b]};
    for (size_t ci = 0; ci < e.join_conjuncts.size(); ++ci) {
      const CompiledPredicate* prog = edge_programs_[ei][ci].get();
      if (prog != nullptr) {
        TMAN_ASSIGN_OR_RETURN(bool pass, prog->EvalBool(pair, 2));
        if (!pass) return false;
      } else {
        Bindings b = MakeBindings(bound);
        TMAN_ASSIGN_OR_RETURN(bool pass,
                              EvalPredicate(e.join_conjuncts[ci], b));
        if (!pass) return false;
      }
    }
  }
  return true;
}

Result<bool> ATreatNetwork::CatchAllSatisfied(
    const std::vector<std::optional<Tuple>>& bound) const {
  if (graph_.catch_all().empty()) return true;
  // The catch-all runs with every variable bound; collect the row once.
  bool all_bound = true;
  std::vector<const Tuple*> row(bound.size());
  for (size_t i = 0; i < bound.size(); ++i) {
    if (bound[i].has_value()) {
      row[i] = &*bound[i];
    } else {
      all_bound = false;
      break;
    }
  }
  for (size_t ci = 0; ci < graph_.catch_all().size(); ++ci) {
    const CompiledPredicate* prog =
        all_bound ? catch_all_programs_[ci].get() : nullptr;
    if (prog != nullptr) {
      TMAN_ASSIGN_OR_RETURN(bool pass, prog->EvalBool(row.data(), row.size()));
      if (!pass) return false;
    } else {
      Bindings b = MakeBindings(bound);
      TMAN_ASSIGN_OR_RETURN(bool pass,
                            EvalPredicate(graph_.catch_all()[ci], b));
      if (!pass) return false;
    }
  }
  return true;
}

namespace {

/// Finds an equijoin conjunct `v.f == other.g` between the node being
/// enumerated and an already-bound node; returns the probe field of v and
/// the concrete value from the bound side.
struct EquiProbe {
  bool found = false;
  size_t field = 0;
  Value value;
};

}  // namespace

Status ATreatNetwork::Enumerate(std::vector<std::optional<Tuple>>* bound,
                                const std::vector<size_t>& order, size_t depth,
                                const FiringFn& fn) const {
  if (depth == order.size()) {
    TMAN_ASSIGN_OR_RETURN(bool pass, CatchAllSatisfied(*bound));
    if (pass) {
      std::vector<Tuple> firing;
      firing.reserve(bound->size());
      for (const auto& t : *bound) firing.push_back(t.value_or(Tuple()));
      fn(firing);
    }
    return Status::OK();
  }

  size_t v = order[depth];
  const ConditionGraph::Node& gnode = graph_.nodes()[v];
  const AlphaNode& anode = nodes_[v];

  // Look for an equijoin probe opportunity against a bound variable.
  EquiProbe probe;
  for (const ConditionGraph::Edge& e : graph_.edges()) {
    if (probe.found) break;
    if (e.a != v && e.b != v) continue;
    size_t other = e.a == v ? e.b : e.a;
    if (!(*bound)[other].has_value()) continue;
    for (const ExprPtr& c : e.join_conjuncts) {
      if (c->kind != ExprKind::kBinaryOp || c->bin_op != BinOp::kEq) continue;
      const ExprPtr& l = c->children[0];
      const ExprPtr& r = c->children[1];
      if (l->kind != ExprKind::kColumnRef || r->kind != ExprKind::kColumnRef) {
        continue;
      }
      const Expr* mine = nullptr;
      const Expr* theirs = nullptr;
      if (l->tuple_var == gnode.info.var &&
          r->tuple_var == graph_.nodes()[other].info.var) {
        mine = l.get();
        theirs = r.get();
      } else if (r->tuple_var == gnode.info.var &&
                 l->tuple_var == graph_.nodes()[other].info.var) {
        mine = r.get();
        theirs = l.get();
      } else {
        continue;
      }
      int my_field = anode.schema.FieldIndex(mine->attribute);
      int their_field =
          nodes_[other].schema.FieldIndex(theirs->attribute);
      if (my_field < 0 || their_field < 0) continue;
      probe.found = true;
      probe.field = static_cast<size_t>(my_field);
      probe.value = (*bound)[other]->at(static_cast<size_t>(their_field));
      break;
    }
  }

  Status inner = Status::OK();
  auto consider = [&](const Tuple& candidate) -> bool {
    if (!inner.ok()) return false;
    (*bound)[v] = candidate;
    auto pass = EdgesSatisfied(*bound, v);
    if (!pass.ok()) {
      inner = pass.status();
      (*bound)[v].reset();
      return false;
    }
    if (*pass) {
      Status s = Enumerate(bound, order, depth + 1, fn);
      if (!s.ok()) {
        inner = s;
        (*bound)[v].reset();
        return false;
      }
    }
    (*bound)[v].reset();
    return true;
  };

  if (anode.stored) {
    if (probe.found) {
      anode.memory->ProbeEqual(probe.field, probe.value, consider);
    } else {
      anode.memory->ForEach(consider);
    }
    return inner;
  }

  // Virtual alpha node: enumerate the base table, applying the node's
  // selection predicate on the fly. If the table has an index on the
  // equijoin probe attribute, probe it instead of scanning — the paper's
  // "data values ... can be processed by a query" run through the host's
  // query machinery.
  if (db_ == nullptr || !db_->HasTable(gnode.info.source_name)) {
    return Status::Internal("virtual alpha node without a backing table: " +
                            gnode.info.source_name);
  }
  ExprPtr selection = gnode.SelectionPredicate();
  auto filter_and_consider = [&](const Tuple& t) -> bool {
    if (!inner.ok()) return false;
    if (probe.found &&
        (probe.field >= t.size() || t.at(probe.field) != probe.value)) {
      return true;
    }
    if (selection != nullptr) {
      Result<bool> pass = false;
      if (anode.compiled_selection != nullptr) {
        const Tuple* tuples[] = {&t};
        pass = anode.compiled_selection->EvalBool(tuples, 1);
      } else {
        Bindings b;
        b.Bind(gnode.info.var, &anode.schema, &t);
        pass = EvalPredicate(selection, b);
      }
      if (!pass.ok()) {
        inner = pass.status();
        return false;
      }
      if (!*pass) return true;
    }
    return consider(t);
  };

  if (probe.found && probe.field < anode.schema.num_fields()) {
    auto idx = db_->FindIndexOn(gnode.info.source_name,
                                {anode.schema.field(probe.field).name});
    if (idx.ok()) {
      auto rids = db_->IndexLookup(*idx, {probe.value});
      if (!rids.ok()) return rids.status();
      for (const Rid& rid : *rids) {
        auto t = db_->Get(gnode.info.source_name, rid);
        if (!t.ok()) return t.status();
        if (!filter_and_consider(*t)) break;
      }
      return inner;
    }
  }
  TMAN_RETURN_IF_ERROR(
      db_->Scan(gnode.info.source_name,
                [&](const Rid&, const Tuple& t) {
                  return filter_and_consider(t);
                }));
  return inner;
}

Status ATreatNetwork::MatchJoins(NetworkNodeId node, const Tuple& tuple,
                                 const FiringFn& fn) const {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("bad network node id");
  }
  size_t n = nodes_.size();
  std::vector<std::optional<Tuple>> bound(n);
  bound[node] = tuple;
  if (n == 1) {
    TMAN_ASSIGN_OR_RETURN(bool pass, CatchAllSatisfied(bound));
    if (pass) fn({tuple});
    return Status::OK();
  }
  // Enumeration order: BFS from the arriving node across join edges keeps
  // every step constrained; disconnected variables (cartesian) go last.
  std::vector<size_t> order;
  std::vector<bool> seen(n, false);
  seen[node] = true;
  std::deque<size_t> queue{node};
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    for (const ConditionGraph::Edge& e : graph_.edges()) {
      if (e.a != u && e.b != u) continue;
      size_t w = e.a == u ? e.b : e.a;
      if (!seen[w]) {
        seen[w] = true;
        order.push_back(w);
        queue.push_back(w);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!seen[i]) order.push_back(i);
  }
  return Enumerate(&bound, order, 0, fn);
}

}  // namespace tman
