#ifndef TRIGGERMAN_DB_DATABASE_H_
#define TRIGGERMAN_DB_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_table.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/update_descriptor.h"
#include "util/result.h"

namespace tman {

/// Identifier of a table inside MiniDB. Local tables use their TableId as
/// their TriggerMan DataSourceId.
using TableId = uint32_t;

/// Options controlling the embedded database instance.
struct DatabaseOptions {
  size_t buffer_pool_frames = 4096;      // 16 MB of 4 KB pages
  uint64_t disk_latency_ns = 0;          // simulated per-page-I/O latency
};

/// Called after a row changes, with the update descriptor describing the
/// change. TriggerMan installs one hook per table to capture updates —
/// the MiniDB equivalent of the paper's automatically-created Informix
/// triggers ("one trigger per table per update event").
using UpdateHook = std::function<void(const UpdateDescriptor&)>;

/// MiniDB: a small embedded relational engine playing the role the paper
/// assigns to Informix. It hosts user tables (update sources), the
/// TriggerMan catalogs, the constant tables of organization strategies 3
/// and 4, and the persistent update queue. Exception-free; every mutation
/// keeps secondary indexes consistent.
class Database {
 public:
  explicit Database(const DatabaseOptions& options = DatabaseOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL -----------------------------------------------------------

  Result<TableId> CreateTable(const std::string& name, const Schema& schema);
  Status DropTable(const std::string& name);

  /// Creates a (possibly composite) index over existing and future rows.
  Status CreateIndex(const std::string& index_name,
                     const std::string& table_name,
                     const std::vector<std::string>& attrs);
  Status DropIndex(const std::string& index_name);

  bool HasTable(const std::string& name) const;
  Result<TableId> TableIdOf(const std::string& name) const;
  Result<std::string> TableNameOf(TableId id) const;
  Result<Schema> SchemaOf(const std::string& name) const;

  // --- DML -----------------------------------------------------------

  Result<Rid> Insert(const std::string& table, const Tuple& tuple);
  Status Delete(const std::string& table, const Rid& rid);
  Status Update(const std::string& table, const Rid& rid,
                const Tuple& new_tuple);
  Result<Tuple> Get(const std::string& table, const Rid& rid) const;

  /// Sequential scan; `fn` returning false stops early.
  Status Scan(const std::string& table,
              const std::function<bool(const Rid&, const Tuple&)>& fn) const;

  /// Equality probe on an index.
  Result<std::vector<Rid>> IndexLookup(const std::string& index_name,
                                       const std::vector<Value>& key) const;

  /// Range probe on an index (either bound may be empty = open).
  Status IndexRange(
      const std::string& index_name,
      const std::optional<std::vector<Value>>& lo, bool lo_inclusive,
      const std::optional<std::vector<Value>>& hi, bool hi_inclusive,
      const std::function<bool(const std::vector<Value>&, const Rid&)>& fn)
      const;

  /// Finds an index on `table` whose first attributes are exactly
  /// `attrs` (order-sensitive). Returns the index name or NotFound.
  Result<std::string> FindIndexOn(const std::string& table,
                                  const std::vector<std::string>& attrs) const;

  Result<uint64_t> NumRows(const std::string& table) const;

  // --- update capture --------------------------------------------------

  /// Installs the single per-table update hook; replaces any previous one.
  Status SetUpdateHook(const std::string& table, UpdateHook hook);
  Status ClearUpdateHook(const std::string& table);

  // --- infrastructure ---------------------------------------------------

  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }

 private:
  struct IndexInfo {
    std::string name;
    std::vector<size_t> field_indices;
    std::vector<std::string> attrs;
    std::unique_ptr<BPTree> tree;
  };

  struct TableInfo {
    TableId id;
    std::string name;
    Schema schema;
    std::unique_ptr<HeapTable> heap;
    std::vector<std::unique_ptr<IndexInfo>> indexes;
    UpdateHook hook;
  };

  Result<TableInfo*> Find(const std::string& name) const;
  static std::vector<Value> IndexKey(const IndexInfo& idx, const Tuple& t);

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;

  mutable std::mutex mutex_;  // guards the maps; per-table ops use heap locks
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  std::map<std::string, TableInfo*> index_owner_;  // index name -> table
  TableId next_table_id_ = 1;
};

}  // namespace tman

#endif  // TRIGGERMAN_DB_DATABASE_H_
