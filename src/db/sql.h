#ifndef TRIGGERMAN_DB_SQL_H_
#define TRIGGERMAN_DB_SQL_H_

#include <string>
#include <vector>

#include "db/database.h"
#include "types/tuple.h"
#include "util/result.h"

namespace tman {

/// Result of ExecuteSql: row count for DML, result rows for SELECT.
struct SqlResult {
  uint64_t rows_affected = 0;
  std::vector<std::string> column_names;  // SELECT only
  std::vector<Tuple> rows;                // SELECT only
};

/// Executes one statement of the SQL subset TriggerMan's execSQL actions
/// use (the paper runs these through Informix's SQL callbacks):
///
///   CREATE TABLE t (a int, b varchar(30), ...)
///   CREATE INDEX i ON t (a, b)
///   INSERT INTO t VALUES (e1, e2, ...)
///   UPDATE t SET a = e1, b = e2 WHERE cond
///   DELETE FROM t WHERE cond
///   SELECT * | a, b FROM t WHERE cond
///
/// WHERE clauses with equality conjuncts on indexed attributes are
/// answered through the index; everything else falls back to a scan.
Result<SqlResult> ExecuteSql(Database* db, std::string_view sql);

}  // namespace tman

#endif  // TRIGGERMAN_DB_SQL_H_
