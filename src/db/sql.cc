#include "db/sql.h"

#include <algorithm>

#include "expr/compile.h"
#include "expr/eval.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "util/string_util.h"

namespace tman {

namespace {

Status ExpectKw(Lexer* lex, std::string_view kw) {
  if (!lex->Peek().IsKeyword(kw)) {
    return Status::ParseError("expected '" + std::string(kw) + "' " +
                              lex->Where());
  }
  return lex->Next().status();
}

Result<std::string> Ident(Lexer* lex, std::string_view what) {
  if (!lex->Peek().Is(TokenKind::kIdentifier)) {
    return Status::ParseError("expected " + std::string(what) + " " +
                              lex->Where());
  }
  TMAN_ASSIGN_OR_RETURN(Token t, lex->Next());
  return ToLower(t.text);
}

Status Expect(Lexer* lex, TokenKind kind, std::string_view what) {
  if (!lex->Peek().Is(kind)) {
    return Status::ParseError("expected " + std::string(what) + " " +
                              lex->Where());
  }
  return lex->Next().status();
}

/// Evaluates an expression that may reference one bound row.
Result<Value> EvalWithRow(const ExprPtr& e, const std::string& table,
                          const Schema* schema, const Tuple* tuple) {
  Bindings b;
  if (schema != nullptr) b.Bind(table, schema, tuple);
  return EvalExpr(e, b);
}

/// Collects RIDs of rows matching `where` (null = all). Uses an index if
/// the where-clause contains an equality conjunct on an indexed attribute.
Result<std::vector<Rid>> CollectMatches(Database* db,
                                        const std::string& table,
                                        const Schema& schema,
                                        const ExprPtr& where) {
  std::vector<Rid> out;
  // Compile the filter once per statement; every row test below runs the
  // bytecode program, with the interpreter as the refusal fallback.
  std::shared_ptr<const CompiledPredicate> compiled_where;
  if (where != nullptr) {
    BindingLayout layout;
    layout.Add(table, &schema);
    compiled_where = TryCompilePredicate(where, layout);
  }
  auto row_matches = [&](const Tuple& row) -> Result<bool> {
    if (compiled_where != nullptr) {
      const Tuple* tuples[] = {&row};
      return compiled_where->EvalBool(tuples, 1);
    }
    Bindings b;
    b.Bind(table, &schema, &row);
    return EvalPredicate(where, b);
  };
  // Index route: find top-level eq conjuncts attr = <constant expr>.
  if (where != nullptr) {
    std::vector<ExprPtr> conjuncts;
    std::vector<ExprPtr> stack{where};
    while (!stack.empty()) {
      ExprPtr e = stack.back();
      stack.pop_back();
      if (e->kind == ExprKind::kBinaryOp && e->bin_op == BinOp::kAnd) {
        stack.push_back(e->children[0]);
        stack.push_back(e->children[1]);
      } else {
        conjuncts.push_back(e);
      }
    }
    for (const ExprPtr& c : conjuncts) {
      if (c->kind != ExprKind::kBinaryOp || c->bin_op != BinOp::kEq) continue;
      const ExprPtr* col = nullptr;
      const ExprPtr* val = nullptr;
      if (c->children[0]->kind == ExprKind::kColumnRef &&
          ReferencedTupleVars(c->children[1]).empty()) {
        col = &c->children[0];
        val = &c->children[1];
      } else if (c->children[1]->kind == ExprKind::kColumnRef &&
                 ReferencedTupleVars(c->children[0]).empty()) {
        col = &c->children[1];
        val = &c->children[0];
      } else {
        continue;
      }
      auto index = db->FindIndexOn(table, {(*col)->attribute});
      if (!index.ok()) continue;
      TMAN_ASSIGN_OR_RETURN(Value key,
                            EvalWithRow(*val, table, nullptr, nullptr));
      TMAN_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                            db->IndexLookup(*index, {key}));
      for (const Rid& rid : rids) {
        TMAN_ASSIGN_OR_RETURN(Tuple row, db->Get(table, rid));
        TMAN_ASSIGN_OR_RETURN(bool match, row_matches(row));
        if (match) out.push_back(rid);
      }
      return out;
    }
  }
  // Scan route.
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(db->Scan(
      table, [&](const Rid& rid, const Tuple& row) {
        if (where == nullptr) {
          out.push_back(rid);
          return true;
        }
        Result<bool> match = row_matches(row);
        if (!match.ok()) {
          inner = match.status();
          return false;
        }
        if (*match) out.push_back(rid);
        return true;
      }));
  TMAN_RETURN_IF_ERROR(inner);
  return out;
}

Result<SqlResult> ExecCreate(Database* db, Lexer* lex) {
  if (lex->Peek().IsKeyword("table")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(std::string name, Ident(lex, "table name"));
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kLParen, "'('"));
    std::vector<Field> fields;
    while (true) {
      TMAN_ASSIGN_OR_RETURN(std::string attr, Ident(lex, "column name"));
      TMAN_ASSIGN_OR_RETURN(std::string type_name, Ident(lex, "type"));
      TMAN_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
      uint32_t width = 0;
      if (lex->Peek().Is(TokenKind::kLParen)) {
        (void)lex->Next();
        if (!lex->Peek().Is(TokenKind::kIntLiteral)) {
          return Status::ParseError("expected width " + lex->Where());
        }
        TMAN_ASSIGN_OR_RETURN(Token w, lex->Next());
        width = static_cast<uint32_t>(w.int_value);
        TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
      }
      fields.emplace_back(attr, type, width);
      if (lex->Peek().Is(TokenKind::kComma)) {
        (void)lex->Next();
        continue;
      }
      break;
    }
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
    TMAN_RETURN_IF_ERROR(db->CreateTable(name, Schema(fields)).status());
    return SqlResult{};
  }
  if (lex->Peek().IsKeyword("index")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(std::string name, Ident(lex, "index name"));
    TMAN_RETURN_IF_ERROR(ExpectKw(lex, "on"));
    TMAN_ASSIGN_OR_RETURN(std::string table, Ident(lex, "table name"));
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kLParen, "'('"));
    std::vector<std::string> attrs;
    while (true) {
      TMAN_ASSIGN_OR_RETURN(std::string attr, Ident(lex, "column name"));
      attrs.push_back(attr);
      if (lex->Peek().Is(TokenKind::kComma)) {
        (void)lex->Next();
        continue;
      }
      break;
    }
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
    TMAN_RETURN_IF_ERROR(db->CreateIndex(name, table, attrs));
    return SqlResult{};
  }
  return Status::ParseError("expected TABLE or INDEX " + lex->Where());
}

Result<SqlResult> ExecInsert(Database* db, Lexer* lex) {
  TMAN_RETURN_IF_ERROR(ExpectKw(lex, "into"));
  TMAN_ASSIGN_OR_RETURN(std::string table, Ident(lex, "table name"));
  TMAN_RETURN_IF_ERROR(ExpectKw(lex, "values"));
  SqlResult result;
  while (true) {
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kLParen, "'('"));
    std::vector<Value> values;
    while (true) {
      TMAN_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(lex));
      TMAN_ASSIGN_OR_RETURN(Value v, EvalWithRow(e, table, nullptr, nullptr));
      values.push_back(std::move(v));
      if (lex->Peek().Is(TokenKind::kComma)) {
        (void)lex->Next();
        continue;
      }
      break;
    }
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
    TMAN_RETURN_IF_ERROR(db->Insert(table, Tuple(values)).status());
    ++result.rows_affected;
    if (lex->Peek().Is(TokenKind::kComma)) {
      (void)lex->Next();
      continue;
    }
    break;
  }
  return result;
}

Result<SqlResult> ExecUpdate(Database* db, Lexer* lex) {
  TMAN_ASSIGN_OR_RETURN(std::string table, Ident(lex, "table name"));
  TMAN_ASSIGN_OR_RETURN(Schema schema, db->SchemaOf(table));
  TMAN_RETURN_IF_ERROR(ExpectKw(lex, "set"));
  std::vector<std::pair<size_t, ExprPtr>> sets;
  while (true) {
    TMAN_ASSIGN_OR_RETURN(std::string attr, Ident(lex, "column name"));
    // Accept qualified t.attr as well.
    if (lex->Peek().Is(TokenKind::kDot)) {
      (void)lex->Next();
      TMAN_ASSIGN_OR_RETURN(attr, Ident(lex, "column name"));
    }
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kEq, "'='"));
    TMAN_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(lex));
    TMAN_ASSIGN_OR_RETURN(size_t field, schema.RequireField(attr));
    sets.emplace_back(field, std::move(e));
    if (lex->Peek().Is(TokenKind::kComma)) {
      (void)lex->Next();
      continue;
    }
    break;
  }
  ExprPtr where;
  if (lex->Peek().IsKeyword("where")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(where, ParseExpression(lex));
  }
  TMAN_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                        CollectMatches(db, table, schema, where));
  SqlResult result;
  for (const Rid& rid : rids) {
    TMAN_ASSIGN_OR_RETURN(Tuple row, db->Get(table, rid));
    Tuple updated = row;
    for (const auto& [field, e] : sets) {
      TMAN_ASSIGN_OR_RETURN(Value v, EvalWithRow(e, table, &schema, &row));
      updated.at(field) = std::move(v);
    }
    TMAN_RETURN_IF_ERROR(db->Update(table, rid, updated));
    ++result.rows_affected;
  }
  return result;
}

Result<SqlResult> ExecDelete(Database* db, Lexer* lex) {
  TMAN_RETURN_IF_ERROR(ExpectKw(lex, "from"));
  TMAN_ASSIGN_OR_RETURN(std::string table, Ident(lex, "table name"));
  TMAN_ASSIGN_OR_RETURN(Schema schema, db->SchemaOf(table));
  ExprPtr where;
  if (lex->Peek().IsKeyword("where")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(where, ParseExpression(lex));
  }
  TMAN_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                        CollectMatches(db, table, schema, where));
  SqlResult result;
  for (const Rid& rid : rids) {
    TMAN_RETURN_IF_ERROR(db->Delete(table, rid));
    ++result.rows_affected;
  }
  return result;
}

Result<SqlResult> ExecSelect(Database* db, Lexer* lex) {
  std::vector<std::string> cols;
  bool star = false;
  if (lex->Peek().Is(TokenKind::kStar)) {
    (void)lex->Next();
    star = true;
  } else {
    while (true) {
      TMAN_ASSIGN_OR_RETURN(std::string col, Ident(lex, "column name"));
      if (lex->Peek().Is(TokenKind::kDot)) {
        (void)lex->Next();
        TMAN_ASSIGN_OR_RETURN(col, Ident(lex, "column name"));
      }
      cols.push_back(col);
      if (lex->Peek().Is(TokenKind::kComma)) {
        (void)lex->Next();
        continue;
      }
      break;
    }
  }
  TMAN_RETURN_IF_ERROR(ExpectKw(lex, "from"));
  TMAN_ASSIGN_OR_RETURN(std::string table, Ident(lex, "table name"));
  TMAN_ASSIGN_OR_RETURN(Schema schema, db->SchemaOf(table));
  ExprPtr where;
  if (lex->Peek().IsKeyword("where")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(where, ParseExpression(lex));
  }
  std::vector<size_t> fields;
  SqlResult result;
  if (star) {
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      fields.push_back(i);
      result.column_names.push_back(schema.field(i).name);
    }
  } else {
    for (const std::string& c : cols) {
      TMAN_ASSIGN_OR_RETURN(size_t f, schema.RequireField(c));
      fields.push_back(f);
      result.column_names.push_back(c);
    }
  }
  TMAN_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                        CollectMatches(db, table, schema, where));
  for (const Rid& rid : rids) {
    TMAN_ASSIGN_OR_RETURN(Tuple row, db->Get(table, rid));
    std::vector<Value> projected;
    projected.reserve(fields.size());
    for (size_t f : fields) projected.push_back(row.at(f));
    result.rows.emplace_back(std::move(projected));
  }
  result.rows_affected = result.rows.size();
  return result;
}

}  // namespace

Result<SqlResult> ExecuteSql(Database* db, std::string_view sql) {
  Lexer lex(sql);
  if (!lex.init_status().ok()) return lex.init_status();
  Result<SqlResult> result = Status::ParseError("empty statement");
  if (lex.Peek().IsKeyword("create")) {
    (void)lex.Next();
    result = ExecCreate(db, &lex);
  } else if (lex.Peek().IsKeyword("insert")) {
    (void)lex.Next();
    result = ExecInsert(db, &lex);
  } else if (lex.Peek().IsKeyword("update")) {
    (void)lex.Next();
    result = ExecUpdate(db, &lex);
  } else if (lex.Peek().IsKeyword("delete")) {
    (void)lex.Next();
    result = ExecDelete(db, &lex);
  } else if (lex.Peek().IsKeyword("select")) {
    (void)lex.Next();
    result = ExecSelect(db, &lex);
  } else {
    return Status::ParseError("unknown SQL statement " + lex.Where());
  }
  if (!result.ok()) return result;
  if (lex.Peek().Is(TokenKind::kSemicolon)) (void)lex.Next();
  if (!lex.AtEnd()) {
    return Status::ParseError("trailing input after statement " +
                              lex.Where());
  }
  return result;
}

}  // namespace tman
