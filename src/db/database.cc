#include "db/database.h"

#include "util/string_util.h"

namespace tman {

Database::Database(const DatabaseOptions& options)
    : disk_(std::make_unique<DiskManager>(options.disk_latency_ns)),
      pool_(std::make_unique<BufferPool>(disk_.get(),
                                         options.buffer_pool_frames)) {}

Result<Database::TableInfo*> Database::Find(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

std::vector<Value> Database::IndexKey(const IndexInfo& idx, const Tuple& t) {
  std::vector<Value> key;
  key.reserve(idx.field_indices.size());
  for (size_t f : idx.field_indices) key.push_back(t.at(f));
  return key;
}

Result<TableId> Database::CreateTable(const std::string& name,
                                      const Schema& schema) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  TMAN_ASSIGN_OR_RETURN(PageId first, HeapTable::Create(pool_.get()));
  auto info = std::make_unique<TableInfo>();
  info->id = next_table_id_++;
  info->name = key;
  info->schema = schema;
  info->heap = std::make_unique<HeapTable>(pool_.get(), first);
  TableId id = info->id;
  tables_[key] = std::move(info);
  return id;
}

Status Database::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  for (const auto& idx : it->second->indexes) {
    index_owner_.erase(idx->name);
  }
  tables_.erase(it);
  return Status::OK();
}

Status Database::CreateIndex(const std::string& index_name,
                             const std::string& table_name,
                             const std::vector<std::string>& attrs) {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(TableInfo * t, Find(table_name));
  std::string iname = ToLower(index_name);
  if (index_owner_.count(iname) > 0) {
    return Status::AlreadyExists("index already exists: " + index_name);
  }
  auto idx = std::make_unique<IndexInfo>();
  idx->name = iname;
  for (const std::string& a : attrs) {
    TMAN_ASSIGN_OR_RETURN(size_t f, t->schema.RequireField(a));
    idx->field_indices.push_back(f);
    idx->attrs.push_back(ToLower(a));
  }
  TMAN_ASSIGN_OR_RETURN(PageId meta, BPTree::Create(pool_.get()));
  idx->tree = std::make_unique<BPTree>(pool_.get(), meta);
  // Backfill from existing rows.
  Status backfill = Status::OK();
  TMAN_RETURN_IF_ERROR(t->heap->Scan(
      [&](const Rid& rid, std::string_view record) {
        size_t pos = 0;
        auto tuple = Tuple::Deserialize(record, &pos);
        if (!tuple.ok()) {
          backfill = tuple.status();
          return false;
        }
        Status s = idx->tree->Insert(IndexKey(*idx, *tuple), rid);
        if (!s.ok()) {
          backfill = s;
          return false;
        }
        return true;
      }));
  TMAN_RETURN_IF_ERROR(backfill);
  index_owner_[iname] = t;
  t->indexes.push_back(std::move(idx));
  return Status::OK();
}

Status Database::DropIndex(const std::string& index_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string iname = ToLower(index_name);
  auto it = index_owner_.find(iname);
  if (it == index_owner_.end()) {
    return Status::NotFound("no such index: " + index_name);
  }
  TableInfo* t = it->second;
  index_owner_.erase(it);
  for (auto i = t->indexes.begin(); i != t->indexes.end(); ++i) {
    if ((*i)->name == iname) {
      t->indexes.erase(i);
      break;
    }
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tables_.count(ToLower(name)) > 0;
}

Result<TableId> Database::TableIdOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(TableInfo * t, Find(name));
  return t->id;
}

Result<std::string> Database::TableNameOf(TableId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, info] : tables_) {
    if (info->id == id) return name;
  }
  return Status::NotFound("no table with id " + std::to_string(id));
}

Result<Schema> Database::SchemaOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(TableInfo * t, Find(name));
  return t->schema;
}

Result<Rid> Database::Insert(const std::string& table, const Tuple& tuple) {
  TableInfo* t;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TMAN_ASSIGN_OR_RETURN(t, Find(table));
  }
  TMAN_ASSIGN_OR_RETURN(Tuple coerced, CoerceToSchema(tuple, t->schema));
  std::string record;
  coerced.Serialize(&record);
  TMAN_ASSIGN_OR_RETURN(Rid rid, t->heap->Insert(record));
  for (const auto& idx : t->indexes) {
    TMAN_RETURN_IF_ERROR(idx->tree->Insert(IndexKey(*idx, coerced), rid));
  }
  if (t->hook) {
    t->hook(UpdateDescriptor::Insert(t->id, coerced));
  }
  return rid;
}

Status Database::Delete(const std::string& table, const Rid& rid) {
  TableInfo* t;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TMAN_ASSIGN_OR_RETURN(t, Find(table));
  }
  TMAN_ASSIGN_OR_RETURN(std::string record, t->heap->Get(rid));
  size_t pos = 0;
  TMAN_ASSIGN_OR_RETURN(Tuple old_tuple, Tuple::Deserialize(record, &pos));
  TMAN_RETURN_IF_ERROR(t->heap->Delete(rid));
  for (const auto& idx : t->indexes) {
    TMAN_RETURN_IF_ERROR(idx->tree->Delete(IndexKey(*idx, old_tuple), rid));
  }
  if (t->hook) {
    t->hook(UpdateDescriptor::Delete(t->id, old_tuple));
  }
  return Status::OK();
}

Status Database::Update(const std::string& table, const Rid& rid,
                        const Tuple& new_tuple) {
  TableInfo* t;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TMAN_ASSIGN_OR_RETURN(t, Find(table));
  }
  TMAN_ASSIGN_OR_RETURN(Tuple coerced, CoerceToSchema(new_tuple, t->schema));
  TMAN_ASSIGN_OR_RETURN(std::string record, t->heap->Get(rid));
  size_t pos = 0;
  TMAN_ASSIGN_OR_RETURN(Tuple old_tuple, Tuple::Deserialize(record, &pos));
  std::string new_record;
  coerced.Serialize(&new_record);
  TMAN_ASSIGN_OR_RETURN(Rid new_rid, t->heap->Update(rid, new_record));
  for (const auto& idx : t->indexes) {
    std::vector<Value> old_key = IndexKey(*idx, old_tuple);
    std::vector<Value> new_key = IndexKey(*idx, coerced);
    if (CompareValues(old_key, new_key) != 0 || !(new_rid == rid)) {
      TMAN_RETURN_IF_ERROR(idx->tree->Delete(old_key, rid));
      TMAN_RETURN_IF_ERROR(idx->tree->Insert(new_key, new_rid));
    }
  }
  if (t->hook) {
    t->hook(UpdateDescriptor::Update(t->id, old_tuple, coerced));
  }
  return Status::OK();
}

Result<Tuple> Database::Get(const std::string& table, const Rid& rid) const {
  TableInfo* t;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TMAN_ASSIGN_OR_RETURN(t, Find(table));
  }
  TMAN_ASSIGN_OR_RETURN(std::string record, t->heap->Get(rid));
  size_t pos = 0;
  return Tuple::Deserialize(record, &pos);
}

Status Database::Scan(
    const std::string& table,
    const std::function<bool(const Rid&, const Tuple&)>& fn) const {
  TableInfo* t;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TMAN_ASSIGN_OR_RETURN(t, Find(table));
  }
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(t->heap->Scan(
      [&](const Rid& rid, std::string_view record) {
        size_t pos = 0;
        auto tuple = Tuple::Deserialize(record, &pos);
        if (!tuple.ok()) {
          inner = tuple.status();
          return false;
        }
        return fn(rid, *tuple);
      }));
  return inner;
}

Result<std::vector<Rid>> Database::IndexLookup(
    const std::string& index_name, const std::vector<Value>& key) const {
  BPTree* tree;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_owner_.find(ToLower(index_name));
    if (it == index_owner_.end()) {
      return Status::NotFound("no such index: " + index_name);
    }
    tree = nullptr;
    for (const auto& idx : it->second->indexes) {
      if (idx->name == ToLower(index_name)) {
        tree = idx->tree.get();
        break;
      }
    }
  }
  if (tree == nullptr) return Status::NotFound("no such index: " + index_name);
  return tree->SearchEqual(key);
}

Status Database::IndexRange(
    const std::string& index_name,
    const std::optional<std::vector<Value>>& lo, bool lo_inclusive,
    const std::optional<std::vector<Value>>& hi, bool hi_inclusive,
    const std::function<bool(const std::vector<Value>&, const Rid&)>& fn)
    const {
  BPTree* tree = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_owner_.find(ToLower(index_name));
    if (it == index_owner_.end()) {
      return Status::NotFound("no such index: " + index_name);
    }
    for (const auto& idx : it->second->indexes) {
      if (idx->name == ToLower(index_name)) {
        tree = idx->tree.get();
        break;
      }
    }
  }
  if (tree == nullptr) return Status::NotFound("no such index: " + index_name);
  return tree->SearchRange(lo, lo_inclusive, hi, hi_inclusive, fn);
}

Result<std::string> Database::FindIndexOn(
    const std::string& table, const std::vector<std::string>& attrs) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(TableInfo * t, Find(table));
  for (const auto& idx : t->indexes) {
    if (idx->attrs.size() != attrs.size()) continue;
    bool match = true;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (!EqualsIgnoreCase(idx->attrs[i], attrs[i])) {
        match = false;
        break;
      }
    }
    if (match) return idx->name;
  }
  return Status::NotFound("no index on given attributes");
}

Result<uint64_t> Database::NumRows(const std::string& table) const {
  TableInfo* t;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TMAN_ASSIGN_OR_RETURN(t, Find(table));
  }
  return t->heap->num_records();
}

Status Database::SetUpdateHook(const std::string& table, UpdateHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(TableInfo * t, Find(table));
  t->hook = std::move(hook);
  return Status::OK();
}

Status Database::ClearUpdateHook(const std::string& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  TMAN_ASSIGN_OR_RETURN(TableInfo * t, Find(table));
  t->hook = nullptr;
  return Status::OK();
}

}  // namespace tman
