#ifndef TRIGGERMAN_CATALOG_TRIGGER_CATALOG_H_
#define TRIGGERMAN_CATALOG_TRIGGER_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "predindex/organization.h"
#include "predindex/predicate_entry.h"

namespace tman {

/// Row of the trigger_set catalog table (§5.1).
struct TriggerSetRow {
  uint64_t ts_id = 0;
  std::string name;
  std::string comments;
  std::string creation_date;
  bool is_enabled = true;
};

/// Row of the trigger catalog table (§5.1).
struct TriggerRow {
  TriggerId trigger_id = 0;
  uint64_t ts_id = 0;
  std::string name;
  std::string comments;
  std::string trigger_text;  // the original create trigger statement
  std::string creation_date;
  bool is_enabled = true;
};

/// Row of the expression_signature catalog table (§5.1).
struct SignatureRow {
  uint64_t sig_id = 0;
  DataSourceId data_src_id = 0;
  std::string signature_desc;
  std::string const_table_name;
  uint64_t constant_set_size = 0;
  OrgType constant_set_organization = OrgType::kMemoryList;
};

/// The persistent trigger system catalogs, stored as MiniDB tables exactly
/// as §5.1 lays them out. The trigger cache loads descriptions from here
/// on a miss; everything survives "restarts" of the trigger manager
/// against the same database.
class TriggerCatalog {
 public:
  explicit TriggerCatalog(Database* db) : db_(db) {}

  /// Creates the catalog tables + indexes if missing.
  Status Open();

  // --- trigger sets -----------------------------------------------------

  Result<uint64_t> CreateTriggerSet(const std::string& name,
                                    const std::string& comments);
  Result<std::optional<TriggerSetRow>> GetTriggerSet(const std::string& name);
  Result<std::optional<TriggerSetRow>> GetTriggerSetById(uint64_t ts_id);
  Status SetTriggerSetEnabled(const std::string& name, bool enabled);

  // --- triggers ----------------------------------------------------------

  /// Inserts a trigger row; assigns and returns its trigger_id.
  Result<TriggerId> InsertTrigger(const std::string& name, uint64_t ts_id,
                                  const std::string& comments,
                                  const std::string& trigger_text);
  Result<std::optional<TriggerRow>> GetTrigger(const std::string& name);
  Result<std::optional<TriggerRow>> GetTriggerById(TriggerId id);
  Status SetTriggerEnabled(const std::string& name, bool enabled);
  Status DeleteTrigger(const std::string& name);
  Result<std::vector<TriggerRow>> AllTriggers();
  Result<uint64_t> NumTriggers();

  // --- expression signatures ----------------------------------------------

  Status InsertSignature(const SignatureRow& row);
  Status UpdateSignatureStats(uint64_t sig_id, uint64_t size, OrgType org);
  Result<std::vector<SignatureRow>> AllSignatures();

  // --- data sources -------------------------------------------------------

  /// Persisted data source definitions, so Open() can restore the
  /// registry (stream schemas are not otherwise recoverable).
  struct DataSourceRow {
    std::string name;
    bool is_local_table = true;
    Schema schema;  // streams only; local tables read theirs from MiniDB
  };

  Status InsertDataSource(const DataSourceRow& row);
  Status DeleteDataSource(const std::string& name);
  Result<std::vector<DataSourceRow>> AllDataSources();

  /// Highest assigned ids (for counter restoration after reopen).
  Result<uint64_t> MaxTriggerId();
  Result<uint64_t> MaxSignatureId();

 private:
  Result<std::optional<Rid>> FindTriggerRid(const std::string& name);
  Result<std::optional<Rid>> FindSignatureRid(uint64_t sig_id);

  Database* db_;
  uint64_t next_ts_id_ = 1;
  TriggerId next_trigger_id_ = 1;
};

}  // namespace tman

#endif  // TRIGGERMAN_CATALOG_TRIGGER_CATALOG_H_
